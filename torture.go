package horus

import (
	"context"
	"fmt"

	"repro/internal/faultinject"
	"repro/internal/hierarchy"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// DirtyBlock is one dirty cache line queued for draining (re-exported).
type DirtyBlock = hierarchy.DirtyBlock

// CrashFlavor is a fault flavor of the torture matrix (re-exported).
type CrashFlavor = faultinject.Flavor

// Crash flavors: how a drain episode is interrupted or corrupted.
const (
	CrashCleanCut     CrashFlavor = faultinject.CleanCut
	CrashTornWrite    CrashFlavor = faultinject.TornWrite
	CrashBitFlip      CrashFlavor = faultinject.BitFlip
	CrashDroppedWrite CrashFlavor = faultinject.DroppedWrite
)

// AllCrashFlavors lists every flavor in matrix order (re-exported).
func AllCrashFlavors() []CrashFlavor { return faultinject.AllFlavors() }

// ParseCrashFlavors parses a comma-separated flavor list ("all" = every
// flavor), re-exported for the CLIs.
func ParseCrashFlavors(s string) ([]CrashFlavor, error) { return faultinject.ParseFlavors(s) }

// CrashOutcome classifies one torture cell (re-exported).
type CrashOutcome = faultinject.Outcome

// Cell outcomes. Restored, Partial and Detected satisfy the recoverability
// contract; SilentCorruption and InternalError are matrix failures.
const (
	OutcomeRestored         CrashOutcome = faultinject.OutcomeRestored
	OutcomePartial          CrashOutcome = faultinject.OutcomePartial
	OutcomeDetected         CrashOutcome = faultinject.OutcomeDetected
	OutcomeSilentCorruption CrashOutcome = faultinject.OutcomeSilentCorruption
	OutcomeInternalError    CrashOutcome = faultinject.OutcomeInternalError
)

// TortureConfig parameterises a crash-matrix run.
type TortureConfig struct {
	// Config is the machine configuration every cell replays (typically
	// TestConfig()). Its Metrics registry, when set, receives per-cell
	// outcome counters after the matrix completes; cells themselves run
	// uninstrumented so parallel replays share no mutable state.
	Config Config
	// Schemes are the drain designs to torture; empty means the four
	// secure schemes. NonSecure is excluded by default: with no MACs it
	// cannot detect corruption, so the matrix contract does not apply.
	Schemes []Scheme
	// Flavors are the fault flavors per crash point; empty means all.
	Flavors []CrashFlavor
	// NewWorkload builds the pre-crash workload stream from a seed. Every
	// cell replays the same stream (seeded with Config.Seed), so crash
	// points are comparable across cells. Nil selects a small mixed
	// read/write stream sized for exhaustive matrices.
	NewWorkload func(seed int64) *Workload
	// Stride samples every Stride-th crash point (1 or 0 = every point);
	// the first and last point are always kept.
	Stride int
	// MaxPoints caps the crash points per scheme after striding (0 = no
	// cap); points are thinned evenly, keeping both boundary points.
	MaxPoints int
}

// TortureCell is one (scheme, flavor, crash step) verdict.
type TortureCell struct {
	Scheme  Scheme
	Flavor  CrashFlavor
	Step    int // faulted write index within the drain
	Steps   int // total drain writes of the episode
	Fired   faultinject.FiredInfo
	Outcome CrashOutcome
	Detail  string // error text or mismatch description, "" for clean cells
	// Forensic explains a detection — failing check, region, blocks scanned
	// before it fired, provenance chain — and is nil for clean cells.
	Forensic *Forensic
	// RecoverTime is the simulated time the recovery path consumed while
	// classifying this cell (vault restore plus CHV/baseline recovery).
	RecoverTime sim.Time
}

// Label names the cell in reports and errors.
func (c TortureCell) Label() string {
	return fmt.Sprintf("%s/%s@%d", c.Scheme, c.Flavor, c.Step)
}

// TortureReport is the full crash-matrix verdict.
type TortureReport struct {
	// Cells holds every executed cell, ordered by scheme, flavor, step
	// (episode order), deterministic for a given config regardless of
	// worker count.
	Cells []TortureCell
	// Steps records each scheme's total drain-write count.
	Steps map[Scheme]int
}

// Failures returns the cells violating the recoverability contract.
func (r *TortureReport) Failures() []TortureCell {
	var out []TortureCell
	for _, c := range r.Cells {
		if !c.Outcome.OK() {
			out = append(out, c)
		}
	}
	return out
}

// Ok reports whether every cell satisfied the contract.
func (r *TortureReport) Ok() bool { return len(r.Failures()) == 0 }

// Table summarises the matrix per (scheme, flavor): cells by outcome.
func (r *TortureReport) Table() *report.Table {
	t := &report.Table{
		Title:  "Crash matrix: outcome per (scheme, flavor)",
		Header: []string{"scheme", "flavor", "points", "restored", "partial", "detected", "silent", "internal"},
	}
	type key struct {
		s Scheme
		f CrashFlavor
	}
	counts := map[key]map[CrashOutcome]int{}
	var order []key
	for _, c := range r.Cells {
		k := key{c.Scheme, c.Flavor}
		if counts[k] == nil {
			counts[k] = map[CrashOutcome]int{}
			order = append(order, k)
		}
		counts[k][c.Outcome]++
	}
	for _, k := range order {
		m := counts[k]
		total := m[OutcomeRestored] + m[OutcomePartial] + m[OutcomeDetected] + m[OutcomeSilentCorruption] + m[OutcomeInternalError]
		t.AddRow(k.s.String(), k.f.String(), fmt.Sprint(total),
			fmt.Sprint(m[OutcomeRestored]), fmt.Sprint(m[OutcomePartial]), fmt.Sprint(m[OutcomeDetected]),
			fmt.Sprint(m[OutcomeSilentCorruption]), fmt.Sprint(m[OutcomeInternalError]))
	}
	if fails := r.Failures(); len(fails) > 0 {
		for _, c := range fails {
			t.AddNote("FAIL %s: %s (%s)", c.Label(), c.Outcome, c.Detail)
		}
	} else {
		t.AddNote("every cell ended in exact restoration, authentic partial state, or a typed detection error")
	}
	return t
}

// ForensicTable renders the provenance of every detected cell: which check
// fired, where, after how many scanned blocks, and the trailing
// flight-recorder chain (cells attach a bounded per-cell recorder, so the
// chain is always present). Surfaced by horus-torture -explain.
func (r *TortureReport) ForensicTable() *report.Table {
	var fs []Forensic
	for _, c := range r.Cells {
		if c.Forensic == nil {
			continue
		}
		f := *c.Forensic
		f.Label = c.Label()
		f.Scheme = c.Scheme.String()
		f.Model = c.Flavor.String()
		fs = append(fs, f)
	}
	return report.ForensicTable(fs...)
}

// CellTable lists every crash point with its verdict — the per-crash-point
// outcome table CI uploads as an artifact.
func (r *TortureReport) CellTable() *report.Table {
	t := &report.Table{
		Title:  "Crash matrix: per-crash-point outcomes",
		Header: []string{"scheme", "flavor", "step", "steps", "stage", "category", "outcome", "detail"},
	}
	for _, c := range r.Cells {
		t.AddRow(c.Scheme.String(), c.Flavor.String(), fmt.Sprint(c.Step), fmt.Sprint(c.Steps),
			c.Fired.Stage, c.Fired.Cat, c.Outcome.String(), c.Detail)
	}
	return t
}

// defaultTortureWorkload is a small mixed stream: big enough to dirty data
// across several CHV groups and leave metadata-cache residue, small enough
// that an exhaustive matrix (every drain write × every flavor × four
// schemes) stays test-suite sized.
func defaultTortureWorkload(seed int64) *Workload {
	return UniformWorkload(WorkloadConfig{
		Ops:            120,
		WorkingSet:     4 << 10,
		Seed:           seed,
		PersistPercent: 10,
	})
}

// RunTortureMatrix executes the crash matrix: for every selected scheme it
// counts the drain's write steps, then replays the episode once per sampled
// crash point per flavor, recovering each time and classifying the result
// against the pre-crash golden image. Cells run on the sweep engine's
// worker pool (opts.Parallel) with per-cell derived seeds, so results are
// deterministic for any worker count. The returned error covers harness
// failures only; contract violations are reported via TortureReport.Failures.
func RunTortureMatrix(ctx context.Context, tc TortureConfig, opts SweepOptions) (*TortureReport, error) {
	schemes := tc.Schemes
	if len(schemes) == 0 {
		schemes = []Scheme{BaseLU, BaseEU, HorusSLM, HorusDLM}
	}
	flavors := tc.Flavors
	if len(flavors) == 0 {
		flavors = AllCrashFlavors()
	}
	cfg := tc.Config
	sink := cfg.Metrics
	tsSink := cfg.Timeseries
	cfg.Metrics = nil // cells must not share a registry
	cfg.Timeseries = nil
	newWorkload := tc.NewWorkload
	if newWorkload == nil {
		newWorkload = defaultTortureWorkload
	}
	w := newWorkload(cfg.Seed) // streams are immutable; all cells share it

	type spec struct {
		scheme Scheme
		flavor CrashFlavor
		step   int
		steps  int
	}
	var specs []spec
	steps := make(map[Scheme]int, len(schemes))
	for _, s := range schemes {
		if !s.Secure() {
			return nil, fmt.Errorf("horus: torture matrix requires a secure scheme, got %v (no MACs, nothing can be detected)", s)
		}
		n, err := countDrainSteps(cfg, s, w)
		if err != nil {
			return nil, fmt.Errorf("horus: counting drain steps of %v: %w", s, err)
		}
		if n == 0 {
			return nil, fmt.Errorf("horus: %v episode performed no drain writes; enlarge the workload", s)
		}
		steps[s] = n
		points := faultinject.SampleSteps(n, tc.Stride, tc.MaxPoints)
		for _, f := range flavors {
			for _, p := range points {
				specs = append(specs, spec{scheme: s, flavor: f, step: p, steps: n})
			}
		}
	}

	episodes := make([]sweep.Episode, len(specs))
	for i, sp := range specs {
		sp := sp
		episodes[i] = sweep.Episode{
			Label: fmt.Sprintf("%s/%s@%d", sp.scheme, sp.flavor, sp.step),
			Run: func(ctx context.Context, env sweep.Env) (any, error) {
				plan := faultinject.CrashPlan{Step: sp.step, Flavor: sp.flavor, Seed: uint64(env.Seed)}
				cell := runTortureCell(cfg, sp.scheme, w, plan)
				cell.Steps = sp.steps
				return cell, nil
			},
		}
	}

	runner := sweep.New(sweep.Options{Parallel: opts.Parallel, Timeout: opts.Timeout, BaseSeed: cfg.Seed, Progress: opts.Progress})
	results, err := runner.Run(ctx, episodes)
	if err != nil {
		return nil, err
	}
	rep := &TortureReport{Steps: steps, Cells: make([]TortureCell, len(results))}
	for i, res := range results {
		rep.Cells[i] = res.Value.(TortureCell)
	}
	if sink != nil {
		sink.SetHelp("horus_torture_cells_total", "Crash-matrix cells by scheme, fault flavor and recovery outcome.")
		sink.SetHelp("horus_recovery_detect_latency_blocks",
			"Blocks recovery had verified before a corruption check fired, by scheme and corruption model.")
		sink.SetHelp("horus_recovery_detect_latency_ps",
			"Phase-local simulated time at which a corruption check fired, picoseconds, by scheme and corruption model.")
		for _, c := range rep.Cells {
			sink.Counter("horus_torture_cells_total",
				"scheme", c.Scheme.String(), "flavor", c.Flavor.String(), "outcome", c.Outcome.String()).Add(1)
			if c.Outcome == OutcomeDetected && c.Forensic != nil {
				sink.Histogram("horus_recovery_detect_latency_blocks", obs.CountBuckets,
					"scheme", c.Scheme.String(), "model", c.Flavor.String()).Observe(float64(c.Forensic.BlocksScanned))
				sink.Histogram("horus_recovery_detect_latency_ps", obs.LatencyBuckets,
					"scheme", c.Scheme.String(), "model", c.Flavor.String()).Observe(float64(c.Forensic.DetectLatencyPs))
			}
		}
	}
	if tsSink != nil {
		// One sample per cell, indexed by crash step: zero for contract-
		// satisfying outcomes, one for silent corruption. The no-silent-
		// corruption SLO (TortureSLORules) asserts every sample is zero, and
		// RequireData means a matrix that recorded nothing also fails.
		w := tsSink.WindowPs()
		for _, c := range rep.Cells {
			s := tsSink.Counter("horus_ts_torture_silent_total",
				"scheme", c.Scheme.String(), "flavor", c.Flavor.String())
			v := 0.0
			if c.Outcome == OutcomeSilentCorruption {
				v = 1
			}
			s.Record(int64(c.Step)*w, v)
		}
	}
	return rep, nil
}

// countDrainSteps replays the episode with a counting injector (a plan that
// never fires) and returns how many NVM writes the drain performs — the
// number of crash points to enumerate.
func countDrainSteps(cfg Config, scheme Scheme, w *Workload) (int, error) {
	ws := NewWorkloadSystem(cfg, scheme, DomainEPD)
	if err := ws.Run(w); err != nil {
		return 0, err
	}
	inj := faultinject.NewInjector(faultinject.CrashPlan{Step: -1})
	ws.Core.NVM.SetFaultInjector(inj)
	if _, err := ws.drainer.Drain(ws.Machine.DirtyBlocks()); err != nil {
		return 0, err
	}
	return inj.Steps(), nil
}

// runTortureCell replays one episode, faults it per the plan, crashes,
// recovers, and classifies the result against the golden image. Harness
// misbehaviour (panics, untyped errors) is folded into the cell as
// OutcomeInternalError rather than aborting the matrix.
func runTortureCell(cfg Config, scheme Scheme, w *Workload, plan faultinject.CrashPlan) (cell TortureCell) {
	cell = TortureCell{Scheme: scheme, Flavor: plan.Flavor, Step: plan.Step}
	defer func() {
		if p := recover(); p != nil {
			cell.Outcome = OutcomeInternalError
			cell.Detail = fmt.Sprintf("panic: %v", p)
		}
	}()

	ws := NewWorkloadSystem(cfg, scheme, DomainEPD)
	if err := ws.Run(w); err != nil {
		cell.Outcome = OutcomeInternalError
		cell.Detail = fmt.Sprintf("workload: %v", err)
		return cell
	}
	golden := ws.Machine.Golden()
	blocks := ws.Machine.DirtyBlocks()

	inj := faultinject.NewInjector(plan)
	var atCut *PersistentState
	inj.OnCut = func() {
		// The crash instant: capture the persistent register file as the
		// power cut would leave it. Everything the drain "does" after
		// this point is fictional — its writes are suppressed and its
		// result is discarded.
		snap := ws.drainer.PersistSnapshot()
		atCut = &snap
	}
	ws.Core.NVM.SetFaultInjector(inj)
	res, drainErr := ws.drainer.Drain(blocks)
	ws.Core.NVM.SetFaultInjector(nil)

	var ps PersistentState
	switch {
	case atCut != nil:
		ps = *atCut
	case drainErr != nil:
		// A completing-flavor fault (drop / bit flip) corrupted metadata
		// the drain itself re-fetched: caught before power even returned.
		if recovery.IsDetection(drainErr) {
			cell.Outcome = OutcomeDetected
			cell.Detail = fmt.Sprintf("detected during drain: %v", drainErr)
			cell.Forensic = ForensicFromError(drainErr, "drain")
		} else {
			cell.Outcome = OutcomeInternalError
			cell.Detail = fmt.Sprintf("drain failed with untyped error: %v", drainErr)
		}
		cell.Fired, _ = inj.Fired()
		return cell
	default:
		ps = res.Persist
	}
	cell.Fired, _ = inj.Fired()

	// Power loss: volatile state gone. For an interrupting fault the root
	// register must be rewound to its at-cut snapshot — the post-cut
	// fictional execution may have kept updating it.
	ws.Machine.Crash()
	if ws.Core.Sec != nil {
		ws.Core.Sec.Crash()
		if atCut != nil {
			ws.Core.Sec.RestoreRoot(ps.Root)
		}
	}

	cell.Outcome, cell.Detail, cell.Forensic, cell.RecoverTime = classifyOutcome(ws.Core, ps, golden, blocks, atCut != nil)
	return cell
}
