package horus

import (
	"repro/internal/recovery"
	"repro/internal/sim"
)

// Time is a simulated duration/timestamp in picoseconds (re-exported).
type Time = sim.Time

// RecoverSerial performs only the CHV read-back with the paper's
// conservative single-stream model (Fig. 16) and returns its duration.
// The system must be crashed; the hierarchy is not refilled.
func RecoverSerial(sys *System, ps PersistentState) (Time, error) {
	res, err := recovery.RecoverHorusOpts(sys.Core, ps, recovery.Options{})
	if err != nil {
		return 0, err
	}
	return res.RecoveryTime, nil
}

// RecoverParallel performs the CHV read-back with bank-parallel group
// chains (an extension beyond the paper's estimate) and returns its
// duration.
func RecoverParallel(sys *System, ps PersistentState) (Time, error) {
	res, err := recovery.RecoverHorusOpts(sys.Core, ps, recovery.Options{BankParallel: true})
	if err != nil {
		return 0, err
	}
	return res.RecoveryTime, nil
}
