package horus

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// testFleetConfig builds a 16-machine, 4-rack heterogeneous fleet over the
// scaled-down TestConfig, with a rack outage early and a site-wide outage
// later — the ISSUE's reference scenario.
func testFleetConfig(t *testing.T) FleetConfig {
	t.Helper()
	f, err := cluster.Generate(cluster.GenerateOptions{Machines: 16, Racks: 4, Seed: 42})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	sched, err := cluster.ParseSchedule("1ms:2ms:0,1; 10ms:1ms:all", 4)
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	base := TestConfig()
	base.WarmupWrites = 64
	return FleetConfig{
		Fleet:         f,
		Base:          base,
		Sessions:      64,
		OpsPerSession: 8,
		BaseOps:       64,
		HorizonPs:     20_000_000_000, // 20 ms
		Router:        cluster.RouteRoundRobin,
		Failover:      true,
		Schedule:      sched,
		Loop:          cluster.LoopConfig{RackPowerW: 250, RecoverySlots: 4},
	}
}

// TestFleetDeterminismAcrossWorkers is the tentpole determinism suite: a
// fleet run must be byte-identical at any -parallel worker count — the
// measured episodes (including per-machine NVM image hashes), the event
// loop's verdict, the aggregated metrics, and the recorded time series.
func TestFleetDeterminismAcrossWorkers(t *testing.T) {
	run := func(parallel int) (*FleetReport, TimeseriesSnapshot) {
		fc := testFleetConfig(t)
		fc.Base.Timeseries = NewTimeseriesSampler(0, 0)
		rep, err := RunFleet(context.Background(), fc, SweepOptions{Parallel: parallel})
		if err != nil {
			t.Fatalf("RunFleet(parallel=%d): %v", parallel, err)
		}
		return rep, fc.Base.Timeseries.Snapshot()
	}
	rep1, snap1 := run(1)
	rep8, snap8 := run(8)

	if !reflect.DeepEqual(rep1.Machines, rep8.Machines) {
		t.Error("measured machines differ across worker counts")
	}
	for i := range rep1.Machines {
		if rep1.Machines[i].ImageHash != rep8.Machines[i].ImageHash {
			t.Errorf("machine %d NVM image hash differs: %#x vs %#x",
				i, rep1.Machines[i].ImageHash, rep8.Machines[i].ImageHash)
		}
		if rep1.Machines[i].ImageHash == 0 {
			t.Errorf("machine %d has an empty NVM image digest", i)
		}
	}
	if !reflect.DeepEqual(rep1.Result, rep8.Result) {
		t.Error("event-loop results differ across worker counts")
	}
	if !reflect.DeepEqual(rep1.Metrics, rep8.Metrics) {
		t.Error("fleet metrics differ across worker counts")
	}
	if !reflect.DeepEqual(rep1.Routes, rep8.Routes) {
		t.Error("routing stats differ across worker counts")
	}
	if !reflect.DeepEqual(snap1, snap8) {
		t.Error("fleet time series differ across worker counts")
	}
}

// TestFleetOracleNeverSilent is the recovery-storm oracle: every machine a
// rack-level or site-wide outage catches must end the run restored,
// partial or detected — never silently corrupted — and the fleet metrics
// must be exported for /metrics and /timeseries.json.
func TestFleetOracleNeverSilent(t *testing.T) {
	fc := testFleetConfig(t)
	fc.Base.Metrics = obs.NewRegistry()
	fc.Base.Timeseries = NewTimeseriesSampler(0, 0)
	rep, err := RunFleet(context.Background(), fc, SweepOptions{Parallel: 4})
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if len(rep.Machines) != 16 {
		t.Fatalf("%d machines, want 16", len(rep.Machines))
	}
	if fails := rep.Failures(); len(fails) > 0 {
		for _, m := range fails {
			t.Errorf("machine %s (%s): %s — %s", m.Spec.Name, m.Spec.Scheme, m.Outcome, m.Detail)
		}
	}
	for _, m := range rep.Machines {
		switch m.Outcome {
		case OutcomeRestored, OutcomePartial, OutcomeDetected:
		default:
			t.Errorf("machine %s ended %v — a machine may never end silent", m.Spec.Name, m.Outcome)
		}
		if m.Run.DrainPs <= 0 {
			t.Errorf("machine %s measured a degenerate drain: %d ps", m.Spec.Name, m.Run.DrainPs)
		}
		// Eager baselines vault nothing (metadata flushed in place), so only
		// CHV schemes are guaranteed a positive recovery time.
		if m.Spec.Scheme.UsesCHV() && m.Run.RecoverPs <= 0 {
			t.Errorf("machine %s (%s) measured a degenerate recovery: %d ps",
				m.Spec.Name, m.Spec.Scheme, m.Run.RecoverPs)
		}
		if m.Blocks == 0 {
			t.Errorf("machine %s drained no blocks; the outage exercised nothing", m.Spec.Name)
		}
	}

	// The first outage hits racks 0 and 1 (8 machines), the site-wide one
	// all 16: every affected machine must have completed its cycle.
	if got := rep.Result.Storms[0].Machines; got != 8 {
		t.Errorf("rack outage caught %d machines, want 8", got)
	}
	if got := rep.Result.Storms[1].Machines; got != 16 {
		t.Errorf("site-wide outage caught %d machines, want 16", got)
	}
	if want := 8 + 16; len(rep.Result.Cycles) != want {
		t.Errorf("%d cycles, want %d", len(rep.Result.Cycles), want)
	}
	for _, tl := range rep.Result.Timelines {
		if last := tl.Intervals[len(tl.Intervals)-1]; last.Phase != cluster.PhaseServe {
			t.Errorf("machine %d left in %v after the storm", tl.Machine, last.Phase)
		}
	}

	// Exported aggregates: the fleet quantiles are on the sampler (the
	// /timeseries.json surface) and the SLO rules evaluate green.
	snap := fc.Base.Timeseries.Snapshot()
	for _, series := range []string{
		"horus_fleet_ts_drain_p99_ps", "horus_fleet_ts_recover_p99_ps",
		"horus_fleet_ts_storm_max_ps", "horus_fleet_ts_silent_total",
		"horus_fleet_ts_up", "horus_fleet_ts_rack_energy_j",
	} {
		if len(snap.Find(series)) == 0 {
			t.Errorf("series %s missing from the fleet sampler", series)
		}
	}
	if slo := EvaluateSLO(FleetSLORules(0, 0), snap); !slo.Ok() {
		t.Errorf("fleet oracle SLO violated:\n%s", slo.Table().String())
	}
	// A 1 ps storm budget must trip the SLO (the CLI's exit-2 path).
	if slo := EvaluateSLO(FleetSLORules(1, 0), snap); slo.Ok() {
		t.Error("1 ps storm budget did not trip the SLO")
	}
}

// TestFleetRejectsTyped pins RunFleet's error contract: invalid fleets,
// schedules and battery technologies fail fast with typed/explicit errors.
func TestFleetRejectsTyped(t *testing.T) {
	fc := testFleetConfig(t)
	fc.Fleet.Machines[0].Banks = 0
	if _, err := RunFleet(context.Background(), fc, SweepOptions{}); err == nil {
		t.Error("invalid fleet accepted")
	}
	fc = testFleetConfig(t)
	fc.Schedule[0].AtPs = -1
	if _, err := RunFleet(context.Background(), fc, SweepOptions{}); err == nil {
		t.Error("invalid schedule accepted")
	}
	fc = testFleetConfig(t)
	fc.BatteryTech = "plutonium"
	if _, err := RunFleet(context.Background(), fc, SweepOptions{}); err == nil {
		t.Error("unknown battery tech accepted")
	}
}

// TestFleetWorkloadNames pins the workload-spec surface the CLI validates
// against.
func TestFleetWorkloadNames(t *testing.T) {
	for _, name := range FleetWorkloadNames() {
		w, err := fleetWorkload(name, WorkloadConfig{Ops: 8, WorkingSet: 1 << 10, Seed: 1})
		if err != nil || w == nil {
			t.Errorf("fleetWorkload(%q): %v", name, err)
		}
	}
	if _, err := fleetWorkload("bogus", WorkloadConfig{}); err == nil {
		t.Error("unknown workload accepted")
	}
}
