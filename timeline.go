package horus

import (
	"io"

	"repro/internal/timeline"
)

// Event-timeline re-exports (from the internal timeline package). Attach a
// TimelineRecorder via Config.Timeline to capture every bank, bus and
// crypto-engine reservation of a drain episode; snapshot it with Recording,
// export with WriteChromeTrace (chrome://tracing / Perfetto), and decompose
// the drain time with AnalyzeTimeline. See DESIGN.md §10.
type (
	// TimelineRecorder is a bounded, allocation-light event recorder; every
	// method is nil-safe, so detached simulators pay one pointer check per
	// reservation.
	TimelineRecorder = timeline.Recorder
	// TimelineEvent is one recorded reservation.
	TimelineEvent = timeline.Event
	// TimelineRecording is an immutable snapshot of one recorded episode.
	TimelineRecording = timeline.Recording
	// TimelineAttribution is the critical-path decomposition of an episode:
	// its steps tile the drain window exactly, so the per-resource shares
	// always sum to the measured drain time.
	TimelineAttribution = timeline.Attribution
	// TimelineResourceShare is the critical-path time bound by one resource
	// class.
	TimelineResourceShare = timeline.ResourceShare
	// TimelinePathStep is one interval of the critical path.
	TimelinePathStep = timeline.PathStep
)

// DefaultTimelineEventLimit bounds a recorder built with
// NewTimelineRecorder(0).
const DefaultTimelineEventLimit = timeline.DefaultEventLimit

// NewTimelineRecorder returns an event recorder retaining at most limit
// events (0 selects DefaultTimelineEventLimit; negative means unlimited).
func NewTimelineRecorder(limit int) *TimelineRecorder {
	return timeline.NewRecorder(limit)
}

// AnalyzeTimeline attributes every picosecond of the recorded episode to
// its binding resource (bank, bus, aes, mac, or idle).
func AnalyzeTimeline(rec *TimelineRecording) TimelineAttribution {
	return timeline.Analyze(rec)
}

// WriteChromeTrace exports recordings as Chrome trace-event JSON, loadable
// in chrome://tracing or https://ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, recs ...*TimelineRecording) error {
	return timeline.WriteChromeTrace(w, recs...)
}
