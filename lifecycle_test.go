package horus

import (
	"testing"
)

// The flagship integration test: run real workloads on a secure EPD
// machine, crash it mid-flight, drain under each scheme, recover, and
// verify that every pre-crash value is readable afterwards — through the
// recovered hierarchy for Horus, through verified in-place memory for the
// baselines.
func TestFullLifecycleWorkloadCrashRecover(t *testing.T) {
	wl := TxLogWorkload(WorkloadConfig{Ops: 4000, WorkingSet: 512 << 10, Seed: 21}, 2, 4)
	for _, scheme := range []Scheme{BaseLU, BaseEU, HorusSLM, HorusDLM} {
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := TestConfig()
			ws := NewWorkloadSystem(cfg, scheme, DomainEPD)
			if err := ws.Run(wl); err != nil {
				t.Fatalf("run: %v", err)
			}
			st := ws.Stats()
			if st.Writes == 0 || st.Time <= 0 {
				t.Fatal("workload did not execute")
			}

			res, golden, err := ws.CrashAndDrain()
			if err != nil {
				t.Fatalf("drain: %v", err)
			}
			if res.BlocksDrained == 0 {
				t.Fatal("nothing was dirty at the crash")
			}

			if _, err := ws.Recover(res.Persist); err != nil {
				t.Fatalf("recover: %v", err)
			}

			// Every dirty-at-crash value must read back correctly through
			// the machine (hierarchy for Horus, memory for baselines).
			for addr, want := range golden {
				got, err := ws.Machine.Read(addr)
				if err != nil {
					t.Fatalf("post-recovery read %#x: %v", addr, err)
				}
				if got != want {
					t.Fatalf("post-recovery mismatch at %#x", addr)
				}
			}
		})
	}
}

// After recovery the machine must be able to keep running and survive a
// second crash/recover cycle (drain counters persist across episodes).
func TestLifecycleTwoEpisodes(t *testing.T) {
	cfg := TestConfig()
	ws := NewWorkloadSystem(cfg, HorusSLM, DomainEPD)
	wl1 := KVStoreWorkload(WorkloadConfig{Ops: 2000, WorkingSet: 256 << 10, Seed: 5}, 4)
	if err := ws.Run(wl1); err != nil {
		t.Fatal(err)
	}
	res1, _, err := ws.CrashAndDrain()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Recover(res1.Persist); err != nil {
		t.Fatal(err)
	}

	wl2 := ZipfWorkload(WorkloadConfig{Ops: 2000, WorkingSet: 256 << 10, Seed: 6}, 1.3)
	if err := ws.Run(wl2); err != nil {
		t.Fatalf("run after recovery: %v", err)
	}
	res2, golden, err := ws.CrashAndDrain()
	if err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if res2.Persist.DC <= res1.Persist.DC {
		t.Error("drain counter did not advance across episodes")
	}
	if _, err := ws.Recover(res2.Persist); err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	for addr, want := range golden {
		got, err := ws.Machine.Read(addr)
		if err != nil {
			t.Fatalf("read %#x: %v", addr, err)
		}
		if got != want {
			t.Fatalf("mismatch at %#x after second episode", addr)
		}
	}
}

// EPD vs ADR at run time: the paper's §II-A motivation quantified.
func TestRuntimeEPDBeatsADR(t *testing.T) {
	wl := TxLogWorkload(WorkloadConfig{Ops: 5000, WorkingSet: 64 << 10, Seed: 7}, 1, 2)
	times := map[PersistDomain]RunStats{}
	for _, d := range []PersistDomain{DomainADR, DomainEPD} {
		ws := NewWorkloadSystem(TestConfig(), BaseLU, d)
		if err := ws.Run(wl); err != nil {
			t.Fatal(err)
		}
		times[d] = ws.Stats()
	}
	if times[DomainEPD].Time >= times[DomainADR].Time {
		t.Errorf("EPD (%v) not faster than ADR (%v)", times[DomainEPD].Time, times[DomainADR].Time)
	}
}

// The buffered persistence domains must survive the full lifecycle too:
// entries accepted by the battery-backed WPQ/BBB are durable, so after a
// crash both the persisted and the drained data recover.
func TestLifecycleBufferedDomains(t *testing.T) {
	for _, domain := range []PersistDomain{DomainADRWPQ, DomainBBB} {
		t.Run(domain.String(), func(t *testing.T) {
			cfg := TestConfig()
			ws := NewWorkloadSystem(cfg, HorusSLM, domain)
			wl := TxLogWorkload(WorkloadConfig{Ops: 3000, WorkingSet: 128 << 10, Seed: 33}, 2, 3)
			if err := ws.Run(wl); err != nil {
				t.Fatal(err)
			}
			if ws.Stats().PersistFlush == 0 {
				t.Fatal("no buffered persists exercised")
			}
			res, golden, err := ws.CrashAndDrain()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ws.Recover(res.Persist); err != nil {
				t.Fatal(err)
			}
			for addr, want := range golden {
				got, err := ws.Machine.Read(addr)
				if err != nil || got != want {
					t.Fatalf("%v: post-recovery mismatch at %#x: %v", domain, addr, err)
				}
			}
		})
	}
}

// A non-secure workload system exercises the plain path.
func TestWorkloadSystemNonSecure(t *testing.T) {
	ws := NewWorkloadSystem(TestConfig(), NonSecure, DomainEPD)
	wl := UniformWorkload(WorkloadConfig{Ops: 1000, WorkingSet: 1 << 20, Seed: 8, PersistPercent: 10})
	if err := ws.Run(wl); err != nil {
		t.Fatal(err)
	}
	res, _, err := ws.CrashAndDrain()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMACs() != 0 {
		t.Error("non-secure lifecycle used MACs")
	}
	if _, err := ws.Recover(res.Persist); err != nil {
		t.Fatal(err)
	}
}
