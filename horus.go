// Package horus is a library-level reproduction of "Horus: Persistent
// Security for Extended Persistence-Domain Memory Systems" (MICRO 2022).
//
// It simulates — functionally and temporally — a secure NVM memory system
// whose persistence domain extends over the cache hierarchy (EPD/eADR),
// and the draining of that hierarchy upon power failure under the paper's
// four designs: the lazy- and eager-update secure baselines (Base-LU,
// Base-EU), and Horus with single- and double-level MACs (Horus-SLM,
// Horus-DLM), plus the non-secure reference.
//
// Typical use:
//
//	cfg := horus.DefaultConfig()          // Table I parameters
//	sys := horus.NewSystem(cfg, horus.HorusSLM)
//	sys.Warmup()                          // run-time phase: dirty metadata
//	sys.Fill()                            // worst-case dirty cache hierarchy
//	res, err := sys.Drain()               // outage: drain to the CHV
//	...
//	rec, err := sys.Recover(res.Persist)  // power restore: verified recovery
//
// The experiment runners (RunFig6 ... RunTable3) regenerate every figure
// and table of the paper's evaluation; see EXPERIMENTS.md for measured
// results against the published ones.
package horus

import (
	"fmt"
	"math/rand"

	"repro/internal/bmt"
	"repro/internal/cme"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/hierarchy"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/secmem"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// MetricsRegistry collects counters, gauges, histograms and lifecycle spans
// from every layer of a simulated machine (re-exported from internal/obs).
// Attach one via Config.Metrics and export it with WritePrometheus or
// WriteJSON after the episode. All instrumentation is nil-safe: a nil
// registry costs one pointer check per event.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Episode engine re-exports (from the internal sweep package). Experiment
// grids (RunDrainSet, RunLLCSweep, the figure runners) route through this
// engine; the generic forms below let API users run their own episode
// grids with the same worker pool, cancellation, seeding and metrics-merge
// semantics. See DESIGN.md §8.
type (
	// SweepRunner executes episode grids on a bounded worker pool.
	SweepRunner = sweep.Runner
	// SweepRunnerOptions parameterises a SweepRunner (workers, timeout,
	// base seed, merged metrics sink).
	SweepRunnerOptions = sweep.Options
	// Episode is one unit of work in a sweep.
	Episode = sweep.Episode
	// EpisodeEnv is the per-episode environment (index, derived seed,
	// private metrics registry).
	EpisodeEnv = sweep.Env
	// EpisodeResult is one episode's outcome.
	EpisodeResult = sweep.Result
	// SweepError aggregates the per-episode failures of a grid; completed
	// results are returned alongside it.
	SweepError = sweep.Error
	// EpisodePanicError wraps a panic captured inside an episode.
	EpisodePanicError = sweep.PanicError
)

// NewSweepRunner returns the generic episode engine.
func NewSweepRunner(opts SweepRunnerOptions) *SweepRunner { return sweep.New(opts) }

// DeriveSeed maps (base seed, episode index) to a stable, independent
// per-episode seed (the engine's determinism primitive).
func DeriveSeed(base int64, index int) int64 { return sweep.DeriveSeed(base, index) }

// Scheme identifies a draining design (re-exported from the core package).
type Scheme = core.Scheme

// DrainScheme is the pluggable behavior behind a Scheme handle; custom
// designs register with RegisterScheme and participate in every experiment
// grid like the built-ins.
type DrainScheme = core.DrainScheme

// RegisterScheme adds a draining design to the registry and returns its
// Scheme handle. The factory runs once per drainer, so implementations may
// keep per-episode state. Duplicate names panic.
func RegisterScheme(name string, factory func() DrainScheme) Scheme {
	return core.Register(name, factory)
}

// LookupScheme resolves a registered scheme by its name (e.g. "Horus-SLM").
func LookupScheme(name string) (Scheme, error) { return core.Lookup(name) }

// SchemeNames lists every registered scheme name in registration order.
func SchemeNames() []string { return core.SchemeNames() }

// The paper's five designs.
const (
	NonSecure = core.NonSecure
	BaseLU    = core.BaseLU
	BaseEU    = core.BaseEU
	HorusSLM  = core.HorusSLM
	HorusDLM  = core.HorusDLM
)

// AllSchemes lists every design in the paper's presentation order.
func AllSchemes() []Scheme { return core.AllSchemes() }

// Result is a draining episode report (re-exported).
type Result = core.Result

// PersistentState is the on-chip persistent register file (re-exported).
type PersistentState = core.PersistentState

// Config assembles all simulation parameters. The zero value is not valid;
// start from DefaultConfig (Table I, full scale) or TestConfig (scaled
// down, sub-second runs).
type Config struct {
	// DataSize is the protected NVM capacity (Table I: 32 GB).
	DataSize uint64
	// LLCBytes sets the last-level-cache size of the Table I hierarchy
	// (16 MB by default; Figs. 14-16 sweep it). Ignored if Hierarchy is
	// set explicitly.
	LLCBytes int
	// Hierarchy overrides the cache hierarchy entirely (optional).
	Hierarchy *hierarchy.Config
	// Mem is the NVM timing configuration.
	Mem mem.Config
	// Sec is the secure-memory-controller configuration; Sec.Scheme is
	// overridden per drain design.
	Sec secmem.Config
	// FillPattern chooses the pre-crash cache contents; the default is the
	// paper's worst case: all-dirty blocks spaced evenly across the whole
	// memory (>= 16 KB apart; the spacing is derived by dividing the
	// memory size by the cache-hierarchy capacity, §V-A).
	FillPattern hierarchy.FillPattern
	// FillStride is the stride for hierarchy.PatternStride fills. Zero
	// selects the paper's derivation: DataSize / total cache lines,
	// floored to a 64-byte multiple.
	FillStride uint64
	// FlushShuffle drains the dirty blocks in a pseudo-random order instead
	// of fill order. The paper flushes its >= 16 KB-strided fill as laid
	// out; shuffling removes even the residual tree-node adjacency between
	// consecutive flushes and is kept as a harsher ablation.
	FlushShuffle bool
	// Seed drives fill addresses, block data and flush order.
	Seed int64
	// WarmupWrites is the number of run-time secure writes performed
	// before the crash, leaving dirty residue in the metadata caches (the
	// paper's drains flush that residue too; Fig. 12 "metadata flush").
	WarmupWrites int
	// CHVRegions is the number of CHV rotation regions for wear levelling
	// (0 or 1 = a single fixed region; N rotates successive episodes
	// across N regions so the vault's cells wear N times slower).
	CHVRegions int
	// KeySeed derives the AES/MAC keys.
	KeySeed uint64
	// Energy holds the Table II/III energy-model constants.
	Energy energy.Params
	// Metrics, when non-nil, receives counters, utilization gauges,
	// latency histograms and lifecycle spans from every layer of the
	// simulated machine. Leave nil to disable instrumentation entirely.
	Metrics *MetricsRegistry
	// Timeline, when non-nil, records every bank, bus and crypto-engine
	// reservation of the drain episode for Chrome-trace export and
	// critical-path attribution (see AnalyzeTimeline). Leave nil to disable
	// recording entirely; the detached fast path costs one pointer check
	// per reservation.
	Timeline *TimelineRecorder
	// Timeseries, when non-nil, records windowed sim-time series during
	// the episode: per-scheme energy drawdown (and its fraction of
	// BatteryJoules), blocks drained per window, per-bank queue depth,
	// and run-phase op rates. Sweep grids clone a fresh per-episode
	// sampler (labelled with the grid point) and merge back in episode
	// order, so output is byte-identical at any parallelism. Leave nil to
	// disable sampling entirely; the detached fast path costs one pointer
	// check per event.
	Timeseries *TimeseriesSampler
	// Evlog, when non-nil, is the detection-forensics flight recorder the
	// recovery paths feed: one structured record per recovery decision
	// (check evaluated, region touched, expected-vs-got identity), the
	// trailing records of which every typed recovery error captures as its
	// provenance chain (Error.Chain). Sweep grids clone a fresh per-episode
	// log so parallel episodes never share a ring. Leave nil to disable;
	// the detached fast path costs one pointer check per decision.
	Evlog *Evlog
	// BatteryJoules, when positive, is the hold-up energy budget the
	// drain races against (derive it from a Table III volume with
	// BatteryBudgetJoules). It enables the horus_ts_energy_budget_frac
	// series and the drain SLO rules.
	BatteryJoules float64
	// Shards is the drain pipeline's crypto fan-out width: shard-owned
	// engine clones precompute OTPs and MACs over per-bank work lists
	// while the timed state machine replays serially, so results, traces
	// and time series are byte-identical at any value (DESIGN.md §13).
	// Zero or negative selects GOMAXPROCS; 1 forces the inline serial
	// path. Exposed on every CLI as -shards.
	Shards int
}

// DefaultConfig returns the paper's Table I configuration at full scale:
// 32 GB PCM, 64KB/2MB/16MB hierarchy (295 936 lines), 256/512/256 KB
// metadata caches, 40-cycle AES, 160-cycle hash, 4 GHz.
func DefaultConfig() Config {
	return Config{
		DataSize:     32 << 30,
		LLCBytes:     16 << 20,
		Mem:          mem.DefaultConfig(),
		Sec:          secmem.DefaultConfig(),
		FillPattern:  hierarchy.PatternStride,
		Seed:         1,
		WarmupWrites: 8192,
		KeySeed:      0x5ec0de,
		Energy:       energy.DefaultParams(),
	}
}

// TestConfig returns a proportionally scaled-down configuration (1 GB data,
// 2KB/64KB/256KB hierarchy, 8/16/8 KB metadata caches) for examples and
// tests; a full drain takes well under a second.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.DataSize = 1 << 30
	cfg.Hierarchy = &hierarchy.Config{Levels: []hierarchy.LevelConfig{
		{Name: "L1", SizeBytes: 2 << 10, Ways: 2, LatencyCycle: 2},
		{Name: "L2", SizeBytes: 64 << 10, Ways: 8, LatencyCycle: 20},
		{Name: "LLC", SizeBytes: 256 << 10, Ways: 16, LatencyCycle: 32},
	}}
	cfg.Sec.CounterCacheBytes = 8 << 10
	cfg.Sec.MACCacheBytes = 16 << 10
	cfg.Sec.TreeCacheBytes = 8 << 10
	cfg.WarmupWrites = 512
	return cfg
}

// hierarchyConfig resolves the hierarchy for the config.
func (c *Config) hierarchyConfig() hierarchy.Config {
	if c.Hierarchy != nil {
		return *c.Hierarchy
	}
	llc := c.LLCBytes
	if llc == 0 {
		llc = 16 << 20
	}
	return hierarchy.TableIWithLLC(llc)
}

// System is an assembled simulated machine for one draining design.
type System struct {
	Config Config
	Scheme Scheme

	Core      *core.System
	Hierarchy *hierarchy.Hierarchy

	drainer *core.Drainer
	filled  bool
}

// newCoreSystem assembles the substrate every simulated machine shares: the
// NVM controller with a metadata layout sized for the hierarchy's worst-case
// drain, the key engine, and — when withSec — the secure memory controller,
// with metrics/timeline/timeseries plumbing attached under the given label
// pairs. NewSystem, NewWorkloadSystem and the litmus materialiser all build
// on it, so a replayed image lands in a byte-identical layout.
func newCoreSystem(cfg Config, scheme Scheme, withSec bool, labels ...string) (*core.System, hierarchy.Config) {
	hcfg := cfg.hierarchyConfig()
	lines := uint64(hcfg.TotalLines())
	metaLines := uint64((cfg.Sec.CounterCacheBytes + cfg.Sec.MACCacheBytes + cfg.Sec.TreeCacheBytes) / mem.BlockSize)
	lay := bmt.NewLayout(bmt.Config{
		DataSize:    cfg.DataSize,
		CHVCapacity: lines + 64,
		CHVRegions:  uint64(cfg.CHVRegions),
		VaultBlocks: metaLines*2 + 32,
	})
	nvm := mem.NewController(cfg.Mem)
	// Pre-size the sparse store for the drain's worst-case footprint: every
	// hierarchy line lands in the CHV (data + address + MAC blocks ≈ 5/4 per
	// line) plus its counter/tree/MAC metadata; repeated table growth during
	// the write burst would otherwise dominate the simulator's own time.
	nvm.Reserve(int(lines+lines/4) + 4096)
	enc := cme.NewEngine(cfg.KeySeed)
	var sec *secmem.Controller
	if withSec {
		scfg := cfg.Sec
		scfg.Scheme = scheme.RuntimeScheme()
		sec = secmem.New(scfg, lay, enc, nvm)
	}
	cs := &core.System{
		Layout: lay, Enc: enc, NVM: nvm, Sec: sec,
		Metrics: cfg.Metrics, Timeline: cfg.Timeline,
		Timeseries: cfg.Timeseries, Evlog: cfg.Evlog,
		Energy: cfg.Energy, BatteryJoules: cfg.BatteryJoules,
		Shards: cfg.Shards,
	}
	nvm.SetMetrics(cfg.Metrics, labels...)
	nvm.SetTimeline(cfg.Timeline)
	nvm.SetTimeseries(cfg.Timeseries, labels...)
	if sec != nil {
		sec.SetMetrics(cfg.Metrics, labels...)
		sec.SetTimeline(cfg.Timeline)
	}
	return cs, hcfg
}

// NewSystem builds the machine: NVM, metadata layout sized for the
// hierarchy's worst-case drain, key engine, secure memory controller (for
// secure schemes) and drainer.
func NewSystem(cfg Config, scheme Scheme) *System {
	cs, hcfg := newCoreSystem(cfg, scheme, true, "scheme", scheme.String())
	return &System{
		Config:    cfg,
		Scheme:    scheme,
		Core:      cs,
		Hierarchy: hierarchy.New(hcfg),
		drainer:   core.NewDrainer(scheme, cs, 0),
	}
}

// Warmup performs Config.WarmupWrites run-time secure writes at pseudo-
// random addresses, dirtying the security-metadata caches the way a running
// system would have before the outage. Non-secure systems have no metadata
// and skip it.
func (s *System) Warmup() error {
	if !s.Scheme.Secure() || s.Config.WarmupWrites == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(s.Config.Seed ^ 0x77a4))
	var now sim.Time
	var data mem.Block
	span := s.Core.Metrics.StartSpan("run", 0)
	defer func() { span.EndAt(int64(now)) }()
	blocks := s.Config.DataSize / mem.BlockSize
	for i := 0; i < s.Config.WarmupWrites; i++ {
		addr := uint64(rng.Int63n(int64(blocks))) * mem.BlockSize
		for j := 0; j < 8; j++ {
			data[j] = byte(rng.Uint32())
		}
		done, err := s.Core.Sec.WriteBlock(now, addr, data)
		if err != nil {
			return fmt.Errorf("horus: warmup write %d: %w", i, err)
		}
		now = done
	}
	return nil
}

// Fill populates every line of every hierarchy level with dirty blocks
// according to the configured pattern and returns the block count.
func (s *System) Fill() int {
	stride := s.Config.FillStride
	if s.Config.FillPattern == hierarchy.PatternStride && stride == 0 {
		// Paper §V-A: spacing = memory size / cache-hierarchy capacity.
		lines := uint64(s.Hierarchy.Config().TotalLines())
		stride = s.Config.DataSize / lines / mem.BlockSize * mem.BlockSize
		if stride < mem.BlockSize {
			stride = mem.BlockSize
		}
	}
	n := s.Hierarchy.FillAllDirty(hierarchy.FillOptions{
		Pattern:  s.Config.FillPattern,
		DataSize: s.Config.DataSize,
		Stride:   stride,
		Seed:     s.Config.Seed,
	})
	s.filled = true
	return n
}

// Drain simulates the outage: flushes the hierarchy's dirty blocks (in a
// shuffled worst-case order) and the metadata caches, returning the
// episode's metrics and persistent state.
func (s *System) Drain() (Result, error) {
	if !s.filled {
		return Result{}, fmt.Errorf("horus: Drain before Fill")
	}
	blocks := s.Hierarchy.DirtyBlocks()
	if s.Config.FlushShuffle {
		blocks = s.Hierarchy.DirtyBlocksShuffled(rand.New(rand.NewSource(s.Config.Seed ^ 0x0f1a)))
	}
	return s.drainer.Drain(blocks)
}

// Crash models the loss of power after a drain: cache hierarchy and
// volatile metadata state vanish; NVM and persistent registers survive.
func (s *System) Crash() {
	// Zero-length marker: power loss is instantaneous in the model.
	s.Core.Metrics.RecordSpan("crash", 0, 0)
	s.Hierarchy.Clear()
	s.filled = false
	if s.Core.Sec != nil {
		s.Core.Sec.Crash()
	}
}

// RecoveryReport summarises a recovery episode.
type RecoveryReport struct {
	// Horus recovery (nil for baselines).
	Horus *recovery.HorusResult
	// Baseline recovery: the metadata-cache vault restore. For baseline
	// schemes this is the whole recovery; for Horus schemes it restores
	// the run-time metadata residue before the CHV is read back.
	Baseline *recovery.BaselineResult
}

// Time returns the total recovery time across the paths that ran.
func (r RecoveryReport) Time() sim.Time {
	var t sim.Time
	if r.Horus != nil {
		t += r.Horus.RecoveryTime
	}
	if r.Baseline != nil {
		t += r.Baseline.RecoveryTime
	}
	return t
}

// Recover restores the system from the persistent state of the last drain:
// for Horus, the CHV is read back, verified, decrypted and re-installed in
// the hierarchy; for baselines, the metadata-cache vault is verified and
// re-installed in the controller.
func (s *System) Recover(ps PersistentState) (RecoveryReport, error) {
	span := s.Core.Metrics.StartSpan("recover", 0)
	report, err := s.recoverFrom(ps)
	// The vault restore and the CHV read-back run on separate phase-local
	// clocks; the parent span spans their combined duration.
	span.EndAt(int64(report.Time()))
	return report, err
}

func (s *System) recoverFrom(ps PersistentState) (RecoveryReport, error) {
	switch {
	case ps.Scheme.UsesCHV():
		report := RecoveryReport{}
		// Power restore: timing starts on a fresh clock (the drain's bank
		// reservations belong to the previous power session).
		s.Core.NVM.ResetStats()
		s.Core.Sec.ResetStats()
		if ps.Vault.Count > 0 {
			// Restore the run-time metadata residue first, so in-place
			// data written before the crash verifies again.
			vres, err := recovery.RestoreMetadataVaultFor(s.Core, ps.Vault, ps.Scheme.String())
			if err != nil {
				return RecoveryReport{}, err
			}
			report.Baseline = &vres
		}
		res, err := recovery.RecoverHorus(s.Core, ps)
		if err != nil {
			return RecoveryReport{}, err
		}
		recovery.RefillHierarchy(s.Hierarchy, res.Blocks)
		s.filled = true
		report.Horus = &res
		return report, nil
	case ps.Scheme.Secure():
		res, err := recovery.RecoverBaseline(s.Core, ps)
		if err != nil {
			return RecoveryReport{}, err
		}
		return RecoveryReport{Baseline: &res}, nil
	default:
		return RecoveryReport{}, nil // non-secure: nothing to verify
	}
}

// RunDrain is the one-shot convenience: build, warm up, fill, drain.
func RunDrain(cfg Config, scheme Scheme) (Result, error) {
	sys := NewSystem(cfg, scheme)
	if err := sys.Warmup(); err != nil {
		return Result{}, err
	}
	sys.Fill()
	return sys.Drain()
}

// EnergyOf applies the configured energy model to a drain result
// (Table II).
func (c Config) EnergyOf(res Result) energy.Breakdown {
	return energy.Estimate(c.Energy, res.DrainTime, res.MemWrites.Total(), res.MemReads.Total())
}
