package horus

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// renderDrainSetTS runs the all-scheme drain set with a live sampler at the
// given worker count and returns the rendered Fig. 11 table plus the merged
// time-series JSON document.
func renderDrainSetTS(t testing.TB, workers int) (string, string, *DrainSet) {
	t.Helper()
	cfg := TestConfig()
	cfg.Timeseries = NewTimeseriesSampler(0, 0)
	ds, err := RunDrainSetCtx(context.Background(), cfg, AllSchemes(), SweepOptions{Parallel: workers})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := cfg.Timeseries.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return (Fig11{Set: ds}).Table().String(), b.String(), ds
}

// TestTimeseriesDeterminism extends the engine's byte-identity contract to
// live telemetry: the merged time-series document is identical whether
// episodes run on one worker or eight.
func TestTimeseriesDeterminism(t *testing.T) {
	seqTab, seqTS, _ := renderDrainSetTS(t, 1)
	parTab, parTS, _ := renderDrainSetTS(t, 8)
	if seqTab != parTab {
		t.Error("Fig11 table differs between -parallel 1 and 8 with telemetry on")
	}
	if seqTS != parTS {
		t.Error("merged time-series JSON differs between -parallel 1 and 8")
	}
	for _, name := range []string{
		"horus_ts_blocks_drained", "horus_ts_energy_j", "horus_ts_drain_time_ps",
		"horus_ts_bank_queue_depth",
	} {
		if !strings.Contains(seqTS, name) {
			t.Errorf("merged document missing series %s", name)
		}
	}
}

// TestTelemetryDoesNotPerturbResults: recording time series must not change
// any experiment output — the sampler observes the simulation, it never
// participates in it.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	cfg := TestConfig()
	plain, err := RunDrainSetCtx(context.Background(), cfg, AllSchemes(), SweepOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, _, sampled := renderDrainSetTS(t, 4)
	for _, s := range AllSchemes() {
		off := fmt.Sprintf("%+v", plain.Results[s])
		on := fmt.Sprintf("%+v", sampled.Results[s])
		if off != on {
			t.Errorf("%v: result differs with telemetry on:\noff: %s\non:  %s", s, off, on)
		}
	}
	offTab := (Fig11{Set: plain}).Table().String()
	onTab := (Fig11{Set: sampled}).Table().String()
	if offTab != onTab {
		t.Errorf("Fig11 table differs with telemetry on:\n--- off ---\n%s\n--- on ---\n%s", offTab, onTab)
	}
}

// TestTimeseriesFinalEnergyPoint is the Table II cross-check: the last point
// of each episode's energy-drawdown series must equal the post-hoc energy
// model applied to the drain result — exactly, not approximately — because
// the drainer re-samples at the final drain instant with the final counters.
func TestTimeseriesFinalEnergyPoint(t *testing.T) {
	for _, scheme := range AllSchemes() {
		cfg := TestConfig()
		cfg.Timeseries = NewTimeseriesSampler(0, 0)
		res, err := RunDrain(cfg, scheme)
		if err != nil {
			t.Fatal(err)
		}
		snap := cfg.Timeseries.Snapshot()
		series := snap.Find("horus_ts_energy_j")
		if len(series) != 1 {
			t.Fatalf("%v: %d energy series, want 1", scheme, len(series))
		}
		final, ok := series[0].Final()
		if !ok {
			t.Fatalf("%v: energy series has no points", scheme)
		}
		want := cfg.EnergyOf(res).Total()
		if final.V != want {
			t.Errorf("%v: final energy point %v != EnergyOf total %v", scheme, final.V, want)
		}
		// Bucket timestamps are window-aligned; the final sample lands in
		// the bucket containing the drain's last instant.
		end := int64(res.DrainTime)
		if final.T > end || end-final.T >= series[0].WindowPs {
			t.Errorf("%v: final energy point at %d ps, want within one %d ps window of drain end %d",
				scheme, final.T, series[0].WindowPs, end)
		}

		drained := snap.Find("horus_ts_blocks_drained")
		if len(drained) != 1 {
			t.Fatalf("%v: %d blocks-drained series, want 1", scheme, len(drained))
		}
		sum := 0.0
		for _, v := range drained[0].Values() {
			sum += v
		}
		if int(sum) != res.BlocksDrained {
			t.Errorf("%v: blocks-drained series sums to %v, want %d", scheme, sum, res.BlocksDrained)
		}

		dt := snap.Find("horus_ts_drain_time_ps")
		if len(dt) != 1 {
			t.Fatalf("%v: %d drain-time series, want 1", scheme, len(dt))
		}
		if p, ok := dt[0].Final(); !ok || p.V != float64(res.DrainTime) {
			t.Errorf("%v: drain-time series final %v, want %v", scheme, p.V, float64(res.DrainTime))
		}
	}
}

// TestBatteryBudgetSeries: with a battery budget configured the drainer also
// records the budget-fraction series, and the drain SLOs judge it correctly
// in both the violating and the satisfied direction.
func TestBatteryBudgetSeries(t *testing.T) {
	cfg := TestConfig()
	cfg.Timeseries = NewTimeseriesSampler(0, 0)
	cfg.BatteryJoules = 1e-6 // far too small: every SLO must trip
	res, err := RunDrain(cfg, HorusSLM)
	if err != nil {
		t.Fatal(err)
	}
	snap := cfg.Timeseries.Snapshot()
	frac := snap.Find("horus_ts_energy_budget_frac")
	if len(frac) != 1 {
		t.Fatalf("%d budget-fraction series, want 1", len(frac))
	}
	if max, ok := frac[0].Max(); !ok || max.V <= 1 {
		t.Errorf("budget fraction max %v, want > 1 for a tiny budget", max.V)
	}
	rep := EvaluateSLO(DrainSLORules(cfg, cfg.BatteryJoules), snap)
	if rep.Ok() {
		t.Error("tiny budget must violate the drain SLOs")
	}
	if tbl := rep.Table().String(); !strings.Contains(tbl, "VIOLATED") {
		t.Error("SLO table does not name the violated cells")
	}

	// A generous budget (10x the measured drain energy) must pass.
	cfg2 := TestConfig()
	cfg2.Timeseries = NewTimeseriesSampler(0, 0)
	cfg2.BatteryJoules = 10 * cfg.EnergyOf(res).Total()
	if _, err := RunDrain(cfg2, HorusSLM); err != nil {
		t.Fatal(err)
	}
	rep2 := EvaluateSLO(DrainSLORules(cfg2, cfg2.BatteryJoules), cfg2.Timeseries.Snapshot())
	if !rep2.Ok() {
		t.Errorf("generous budget must satisfy the drain SLOs:\n%s", rep2.Table())
	}
}

// TestTortureSLOOverMatrix wires the no-silent-corruption SLO end to end: a
// small clean matrix records all-zero outcome series and passes; a sampler
// that recorded nothing fails RequireData.
func TestTortureSLOOverMatrix(t *testing.T) {
	cfg := TestConfig()
	cfg.Timeseries = NewTimeseriesSampler(0, 0)
	rep, err := RunTortureMatrix(context.Background(), TortureConfig{
		Config:    cfg,
		Schemes:   []Scheme{HorusSLM},
		Flavors:   []CrashFlavor{CrashCleanCut},
		Stride:    7,
		MaxPoints: 3,
	}, SweepOptions{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("clean matrix failed: %+v", rep.Failures())
	}
	slo := EvaluateSLO(TortureSLORules(), cfg.Timeseries.Snapshot())
	if !slo.Ok() {
		t.Errorf("clean matrix must satisfy the silent-corruption SLO:\n%s", slo.Table())
	}

	empty := EvaluateSLO(TortureSLORules(), NewTimeseriesSampler(0, 0).Snapshot())
	if empty.Ok() {
		t.Error("an empty sampler must fail the RequireData silent-corruption SLO")
	}
}

// TestSweepProgressThroughEngine: the engine surfaces per-episode progress
// in completion order with a correct total, at any parallelism.
func TestSweepProgressThroughEngine(t *testing.T) {
	cfg := TestConfig()
	var events []SweepProgress
	_, err := RunDrainSetCtx(context.Background(), cfg, AllSchemes(), SweepOptions{
		Parallel: 3,
		Progress: func(ev SweepProgress) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(AllSchemes()) {
		t.Fatalf("%d progress events, want %d", len(events), len(AllSchemes()))
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != len(AllSchemes()) {
			t.Errorf("event %d: done=%d total=%d", i, ev.Done, ev.Total)
		}
	}
}
