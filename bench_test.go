// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations for the design choices called out in
// DESIGN.md and microbenchmarks of the substrates.
//
// The figure benchmarks run at the paper's full Table I scale (32 GB PCM,
// 295 936 drained blocks) and report the figure's metric via
// b.ReportMetric: normalized ratios, drain milliseconds, joules, cm^3.
// Expect a few seconds per iteration for the baseline schemes. Set
// -benchtime=1x for a single pass of everything:
//
//	go test -bench=. -benchmem -benchtime=1x
package horus

import (
	"fmt"
	"testing"

	"repro/internal/energy"
	"repro/internal/hierarchy"
)

// benchConfig is the paper-scale configuration used by the figure benches.
func benchConfig() Config {
	return DefaultConfig()
}

// drainOnce runs a single draining episode and reports nothing.
func drainOnce(b *testing.B, cfg Config, s Scheme) Result {
	b.Helper()
	res, err := RunDrain(cfg, s)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// --------------------------------------------------------------------------
// Fig. 6: memory requests to flush the hierarchy (non-secure vs baselines).

func benchmarkFig6(b *testing.B, s Scheme) {
	cfg := benchConfig()
	var res, ns Result
	for i := 0; i < b.N; i++ {
		res = drainOnce(b, cfg, s)
		ns = drainOnce(b, cfg, NonSecure)
	}
	b.ReportMetric(float64(res.TotalMemAccesses()), "mem-accesses")
	b.ReportMetric(float64(res.TotalMemAccesses())/float64(ns.TotalMemAccesses()), "x-vs-nonsecure")
}

func BenchmarkFig6_BaseLU(b *testing.B) { benchmarkFig6(b, BaseLU) }
func BenchmarkFig6_BaseEU(b *testing.B) { benchmarkFig6(b, BaseEU) }

// --------------------------------------------------------------------------
// Fig. 11: draining time.

func benchmarkFig11(b *testing.B, s Scheme) {
	cfg := benchConfig()
	var res, ns Result
	for i := 0; i < b.N; i++ {
		res = drainOnce(b, cfg, s)
		ns = drainOnce(b, cfg, NonSecure)
	}
	b.ReportMetric(res.DrainTime.Seconds()*1e3, "drain-ms")
	b.ReportMetric(float64(res.DrainTime)/float64(ns.DrainTime), "x-vs-nonsecure")
}

func BenchmarkFig11_NonSecure(b *testing.B) { benchmarkFig11(b, NonSecure) }
func BenchmarkFig11_BaseLU(b *testing.B)    { benchmarkFig11(b, BaseLU) }
func BenchmarkFig11_BaseEU(b *testing.B)    { benchmarkFig11(b, BaseEU) }
func BenchmarkFig11_HorusSLM(b *testing.B)  { benchmarkFig11(b, HorusSLM) }
func BenchmarkFig11_HorusDLM(b *testing.B)  { benchmarkFig11(b, HorusDLM) }

// --------------------------------------------------------------------------
// Fig. 12: memory-write breakdown. The bench reports the figure's headline
// comparison: CHV MAC-block writes under SLM vs DLM (8x) and total writes.

func BenchmarkFig12_WriteBreakdown(b *testing.B) {
	cfg := benchConfig()
	var slm, dlm Result
	for i := 0; i < b.N; i++ {
		slm = drainOnce(b, cfg, HorusSLM)
		dlm = drainOnce(b, cfg, HorusDLM)
	}
	b.ReportMetric(float64(slm.MemWrites.Get("chv-mac")), "slm-chv-mac-writes")
	b.ReportMetric(float64(dlm.MemWrites.Get("chv-mac")), "dlm-chv-mac-writes")
	b.ReportMetric(float64(slm.MemWrites.Get("chv-mac"))/float64(dlm.MemWrites.Get("chv-mac")), "slm-over-dlm")
}

// --------------------------------------------------------------------------
// Fig. 13: MAC-calculation breakdown. Reports each scheme's total MACs and
// the DLM/SLM ratio (paper: 1.125x).

func BenchmarkFig13_MACBreakdown(b *testing.B) {
	cfg := benchConfig()
	results := map[Scheme]Result{}
	for i := 0; i < b.N; i++ {
		for _, s := range []Scheme{BaseLU, BaseEU, HorusSLM, HorusDLM} {
			results[s] = drainOnce(b, cfg, s)
		}
	}
	b.ReportMetric(float64(results[BaseLU].TotalMACs()), "base-lu-macs")
	b.ReportMetric(float64(results[BaseEU].TotalMACs()), "base-eu-macs")
	b.ReportMetric(float64(results[HorusSLM].TotalMACs()), "horus-slm-macs")
	b.ReportMetric(float64(results[HorusDLM].TotalMACs())/float64(results[HorusSLM].TotalMACs()), "dlm-over-slm")
}

// --------------------------------------------------------------------------
// Figs. 14 & 15: LLC-size sensitivity, normalized to Base-LU.

func benchmarkLLCSweepPoint(b *testing.B, llcBytes int) {
	cfg := benchConfig()
	cfg.LLCBytes = llcBytes
	var lu, slm, dlm Result
	for i := 0; i < b.N; i++ {
		lu = drainOnce(b, cfg, BaseLU)
		slm = drainOnce(b, cfg, HorusSLM)
		dlm = drainOnce(b, cfg, HorusDLM)
	}
	b.ReportMetric(float64(lu.TotalMemAccesses())/float64(slm.TotalMemAccesses()), "fig14-mem-reduction-slm")
	b.ReportMetric(float64(lu.TotalMemAccesses())/float64(dlm.TotalMemAccesses()), "fig14-mem-reduction-dlm")
	b.ReportMetric(float64(lu.TotalMACs())/float64(slm.TotalMACs()), "fig15-mac-reduction-slm")
	b.ReportMetric(float64(lu.TotalMACs())/float64(dlm.TotalMACs()), "fig15-mac-reduction-dlm")
}

func BenchmarkFig14_15_LLC8MB(b *testing.B)  { benchmarkLLCSweepPoint(b, 8<<20) }
func BenchmarkFig14_15_LLC16MB(b *testing.B) { benchmarkLLCSweepPoint(b, 16<<20) }
func BenchmarkFig14_15_LLC32MB(b *testing.B) { benchmarkLLCSweepPoint(b, 32<<20) }

// --------------------------------------------------------------------------
// Fig. 16: recovery time vs LLC size.

func benchmarkFig16(b *testing.B, llcBytes int, s Scheme) {
	cfg := benchConfig()
	cfg.LLCBytes = llcBytes
	var seconds float64
	for i := 0; i < b.N; i++ {
		sys := NewSystem(cfg, s)
		if err := sys.Warmup(); err != nil {
			b.Fatal(err)
		}
		sys.Fill()
		res, err := sys.Drain()
		if err != nil {
			b.Fatal(err)
		}
		sys.Crash()
		rec, err := sys.Recover(res.Persist)
		if err != nil {
			b.Fatal(err)
		}
		seconds = rec.Time().Seconds()
	}
	b.ReportMetric(seconds, "recovery-s")
}

func BenchmarkFig16_LLC8MB_SLM(b *testing.B)   { benchmarkFig16(b, 8<<20, HorusSLM) }
func BenchmarkFig16_LLC32MB_SLM(b *testing.B)  { benchmarkFig16(b, 32<<20, HorusSLM) }
func BenchmarkFig16_LLC128MB_SLM(b *testing.B) { benchmarkFig16(b, 128<<20, HorusSLM) }
func BenchmarkFig16_LLC8MB_DLM(b *testing.B)   { benchmarkFig16(b, 8<<20, HorusDLM) }
func BenchmarkFig16_LLC32MB_DLM(b *testing.B)  { benchmarkFig16(b, 32<<20, HorusDLM) }
func BenchmarkFig16_LLC128MB_DLM(b *testing.B) { benchmarkFig16(b, 128<<20, HorusDLM) }

// --------------------------------------------------------------------------
// Tables II & III: energy and battery volume.

func BenchmarkTable2_3_Energy(b *testing.B) {
	cfg := benchConfig()
	results := map[Scheme]Result{}
	for i := 0; i < b.N; i++ {
		for _, s := range Table2Schemes() {
			results[s] = drainOnce(b, cfg, s)
		}
	}
	for _, s := range Table2Schemes() {
		br := cfg.EnergyOf(results[s])
		b.ReportMetric(br.Total(), fmt.Sprintf("J-%s", s))
		b.ReportMetric(energy.Volume(br.Total(), energy.SuperCap), fmt.Sprintf("cm3-supercap-%s", s))
	}
}

// --------------------------------------------------------------------------
// Headline claims (abstract / §I): 8x memory requests, 7.8x MACs, 5x time.

func BenchmarkHeadline(b *testing.B) {
	cfg := benchConfig()
	var h Headline
	for i := 0; i < b.N; i++ {
		lu := drainOnce(b, cfg, BaseLU)
		slm := drainOnce(b, cfg, HorusSLM)
		h = Headline{
			MemReduction:  float64(lu.TotalMemAccesses()) / float64(slm.TotalMemAccesses()),
			MACReduction:  float64(lu.TotalMACs()) / float64(slm.TotalMACs()),
			TimeReduction: float64(lu.DrainTime) / float64(slm.DrainTime),
		}
	}
	b.ReportMetric(h.MemReduction, "mem-reduction-x")
	b.ReportMetric(h.MACReduction, "mac-reduction-x")
	b.ReportMetric(h.TimeReduction, "time-reduction-x")
}

// --------------------------------------------------------------------------
// Ablations (DESIGN.md §5).

// DLM trades one extra MAC computation per 8 blocks for 8x fewer MAC-block
// writes; sweep the effect at paper scale.
func BenchmarkAblationDLMGroup(b *testing.B) {
	cfg := benchConfig()
	var slm, dlm Result
	for i := 0; i < b.N; i++ {
		slm = drainOnce(b, cfg, HorusSLM)
		dlm = drainOnce(b, cfg, HorusDLM)
	}
	b.ReportMetric(float64(dlm.TotalMACs())/float64(slm.TotalMACs()), "mac-overhead-x")
	b.ReportMetric(float64(slm.MemWrites.Total())/float64(dlm.MemWrites.Total()), "write-saving-x")
}

// Metadata-cache size sensitivity: the baselines' drain cost depends on the
// tree cache; Horus is oblivious.
func BenchmarkAblationMetaCache(b *testing.B) {
	for _, kb := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("tree%dKB", kb), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Sec.TreeCacheBytes = kb << 10
			var lu, slm Result
			for i := 0; i < b.N; i++ {
				lu = drainOnce(b, cfg, BaseLU)
				slm = drainOnce(b, cfg, HorusSLM)
			}
			b.ReportMetric(float64(lu.TotalMemAccesses())/295936.0, "lu-accesses-per-block")
			b.ReportMetric(float64(slm.TotalMemAccesses())/295936.0, "horus-accesses-per-block")
		})
	}
}

// Fill-pattern sensitivity: dense fill (best case for the baselines) vs the
// paper's evenly spread worst case vs a fully shuffled sparse fill.
func BenchmarkAblationFillPattern(b *testing.B) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"dense", func(c *Config) { c.FillPattern = hierarchy.PatternDense }},
		{"paper-strided", func(c *Config) {}},
		{"shuffled-sparse", func(c *Config) {
			c.FillPattern = hierarchy.PatternWorstCaseSparse
			c.FlushShuffle = true
		}},
	}
	for _, cse := range cases {
		b.Run(cse.name, func(b *testing.B) {
			cfg := benchConfig()
			cse.mut(&cfg)
			var lu, slm Result
			for i := 0; i < b.N; i++ {
				lu = drainOnce(b, cfg, BaseLU)
				slm = drainOnce(b, cfg, HorusSLM)
			}
			b.ReportMetric(float64(lu.TotalMemAccesses())/295936.0, "lu-accesses-per-block")
			b.ReportMetric(float64(slm.TotalMemAccesses())/295936.0, "horus-accesses-per-block")
		})
	}
}

// Bank-count sensitivity: draining time is bandwidth-bound, so the hold-up
// budget scales with memory parallelism for every scheme.
func BenchmarkAblationBanks(b *testing.B) {
	for _, banks := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("banks%d", banks), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Mem.Banks = banks
			var ns, slm Result
			for i := 0; i < b.N; i++ {
				ns = drainOnce(b, cfg, NonSecure)
				slm = drainOnce(b, cfg, HorusSLM)
			}
			b.ReportMetric(ns.DrainTime.Seconds()*1e3, "nonsecure-drain-ms")
			b.ReportMetric(slm.DrainTime.Seconds()*1e3, "horus-drain-ms")
		})
	}
}

// Recovery-mechanism comparison: Horus CHV read-back vs the Anubis-style
// metadata vault vs Osiris scan-and-rebuild, for the same crashed state.
func BenchmarkAblationRecoveryMechanisms(b *testing.B) {
	b.Run("horus-chv", func(b *testing.B) {
		cfg := TestConfig()
		var t float64
		for i := 0; i < b.N; i++ {
			_, rec, err := RunRecovery(cfg, HorusSLM)
			if err != nil {
				b.Fatal(err)
			}
			t = rec.Time().Seconds()
		}
		b.ReportMetric(t*1e3, "recovery-ms")
	})
	b.Run("anubis-vault", func(b *testing.B) {
		cfg := TestConfig()
		var t float64
		for i := 0; i < b.N; i++ {
			_, rec, err := RunRecovery(cfg, BaseLU)
			if err != nil {
				b.Fatal(err)
			}
			t = rec.Time().Seconds()
		}
		b.ReportMetric(t*1e3, "recovery-ms")
	})
	b.Run("osiris-rebuild", func(b *testing.B) {
		cfg := TestConfig()
		cfg.Sec.OsirisStopLoss = 4
		var t float64
		for i := 0; i < b.N; i++ {
			ws := NewWorkloadSystem(cfg, BaseLU, DomainADR)
			wl := KVStoreWorkload(WorkloadConfig{Ops: 4000, WorkingSet: 256 << 10, Seed: 17}, 4)
			if err := ws.Run(wl); err != nil {
				b.Fatal(err)
			}
			ws.Machine.Crash()
			ws.Core.Sec.Crash()
			res, err := ws.RecoverWithOsiris()
			if err != nil {
				b.Fatal(err)
			}
			t = res.RecoveryTime.Seconds()
		}
		b.ReportMetric(t*1e3, "recovery-ms")
	})
}

// Recovery-aware vs recovery-oblivious baseline drain (§IV-B: draining
// with recovery-awareness — persisting metadata per write, Osiris-style —
// costs even more than the already-expensive oblivious baseline).
func BenchmarkAblationRecoveryAwareDrain(b *testing.B) {
	cfg := benchConfig()
	var oblivious, aware Result
	for i := 0; i < b.N; i++ {
		oblivious = drainOnce(b, cfg, BaseLU)
		awareCfg := cfg
		awareCfg.Sec.OsirisStopLoss = 4
		aware = drainOnce(b, awareCfg, BaseLU)
	}
	b.ReportMetric(float64(oblivious.MemWrites.Total()), "oblivious-writes")
	b.ReportMetric(float64(aware.MemWrites.Total()), "aware-writes")
	b.ReportMetric(float64(aware.MemWrites.Total())/float64(oblivious.MemWrites.Total()), "aware-over-oblivious")
}

// NVM technology sweep: the write latency varies widely across candidate
// persistent memories; the drain-time gap between Horus and the baseline
// is bandwidth-driven and holds across them.
func BenchmarkAblationNVMWriteLatency(b *testing.B) {
	for _, writeNs := range []int{200, 500, 1000} {
		b.Run(fmt.Sprintf("write%dns", writeNs), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Mem.WriteLatency = Time(writeNs) * 1000 // ns -> ps
			var lu, slm Result
			for i := 0; i < b.N; i++ {
				lu = drainOnce(b, cfg, BaseLU)
				slm = drainOnce(b, cfg, HorusSLM)
			}
			b.ReportMetric(lu.DrainTime.Seconds()*1e3, "lu-drain-ms")
			b.ReportMetric(slm.DrainTime.Seconds()*1e3, "horus-drain-ms")
			b.ReportMetric(float64(lu.DrainTime)/float64(slm.DrainTime), "reduction-x")
		})
	}
}

// Victim-selection policy: preferring clean victims in the metadata caches
// trades clean re-fetches for fewer dirty write-backs (each of which
// cascades into a parent update under the lazy scheme).
func BenchmarkAblationCleanVictims(b *testing.B) {
	for _, prefer := range []bool{false, true} {
		name := "lru"
		if prefer {
			name = "prefer-clean"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.Sec.PreferCleanVictims = prefer
			var lu Result
			for i := 0; i < b.N; i++ {
				lu = drainOnce(b, cfg, BaseLU)
			}
			b.ReportMetric(float64(lu.MemReads.Total()), "reads")
			b.ReportMetric(float64(lu.MemWrites.Total()), "writes")
			b.ReportMetric(lu.DrainTime.Seconds()*1e3, "drain-ms")
		})
	}
}

// Memory-capacity decoupling (§I: Horus "decouples the required backup
// power budget from the memory capacity"): growing the protected NVM
// deepens the integrity tree and inflates the baseline's drain, while
// Horus's cost per block stays constant.
func BenchmarkAblationDataSize(b *testing.B) {
	for _, gb := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("%dGB", gb), func(b *testing.B) {
			cfg := benchConfig()
			cfg.DataSize = uint64(gb) << 30
			var lu, slm Result
			for i := 0; i < b.N; i++ {
				lu = drainOnce(b, cfg, BaseLU)
				slm = drainOnce(b, cfg, HorusSLM)
			}
			blocks := float64(lu.BlocksDrained)
			b.ReportMetric(float64(lu.TotalMemAccesses())/blocks, "lu-accesses-per-block")
			b.ReportMetric(float64(slm.TotalMemAccesses())/blocks, "horus-accesses-per-block")
			b.ReportMetric(lu.DrainTime.Seconds()*1e3, "lu-drain-ms")
			b.ReportMetric(slm.DrainTime.Seconds()*1e3, "horus-drain-ms")
		})
	}
}

// Recovery parallelism: the paper's Fig. 16 estimate is a conservative
// single read stream; a bank-parallel read-back shows the available
// headroom at paper scale (128 MB LLC).
func BenchmarkAblationParallelRecovery(b *testing.B) {
	cfg := benchConfig()
	cfg.LLCBytes = 128 << 20
	var serial, parallel float64
	for i := 0; i < b.N; i++ {
		sys := NewSystem(cfg, HorusSLM)
		sys.Fill()
		res, err := sys.Drain()
		if err != nil {
			b.Fatal(err)
		}
		sys.Crash()
		s, err := RecoverSerial(sys, res.Persist)
		if err != nil {
			b.Fatal(err)
		}
		sys.Core.Sec.Crash()
		p, err := RecoverParallel(sys, res.Persist)
		if err != nil {
			b.Fatal(err)
		}
		serial, parallel = s.Seconds(), p.Seconds()
	}
	b.ReportMetric(serial, "serial-recovery-s")
	b.ReportMetric(parallel, "parallel-recovery-s")
	b.ReportMetric(serial/parallel, "speedup-x")
}

// CHV wear levelling: rotation regions trade reserved NVM capacity for
// endurance of the vault cells.
func BenchmarkAblationCHVRotation(b *testing.B) {
	for _, regions := range []int{1, 4} {
		b.Run(fmt.Sprintf("regions%d", regions), func(b *testing.B) {
			const episodes = 8
			var maxWear int64
			for i := 0; i < b.N; i++ {
				cfg := TestConfig()
				cfg.CHVRegions = regions
				sys := NewSystem(cfg, HorusSLM)
				sys.Fill()
				for e := 0; e < episodes; e++ {
					res, err := sys.Drain()
					if err != nil {
						b.Fatal(err)
					}
					sys.Crash()
					if _, err := sys.Recover(res.Persist); err != nil {
						b.Fatal(err)
					}
				}
				lay := sys.Core.Layout
				maxWear, _ = sys.Core.NVM.WearInRange(lay.CHVDataBase, lay.VaultBase)
			}
			b.ReportMetric(float64(maxWear), "max-chv-cell-writes")
			b.ReportMetric(float64(episodes)/float64(maxWear), "wear-levelling-x")
		})
	}
}

// --------------------------------------------------------------------------
// Substrate microbenchmarks (host-CPU performance of the simulator itself).

func BenchmarkMicroSecureWrite(b *testing.B) {
	cfg := TestConfig()
	sys := NewSystem(cfg, BaseLU)
	var now int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := (uint64(i) * 4096) % cfg.DataSize
		done, err := sys.Core.Sec.WriteBlock(0, addr, [64]byte{0: byte(i)})
		if err != nil {
			b.Fatal(err)
		}
		now += int64(done)
	}
	_ = now
}

func BenchmarkMicroHorusDrainPerBlock(b *testing.B) {
	cfg := TestConfig()
	sys := NewSystem(cfg, HorusSLM)
	sys.Fill()
	blocks := sys.Hierarchy.DirtyBlocks()
	b.ResetTimer()
	drained := 0
	for drained < b.N {
		res, err := sys.Drain()
		if err != nil {
			b.Fatal(err)
		}
		drained += res.BlocksDrained
		b.StopTimer()
		sys = NewSystem(cfg, HorusSLM)
		sys.Fill()
		b.StartTimer()
	}
	_ = blocks
}

// --------------------------------------------------------------------------
// Observability overhead guard: the nil-registry fast path of the
// instrumentation added for the obs subsystem must stay within noise of the
// pre-instrumentation hot loop (<5% on the Fig. 11 drain path). Compare:
//
//	go test -bench=ObsOverhead -benchtime=5x
//
// "disabled" runs with cfg.Metrics == nil (every handle is a nil no-op);
// "enabled" attaches a live registry so the cost of real recording is
// visible next to it.

func benchmarkObsOverhead(b *testing.B, reg *MetricsRegistry) {
	cfg := TestConfig()
	cfg.Metrics = reg
	for i := 0; i < b.N; i++ {
		if _, err := RunDrain(cfg, HorusSLM); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObsDisabledOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) { benchmarkObsOverhead(b, nil) })
	b.Run("enabled", func(b *testing.B) { benchmarkObsOverhead(b, NewMetricsRegistry()) })
}

// BenchmarkTimelineDisabledOverhead is the same contract for the timeline
// recorder: with cfg.Timeline == nil the tracer hook in sim.Resource.Reserve
// is a single pointer check, so the "disabled" sub must match an untraced
// run. "enabled" shows the cost of recording every reservation.
func benchmarkTimelineOverhead(b *testing.B, traced bool) {
	b.ReportAllocs()
	cfg := TestConfig()
	for i := 0; i < b.N; i++ {
		if traced {
			cfg.Timeline = NewTimelineRecorder(0)
		}
		if _, err := RunDrain(cfg, HorusSLM); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTimelineDisabledOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) { benchmarkTimelineOverhead(b, false) })
	b.Run("enabled", func(b *testing.B) { benchmarkTimelineOverhead(b, true) })
}

// BenchmarkTimeseriesDisabledOverhead is the same contract for the
// time-series sampler: with cfg.Timeseries == nil every per-event hook
// (per-block drain samples, per-access bank-depth samples) is a single
// pointer check with zero allocations, so the "disabled" sub must match an
// unsampled run. "enabled" shows the cost of live windowed recording.
func benchmarkTimeseriesOverhead(b *testing.B, sampled bool) {
	b.ReportAllocs()
	cfg := TestConfig()
	for i := 0; i < b.N; i++ {
		if sampled {
			cfg.Timeseries = NewTimeseriesSampler(0, 0)
		}
		if _, err := RunDrain(cfg, HorusSLM); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTimeseriesDisabledOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) { benchmarkTimeseriesOverhead(b, false) })
	b.Run("enabled", func(b *testing.B) { benchmarkTimeseriesOverhead(b, true) })
}
