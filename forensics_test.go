package horus

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/report"
	"repro/internal/sim"
)

// recoverTraced drains and recovers one scheme with a timeline recorder and
// flight recorder attached, returning the system, drain result and report.
func recoverTraced(t *testing.T, scheme Scheme, shards int) (*System, Result, RecoveryReport) {
	t.Helper()
	cfg := TestConfig()
	cfg.Shards = shards
	cfg.Timeline = NewTimelineRecorder(0)
	cfg.Evlog = NewEvlog(0)
	cfg.Metrics = NewMetricsRegistry()
	sys := NewSystem(cfg, scheme)
	if err := sys.Warmup(); err != nil {
		t.Fatal(err)
	}
	sys.Fill()
	res, err := sys.Drain()
	if err != nil {
		t.Fatal(err)
	}
	sys.Crash()
	rec, err := sys.Recover(res.Persist)
	if err != nil {
		t.Fatal(err)
	}
	return sys, res, rec
}

// The recovery-side mirror of TestAttributionTotalsEqualDrainTime: every
// recovery path is its own phase-local episode whose critical-path
// attribution tiles [0, path recovery time) exactly, and the path totals
// sum to RecoveryReport.Time().
func TestRecoveryAttributionTilesRecoveryTime(t *testing.T) {
	for _, scheme := range AllSchemes() {
		if !scheme.Secure() {
			continue
		}
		t.Run(scheme.String(), func(t *testing.T) {
			_, _, rec := recoverTraced(t, scheme, 0)
			recs := rec.Timelines()
			if len(recs) == 0 {
				// Eager baselines flush metadata in place: an empty vault
				// means no recovery work, so no episode is bracketed.
				if rec.Time() != 0 {
					t.Fatalf("no recovery timelines captured for a %v recovery", rec.Time())
				}
				return
			}
			var sum sim.Time
			for _, r := range recs {
				if !strings.HasPrefix(r.Episode, "recover-") {
					t.Errorf("episode %q does not name a recovery path", r.Episode)
				}
				if !strings.HasSuffix(r.Episode, ":"+scheme.String()) {
					t.Errorf("episode %q does not carry the scheme label", r.Episode)
				}
				att := AnalyzeTimeline(r)
				if att.Total <= 0 {
					t.Fatalf("%s: empty recording", r.Episode)
				}
				if got := att.AttributedTotal(); got != att.Total {
					t.Errorf("%s: attributed total %v != recording total %v", r.Episode, got, att.Total)
				}
				var cursor sim.Time
				for i, s := range att.Steps {
					if s.From != cursor {
						t.Fatalf("%s: step %d starts at %v, want %v (steps must tile the episode)",
							r.Episode, i, s.From, cursor)
					}
					cursor = s.To
				}
				if cursor != att.Total {
					t.Fatalf("%s: steps end at %v, want %v", r.Episode, cursor, att.Total)
				}
				sum += r.Total
			}
			if sum != rec.Time() {
				t.Errorf("path totals sum to %v, want recovery time %v", sum, rec.Time())
			}
			// The per-path recordings are also surfaced on the results.
			if rec.Horus != nil && rec.Horus.Timeline.Total != rec.Horus.RecoveryTime {
				t.Errorf("CHV recording total %v != RecoveryTime %v",
					rec.Horus.Timeline.Total, rec.Horus.RecoveryTime)
			}
			if rec.Baseline != nil && rec.Baseline.Timeline != nil &&
				rec.Baseline.Timeline.Total != rec.Baseline.RecoveryTime {
				t.Errorf("vault recording total %v != RecoveryTime %v",
					rec.Baseline.Timeline.Total, rec.Baseline.RecoveryTime)
			}
		})
	}
}

// Recovery publishes its per-path metrics with scheme and path labels and a
// merge-safe histogram, so grids at any parallelism keep every episode's
// value (the last-write-wins gauge bug).
func TestRecoveryMetricsPerSchemeUnderParallel(t *testing.T) {
	cfg := TestConfig()
	cfg.Metrics = NewMetricsRegistry()
	var points []DrainPoint
	schemes := []Scheme{BaseLU, HorusSLM, HorusDLM}
	for _, s := range schemes {
		points = append(points, DrainPoint{Config: cfg, Scheme: s, Recover: true})
	}
	results, err := RunDrainGrid(context.Background(), points, SweepOptions{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]map[string]float64{} // scheme -> path -> time
	for _, pr := range results {
		m := map[string]float64{}
		if pr.Recovery.Horus != nil {
			m["chv"] = float64(pr.Recovery.Horus.RecoveryTime)
		}
		if pr.Recovery.Baseline != nil && pr.Recovery.Baseline.LinesRestored > 0 {
			m["vault"] = float64(pr.Recovery.Baseline.RecoveryTime)
		}
		want[pr.Point.Scheme.String()] = m
	}
	snap := cfg.Metrics.Snapshot()
	got := map[string]map[string]float64{}
	for _, g := range snap.Gauges {
		if g.Name != "horus_recovery_time_ps" {
			continue
		}
		s, p := g.Labels["scheme"], g.Labels["path"]
		if got[s] == nil {
			got[s] = map[string]float64{}
		}
		got[s][p] = g.Value
	}
	for s, paths := range want {
		for p, v := range paths {
			if got[s][p] != v {
				t.Errorf("horus_recovery_time_ps{scheme=%q,path=%q} = %v, want %v (merged at parallel 8)",
					s, p, got[s][p], v)
			}
		}
	}
	// The histogram sibling survives merges losslessly: one observation per
	// recovered path across the whole grid.
	wantObs := 0
	for _, paths := range want {
		wantObs += len(paths)
	}
	var obs int64
	for _, h := range snap.Histograms {
		if h.Name == "horus_recovery_time_hist_ps" {
			obs += h.Count
		}
	}
	if int(obs) != wantObs {
		t.Errorf("horus_recovery_time_hist_ps holds %d observations, want %d", obs, wantObs)
	}
}

// Every registered horus_* metric must carry a non-empty help string — the
// registry lint behind the documented /metrics endpoint.
func TestMetricsHelpLint(t *testing.T) {
	cfg := TestConfig()
	cfg.Metrics = NewMetricsRegistry()
	cfg.Timeline = NewTimelineRecorder(0)
	cfg.Timeseries = NewTimeseriesSampler(0, 0)
	cfg.BatteryJoules = 1.0

	// Exercise the drain + recovery grid (all schemes)…
	var points []DrainPoint
	for _, s := range AllSchemes() {
		points = append(points, DrainPoint{Config: cfg, Scheme: s, Recover: s.Secure()})
	}
	if _, err := RunDrainGrid(context.Background(), points, SweepOptions{Parallel: 4}); err != nil {
		t.Fatal(err)
	}
	// …a run-time workload…
	ws := NewWorkloadSystem(cfg, HorusSLM, DomainEPD)
	if err := ws.Run(UniformWorkload(WorkloadConfig{Ops: 200, WorkingSet: 8 << 10, Seed: 3, PersistPercent: 10})); err != nil {
		t.Fatal(err)
	}
	ws.Machine.PublishMetrics()
	// …an Osiris counter reconstruction…
	ocfg := TestConfig()
	ocfg.Metrics = cfg.Metrics
	ocfg.Sec.OsirisStopLoss = 4
	ows := NewWorkloadSystem(ocfg, BaseLU, DomainADR)
	if err := ows.Run(UniformWorkload(WorkloadConfig{Ops: 100, WorkingSet: 4 << 10, Seed: 5, PersistPercent: 20})); err != nil {
		t.Fatal(err)
	}
	ows.Machine.Crash()
	ows.Core.Sec.Crash()
	if _, err := ows.RecoverWithOsiris(); err != nil {
		t.Fatal(err)
	}
	// …and the torture + litmus harnesses (small slices).
	if _, err := RunTortureMatrix(context.Background(), TortureConfig{
		Config: cfg, Schemes: []Scheme{HorusSLM}, Flavors: []CrashFlavor{CrashBitFlip},
		Stride: 7, MaxPoints: 2,
	}, SweepOptions{Parallel: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunLitmus(context.Background(), LitmusConfig{
		Config: cfg, Schemes: []Scheme{HorusSLM}, MaxEpochs: 2, MaxOrderings: 4,
		NewWorkload: func(seed int64) *Workload {
			return UniformWorkload(WorkloadConfig{Ops: 300, WorkingSet: 16 << 10, Seed: seed, PersistPercent: 10})
		},
		Corrupt: AllCorruptionModels(), CorruptTrials: 1,
	}, SweepOptions{Parallel: 2}); err != nil {
		t.Fatal(err)
	}

	names := cfg.Metrics.SortedSeriesNames()
	if len(names) == 0 {
		t.Fatal("no metrics registered")
	}
	for _, name := range names {
		if !strings.HasPrefix(name, "horus_") {
			t.Errorf("metric %q violates the horus_ naming convention", name)
			continue
		}
		if cfg.Metrics.Help(name) == "" {
			t.Errorf("metric %q has no help string", name)
		}
	}
}

// spliceCHV swaps the first two CHV payload blocks after the crash — the
// canonical undetectable-without-address-MACs attack.
func spliceCHV(sys *System) {
	lay := sys.Core.Layout
	store := sys.Core.NVM.Store()
	a0, a1 := lay.CHVDataAddr(0), lay.CHVDataAddr(1)
	b0, b1 := store.ReadBlock(a0), store.ReadBlock(a1)
	store.WriteBlock(a0, b1)
	store.WriteBlock(a1, b0)
}

// A refused recovery must carry its full forensic provenance: the failing
// check, the detection latency, and a non-empty flight-recorder chain whose
// last record is the failure itself.
func TestForensicChainOnDetection(t *testing.T) {
	cfg := TestConfig()
	cfg.Evlog = NewEvlog(0)
	sys := NewSystem(cfg, HorusSLM)
	if err := sys.Warmup(); err != nil {
		t.Fatal(err)
	}
	sys.Fill()
	res, err := sys.Drain()
	if err != nil {
		t.Fatal(err)
	}
	sys.Crash()
	spliceCHV(sys)
	_, err = sys.Recover(res.Persist)
	if err == nil {
		t.Fatal("spliced CHV must refuse recovery")
	}
	f := ForensicFromError(err, "recovery")
	if f == nil {
		t.Fatal("no forensic from a typed detection")
	}
	if f.Check == "" || f.Region == "" {
		t.Errorf("forensic misses check/region: %+v", f)
	}
	if f.DetectLatencyPs <= 0 {
		t.Errorf("detection latency %d ps, want > 0", f.DetectLatencyPs)
	}
	if len(f.Chain) == 0 {
		t.Fatal("empty provenance chain with a flight recorder attached")
	}
	last := f.Chain[len(f.Chain)-1]
	if last.Outcome != "fail" || last.Check != f.Check {
		t.Errorf("chain tail %+v does not record the failing check %q", last, f.Check)
	}
	tbl := report.ForensicTable(*f).String()
	for _, want := range []string{f.Check, f.Region, "fail"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("forensic table misses %q:\n%s", want, tbl)
		}
	}

	// The chain serializes to one JSON object per line.
	var b strings.Builder
	if err := WriteEvlogJSONL(&b, f.Chain...); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != len(f.Chain) {
		t.Fatalf("%d JSONL lines for %d records", len(lines), len(f.Chain))
	}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
	}
}

// The forensic story is part of the determinism contract: the torture
// matrix's forensic table and detection-latency metrics are byte-identical
// whether cells run on one worker or eight.
func TestForensicParallelDeterminism(t *testing.T) {
	render := func(parallel int) (string, string) {
		cfg := TestConfig()
		cfg.Metrics = NewMetricsRegistry()
		rep, err := RunTortureMatrix(context.Background(), TortureConfig{
			Config:  cfg,
			Schemes: []Scheme{HorusSLM, BaseLU},
			Flavors: []CrashFlavor{CrashBitFlip},
			Stride:  5, MaxPoints: 4,
		}, SweepOptions{Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := cfg.Metrics.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return rep.ForensicTable().String(), b.String()
	}
	seqTab, seqMet := render(1)
	parTab, parMet := render(8)
	if seqTab != parTab {
		t.Errorf("forensic table differs between -parallel 1 and 8:\n--- parallel=1\n%s\n--- parallel=8\n%s", seqTab, parTab)
	}
	if seqMet != parMet {
		t.Error("metrics snapshot differs between -parallel 1 and 8")
	}
	if !strings.Contains(seqMet, "horus_recovery_detect_latency_blocks") ||
		!strings.Contains(seqMet, "horus_recovery_detect_latency_ps") {
		t.Error("bit-flip matrix recorded no detection-latency histograms")
	}
}

// Sharded drains must not leak into the forensic record: the refused
// recovery's chain JSONL and the clean recovery's attribution table are
// byte-identical at any -shards.
func TestForensicShardDeterminism(t *testing.T) {
	chain := func(shards int) string {
		cfg := TestConfig()
		cfg.Shards = shards
		cfg.Evlog = NewEvlog(0)
		sys := NewSystem(cfg, HorusDLM)
		if err := sys.Warmup(); err != nil {
			t.Fatal(err)
		}
		sys.Fill()
		res, err := sys.Drain()
		if err != nil {
			t.Fatal(err)
		}
		sys.Crash()
		spliceCHV(sys)
		_, err = sys.Recover(res.Persist)
		if err == nil {
			t.Fatal("spliced CHV must refuse recovery")
		}
		f := ForensicFromError(err, "recovery")
		var b strings.Builder
		if err := WriteEvlogJSONL(&b, f.Chain...); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if one, eight := chain(1), chain(8); one != eight {
		t.Errorf("forensic chain differs between -shards 1 and 8:\n--- shards=1\n%s\n--- shards=8\n%s", one, eight)
	}

	attrib := func(shards int) string {
		_, _, rec := recoverTraced(t, HorusDLM, shards)
		return report.AttributionTableTitled("Recovery critical path by binding resource",
			"(recovery time)", rec.Attributions()...).String()
	}
	if one, eight := attrib(1), attrib(8); one != eight {
		t.Errorf("recovery attribution differs between -shards 1 and 8:\n--- shards=1\n%s\n--- shards=8\n%s", one, eight)
	}
}

// The flight recorder observes; it must never participate. A run with the
// recorder attached produces the identical drain and recovery result.
func TestEvlogDoesNotPerturbResults(t *testing.T) {
	run := func(attach bool) (Result, RecoveryReport) {
		cfg := TestConfig()
		if attach {
			cfg.Evlog = NewEvlog(0)
		}
		sys := NewSystem(cfg, HorusSLM)
		if err := sys.Warmup(); err != nil {
			t.Fatal(err)
		}
		sys.Fill()
		res, err := sys.Drain()
		if err != nil {
			t.Fatal(err)
		}
		sys.Crash()
		rec, err := sys.Recover(res.Persist)
		if err != nil {
			t.Fatal(err)
		}
		return res, rec
	}
	plainRes, plainRec := run(false)
	obsRes, obsRec := run(true)
	if plainRes.DrainTime != obsRes.DrainTime {
		t.Errorf("drain time changed with the flight recorder on: %v vs %v", plainRes.DrainTime, obsRes.DrainTime)
	}
	if plainRec.Time() != obsRec.Time() {
		t.Errorf("recovery time changed with the flight recorder on: %v vs %v", plainRec.Time(), obsRec.Time())
	}
}

// The recovery paths feed the live telemetry: with a sampler attached, a
// traced recovery records the per-path block and MAC-op series.
func TestRecoveryTimeseries(t *testing.T) {
	cfg := TestConfig()
	cfg.Timeseries = NewTimeseriesSampler(0, 0)
	sys := NewSystem(cfg, HorusSLM)
	if err := sys.Warmup(); err != nil {
		t.Fatal(err)
	}
	sys.Fill()
	res, err := sys.Drain()
	if err != nil {
		t.Fatal(err)
	}
	sys.Crash()
	if _, err := sys.Recover(res.Persist); err != nil {
		t.Fatal(err)
	}
	snap := cfg.Timeseries.Snapshot()
	for _, name := range []string{"horus_ts_recovery_blocks", "horus_ts_recovery_mac_ops"} {
		series := snap.Find(name)
		if len(series) == 0 {
			t.Errorf("no %s series recorded", name)
			continue
		}
		for _, s := range series {
			if s.Labels["scheme"] == "" || s.Labels["path"] == "" {
				t.Errorf("%s series misses scheme/path labels: %v", name, s.Labels)
			}
		}
	}
}
