package horus

import (
	"math"
	"testing"
)

// The planner must track the simulator within tolerance across schemes and
// LLC sizes at the paper's regime — that is what makes it usable for
// platform sizing without running the simulator.
func TestPlannerTracksSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale validation")
	}
	cfg := DefaultConfig()
	for _, llc := range []int{8 << 20, 16 << 20} {
		c := cfg
		c.LLCBytes = llc
		for _, scheme := range []Scheme{NonSecure, BaseLU, HorusSLM, HorusDLM} {
			plan := PlanBattery(c, scheme)
			res, err := RunDrain(c, scheme)
			if err != nil {
				t.Fatal(err)
			}
			checkWithin(t, scheme.String()+"/writes", float64(plan.Writes), float64(res.MemWrites.Total()), 0.25)
			if res.MemReads.Total() > 0 {
				checkWithin(t, scheme.String()+"/reads", float64(plan.Reads), float64(res.MemReads.Total()), 0.35)
			}
			checkWithin(t, scheme.String()+"/time", float64(plan.DrainTime), float64(res.DrainTime), 0.45)
			sim := c.EnergyOf(res).Total()
			checkWithin(t, scheme.String()+"/energy", plan.EnergyJ, sim, 0.5)
		}
	}
}

func checkWithin(t *testing.T, what string, est, sim, tol float64) {
	t.Helper()
	if sim == 0 {
		return
	}
	if rel := math.Abs(est-sim) / sim; rel > tol {
		t.Errorf("%s: estimate %.3g vs simulated %.3g (%.0f%% off, tolerance %.0f%%)",
			what, est, sim, rel*100, tol*100)
	}
}

func TestPlannerOrderingAndScaling(t *testing.T) {
	cfg := DefaultConfig()
	lu := PlanBattery(cfg, BaseLU)
	eu := PlanBattery(cfg, BaseEU)
	slm := PlanBattery(cfg, HorusSLM)
	dlm := PlanBattery(cfg, HorusDLM)
	ns := PlanBattery(cfg, NonSecure)

	if !(ns.DrainTime < slm.DrainTime && slm.DrainTime < lu.DrainTime && lu.DrainTime < eu.DrainTime) {
		t.Errorf("planner ordering broken: ns=%v slm=%v lu=%v eu=%v",
			ns.DrainTime, slm.DrainTime, lu.DrainTime, eu.DrainTime)
	}
	if dlm.Writes >= slm.Writes {
		t.Error("DLM must plan fewer writes than SLM")
	}
	if dlm.MACs <= slm.MACs {
		t.Error("DLM must plan more MACs than SLM")
	}
	// Doubling the LLC roughly doubles the plan.
	cfg2 := cfg
	cfg2.LLCBytes = 32 << 20
	slm2 := PlanBattery(cfg2, HorusSLM)
	ratio := float64(slm2.Writes) / float64(slm.Writes)
	if ratio < 1.7 || ratio > 2.1 {
		t.Errorf("write scaling with LLC = %.2f, want ~1.9", ratio)
	}
	if slm.SuperCapCm3 <= slm.LiThinCm3 {
		t.Error("SuperCap must be bulkier than Li-thin")
	}
}
