package horus

import (
	"errors"
	"fmt"

	"repro/internal/obs/evlog"
	"repro/internal/osiris"
	"repro/internal/recovery"
	"repro/internal/secmem"
	"repro/internal/timeline"
)

// Evlog is the detection-forensics flight recorder (re-exported from
// internal/obs/evlog): a bounded, episode-bracketed ring of structured
// records, one per recovery decision. Attach one via Config.Evlog; every
// typed recovery error then carries the trailing records as its provenance
// chain. All methods are nil-safe.
type Evlog = evlog.Log

// EvlogRecord is one recovery decision in the flight recorder.
type EvlogRecord = evlog.Record

// Forensic is the portable summary of one detection: the failing check,
// where it fired, how much data recovery had scanned, and the trailing
// provenance chain. Render one or more with report.ForensicTable.
type Forensic = evlog.Forensic

// NewEvlog returns a flight recorder retaining at most limit records
// (0 selects the default bound).
func NewEvlog(limit int) *Evlog { return evlog.New(limit) }

// WriteEvlogJSONL writes flight-recorder records as JSON lines.
func WriteEvlogJSONL(w interface{ Write([]byte) (int, error) }, recs ...EvlogRecord) error {
	return evlog.WriteJSONL(w, recs...)
}

// ForensicFromError distills a typed detection error into a Forensic,
// stamped with the recovery phase that raised it ("CHV recovery",
// "metadata vault", "baseline recovery", "post-recovery read"). Untyped
// errors still produce a Forensic carrying the message, so a forensic
// report never comes back empty-handed; nil errors return nil.
func ForensicFromError(err error, phase string) *Forensic {
	if err == nil {
		return nil
	}
	var re *recovery.Error
	if errors.As(err, &re) {
		f := &Forensic{Phase: phase, Check: re.Check, Region: re.Region,
			Addr: re.Addr, Slot: re.Slot, Expected: re.Expected, Got: re.Got,
			BlocksScanned: re.BlocksScanned, DetectLatencyPs: re.DetectLatencyPs,
			Detail: re.Detail, Chain: re.Chain}
		if f.Check == "" {
			// Errors built before the instrumentation (or by tests) still
			// name the generic verification category.
			f.Check = recovery.MACRecoveryVerify
		}
		return f
	}
	var oe *osiris.Error
	if errors.As(err, &oe) {
		f := &Forensic{Phase: phase, Check: oe.Check, Region: oe.Region,
			Addr: oe.Addr, Expected: oe.Expected,
			BlocksScanned: oe.BlocksScanned, DetectLatencyPs: oe.DetectLatencyPs,
			Detail: oe.Detail, Chain: oe.Chain}
		if f.Check == "" {
			f.Check = "osiris-counter-trial"
		}
		return f
	}
	var ie *secmem.IntegrityError
	if errors.As(err, &ie) {
		return &Forensic{Phase: phase, Check: "secmem-" + ie.Kind.String(),
			Region: "runtime", Addr: ie.Addr,
			Detail: fmt.Sprintf("level %d index %d: %s", ie.Level, ie.Index, ie.Detail)}
	}
	return &Forensic{Phase: phase, Detail: err.Error()}
}

// Timelines returns the captured recovery-path recordings in execution
// order (vault restore before CHV read-back); empty when no recorder was
// attached. Each recording is an independent phase-local episode, so
// AnalyzeTimeline on each tiles exactly its path's recovery time, and
// WriteChromeTrace accepts the whole slice.
func (r RecoveryReport) Timelines() []*TimelineRecording {
	var out []*TimelineRecording
	if r.Baseline != nil && r.Baseline.Timeline != nil {
		out = append(out, r.Baseline.Timeline)
	}
	if r.Horus != nil && r.Horus.Timeline != nil {
		out = append(out, r.Horus.Timeline)
	}
	return out
}

// Attributions analyzes every captured recovery-path recording; render
// them with report.AttributionTableTitled("Recovery critical path by
// binding resource", "(recovery time)", ...).
func (r RecoveryReport) Attributions() []TimelineAttribution {
	var out []TimelineAttribution
	for _, rec := range r.Timelines() {
		out = append(out, timeline.Analyze(rec))
	}
	return out
}
