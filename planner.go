package horus

import (
	"context"
	"fmt"

	"repro/internal/energy"
	"repro/internal/mem"
	"repro/internal/sim"
)

// BatteryPlan is a closed-form estimate of an EPD platform's worst-case
// draining episode: the sizing exercise the paper argues every secure EPD
// deployment must do (§I, §V-G). Estimates are analytic — no simulation —
// and validated against the simulator to within tens of percent
// (TestPlannerTracksSimulation); use RunDrain for exact numbers.
type BatteryPlan struct {
	Scheme Scheme
	Blocks int // worst-case dirty lines (total hierarchy capacity)

	// Estimated draining traffic.
	Writes int64
	Reads  int64
	MACs   int64

	// DrainTime is the bandwidth-bound hold-up estimate.
	DrainTime Time
	// EnergyJ and the battery volumes follow Table II/III's model.
	EnergyJ     float64
	SuperCapCm3 float64
	LiThinCm3   float64
}

// Per-block traffic constants for the baselines in the paper's worst-case
// regime (spacing = memory/cache capacity, Table I metadata caches),
// calibrated once against the simulator. The Horus schemes need no
// calibration — their costs are exact by construction.
const (
	planLUWritesPerBlock = 4.6
	planLUReadsPerBlock  = 5.2
	planLUMACsPerBlock   = 7.8
	planEUWritesPerBlock = 4.55
	planEUReadsPerBlock  = 3.5
	planEUMACsPerBlock   = 11.5
	// planChainInflation covers dependency-chain overhead above the pure
	// bandwidth bound observed in simulation.
	planChainInflation = 1.25
)

// PlanBattery computes the worst-case draining estimate for a scheme under
// the given configuration.
func PlanBattery(cfg Config, scheme Scheme) BatteryPlan {
	h := cfg.hierarchyConfig()
	n := int64(h.TotalLines())
	metaLines := int64((cfg.Sec.CounterCacheBytes + cfg.Sec.MACCacheBytes + cfg.Sec.TreeCacheBytes) / mem.BlockSize)

	p := BatteryPlan{Scheme: scheme, Blocks: int(n)}
	switch scheme {
	case NonSecure:
		p.Writes = n
	case HorusSLM:
		p.Writes = n + (n+7)/8 + (n+7)/8 + metaLines
		p.MACs = n + metaLines + metaLines/7
	case HorusDLM:
		p.Writes = n + (n+7)/8 + (n+63)/64 + metaLines
		p.MACs = n + (n+7)/8 + metaLines + metaLines/7
	case BaseLU:
		p.Writes = int64(planLUWritesPerBlock * float64(n))
		p.Reads = int64(planLUReadsPerBlock * float64(n))
		p.MACs = int64(planLUMACsPerBlock * float64(n))
	case BaseEU:
		p.Writes = int64(planEUWritesPerBlock * float64(n))
		p.Reads = int64(planEUReadsPerBlock * float64(n))
		p.MACs = int64(planEUMACsPerBlock * float64(n))
	}

	// Bandwidth bound: banks, bus and the MAC engine are the candidate
	// bottlenecks; dependency chains inflate the winner.
	mcfg := cfg.Mem
	bankTime := (sim.Time(p.Writes)*mcfg.WriteLatency + sim.Time(p.Reads)*mcfg.ReadLatency) / sim.Time(mcfg.Banks)
	busTime := sim.Time(p.Writes+p.Reads) * mcfg.BusSlot
	clk := sim.NewClock(cfg.Sec.ClockHz)
	macTime := sim.Time(p.MACs) * clk.Cycles(cfg.Sec.MACIICycle)
	bound := sim.MaxTime(bankTime, sim.MaxTime(busTime, macTime))
	p.DrainTime = sim.Time(float64(bound) * planChainInflation)

	b := energy.Estimate(cfg.Energy, p.DrainTime, p.Writes, p.Reads)
	p.EnergyJ = b.Total()
	p.SuperCapCm3 = energy.Volume(p.EnergyJ, energy.SuperCap)
	p.LiThinCm3 = energy.Volume(p.EnergyJ, energy.LiThin)
	return p
}

// PlanValidation pairs a closed-form battery plan with the simulated
// draining episode it estimates, and the hold-up estimate error.
type PlanValidation struct {
	Scheme    Scheme
	Plan      BatteryPlan
	Simulated Result
	// ErrorPct is (estimate - simulated)/simulated hold-up, in percent.
	ErrorPct float64
}

// ValidatePlans simulates a draining episode per scheme and compares it to
// PlanBattery's closed-form estimate.
func ValidatePlans(cfg Config, schemes []Scheme) ([]PlanValidation, error) {
	return ValidatePlansCtx(context.Background(), cfg, schemes, SweepOptions{})
}

// ValidatePlansCtx is ValidatePlans through the episode engine: one grid
// point per scheme, run on the engine's worker pool. On failure it returns
// the validations that completed alongside the aggregate error.
func ValidatePlansCtx(ctx context.Context, cfg Config, schemes []Scheme, opts SweepOptions) ([]PlanValidation, error) {
	points := make([]DrainPoint, len(schemes))
	for i, s := range schemes {
		points[i] = DrainPoint{Label: "validate/" + s.String(), Config: cfg, Scheme: s}
	}
	prs, err := RunDrainGrid(ctx, points, opts)
	var out []PlanValidation
	for i, pr := range prs {
		if pr.Err != nil {
			continue
		}
		p := PlanBattery(cfg, schemes[i])
		out = append(out, PlanValidation{
			Scheme:    schemes[i],
			Plan:      p,
			Simulated: pr.Result,
			ErrorPct:  100 * (float64(p.DrainTime) - float64(pr.Result.DrainTime)) / float64(pr.Result.DrainTime),
		})
	}
	if err != nil {
		return out, fmt.Errorf("horus: plan validation: %w", err)
	}
	return out, nil
}
