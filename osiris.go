package horus

import (
	"fmt"

	"repro/internal/osiris"
)

// OsirisResult reports an Osiris-style vault-free metadata recovery.
type OsirisResult = osiris.Result

// OsirisError is the typed failure of an Osiris recovery.
type OsirisError = osiris.Error

// RecoverWithOsiris reconstructs the system's encryption counters and
// integrity tree after a crash using the Osiris stop-loss mechanism
// (§II-C), instead of the Anubis-style metadata vault. The system must
// have been configured with Config.Sec.OsirisStopLoss > 0 so that run-time
// writes persisted counters within the stop-loss window and co-located
// MACs with data.
//
// Trade-off versus the vault (and versus Horus): no vault flush is needed
// during the drain, but recovery scans all of memory, tries up to
// stop-loss MAC candidates per block, and rebuilds the whole tree — the
// recovery-time cost the related-work section discusses.
func (s *System) RecoverWithOsiris() (OsirisResult, error) {
	n := s.Config.Sec.OsirisStopLoss
	if n <= 0 {
		return OsirisResult{}, fmt.Errorf("horus: RecoverWithOsiris requires Config.Sec.OsirisStopLoss > 0")
	}
	return osiris.RecoverLabeled(s.Core, n, s.Scheme.String())
}

// RecoverWithOsiris is the workload-system variant.
func (ws *WorkloadSystem) RecoverWithOsiris() (OsirisResult, error) {
	n := ws.Config.Sec.OsirisStopLoss
	if n <= 0 {
		return OsirisResult{}, fmt.Errorf("horus: RecoverWithOsiris requires Config.Sec.OsirisStopLoss > 0")
	}
	return osiris.RecoverLabeled(ws.Core, n, ws.Scheme.String())
}
