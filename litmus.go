package horus

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bmt"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/litmus"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/obs/evlog"
	"repro/internal/recovery"
	"repro/internal/report"
	"repro/internal/sweep"
)

// CorruptionModel is a corruption shape of the coverage sweep (re-exported).
type CorruptionModel = litmus.Model

// AllCorruptionModels lists every coverage corruption model (re-exported).
func AllCorruptionModels() []CorruptionModel { return litmus.AllModels() }

// ParseCorruptionModels parses a comma-separated model list ("all" = every
// model, "none" = disable the coverage sweep), re-exported for the CLIs.
func ParseCorruptionModels(s string) ([]CorruptionModel, error) { return litmus.ParseModels(s) }

// LitmusConfig parameterises the persistency-litmus run: which schemes to
// record, how many admissible write orderings to explore per epoch, and
// which corruption models to sweep over the completed drain image.
type LitmusConfig struct {
	// Config is the machine configuration (typically TestConfig()). Its
	// Metrics/Timeseries sinks, when set, receive aggregate outcome
	// counters after the run; cells themselves run uninstrumented.
	Config Config
	// Schemes are the drain designs to check; empty means the four secure
	// schemes. NonSecure is rejected: with no MACs nothing can be detected,
	// so the never-silent contract does not apply.
	Schemes []Scheme
	// NewWorkload builds the pre-crash workload stream from a seed; nil
	// selects the torture matrix's small mixed stream.
	NewWorkload func(seed int64) *Workload
	// MaxOrderings is the distinct-ordering target per sampled epoch
	// (0 = 128). Epochs of at most ExhaustiveWrites writes are enumerated
	// exhaustively instead.
	MaxOrderings int
	// ExhaustiveWrites is the largest epoch enumerated exhaustively (0 = 5).
	ExhaustiveWrites int
	// MaxEpochs caps the epochs explored per scheme (0 = all). Epochs are
	// thinned evenly, always keeping the first and last.
	MaxEpochs int
	// Corrupt selects the coverage sweep's corruption models; nil skips
	// the coverage sweep entirely.
	Corrupt []CorruptionModel
	// CorruptTrials is the number of trials per (scheme, model, target)
	// coverage cell (0 = 6). Each trial corrupts one deterministically
	// chosen victim block of the completed drain image.
	CorruptTrials int
}

func (lc *LitmusConfig) corruptTrials() int {
	if lc.CorruptTrials <= 0 {
		return 6
	}
	return lc.CorruptTrials
}

// LitmusCell is one (scheme, epoch, ordering) verdict: the recovery outcome
// of crashing at the epoch's barrier with exactly that admissible subset of
// the epoch's writes durable.
type LitmusCell struct {
	Scheme      Scheme
	Epoch       int    // epoch index within the drain episode
	Stage       string // persist-stage label that opened the epoch
	Kind        string // how the ordering was generated (litmus.Ordering.Kind)
	Applied     int    // writes of the epoch that landed
	EpochWrites int    // total writes of the epoch
	Outcome     CrashOutcome
	Detail      string
	// Forensic explains a detection (failing check, region, blocks scanned,
	// provenance chain); nil for clean cells.
	Forensic *Forensic
}

// Label names the cell in reports and errors.
func (c LitmusCell) Label() string {
	return fmt.Sprintf("%s/epoch%d(%s)/%s[%d/%d]", c.Scheme, c.Epoch, c.Stage, c.Kind, c.Applied, c.EpochWrites)
}

// CoverageCell aggregates one (scheme, model, target-region) coverage cell:
// how many corruption trials were detected, silently accepted, or masked
// (no observable effect on recovery or post-recovery reads).
type CoverageCell struct {
	Scheme   Scheme
	Model    CorruptionModel
	Target   string // layout region of the victim block
	Trials   int
	Detected int
	Silent   int
	Masked   int
	Internal int
	// Forensics explains each detected trial, in trial order (trials run
	// sequentially inside one episode, so the order is deterministic).
	Forensics []*Forensic
}

// DetectionRate returns detected/(detected+silent), the probability that an
// observable corruption was caught; ok is false when every trial was masked.
func (c CoverageCell) DetectionRate() (float64, bool) {
	obs := c.Detected + c.Silent
	if obs == 0 {
		return 0, false
	}
	return float64(c.Detected) / float64(obs), true
}

// LitmusWitness is a minimized silent-corruption (or internal-error)
// reproduction: the smallest admissible applied set that still fails.
type LitmusWitness struct {
	Cell    LitmusCell
	Applied []int    // minimized epoch-relative applied write indices
	Trace   []string // one human-readable line per applied write
}

// LitmusReport is the full persistency-litmus verdict.
type LitmusReport struct {
	// Cells holds every ordering cell in (scheme, epoch, ordering) order,
	// deterministic for a given config regardless of worker count.
	Cells []LitmusCell
	// Coverage holds the corruption-detection coverage cells, in
	// (scheme, model, target) order; empty when the sweep was skipped.
	Coverage []CoverageCell
	// Steps records each scheme's recorded drain-write count.
	Steps map[Scheme]int
	// Epochs records each scheme's (non-empty) epoch count.
	Epochs map[Scheme]int
	// Witness is the minimized reproduction of the first failing ordering
	// cell, nil when every cell satisfied the contract.
	Witness *LitmusWitness
}

// Failures returns the contract violations: ordering cells that ended in
// silent corruption or an internal error, plus coverage cells with silent
// trials under a non-freshness model (unkeyed corruption must always be
// detected; freshness gaps of lazy schemes are reported, not failed) or any
// internal error.
func (r *LitmusReport) Failures() []string {
	var out []string
	for _, c := range r.Cells {
		if !c.Outcome.OK() {
			out = append(out, fmt.Sprintf("%s: %s (%s)", c.Label(), c.Outcome, c.Detail))
		}
	}
	for _, c := range r.Coverage {
		if c.Internal > 0 {
			out = append(out, fmt.Sprintf("%s/%s/%s: %d internal errors", c.Scheme, c.Model, c.Target, c.Internal))
		}
		if c.Silent > 0 && !freshnessModel(c.Model) {
			out = append(out, fmt.Sprintf("%s/%s/%s: %d/%d unkeyed corruptions silently accepted", c.Scheme, c.Model, c.Target, c.Silent, c.Trials))
		}
	}
	return out
}

// Ok reports whether the run satisfied the never-silent contract.
func (r *LitmusReport) Ok() bool { return len(r.Failures()) == 0 }

// freshnessModel reports whether the model is a replay of authentic stale
// bytes — detectable only with freshness (counters bound to a root), not
// with MACs alone.
func freshnessModel(m CorruptionModel) bool {
	return m == litmus.Rollback || m == litmus.RollbackGroup
}

// OrderingTable summarises the ordering sweep per (scheme, epoch).
func (r *LitmusReport) OrderingTable() *report.Table {
	t := &report.Table{
		Title:  "Persistency litmus: outcomes per (scheme, epoch)",
		Header: []string{"scheme", "epoch", "stage", "writes", "orderings", "restored", "partial", "detected", "silent", "internal"},
	}
	type key struct {
		s Scheme
		e int
	}
	type agg struct {
		stage  string
		writes int
		m      map[CrashOutcome]int
	}
	rows := map[key]*agg{}
	var order []key
	for _, c := range r.Cells {
		k := key{c.Scheme, c.Epoch}
		a := rows[k]
		if a == nil {
			a = &agg{stage: c.Stage, writes: c.EpochWrites, m: map[CrashOutcome]int{}}
			rows[k] = a
			order = append(order, k)
		}
		a.m[c.Outcome]++
	}
	for _, k := range order {
		a := rows[k]
		total := 0
		for _, n := range a.m {
			total += n
		}
		t.AddRow(k.s.String(), fmt.Sprint(k.e), a.stage, fmt.Sprint(a.writes), fmt.Sprint(total),
			fmt.Sprint(a.m[OutcomeRestored]), fmt.Sprint(a.m[OutcomePartial]), fmt.Sprint(a.m[OutcomeDetected]),
			fmt.Sprint(a.m[OutcomeSilentCorruption]), fmt.Sprint(a.m[OutcomeInternalError]))
	}
	if fails := r.Failures(); len(fails) > 0 {
		for _, f := range fails {
			t.AddNote("FAIL %s", f)
		}
	} else {
		t.AddNote("every admissible reordering ended in exact restoration, authentic partial state, or a typed detection error")
	}
	return t
}

// CellTable lists every ordering cell with its verdict — the per-ordering
// artifact CI uploads.
func (r *LitmusReport) CellTable() *report.Table {
	t := &report.Table{
		Title:  "Persistency litmus: per-ordering outcomes",
		Header: []string{"scheme", "epoch", "stage", "kind", "applied", "writes", "outcome", "detail"},
	}
	for _, c := range r.Cells {
		t.AddRow(c.Scheme.String(), fmt.Sprint(c.Epoch), c.Stage, c.Kind,
			fmt.Sprint(c.Applied), fmt.Sprint(c.EpochWrites), c.Outcome.String(), c.Detail)
	}
	return t
}

// CoverageTable summarises the corruption-detection coverage sweep: the
// detection probability per (scheme, model, target region).
func (r *LitmusReport) CoverageTable() *report.Table {
	t := &report.Table{
		Title:  "Corruption-detection coverage per (scheme, model, target)",
		Header: []string{"scheme", "model", "target", "trials", "detected", "silent", "masked", "detect%"},
	}
	for _, c := range r.Coverage {
		rate := "n/a"
		if p, ok := c.DetectionRate(); ok {
			rate = fmt.Sprintf("%.0f%%", 100*p)
		}
		t.AddRow(c.Scheme.String(), c.Model.String(), c.Target, fmt.Sprint(c.Trials),
			fmt.Sprint(c.Detected), fmt.Sprint(c.Silent), fmt.Sprint(c.Masked), rate)
	}
	t.AddNote("rollback models replay authentic stale bytes: silent acceptance there is a freshness gap (lazy run-time metadata), not a MAC failure")
	t.AddNote("masked trials changed no byte recovery or post-recovery probes observe (e.g. rollback of a never-redrained block)")
	return t
}

// ForensicTable explains every detection of the run — ordering cells that
// ended in OutcomeDetected (corruption model "reorder") and detected
// coverage trials — with the failing check, region, scan latency and
// flight-recorder provenance chain per detection.
func (r *LitmusReport) ForensicTable() *report.Table {
	var fs []Forensic
	for _, c := range r.Cells {
		if c.Forensic == nil {
			continue
		}
		f := *c.Forensic
		f.Label = c.Label()
		f.Scheme = c.Scheme.String()
		f.Model = "reorder"
		fs = append(fs, f)
	}
	for _, c := range r.Coverage {
		for _, fp := range c.Forensics {
			if fp == nil {
				continue
			}
			f := *fp
			f.Label = fmt.Sprintf("%s/%s/%s", c.Scheme, c.Model, c.Target)
			f.Scheme = c.Scheme.String()
			f.Model = c.Model.String()
			fs = append(fs, f)
		}
	}
	return report.ForensicTable(fs...)
}

// defaultLitmusWorkload is larger than the torture matrix's stream on
// purpose: its working set exceeds the test-scale metadata caches' reach, so
// runtime evictions populate the in-place counter/MAC/tree regions and leave
// metadata-cache residue for the vault — the regions the coverage sweep
// targets. Orderings are sampled per epoch (not per write), so the bigger
// episode does not blow up the cell count the way it would for the torture
// matrix.
func defaultLitmusWorkload(seed int64) *Workload {
	return UniformWorkload(WorkloadConfig{
		Ops:            4000,
		WorkingSet:     1 << 20,
		Seed:           seed,
		PersistPercent: 10,
	})
}

// litmusEpisode is one scheme's recorded fault-free drain: everything needed
// to materialise any admissible crash state without replaying the workload.
type litmusEpisode struct {
	scheme Scheme
	lay    *bmt.Layout
	golden map[uint64]mem.Block
	blocks []DirtyBlock
	pre    *mem.Store // NVM image at the crash instant, before the drain
	final  *mem.Store // NVM image after the completed drain
	writes []litmus.Write
	epochs []litmus.Epoch
	// snaps[i] is the persistent register file at epoch i's closing
	// barrier; the final epoch's entry is the drain's full persist record
	// (vault + root included).
	snaps []PersistentState
}

// recordLitmusEpisode runs the workload and records one fault-free drain
// with its epoch structure and per-barrier register snapshots.
func recordLitmusEpisode(cfg Config, scheme Scheme, w *Workload) (*litmusEpisode, error) {
	ws := NewWorkloadSystem(cfg, scheme, DomainEPD)
	if err := ws.Run(w); err != nil {
		return nil, fmt.Errorf("horus: litmus workload on %v: %w", scheme, err)
	}
	ep := &litmusEpisode{
		scheme: scheme,
		lay:    ws.Core.Layout,
		golden: ws.Machine.Golden(),
		blocks: ws.Machine.DirtyBlocks(),
		pre:    ws.Core.NVM.Store().Snapshot(),
	}
	rec := litmus.NewRecorder()
	rec.OnEpochClose = func(litmus.Epoch) {
		ep.snaps = append(ep.snaps, ws.drainer.PersistSnapshot())
	}
	ws.Core.NVM.SetFaultInjector(rec)
	res, err := ws.drainer.Drain(ep.blocks)
	ws.Core.NVM.SetFaultInjector(nil)
	if err != nil {
		return nil, fmt.Errorf("horus: litmus drain on %v: %w", scheme, err)
	}
	rec.Finish()
	ep.writes = rec.Writes()
	ep.epochs = rec.Epochs()
	if len(ep.epochs) == 0 {
		return nil, fmt.Errorf("horus: %v drain performed no NVM writes; enlarge the workload", scheme)
	}
	// A crash anywhere in the final epoch sees the drain's completed
	// register file (registers are on-chip and persist independently of
	// which NVM writes became durable); mid-drain epochs use the snapshot
	// taken at their barrier.
	ep.snaps[len(ep.snaps)-1] = res.Persist
	ep.final = ws.Core.NVM.Store().Snapshot()
	return ep, nil
}

// materialize builds a fresh crashed system holding the recorded image with
// every write before epoch ei durable plus the applied subset (epoch-relative
// indices) of epoch ei, ready for recovery under the epoch's register file.
func (ep *litmusEpisode) materialize(cfg Config, ei int, applied []int) *core.System {
	sys, _ := newCoreSystem(cfg, ep.scheme, true)
	st := sys.NVM.Store()
	ep.pre.Each(func(a uint64, b mem.Block) { st.WriteBlock(a, b) })
	e := ep.epochs[ei]
	for _, w := range ep.writes[:e.Lo] {
		st.WriteBlock(w.Addr, w.Data)
	}
	for _, i := range applied {
		w := ep.writes[e.Lo+i]
		st.WriteBlock(w.Addr, w.Data)
	}
	sys.Sec.Crash()
	sys.Sec.RestoreRoot(ep.snaps[ei].Root)
	return sys
}

// classifyOrdering materialises one ordering and runs the recovery oracle.
// The oracle's recovery-time attribution is irrelevant to ordering verdicts
// and dropped here.
func (ep *litmusEpisode) classifyOrdering(cfg Config, ei int, o litmus.Ordering) (CrashOutcome, string, *Forensic) {
	sys := ep.materialize(cfg, ei, o.Applied)
	ps := ep.snaps[ei]
	complete := o.Complete(ep.epochs[ei].Size())
	interrupted := !(ei == len(ep.epochs)-1 && complete)
	out, detail, forensic, _ := classifyOutcome(sys, ps, ep.golden, ep.blocks, interrupted)
	return out, detail, forensic
}

// lastEpochComplete returns the applied set that makes the final epoch —
// and therefore the whole drain image — complete.
func (ep *litmusEpisode) lastEpochComplete() (int, []int) {
	ei := len(ep.epochs) - 1
	n := ep.epochs[ei].Size()
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return ei, all
}

// probeAddrs returns the sorted populated data-region addresses of the
// final image — the set of runtime in-place blocks a post-recovery reader
// would consult.
func (ep *litmusEpisode) probeAddrs() []uint64 {
	var out []uint64
	ep.final.Each(func(a uint64, _ mem.Block) {
		if ep.lay.RegionOf(a) == bmt.RegionData {
			out = append(out, a)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// victimPool returns the sorted populated final-image addresses in the
// given region; for freshness (rollback) models only blocks the drain or
// runtime actually changed qualify — rolling back an unchanged block is a
// no-op, not a corruption.
func (ep *litmusEpisode) victimPool(region bmt.Region, fresh bool) []uint64 {
	var out []uint64
	ep.final.Each(func(a uint64, b mem.Block) {
		if ep.lay.RegionOf(a) != region {
			return
		}
		if fresh && ep.pre.ReadBlock(a) == b {
			return
		}
		out = append(out, a)
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// coverageRegions are the corruption targets, in report order.
var coverageRegions = []bmt.Region{
	bmt.RegionData, bmt.RegionCounter, bmt.RegionMAC, bmt.RegionTree,
	bmt.RegionVault, bmt.RegionCHVData, bmt.RegionCHVAddr, bmt.RegionCHVMAC,
}

// referenceProbe recovers the uncorrupted complete image on a fresh system
// and records each probe address's plaintext — the baseline a corrupted
// trial's reads are compared against.
func (ep *litmusEpisode) referenceProbe(cfg Config, addrs []uint64) (map[uint64]mem.Block, error) {
	ei, all := ep.lastEpochComplete()
	sys := ep.materialize(cfg, ei, all)
	ps := ep.snaps[ei]
	if err := ep.recoverFor(sys, ps); err != nil {
		return nil, fmt.Errorf("horus: reference recovery on %v: %w", ep.scheme, err)
	}
	ref := make(map[uint64]mem.Block, len(addrs))
	for _, a := range addrs {
		b, _, err := sys.Sec.ReadBlock(0, a)
		if err != nil {
			return nil, fmt.Errorf("horus: reference probe of %#x on %v: %w", a, ep.scheme, err)
		}
		ref[a] = b
	}
	return ref, nil
}

// recoverFor runs the scheme's recovery path on a materialised system.
func (ep *litmusEpisode) recoverFor(sys *core.System, ps PersistentState) error {
	sys.NVM.ResetStats()
	sys.Sec.ResetStats()
	if ps.Scheme.UsesCHV() {
		if ps.Vault.Count > 0 {
			if _, err := recovery.RestoreMetadataVaultFor(sys, ps.Vault, ps.Scheme.String()); err != nil {
				return err
			}
		}
		res, err := recovery.RecoverHorus(sys, ps)
		if err != nil {
			return err
		}
		for _, b := range res.Blocks {
			if want, ok := ep.golden[b.Addr]; !ok || b.Data != want {
				return fmt.Errorf("recovered wrong bytes at %#x with verified MACs", b.Addr)
			}
		}
		return nil
	}
	_, err := recovery.RecoverBaseline(sys, ps)
	return err
}

// coverageTrial corrupts one victim of the complete image and reports the
// verdict ("detected", "silent", "masked" or "internal") plus, for a
// detection, its forensic provenance.
func (ep *litmusEpisode) coverageTrial(cfg Config, model CorruptionModel, victim uint64, seed uint64, ref map[uint64]mem.Block, addrs []uint64) (string, string, *Forensic) {
	ei, all := ep.lastEpochComplete()
	sys := ep.materialize(cfg, ei, all)
	sys.Evlog = evlog.New(evlog.DefaultChainLimit)
	ps := ep.snaps[ei]
	st := sys.NVM.Store()

	cur := st.ReadBlock(victim)
	nb := litmus.Corrupt(model, cur, ep.pre.ReadBlock(victim), seed)
	if nb == cur {
		return "masked", "corruption was a no-op", nil
	}
	st.WriteBlock(victim, nb)
	if model == litmus.RollbackGroup && ep.lay.RegionOf(victim) == bmt.RegionData {
		// Consistent stale snapshot of the line: its counter and MAC roll
		// back with it, so per-block integrity alone cannot object.
		for _, meta := range []uint64{ep.lay.CounterBlockAddr(victim), ep.lay.MACBlockAddr(victim)} {
			st.WriteBlock(meta, ep.pre.ReadBlock(meta))
		}
	}

	if err := ep.recoverFor(sys, ps); err != nil {
		if recovery.IsDetection(err) {
			return "detected", fmt.Sprintf("recovery: %v", err), ForensicFromError(err, "recovery")
		}
		if ps.Scheme.UsesCHV() {
			// recoverFor folds wrong-recovered-bytes into an untyped error.
			return "silent", err.Error(), nil
		}
		return "internal", err.Error(), nil
	}

	detected := ""
	var forensic *Forensic
	for i, a := range addrs {
		b, _, err := sys.Sec.ReadBlock(0, a)
		if err != nil {
			if !recovery.IsDetection(err) {
				return "internal", fmt.Sprintf("probe of %#x: %v", a, err), nil
			}
			if detected == "" {
				detected = fmt.Sprintf("probe of %#x: %v", a, err)
				forensic = ForensicFromError(err, "post-recovery read")
				forensic.BlocksScanned = int64(i)
			}
			continue
		}
		if b != ref[a] {
			return "silent", fmt.Sprintf("probe of %#x verified with wrong plaintext", a), nil
		}
	}
	if detected != "" {
		return "detected", detected, forensic
	}
	return "masked", "", nil
}

// RunLitmus records one fault-free drain per scheme, explores admissible
// write reorderings within every persist epoch against the recovery oracle,
// and (when configured) sweeps corruption models over the completed image.
// Cells run on the sweep engine's worker pool with per-cell derived seeds:
// results are byte-identical for any Parallel. The returned error covers
// harness failures only; contract violations are in LitmusReport.Failures.
func RunLitmus(ctx context.Context, lc LitmusConfig, opts SweepOptions) (*LitmusReport, error) {
	schemes := lc.Schemes
	if len(schemes) == 0 {
		schemes = []Scheme{BaseLU, BaseEU, HorusSLM, HorusDLM}
	}
	cfg := lc.Config
	sink := cfg.Metrics
	tsSink := cfg.Timeseries
	cfg.Metrics = nil // cells must not share a registry
	cfg.Timeseries = nil
	cfg.Timeline = nil
	newWorkload := lc.NewWorkload
	if newWorkload == nil {
		newWorkload = defaultLitmusWorkload
	}
	w := newWorkload(cfg.Seed)

	rep := &LitmusReport{Steps: map[Scheme]int{}, Epochs: map[Scheme]int{}}

	// Phase 1: record one fault-free episode per scheme (sequential — the
	// recording is the shared input every cell of that scheme replays).
	episodes := make([]*litmusEpisode, len(schemes))
	for i, s := range schemes {
		if !s.Secure() {
			return nil, fmt.Errorf("horus: litmus requires a secure scheme, got %v (no MACs, nothing can be detected)", s)
		}
		ep, err := recordLitmusEpisode(cfg, s, w)
		if err != nil {
			return nil, err
		}
		episodes[i] = ep
		rep.Steps[s] = len(ep.writes)
		rep.Epochs[s] = len(ep.epochs)
	}

	// Phase 2: generate every ordering up front — generation is pure, so
	// the cell list (and with it every seed) is fixed before any worker runs.
	type ordSpec struct {
		ep  *litmusEpisode
		ei  int
		ord litmus.Ordering
	}
	var ordSpecs []ordSpec
	for si, ep := range episodes {
		ep := ep
		sel := make([]int, len(ep.epochs))
		for i := range sel {
			sel[i] = i
		}
		if lc.MaxEpochs > 0 {
			sel = faultinject.SampleSteps(len(ep.epochs), 1, lc.MaxEpochs)
		}
		classify := func(wr litmus.Write) string { return ep.lay.RegionOf(wr.Addr).String() }
		for _, ei := range sel {
			e := ep.epochs[ei]
			ords := litmus.Orderings(ep.writes[e.Lo:e.Hi], litmus.Options{
				Seed:             uint64(sweep.DeriveSeed(cfg.Seed, si*4096+ei)),
				MaxOrderings:     lc.MaxOrderings,
				ExhaustiveWrites: lc.ExhaustiveWrites,
				Classify:         classify,
			})
			for _, o := range ords {
				ordSpecs = append(ordSpecs, ordSpec{ep: ep, ei: ei, ord: o})
			}
		}
	}

	eps := make([]sweep.Episode, 0, len(ordSpecs))
	for i := range ordSpecs {
		sp := ordSpecs[i]
		e := sp.ep.epochs[sp.ei]
		eps = append(eps, sweep.Episode{
			Label: fmt.Sprintf("%s/e%d/%s", sp.ep.scheme, sp.ei, sp.ord.Kind),
			Run: func(ctx context.Context, env sweep.Env) (any, error) {
				cell := LitmusCell{
					Scheme: sp.ep.scheme, Epoch: sp.ei, Stage: e.Stage,
					Kind: sp.ord.Kind, Applied: len(sp.ord.Applied), EpochWrites: e.Size(),
				}
				cell.Outcome, cell.Detail, cell.Forensic = sp.ep.classifyOrdering(cfg, sp.ei, sp.ord)
				return cell, nil
			},
		})
	}

	// Phase 3: coverage cells — one episode per (scheme, model, target),
	// running its trials inside. Reference probes are recorded sequentially
	// first so trials only compare.
	type covSpec struct {
		ep     *litmusEpisode
		model  CorruptionModel
		region bmt.Region
		pool   []uint64
		ref    map[uint64]mem.Block
		addrs  []uint64
	}
	var covSpecs []covSpec
	if len(lc.Corrupt) > 0 {
		for _, ep := range episodes {
			addrs := ep.probeAddrs()
			ref, err := ep.referenceProbe(cfg, addrs)
			if err != nil {
				return nil, err
			}
			for _, m := range lc.Corrupt {
				for _, region := range coverageRegions {
					pool := ep.victimPool(region, freshnessModel(m))
					if len(pool) == 0 {
						continue
					}
					covSpecs = append(covSpecs, covSpec{ep: ep, model: m, region: region, pool: pool, ref: ref, addrs: addrs})
				}
			}
		}
	}
	trials := lc.corruptTrials()
	for i := range covSpecs {
		sp := covSpecs[i]
		eps = append(eps, sweep.Episode{
			Label: fmt.Sprintf("%s/%s/%s", sp.ep.scheme, sp.model, sp.region),
			Run: func(ctx context.Context, env sweep.Env) (any, error) {
				cell := CoverageCell{Scheme: sp.ep.scheme, Model: sp.model, Target: sp.region.String(), Trials: trials}
				for t := 0; t < trials; t++ {
					seed := uint64(sweep.DeriveSeed(env.Seed, t))
					victim := sp.pool[seed%uint64(len(sp.pool))]
					verdict, _, forensic := sp.ep.coverageTrial(cfg, sp.model, victim, seed, sp.ref, sp.addrs)
					switch verdict {
					case "detected":
						cell.Detected++
						cell.Forensics = append(cell.Forensics, forensic)
					case "silent":
						cell.Silent++
					case "masked":
						cell.Masked++
					default:
						cell.Internal++
					}
				}
				return cell, nil
			},
		})
	}

	runner := sweep.New(sweep.Options{Parallel: opts.Parallel, Timeout: opts.Timeout, BaseSeed: cfg.Seed, Progress: opts.Progress})
	results, err := runner.Run(ctx, eps)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		switch v := res.Value.(type) {
		case LitmusCell:
			rep.Cells = append(rep.Cells, v)
		case CoverageCell:
			rep.Coverage = append(rep.Coverage, v)
		}
	}

	// Phase 4: minimize the first ordering failure into a witness trace
	// (sequential and deterministic: cells are in fixed generation order).
	for i, c := range rep.Cells {
		if c.Outcome.OK() {
			continue
		}
		sp := ordSpecs[i]
		wantOutcome := c.Outcome
		min := litmus.Minimize(sp.ep.writes[sp.ep.epochs[sp.ei].Lo:sp.ep.epochs[sp.ei].Hi], sp.ord.Applied, func(cand []int) bool {
			out, _, _ := sp.ep.classifyOrdering(cfg, sp.ei, litmus.Ordering{Kind: "minimize", Applied: cand})
			return out == wantOutcome
		})
		wit := &LitmusWitness{Cell: c, Applied: min}
		e := sp.ep.epochs[sp.ei]
		for _, idx := range min {
			wr := sp.ep.writes[e.Lo+idx]
			wit.Trace = append(wit.Trace, fmt.Sprintf("write %d: %s block at %#x (%s)",
				idx, sp.ep.lay.RegionOf(wr.Addr), wr.Addr, wr.Cat))
		}
		rep.Witness = wit
		break
	}

	if sink != nil {
		sink.SetHelp("horus_litmus_cells_total", "Litmus ordering cells by scheme and recovery outcome.")
		for _, c := range rep.Cells {
			sink.Counter("horus_litmus_cells_total",
				"scheme", c.Scheme.String(), "outcome", c.Outcome.String()).Add(1)
		}
		sink.SetHelp("horus_recovery_detect_latency_blocks", "Blocks verified before the failing check fired, per detection (scheme x corruption model).")
		sink.SetHelp("horus_recovery_detect_latency_ps", "Phase-local simulated time to the failing check, per detection (scheme x corruption model).")
		for _, c := range rep.Cells {
			if c.Forensic == nil {
				continue
			}
			sink.Histogram("horus_recovery_detect_latency_blocks", obs.CountBuckets,
				"scheme", c.Scheme.String(), "model", "reorder").Observe(float64(c.Forensic.BlocksScanned))
			sink.Histogram("horus_recovery_detect_latency_ps", obs.LatencyBuckets,
				"scheme", c.Scheme.String(), "model", "reorder").Observe(float64(c.Forensic.DetectLatencyPs))
		}
		sink.SetHelp("horus_litmus_coverage_trials_total", "Corruption-coverage trials by scheme, model, target and verdict.")
		for _, c := range rep.Coverage {
			verdicts := []struct {
				name string
				n    int
			}{{"detected", c.Detected}, {"silent", c.Silent}, {"masked", c.Masked}, {"internal", c.Internal}}
			for _, v := range verdicts {
				if v.n > 0 {
					sink.Counter("horus_litmus_coverage_trials_total",
						"scheme", c.Scheme.String(), "model", c.Model.String(), "target", c.Target, "verdict", v.name).Add(int64(v.n))
				}
			}
			for _, f := range c.Forensics {
				if f == nil {
					continue
				}
				sink.Histogram("horus_recovery_detect_latency_blocks", obs.CountBuckets,
					"scheme", c.Scheme.String(), "model", c.Model.String()).Observe(float64(f.BlocksScanned))
				sink.Histogram("horus_recovery_detect_latency_ps", obs.LatencyBuckets,
					"scheme", c.Scheme.String(), "model", c.Model.String()).Observe(float64(f.DetectLatencyPs))
			}
		}
	}
	if tsSink != nil {
		// One sample per ordering cell: zero when the contract held, one on
		// silent corruption — same shape as the torture matrix's SLO series.
		wps := tsSink.WindowPs()
		for i, c := range rep.Cells {
			s := tsSink.Counter("horus_ts_litmus_silent_total", "scheme", c.Scheme.String())
			v := 0.0
			if c.Outcome == OutcomeSilentCorruption {
				v = 1
			}
			s.Record(int64(i)*wps, v)
		}
	}
	return rep, nil
}
