package horus

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// renderFig6 runs Fig. 6 through the episode engine at the given worker
// count and returns the rendered table plus the merged metrics snapshot.
func renderFig6(t testing.TB, workers int) (string, string) {
	t.Helper()
	cfg := TestConfig()
	cfg.Metrics = NewMetricsRegistry()
	f6, err := RunFig6Ctx(context.Background(), cfg, SweepOptions{Parallel: workers})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := cfg.Metrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return f6.Table().String(), b.String()
}

// renderLLCSweep runs the Fig. 14/15 LLC sweep through the engine at the
// given worker count and returns both rendered tables plus merged metrics.
func renderLLCSweep(t testing.TB, workers int) (string, string) {
	t.Helper()
	cfg := TestConfig()
	cfg.Metrics = NewMetricsRegistry()
	// Small LLC points keep the grid fast enough for the -race CI step while
	// still interleaving sizes and schemes across workers.
	sizes := []int{1 << 20, 2 << 20}
	sw, err := RunLLCSweepCtx(context.Background(), cfg, sizes,
		[]Scheme{BaseLU, HorusSLM, HorusDLM}, SweepOptions{Parallel: workers})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := cfg.Metrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return sw.Fig14Table().String() + sw.Fig15Table().String(), b.String()
}

// TestSweepDeterminismFig6 is the engine's headline contract: figure output
// and merged metrics are byte-identical whether episodes run on one worker
// or eight.
func TestSweepDeterminismFig6(t *testing.T) {
	seqTab, seqProm := renderFig6(t, 1)
	parTab, parProm := renderFig6(t, 8)
	if seqTab != parTab {
		t.Errorf("Fig6 table differs between -parallel 1 and 8:\n--- seq ---\n%s\n--- par ---\n%s", seqTab, parTab)
	}
	if seqProm != parProm {
		t.Error("Fig6 merged metrics differ between -parallel 1 and 8")
	}
	if !strings.Contains(seqTab, "Base-LU") {
		t.Error("Fig6 table missing rows")
	}
}

// TestSweepDeterminismLLC extends the byte-identity contract to the
// multi-size LLC sweep, whose grid interleaves sizes and schemes.
func TestSweepDeterminismLLC(t *testing.T) {
	seqTab, seqProm := renderLLCSweep(t, 1)
	parTab, parProm := renderLLCSweep(t, 8)
	if seqTab != parTab {
		t.Errorf("LLC sweep tables differ between -parallel 1 and 8:\n--- seq ---\n%s\n--- par ---\n%s", seqTab, parTab)
	}
	if seqProm != parProm {
		t.Error("LLC sweep merged metrics differ between -parallel 1 and 8")
	}
}

// TestSweepGridPartialResults exercises the no-first-error-abort policy at
// the grid level: an unregistered scheme fails its own point only.
func TestSweepGridPartialResults(t *testing.T) {
	cfg := TestConfig()
	bogus := Scheme(97)
	prs, err := RunDrainGrid(context.Background(), []DrainPoint{
		{Config: cfg, Scheme: NonSecure},
		{Config: cfg, Scheme: bogus},
		{Config: cfg, Scheme: HorusSLM},
	}, SweepOptions{Parallel: 2})
	if err == nil {
		t.Fatal("grid with a bogus scheme must report an error")
	}
	var serr *SweepError
	if !errors.As(err, &serr) {
		t.Fatalf("error is %T, want *SweepError", err)
	}
	if len(serr.Failed) != 1 || serr.Total != 3 {
		t.Fatalf("aggregate = %d/%d failed, want 1/3", len(serr.Failed), serr.Total)
	}
	if prs[0].Err != nil || prs[2].Err != nil {
		t.Errorf("healthy points failed: %v / %v", prs[0].Err, prs[2].Err)
	}
	if prs[0].Result.BlocksDrained == 0 || prs[2].Result.BlocksDrained == 0 {
		t.Error("healthy points lost their results")
	}
	if prs[1].Err == nil {
		t.Error("bogus point must carry its own error")
	}
}

// BenchmarkSweepParallel measures engine throughput on the LLC sweep at one
// vs several workers; CI records the comparison in BENCH_sweep.json.
func BenchmarkSweepParallel(b *testing.B) {
	cfg := TestConfig()
	sizes := []int{4 << 20, 8 << 20}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunLLCSweepCtx(context.Background(), cfg, sizes, AllSchemes(),
					SweepOptions{Parallel: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
