package horus

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/litmus"
)

// smallLitmusWorkload keeps test-suite litmus runs fast: a stream the size
// of the torture matrix's, so recording and materialisation stay cheap.
func smallLitmusWorkload(seed int64) *Workload {
	return UniformWorkload(WorkloadConfig{
		Ops:            120,
		WorkingSet:     4 << 10,
		Seed:           seed,
		PersistPercent: 10,
	})
}

func testLitmusConfig(schemes ...Scheme) LitmusConfig {
	return LitmusConfig{
		Config:        TestConfig(),
		Schemes:       schemes,
		NewWorkload:   smallLitmusWorkload,
		MaxOrderings:  16,
		MaxEpochs:     3,
		Corrupt:       []CorruptionModel{litmus.SingleBit, litmus.Rollback},
		CorruptTrials: 2,
	}
}

// TestLitmusContract runs the reordering sweep and coverage sweep over all
// four secure schemes and asserts the never-silent contract: every
// admissible ordering recovers, partially recovers, or detects — and every
// scheme's completed drain restores exactly.
func TestLitmusContract(t *testing.T) {
	lc := testLitmusConfig() // all four secure schemes
	rep, err := RunLitmus(context.Background(), lc, SweepOptions{Parallel: 4})
	if err != nil {
		t.Fatalf("RunLitmus: %v", err)
	}
	if fails := rep.Failures(); len(fails) > 0 {
		for _, f := range fails {
			t.Errorf("contract violation: %s", f)
		}
	}
	if rep.Witness != nil {
		t.Errorf("witness on a passing run: %+v", rep.Witness)
	}
	restored := map[Scheme]bool{}
	cells := map[Scheme]int{}
	for _, c := range rep.Cells {
		cells[c.Scheme]++
		if c.Outcome == OutcomeRestored {
			restored[c.Scheme] = true
		}
	}
	for _, s := range []Scheme{BaseLU, BaseEU, HorusSLM, HorusDLM} {
		if cells[s] == 0 {
			t.Errorf("%v: no ordering cells ran", s)
		}
		// The complete final-epoch ordering is the control: it must restore.
		if !restored[s] {
			t.Errorf("%v: no ordering restored exactly (complete-drain control missing)", s)
		}
		if rep.Steps[s] == 0 || rep.Epochs[s] == 0 {
			t.Errorf("%v: steps=%d epochs=%d recorded", s, rep.Steps[s], rep.Epochs[s])
		}
	}
	if len(rep.Coverage) == 0 {
		t.Error("coverage sweep produced no cells")
	}
	for _, c := range rep.Coverage {
		if c.Detected+c.Silent+c.Masked+c.Internal != c.Trials {
			t.Errorf("%v/%v/%s: verdicts do not sum to trials: %+v", c.Scheme, c.Model, c.Target, c)
		}
		// Unkeyed corruption (single-bit here) must never be silent.
		if c.Model == litmus.SingleBit && c.Silent > 0 {
			t.Errorf("%v/%s: %d single-bit corruptions silently accepted", c.Scheme, c.Target, c.Silent)
		}
	}
}

// TestLitmusParallelDeterminism pins the engine guarantee the CLI documents:
// -parallel 1 and -parallel 8 produce byte-identical reports.
func TestLitmusParallelDeterminism(t *testing.T) {
	lc := testLitmusConfig(BaseLU, HorusSLM)
	a, err := RunLitmus(context.Background(), lc, SweepOptions{Parallel: 1})
	if err != nil {
		t.Fatalf("parallel=1: %v", err)
	}
	b, err := RunLitmus(context.Background(), lc, SweepOptions{Parallel: 8})
	if err != nil {
		t.Fatalf("parallel=8: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reports differ across parallelism:\n p1: %+v\n p8: %+v", a, b)
	}
}

// TestLitmusSampledOrderingBudget asserts the sampled generator reaches the
// distinct-ordering target on the bulk drain epoch.
func TestLitmusSampledOrderingBudget(t *testing.T) {
	lc := LitmusConfig{
		Config:       TestConfig(),
		Schemes:      []Scheme{HorusSLM},
		MaxOrderings: 128,
		MaxEpochs:    1, // epoch 0 is the bulk CHV stream
	}
	rep, err := RunLitmus(context.Background(), lc, SweepOptions{Parallel: 8})
	if err != nil {
		t.Fatalf("RunLitmus: %v", err)
	}
	if len(rep.Cells) < 100 {
		t.Fatalf("bulk epoch explored %d distinct orderings, want >= 100", len(rep.Cells))
	}
	if !rep.Ok() {
		t.Fatalf("bulk epoch violations: %v", rep.Failures())
	}
}

// litmusFuzzFixture records one episode per scheme once per process; fuzz
// executions only materialise and classify.
var litmusFuzzFixture struct {
	sync.Once
	eps map[Scheme]*litmusEpisode
	cfg Config
	err error
}

func litmusFixture(t testing.TB) (map[Scheme]*litmusEpisode, Config) {
	f := &litmusFuzzFixture
	f.Do(func() {
		f.cfg = TestConfig()
		f.cfg.Metrics = nil
		f.eps = map[Scheme]*litmusEpisode{}
		w := smallLitmusWorkload(f.cfg.Seed)
		for _, s := range []Scheme{BaseLU, HorusSLM} {
			ep, err := recordLitmusEpisode(f.cfg, s, w)
			if err != nil {
				f.err = err
				return
			}
			f.eps[s] = ep
		}
	})
	if f.err != nil {
		t.Fatalf("recording litmus fixture: %v", f.err)
	}
	return f.eps, f.cfg
}

// FuzzLitmusOrdering drives arbitrary seeds through the sampler and the
// recovery oracle: any admissible ordering of any epoch must classify as
// restored, partial or detected — never panic, never silently corrupt.
func FuzzLitmusOrdering(f *testing.F) {
	f.Add(uint64(1), uint8(0), false)
	f.Add(uint64(42), uint8(1), true)
	f.Add(uint64(0xdeadbeef), uint8(2), false)
	f.Fuzz(func(t *testing.T, seed uint64, epochPick uint8, horusScheme bool) {
		eps, cfg := litmusFixture(t)
		scheme := BaseLU
		if horusScheme {
			scheme = HorusSLM
		}
		ep := eps[scheme]
		ei := int(epochPick) % len(ep.epochs)
		e := ep.epochs[ei]
		o := litmus.SampleOrdering(ep.writes[e.Lo:e.Hi], seed)
		out, detail, _ := ep.classifyOrdering(cfg, ei, o)
		if !out.OK() {
			t.Fatalf("%v epoch %d seed %#x: %v (%s) applied=%v", scheme, ei, seed, out, detail, o.Applied)
		}
	})
}
