package horus

import (
	"strings"
	"testing"
)

func TestRunAblationsTestScale(t *testing.T) {
	a, err := RunAblations(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, tbl := range map[string]interface{ String() string }{
		"fill":     a.FillPattern,
		"datasize": a.DataSize,
		"tree":     a.TreeProfile,
		"recovery": a.Recovery,
	} {
		if out := tbl.String(); len(out) == 0 {
			t.Errorf("%s table empty", name)
		}
	}
	// The fill-pattern table must show the baseline's sensitivity: dense
	// row cheaper than the shuffled row.
	out := a.FillPattern.String()
	if !strings.Contains(out, "dense") || !strings.Contains(out, "shuffled") {
		t.Error("fill-pattern rows missing")
	}
	// The tree profile must include the counter level.
	if !strings.Contains(a.TreeProfile.String(), "L0") {
		t.Error("tree profile missing L0")
	}
}

func TestConfigHierarchyDefaults(t *testing.T) {
	var c Config
	h := c.hierarchyConfig()
	if h.TotalLines() != 295936 {
		t.Errorf("zero-value LLC should default to Table I (%d lines)", h.TotalLines())
	}
	c.LLCBytes = 8 << 20
	if c.hierarchyConfig().Levels[2].SizeBytes != 8<<20 {
		t.Error("LLCBytes override ignored")
	}
}

func TestNonSecureSkipsWarmup(t *testing.T) {
	cfg := TestConfig()
	sys := NewSystem(cfg, NonSecure)
	if err := sys.Warmup(); err != nil {
		t.Fatal(err)
	}
	if sys.Core.NVM.TotalWrites() != 0 {
		t.Error("non-secure warmup touched memory")
	}
}

func TestRecoverSerialRejectsBaselineState(t *testing.T) {
	cfg := TestConfig()
	sys := NewSystem(cfg, BaseLU)
	sys.Fill()
	res, err := sys.Drain()
	if err != nil {
		t.Fatal(err)
	}
	sys.Crash()
	if _, err := RecoverSerial(sys, res.Persist); err == nil {
		t.Error("RecoverSerial accepted baseline persistent state")
	}
	if _, err := RecoverParallel(sys, res.Persist); err == nil {
		t.Error("RecoverParallel accepted baseline persistent state")
	}
}
