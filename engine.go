package horus

import (
	"context"
	"time"

	"repro/internal/obs/timeseries"
	"repro/internal/sweep"
)

// SweepOptions configures how experiment grids execute. The zero value is
// the library's historical behavior apart from scheduling: episodes may run
// on all cores. Results are independent of Parallel by construction — every
// episode builds its own System and the engine merges metrics in episode
// order — so -parallel N output is byte-identical to sequential output.
type SweepOptions struct {
	// Parallel bounds the episode worker pool; <= 0 means GOMAXPROCS.
	Parallel int
	// Timeout bounds the whole grid; 0 means no timeout. Episodes not
	// finished when it expires report context.DeadlineExceeded.
	Timeout time.Duration
	// Progress, when non-nil, is called once per finished episode
	// (serialized, completion order) with done/total counts and wall-clock
	// pacing. It feeds the -progress stderr line and the -serve SSE
	// stream; it is wall-clock-side only and cannot perturb simulated
	// results.
	Progress func(SweepProgress)
}

// DrainPoint is one (config, scheme) episode of an experiment grid.
//
// Episodes use Config.Seed for fill/flush randomness — drain sets rely on an
// identical fill across schemes — while the engine's derived per-episode
// seed remains available to custom episodes via EpisodeEnv.Seed.
type DrainPoint struct {
	// Label names the point in errors and progress reports; empty defaults
	// to the scheme name.
	Label  string
	Config Config
	Scheme Scheme
	// Recover additionally crashes the machine after the drain and runs
	// verified recovery (Fig. 16 and the recovery round trips).
	Recover bool
}

// PointResult is one grid episode's outcome. Err is per-episode: a failing
// point never discards its siblings' results.
type PointResult struct {
	Point    DrainPoint
	Result   Result
	Recovery *RecoveryReport // non-nil when Point.Recover and recovery ran
	// Timeline is the episode's drain recording, non-nil when the point's
	// Config.Timeline requested tracing.
	Timeline *TimelineRecording
	Err      error
}

// pointValue is the episode payload threaded through the engine.
type pointValue struct {
	res Result
	rec *RecoveryReport
	tl  *TimelineRecording
	ts  *TimeseriesSampler // per-episode sampler (merged into the sink in order)
}

// RunDrainGrid executes the points through the episode engine: a bounded
// worker pool (SweepOptions.Parallel), context cancellation, per-episode
// panic capture, and deterministic metrics aggregation.
//
// Metrics: episodes never share a registry. Each point's Config.Metrics is
// replaced with a fresh per-episode registry, and the original registry —
// the first non-nil one among the points, normally the one registry every
// point inherited from the base Config — receives all of them via ordered
// post-hoc merge.
//
// Errors are collected per episode: the returned slice always has one entry
// per point (completed points carry their Result even when others failed),
// and the returned error, when non-nil, is a *SweepError aggregating every
// failed point.
func RunDrainGrid(ctx context.Context, points []DrainPoint, opts SweepOptions) ([]PointResult, error) {
	var sink *MetricsRegistry
	var tsSink *TimeseriesSampler
	var baseSeed int64
	for i := range points {
		if sink == nil {
			sink = points[i].Config.Metrics
		}
		if tsSink == nil {
			tsSink = points[i].Config.Timeseries
		}
	}
	if len(points) > 0 {
		baseSeed = points[0].Config.Seed
	}

	eps := make([]sweep.Episode, len(points))
	for i := range points {
		pt := points[i] // capture per iteration: episodes run concurrently
		label := pt.Label
		if label == "" {
			label = pt.Scheme.String()
		}
		eps[i] = sweep.Episode{Label: label, Run: func(ctx context.Context, env sweep.Env) (any, error) {
			return runPointEpisode(ctx, pt, env)
		}}
	}

	runner := sweep.New(sweep.Options{
		Parallel: opts.Parallel,
		Timeout:  opts.Timeout,
		BaseSeed: baseSeed,
		Metrics:  sink,
		Progress: opts.Progress,
	})
	results, err := runner.Run(ctx, eps)

	out := make([]PointResult, len(points))
	for i, r := range results {
		out[i] = PointResult{Point: points[i], Err: r.Err}
		if v, ok := r.Value.(pointValue); ok {
			out[i].Result = v.res
			out[i].Recovery = v.rec
			out[i].Timeline = v.tl
			// Deterministic post-hoc aggregation, exactly like metrics:
			// per-episode samplers merge into the base sampler in episode
			// order regardless of completion order.
			tsSink.Merge(v.ts)
		}
	}
	return out, err
}

// runPointEpisode is the canonical build → warmup → fill → drain
// [→ crash → recover] episode body. The context is checked between phases:
// the simulator itself is synchronous, so cancellation takes effect at
// phase boundaries.
func runPointEpisode(ctx context.Context, pt DrainPoint, env sweep.Env) (pointValue, error) {
	cfg := pt.Config
	cfg.Metrics = env.Metrics
	// Like the metrics registry, a timeline recorder is never shared across
	// concurrent episodes: a traced base config gets a fresh per-episode
	// recorder with the same limit.
	if pt.Config.Timeline != nil {
		cfg.Timeline = NewTimelineRecorder(pt.Config.Timeline.Limit())
	}
	// Same for the time-series sampler: a fresh per-episode sampler with
	// the base sampler's resolution, tagged with the grid point so merged
	// series never collide across episodes.
	if pt.Config.Timeseries != nil {
		base := pt.Config.Timeseries
		label := pt.Label
		if label == "" {
			label = pt.Scheme.String()
		}
		cfg.Timeseries = timeseries.New(base.WindowPs(), base.Capacity(), "point", label)
	}
	// And the flight recorder: episodes bracket their own evlog episodes, so
	// a shared log would interleave records across workers.
	if pt.Config.Evlog != nil {
		cfg.Evlog = NewEvlog(pt.Config.Evlog.Limit())
	}

	sys := NewSystem(cfg, pt.Scheme)
	if err := sys.Warmup(); err != nil {
		return pointValue{}, err
	}
	if err := ctx.Err(); err != nil {
		return pointValue{}, err
	}
	sys.Fill()
	res, err := sys.Drain()
	if err != nil {
		return pointValue{}, err
	}
	val := pointValue{res: res, ts: cfg.Timeseries}
	if cfg.Timeline != nil {
		val.tl = cfg.Timeline.Recording()
		AnalyzeTimeline(val.tl).Publish(cfg.Metrics, "scheme", pt.Scheme.String())
	}
	if !pt.Recover {
		return val, nil
	}
	if err := ctx.Err(); err != nil {
		return val, err
	}
	sys.Crash()
	rec, err := sys.Recover(res.Persist)
	if err != nil {
		return val, err
	}
	val.rec = &rec
	return val, nil
}

// runEpisodes routes ad-hoc episodes (the ablation studies that need more
// than the canonical drain body) through the same engine and options.
func runEpisodes(ctx context.Context, cfg Config, opts SweepOptions, eps []Episode) ([]EpisodeResult, error) {
	runner := sweep.New(sweep.Options{
		Parallel: opts.Parallel,
		Timeout:  opts.Timeout,
		BaseSeed: cfg.Seed,
		Metrics:  cfg.Metrics,
		Progress: opts.Progress,
	})
	return runner.Run(ctx, eps)
}
