// Attack detection: exercises the security analysis of §IV-C4. The NVM is
// outside the trusted compute base, so an attacker with physical access can
// modify it while the machine is powered off. This example drains a system
// with Horus, then mounts each attack class against the cache hierarchy
// vault — tampering with data, addresses and MACs, splicing blocks, and
// replaying a previous draining episode — and shows that recovery refuses
// every compromised image while accepting the untouched one.
package main

import (
	"errors"
	"fmt"
	"log"

	horus "repro"
	"repro/internal/mem"
)

func main() {
	cfg := horus.TestConfig()

	// Reference run: untouched CHV must recover.
	res, rec, err := horus.RunRecovery(cfg, horus.HorusDLM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean image: recovered %d blocks in %v\n\n", res.BlocksDrained, rec.Time())

	attacks := []struct {
		name   string
		mount  func(sys *horus.System, prev, cur horus.Result)
		replay bool
	}{
		{name: "tamper with a drained data block", mount: func(sys *horus.System, _, _ horus.Result) {
			sys.Core.NVM.Store().CorruptByte(sys.Core.Layout.CHVDataAddr(7), 3, 0x20)
		}},
		{name: "tamper with a coalesced address block", mount: func(sys *horus.System, _, _ horus.Result) {
			a, _ := sys.Core.Layout.CHVAddrBlockAddr(0)
			sys.Core.NVM.Store().CorruptByte(a, 1, 0x04)
		}},
		{name: "tamper with a coalesced MAC block", mount: func(sys *horus.System, _, _ horus.Result) {
			sys.Core.NVM.Store().CorruptByte(sys.Core.Layout.CHVMACBase, 0, 0x80)
		}},
		{name: "splice two drained blocks", mount: func(sys *horus.System, _, _ horus.Result) {
			lay, st := sys.Core.Layout, sys.Core.NVM.Store()
			a0, a1 := lay.CHVDataAddr(2), lay.CHVDataAddr(3)
			b0, b1 := st.ReadBlock(a0), st.ReadBlock(a1)
			st.WriteBlock(a0, b1)
			st.WriteBlock(a1, b0)
		}},
		{name: "replay the previous draining episode", replay: true},
	}

	for _, atk := range attacks {
		sys := horus.NewSystem(cfg, horus.HorusDLM)
		if err := sys.Warmup(); err != nil {
			log.Fatal(err)
		}
		sys.Fill()
		first, err := sys.Drain()
		if err != nil {
			log.Fatal(err)
		}
		cur := first

		if atk.replay {
			// Snapshot episode 1's CHV, drain a second episode with changed
			// contents, then restore episode 1's bytes.
			snapshot := snapshotCHV(sys, first.BlocksDrained)
			sys.Crash()
			rec, err := sys.Recover(first.Persist) // legit recovery of ep. 1
			if err != nil {
				log.Fatal(err)
			}
			_ = rec
			second, err := sys.Drain() // episode 2 (DC has advanced)
			if err != nil {
				log.Fatal(err)
			}
			cur = second
			restoreCHV(sys, snapshot)
		} else {
			atk.mount(sys, first, cur)
		}

		sys.Crash()
		_, err = sys.Recover(cur.Persist)
		var re *horus.RecoveryError
		if errors.As(err, &re) {
			fmt.Printf("DETECTED  %-42s -> %v\n", atk.name, err)
		} else if err != nil {
			log.Fatalf("%s: unexpected error %v", atk.name, err)
		} else {
			log.Fatalf("%s: WENT UNDETECTED", atk.name)
		}
	}
	fmt.Println("\nall attack classes detected; no compromised state was restored")
}

type savedBlock struct {
	addr uint64
	data mem.Block
}

func snapshotCHV(sys *horus.System, blocks int) []savedBlock {
	lay, st := sys.Core.Layout, sys.Core.NVM.Store()
	var out []savedBlock
	for i := uint64(0); i < uint64(blocks); i++ {
		a := lay.CHVDataAddr(i)
		out = append(out, savedBlock{a, st.ReadBlock(a)})
	}
	groups := (uint64(blocks) + 7) / 8
	for g := uint64(0); g < groups; g++ {
		a, _ := lay.CHVAddrBlockAddr(g * 8)
		out = append(out, savedBlock{a, st.ReadBlock(a)})
		m, _ := lay.CHVMACBlockAddrDLM(g * 8)
		out = append(out, savedBlock{m, st.ReadBlock(m)})
	}
	return out
}

func restoreCHV(sys *horus.System, snap []savedBlock) {
	st := sys.Core.NVM.Store()
	for _, b := range snap {
		st.WriteBlock(b.addr, b.data)
	}
}
