// Secure durable KV store: an application built on the EPD machine API.
// Values live in secure NVM-backed memory; on an EPD system a put is
// durable the moment its cache writes complete (no flushes), which is the
// programming-model win the paper's introduction leads with. The example
// stores a few hundred objects, loses power mid-operation, drains with
// Horus-DLM, recovers, and proves every committed object is intact.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	horus "repro"
)

// store is a tiny fixed-capacity durable hash table: each slot is one
// header block (key, length, commit mark) followed by valueBlocks data
// blocks. On EPD, writes are durable when cached; the commit mark is
// written last so a torn put is detectable.
type store struct {
	ws          *horus.WorkloadSystem
	slots       uint64
	valueBlocks uint64
}

const (
	blockSize   = 64
	commitMagic = 0xC0417ED1
)

func newStore(ws *horus.WorkloadSystem, slots, valueBlocks uint64) *store {
	return &store{ws: ws, slots: slots, valueBlocks: valueBlocks}
}

func (s *store) slotBase(key uint64) uint64 {
	h := key * 0x9E3779B97F4A7C15
	slot := h % s.slots
	return slot * (1 + s.valueBlocks) * blockSize
}

// Put stores value (up to valueBlocks*64 bytes) under key and commits it.
func (s *store) Put(key uint64, value []byte) error {
	if uint64(len(value)) > s.valueBlocks*blockSize {
		return fmt.Errorf("value too large")
	}
	base := s.slotBase(key)
	// Invalidate the header first so a crash mid-put reads as absent.
	if err := s.ws.Machine.Write(base, horus.Block{}); err != nil {
		return err
	}
	for b := uint64(0); b*blockSize < uint64(len(value)) || b == 0; b++ {
		var blk horus.Block
		lo := b * blockSize
		hi := lo + blockSize
		if hi > uint64(len(value)) {
			hi = uint64(len(value))
		}
		if lo < uint64(len(value)) {
			copy(blk[:], value[lo:hi])
		}
		if err := s.ws.Machine.Write(base+(1+b)*blockSize, blk); err != nil {
			return err
		}
	}
	// Commit: header carries key, length and the commit mark, written last.
	var hdr horus.Block
	binary.LittleEndian.PutUint64(hdr[0:8], key)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(value)))
	binary.LittleEndian.PutUint32(hdr[16:20], commitMagic)
	return s.ws.Machine.Write(base, hdr)
}

// Get returns the committed value for key, or ok=false.
func (s *store) Get(key uint64) ([]byte, bool, error) {
	base := s.slotBase(key)
	hdr, err := s.ws.Machine.Read(base)
	if err != nil {
		return nil, false, err
	}
	if binary.LittleEndian.Uint32(hdr[16:20]) != commitMagic ||
		binary.LittleEndian.Uint64(hdr[0:8]) != key {
		return nil, false, nil
	}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	out := make([]byte, 0, n)
	for b := uint64(0); uint64(len(out)) < n; b++ {
		blk, err := s.ws.Machine.Read(base + (1+b)*blockSize)
		if err != nil {
			return nil, false, err
		}
		take := n - uint64(len(out))
		if take > blockSize {
			take = blockSize
		}
		out = append(out, blk[:take]...)
	}
	return out, true, nil
}

func valueFor(k uint64) []byte {
	v := make([]byte, 40+int(k%80))
	for i := range v {
		v[i] = byte(k + uint64(i)*7)
	}
	return v
}

func main() {
	cfg := horus.TestConfig()
	ws := horus.NewWorkloadSystem(cfg, horus.HorusDLM, horus.DomainEPD)
	kv := newStore(ws, 512, 3)

	const objects = 300
	for k := uint64(0); k < objects; k++ {
		if err := kv.Put(k, valueFor(k)); err != nil {
			log.Fatalf("put %d: %v", k, err)
		}
	}
	fmt.Printf("stored %d objects; run time %v, zero persist flushes (EPD)\n",
		objects, ws.Stats().Time)

	// Power fails. The EPD drains the dirty hierarchy through Horus-DLM.
	res, _, err := ws.CrashAndDrain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("outage: drained %d dirty lines to the CHV in %v\n",
		res.BlocksDrained, res.DrainTime)

	// Power returns; recover and audit the store.
	rec, err := ws.Recover(res.Persist)
	if err != nil {
		log.Fatal(err)
	}
	intact := 0
	for k := uint64(0); k < objects; k++ {
		v, ok, err := kv.Get(k)
		if err != nil {
			log.Fatalf("get %d after recovery: %v", k, err)
		}
		if ok && string(v) == string(valueFor(k)) {
			intact++
		}
	}
	fmt.Printf("recovered in %v: %d/%d objects intact and verified\n",
		rec.Time(), intact, objects)
	if intact != objects {
		log.Fatal("data loss detected")
	}
}
