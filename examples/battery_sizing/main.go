// Battery sizing: the paper's motivating scenario. A data-center operator
// wants eADR-style persistence with memory security, and the power-hold-up
// budget — and therefore the per-server battery volume — is set by the
// worst-case draining episode. This example compares the four secure
// designs (plus the non-secure reference) and prints the Table II / Table
// III style summary, showing how Horus shrinks the battery by ~4-5x.
package main

import (
	"fmt"
	"log"
	"os"

	horus "repro"
	"repro/internal/energy"
	"repro/internal/report"
)

func main() {
	cfg := horus.TestConfig() // switch to horus.DefaultConfig() for Table I scale
	schemes := horus.AllSchemes()

	ds, err := horus.RunDrainSet(cfg, schemes)
	if err != nil {
		log.Fatal(err)
	}

	t := &report.Table{
		Title:  "Worst-case draining episode: energy and battery size",
		Header: []string{"scheme", "drain time", "energy", "SuperCap", "Li-thin"},
	}
	for _, s := range schemes {
		res := ds.Results[s]
		b := cfg.EnergyOf(res)
		t.AddRow(s.String(),
			res.DrainTime.String(),
			report.Joules(b.Total()),
			report.Cm3(energy.Volume(b.Total(), energy.SuperCap)),
			report.Cm3(energy.Volume(b.Total(), energy.LiThin)))
	}
	lu := cfg.EnergyOf(ds.Results[horus.BaseLU]).Total()
	slm := cfg.EnergyOf(ds.Results[horus.HorusSLM]).Total()
	t.AddNote("Horus-SLM shrinks the battery %.1fx vs the lazy baseline", lu/slm)
	t.Fprint(os.Stdout)

	fmt.Println("Every ~10% of battery volume is rack space and embodied carbon;")
	fmt.Println("the paper argues this is what gates secure-memory adoption in EPD servers.")
}
