// Quickstart: simulate a secure EPD system with Horus, crash it, and
// recover — the library's core loop in ~40 lines.
package main

import (
	"fmt"
	"log"

	horus "repro"
)

func main() {
	// TestConfig is a proportionally scaled-down Table I machine so the
	// example runs in well under a second; DefaultConfig is the paper's
	// full 32 GB / 16 MB-LLC setup.
	cfg := horus.TestConfig()

	sys := horus.NewSystem(cfg, horus.HorusSLM)

	// Run-time phase: the system performs secure writes, leaving dirty
	// security metadata in the on-chip caches.
	if err := sys.Warmup(); err != nil {
		log.Fatal(err)
	}

	// Worst-case pre-crash state: every cache line of every level dirty.
	n := sys.Fill()
	fmt.Printf("cache hierarchy holds %d dirty blocks\n", n)

	// Outage detected: drain the hierarchy into the cache hierarchy vault
	// under battery power.
	res, err := sys.Drain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drained in %v using %d memory writes and %d MAC calculations\n",
		res.DrainTime, res.MemWrites.Total(), res.TotalMACs())

	// Power is lost: volatile state disappears.
	sys.Crash()

	// Power returns: read the CHV back, verify every block, decrypt, and
	// refill the cache hierarchy in dirty state.
	rec, err := sys.Recover(res.Persist)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d blocks in %v — contents verified and decrypted\n",
		sys.Hierarchy.DirtyCount(), rec.Time())
}
