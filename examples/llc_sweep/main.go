// LLC sweep: the paper's sensitivity argument (Figs. 14-16). EPD battery
// provisioning must track the cache hierarchy, and LLCs are growing (the
// paper cites AMD's 512 MB V-Cache); this example sweeps the LLC size and
// shows that the baselines' draining cost explodes with capacity while
// Horus scales with the data actually drained, and that Horus recovery
// time stays well under a second even for large caches.
package main

import (
	"fmt"
	"log"
	"os"

	horus "repro"
	"repro/internal/hierarchy"
	"repro/internal/report"
)

func main() {
	cfg := horus.TestConfig()
	// Scaled-down sweep (use horus.Fig14LLCSizes() with DefaultConfig for
	// the paper's 8/16/32 MB points).
	sizes := []int{128 << 10, 256 << 10, 512 << 10}

	t := &report.Table{
		Title:  "Draining cost and recovery time vs LLC size",
		Header: []string{"LLC", "scheme", "blocks", "mem accesses", "drain time", "recovery"},
	}
	for _, size := range sizes {
		c := cfg
		c.Hierarchy = &hierarchy.Config{Levels: []hierarchy.LevelConfig{
			{Name: "L1", SizeBytes: 2 << 10, Ways: 2},
			{Name: "L2", SizeBytes: 64 << 10, Ways: 8},
			{Name: "LLC", SizeBytes: size, Ways: 16},
		}}
		for _, s := range []horus.Scheme{horus.BaseLU, horus.HorusSLM, horus.HorusDLM} {
			sys := horus.NewSystem(c, s)
			if err := sys.Warmup(); err != nil {
				log.Fatal(err)
			}
			n := sys.Fill()
			res, err := sys.Drain()
			if err != nil {
				log.Fatal(err)
			}
			recovery := "n/a (vault reinstall)"
			if s.UsesCHV() {
				sys.Crash()
				rec, err := sys.Recover(res.Persist)
				if err != nil {
					log.Fatal(err)
				}
				recovery = rec.Time().String()
			}
			t.AddRow(fmt.Sprintf("%dKB", size>>10), s.String(),
				report.Count(int64(n)),
				report.Count(res.TotalMemAccesses()),
				res.DrainTime.String(), recovery)
		}
	}
	t.AddNote("Horus cost per block is constant; the baselines pay metadata misses that grow with sparsity")
	t.Fprint(os.Stdout)
}
