// EPD vs ADR: the paper's motivation (§I, §II-A) quantified at run time.
// Persistent applications on an ADR system must flush every durable update
// through the (secure) memory path; an EPD system makes the caches part of
// the persistence domain, so persists are free. This example runs the
// paper's motivating workload classes — key-value store, analytical scan,
// transactional log, graph traversal — on both domains over a secure NVM
// and reports the run-time speedup EPD delivers, then crashes the EPD
// machine mid-run and shows Horus bringing it back.
package main

import (
	"fmt"
	"log"
	"os"

	horus "repro"
	"repro/internal/report"
)

func main() {
	cfg := horus.TestConfig()
	wcfg := horus.WorkloadConfig{Ops: 8000, WorkingSet: 96 << 10, Seed: 11}

	workloads := []*horus.Workload{
		horus.KVStoreWorkload(wcfg, 4),
		horus.TxLogWorkload(wcfg, 2, 4),
		horus.SequentialWorkload(withPersists(wcfg, 30)),
		horus.GraphWorkload(withPersists(wcfg, 30), 3),
	}

	t := &report.Table{
		Title:  "Run-time cost of durability: ADR vs EPD (secure NVM, lazy tree updates)",
		Header: []string{"workload", "ADR time", "EPD time", "EPD speedup", "persist flushes avoided"},
	}
	for _, wl := range workloads {
		var times [2]float64
		var flushes int64
		for i, domain := range []horus.PersistDomain{horus.DomainADR, horus.DomainEPD} {
			ws := horus.NewWorkloadSystem(cfg, horus.BaseLU, domain)
			if err := ws.Run(wl); err != nil {
				log.Fatal(err)
			}
			st := ws.Stats()
			times[i] = st.Time.Seconds()
			if domain == horus.DomainADR {
				flushes = st.PersistFlush
			}
		}
		t.AddRow(wl.Name,
			fmt.Sprintf("%.2fms", times[0]*1e3),
			fmt.Sprintf("%.2fms", times[1]*1e3),
			fmt.Sprintf("%.2fx", times[0]/times[1]),
			report.Count(flushes))
	}
	t.AddNote("EPD makes durability free at run time; the cost moves to the outage drain — which is what Horus makes affordable")
	t.Fprint(os.Stdout)

	// And the other half of the bargain: the EPD machine must survive the
	// crash. Run, crash mid-flight, drain with Horus, recover, verify.
	ws := horus.NewWorkloadSystem(cfg, horus.HorusSLM, horus.DomainEPD)
	if err := ws.Run(horus.TxLogWorkload(wcfg, 2, 4)); err != nil {
		log.Fatal(err)
	}
	res, golden, err := ws.CrashAndDrain()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ws.Recover(res.Persist); err != nil {
		log.Fatal(err)
	}
	for addr, want := range golden {
		got, err := ws.Machine.Read(addr)
		if err != nil || got != want {
			log.Fatalf("post-recovery verification failed at %#x: %v", addr, err)
		}
	}
	fmt.Printf("crash mid-run: drained %d dirty lines in %v, recovered and verified all of them\n",
		res.BlocksDrained, res.DrainTime)
}

func withPersists(c horus.WorkloadConfig, pct int) horus.WorkloadConfig {
	c.PersistPercent = pct
	return c
}
