package horus

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/mem"
	"repro/internal/secmem"
)

// drainArtifacts runs one full warmup+fill+drain episode at the given shard
// count with every observer attached and returns all of its observable
// output: the Result, the NVM's full content, the event timeline and the
// time-series JSON.
func drainArtifacts(t *testing.T, scheme Scheme, shards int) (Result, []uint64, []mem.Block, *TimelineRecording, []byte) {
	t.Helper()
	cfg := TestConfig()
	cfg.Shards = shards
	rec := NewTimelineRecorder(0)
	cfg.Timeline = rec
	ts := NewTimeseriesSampler(5_000_000, 4096)
	cfg.Timeseries = ts

	sys := NewSystem(cfg, scheme)
	if err := sys.Warmup(); err != nil {
		t.Fatalf("%v shards=%d: warmup: %v", scheme, shards, err)
	}
	sys.Fill()
	res, err := sys.Drain()
	if err != nil {
		t.Fatalf("%v shards=%d: drain: %v", scheme, shards, err)
	}

	store := sys.Core.NVM.Store()
	addrs := store.AddressesInRange(0, math.MaxUint64)
	content := make([]mem.Block, len(addrs))
	for i, a := range addrs {
		content[i] = store.ReadBlock(a)
	}
	var tsJSON bytes.Buffer
	if err := ts.WriteJSON(&tsJSON); err != nil {
		t.Fatalf("%v shards=%d: timeseries: %v", scheme, shards, err)
	}
	return res, addrs, content, rec.Recording(), tsJSON.Bytes()
}

// TestShardedDrainDeterminism is the pipeline's acceptance property: for
// every scheme, a drain at -shards=N (N in {2, 4, 8}) is byte-identical to
// the serial -shards=1 drain — same Result (times, counters, persistent
// registers including the tree and vault roots), same NVM bytes at every
// populated address, same event timeline, same time-series JSON.
func TestShardedDrainDeterminism(t *testing.T) {
	for _, scheme := range AllSchemes() {
		res1, addrs1, blocks1, rec1, ts1 := drainArtifacts(t, scheme, 1)
		for _, shards := range []int{2, 4, 8} {
			resN, addrsN, blocksN, recN, tsN := drainArtifacts(t, scheme, shards)
			if !reflect.DeepEqual(res1, resN) {
				t.Errorf("%v: Result diverges at shards=%d\n serial: %+v\nsharded: %+v", scheme, shards, res1, resN)
			}
			if !reflect.DeepEqual(addrs1, addrsN) {
				t.Errorf("%v: populated address set diverges at shards=%d (%d vs %d addresses)",
					scheme, shards, len(addrs1), len(addrsN))
			} else if !reflect.DeepEqual(blocks1, blocksN) {
				for i := range blocks1 {
					if blocks1[i] != blocksN[i] {
						t.Errorf("%v: NVM content diverges at shards=%d, addr %#x", scheme, shards, addrs1[i])
						break
					}
				}
			}
			if !reflect.DeepEqual(rec1.Events, recN.Events) {
				t.Errorf("%v: timeline diverges at shards=%d (%d vs %d events)",
					scheme, shards, len(rec1.Events), len(recN.Events))
			}
			if !bytes.Equal(ts1, tsN) {
				t.Errorf("%v: time-series JSON diverges at shards=%d", scheme, shards)
			}
		}
	}
}

// TestShardedDrainHintEfficacy guards against the silent degenerate mode
// where the determinism property holds only because every speculative hint
// was rejected and the drain fell back to inline crypto: for the baseline
// drains of a clean (fault-free) episode, the counter speculation must
// predict essentially every write.
func TestShardedDrainHintEfficacy(t *testing.T) {
	for _, scheme := range []Scheme{BaseLU, BaseEU} {
		cfg := TestConfig()
		cfg.Shards = 4
		sys := NewSystem(cfg, scheme)
		if err := sys.Warmup(); err != nil {
			t.Fatalf("%v: warmup: %v", scheme, err)
		}
		n := sys.Fill()
		if _, err := sys.Drain(); err != nil {
			t.Fatalf("%v: drain: %v", scheme, err)
		}
		used, rejected := sys.Core.Sec.DrainHintStats()
		if used+rejected != int64(n) {
			t.Errorf("%v: hint stream desynchronised: used %d + rejected %d != %d blocks", scheme, used, rejected, n)
		}
		if used < int64(n)*95/100 {
			t.Errorf("%v: speculation predicted only %d of %d drain writes", scheme, used, n)
		}
	}
}

// TestShardedDrainRecovers pins that a sharded drain leaves recoverable
// state: crash after a -shards=8 drain, then verified recovery, for a CHV
// scheme and a baseline.
func TestShardedDrainRecovers(t *testing.T) {
	for _, scheme := range []Scheme{BaseLU, HorusDLM} {
		cfg := TestConfig()
		cfg.Shards = 8
		sys := NewSystem(cfg, scheme)
		if err := sys.Warmup(); err != nil {
			t.Fatalf("%v: warmup: %v", scheme, err)
		}
		sys.Fill()
		res, err := sys.Drain()
		if err != nil {
			t.Fatalf("%v: drain: %v", scheme, err)
		}
		sys.Crash()
		if _, err := sys.Recover(res.Persist); err != nil {
			t.Fatalf("%v: recovery after sharded drain: %v", scheme, err)
		}
	}
}

// TestShardVaultWorkPartition is the flush work-list property across all
// five schemes: after a real warmup/fill/drain, the union of the per-shard
// vault work lists equals the serial payload slot sequence exactly — every
// slot appears once, in ascending order within its list, in the list of
// the bank that owns its vault address.
func TestShardVaultWorkPartition(t *testing.T) {
	for _, scheme := range AllSchemes() {
		cfg := TestConfig()
		sys := NewSystem(cfg, scheme)
		if err := sys.Warmup(); err != nil {
			t.Fatalf("%v: warmup: %v", scheme, err)
		}
		sys.Fill()
		if _, err := sys.Drain(); err != nil {
			t.Fatalf("%v: drain: %v", scheme, err)
		}
		payload := len(sys.Core.Sec.VaultPayloadBlocks())
		lay := sys.Core.Layout
		for _, shards := range []int{1, 2, 3, 8} {
			lists := secmem.ShardVaultWork(lay, payload, shards)
			if len(lists) != shards {
				t.Fatalf("%v: %d lists for %d shards", scheme, len(lists), shards)
			}
			seen := make(map[uint64]int, payload)
			for w, list := range lists {
				prev := -1
				for _, slot := range list {
					if int(slot) <= prev {
						t.Fatalf("%v shards=%d: shard %d list not ascending at slot %d", scheme, shards, w, slot)
					}
					prev = int(slot)
					seen[slot]++
					if own := mem.BankOf(lay.VaultAddr(slot), shards); own != w {
						t.Fatalf("%v shards=%d: slot %d in shard %d, owned by bank %d", scheme, shards, slot, w, own)
					}
				}
			}
			if len(seen) != payload {
				t.Fatalf("%v shards=%d: union covers %d of %d slots", scheme, shards, len(seen), payload)
			}
			for slot, n := range seen {
				if n != 1 {
					t.Fatalf("%v shards=%d: slot %d appears %d times", scheme, shards, slot, n)
				}
			}
		}
	}
}
