package horus

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/secmem"
	"repro/internal/sim"
)

// revCHVScheme is a test-only drain design registered through the public
// registry: it drains the dirty set into the CHV in reverse address order.
// Recovery must be order-agnostic (the CHV records addresses alongside
// content), so the round-trip contract below must hold for it exactly as
// for the built-ins.
type revCHVScheme struct{}

func (revCHVScheme) Name() string                       { return "Test-RevCHV" }
func (revCHVScheme) Secure() bool                       { return true }
func (revCHVScheme) UsesCHV() bool                      { return true }
func (revCHVScheme) RuntimeScheme() secmem.UpdateScheme { return secmem.LazyUpdate }
func (revCHVScheme) Drain(d *core.Drainer, blocks []hierarchy.DirtyBlock) (sim.Time, error) {
	rev := make([]hierarchy.DirtyBlock, len(blocks))
	for i, b := range blocks {
		rev[len(blocks)-1-i] = b
	}
	return d.DrainCHV(rev, false), nil
}

// registerRevCHV is shared by tests so -count=2 reruns don't hit the
// duplicate-registration panic.
var registerRevCHV = sync.OnceValue(func() Scheme {
	return RegisterScheme("Test-RevCHV", func() DrainScheme { return revCHVScheme{} })
})

// TestSchemeRegistryRoundTripParity drives every registered scheme —
// including the test-registered one — through the same lifecycle
// (run workload → crash-drain → recover) and asserts each restores the
// pre-crash contents through its own persistence path. The loop iterates
// SchemeNames() so a scheme that registers but breaks the round-trip
// cannot hide.
func TestSchemeRegistryRoundTripParity(t *testing.T) {
	registerRevCHV()

	names := SchemeNames()
	if len(names) < 6 {
		t.Fatalf("registry lists %v, want the 5 built-ins plus Test-RevCHV", names)
	}
	seen := map[string]bool{}
	for _, name := range names {
		seen[name] = true
	}
	if !seen["Test-RevCHV"] {
		t.Fatalf("registry %v is missing the test-registered scheme", names)
	}

	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			scheme, err := LookupScheme(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := TestConfig()
			ws := NewWorkloadSystem(cfg, scheme, DomainEPD)
			w := UniformWorkload(WorkloadConfig{Ops: 150, WorkingSet: 4 << 10, Seed: 77, PersistPercent: 10})
			if err := ws.Run(w); err != nil {
				t.Fatal(err)
			}
			drained := ws.Machine.DirtyBlocks()
			if len(drained) == 0 {
				t.Fatal("workload left nothing dirty")
			}
			res, golden, err := ws.CrashAndDrain()
			if err != nil {
				t.Fatal(err)
			}
			if res.Persist.Scheme != scheme {
				t.Fatalf("persistent state names scheme %v, want %v", res.Persist.Scheme, scheme)
			}
			if _, err := ws.Recover(res.Persist); err != nil {
				t.Fatalf("recover: %v", err)
			}

			switch {
			case scheme.UsesCHV():
				// Recovery refilled the hierarchy; the machine's view must
				// equal the pre-crash golden image for every drained block.
				got := ws.Machine.Golden()
				for _, b := range drained {
					g, ok := golden[b.Addr]
					if !ok {
						t.Fatalf("drained %#x missing from golden image", b.Addr)
					}
					if v := got[b.Addr]; v != g {
						t.Errorf("block %#x not restored: got %x want %x", b.Addr, v[:8], g[:8])
					}
				}
			case scheme.Secure():
				// Baselines drained in place: every drained block must read
				// back through the secure controller with a verified MAC.
				for _, b := range drained {
					v, _, err := ws.Core.Sec.ReadBlock(0, b.Addr)
					if err != nil {
						t.Fatalf("verified read of %#x: %v", b.Addr, err)
					}
					if g := golden[b.Addr]; v != g {
						t.Errorf("block %#x not restored: got %x want %x", b.Addr, v[:8], g[:8])
					}
				}
			default:
				// NonSecure drained plaintext in place.
				for _, b := range drained {
					v := ws.Core.NVM.PeekRead(b.Addr)
					if g := golden[b.Addr]; v != g {
						t.Errorf("block %#x not restored: got %x want %x", b.Addr, v[:8], g[:8])
					}
				}
			}
		})
	}
}

// TestRegisteredSchemeInTortureMatrix proves the fault-injection harness
// composes with registry extensions: the test scheme runs through a sampled
// crash column with the same no-silent-corruption contract.
func TestRegisteredSchemeInTortureMatrix(t *testing.T) {
	scheme := registerRevCHV()
	rep, err := RunTortureMatrix(t.Context(), TortureConfig{
		Config:  TestConfig(),
		Schemes: []Scheme{scheme},
		Flavors: []CrashFlavor{CrashCleanCut, CrashBitFlip},
		Stride:  5,
	}, SweepOptions{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) == 0 {
		t.Fatal("no cells for the registered scheme")
	}
	for _, f := range rep.Failures() {
		t.Errorf("contract violation at %s: %s — %s", f.Label(), f.Outcome, f.Detail)
	}
}
