package horus

import (
	"context"
	"fmt"

	"repro/internal/energy"
	"repro/internal/recovery"
	"repro/internal/report"
	"repro/internal/sim"
)

// DrainSet holds one drain result per scheme over the same configuration,
// the shared substrate for Figs. 6, 11, 12, 13 and Tables II, III.
type DrainSet struct {
	Config  Config
	Schemes []Scheme
	Results map[Scheme]Result
	// Timelines holds the per-scheme drain recordings, populated only when
	// the base Config.Timeline requested tracing.
	Timelines map[Scheme]*TimelineRecording
}

// mustResult returns a scheme's result, failing loudly if the set was run
// without it (instead of nil-dereferencing a zero Result downstream).
func (ds *DrainSet) mustResult(s Scheme) Result {
	res, ok := ds.Results[s]
	if !ok {
		panic(fmt.Sprintf("horus: drain set has no result for %v; include it in RunDrainSet's schemes", s))
	}
	return res
}

// RunDrainSet drains a fresh system per scheme (identical fill and flush
// order, thanks to the shared seed) and collects the results.
func RunDrainSet(cfg Config, schemes []Scheme) (*DrainSet, error) {
	return RunDrainSetCtx(context.Background(), cfg, schemes, SweepOptions{})
}

// RunDrainSetCtx is RunDrainSet through the episode engine: the schemes
// drain concurrently (opts.Parallel workers) under ctx. On failure the
// returned set still holds every scheme that completed, alongside a
// *SweepError describing the ones that did not.
func RunDrainSetCtx(ctx context.Context, cfg Config, schemes []Scheme, opts SweepOptions) (*DrainSet, error) {
	points := make([]DrainPoint, len(schemes))
	for i, s := range schemes {
		points[i] = DrainPoint{Label: s.String(), Config: cfg, Scheme: s}
	}
	prs, err := RunDrainGrid(ctx, points, opts)
	ds := &DrainSet{Config: cfg, Schemes: schemes, Results: make(map[Scheme]Result)}
	for _, pr := range prs {
		if pr.Err == nil {
			ds.Results[pr.Point.Scheme] = pr.Result
			if pr.Timeline != nil {
				if ds.Timelines == nil {
					ds.Timelines = make(map[Scheme]*TimelineRecording)
				}
				ds.Timelines[pr.Point.Scheme] = pr.Timeline
			}
		}
	}
	if err != nil {
		return ds, fmt.Errorf("horus: drain set: %w", err)
	}
	return ds, nil
}

// ---------------------------------------------------------------------------
// Fig. 6 — memory-request breakdown for flushing the cache hierarchy
// (motivation: 10.3x / 9.5x blow-up of the secure baselines).

// Fig6 reports the motivation experiment.
type Fig6 struct {
	Blocks int
	Set    *DrainSet
}

// Fig6Schemes are the designs Fig. 6 compares.
func Fig6Schemes() []Scheme { return []Scheme{NonSecure, BaseEU, BaseLU} }

// RunFig6 regenerates Fig. 6.
func RunFig6(cfg Config) (Fig6, error) {
	return RunFig6Ctx(context.Background(), cfg, SweepOptions{})
}

// RunFig6Ctx regenerates Fig. 6 through the episode engine.
func RunFig6Ctx(ctx context.Context, cfg Config, opts SweepOptions) (Fig6, error) {
	ds, err := RunDrainSetCtx(ctx, cfg, Fig6Schemes(), opts)
	if err != nil {
		return Fig6{}, err
	}
	return Fig6{Blocks: ds.Results[NonSecure].BlocksDrained, Set: ds}, nil
}

// Ratio returns a scheme's total memory requests normalized to NonSecure.
// It panics with a descriptive message if the set lacks either scheme.
func (f Fig6) Ratio(s Scheme) float64 {
	base := f.Set.mustResult(NonSecure).TotalMemAccesses()
	return float64(f.Set.mustResult(s).TotalMemAccesses()) / float64(base)
}

// Table renders the figure as a breakdown table.
func (f Fig6) Table() *report.Table {
	t := &report.Table{
		Title:  fmt.Sprintf("Fig. 6: memory requests to flush the cache hierarchy (%s blocks)", report.Count(int64(f.Blocks))),
		Header: []string{"scheme", "reads", "writes", "total", "vs non-secure"},
	}
	for _, s := range f.Set.Schemes {
		r := f.Set.Results[s]
		t.AddRow(s.String(),
			report.Count(r.MemReads.Total()),
			report.Count(r.MemWrites.Total()),
			report.Count(r.TotalMemAccesses()),
			report.Ratio(f.Ratio(s)))
	}
	t.AddNote("paper: Base-LU = 10.3x, Base-EU = 9.5x the non-secure requests")
	return t
}

// ---------------------------------------------------------------------------
// Fig. 11 — normalized draining time (cycles).

// Fig11 reports the draining-time comparison across all five designs.
type Fig11 struct {
	Set *DrainSet
}

// RunFig11 regenerates Fig. 11.
func RunFig11(cfg Config) (Fig11, error) {
	return RunFig11Ctx(context.Background(), cfg, SweepOptions{})
}

// RunFig11Ctx regenerates Fig. 11 through the episode engine.
func RunFig11Ctx(ctx context.Context, cfg Config, opts SweepOptions) (Fig11, error) {
	ds, err := RunDrainSetCtx(ctx, cfg, AllSchemes(), opts)
	if err != nil {
		return Fig11{}, err
	}
	return Fig11{Set: ds}, nil
}

// Normalized returns a scheme's draining time normalized to NonSecure.
// It panics with a descriptive message if the set lacks either scheme.
func (f Fig11) Normalized(s Scheme) float64 {
	return float64(f.Set.mustResult(s).DrainTime) / float64(f.Set.mustResult(NonSecure).DrainTime)
}

// VsHorus returns a scheme's draining time relative to Horus-SLM.
// It panics with a descriptive message if the set lacks either scheme.
func (f Fig11) VsHorus(s Scheme) float64 {
	return float64(f.Set.mustResult(s).DrainTime) / float64(f.Set.mustResult(HorusSLM).DrainTime)
}

// Table renders the figure.
func (f Fig11) Table() *report.Table {
	t := &report.Table{
		Title:  "Fig. 11: draining time (power-hold-up proxy)",
		Header: []string{"scheme", "drain time", "vs non-secure", "vs Horus-SLM"},
	}
	for _, s := range f.Set.Schemes {
		r := f.Set.Results[s]
		t.AddRow(s.String(), r.DrainTime.String(),
			report.Ratio(f.Normalized(s)), report.Ratio(f.VsHorus(s)))
	}
	t.AddNote("paper: Base-EU = 5.1x and Base-LU = 4.5x the Horus time; Horus = 1.7x non-secure")
	return t
}

// ---------------------------------------------------------------------------
// Fig. 12 — breakdown of memory writes by type.

// Fig12 reports the write-type breakdown.
type Fig12 struct {
	Set *DrainSet
}

// RunFig12 regenerates Fig. 12.
func RunFig12(cfg Config) (Fig12, error) {
	return RunFig12Ctx(context.Background(), cfg, SweepOptions{})
}

// RunFig12Ctx regenerates Fig. 12 through the episode engine.
func RunFig12Ctx(ctx context.Context, cfg Config, opts SweepOptions) (Fig12, error) {
	ds, err := RunDrainSetCtx(ctx, cfg, AllSchemes(), opts)
	if err != nil {
		return Fig12{}, err
	}
	return Fig12{Set: ds}, nil
}

// Table renders the figure: one column per write category.
func (f Fig12) Table() *report.Table {
	cats := collectCategories(f.Set, func(r Result) []string { return r.MemWrites.Names() })
	t := &report.Table{
		Title:  "Fig. 12: breakdown of memory writes",
		Header: append([]string{"scheme"}, append(cats, "total")...),
	}
	for _, s := range f.Set.Schemes {
		r := f.Set.Results[s]
		row := []string{s.String()}
		for _, c := range cats {
			row = append(row, report.Count(r.MemWrites.Get(c)))
		}
		row = append(row, report.Count(r.MemWrites.Total()))
		t.AddRow(row...)
	}
	t.AddNote("paper: Horus-DLM writes 8x fewer CHV MAC blocks than Horus-SLM; metadata flush is negligible for all schemes")
	return t
}

// ---------------------------------------------------------------------------
// Fig. 13 — breakdown of MAC calculations.

// Fig13 reports the MAC-calculation breakdown.
type Fig13 struct {
	Set *DrainSet
}

// RunFig13 regenerates Fig. 13.
func RunFig13(cfg Config) (Fig13, error) {
	return RunFig13Ctx(context.Background(), cfg, SweepOptions{})
}

// RunFig13Ctx regenerates Fig. 13 through the episode engine.
func RunFig13Ctx(ctx context.Context, cfg Config, opts SweepOptions) (Fig13, error) {
	ds, err := RunDrainSetCtx(ctx, cfg, AllSchemes(), opts)
	if err != nil {
		return Fig13{}, err
	}
	return Fig13{Set: ds}, nil
}

// Table renders the figure.
func (f Fig13) Table() *report.Table {
	cats := collectCategories(f.Set, func(r Result) []string { return r.MACCalcs.Names() })
	t := &report.Table{
		Title:  "Fig. 13: breakdown of MAC calculations",
		Header: append([]string{"scheme"}, append(cats, "total")...),
	}
	for _, s := range f.Set.Schemes {
		r := f.Set.Results[s]
		row := []string{s.String()}
		for _, c := range cats {
			row = append(row, report.Count(r.MACCalcs.Get(c)))
		}
		row = append(row, report.Count(r.TotalMACs()))
		t.AddRow(row...)
	}
	t.AddNote("paper: Base-EU largest (tree updates); Horus-DLM = 1.125x Horus-SLM")
	return t
}

func collectCategories(ds *DrainSet, get func(Result) []string) []string {
	var cats []string
	seen := map[string]bool{}
	for _, s := range ds.Schemes {
		for _, c := range get(ds.Results[s]) {
			if !seen[c] {
				seen[c] = true
				cats = append(cats, c)
			}
		}
	}
	return cats
}

// ---------------------------------------------------------------------------
// Figs. 14 & 15 — LLC-size sensitivity (memory requests, MAC calculations,
// normalized to Base-LU at each size).

// SweepPoint is one LLC size's results.
type SweepPoint struct {
	LLCBytes int
	Results  map[Scheme]Result
}

// LLCSweep holds the sensitivity-study results.
type LLCSweep struct {
	Config Config
	Points []SweepPoint
}

// Fig14LLCSizes returns the paper's sweep sizes.
func Fig14LLCSizes() []int { return []int{8 << 20, 16 << 20, 32 << 20} }

// RunLLCSweep drains every scheme at each LLC size.
func RunLLCSweep(cfg Config, llcSizes []int, schemes []Scheme) (*LLCSweep, error) {
	return RunLLCSweepCtx(context.Background(), cfg, llcSizes, schemes, SweepOptions{})
}

// RunLLCSweepCtx is RunLLCSweep as a declarative (size × scheme) point grid
// over the episode engine. On failure the returned sweep holds every point
// that completed, alongside a *SweepError describing the ones that did not.
func RunLLCSweepCtx(ctx context.Context, cfg Config, llcSizes []int, schemes []Scheme, opts SweepOptions) (*LLCSweep, error) {
	var points []DrainPoint
	for _, size := range llcSizes {
		c := cfg
		c.LLCBytes = size
		c.Hierarchy = nil
		for _, s := range schemes {
			points = append(points, DrainPoint{
				Label:  fmt.Sprintf("llc=%dMB/%v", size>>20, s),
				Config: c,
				Scheme: s,
			})
		}
	}
	prs, err := RunDrainGrid(ctx, points, opts)

	sw := &LLCSweep{Config: cfg}
	for i, size := range llcSizes {
		pt := SweepPoint{LLCBytes: size, Results: make(map[Scheme]Result)}
		for j := range schemes {
			pr := prs[i*len(schemes)+j]
			if pr.Err == nil {
				pt.Results[pr.Point.Scheme] = pr.Result
			}
		}
		sw.Points = append(sw.Points, pt)
	}
	if err != nil {
		return sw, fmt.Errorf("horus: LLC sweep: %w", err)
	}
	return sw, nil
}

// Fig14Table renders memory requests normalized to Base-LU per size.
func (sw *LLCSweep) Fig14Table() *report.Table {
	return sw.normalizedTable(
		"Fig. 14: memory requests by LLC size (normalized to Base-LU)",
		"paper: Horus achieves >= 7.0x reduction vs Base-LU at every size",
		func(r Result) float64 { return float64(r.TotalMemAccesses()) })
}

// Fig15Table renders MAC calculations normalized to Base-LU per size.
func (sw *LLCSweep) Fig15Table() *report.Table {
	return sw.normalizedTable(
		"Fig. 15: MAC calculations by LLC size (normalized to Base-LU)",
		"paper: Horus achieves >= 5.8x reduction vs Base-LU at every size",
		func(r Result) float64 { return float64(r.TotalMACs()) })
}

// Normalized returns metric(s) / metric(Base-LU) at sweep point i.
// It panics with a descriptive message if the sweep lacks either scheme.
func (sw *LLCSweep) Normalized(i int, s Scheme, metric func(Result) float64) float64 {
	pt := sw.Points[i]
	num, ok := pt.Results[s]
	if !ok {
		panic(fmt.Sprintf("horus: LLC sweep point %d has no result for %v", i, s))
	}
	den, ok := pt.Results[BaseLU]
	if !ok {
		panic(fmt.Sprintf("horus: LLC sweep point %d has no Base-LU result to normalize against", i))
	}
	return metric(num) / metric(den)
}

func (sw *LLCSweep) normalizedTable(title, note string, metric func(Result) float64) *report.Table {
	var schemes []Scheme
	for _, s := range AllSchemes() {
		if _, ok := sw.Points[0].Results[s]; ok {
			schemes = append(schemes, s)
		}
	}
	header := []string{"scheme"}
	for _, pt := range sw.Points {
		header = append(header, fmt.Sprintf("LLC %dMB", pt.LLCBytes>>20))
	}
	t := &report.Table{Title: title, Header: header}
	for _, s := range schemes {
		row := []string{s.String()}
		for i := range sw.Points {
			row = append(row, fmt.Sprintf("%.3f", sw.Normalized(i, s, metric)))
		}
		t.AddRow(row...)
	}
	t.AddNote("%s", note)
	return t
}

// ---------------------------------------------------------------------------
// Fig. 16 — recovery time vs LLC size.

// Fig16Point is one (LLC size, scheme) recovery measurement.
type Fig16Point struct {
	LLCBytes     int
	Scheme       Scheme
	RecoveryTime sim.Time
	Blocks       int
}

// Fig16 holds the recovery-time estimates.
type Fig16 struct {
	Points []Fig16Point
}

// Fig16LLCSizes returns the paper's sweep (8 MB to 128 MB).
func Fig16LLCSizes() []int { return []int{8 << 20, 16 << 20, 32 << 20, 64 << 20, 128 << 20} }

// RunFig16 drains and recovers Horus-SLM and Horus-DLM at each LLC size.
func RunFig16(cfg Config, llcSizes []int) (Fig16, error) {
	return RunFig16Ctx(context.Background(), cfg, llcSizes, SweepOptions{})
}

// RunFig16Ctx is RunFig16 as a (size × scheme) grid of drain + crash +
// recover episodes over the engine. Completed points survive a sibling's
// failure.
func RunFig16Ctx(ctx context.Context, cfg Config, llcSizes []int, opts SweepOptions) (Fig16, error) {
	var points []DrainPoint
	for _, size := range llcSizes {
		c := cfg
		c.LLCBytes = size
		c.Hierarchy = nil
		for _, s := range []Scheme{HorusSLM, HorusDLM} {
			points = append(points, DrainPoint{
				Label:   fmt.Sprintf("fig16 llc=%dMB/%v", size>>20, s),
				Config:  c,
				Scheme:  s,
				Recover: true,
			})
		}
	}
	prs, err := RunDrainGrid(ctx, points, opts)

	var out Fig16
	for i, pr := range prs {
		if pr.Err != nil || pr.Recovery == nil {
			continue
		}
		out.Points = append(out.Points, Fig16Point{
			LLCBytes: llcSizes[i/2], Scheme: pr.Point.Scheme,
			RecoveryTime: pr.Recovery.Time(), Blocks: pr.Result.BlocksDrained,
		})
	}
	if err != nil {
		return out, fmt.Errorf("horus: Fig16: %w", err)
	}
	return out, nil
}

// Table renders the figure.
func (f Fig16) Table() *report.Table {
	t := &report.Table{
		Title:  "Fig. 16: recovery time",
		Header: []string{"LLC", "scheme", "blocks", "recovery time"},
	}
	for _, p := range f.Points {
		t.AddRow(fmt.Sprintf("%dMB", p.LLCBytes>>20), p.Scheme.String(),
			report.Count(int64(p.Blocks)), p.RecoveryTime.String())
	}
	t.AddNote("paper: 0.51s (SLM) and 0.48s (DLM) at LLC = 128MB")
	return t
}

// ---------------------------------------------------------------------------
// Tables II & III — energy and battery size.

// EnergyBreakdown is one Table II row set (re-exported for CLI/users).
type EnergyBreakdown = energy.Breakdown

// Table2Schemes are the secure designs Table II compares.
func Table2Schemes() []Scheme { return []Scheme{BaseLU, BaseEU, HorusSLM, HorusDLM} }

// Table2 reports draining energy per scheme.
type Table2 struct {
	Set       *DrainSet
	Breakdown map[Scheme]energy.Breakdown
}

// RunTable2 regenerates Table II.
func RunTable2(cfg Config) (Table2, error) {
	return RunTable2Ctx(context.Background(), cfg, SweepOptions{})
}

// RunTable2Ctx regenerates Table II through the episode engine.
func RunTable2Ctx(ctx context.Context, cfg Config, opts SweepOptions) (Table2, error) {
	ds, err := RunDrainSetCtx(ctx, cfg, Table2Schemes(), opts)
	if err != nil {
		return Table2{}, err
	}
	t2 := Table2{Set: ds, Breakdown: make(map[Scheme]energy.Breakdown)}
	for _, s := range ds.Schemes {
		t2.Breakdown[s] = cfg.EnergyOf(ds.Results[s])
	}
	return t2, nil
}

// Table renders Table II.
func (t2 Table2) Table() *report.Table {
	t := &report.Table{
		Title:  "Table II: draining energy",
		Header: []string{"component", "Base-LU", "Base-EU", "Horus-SLM", "Horus-DLM"},
	}
	row := func(name string, get func(energy.Breakdown) float64) {
		cells := []string{name}
		for _, s := range Table2Schemes() {
			cells = append(cells, report.Joules(get(t2.Breakdown[s])))
		}
		t.AddRow(cells...)
	}
	row("Processor", func(b energy.Breakdown) float64 { return b.ProcessorJ })
	row("NVM writes", func(b energy.Breakdown) float64 { return b.NVMWriteJ })
	row("NVM reads", func(b energy.Breakdown) float64 { return b.NVMReadJ })
	row("Total", energy.Breakdown.Total)
	t.AddNote("paper: totals 11.07 / 12.39 / 2.45 / 2.38 J")
	return t
}

// Table3 reports battery volume per scheme and technology.
type Table3 struct {
	T2 Table2
}

// RunTable3 regenerates Table III from a Table II run.
func RunTable3(cfg Config) (Table3, error) {
	return RunTable3Ctx(context.Background(), cfg, SweepOptions{})
}

// RunTable3Ctx regenerates Table III through the episode engine.
func RunTable3Ctx(ctx context.Context, cfg Config, opts SweepOptions) (Table3, error) {
	t2, err := RunTable2Ctx(ctx, cfg, opts)
	if err != nil {
		return Table3{}, err
	}
	return Table3{T2: t2}, nil
}

// Volume returns the battery volume for a scheme and technology.
func (t3 Table3) Volume(s Scheme, tech energy.Tech) float64 {
	return energy.Volume(t3.T2.Breakdown[s].Total(), tech)
}

// Table renders Table III.
func (t3 Table3) Table() *report.Table {
	t := &report.Table{
		Title:  "Table III: battery size for draining",
		Header: []string{"technology", "Base-LU", "Base-EU", "Horus-SLM", "Horus-DLM"},
	}
	for _, tech := range []energy.Tech{energy.SuperCap, energy.LiThin} {
		cells := []string{tech.Name}
		for _, s := range Table2Schemes() {
			cells = append(cells, fmt.Sprintf("%.3f", t3.Volume(s, tech)))
		}
		t.AddRow(cells...)
	}
	t.AddNote("cm^3; paper: SuperCap 30.7/34.4/6.8/6.6, Li-thin 0.31/0.34/0.07/0.07")
	return t
}

// ---------------------------------------------------------------------------
// Headline numbers (abstract / §I).

// Headline summarises the paper's claimed improvements.
type Headline struct {
	MemReduction  float64 // Base-LU accesses / Horus-SLM accesses (paper: ~8x)
	MACReduction  float64 // Base-LU MACs / Horus-SLM MACs (paper: ~7.8x)
	TimeReduction float64 // Base-LU drain time / Horus-SLM drain time (paper: ~5x)
}

// RunHeadline computes the abstract's three claims.
func RunHeadline(cfg Config) (Headline, error) {
	return RunHeadlineCtx(context.Background(), cfg, SweepOptions{})
}

// RunHeadlineCtx computes the abstract's claims through the episode engine.
func RunHeadlineCtx(ctx context.Context, cfg Config, opts SweepOptions) (Headline, error) {
	ds, err := RunDrainSetCtx(ctx, cfg, []Scheme{BaseLU, HorusSLM}, opts)
	if err != nil {
		return Headline{}, err
	}
	lu, slm := ds.Results[BaseLU], ds.Results[HorusSLM]
	return Headline{
		MemReduction:  float64(lu.TotalMemAccesses()) / float64(slm.TotalMemAccesses()),
		MACReduction:  float64(lu.TotalMACs()) / float64(slm.TotalMACs()),
		TimeReduction: float64(lu.DrainTime) / float64(slm.DrainTime),
	}, nil
}

// Table renders the headline comparison.
func (h Headline) Table() *report.Table {
	t := &report.Table{
		Title:  "Headline: Horus-SLM improvement over Base-LU",
		Header: []string{"metric", "reduction", "paper"},
	}
	t.AddRow("memory requests", report.Ratio(h.MemReduction), "8x")
	t.AddRow("MAC calculations", report.Ratio(h.MACReduction), "7.8x")
	t.AddRow("draining time", report.Ratio(h.TimeReduction), "5x")
	return t
}

// ---------------------------------------------------------------------------
// Recovery helper used by Fig. 16 above and by RunRecovery.

// RunRecovery is the one-shot drain + crash + recover round trip: a
// single-point grid over the episode engine.
func RunRecovery(cfg Config, scheme Scheme) (Result, RecoveryReport, error) {
	prs, err := RunDrainGrid(context.Background(),
		[]DrainPoint{{Config: cfg, Scheme: scheme, Recover: true}}, SweepOptions{})
	pr := prs[0]
	if err != nil {
		return pr.Result, RecoveryReport{}, pr.Err
	}
	return pr.Result, *pr.Recovery, nil
}

// Ensure the recovery package's error type is visible to API users who
// want errors.As against it.
type RecoveryError = recovery.Error
