package horus

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/cluster"
	"repro/internal/energy"
	"repro/internal/hierarchy"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// FleetConfig parameterises a fleet-scale simulation: N heterogeneous
// machines (mixed schemes, LLC sizes, bank counts, battery volumes) served
// behind a request router, hit by scheduled power failures, with rack-level
// drain contention and a fleet-wide recovery storm (ROADMAP item 1,
// DESIGN.md §16).
type FleetConfig struct {
	// Fleet is the validated machine roster (cluster.Generate builds
	// heterogeneous ones deterministically from a seed).
	Fleet *cluster.Fleet
	// Base is the per-machine machine configuration; each machine derives
	// its own copy with its spec's LLC size, bank count, battery budget and
	// seed applied. Base.Metrics / Base.Timeseries, when set, receive the
	// fleet-level aggregates after the run (individual machines measure
	// uninstrumented, exactly like torture cells).
	Base Config
	// Sessions is how many client sessions the router spreads over the
	// horizon; OpsPerSession converts routed sessions into per-machine
	// workload length on top of BaseOps.
	Sessions      int
	OpsPerSession int
	BaseOps       int
	// WorkingSet is each machine's workload working-set size in bytes
	// (default 4 KB).
	WorkingSet uint64
	// HorizonPs is the routed time horizon on the fleet clock.
	HorizonPs int64
	// Router picks the session-placement policy; Failover reroutes
	// sessions whose first-choice machine sits in a dark rack.
	Router   cluster.RoutePolicy
	Failover bool
	// Schedule lists the power failures to play out.
	Schedule cluster.Schedule
	// Loop bounds the contention: rack power budget, rack battery budget,
	// fleet recovery slots.
	Loop cluster.LoopConfig
	// BatteryTech resolves each machine's BatteryCm3 into its private
	// drain budget ("supercap" by default, "li-thin" for Table III's other
	// column).
	BatteryTech string
}

// FleetMachine is one machine's measured episode: its spec, the drain and
// recovery measurements the event loop schedules from, the recovery
// oracle's verdict, and a digest of the post-drain NVM image (the
// cross-worker determinism witness).
type FleetMachine struct {
	Spec cluster.MachineSpec
	Run  cluster.MachineRun
	// Outcome is the oracle verdict; Detail explains non-clean ones.
	Outcome CrashOutcome
	Detail  string
	// ImageHash is an FNV-1a digest over the machine's sorted post-drain
	// NVM image. Byte-identical across worker counts.
	ImageHash uint64
	// Sessions is how many routed sessions landed on the machine;
	// Blocks how many dirty lines its drain flushed.
	Sessions int
	Blocks   int
}

// FleetReport is the full fleet-run verdict.
type FleetReport struct {
	Fleet    *cluster.Fleet
	Machines []FleetMachine
	Routes   cluster.RouteStats
	Result   *cluster.FleetResult
	Metrics  cluster.FleetMetrics
}

// Failures returns the machines violating the recoverability contract
// (silent corruption or harness error) — the fleet oracle: after any
// outage every machine must end restored, partial or detected, never
// silent.
func (r *FleetReport) Failures() []FleetMachine {
	var out []FleetMachine
	for _, m := range r.Machines {
		if !m.Outcome.OK() {
			out = append(out, m)
		}
	}
	return out
}

// Ok reports whether every machine satisfied the contract.
func (r *FleetReport) Ok() bool { return len(r.Failures()) == 0 }

// Runs extracts the measured episodes in machine ID order (the event
// loop's input).
func (r *FleetReport) Runs() []cluster.MachineRun {
	runs := make([]cluster.MachineRun, len(r.Machines))
	for i, m := range r.Machines {
		runs[i] = m.Run
	}
	return runs
}

// fleetWorkload builds a machine's workload stream by spec name. The names
// match cluster.Generate's defaults plus the remaining generators.
func fleetWorkload(name string, cfg WorkloadConfig) (*Workload, error) {
	switch name {
	case "uniform":
		return UniformWorkload(cfg), nil
	case "seq", "sequential":
		return SequentialWorkload(cfg), nil
	case "zipf":
		return ZipfWorkload(cfg, 1.1), nil
	case "kv":
		return KVStoreWorkload(cfg, 4), nil
	case "txlog":
		return TxLogWorkload(cfg, 4, 3), nil
	case "graph":
		return GraphWorkload(cfg, 4), nil
	}
	return nil, fmt.Errorf("horus: unknown fleet workload %q (want uniform, seq, zipf, kv, txlog or graph)", name)
}

// FleetWorkloadNames lists the spec names fleetWorkload accepts, for CLI
// validation.
func FleetWorkloadNames() []string {
	return []string{"uniform", "seq", "zipf", "kv", "txlog", "graph"}
}

// machineConfig derives one machine's private Config from the base: its
// LLC size, bank count, seed and battery budget applied, all shared sinks
// detached (machines measure in parallel and must share no mutable state).
func machineConfig(base Config, spec cluster.MachineSpec, tech string) Config {
	cfg := base
	cfg.Metrics = nil
	cfg.Timeseries = nil
	cfg.Timeline = nil
	cfg.Evlog = nil
	cfg.Seed = spec.Seed
	if cfg.Hierarchy != nil {
		// Deep-copy the explicit hierarchy and resize its last level to the
		// machine's LLC; machines must not alias the base's level slice.
		h := *cfg.Hierarchy
		h.Levels = append([]hierarchy.LevelConfig(nil), h.Levels...)
		h.Levels[len(h.Levels)-1].SizeBytes = spec.LLCBytes
		cfg.Hierarchy = &h
	} else {
		cfg.LLCBytes = spec.LLCBytes
	}
	cfg.Mem.Banks = spec.Banks
	if spec.BatteryCm3 > 0 {
		if j, ok := BatteryBudgetJoules(spec.BatteryCm3, tech); ok {
			cfg.BatteryJoules = j
		}
	}
	return cfg
}

// measureMachine runs one machine's full local lifecycle: workload, power
// cut, drain, crash, oracle-verified recovery — and reduces it to the
// (drain time, drain energy, recovery time, verdict, image digest) tuple
// the fleet event loop schedules from.
func measureMachine(fc FleetConfig, spec cluster.MachineSpec, sessions int) (m FleetMachine) {
	m = FleetMachine{Spec: spec, Sessions: sessions}
	defer func() {
		if p := recover(); p != nil {
			m.Outcome = OutcomeInternalError
			m.Detail = fmt.Sprintf("panic: %v", p)
			m.Run.Outcome = m.Outcome.String()
		}
	}()

	cfg := machineConfig(fc.Base, spec, fc.BatteryTech)
	ws := NewWorkloadSystem(cfg, spec.Scheme, DomainEPD)

	ops := fc.BaseOps + sessions*fc.OpsPerSession
	workingSet := fc.WorkingSet
	if workingSet == 0 {
		workingSet = 4 << 10
	}
	w, err := fleetWorkload(spec.Workload, WorkloadConfig{
		Ops: ops, WorkingSet: workingSet, Seed: spec.Seed, PersistPercent: 10,
	})
	if err != nil {
		m.Outcome = OutcomeInternalError
		m.Detail = err.Error()
		m.Run.Outcome = m.Outcome.String()
		return m
	}
	if err := ws.Run(w); err != nil {
		m.Outcome = OutcomeInternalError
		m.Detail = fmt.Sprintf("workload: %v", err)
		m.Run.Outcome = m.Outcome.String()
		return m
	}

	golden := ws.Machine.Golden()
	blocks := ws.Machine.DirtyBlocks()
	m.Blocks = len(blocks)
	res, err := ws.drainer.Drain(blocks)
	if err != nil {
		m.Outcome = OutcomeInternalError
		m.Detail = fmt.Sprintf("drain: %v", err)
		m.Run.Outcome = m.Outcome.String()
		return m
	}
	m.Run.DrainPs = int64(res.DrainTime)
	m.Run.DrainEnergyJ = cfg.EnergyOf(res).Total()

	// Power loss: volatile state gone, then the recovery oracle replays
	// the scheme's recovery path against the golden image and attributes
	// its simulated duration.
	ws.Machine.Crash()
	if ws.Core.Sec != nil {
		ws.Core.Sec.Crash()
	}
	var recoverTime sim.Time
	m.Outcome, m.Detail, _, recoverTime = classifyOutcome(ws.Core, res.Persist, golden, blocks, false)
	m.Run.RecoverPs = int64(recoverTime)
	m.Run.Outcome = m.Outcome.String()
	m.ImageHash = nvmImageHash(ws)
	return m
}

// nvmImageHash digests the machine's post-drain NVM image: FNV-1a over
// (address, block bytes) in ascending address order. Store iteration is
// unordered, so the addresses are sorted first — the digest is a pure
// function of the image and therefore byte-identical at any worker count.
func nvmImageHash(ws *WorkloadSystem) uint64 {
	store := ws.Core.NVM.Store()
	addrs := make([]uint64, 0, store.Populated())
	store.Each(func(a uint64, _ Block) { addrs = append(addrs, a) })
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	h := fnv.New64a()
	var buf [8]byte
	for _, a := range addrs {
		binary.LittleEndian.PutUint64(buf[:], a)
		h.Write(buf[:])
		b := store.ReadBlock(a)
		h.Write(b[:])
	}
	return h.Sum64()
}

// RunFleet executes the fleet simulation end to end:
//
//  1. Route the session load over the fleet (dark racks fail over or
//     reject).
//  2. Measure every machine's episode independently on the sweep worker
//     pool — per-machine derived seeds, no shared state, so the measured
//     tuples are byte-identical at any opts.Parallel.
//  3. Play the outage schedule through the deterministic shared-clock
//     event loop: rack power budgets serialise competing drains, recovery
//     slots bound the storm.
//  4. Aggregate fleet metrics (p99 drain/recovery, storm spans, rack
//     energy drawdown) into Base.Metrics and Base.Timeseries.
//
// The returned error covers harness failures only; oracle violations are
// reported via FleetReport.Failures, SLO violations via FleetSLORules over
// the recorded series.
func RunFleet(ctx context.Context, fc FleetConfig, opts SweepOptions) (*FleetReport, error) {
	f := fc.Fleet
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if err := fc.Schedule.Validate(f.Racks); err != nil {
		return nil, err
	}
	if fc.BatteryTech == "" {
		fc.BatteryTech = "supercap"
	}
	if _, ok := energy.TechByName(fc.BatteryTech); !ok {
		return nil, fmt.Errorf("horus: unknown battery technology %q", fc.BatteryTech)
	}

	horizon := fc.HorizonPs
	if horizon <= 0 {
		horizon = 1
	}
	routes := cluster.RouteSessions(f, fc.Schedule, fc.Sessions, horizon, fc.Router, fc.Failover, fc.Base.Seed)

	episodes := make([]sweep.Episode, len(f.Machines))
	for i := range f.Machines {
		spec := f.Machines[i]
		sessions := routes.Sessions[i]
		episodes[i] = sweep.Episode{
			Label: fmt.Sprintf("%s/%s", spec.Name, spec.Scheme),
			Run: func(ctx context.Context, env sweep.Env) (any, error) {
				return measureMachine(fc, spec, sessions), nil
			},
		}
	}
	runner := sweep.New(sweep.Options{
		Parallel: opts.Parallel, Timeout: opts.Timeout,
		BaseSeed: fc.Base.Seed, Progress: opts.Progress,
	})
	results, err := runner.Run(ctx, episodes)
	if err != nil {
		return nil, err
	}

	rep := &FleetReport{Fleet: f, Routes: routes, Machines: make([]FleetMachine, len(results))}
	for i, res := range results {
		rep.Machines[i] = res.Value.(FleetMachine)
	}

	lres, err := cluster.Run(f, fc.Loop, rep.Runs(), fc.Schedule, fc.Base.Timeseries)
	if err != nil {
		return nil, err
	}
	rep.Result = lres
	rep.Metrics = cluster.Summarize(f, lres)
	cluster.Publish(fc.Base.Metrics, fc.Base.Timeseries, f, rep.Runs(), lres, rep.Metrics)

	if ts := fc.Base.Timeseries; ts != nil {
		// One sample per machine, indexed by ID: zero for contract-
		// satisfying verdicts, one for silent corruption or harness error.
		// The fleet-no-silent SLO (FleetSLORules) asserts every sample is
		// zero; RequireData makes an empty fleet fail rather than pass.
		w := ts.WindowPs()
		for id, m := range rep.Machines {
			v := 0.0
			if !m.Outcome.OK() {
				v = 1
			}
			ts.Counter("horus_fleet_ts_silent_total",
				"scheme", m.Spec.Scheme.String()).Record(int64(id)*w, v)
		}
	}
	return rep, nil
}

// FleetSLORules builds the fleet objectives over the recorded series:
//
//   - fleet-no-silent: no machine's oracle verdict may be silent
//     corruption (or a harness error) — the recoverability contract at
//     fleet scope.
//   - fleet-storm-budget: the longest recovery storm must fit
//     stormBudgetPs (0 disables the rule).
//   - fleet-drain-p99: the fleet's p99 drain latency (queueing included)
//     must fit drainP99BudgetPs (0 disables the rule).
//
// Evaluate with EvaluateSLO over Base.Timeseries.Snapshot(); the
// horus-fleet CLI exits 2 on violation.
func FleetSLORules(stormBudgetPs, drainP99BudgetPs int64) []SLORule {
	rules := []SLORule{{
		Name: "fleet-no-silent", Series: "horus_fleet_ts_silent_total",
		Op: SLOAlwaysZero, RequireData: true,
		Description: "no machine may recover to silently wrong data after an outage (fleet oracle)",
	}}
	if stormBudgetPs > 0 {
		rules = append(rules, SLORule{
			Name: "fleet-storm-budget", Series: "horus_fleet_ts_storm_max_ps",
			Op: SLOFinalAtMost, Threshold: float64(stormBudgetPs), RequireData: true,
			Description: "the recovery storm (power back to last machine serving) must fit its budget",
		})
	}
	if drainP99BudgetPs > 0 {
		rules = append(rules, SLORule{
			Name: "fleet-drain-p99", Series: "horus_fleet_ts_drain_p99_ps",
			Op: SLOFinalAtMost, Threshold: float64(drainP99BudgetPs), RequireData: true,
			Description: "fleet p99 drain latency (rack power-budget queueing included) must fit its budget",
		})
	}
	return rules
}
