package horus

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestTortureMatrixNoSilentCorruption is the acceptance gate of the crash
// matrix: every enumerated drain step × every fault flavor × all four secure
// schemes must end in exact restoration, authentic partial state, or a typed
// detection error — never silent corruption, never an internal error. Short
// mode samples the crash points; the full run enumerates every one.
func TestTortureMatrixNoSilentCorruption(t *testing.T) {
	tc := TortureConfig{Config: TestConfig()}
	if testing.Short() {
		tc.Stride, tc.MaxPoints = 7, 10
	}
	tc.Config.Metrics = NewMetricsRegistry()
	rep, err := RunTortureMatrix(context.Background(), tc, SweepOptions{Parallel: 4})
	if err != nil {
		t.Fatalf("matrix: %v", err)
	}
	if len(rep.Cells) == 0 {
		t.Fatal("matrix produced no cells")
	}
	if len(rep.Steps) != 4 {
		t.Fatalf("expected 4 schemes, got steps %v", rep.Steps)
	}
	for s, n := range rep.Steps {
		if n == 0 {
			t.Errorf("%v episode counted zero drain steps", s)
		}
	}
	schemes := map[Scheme]bool{}
	flavors := map[CrashFlavor]bool{}
	outcomes := map[CrashOutcome]int{}
	for _, c := range rep.Cells {
		schemes[c.Scheme] = true
		flavors[c.Flavor] = true
		outcomes[c.Outcome]++
		if c.Outcome == OutcomeRestored && c.Detail != "" {
			t.Errorf("%s: restored cell carries detail %q", c.Label(), c.Detail)
		}
	}
	if len(flavors) != len(AllCrashFlavors()) {
		t.Errorf("matrix covered flavors %v, want all %v", flavors, AllCrashFlavors())
	}
	for _, f := range rep.Failures() {
		t.Errorf("contract violation at %s (stage %q, cat %q): %s — %s",
			f.Label(), f.Fired.Stage, f.Fired.Cat, f.Outcome, f.Detail)
	}
	// The matrix must actually exercise both sides of the contract: some
	// crashes are detected, and some leave a fully or partially authentic
	// image. A matrix that only ever detects (or only ever restores) means
	// the oracle degenerated.
	if outcomes[OutcomeDetected] == 0 {
		t.Error("no cell was detected — fault injection is not reaching the persistence path")
	}
	if outcomes[OutcomeRestored]+outcomes[OutcomePartial] == 0 {
		t.Error("no cell restored any state — recovery never succeeded under faults")
	}
	// Outcome counters land on the caller's registry, labelled per cell.
	var prom strings.Builder
	if err := tc.Config.Metrics.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "horus_torture_cells_total") {
		t.Error("horus_torture_cells_total missing from the metrics registry")
	}
	// The report tables must cover every cell.
	if got := len(rep.CellTable().Rows); got != len(rep.Cells) {
		t.Errorf("cell table has %d rows, want %d", got, len(rep.Cells))
	}
	if got := len(rep.Table().Rows); got != len(schemes)*len(flavors) {
		t.Errorf("summary table has %d rows, want %d", got, len(schemes)*len(flavors))
	}
}

// TestTortureMatrixDeterministicUnderParallel runs the same sampled matrix
// with one worker and with four and requires bit-identical cell verdicts:
// scheduling must not perturb seeds, fault parameters, or classification.
func TestTortureMatrixDeterministicUnderParallel(t *testing.T) {
	tc := TortureConfig{Config: TestConfig(), Stride: 5, MaxPoints: 8}
	run := func(parallel int) []TortureCell {
		rep, err := RunTortureMatrix(context.Background(), tc, SweepOptions{Parallel: parallel})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return rep.Cells
	}
	serial := run(1)
	concurrent := run(4)
	if !reflect.DeepEqual(serial, concurrent) {
		for i := range serial {
			if i < len(concurrent) && !reflect.DeepEqual(serial[i], concurrent[i]) {
				t.Fatalf("cell %d differs:\n  1 worker:  %+v\n  4 workers: %+v", i, serial[i], concurrent[i])
			}
		}
		t.Fatalf("cell count differs: %d vs %d", len(serial), len(concurrent))
	}
}

// TestTortureMatrixRejectsNonSecure: the contract is about detection, which
// NonSecure cannot provide by design.
func TestTortureMatrixRejectsNonSecure(t *testing.T) {
	_, err := RunTortureMatrix(context.Background(), TortureConfig{
		Config:  TestConfig(),
		Schemes: []Scheme{NonSecure},
	}, SweepOptions{})
	if err == nil {
		t.Fatal("NonSecure was accepted into the torture matrix")
	}
}

// TestTortureSingleSchemeSubset exercises the flag-shaped narrowing the CLI
// uses: one scheme, one flavor, strided points.
func TestTortureSingleSchemeSubset(t *testing.T) {
	rep, err := RunTortureMatrix(context.Background(), TortureConfig{
		Config:  TestConfig(),
		Schemes: []Scheme{HorusDLM},
		Flavors: []CrashFlavor{CrashTornWrite},
		Stride:  3,
	}, SweepOptions{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if c.Scheme != HorusDLM || c.Flavor != CrashTornWrite {
			t.Fatalf("unexpected cell %s", c.Label())
		}
	}
	if !rep.Ok() {
		t.Fatalf("subset matrix failed: %v", rep.Failures())
	}
}
