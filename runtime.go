package horus

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/recovery"
	"repro/internal/runsim"
	"repro/internal/workload"
)

// Block is a 64-byte memory block (re-exported).
type Block = mem.Block

// PersistDomain selects the persistence boundary of a run-time machine.
type PersistDomain = runsim.PersistDomain

// Persistence domains (§II-A): ADR backs only the memory-controller write
// queue, EPD (eADR) backs the whole cache hierarchy.
const (
	DomainADR    = runsim.DomainADR
	DomainEPD    = runsim.DomainEPD
	DomainADRWPQ = runsim.DomainADRWPQ
	DomainBBB    = runsim.DomainBBB
)

// Workload is a deterministic, replayable memory-operation stream.
type Workload = workload.Stream

// WorkloadConfig bounds a workload generator.
type WorkloadConfig = workload.Config

// RunStats aggregates a run-time machine's event counts and elapsed time.
type RunStats = runsim.Stats

// Workload generators: the application classes the paper's introduction
// motivates EPD with (§I), re-exported from the workload package.
var (
	// SequentialWorkload is a scan-shaped read-modify-write sweep
	// (analytical/in-memory analytics).
	SequentialWorkload = workload.Sequential
	// UniformWorkload is uniformly random 50/50 read/write traffic.
	UniformWorkload = workload.Uniform
	// ZipfWorkload is zipf-skewed read-mostly traffic (key-value store).
	ZipfWorkload = workload.Zipf
	// KVStoreWorkload is put/get traffic over multi-block values with
	// per-object persists.
	KVStoreWorkload = workload.KVStore
	// TxLogWorkload is a write-ahead-logging transactional shape.
	TxLogWorkload = workload.TxLog
	// GraphWorkload is pointer-chasing with rank updates.
	GraphWorkload = workload.Graph
)

// WorkloadSystem couples a run-time machine (core + cache hierarchy over
// the secure NVM) with the EPD drain and recovery machinery, closing the
// full lifecycle: run a workload, crash, drain, recover, resume.
type WorkloadSystem struct {
	Config  Config
	Scheme  Scheme
	Domain  PersistDomain
	Core    *core.System
	Machine *runsim.Machine

	drainer *core.Drainer
}

// NewWorkloadSystem builds a run-time machine for the given drain design
// and persistence domain. The cache hierarchy is the config's hierarchy;
// secure schemes route all memory traffic through the secure controller.
func NewWorkloadSystem(cfg Config, scheme Scheme, domain PersistDomain) *WorkloadSystem {
	cs, hcfg := newCoreSystem(cfg, scheme, scheme.Secure(),
		"scheme", scheme.String(), "domain", domain.String())
	machine := runsim.New(runsim.Config{
		Hierarchy: hcfg,
		Domain:    domain,
		ClockHz:   cfg.Sec.ClockHz,
	}, cs.Sec, cs.NVM)
	machine.SetMetrics(cfg.Metrics, "domain", domain.String())
	machine.SetTimeline(cfg.Timeline)
	machine.SetTimeseries(cfg.Timeseries, "domain", domain.String())
	return &WorkloadSystem{
		Config:  cfg,
		Scheme:  scheme,
		Domain:  domain,
		Core:    cs,
		Machine: machine,
		drainer: core.NewDrainer(scheme, cs, 0),
	}
}

// Run executes a workload stream on the machine.
func (ws *WorkloadSystem) Run(s *Workload) error { return ws.Machine.Run(s) }

// Stats returns the machine's run-time statistics.
func (ws *WorkloadSystem) Stats() RunStats { return ws.Machine.Stats() }

// CrashAndDrain simulates an outage at the current instant: the dirty
// hierarchy state is drained under the configured scheme, then the
// volatile state is lost. It returns the drain result and the pre-crash
// golden contents (for post-recovery verification).
func (ws *WorkloadSystem) CrashAndDrain() (Result, map[uint64]mem.Block, error) {
	golden := ws.Machine.Golden()
	blocks := ws.Machine.DirtyBlocks()
	res, err := ws.drainer.Drain(blocks)
	if err != nil {
		return Result{}, nil, err
	}
	ws.Core.Metrics.RecordSpan("crash", 0, 0)
	ws.Machine.Crash()
	if ws.Core.Sec != nil {
		ws.Core.Sec.Crash()
	}
	return res, golden, nil
}

// Recover restores the machine after a crash: for Horus schemes the
// metadata vault and the CHV are verified and the recovered lines are
// written back into the machine's hierarchy as dirty state; for baselines
// the metadata vault alone suffices (data drained in place).
func (ws *WorkloadSystem) Recover(ps PersistentState) (RecoveryReport, error) {
	span := ws.Core.Metrics.StartSpan("recover", 0)
	report, err := ws.recoverFrom(ps)
	span.EndAt(int64(report.Time()))
	return report, err
}

func (ws *WorkloadSystem) recoverFrom(ps PersistentState) (RecoveryReport, error) {
	switch {
	case ps.Scheme.UsesCHV():
		report := RecoveryReport{}
		// Power restore: timing starts on a fresh clock (the drain's bank
		// reservations belong to the previous power session).
		ws.Core.NVM.ResetStats()
		ws.Core.Sec.ResetStats()
		if ps.Vault.Count > 0 {
			vres, err := recovery.RestoreMetadataVault(ws.Core, ps.Vault)
			if err != nil {
				return RecoveryReport{}, err
			}
			report.Baseline = &vres
		}
		res, err := recovery.RecoverHorus(ws.Core, ps)
		if err != nil {
			return RecoveryReport{}, err
		}
		for _, b := range res.Blocks {
			if err := ws.Machine.Write(b.Addr, b.Data); err != nil {
				return RecoveryReport{}, fmt.Errorf("horus: refill after recovery: %w", err)
			}
		}
		report.Horus = &res
		return report, nil
	case ps.Scheme.Secure():
		res, err := recovery.RecoverBaseline(ws.Core, ps)
		if err != nil {
			return RecoveryReport{}, err
		}
		return RecoveryReport{Baseline: &res}, nil
	default:
		return RecoveryReport{}, nil
	}
}
