package horus

import (
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
)

// cliBinaries builds the CLIs under test once per test binary and returns
// the directory holding them. The Go build cache makes repeat builds cheap;
// the build runs in the package directory, so the module context is the
// repo's own.
var cliBinaries = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "horus-cli-")
	if err != nil {
		return "", err
	}
	for _, name := range []string{"horus-drain", "horus-torture", "horus-litmus", "horus-fleet"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, name), "./cmd/"+name)
		if out, err := cmd.CombinedOutput(); err != nil {
			return "", &buildError{name: name, out: string(out), err: err}
		}
	}
	return dir, nil
})

type buildError struct {
	name string
	out  string
	err  error
}

func (e *buildError) Error() string {
	return "building " + e.name + ": " + e.err.Error() + "\n" + e.out
}

// TestCLIExitCodeContract pins the cross-CLI exit-code contract the CI
// jobs and the ops runbooks depend on:
//
//	0 — run completed and every contract held
//	1 — oracle violation or fatal error (bad flags, harness failure)
//	2 — SLO violation (the run itself was sound, an objective was missed)
//
// go run must not be used here: it remaps the child's exit status, so the
// contract is only observable on the built binaries.
func TestCLIExitCodeContract(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI binaries")
	}
	bin, err := cliBinaries()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cli  string
		args []string
		want int
	}{
		{"drain clean run", "horus-drain",
			[]string{"-scale", "test", "-scheme", "horus-slm"}, 0},
		{"drain SLO violation", "horus-drain",
			[]string{"-scale", "test", "-scheme", "horus-slm", "-battery-j", "1e-9"}, 2},
		{"drain bad scheme", "horus-drain",
			[]string{"-scale", "test", "-scheme", "bogus"}, 1},
		{"torture non-secure scheme", "horus-torture",
			[]string{"-scale", "test", "-scheme", "non-secure"}, 1},
		{"litmus bad scheme", "horus-litmus",
			[]string{"-scheme", "bogus"}, 1},
		{"fleet clean run", "horus-fleet",
			[]string{"-machines", "4", "-racks", "2", "-sessions", "16",
				"-outages", "1ms:2ms:all"}, 0},
		{"fleet storm SLO violation", "horus-fleet",
			[]string{"-machines", "4", "-racks", "2", "-sessions", "16",
				"-outages", "1ms:2ms:all", "-storm-slo", "1ns"}, 2},
		{"fleet bad schedule", "horus-fleet",
			[]string{"-outages", "bogus"}, 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command(filepath.Join(bin, tc.cli), tc.args...)
			out, err := cmd.CombinedOutput()
			got := 0
			if err != nil {
				ee, ok := err.(*exec.ExitError)
				if !ok {
					t.Fatalf("%s %v: %v", tc.cli, tc.args, err)
				}
				got = ee.ExitCode()
			}
			if got != tc.want {
				t.Errorf("%s %v exited %d, want %d\noutput:\n%s",
					tc.cli, tc.args, got, tc.want, out)
			}
		})
	}
}
