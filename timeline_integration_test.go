package horus

import (
	"context"
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"repro/internal/report"
	"repro/internal/sim"
)

// The headline contract of the timeline subsystem: for every scheme, the
// critical-path attribution tiles the measured drain time exactly — the
// per-resource shares (including idle) sum to Result.DrainTime, picosecond
// for picosecond.
func TestAttributionTotalsEqualDrainTime(t *testing.T) {
	for _, scheme := range AllSchemes() {
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := TestConfig()
			cfg.Timeline = NewTimelineRecorder(0)
			res, err := RunDrain(cfg, scheme)
			if err != nil {
				t.Fatal(err)
			}
			rec := cfg.Timeline.Recording()
			if rec.Episode != scheme.String() {
				t.Errorf("episode %q, want %q", rec.Episode, scheme)
			}
			if rec.Total != res.DrainTime {
				t.Errorf("recording total %v != drain time %v", rec.Total, res.DrainTime)
			}
			if rec.Dropped != 0 {
				t.Fatalf("recorder dropped %d events at test scale", rec.Dropped)
			}
			if len(rec.Events) == 0 {
				t.Fatal("no events recorded")
			}

			att := AnalyzeTimeline(rec)
			if got := att.AttributedTotal(); got != res.DrainTime {
				t.Errorf("attributed total %v != drain time %v", got, res.DrainTime)
			}
			var cursor sim.Time
			for i, s := range att.Steps {
				if s.From != cursor {
					t.Fatalf("step %d starts at %v, want %v (steps must tile the episode)", i, s.From, cursor)
				}
				cursor = s.To
			}
			if cursor != res.DrainTime {
				t.Fatalf("steps end at %v, want %v", cursor, res.DrainTime)
			}

			// Per-track reservations never overlap.
			byTrack := map[string][]TimelineEvent{}
			for _, e := range rec.Events {
				byTrack[e.Track] = append(byTrack[e.Track], e)
			}
			for track, evs := range byTrack {
				sort.Slice(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
				for i := 1; i < len(evs); i++ {
					if evs[i].Start < evs[i-1].End {
						t.Fatalf("track %s: [%v,%v) overlaps [%v,%v)", track,
							evs[i].Start, evs[i].End, evs[i-1].Start, evs[i-1].End)
					}
				}
			}
		})
	}
}

// The drainer brackets the episode: warm-up and fill traffic recorded
// before Drain must not leak into the drain recording.
func TestTimelineExcludesWarmupAndFill(t *testing.T) {
	cfg := TestConfig()
	cfg.Timeline = NewTimelineRecorder(0)
	sys := NewSystem(cfg, HorusSLM)
	if err := sys.Warmup(); err != nil {
		t.Fatal(err)
	}
	warmupEvents := cfg.Timeline.Len()
	if warmupEvents == 0 {
		t.Fatal("warm-up recorded no events; the tracer is not attached")
	}
	sys.Fill()
	res, err := sys.Drain()
	if err != nil {
		t.Fatal(err)
	}
	rec := cfg.Timeline.Recording()
	for _, e := range rec.Events {
		if e.Done > res.DrainTime {
			t.Fatalf("event completes at %v, after the drain window %v", e.Done, res.DrainTime)
		}
	}
}

// Attribution must be byte-identical regardless of the sweep's parallelism
// (the engine's determinism contract extends to timelines).
func TestTimelineAttributionParallelDeterminism(t *testing.T) {
	render := func(parallel int) string {
		cfg := TestConfig()
		cfg.Timeline = NewTimelineRecorder(0)
		set, err := RunDrainSetCtx(context.Background(), cfg, AllSchemes(),
			SweepOptions{Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		var atts []TimelineAttribution
		for _, s := range set.Schemes {
			rec := set.Timelines[s]
			if rec == nil {
				t.Fatalf("no timeline for %v", s)
			}
			atts = append(atts, AnalyzeTimeline(rec))
		}
		return report.AttributionTable(atts...).String()
	}
	seq, par := render(1), render(8)
	if seq != par {
		t.Errorf("attribution differs between -parallel 1 and 8:\n--- parallel=1\n%s\n--- parallel=8\n%s", seq, par)
	}
}

// Untraced runs must not be affected: the same config with and without a
// recorder produces the identical drain result.
func TestTimelineDoesNotPerturbTiming(t *testing.T) {
	cfg := TestConfig()
	plain, err := RunDrain(cfg, HorusDLM)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Timeline = NewTimelineRecorder(0)
	traced, err := RunDrain(cfg, HorusDLM)
	if err != nil {
		t.Fatal(err)
	}
	if plain.DrainTime != traced.DrainTime || plain.MemWrites.Total() != traced.MemWrites.Total() {
		t.Errorf("tracing changed the result: %v/%d vs %v/%d",
			plain.DrainTime, plain.MemWrites.Total(), traced.DrainTime, traced.MemWrites.Total())
	}
}

func TestWriteChromeTraceEndToEnd(t *testing.T) {
	cfg := TestConfig()
	cfg.Timeline = NewTimelineRecorder(0)
	if _, err := RunDrain(cfg, HorusSLM); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteChromeTrace(&b, cfg.Timeline.Recording()); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &parsed); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
}

// The per-episode recorders in the sweep engine publish critical-path
// counters into the merged metrics registry.
func TestSweepPublishesCriticalPathCounters(t *testing.T) {
	cfg := TestConfig()
	cfg.Metrics = NewMetricsRegistry()
	cfg.Timeline = NewTimelineRecorder(0)
	if _, err := RunDrainSetCtx(context.Background(), cfg, []Scheme{HorusSLM}, SweepOptions{}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := cfg.Metrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `horus_critical_path_ps{phase="service",resource="bank",scheme="Horus-SLM"}`) {
		t.Errorf("merged metrics lack critical-path counters:\n%s", b.String())
	}
}
