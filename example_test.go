package horus_test

import (
	"fmt"

	horus "repro"
)

// The basic drain cycle: build a system, fill the hierarchy with the
// worst case, and drain it on a simulated outage.
func ExampleRunDrain() {
	cfg := horus.TestConfig()
	res, err := horus.RunDrain(cfg, horus.HorusSLM)
	if err != nil {
		panic(err)
	}
	fmt.Println("blocks drained:", res.BlocksDrained)
	fmt.Println("reads during drain:", res.MemReads.Total())
	fmt.Println("one MAC per drained block:",
		res.MACCalcs.Get("chv-data-mac") == int64(res.BlocksDrained))
	// Output:
	// blocks drained: 5152
	// reads during drain: 0
	// one MAC per drained block: true
}

// The full crash/recover loop with verification.
func ExampleSystem_Recover() {
	sys := horus.NewSystem(horus.TestConfig(), horus.HorusDLM)
	sys.Fill()
	res, err := sys.Drain()
	if err != nil {
		panic(err)
	}
	sys.Crash() // power lost: volatile state gone
	rec, err := sys.Recover(res.Persist)
	if err != nil {
		panic(err)
	}
	fmt.Println("blocks recovered:", len(rec.Horus.Blocks))
	fmt.Println("hierarchy restored:", sys.Hierarchy.DirtyCount() == res.BlocksDrained)
	// Output:
	// blocks recovered: 5152
	// hierarchy restored: true
}

// Tampering with the CHV while power is out is detected at recovery.
func ExampleSystem_Recover_attack() {
	sys := horus.NewSystem(horus.TestConfig(), horus.HorusSLM)
	sys.Fill()
	res, err := sys.Drain()
	if err != nil {
		panic(err)
	}
	sys.Crash()
	sys.Core.NVM.Store().CorruptByte(sys.Core.Layout.CHVDataAddr(3), 0, 0x01)
	_, err = sys.Recover(res.Persist)
	fmt.Println("recovery refused:", err != nil)
	// Output:
	// recovery refused: true
}

// Running an application workload on the EPD machine: persists are free.
func ExampleNewWorkloadSystem() {
	ws := horus.NewWorkloadSystem(horus.TestConfig(), horus.HorusSLM, horus.DomainEPD)
	wl := horus.KVStoreWorkload(horus.WorkloadConfig{
		Ops: 5000, WorkingSet: 128 << 10, Seed: 1,
	}, 4)
	if err := ws.Run(wl); err != nil {
		panic(err)
	}
	st := ws.Stats()
	fmt.Println("persist flushes under EPD:", st.PersistFlush)
	fmt.Println("persists elided:", st.PersistElided > 0)
	// Output:
	// persist flushes under EPD: 0
	// persists elided: true
}

// Comparing two schemes on the same configuration.
func ExampleRunDrainSet() {
	ds, err := horus.RunDrainSet(horus.TestConfig(), []horus.Scheme{horus.NonSecure, horus.BaseLU, horus.HorusSLM})
	if err != nil {
		panic(err)
	}
	ns := ds.Results[horus.NonSecure].TotalMemAccesses()
	lu := ds.Results[horus.BaseLU].TotalMemAccesses()
	slm := ds.Results[horus.HorusSLM].TotalMemAccesses()
	fmt.Println("baseline blow-up >= 5x:", lu >= 5*ns)
	fmt.Println("Horus within 1.5x of non-secure:", slm*2 <= 3*ns)
	// Output:
	// baseline blow-up >= 5x: true
	// Horus within 1.5x of non-secure: true
}
