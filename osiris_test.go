package horus

import "testing"

// End-to-end Osiris path through the facade: run a workload with stop-loss
// counters, crash WITHOUT any vault flush, recover by scan+rebuild, and
// verify all in-place data.
func TestOsirisLifecycle(t *testing.T) {
	cfg := TestConfig()
	cfg.Sec.OsirisStopLoss = 4
	ws := NewWorkloadSystem(cfg, BaseLU, DomainADR) // ADR: persists flush data in place
	wl := KVStoreWorkload(WorkloadConfig{Ops: 3000, WorkingSet: 128 << 10, Seed: 13}, 4)
	if err := ws.Run(wl); err != nil {
		t.Fatal(err)
	}
	// Persisted (in-place) golden values: everything the machine flushed.
	// Force full durability with explicit persists of remaining dirty
	// lines via the machine's dirty snapshot.
	dirty := ws.Machine.DirtyBlocks()
	for _, b := range dirty {
		if err := ws.Machine.Persist(b.Addr); err != nil {
			t.Fatal(err)
		}
	}
	golden := map[uint64]Block{}
	for _, b := range dirty {
		golden[b.Addr] = b.Data
	}

	// Crash with NO drain and NO vault: volatile metadata is simply lost.
	ws.Machine.Crash()
	ws.Core.Sec.Crash()

	res, err := ws.RecoverWithOsiris()
	if err != nil {
		t.Fatalf("osiris recovery: %v", err)
	}
	if res.DataBlocksScanned == 0 {
		t.Fatal("nothing scanned")
	}
	for addr, want := range golden {
		got, _, err := ws.Core.Sec.ReadBlock(0, addr)
		if err != nil {
			t.Fatalf("post-osiris read %#x: %v", addr, err)
		}
		if got != want {
			t.Fatalf("post-osiris mismatch at %#x", addr)
		}
	}
}

func TestOsirisRequiresStopLoss(t *testing.T) {
	sys := NewSystem(TestConfig(), BaseLU)
	if _, err := sys.RecoverWithOsiris(); err == nil {
		t.Error("Osiris recovery accepted without stop-loss config")
	}
	ws := NewWorkloadSystem(TestConfig(), BaseLU, DomainADR)
	if _, err := ws.RecoverWithOsiris(); err == nil {
		t.Error("workload-system Osiris recovery accepted without stop-loss config")
	}
}
