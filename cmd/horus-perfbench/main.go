// Command horus-perfbench runs the statistical benchmark harness over the
// simulator's hot paths: each registered episode (all-scheme drains, a sweep
// smoke, a torture smoke, substrate microbenchmarks) runs N times (default
// 7) and the median/p10/p90 wall time plus per-episode allocation counts are
// written as BENCH_horus.json. Against a committed baseline the run becomes
// a regression gate: a median more than -fail (30%) slower — or any
// allocation-count growth past -warn, allocations being deterministic —
// exits 1; growth past -warn (10%) prints a warning.
//
// Examples:
//
//	horus-perfbench                                  # run all, write BENCH_horus.json
//	horus-perfbench -filter '^drain/' -reps 11       # drains only, more reps
//	horus-perfbench -baseline BENCH_horus.json       # regression check vs baseline
//	horus-perfbench -list                            # names only, no run
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"time"

	horus "repro"
	"repro/internal/cliutil"
	"repro/internal/perfbench"
)

func main() {
	var (
		reps     = flag.Int("reps", perfbench.DefaultReps, "measured repetitions per benchmark (one extra warmup always runs)")
		filter   = flag.String("filter", "", "regexp restricting which benchmarks run")
		out      = flag.String("out", "BENCH_horus.json", "write the report JSON here (empty = don't write)")
		baseline = flag.String("baseline", "", "compare against this report; regressions past -fail exit 1")
		warn     = flag.Float64("warn", 0.10, "warn when the median regresses by more than this fraction")
		failAt   = flag.Float64("fail", 0.30, "fail when the median regresses by more than this fraction")
		list     = flag.Bool("list", false, "list benchmark names and exit")
	)
	tfl := cliutil.AddTelemetryFlags(true)
	shards := cliutil.AddShardsFlag()
	flag.Parse()

	var suite perfbench.Suite
	horus.RegisterPerfBenchmarks(&suite, func(c *horus.Config) { c.Shards = *shards })

	if *list {
		for _, name := range suite.Names() {
			fmt.Println(name)
		}
		return
	}

	opts := perfbench.Options{Reps: *reps, Log: os.Stderr}
	if *filter != "" {
		re, err := regexp.Compile(*filter)
		if err != nil {
			fatal(fmt.Errorf("bad -filter: %w", err))
		}
		opts.Filter = re
	}
	if err := tfl.StartServer(nil); err != nil {
		fatal(err)
	}
	if progress := tfl.ProgressFunc(); progress != nil {
		start := time.Now()
		opts.OnProgress = func(done, total int, name string) {
			progress(horus.SweepProgress{
				Done: done, Total: total, Index: done - 1, Label: name,
				Elapsed: time.Since(start),
			})
		}
	}

	report, err := suite.Run(opts)
	if err != nil {
		fatal(err)
	}
	tfl.Shutdown()
	if *out != "" {
		if err := report.WriteJSON(*out); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks, %d reps)\n", *out, len(report.Results), report.Reps)
	}

	if *baseline == "" {
		return
	}
	base, err := perfbench.ReadJSON(*baseline)
	if err != nil {
		fatal(err)
	}
	deltas := perfbench.Compare(base, report, *warn, *failAt)
	perfbench.FormatDeltas(os.Stdout, deltas)
	if perfbench.AnyFail(deltas) {
		fatal(fmt.Errorf("perfbench: regression past the fail threshold (%.0f%%)", *failAt*100))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "horus-perfbench:", err)
	os.Exit(1)
}
