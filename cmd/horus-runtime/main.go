// Command horus-runtime runs application workloads on the simulated EPD
// machine: pick a workload class, a persistence domain (ADR vs EPD) and a
// drain design, run it, optionally crash mid-flight and recover, and print
// the run-time statistics that motivate the paper (§I, §II-A).
//
// Examples:
//
//	horus-runtime -workload kv -domain adr
//	horus-runtime -workload txlog -domain epd -crash -scheme horus-dlm
//	horus-runtime -workload zipf -compare-domains
package main

import (
	"flag"
	"fmt"
	"os"

	horus "repro"
	"repro/internal/cliutil"
	"repro/internal/report"
)

func main() {
	var (
		wlFlag     = flag.String("workload", "kv", "kv | txlog | zipf | uniform | sequential | graph")
		domainFlag = flag.String("domain", "epd", "adr | wpq | epd")
		schemeFlag = flag.String("scheme", "horus-slm", "drain design used on crash")
		ops        = flag.Int("ops", 20000, "operations to run")
		wsKB       = flag.Int("ws", 256, "working set in KB")
		persist    = flag.Int("persist", 25, "percent of writes followed by a persist")
		seed       = flag.Int64("seed", 1, "workload seed")
		crash      = flag.Bool("crash", false, "crash after the run, drain, and recover")
		compare    = flag.Bool("compare-domains", false, "run on both ADR and EPD and compare")
	)
	mf := cliutil.AddMetricsFlags()
	tf := cliutil.AddTraceFlags()
	pf := cliutil.AddProfileFlags()
	tfl := cliutil.AddTelemetryFlags(false)
	shards := cliutil.AddShardsFlag()
	flag.Parse()
	if err := pf.Start(); err != nil {
		fatal(err)
	}
	defer pf.Stop()

	cfg := horus.TestConfig()
	cfg.Shards = *shards
	cfg.Metrics = tfl.EnsureRegistry(mf.Registry())
	cfg.Timeline = tf.Recorder()
	cfg.Timeseries = tfl.Sampler()
	if err := tfl.StartServer(cfg.Metrics); err != nil {
		fatal(err)
	}
	defer tfl.Shutdown()
	defer func() {
		if err := tfl.WriteTimeseries(); err != nil {
			fatal(err)
		}
	}()
	wl, err := cliutil.MakeWorkload(*wlFlag, horus.WorkloadConfig{
		Ops: *ops, WorkingSet: uint64(*wsKB) << 10, Seed: *seed, PersistPercent: *persist,
	})
	if err != nil {
		fatal(err)
	}
	scheme, err := cliutil.ParseScheme(*schemeFlag)
	if err != nil {
		fatal(err)
	}

	if *compare {
		t := &report.Table{
			Title:  fmt.Sprintf("%s: run-time cost by persistence domain", wl.Name),
			Header: []string{"domain", "time", "persist flushes", "mem misses", "writebacks"},
		}
		var times [3]float64
		for i, d := range []horus.PersistDomain{horus.DomainADR, horus.DomainADRWPQ, horus.DomainEPD} {
			st, err := runOn(cfg, scheme, d, wl)
			if err != nil {
				fatal(err)
			}
			times[i] = st.Time.Seconds()
			t.AddRow(d.String(), st.Time.String(), report.Count(st.PersistFlush),
				report.Count(st.MissesToMem), report.Count(st.Writebacks))
		}
		t.AddNote("EPD speedup over ADR: %.2fx; WPQ recovers %.0f%% of the gap", times[0]/times[2], 100*(times[0]-times[1])/(times[0]-times[2]))
		t.Fprint(os.Stdout)
		writeMetrics(mf, cfg.Metrics)
		return
	}

	domain, err := cliutil.ParseDomain(*domainFlag)
	if err != nil {
		fatal(err)
	}
	ws := horus.NewWorkloadSystem(cfg, scheme, domain)
	if err := ws.Run(wl); err != nil {
		fatal(err)
	}
	st := ws.Stats()
	fmt.Printf("workload:        %s\n", wl)
	fmt.Printf("domain:          %v, scheme: %v\n", domain, scheme)
	fmt.Printf("simulated time:  %v\n", st.Time)
	fmt.Printf("cache hits:      %v\n", st.HitsPerLevel)
	fmt.Printf("memory misses:   %s, writebacks: %s\n", report.Count(st.MissesToMem), report.Count(st.Writebacks))
	fmt.Printf("persists:        %s (%s flushed, %s free)\n",
		report.Count(st.Persists), report.Count(st.PersistFlush), report.Count(st.PersistElided))

	if !*crash {
		// Without a crash the timeline holds the run phase only (no drain
		// episode brackets it); export covers those events as recorded.
		writeTimeline(tf, cfg.Timeline, cfg.Metrics)
		writeMetrics(mf, cfg.Metrics)
		return
	}
	res, golden, err := ws.CrashAndDrain()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\ncrash: drained %s dirty lines in %v (%s writes, %s MACs)\n",
		report.Count(int64(res.BlocksDrained)), res.DrainTime,
		report.Count(res.MemWrites.Total()), report.Count(res.TotalMACs()))
	writeTimeline(tf, cfg.Timeline, cfg.Metrics)
	rec, err := ws.Recover(res.Persist)
	if err != nil {
		fatal(err)
	}
	ok := 0
	for addr, want := range golden {
		if got, err := ws.Machine.Read(addr); err == nil && got == want {
			ok++
		}
	}
	fmt.Printf("recovered in %v; verified %d/%d pre-crash values\n", rec.Time(), ok, len(golden))
	writeMetrics(mf, cfg.Metrics)
}

// writeTimeline prints the attribution and exports the Chrome trace when
// tracing is enabled. With -crash the recording covers the drain episode;
// without it, the run phase.
func writeTimeline(tf *cliutil.TraceFlags, tl *horus.TimelineRecorder, reg *horus.MetricsRegistry) {
	if !tf.Enabled() {
		return
	}
	rec := tl.Recording()
	if tf.Attrib {
		att := horus.AnalyzeTimeline(rec)
		att.Publish(reg)
		fmt.Println()
		report.AttributionTable(att).Fprint(os.Stdout)
		fmt.Println()
		report.Gantt(rec).Fprint(os.Stdout)
	}
	if tf.Path != "" {
		if err := tf.WriteTrace(rec); err != nil {
			fatal(err)
		}
		fmt.Printf("timeline: %d events to %s (%d dropped)\n", len(rec.Events), tf.Path, rec.Dropped)
	}
}

// writeMetrics prints the span tree and exports the snapshot when enabled.
func writeMetrics(mf *cliutil.MetricsFlags, reg *horus.MetricsRegistry) {
	if !mf.Enabled() {
		return
	}
	fmt.Println()
	report.SpanTree(reg).Fprint(os.Stdout)
	if err := mf.Write(reg); err != nil {
		fatal(err)
	}
	fmt.Printf("metrics: %s snapshot to %s\n", mf.Format, mf.Path)
}

func runOn(cfg horus.Config, scheme horus.Scheme, d horus.PersistDomain, wl *horus.Workload) (horus.RunStats, error) {
	ws := horus.NewWorkloadSystem(cfg, scheme, d)
	if err := ws.Run(wl); err != nil {
		return horus.RunStats{}, err
	}
	return ws.Stats(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "horus-runtime:", err)
	os.Exit(1)
}
