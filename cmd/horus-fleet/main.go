// Command horus-fleet runs the fleet-scale cluster simulation: N
// heterogeneous machines (mixed schemes, LLC sizes, bank counts, battery
// volumes) serve a routed session load, scheduled power failures cut
// whole racks at once, simultaneous drains compete for the rack power
// budget, and the recovery storm is measured end to end. Every affected
// machine must end restored, partial or detected — a silent machine
// fails the run (exit 1); a blown storm or drain-p99 budget exits 2.
//
// Examples:
//
//	horus-fleet                                      # 16 machines, 4 racks, reference outages
//	horus-fleet -machines 32 -racks 8 -router least  # bigger fleet, least-loaded routing
//	horus-fleet -outages "1ms:2ms:0; 10ms:1ms:all"   # rack outage then site-wide outage
//	horus-fleet -storm-slo 5ms -drain-slo 2ms        # budget the storm and the p99 drain
//	horus-fleet -gantt -machines-table -csv fleet.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	horus "repro"
	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/core"
)

func main() {
	var (
		machines  = flag.Int("machines", 16, "fleet size")
		racks     = flag.Int("racks", 4, "power domains; a rack-level outage cuts every machine of the rack")
		seed      = flag.Int64("seed", 42, "fleet seed; machine seeds derive deterministically from it")
		scaleFlag = flag.String("scale", "test", "per-machine configuration scale: paper (Table I) | test (scaled down)")
		schemes   = flag.String("schemes", "", "comma-separated drain designs to cycle across machines (default: all four secure ones)")
		workloads = flag.String("workloads", "", "comma-separated workload shapes to cycle across machines: uniform|seq|zipf|kv|txlog|graph (default: uniform,kv,txlog,zipf)")

		sessions = flag.Int("sessions", 64, "client sessions the router spreads over the horizon")
		opsPer   = flag.Int("ops-per-session", 8, "workload operations each routed session adds to its machine")
		baseOps  = flag.Int("base-ops", 64, "workload operations every machine runs regardless of routing")
		horizon  = flag.Duration("horizon", 20*time.Millisecond, "session-arrival horizon on the fleet clock")
		router   = flag.String("router", "rr", "session-placement policy: rr | hash | least")
		failover = flag.Bool("failover", true, "reroute sessions whose first-choice machine sits in a dark rack")

		outages   = flag.String("outages", "1ms:2ms:0; 10ms:1ms:all", "outage schedule: \"at:duration:racks\" entries separated by ';' (racks = \"all\" or comma-separated IDs; duration 0s = power blip)")
		rackPower = flag.Float64("rack-power", 250, "rack drain power budget in watts; drains queue behind it (0 = uncapped)")
		slots     = flag.Int("recovery-slots", 4, "fleet-wide concurrent recovery slots gating the storm (0 = uncapped)")
		tech      = flag.String("battery-tech", "supercap", "per-machine battery technology resolving spec volumes: supercap | li-thin")

		stormSLO = flag.Duration("storm-slo", 0, "recovery-storm budget: power back to last machine serving (0 = no budget)")
		drainSLO = flag.Duration("drain-slo", 0, "fleet p99 drain-latency budget, rack queueing included (0 = no budget)")

		machTable = flag.Bool("machines-table", false, "print the per-machine episode table")
		gantt     = flag.Bool("gantt", false, "print the recovery-storm ASCII Gantt")
		csvPath   = flag.String("csv", "", "write the per-machine episode table as CSV to this file")
		parallel  = flag.Int("parallel", 0, "measurement workers (0 = GOMAXPROCS); fleet results are identical at any setting")
		timeout   = flag.Duration("timeout", 0, "abort the fleet run after this long (0 = no limit)")
	)
	bf := cliutil.AddBatteryFlags("rack-", "rack")
	mf := cliutil.AddMetricsFlags()
	pf := cliutil.AddProfileFlags()
	tfl := cliutil.AddTelemetryFlags(true)
	shards := cliutil.AddShardsFlag()
	flag.Parse()
	if err := pf.Start(); err != nil {
		fatal(err)
	}
	defer pf.Stop()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg, err := cliutil.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	cfg.Seed = *seed
	cfg.Shards = *shards
	cfg.Metrics = tfl.EnsureRegistry(mf.Registry())
	cfg.Timeseries = tfl.Sampler()
	if cfg.Timeseries == nil {
		// The fleet-no-silent SLO always runs; it needs the recorded verdict
		// series even without -ts or -serve.
		cfg.Timeseries = horus.NewTimeseriesSampler(tfl.WindowNs*1000, tfl.Capacity)
	}
	if err := tfl.StartServer(cfg.Metrics); err != nil {
		fatal(err)
	}

	gen := cluster.GenerateOptions{Machines: *machines, Racks: *racks, Seed: *seed}
	if *schemes != "" {
		for _, name := range strings.Split(*schemes, ",") {
			s, err := cliutil.ParseScheme(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			gen.Schemes = append(gen.Schemes, core.Scheme(s))
		}
	}
	if *workloads != "" {
		known := strings.Join(horus.FleetWorkloadNames(), "|")
		for _, name := range strings.Split(*workloads, ",") {
			name = strings.TrimSpace(name)
			if !knownWorkload(name) {
				fatal(fmt.Errorf("unknown workload %q (want %s)", name, known))
			}
			gen.Workloads = append(gen.Workloads, name)
		}
	}
	fleet, err := cluster.Generate(gen)
	if err != nil {
		fatal(err)
	}
	sched, err := cluster.ParseSchedule(*outages, fleet.Racks)
	if err != nil {
		fatal(err)
	}
	pol, err := cluster.ParsePolicy(*router)
	if err != nil {
		fatal(err)
	}
	rackJ, err := bf.BudgetJoules()
	if err != nil {
		fatal(err)
	}

	fc := horus.FleetConfig{
		Fleet:         fleet,
		Base:          cfg,
		Sessions:      *sessions,
		OpsPerSession: *opsPer,
		BaseOps:       *baseOps,
		HorizonPs:     horizon.Nanoseconds() * 1000,
		Router:        pol,
		Failover:      *failover,
		Schedule:      sched,
		Loop: cluster.LoopConfig{
			RackPowerW:    *rackPower,
			RackBatteryJ:  rackJ,
			RecoverySlots: *slots,
		},
		BatteryTech: *tech,
	}
	rep, err := horus.RunFleet(ctx, fc, horus.SweepOptions{
		Parallel: *parallel, Timeout: *timeout, Progress: tfl.ProgressFunc(),
	})
	if err != nil {
		fatal(err)
	}

	cluster.SummaryTable(fleet, fc.Loop, rep.Metrics, rep.Routes).Fprint(os.Stdout)
	fmt.Println()
	cluster.StormTable(rep.Result).Fprint(os.Stdout)
	if *machTable {
		fmt.Println()
		cluster.MachineTable(fleet, rep.Runs(), rep.Result).Fprint(os.Stdout)
	}
	if *gantt {
		fmt.Println()
		cluster.StormGantt(fleet, rep.Result).Fprint(os.Stdout)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		if err := cluster.MachineTable(fleet, rep.Runs(), rep.Result).WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("machine table: %d rows to %s\n", len(rep.Machines), *csvPath)
	}
	if mf.Enabled() {
		if err := mf.Write(cfg.Metrics); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics: %s snapshot to %s\n", mf.Format, mf.Path)
	}

	// The fleet oracle SLO always runs over the recorded series; the storm
	// and drain-p99 budgets join it when set.
	slo := horus.EvaluateSLO(
		horus.FleetSLORules(stormSLO.Nanoseconds()*1000, drainSLO.Nanoseconds()*1000),
		cfg.Timeseries.Snapshot())
	if !slo.Ok() || *stormSLO > 0 || *drainSLO > 0 {
		fmt.Println()
		slo.Table().Fprint(os.Stdout)
	}
	if err := tfl.WriteTimeseries(); err != nil {
		fatal(err)
	}
	tfl.Shutdown()

	// Oracle violations outrank SLO ones: a silently-corrupt machine is a
	// correctness failure (exit 1), a blown budget an objective miss (exit 2).
	if fails := rep.Failures(); len(fails) > 0 {
		for _, m := range fails {
			fmt.Fprintf(os.Stderr, "horus-fleet: machine %s (%s): %s — %s\n",
				m.Spec.Name, m.Spec.Scheme, m.Outcome, m.Detail)
		}
		fmt.Fprintf(os.Stderr, "horus-fleet: %d of %d machines violated the recovery contract\n",
			len(fails), len(rep.Machines))
		pf.Stop() // os.Exit skips defers; flush the profiles first
		os.Exit(1)
	}
	if !slo.Ok() || len(rep.Result.BatteryExceeded) > 0 {
		for _, rack := range rep.Result.BatteryExceeded {
			fmt.Fprintf(os.Stderr, "horus-fleet: rack %d drains overdrew the rack battery budget\n", rack)
		}
		fmt.Fprintln(os.Stderr, "horus-fleet: fleet SLO violated")
		pf.Stop()
		os.Exit(2)
	}
	fmt.Printf("ok: %d machines, %d outage cycles, zero silent machines\n",
		len(rep.Machines), rep.Metrics.Cycles)
}

// knownWorkload reports whether name is a fleet workload spec.
func knownWorkload(name string) bool {
	for _, w := range horus.FleetWorkloadNames() {
		if name == w {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "horus-fleet:", err)
	os.Exit(1)
}
