// Command horus-recover demonstrates the full crash/recover cycle: fill
// the cache hierarchy, drain it on a simulated outage, lose power, then
// recover — optionally with an attack injected into the NVM between the
// crash and the recovery, which the recovery must detect.
//
// Examples:
//
//	horus-recover -scheme horus-slm
//	horus-recover -scheme horus-dlm -attack splice
//	horus-recover -scheme base-lu -attack tamper-vault
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	horus "repro"
	"repro/internal/cliutil"
	"repro/internal/report"
)

func main() {
	var (
		schemeFlag = flag.String("scheme", "horus-slm", "base-lu | base-eu | horus-slm | horus-dlm")
		attackFlag = flag.String("attack", "none", "none | tamper-data | tamper-addr | tamper-mac | splice | tamper-vault")
		scaleFlag  = flag.String("scale", "test", "test | paper")
		seed       = flag.Int64("seed", 1, "fill seed")
	)
	mf := cliutil.AddMetricsFlags()
	pf := cliutil.AddProfileFlags()
	tfl := cliutil.AddTelemetryFlags(false)
	shards := cliutil.AddShardsFlag()
	tf := cliutil.AddTraceFlags()
	ff := cliutil.AddForensicFlags()
	flag.Parse()
	if err := pf.Start(); err != nil {
		fatal(err)
	}
	defer pf.Stop()

	cfg := horus.TestConfig()
	if *scaleFlag == "paper" {
		cfg = horus.DefaultConfig()
	}
	cfg.Seed = *seed
	cfg.Shards = *shards
	cfg.Metrics = tfl.EnsureRegistry(mf.Registry())
	cfg.Timeseries = tfl.Sampler()
	cfg.Timeline = tf.Recorder()
	cfg.Evlog = ff.Log()
	if err := tfl.StartServer(cfg.Metrics); err != nil {
		fatal(err)
	}
	defer tfl.Shutdown()
	defer func() {
		if err := tfl.WriteTimeseries(); err != nil {
			fatal(err)
		}
	}()
	scheme, err := cliutil.ParseScheme(*schemeFlag)
	if err != nil {
		fatal(err)
	}

	sys := horus.NewSystem(cfg, scheme)
	if err := sys.Warmup(); err != nil {
		fatal(err)
	}
	n := sys.Fill()
	golden := sys.Hierarchy.Golden()
	fmt.Printf("filled hierarchy: %s dirty blocks\n", report.Count(int64(n)))

	res, err := sys.Drain()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("drained in %v (%s writes)\n", res.DrainTime, report.Count(res.MemWrites.Total()))

	sys.Crash()
	fmt.Println("power lost: caches and volatile metadata gone; persistent registers survive")

	if *attackFlag != "none" {
		if err := inject(sys, res, *attackFlag); err != nil {
			fatal(err)
		}
		fmt.Printf("attacker modified NVM while power was out (%s)\n", *attackFlag)
	}

	writeMetrics := func() {
		if !mf.Enabled() {
			return
		}
		fmt.Println()
		report.SpanTree(cfg.Metrics).Fprint(os.Stdout)
		if err := mf.Write(cfg.Metrics); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics: %s snapshot to %s\n", mf.Format, mf.Path)
	}

	// The drain's recording is snapshotted before recovery: each recovery
	// path brackets its own phase-local episode in the same recorder.
	var drainRec *horus.TimelineRecording
	if cfg.Timeline != nil {
		drainRec = cfg.Timeline.Recording()
	}

	writeEvlog := func() {
		if ff.Path == "" {
			return
		}
		if err := ff.WriteJSONL(cfg.Evlog.Records()...); err != nil {
			fatal(err)
		}
		fmt.Printf("forensics: flight recorder (%d events) to %s\n", cfg.Evlog.Len(), ff.Path)
	}

	rec, err := sys.Recover(res.Persist)
	var rerr *horus.RecoveryError
	switch {
	case errors.As(err, &rerr):
		fmt.Printf("recovery REFUSED: %v\n", err)
		if ff.Explain {
			f := horus.ForensicFromError(err, "recovery")
			f.Scheme = scheme.String()
			fmt.Println()
			report.ForensicTable(*f).Fprint(os.Stdout)
		}
		writeEvlog()
		if *attackFlag == "none" {
			os.Exit(1) // should never refuse an untouched image
		}
		fmt.Println("attack detected — compromised state was not restored")
		writeMetrics()
		return
	case err != nil:
		fatal(err)
	}
	if *attackFlag != "none" && scheme.UsesCHV() {
		fmt.Println("ERROR: attack went undetected")
		os.Exit(1)
	}

	fmt.Printf("recovered in %v\n", rec.Time())
	if scheme.UsesCHV() {
		ok := 0
		for addr, want := range golden {
			if got, found := sys.Hierarchy.Read(addr); found && got == want {
				ok++
			}
		}
		fmt.Printf("verified %s/%s recovered blocks match pre-crash contents\n",
			report.Count(int64(ok)), report.Count(int64(len(golden))))
	} else {
		fmt.Printf("metadata-cache vault re-installed (%d lines); in-place data verifies\n", res.Persist.Vault.Count)
	}
	if tf.Attrib {
		fmt.Println()
		report.AttributionTable(horus.AnalyzeTimeline(drainRec)).Fprint(os.Stdout)
		if atts := rec.Attributions(); len(atts) > 0 {
			fmt.Println()
			report.AttributionTableTitled("Recovery critical path by binding resource", "(recovery time)", atts...).Fprint(os.Stdout)
			for _, r := range rec.Timelines() {
				fmt.Println()
				report.GanttTitled("Recovery timeline: "+r.Episode, r).Fprint(os.Stdout)
			}
		}
	}
	if tf.Path != "" {
		recs := append([]*horus.TimelineRecording{drainRec}, rec.Timelines()...)
		if err := tf.WriteTrace(recs...); err != nil {
			fatal(err)
		}
		fmt.Printf("timeline: drain + %d recovery path(s) to %s\n", len(rec.Timelines()), tf.Path)
	}
	writeEvlog()
	writeMetrics()
}

func inject(sys *horus.System, res horus.Result, attack string) error {
	lay := sys.Core.Layout
	store := sys.Core.NVM.Store()
	switch attack {
	case "tamper-data":
		store.CorruptByte(lay.CHVDataAddr(0), 0, 0x01)
	case "tamper-addr":
		a, _ := lay.CHVAddrBlockAddr(0)
		store.CorruptByte(a, 0, 0x01)
	case "tamper-mac":
		store.CorruptByte(lay.CHVMACBase, 0, 0x01)
	case "splice":
		a0, a1 := lay.CHVDataAddr(0), lay.CHVDataAddr(1)
		b0, b1 := store.ReadBlock(a0), store.ReadBlock(a1)
		store.WriteBlock(a0, b1)
		store.WriteBlock(a1, b0)
	case "tamper-vault":
		if res.Persist.Vault.Count == 0 {
			return fmt.Errorf("no vault to tamper with (eager scheme or no residue)")
		}
		store.CorruptByte(lay.VaultAddr(0), 0, 0x01)
	default:
		return fmt.Errorf("unknown attack %q", attack)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "horus-recover:", err)
	os.Exit(1)
}
