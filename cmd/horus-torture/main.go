// Command horus-torture runs the crash-matrix fault-injection harness: for
// each secure scheme it counts the persist-ordering steps of one drain
// episode, then replays the episode once per (step, fault flavor) pair,
// crashing at that step and running recovery. Every cell must end in exact
// restoration, authentic partial state, or a typed detection error — a
// SILENT-CORRUPTION or INTERNAL-ERROR cell fails the run (exit 1).
//
// Examples:
//
//	horus-torture                              # full matrix, all secure schemes
//	horus-torture -scheme slm -flavors cut     # one column
//	horus-torture -stride 5 -max-points 20     # sampled (CI short mode)
//	horus-torture -csv cells.csv -parallel 8   # machine-readable cell table
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	horus "repro"
	"repro/internal/cliutil"
)

func main() {
	var (
		schemeFlag = flag.String("scheme", "secure", "comma-separated drain designs to torture, or \"secure\" for all four secure ones")
		flavorFlag = flag.String("flavors", "all", "comma-separated fault flavors: clean-cut, torn-write, bit-flip, dropped-write (or \"all\")")
		workload   = flag.String("workload", "uniform", "workload shape: kv|txlog|zipf|uniform|sequential|graph")
		ops        = flag.Int("ops", 120, "workload operations before the crash episode")
		scaleFlag  = flag.String("scale", "test", "paper (Table I scale) | test (scaled down)")
		seed       = flag.Int64("seed", 1, "base seed; cell seeds derive deterministically from it")
		stride     = flag.Int("stride", 0, "crash at every stride-th step instead of every step (0 = every step)")
		maxPoints  = flag.Int("max-points", 0, "cap crash points per scheme, evenly spaced (0 = no cap)")
		parallel   = flag.Int("parallel", 0, "cell workers (0 = GOMAXPROCS); verdicts are identical at any setting")
		timeout    = flag.Duration("timeout", 0, "abort the matrix after this long (0 = no limit)")
		csvPath    = flag.String("csv", "", "write the per-crash-point cell table as CSV to this file")
		cells      = flag.Bool("cells", false, "print the per-crash-point cell table, not just the summary")
		explain    = flag.Bool("explain", false, "print the detection-forensics table (failing check, region and provenance per detected cell)")
	)
	mf := cliutil.AddMetricsFlags()
	pf := cliutil.AddProfileFlags()
	tfl := cliutil.AddTelemetryFlags(true)
	shards := cliutil.AddShardsFlag()
	flag.Parse()
	if err := pf.Start(); err != nil {
		fatal(err)
	}
	defer pf.Stop()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg, err := cliutil.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	cfg.Seed = *seed
	cfg.Shards = *shards
	cfg.Metrics = tfl.EnsureRegistry(mf.Registry())
	cfg.Timeseries = tfl.Sampler()
	if cfg.Timeseries == nil {
		// The no-silent-corruption SLO always runs; it needs the recorded
		// outcome series even without -ts or -serve.
		cfg.Timeseries = horus.NewTimeseriesSampler(tfl.WindowNs*1000, tfl.Capacity)
	}
	if err := tfl.StartServer(cfg.Metrics); err != nil {
		fatal(err)
	}

	tc := horus.TortureConfig{
		Config:    cfg,
		Stride:    *stride,
		MaxPoints: *maxPoints,
	}
	if *schemeFlag != "" && !strings.EqualFold(*schemeFlag, "secure") {
		for _, name := range strings.Split(*schemeFlag, ",") {
			s, err := cliutil.ParseScheme(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			tc.Schemes = append(tc.Schemes, s)
		}
	}
	tc.Flavors, err = horus.ParseCrashFlavors(*flavorFlag)
	if err != nil {
		fatal(err)
	}
	tc.NewWorkload = func(seed int64) *horus.Workload {
		w, err := cliutil.MakeWorkload(*workload, horus.WorkloadConfig{
			Ops:            *ops,
			WorkingSet:     4 << 10,
			Seed:           seed,
			PersistPercent: 10,
		})
		if err != nil {
			fatal(err)
		}
		return w
	}

	rep, err := horus.RunTortureMatrix(ctx, tc, horus.SweepOptions{
		Parallel: *parallel, Timeout: *timeout, Progress: tfl.ProgressFunc(),
	})
	if err != nil {
		fatal(err)
	}

	if *cells {
		rep.CellTable().Fprint(os.Stdout)
	}
	rep.Table().Fprint(os.Stdout)
	if *explain {
		fmt.Println()
		rep.ForensicTable().Fprint(os.Stdout)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		if err := rep.CellTable().WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("cell table: %d rows to %s\n", len(rep.Cells), *csvPath)
	}
	if mf.Enabled() {
		if err := mf.Write(cfg.Metrics); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics: %s snapshot to %s\n", mf.Format, mf.Path)
	}

	// The silent-corruption SLO over the recorded outcome series: stricter
	// than rep.Ok() alone, it also fails a matrix that recorded no data.
	slo := horus.EvaluateSLO(horus.TortureSLORules(), cfg.Timeseries.Snapshot())
	if !slo.Ok() {
		fmt.Println()
		slo.Table().Fprint(os.Stdout)
	}
	if err := tfl.WriteTimeseries(); err != nil {
		fatal(err)
	}
	tfl.Shutdown()

	if !rep.Ok() || !slo.Ok() {
		fmt.Fprintf(os.Stderr, "horus-torture: %d of %d cells violated the recovery contract\n",
			len(rep.Failures()), len(rep.Cells))
		pf.Stop() // os.Exit skips defers; flush the profiles first
		os.Exit(1)
	}
	fmt.Printf("ok: %d cells, zero silent corruption\n", len(rep.Cells))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "horus-torture:", err)
	os.Exit(1)
}
