// Command horus-experiments regenerates the paper's evaluation: every
// figure (6, 11, 12, 13, 14, 15, 16) and table (II, III) plus the
// abstract's headline claims, printed as aligned text tables with the
// paper's published values quoted in footnotes for comparison.
//
// Examples:
//
//	horus-experiments -exp all            # full Table I scale (minutes)
//	horus-experiments -exp fig11          # one experiment
//	horus-experiments -exp all -scale test  # scaled down (seconds)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	horus "repro"
	"repro/internal/cliutil"
	"repro/internal/report"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "experiment: fig6 fig11 fig12 fig13 fig14 fig15 fig16 table2 table3 headline ablations all")
		scaleFlag = flag.String("scale", "paper", "paper (Table I scale) | test (scaled down)")
		seed      = flag.Int64("seed", 1, "fill/flush seed")
		csvDir    = flag.String("csv", "", "also write each table as CSV into this directory")
		parallel  = flag.Int("parallel", 0, "episode workers per sweep (0 = GOMAXPROCS); results are identical at any setting")
		timeout   = flag.Duration("timeout", 0, "abort sweeps that run longer than this (0 = no limit)")
	)
	mf := cliutil.AddMetricsFlags()
	tf := cliutil.AddTraceFlags()
	pf := cliutil.AddProfileFlags()
	tfl := cliutil.AddTelemetryFlags(true)
	shards := cliutil.AddShardsFlag()
	flag.Parse()
	emitCSVTo = *csvDir
	if err := pf.Start(); err != nil {
		fatal(err)
	}
	defer pf.Stop()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var cfg horus.Config
	switch *scaleFlag {
	case "paper":
		cfg = horus.DefaultConfig()
	case "test":
		cfg = horus.TestConfig()
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleFlag))
	}
	cfg.Seed = *seed
	cfg.Shards = *shards
	cfg.Metrics = tfl.EnsureRegistry(mf.Registry())
	cfg.Timeline = tf.Recorder()
	cfg.Timeseries = tfl.Sampler()
	if err := tfl.StartServer(cfg.Metrics); err != nil {
		fatal(err)
	}
	opts := horus.SweepOptions{Parallel: *parallel, Timeout: *timeout, Progress: tfl.ProgressFunc()}

	want := strings.Split(*expFlag, ",")
	has := func(name string) bool {
		for _, w := range want {
			if w == name || w == "all" {
				return true
			}
		}
		return false
	}

	// Figs. 6, 11, 12, 13 and Tables II/III share one drain per scheme; the
	// timeline trace and attribution ride on the same set.
	needSet := has("fig6") || has("fig11") || has("fig12") || has("fig13") ||
		has("table2") || has("table3") || has("headline") || tf.Enabled()
	var set *horus.DrainSet
	if needSet {
		var err error
		set, err = horus.RunDrainSetCtx(ctx, cfg, horus.AllSchemes(), opts)
		if err != nil {
			fatal(err)
		}
	}
	if tf.Enabled() {
		var recs []*horus.TimelineRecording
		var atts []horus.TimelineAttribution
		for _, s := range set.Schemes {
			if rec := set.Timelines[s]; rec != nil {
				recs = append(recs, rec)
				atts = append(atts, horus.AnalyzeTimeline(rec))
			}
		}
		if tf.Attrib {
			emit(report.AttributionTable(atts...))
		}
		if tf.Path != "" {
			if err := tf.WriteTrace(recs...); err != nil {
				fatal(err)
			}
			fmt.Printf("timeline: %d episodes to %s\n", len(recs), tf.Path)
		}
	}

	if has("fig6") {
		f := horus.Fig6{Blocks: set.Results[horus.NonSecure].BlocksDrained, Set: subset(set, horus.Fig6Schemes())}
		emit(f.Table())
	}
	if has("fig11") {
		emit(horus.Fig11{Set: set}.Table())
	}
	if has("fig12") {
		emit(horus.Fig12{Set: set}.Table())
	}
	if has("fig13") {
		emit(horus.Fig13{Set: set}.Table())
	}
	if has("fig14") || has("fig15") {
		sizes := horus.Fig14LLCSizes()
		if *scaleFlag == "test" {
			sizes = []int{4 << 20, 8 << 20}
		}
		sw, err := horus.RunLLCSweepCtx(ctx, cfg, sizes, horus.AllSchemes(), opts)
		if err != nil {
			fatal(err)
		}
		if has("fig14") {
			emit(sw.Fig14Table())
		}
		if has("fig15") {
			emit(sw.Fig15Table())
		}
	}
	if has("fig16") {
		sizes := horus.Fig16LLCSizes()
		if *scaleFlag == "test" {
			sizes = []int{4 << 20, 8 << 20}
		}
		f16, err := horus.RunFig16Ctx(ctx, cfg, sizes, opts)
		if err != nil {
			fatal(err)
		}
		emit(f16.Table())
	}
	if has("table2") || has("table3") {
		t2 := horus.Table2{Set: subset(set, horus.Table2Schemes()), Breakdown: map[horus.Scheme]horus.EnergyBreakdown{}}
		for _, s := range horus.Table2Schemes() {
			t2.Breakdown[s] = cfg.EnergyOf(set.Results[s])
		}
		if has("table2") {
			emit(t2.Table())
		}
		if has("table3") {
			emit(horus.Table3{T2: t2}.Table())
		}
	}
	if has("ablations") {
		a, err := horus.RunAblationsCtx(ctx, cfg, opts)
		if err != nil {
			fatal(err)
		}
		emit(a.FillPattern)
		emit(a.DataSize)
		emit(a.TreeProfile)
		emit(a.Recovery)
	}
	if has("headline") {
		lu, slm := set.Results[horus.BaseLU], set.Results[horus.HorusSLM]
		h := horus.Headline{
			MemReduction:  float64(lu.TotalMemAccesses()) / float64(slm.TotalMemAccesses()),
			MACReduction:  float64(lu.TotalMACs()) / float64(slm.TotalMACs()),
			TimeReduction: float64(lu.DrainTime) / float64(slm.DrainTime),
		}
		emit(h.Table())
	}
	if mf.Enabled() {
		emit(report.SpanTree(cfg.Metrics))
		if err := mf.Write(cfg.Metrics); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics: %s snapshot to %s\n", mf.Format, mf.Path)
	}
	if err := tfl.WriteTimeseries(); err != nil {
		fatal(err)
	}
	tfl.Shutdown()
}

// emitCSVTo, when non-empty, is the directory tables are mirrored into.
var emitCSVTo string

// emit prints a table and optionally mirrors it as CSV.
func emit(t *report.Table) {
	t.Fprint(os.Stdout)
	if emitCSVTo == "" {
		return
	}
	name := slug(t.Title) + ".csv"
	f, err := os.Create(filepath.Join(emitCSVTo, name))
	if err != nil {
		fatal(err)
	}
	if err := t.WriteCSV(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

// slug turns a table title into a file name.
func slug(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == ':' || r == '/':
			b.WriteByte('-')
		}
	}
	return strings.Trim(strings.ReplaceAll(b.String(), "--", "-"), "-")
}

// subset narrows a drain set to the given schemes (they were all run).
func subset(set *horus.DrainSet, schemes []horus.Scheme) *horus.DrainSet {
	out := &horus.DrainSet{Config: set.Config, Schemes: schemes, Results: map[horus.Scheme]horus.Result{}}
	for _, s := range schemes {
		out.Results[s] = set.Results[s]
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "horus-experiments:", err)
	os.Exit(1)
}
