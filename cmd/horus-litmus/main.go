// Command horus-litmus runs the persistency-litmus reordering checker and the
// corruption-detection coverage sweep. It records one fault-free drain per
// secure scheme, segments the recorded NVM writes into persist epochs (between
// ordering barriers), and explores admissible write reorderings within each
// epoch — exhaustively for small epochs, seeded sampling plus adversarial
// heuristics for large ones. Every ordering is materialised as a crash image
// and pushed through recovery: each must end in exact restoration, authentic
// partial state, or a typed detection error. The coverage sweep then corrupts
// the completed drain image (bit flips, bursts, whole lines, rollback replays)
// region by region and reports per-scheme detection probabilities.
//
// A silent-corruption witness fails the run (exit 1) and prints the minimized
// ordering trace that reproduces it.
//
// Examples:
//
//	horus-litmus                                   # all secure schemes, all models
//	horus-litmus -scheme slm -epochs 4             # one scheme, thinned epochs
//	horus-litmus -max-orderings 256 -parallel 8    # deeper sampling
//	horus-litmus -corrupt single-bit,rollback      # narrower coverage sweep
//	horus-litmus -csv cells.csv -coverage-csv cov.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	horus "repro"
	"repro/internal/cliutil"
)

func main() {
	var (
		schemeFlag = flag.String("scheme", "secure", "comma-separated drain designs to check, or \"secure\" for all four secure ones")
		corrupt    = flag.String("corrupt", "all", "comma-separated corruption models: single-bit, multi-bit, burst, whole-line, rollback, rollback-group (\"all\", or \"none\" to skip the coverage sweep)")
		trials     = flag.Int("trials", 0, "corruption trials per (scheme, model, target) cell (0 = 6)")
		workload   = flag.String("workload", "uniform", "workload shape: kv|txlog|zipf|uniform|sequential|graph")
		ops        = flag.Int("ops", 4000, "workload operations before the crash episode")
		scaleFlag  = flag.String("scale", "test", "paper (Table I scale) | test (scaled down)")
		seed       = flag.Int64("seed", 1, "base seed; ordering and trial seeds derive deterministically from it")
		epochs     = flag.Int("epochs", 0, "cap explored epochs per scheme, evenly thinned keeping first and last (0 = all)")
		maxOrd     = flag.Int("max-orderings", 0, "distinct-ordering target per sampled epoch (0 = 128)")
		exhaustive = flag.Int("exhaustive", 0, "largest epoch enumerated exhaustively instead of sampled (0 = 5 writes)")
		parallel   = flag.Int("parallel", 0, "cell workers (0 = GOMAXPROCS); verdicts are identical at any setting")
		timeout    = flag.Duration("timeout", 0, "abort the sweep after this long (0 = no limit)")
		csvPath    = flag.String("csv", "", "write the per-ordering cell table as CSV to this file")
		covCSV     = flag.String("coverage-csv", "", "write the coverage table as CSV to this file")
		cells      = flag.Bool("cells", false, "print the per-ordering cell table, not just the summaries")
		explain    = flag.Bool("explain", false, "print the detection-forensics table (failing check, region and provenance per detected cell or trial)")
	)
	mf := cliutil.AddMetricsFlags()
	pf := cliutil.AddProfileFlags()
	tfl := cliutil.AddTelemetryFlags(true)
	shards := cliutil.AddShardsFlag()
	flag.Parse()
	if err := pf.Start(); err != nil {
		fatal(err)
	}
	defer pf.Stop()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg, err := cliutil.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	cfg.Seed = *seed
	cfg.Shards = *shards
	cfg.Metrics = tfl.EnsureRegistry(mf.Registry())
	cfg.Timeseries = tfl.Sampler()
	if cfg.Timeseries == nil {
		// The no-silent-reordering SLO always runs; it needs the recorded
		// outcome series even without -ts or -serve.
		cfg.Timeseries = horus.NewTimeseriesSampler(tfl.WindowNs*1000, tfl.Capacity)
	}
	if err := tfl.StartServer(cfg.Metrics); err != nil {
		fatal(err)
	}

	lc := horus.LitmusConfig{
		Config:           cfg,
		MaxOrderings:     *maxOrd,
		ExhaustiveWrites: *exhaustive,
		MaxEpochs:        *epochs,
		CorruptTrials:    *trials,
	}
	if *schemeFlag != "" && !strings.EqualFold(*schemeFlag, "secure") {
		for _, name := range strings.Split(*schemeFlag, ",") {
			s, err := cliutil.ParseScheme(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			lc.Schemes = append(lc.Schemes, s)
		}
	}
	lc.Corrupt, err = horus.ParseCorruptionModels(*corrupt)
	if err != nil {
		fatal(err)
	}
	lc.NewWorkload = func(seed int64) *horus.Workload {
		w, err := cliutil.MakeWorkload(*workload, horus.WorkloadConfig{
			Ops:            *ops,
			WorkingSet:     1 << 20,
			Seed:           seed,
			PersistPercent: 10,
		})
		if err != nil {
			fatal(err)
		}
		return w
	}

	rep, err := horus.RunLitmus(ctx, lc, horus.SweepOptions{
		Parallel: *parallel, Timeout: *timeout, Progress: tfl.ProgressFunc(),
	})
	if err != nil {
		fatal(err)
	}

	if *cells {
		rep.CellTable().Fprint(os.Stdout)
	}
	rep.OrderingTable().Fprint(os.Stdout)
	if len(rep.Coverage) > 0 {
		fmt.Println()
		rep.CoverageTable().Fprint(os.Stdout)
	}
	if *explain {
		fmt.Println()
		rep.ForensicTable().Fprint(os.Stdout)
	}

	if *csvPath != "" {
		writeCSV(*csvPath, rep.CellTable(), len(rep.Cells), "ordering cells")
	}
	if *covCSV != "" {
		writeCSV(*covCSV, rep.CoverageTable(), len(rep.Coverage), "coverage cells")
	}
	if mf.Enabled() {
		if err := mf.Write(cfg.Metrics); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics: %s snapshot to %s\n", mf.Format, mf.Path)
	}

	// The silent-corruption SLO over the recorded per-ordering series:
	// stricter than rep.Ok() alone, it also fails a run that recorded no data.
	slo := horus.EvaluateSLO(horus.LitmusSLORules(), cfg.Timeseries.Snapshot())
	if !slo.Ok() {
		fmt.Println()
		slo.Table().Fprint(os.Stdout)
	}
	if err := tfl.WriteTimeseries(); err != nil {
		fatal(err)
	}
	tfl.Shutdown()

	if !rep.Ok() || !slo.Ok() {
		fmt.Fprintf(os.Stderr, "horus-litmus: %d contract violations across %d ordering and %d coverage cells\n",
			len(rep.Failures()), len(rep.Cells), len(rep.Coverage))
		if w := rep.Witness; w != nil {
			fmt.Fprintf(os.Stderr, "minimized witness for %s (%d of %d writes suffice):\n",
				w.Cell.Label(), len(w.Applied), w.Cell.EpochWrites)
			for _, line := range w.Trace {
				fmt.Fprintf(os.Stderr, "  %s\n", line)
			}
		}
		pf.Stop() // os.Exit skips defers; flush the profiles first
		os.Exit(1)
	}
	fmt.Printf("ok: %d orderings and %d coverage cells, zero silent corruption\n", len(rep.Cells), len(rep.Coverage))
}

// writeCSV writes one report table to path, exiting on error.
func writeCSV(path string, t interface{ WriteCSV(w io.Writer) error }, rows int, what string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := t.WriteCSV(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d rows to %s\n", what, rows, path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "horus-litmus:", err)
	os.Exit(1)
}
