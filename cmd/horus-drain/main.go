// Command horus-drain runs one EPD draining episode and reports the
// metrics the paper's evaluation is built on: draining time, per-category
// memory accesses, per-category MAC calculations, energy, and battery size.
//
// Examples:
//
//	horus-drain -scheme horus-slm
//	horus-drain -scheme base-lu -llc 32 -compare
//	horus-drain -scale test -scheme horus-dlm -v
//	horus-drain -scale test -scheme horus-dlm -trace drain.json -trace-attrib
//	horus-drain -scale test -scheme horus-slm -trace-energy -battery-cm3 2e-5 -battery-tech supercap
//	horus-drain -scale test -scheme horus-slm -serve :8080 -serve-linger 30s
package main

import (
	"flag"
	"fmt"
	"os"

	horus "repro"
	"repro/internal/cliutil"
	"repro/internal/energy"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	var (
		schemeFlag  = flag.String("scheme", "horus-slm", "drain design: non-secure | base-lu | base-eu | horus-slm | horus-dlm")
		scaleFlag   = flag.String("scale", "paper", "configuration scale: paper (Table I, 32GB/16MB) | test (scaled down)")
		llcMB       = flag.Int("llc", 0, "override LLC size in MB (paper scale only)")
		seed        = flag.Int64("seed", 1, "fill/flush seed")
		shuffle     = flag.Bool("shuffle", false, "shuffle the flush order (harsher than the paper's in-order flush)")
		compareFlag = flag.Bool("compare", false, "also run the non-secure reference and print ratios")
		verbose     = flag.Bool("v", false, "print per-category breakdowns")
		traceFile   = flag.String("access-trace", "", "write a CSV trace of every memory access to this file")
		traceLimit  = flag.Int("access-trace-limit", 2_000_000, "maximum access-trace events retained (0 = unlimited)")
		traceEnergy = flag.Bool("trace-energy", false, "print a sparkline of the energy drawdown over the drain (records time series)")
	)
	bf := cliutil.AddBatteryFlags("", "drain")
	mf := cliutil.AddMetricsFlags()
	tf := cliutil.AddTraceFlags()
	pf := cliutil.AddProfileFlags()
	tfl := cliutil.AddTelemetryFlags(false)
	shards := cliutil.AddShardsFlag()
	flag.Parse()
	if err := pf.Start(); err != nil {
		fatal(err)
	}
	defer pf.Stop()

	cfg, err := cliutil.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	cfg.Seed = *seed
	cfg.FlushShuffle = *shuffle
	cfg.Shards = *shards
	if *llcMB > 0 {
		cfg.LLCBytes = *llcMB << 20
	}
	scheme, err := cliutil.ParseScheme(*schemeFlag)
	if err != nil {
		fatal(err)
	}
	cfg.Metrics = tfl.EnsureRegistry(mf.Registry())
	cfg.Timeline = tf.Recorder()

	budgetJ, err := bf.BudgetJoules()
	if err != nil {
		fatal(err)
	}
	cfg.BatteryJoules = budgetJ
	cfg.Timeseries = tfl.Sampler()
	if cfg.Timeseries == nil && (*traceEnergy || budgetJ > 0) {
		// Energy tracing and the drain SLOs both need the recorded series
		// even when neither -ts nor -serve asked for an export.
		cfg.Timeseries = horus.NewTimeseriesSampler(tfl.WindowNs*1000, tfl.Capacity)
	}
	if err := tfl.StartServer(cfg.Metrics); err != nil {
		fatal(err)
	}

	sys := horus.NewSystem(cfg, scheme)
	var rec *trace.Recorder
	if *traceFile != "" {
		rec = trace.NewRecorder(*traceLimit)
		sys.Core.NVM.AddObserver(rec)
	}
	if err := sys.Warmup(); err != nil {
		fatal(err)
	}
	sys.Fill()
	if rec != nil {
		rec.Reset() // trace the drain only, not the warm-up
	}
	res, err := sys.Drain()
	if err != nil {
		fatal(err)
	}
	printResult(cfg, res, *verbose)
	if tf.Enabled() {
		tlRec := cfg.Timeline.Recording()
		if tf.Attrib {
			att := horus.AnalyzeTimeline(tlRec)
			att.Publish(cfg.Metrics, "scheme", res.Scheme.String())
			fmt.Println()
			report.AttributionTable(att).Fprint(os.Stdout)
			fmt.Println()
			report.Gantt(tlRec).Fprint(os.Stdout)
		}
		if tf.Path != "" {
			if err := tf.WriteTrace(tlRec); err != nil {
				fatal(err)
			}
			fmt.Printf("timeline:       %d events to %s (%d dropped)\n",
				len(tlRec.Events), tf.Path, tlRec.Dropped)
		}
	}
	if mf.Enabled() {
		fmt.Println()
		report.SpanTree(cfg.Metrics).Fprint(os.Stdout)
		if err := mf.Write(cfg.Metrics); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics:        %s snapshot to %s\n", mf.Format, mf.Path)
	}
	if rec != nil {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace:          %d events to %s (%d dropped)\n", rec.Len(), *traceFile, rec.Dropped())
	}

	if *compareFlag && scheme != horus.NonSecure {
		nsCfg := cfg
		nsCfg.Timeseries = nil // reference run: keep the episode's series clean
		ns, err := horus.RunDrain(nsCfg, horus.NonSecure)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("vs non-secure: %.2fx memory accesses, %.2fx draining time\n",
			float64(res.TotalMemAccesses())/float64(ns.TotalMemAccesses()),
			float64(res.DrainTime)/float64(ns.DrainTime))
	}

	sloOK := true
	if cfg.Timeseries != nil {
		snap := cfg.Timeseries.Snapshot()
		if *traceEnergy {
			fmt.Println()
			for _, s := range snap.Find("horus_ts_energy_j") {
				fmt.Println(report.SparklineChart("energy drawdown", s.Values(), 60, report.Joules))
			}
			if budgetJ > 0 {
				fmt.Printf("battery budget: %s (drain deadline %v)\n",
					report.Joules(budgetJ), energy.DrainDeadline(cfg.Energy, budgetJ))
			}
		}
		if budgetJ > 0 {
			rep := horus.EvaluateSLO(horus.DrainSLORules(cfg, budgetJ), snap)
			fmt.Println()
			rep.Table().Fprint(os.Stdout)
			sloOK = rep.Ok()
		}
	}
	if err := tfl.WriteTimeseries(); err != nil {
		fatal(err)
	}
	tfl.Shutdown()
	if !sloOK {
		fmt.Fprintln(os.Stderr, "horus-drain: drain SLO violated")
		os.Exit(2)
	}
}

func printResult(cfg horus.Config, res horus.Result, verbose bool) {
	fmt.Printf("scheme:         %v\n", res.Scheme)
	fmt.Printf("blocks drained: %s\n", report.Count(int64(res.BlocksDrained)))
	fmt.Printf("draining time:  %v\n", res.DrainTime)
	fmt.Printf("memory reads:   %s\n", report.Count(res.MemReads.Total()))
	fmt.Printf("memory writes:  %s\n", report.Count(res.MemWrites.Total()))
	fmt.Printf("MAC calcs:      %s\n", report.Count(res.TotalMACs()))
	fmt.Printf("AES ops:        %s\n", report.Count(res.AESOps))
	b := cfg.EnergyOf(res)
	fmt.Printf("energy:         %s (processor %s, NVM writes %s, NVM reads %s)\n",
		report.Joules(b.Total()), report.Joules(b.ProcessorJ), report.Joules(b.NVMWriteJ), report.Joules(b.NVMReadJ))
	fmt.Printf("battery:        %s SuperCap, %s Li-thin\n",
		report.Cm3(energy.Volume(b.Total(), energy.SuperCap)),
		report.Cm3(energy.Volume(b.Total(), energy.LiThin)))
	if verbose {
		fmt.Printf("\nwrite breakdown: %v\n", res.MemWrites)
		fmt.Printf("read breakdown:  %v\n", res.MemReads)
		fmt.Printf("MAC breakdown:   %v\n", res.MACCalcs)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "horus-drain:", err)
	os.Exit(1)
}
