// Command horus-plan is the EPD battery planner: a closed-form sizing of
// the worst-case draining episode — hold-up time, energy and back-up
// storage volume — for each drain design, without running the simulator.
// This is the platform-provisioning exercise the paper motivates: the PSU
// hold-up (Intel requires >= 10 ms for eADR) and battery volume must cover
// the worst case, and the choice of secure-drain design moves them by ~5x.
//
// Examples:
//
//	horus-plan                 # Table I platform, all designs
//	horus-plan -llc 512        # a 512 MB V-Cache-class part
//	horus-plan -validate       # also simulate and show estimate error
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	horus "repro"
	"repro/internal/cliutil"
	"repro/internal/report"
)

func main() {
	var (
		llcMB    = flag.Int("llc", 16, "last-level cache size in MB")
		memGB    = flag.Int("mem", 32, "protected NVM capacity in GB")
		banks    = flag.Int("banks", 16, "NVM banks")
		validate = flag.Bool("validate", false, "also run the simulator and report estimate error (slow)")
		parallel = flag.Int("parallel", 0, "validation episode workers (0 = GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 0, "abort validation runs longer than this (0 = no limit)")
	)
	mf := cliutil.AddMetricsFlags()
	pf := cliutil.AddProfileFlags()
	tfl := cliutil.AddTelemetryFlags(false)
	shards := cliutil.AddShardsFlag()
	flag.Parse()
	if err := pf.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "horus-plan:", err)
		os.Exit(1)
	}
	defer pf.Stop()

	cfg := horus.DefaultConfig()
	cfg.LLCBytes = *llcMB << 20
	cfg.DataSize = uint64(*memGB) << 30
	cfg.Mem.Banks = *banks
	cfg.Shards = *shards
	cfg.Metrics = tfl.EnsureRegistry(mf.Registry())
	cfg.Timeseries = tfl.Sampler()
	if err := tfl.StartServer(cfg.Metrics); err != nil {
		fmt.Fprintln(os.Stderr, "horus-plan:", err)
		os.Exit(1)
	}
	defer tfl.Shutdown()
	defer func() {
		if err := tfl.WriteTimeseries(); err != nil {
			fmt.Fprintln(os.Stderr, "horus-plan:", err)
			os.Exit(1)
		}
	}()

	t := &report.Table{
		Title: fmt.Sprintf("EPD battery plan: %d MB LLC over %d GB NVM (%d banks)",
			*llcMB, *memGB, *banks),
		Header: []string{"design", "hold-up", "writes", "reads", "energy", "SuperCap", "Li-thin"},
	}
	for _, s := range horus.AllSchemes() {
		p := horus.PlanBattery(cfg, s)
		t.AddRow(s.String(),
			p.DrainTime.String(),
			report.Count(p.Writes),
			report.Count(p.Reads),
			report.Joules(p.EnergyJ),
			report.Cm3(p.SuperCapCm3),
			report.Cm3(p.LiThinCm3))
	}
	t.AddNote("closed-form worst-case estimates; run with -validate to compare against simulation")
	t.Fprint(os.Stdout)

	if !*validate {
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	vals, err := horus.ValidatePlansCtx(ctx, cfg, horus.AllSchemes(),
		horus.SweepOptions{Parallel: *parallel, Timeout: *timeout})
	if err != nil {
		fmt.Fprintln(os.Stderr, "horus-plan:", err)
		os.Exit(1)
	}
	v := &report.Table{
		Title:  "Validation against simulation",
		Header: []string{"design", "est. hold-up", "simulated", "error"},
	}
	for _, pv := range vals {
		v.AddRow(pv.Scheme.String(), pv.Plan.DrainTime.String(), pv.Simulated.DrainTime.String(),
			fmt.Sprintf("%+.0f%%", pv.ErrorPct))
	}
	v.Fprint(os.Stdout)
	if mf.Enabled() {
		report.SpanTree(cfg.Metrics).Fprint(os.Stdout)
		if err := mf.Write(cfg.Metrics); err != nil {
			fmt.Fprintln(os.Stderr, "horus-plan:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics: %s snapshot to %s\n", mf.Format, mf.Path)
	}
}
