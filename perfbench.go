package horus

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/perfbench"
)

// perfbenchSink defeats dead-code elimination in the crypto microbenchmark.
var perfbenchSink byte

// RegisterPerfBenchmarks fills s with the repository's standard hot-path
// episodes: a full drain per scheme, a parallel sweep smoke, a torture-matrix
// smoke, and microbenchmarks of the secure-write and crypto substrates. All
// run at TestConfig scale so the whole suite finishes in seconds; the
// committed BENCH_horus.json baseline and the CI regression check both use
// exactly this set (cmd/horus-perfbench). The optional mods are applied to
// every episode's Config (the CLI's -shards flag routes through one).
func RegisterPerfBenchmarks(s *perfbench.Suite, mods ...func(*Config)) {
	benchConfig := func() Config {
		cfg := TestConfig()
		for _, m := range mods {
			m(&cfg)
		}
		return cfg
	}
	for _, scheme := range AllSchemes() {
		scheme := scheme
		name := "drain/" + strings.ToLower(scheme.String())
		s.Register(name, func() error {
			_, err := RunDrain(benchConfig(), scheme)
			return err
		})
	}

	// Sweep smoke: the Fig. 6 set through the episode engine with two
	// workers, exercising the parallel scheduling path end to end.
	s.Register("sweep/fig6-smoke", func() error {
		_, err := RunFig6Ctx(context.Background(), benchConfig(), SweepOptions{Parallel: 2})
		return err
	})

	// Torture smoke: a thinned crash matrix (every 5th step, at most 8
	// points per scheme) over all schemes and flavors, the shape the CI
	// torture job runs. Verdicts must stay all-ok; a perf harness that
	// quietly runs a failing matrix would time a broken episode.
	s.Register("torture/smoke", func() error {
		rep, err := RunTortureMatrix(context.Background(),
			TortureConfig{Config: benchConfig(), Stride: 5, MaxPoints: 8},
			SweepOptions{Parallel: 2})
		if err != nil {
			return err
		}
		if !rep.Ok() {
			return fmt.Errorf("torture smoke has %d failing cells", len(rep.Failures()))
		}
		return nil
	})

	// Secure-write microbenchmark: 4096 strided writes through the secure
	// controller (counter fetch, MAC, tree update per write).
	s.Register("micro/secure-write-4k", func() error {
		cfg := benchConfig()
		sys := NewSystem(cfg, BaseLU)
		for i := 0; i < 4096; i++ {
			addr := (uint64(i) * 4096) % cfg.DataSize
			if _, err := sys.Core.Sec.WriteBlock(0, addr, [64]byte{0: byte(i)}); err != nil {
				return err
			}
		}
		return nil
	})

	// Crypto microbenchmark: 8192 encrypt+MAC pairs on the cme engine, the
	// innermost per-block work of every secure scheme.
	s.Register("micro/cme-encrypt-mac-8k", func() error {
		sys := NewSystem(benchConfig(), HorusSLM)
		eng := sys.Core.Enc
		for i := 0; i < 8192; i++ {
			addr := uint64(i) * 64
			ct := eng.Encrypt(addr, uint64(i), [64]byte{0: byte(i)})
			mac := eng.DataMAC(addr, uint64(i), ct)
			perfbenchSink ^= mac[0]
		}
		return nil
	})
}
