package horus

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs/evlog"
	"repro/internal/recovery"
	"repro/internal/sim"
)

// classifyOutcome is the shared recovery oracle behind the torture matrix
// and the litmus reordering checker: given a crashed system (volatile state
// already discarded, root register restored from ps), it runs the scheme's
// recovery path and classifies the result against the pre-crash golden
// image. interrupted states whether the crash state legitimately misses
// drain writes (a cut mid-drain, or a reordered epoch prefix); only then is
// authentic-but-stale or missing data an acceptable OutcomePartial.
//
// The returned Forensic explains a detection (failing check, region,
// blocks scanned, provenance chain) and is nil for clean outcomes; cells
// are private systems, so a chain-bounded flight recorder is attached
// when the caller hasn't, making every detected cell explainable.
//
// The final return value is the simulated time the recovery path itself
// consumed (vault restore plus CHV or baseline recovery) — the fleet
// simulation schedules recovery storms from it, and it accumulates even
// when the verdict is a detection partway through.
func classifyOutcome(cs *core.System, ps PersistentState,
	golden map[uint64]mem.Block, blocks []DirtyBlock, interrupted bool) (CrashOutcome, string, *Forensic, sim.Time) {
	if cs.Evlog == nil {
		cs.Evlog = evlog.New(evlog.DefaultChainLimit)
	}
	if ps.Scheme.UsesCHV() {
		return classifyHorusOutcome(cs, ps, golden, blocks, interrupted)
	}
	return classifyBaselineOutcome(cs, ps, golden, blocks, interrupted)
}

// classifyHorusOutcome recovers the CHV directly (RestoreMetadataVault +
// RecoverHorus, without refilling a machine) and compares the recovered
// blocks against golden. Direct comparison keeps the verdict about the CHV:
// refilling a machine would route reads through the secure controller and
// conflate CHV verification with metadata-residue verification.
func classifyHorusOutcome(cs *core.System, ps PersistentState,
	golden map[uint64]mem.Block, blocks []DirtyBlock, interrupted bool) (CrashOutcome, string, *Forensic, sim.Time) {
	cs.NVM.ResetStats()
	cs.Sec.ResetStats()
	var elapsed sim.Time
	if ps.Vault.Count > 0 {
		vr, err := recovery.RestoreMetadataVaultFor(cs, ps.Vault, ps.Scheme.String())
		elapsed += vr.RecoveryTime
		if err != nil {
			o, d, f := classifyRecoveryError(err, "metadata vault")
			return o, d, f, elapsed
		}
	}
	res, err := recovery.RecoverHorus(cs, ps)
	elapsed += res.RecoveryTime
	if err != nil {
		o, d, f := classifyRecoveryError(err, "CHV recovery")
		return o, d, f, elapsed
	}
	drained := make(map[uint64]bool, len(blocks))
	for _, b := range blocks {
		drained[b.Addr] = true
	}
	recovered := make(map[uint64]bool, len(res.Blocks))
	for _, b := range res.Blocks {
		want, ok := golden[b.Addr]
		if !ok || !drained[b.Addr] {
			return OutcomeSilentCorruption, fmt.Sprintf("recovered block at %#x was never drained", b.Addr), nil, elapsed
		}
		if b.Data != want {
			return OutcomeSilentCorruption, fmt.Sprintf("recovered wrong bytes at %#x with verified MACs", b.Addr), nil, elapsed
		}
		recovered[b.Addr] = true
	}
	missing := 0
	for _, b := range blocks {
		if !recovered[b.Addr] {
			missing++
		}
	}
	switch {
	case missing == 0:
		return OutcomeRestored, "", nil, elapsed
	case interrupted:
		// Blocks past the crash point never reached the persistence
		// domain: legitimately lost, and everything recovered verified.
		return OutcomePartial, fmt.Sprintf("%d/%d blocks not persisted before the cut", missing, len(blocks)), nil, elapsed
	default:
		return OutcomeSilentCorruption, fmt.Sprintf("drain completed but %d/%d blocks missing without error", missing, len(blocks)), nil, elapsed
	}
}

// classifyBaselineOutcome restores the metadata vault and then re-reads every
// drained block through the secure read path. Each block must come back as
// its golden bytes, fail verification with a typed error, or — only when the
// drain was interrupted — come back as an older authentic value (the MACs
// are real keyed functions in this simulator, so a verified non-golden
// value is a stale authentic one, not forged bytes).
func classifyBaselineOutcome(cs *core.System, ps PersistentState,
	golden map[uint64]mem.Block, blocks []DirtyBlock, interrupted bool) (CrashOutcome, string, *Forensic, sim.Time) {
	cs.NVM.ResetStats()
	cs.Sec.ResetStats()
	br, err := recovery.RecoverBaseline(cs, ps)
	elapsed := br.RecoveryTime
	if err != nil {
		o, d, f := classifyRecoveryError(err, "baseline recovery")
		return o, d, f, elapsed
	}
	detected, stale := 0, 0
	var first *Forensic
	for i, b := range blocks {
		got, _, err := cs.Sec.ReadBlock(0, b.Addr)
		if err != nil {
			if !recovery.IsDetection(err) {
				return OutcomeInternalError, fmt.Sprintf("post-recovery read of %#x failed with untyped error: %v", b.Addr, err), nil, elapsed
			}
			if first == nil {
				// The probe sweep is this path's detection scan: blocks
				// scanned before the first typed failure is its latency.
				first = ForensicFromError(err, "post-recovery read")
				first.BlocksScanned = int64(i)
			}
			detected++
			continue
		}
		if got != golden[b.Addr] {
			stale++
		}
	}
	switch {
	case detected == 0 && stale == 0:
		return OutcomeRestored, "", nil, elapsed
	case detected > 0:
		return OutcomeDetected, fmt.Sprintf("%d/%d blocks failed verification (typed)", detected, len(blocks)), first, elapsed
	case interrupted:
		return OutcomePartial, fmt.Sprintf("%d/%d blocks at authentic pre-drain values", stale, len(blocks)), nil, elapsed
	default:
		return OutcomeSilentCorruption, fmt.Sprintf("drain completed but %d/%d blocks verified with stale values", stale, len(blocks)), nil, elapsed
	}
}

// classifyRecoveryError folds a recovery error into an outcome: typed
// detection errors satisfy the contract (with their forensic provenance),
// anything else is an internal failure.
func classifyRecoveryError(err error, phase string) (CrashOutcome, string, *Forensic) {
	if recovery.IsDetection(err) {
		return OutcomeDetected, fmt.Sprintf("%s: %v", phase, err), ForensicFromError(err, phase)
	}
	return OutcomeInternalError, fmt.Sprintf("%s failed with untyped error: %v", phase, err), nil
}
