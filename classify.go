package horus

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs/evlog"
	"repro/internal/recovery"
)

// classifyOutcome is the shared recovery oracle behind the torture matrix
// and the litmus reordering checker: given a crashed system (volatile state
// already discarded, root register restored from ps), it runs the scheme's
// recovery path and classifies the result against the pre-crash golden
// image. interrupted states whether the crash state legitimately misses
// drain writes (a cut mid-drain, or a reordered epoch prefix); only then is
// authentic-but-stale or missing data an acceptable OutcomePartial.
//
// The returned Forensic explains a detection (failing check, region,
// blocks scanned, provenance chain) and is nil for clean outcomes; cells
// are private systems, so a chain-bounded flight recorder is attached
// when the caller hasn't, making every detected cell explainable.
func classifyOutcome(cs *core.System, ps PersistentState,
	golden map[uint64]mem.Block, blocks []DirtyBlock, interrupted bool) (CrashOutcome, string, *Forensic) {
	if cs.Evlog == nil {
		cs.Evlog = evlog.New(evlog.DefaultChainLimit)
	}
	if ps.Scheme.UsesCHV() {
		return classifyHorusOutcome(cs, ps, golden, blocks, interrupted)
	}
	return classifyBaselineOutcome(cs, ps, golden, blocks, interrupted)
}

// classifyHorusOutcome recovers the CHV directly (RestoreMetadataVault +
// RecoverHorus, without refilling a machine) and compares the recovered
// blocks against golden. Direct comparison keeps the verdict about the CHV:
// refilling a machine would route reads through the secure controller and
// conflate CHV verification with metadata-residue verification.
func classifyHorusOutcome(cs *core.System, ps PersistentState,
	golden map[uint64]mem.Block, blocks []DirtyBlock, interrupted bool) (CrashOutcome, string, *Forensic) {
	cs.NVM.ResetStats()
	cs.Sec.ResetStats()
	if ps.Vault.Count > 0 {
		if _, err := recovery.RestoreMetadataVaultFor(cs, ps.Vault, ps.Scheme.String()); err != nil {
			return classifyRecoveryError(err, "metadata vault")
		}
	}
	res, err := recovery.RecoverHorus(cs, ps)
	if err != nil {
		return classifyRecoveryError(err, "CHV recovery")
	}
	drained := make(map[uint64]bool, len(blocks))
	for _, b := range blocks {
		drained[b.Addr] = true
	}
	recovered := make(map[uint64]bool, len(res.Blocks))
	for _, b := range res.Blocks {
		want, ok := golden[b.Addr]
		if !ok || !drained[b.Addr] {
			return OutcomeSilentCorruption, fmt.Sprintf("recovered block at %#x was never drained", b.Addr), nil
		}
		if b.Data != want {
			return OutcomeSilentCorruption, fmt.Sprintf("recovered wrong bytes at %#x with verified MACs", b.Addr), nil
		}
		recovered[b.Addr] = true
	}
	missing := 0
	for _, b := range blocks {
		if !recovered[b.Addr] {
			missing++
		}
	}
	switch {
	case missing == 0:
		return OutcomeRestored, "", nil
	case interrupted:
		// Blocks past the crash point never reached the persistence
		// domain: legitimately lost, and everything recovered verified.
		return OutcomePartial, fmt.Sprintf("%d/%d blocks not persisted before the cut", missing, len(blocks)), nil
	default:
		return OutcomeSilentCorruption, fmt.Sprintf("drain completed but %d/%d blocks missing without error", missing, len(blocks)), nil
	}
}

// classifyBaselineOutcome restores the metadata vault and then re-reads every
// drained block through the secure read path. Each block must come back as
// its golden bytes, fail verification with a typed error, or — only when the
// drain was interrupted — come back as an older authentic value (the MACs
// are real keyed functions in this simulator, so a verified non-golden
// value is a stale authentic one, not forged bytes).
func classifyBaselineOutcome(cs *core.System, ps PersistentState,
	golden map[uint64]mem.Block, blocks []DirtyBlock, interrupted bool) (CrashOutcome, string, *Forensic) {
	cs.NVM.ResetStats()
	cs.Sec.ResetStats()
	if _, err := recovery.RecoverBaseline(cs, ps); err != nil {
		return classifyRecoveryError(err, "baseline recovery")
	}
	detected, stale := 0, 0
	var first *Forensic
	for i, b := range blocks {
		got, _, err := cs.Sec.ReadBlock(0, b.Addr)
		if err != nil {
			if !recovery.IsDetection(err) {
				return OutcomeInternalError, fmt.Sprintf("post-recovery read of %#x failed with untyped error: %v", b.Addr, err), nil
			}
			if first == nil {
				// The probe sweep is this path's detection scan: blocks
				// scanned before the first typed failure is its latency.
				first = ForensicFromError(err, "post-recovery read")
				first.BlocksScanned = int64(i)
			}
			detected++
			continue
		}
		if got != golden[b.Addr] {
			stale++
		}
	}
	switch {
	case detected == 0 && stale == 0:
		return OutcomeRestored, "", nil
	case detected > 0:
		return OutcomeDetected, fmt.Sprintf("%d/%d blocks failed verification (typed)", detected, len(blocks)), first
	case interrupted:
		return OutcomePartial, fmt.Sprintf("%d/%d blocks at authentic pre-drain values", stale, len(blocks)), nil
	default:
		return OutcomeSilentCorruption, fmt.Sprintf("drain completed but %d/%d blocks verified with stale values", stale, len(blocks)), nil
	}
}

// classifyRecoveryError folds a recovery error into an outcome: typed
// detection errors satisfy the contract (with their forensic provenance),
// anything else is an internal failure.
func classifyRecoveryError(err error, phase string) (CrashOutcome, string, *Forensic) {
	if recovery.IsDetection(err) {
		return OutcomeDetected, fmt.Sprintf("%s: %v", phase, err), ForensicFromError(err, phase)
	}
	return OutcomeInternalError, fmt.Sprintf("%s failed with untyped error: %v", phase, err), nil
}
