// Package sweep is the episode engine behind the experiment layer: it runs
// a grid of independent simulation episodes (build → warmup → fill → drain
// [→ recover]) on a bounded worker pool with context cancellation, a
// whole-sweep timeout, per-episode panic capture and per-episode error
// collection, and merges per-episode metric registries into one report
// deterministically.
//
// Determinism contract: episodes share no mutable state, every episode
// derives its RNG seed from (BaseSeed, episode index) — never from a
// shared stream — and results and registry merges are ordered by episode
// index regardless of scheduling. Consequently a sweep run with one worker
// and with N workers produces bit-identical results and merged metrics.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Env is the per-episode environment the runner supplies to Run.
type Env struct {
	// Index is the episode's position in the grid.
	Index int
	// Seed is the deterministic per-episode seed, DeriveSeed(BaseSeed,
	// Index). Episodes that need randomness must use it (or a value derived
	// from it) so parallel scheduling cannot perturb results.
	Seed int64
	// Metrics is a fresh registry for this episode alone (nil when the
	// runner has no metrics sink). After the sweep the runner merges all
	// episode registries into the sink in index order, so aggregation is
	// lossless and deterministic even though episodes finish out of order.
	Metrics *obs.Registry
}

// Episode is one unit of work in a sweep.
type Episode struct {
	// Label names the episode in errors and reports, e.g.
	// "llc=8MB/Horus-SLM".
	Label string
	// Run executes the episode. It must not touch state shared with other
	// episodes; everything it needs arrives via the closure or Env.
	Run func(ctx context.Context, env Env) (any, error)
}

// Result reports one episode.
type Result struct {
	Index   int
	Label   string
	Value   any           // Run's return value (nil on error)
	Err     error         // Run's error, a *PanicError, or the context error
	Metrics *obs.Registry // this episode's registry (also merged into the sink)
	Elapsed time.Duration // wall-clock execution time (not simulated time)
}

// Options configures a Runner.
type Options struct {
	// Parallel bounds the worker pool; <= 0 means GOMAXPROCS.
	Parallel int
	// Timeout, when positive, bounds the whole sweep; episodes not finished
	// (or not started) when it expires report context.DeadlineExceeded.
	Timeout time.Duration
	// BaseSeed is the root of the per-episode seed derivation.
	BaseSeed int64
	// Metrics, when non-nil, receives every episode's registry via Merge,
	// in episode order, after the sweep completes.
	Metrics *obs.Registry
	// Progress, when non-nil, is called once per finished episode (in
	// completion order, serialized — implementations need no locking).
	// It runs on worker goroutines between episodes: keep it cheap and
	// never touch episode state from it. Progress is wall-clock-side
	// telemetry only; it cannot perturb simulated results.
	Progress func(ProgressEvent)
}

// ProgressEvent reports one finished episode to Options.Progress.
type ProgressEvent struct {
	// Done counts finished episodes including this one; Total is the
	// sweep size, so Done == Total marks the last event.
	Done, Total int
	// Index and Label identify the episode that just finished.
	Index int
	Label string
	// Err is the episode's error, if any.
	Err error
	// Elapsed is wall-clock time since the sweep started.
	Elapsed time.Duration
}

// EpisodesPerSec returns the observed completion rate (0 before any time
// has elapsed).
func (e ProgressEvent) EpisodesPerSec() float64 {
	if e.Elapsed <= 0 {
		return 0
	}
	return float64(e.Done) / e.Elapsed.Seconds()
}

// ETA estimates the remaining wall-clock time from the observed rate
// (zero when unknowable).
func (e ProgressEvent) ETA() time.Duration {
	rate := e.EpisodesPerSec()
	if rate <= 0 || e.Done >= e.Total {
		return 0
	}
	return time.Duration(float64(e.Total-e.Done) / rate * float64(time.Second))
}

// Runner executes episode grids.
type Runner struct {
	opts Options
}

// New returns a runner over the options.
func New(opts Options) *Runner { return &Runner{opts: opts} }

// Workers resolves the effective worker-pool size.
func (r *Runner) Workers() int {
	if r.opts.Parallel > 0 {
		return r.opts.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes the episodes and returns one Result per episode, in episode
// order. It never aborts on an episode failure: every episode either runs
// to completion, fails with its own error, or is skipped on cancellation.
// The returned error is nil when every episode succeeded, and otherwise an
// *Error aggregating the per-episode failures — completed results are still
// returned alongside it.
func (r *Runner) Run(ctx context.Context, episodes []Episode) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if r.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.opts.Timeout)
		defer cancel()
	}

	results := make([]Result, len(episodes))
	started := make([]bool, len(episodes))

	workers := r.Workers()
	if workers > len(episodes) {
		workers = len(episodes)
	}

	// Feed indices to the pool; stop dispatching once the context dies.
	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := range episodes {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Progress reporting: completion-ordered, serialized under its own
	// mutex so callbacks never run concurrently with each other.
	sweepStart := time.Now()
	var progressMu sync.Mutex
	completed := 0
	report := func(res Result) {
		if r.opts.Progress == nil {
			return
		}
		progressMu.Lock()
		completed++
		ev := ProgressEvent{
			Done:    completed,
			Total:   len(episodes),
			Index:   res.Index,
			Label:   res.Label,
			Err:     res.Err,
			Elapsed: time.Since(sweepStart),
		}
		r.opts.Progress(ev)
		progressMu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				started[i] = true
				results[i] = r.runOne(ctx, i, episodes[i])
				report(results[i])
			}
		}()
	}
	wg.Wait()

	// Episodes the pool never picked up report why.
	for i := range results {
		if !started[i] {
			err := context.Cause(ctx)
			if err == nil {
				err = ctx.Err()
			}
			results[i] = Result{Index: i, Label: episodes[i].Label, Err: fmt.Errorf("sweep: episode not started: %w", err)}
		}
	}

	// Deterministic post-hoc aggregation: merge in episode order.
	if r.opts.Metrics != nil {
		for i := range results {
			r.opts.Metrics.Merge(results[i].Metrics)
		}
	}

	var failed []Result
	for _, res := range results {
		if res.Err != nil {
			failed = append(failed, res)
		}
	}
	if len(failed) > 0 {
		return results, &Error{Failed: failed, Total: len(results)}
	}
	return results, nil
}

// runOne executes a single episode, capturing panics as errors.
func (r *Runner) runOne(ctx context.Context, i int, ep Episode) (res Result) {
	env := Env{Index: i, Seed: DeriveSeed(r.opts.BaseSeed, i)}
	if r.opts.Metrics != nil {
		env.Metrics = obs.NewRegistry()
	}
	res = Result{Index: i, Label: ep.Label, Metrics: env.Metrics}
	start := time.Now()
	defer func() {
		res.Elapsed = time.Since(start)
		if p := recover(); p != nil {
			res.Value = nil
			res.Err = &PanicError{Value: p, Stack: string(debug.Stack())}
		}
	}()
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	if ep.Run == nil {
		res.Err = errors.New("sweep: episode has no Run function")
		return res
	}
	res.Value, res.Err = ep.Run(ctx, env)
	return res
}

// DeriveSeed maps (base seed, episode index) to an independent, stable
// per-episode seed via a splitmix64 round. Unlike splitting a shared RNG
// stream, the derivation depends only on the index, so any scheduling order
// yields the same seed for the same episode.
func DeriveSeed(base int64, index int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// PanicError wraps a panic captured inside an episode so one crashing
// configuration cannot take down the rest of a sweep.
type PanicError struct {
	Value any
	Stack string
}

// Error describes the panic (the stack is available via the Stack field).
func (e *PanicError) Error() string {
	return fmt.Sprintf("episode panicked: %v", e.Value)
}

// Error aggregates the failures of a sweep; the successful episodes'
// results are returned alongside it.
type Error struct {
	Failed []Result // failed episodes, in episode order
	Total  int      // total episodes in the sweep
}

// Error lists every failed episode.
func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %d/%d episodes failed", len(e.Failed), e.Total)
	for _, f := range e.Failed {
		fmt.Fprintf(&b, "; #%d %s: %v", f.Index, f.Label, f.Err)
	}
	return b.String()
}

// Unwrap exposes the individual episode errors to errors.Is/As.
func (e *Error) Unwrap() []error {
	errs := make([]error, len(e.Failed))
	for i, f := range e.Failed {
		errs[i] = f.Err
	}
	return errs
}
