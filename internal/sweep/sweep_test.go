package sweep

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// grid builds n episodes whose value is a deterministic function of the
// episode seed, exercising the seed-derivation contract.
func grid(n int) []Episode {
	eps := make([]Episode, n)
	for i := 0; i < n; i++ {
		eps[i] = Episode{
			Label: fmt.Sprintf("ep-%d", i),
			Run: func(ctx context.Context, env Env) (any, error) {
				rng := rand.New(rand.NewSource(env.Seed))
				sum := int64(0)
				for j := 0; j < 100; j++ {
					sum += rng.Int63n(1000)
				}
				env.Metrics.Counter("sweep_test_total").Add(sum)
				env.Metrics.Gauge("sweep_test_last", "ep", fmt.Sprint(env.Index)).Set(float64(sum))
				return sum, nil
			},
		}
	}
	return eps
}

func values(t *testing.T, results []Result) []int64 {
	t.Helper()
	out := make([]int64, len(results))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("episode %d: %v", i, r.Err)
		}
		out[i] = r.Value.(int64)
	}
	return out
}

func TestSweepParallelMatchesSequential(t *testing.T) {
	const n = 24
	run := func(workers int) ([]int64, string) {
		sink := obs.NewRegistry()
		r := New(Options{Parallel: workers, BaseSeed: 42, Metrics: sink})
		results, err := r.Run(context.Background(), grid(n))
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := sink.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return values(t, results), b.String()
	}
	seqVals, seqProm := run(1)
	parVals, parProm := run(8)
	for i := range seqVals {
		if seqVals[i] != parVals[i] {
			t.Errorf("episode %d: sequential %d != parallel %d", i, seqVals[i], parVals[i])
		}
	}
	if seqProm != parProm {
		t.Errorf("merged metrics differ between 1 and 8 workers:\n--- seq ---\n%s\n--- par ---\n%s", seqProm, parProm)
	}
}

func TestSweepDeriveSeedStableAndDistinct(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(7, i)
		if s2 := DeriveSeed(7, i); s2 != s {
			t.Fatalf("DeriveSeed not stable at %d: %d vs %d", i, s, s2)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between episodes %d and %d", prev, i)
		}
		seen[s] = i
	}
	if DeriveSeed(7, 0) == DeriveSeed(8, 0) {
		t.Error("different base seeds should derive different episode seeds")
	}
}

func TestSweepCollectsErrorsAndKeepsPartialResults(t *testing.T) {
	boom := errors.New("boom")
	eps := []Episode{
		{Label: "ok-0", Run: func(ctx context.Context, env Env) (any, error) { return 1, nil }},
		{Label: "fail", Run: func(ctx context.Context, env Env) (any, error) { return nil, boom }},
		{Label: "panic", Run: func(ctx context.Context, env Env) (any, error) { panic("kaboom") }},
		{Label: "ok-3", Run: func(ctx context.Context, env Env) (any, error) { return 4, nil }},
	}
	results, err := New(Options{Parallel: 2}).Run(context.Background(), eps)
	if err == nil {
		t.Fatal("sweep with failures must return an aggregate error")
	}
	var serr *Error
	if !errors.As(err, &serr) {
		t.Fatalf("error is %T, want *Error", err)
	}
	if len(serr.Failed) != 2 || serr.Total != 4 {
		t.Fatalf("aggregate = %d/%d failed, want 2/4", len(serr.Failed), serr.Total)
	}
	if !errors.Is(err, boom) {
		t.Error("aggregate error must unwrap to the episode error")
	}
	if results[0].Value.(int) != 1 || results[3].Value.(int) != 4 {
		t.Error("successful episodes lost alongside failures")
	}
	var perr *PanicError
	if !errors.As(results[2].Err, &perr) {
		t.Fatalf("panic not captured: %v", results[2].Err)
	}
	if perr.Value != "kaboom" || perr.Stack == "" {
		t.Errorf("panic detail wrong: %+v", perr.Value)
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	block := make(chan struct{})
	eps := make([]Episode, 8)
	for i := range eps {
		eps[i] = Episode{Label: fmt.Sprintf("ep-%d", i), Run: func(ctx context.Context, env Env) (any, error) {
			ran.Add(1)
			<-block
			return nil, ctx.Err()
		}}
	}
	go func() {
		for ran.Load() < 2 {
			time.Sleep(time.Millisecond)
		}
		cancel()
		close(block)
	}()
	results, err := New(Options{Parallel: 2}).Run(ctx, eps)
	if err == nil {
		t.Fatal("cancelled sweep must report an error")
	}
	var notStarted int
	for _, r := range results {
		if r.Err != nil && errors.Is(r.Err, context.Canceled) {
			notStarted++
		}
	}
	if notStarted == 0 {
		t.Error("cancellation should surface context.Canceled on unfinished episodes")
	}
}

func TestSweepTimeout(t *testing.T) {
	eps := []Episode{
		{Label: "slow", Run: func(ctx context.Context, env Env) (any, error) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(10 * time.Second):
				return nil, errors.New("timeout did not fire")
			}
		}},
		{Label: "queued", Run: func(ctx context.Context, env Env) (any, error) { return 1, nil }},
	}
	start := time.Now()
	_, err := New(Options{Parallel: 1, Timeout: 20 * time.Millisecond}).Run(context.Background(), eps)
	if err == nil {
		t.Fatal("timed-out sweep must report an error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error should unwrap to DeadlineExceeded: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("timeout did not bound the sweep")
	}
}

func TestSweepDefaultWorkerCount(t *testing.T) {
	if w := New(Options{}).Workers(); w < 1 {
		t.Errorf("default workers = %d, want >= 1 (GOMAXPROCS)", w)
	}
	if w := New(Options{Parallel: 3}).Workers(); w != 3 {
		t.Errorf("workers = %d, want 3", w)
	}
}

func TestSweepNoMetricsSinkSkipsRegistries(t *testing.T) {
	results, err := New(Options{Parallel: 2}).Run(context.Background(), []Episode{
		{Label: "a", Run: func(ctx context.Context, env Env) (any, error) {
			if env.Metrics.Enabled() {
				return nil, errors.New("episode registry allocated without a sink")
			}
			// Nil registries must still be safe to instrument against.
			env.Metrics.Counter("x").Add(1)
			return nil, nil
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Metrics.Enabled() {
		t.Error("result should carry a nil registry when no sink is set")
	}
}

func TestProgressCallback(t *testing.T) {
	const n = 9
	episodes := make([]Episode, n)
	for i := range episodes {
		i := i
		episodes[i] = Episode{
			Label: fmt.Sprintf("ep%d", i),
			Run:   func(ctx context.Context, env Env) (any, error) { return i, nil },
		}
	}
	var mu sync.Mutex
	var events []ProgressEvent
	r := New(Options{
		Parallel: 4,
		Progress: func(ev ProgressEvent) {
			// Serialized by contract: no locking needed for the slice
			// append itself, but the test reads it later from the main
			// goroutine, so guard anyway.
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	})
	if _, err := r.Run(context.Background(), episodes); err != nil {
		t.Fatal(err)
	}
	if len(events) != n {
		t.Fatalf("got %d progress events, want %d", len(events), n)
	}
	seen := map[int]bool{}
	for i, ev := range events {
		if ev.Done != i+1 {
			t.Fatalf("event %d: Done=%d, want %d (monotonic completion count)", i, ev.Done, i+1)
		}
		if ev.Total != n {
			t.Fatalf("event %d: Total=%d, want %d", i, ev.Total, n)
		}
		if seen[ev.Index] {
			t.Fatalf("episode %d reported twice", ev.Index)
		}
		seen[ev.Index] = true
		if ev.Err != nil {
			t.Fatalf("event %d: unexpected error %v", i, ev.Err)
		}
	}
	last := events[n-1]
	if last.Done != last.Total {
		t.Fatalf("last event Done=%d Total=%d", last.Done, last.Total)
	}
	if last.ETA() != 0 {
		t.Fatalf("ETA after completion = %v, want 0", last.ETA())
	}
}

func TestProgressReportsEpisodeErrors(t *testing.T) {
	boom := errors.New("boom")
	episodes := []Episode{
		{Label: "ok", Run: func(ctx context.Context, env Env) (any, error) { return nil, nil }},
		{Label: "bad", Run: func(ctx context.Context, env Env) (any, error) { return nil, boom }},
	}
	var withErr int
	r := New(Options{Parallel: 1, Progress: func(ev ProgressEvent) {
		if ev.Err != nil {
			withErr++
		}
	}})
	if _, err := r.Run(context.Background(), episodes); err == nil {
		t.Fatal("expected sweep error")
	}
	if withErr != 1 {
		t.Fatalf("progress events with errors = %d, want 1", withErr)
	}
}
