package litmus

import (
	"fmt"
	"strings"

	"repro/internal/mem"
)

// Model is one corruption shape the coverage sweep injects into a completed
// (post-drain) memory image before running recovery.
type Model int

const (
	// SingleBit flips one bit of the victim block.
	SingleBit Model = iota
	// MultiBit flips three bits spread across the victim block — beyond
	// what ECC-style single-error correction would mask.
	MultiBit
	// Burst XORs a random non-zero pattern over 8 consecutive bytes,
	// modelling a row-buffer or bus burst error.
	Burst
	// WholeLine replaces the entire 64 B victim block with unrelated
	// content, modelling a misdirected or garbage write.
	WholeLine
	// Rollback restores the victim block to its pre-drain content — a
	// replay of stale-but-authentic bytes, the freshness attack MACs alone
	// cannot catch.
	Rollback
	// RollbackGroup rolls back the victim block and its associated
	// metadata as a group (data + counter + MAC for in-place schemes),
	// modelling a consistent stale snapshot of one line.
	RollbackGroup
)

var modelNames = map[Model]string{
	SingleBit:     "single-bit",
	MultiBit:      "multi-bit",
	Burst:         "burst",
	WholeLine:     "whole-line",
	Rollback:      "rollback",
	RollbackGroup: "rollback-group",
}

// String names the model for reports and flag values.
func (m Model) String() string {
	if s, ok := modelNames[m]; ok {
		return s
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// AllModels returns every corruption model in declaration order.
func AllModels() []Model {
	return []Model{SingleBit, MultiBit, Burst, WholeLine, Rollback, RollbackGroup}
}

// ParseModel resolves a flag token to a corruption model.
func ParseModel(s string) (Model, error) {
	for m, name := range modelNames {
		if s == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("litmus: unknown corruption model %q (want one of %s)", s, strings.Join(ModelNames(), ", "))
}

// ParseModels parses a comma-separated model list; "all" (or "") selects
// every model and "none" selects none.
func ParseModels(s string) ([]Model, error) {
	switch s {
	case "", "all":
		return AllModels(), nil
	case "none":
		return nil, nil
	}
	var out []Model
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		m, err := ParseModel(tok)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// ModelNames returns the flag spellings of every model, in order.
func ModelNames() []string {
	all := AllModels()
	out := make([]string, len(all))
	for i, m := range all {
		out[i] = m.String()
	}
	return out
}

// Corrupt applies the model to cur (the post-drain content of the victim
// block), deriving corruption positions from the splitmix64 seed. old is the
// block's pre-drain content, used by the rollback models. The returned block
// is guaranteed to differ from cur except for rollback of a block the drain
// never changed (the caller filters such victims).
func Corrupt(m Model, cur, old mem.Block, seed uint64) mem.Block {
	r := &rng{state: seed}
	out := cur
	switch m {
	case SingleBit:
		bit := int(r.next() % (mem.BlockSize * 8))
		out[bit/8] ^= 1 << (bit % 8)
	case MultiBit:
		flipped := map[int]bool{}
		for len(flipped) < 3 {
			bit := int(r.next() % (mem.BlockSize * 8))
			if flipped[bit] {
				continue
			}
			flipped[bit] = true
			out[bit/8] ^= 1 << (bit % 8)
		}
	case Burst:
		off := int(r.next() % (mem.BlockSize - 7))
		for i := 0; i < 8; i++ {
			mask := byte(r.next())
			if i == 0 && mask == 0 {
				mask = 1
			}
			out[off+i] ^= mask
		}
	case WholeLine:
		for i := range out {
			out[i] = byte(r.next())
		}
		if out == cur {
			out[0] ^= 1
		}
	case Rollback, RollbackGroup:
		out = old
	}
	return out
}
