package litmus

import (
	"reflect"
	"testing"

	"repro/internal/mem"
)

// mkWrites builds a write stream from (addr, cat) pairs with distinct data.
func mkWrites(specs ...struct {
	addr uint64
	cat  mem.Category
}) []Write {
	out := make([]Write, len(specs))
	for i, s := range specs {
		var b mem.Block
		b[0] = byte(i + 1)
		out[i] = Write{Step: i, Addr: s.addr, Cat: s.cat, Data: b}
	}
	return out
}

func spec(addr uint64, cat mem.Category) struct {
	addr uint64
	cat  mem.Category
} {
	return struct {
		addr uint64
		cat  mem.Category
	}{addr, cat}
}

func TestRecorderEpochSegmentation(t *testing.T) {
	r := NewRecorder()
	var closed []Epoch
	r.OnEpochClose = func(e Epoch) { closed = append(closed, e) }

	write := func(addr uint64, cat mem.Category, v byte) {
		var b mem.Block
		b[0] = v
		r.OnWriteCommitted(addr, cat, b)
	}

	r.OnStage("drain:blocks")
	write(0, mem.CatData, 1)
	write(64, mem.CatData, 2)
	r.OnStage("drain:meta-flush") // closes epoch 0
	r.OnStage("meta:vault")       // empty epoch: not recorded
	write(128, mem.CatMetaFlush, 3)
	r.Finish()

	epochs := r.Epochs()
	if len(epochs) != 2 {
		t.Fatalf("epochs = %d, want 2 (empty epochs must be skipped)", len(epochs))
	}
	if epochs[0].Stage != "drain:blocks" || epochs[0].Lo != 0 || epochs[0].Hi != 2 {
		t.Errorf("epoch 0 = %+v, want stage drain:blocks [0,2)", epochs[0])
	}
	if epochs[1].Stage != "meta:vault" || epochs[1].Lo != 2 || epochs[1].Hi != 3 {
		t.Errorf("epoch 1 = %+v, want stage meta:vault [2,3)", epochs[1])
	}
	if !reflect.DeepEqual(closed, epochs) {
		t.Errorf("OnEpochClose saw %+v, want %+v", closed, epochs)
	}
	if got := len(r.EpochWrites(epochs[0])); got != 2 {
		t.Errorf("EpochWrites(epoch0) = %d writes, want 2", got)
	}
	if r.Writes()[2].Data[0] != 3 {
		t.Errorf("write content not preserved: %v", r.Writes()[2].Data[0])
	}
	// The recorder must be a no-fault injector.
	if f := r.OnWrite(0, mem.CatData); f.Kind != mem.FaultNone {
		t.Errorf("recorder injected fault %v", f.Kind)
	}
	// Finish with no trailing writes must not add an epoch.
	r.Finish()
	if len(r.Epochs()) != 2 {
		t.Errorf("second Finish added an epoch")
	}
}

// checkAdmissible fails the test if the applied set is not prefix-closed per
// address.
func checkAdmissible(t *testing.T, writes []Write, o Ordering) {
	t.Helper()
	in := make([]bool, len(writes))
	for _, i := range o.Applied {
		if i < 0 || i >= len(writes) {
			t.Fatalf("%s: index %d out of range [0,%d)", o.Kind, i, len(writes))
		}
		if in[i] {
			t.Fatalf("%s: index %d applied twice", o.Kind, i)
		}
		in[i] = true
	}
	if !admissible(in, addrGroups(writes)) {
		t.Fatalf("%s: ordering %v violates per-address program order", o.Kind, o.Applied)
	}
	// Landing order itself must respect per-address program order too.
	last := map[uint64]int{}
	for _, i := range o.Applied {
		if p, ok := last[writes[i].Addr]; ok && i < p {
			t.Fatalf("%s: landing order %v reorders same-address writes", o.Kind, o.Applied)
		}
		last[writes[i].Addr] = i
	}
}

func TestOrderingsExhaustiveCounts(t *testing.T) {
	// 3 writes, all distinct addresses: every subset admissible -> 8.
	w := mkWrites(spec(0, mem.CatData), spec(64, mem.CatMAC), spec(128, mem.CatCounter))
	got := Orderings(w, Options{})
	if len(got) != 8 {
		t.Fatalf("distinct-address exhaustive: %d orderings, want 8", len(got))
	}
	for _, o := range got {
		checkAdmissible(t, w, o)
	}

	// 3 writes, two to the same address: subsets containing write 2 without
	// write 0 are inadmissible -> 8 - 2 = 6.
	w = mkWrites(spec(0, mem.CatData), spec(64, mem.CatMAC), spec(0, mem.CatData))
	got = Orderings(w, Options{})
	if len(got) != 6 {
		t.Fatalf("same-address exhaustive: %d orderings, want 6", len(got))
	}
	for _, o := range got {
		checkAdmissible(t, w, o)
	}

	if Orderings(nil, Options{}) != nil {
		t.Errorf("empty epoch must yield no orderings")
	}
}

// bigEpoch builds an epoch large enough for sampled mode: alternating
// data/mac/counter writes, with some repeated addresses.
func bigEpoch(n int) []Write {
	cats := []mem.Category{mem.CatData, mem.CatMAC, mem.CatCounter}
	out := make([]Write, n)
	for i := range out {
		var b mem.Block
		b[0] = byte(i)
		b[1] = byte(i >> 8)
		out[i] = Write{Step: i, Addr: uint64((i % (n / 2)) * 64), Cat: cats[i%len(cats)], Data: b}
	}
	return out
}

func TestOrderingsSampledProperties(t *testing.T) {
	w := bigEpoch(40)
	opt := Options{Seed: 12345, MaxOrderings: 128}
	got := Orderings(w, opt)

	if len(got) < 100 {
		t.Fatalf("sampled mode produced %d distinct orderings, want >= 100", len(got))
	}
	seen := map[string]bool{}
	kinds := map[string]int{}
	for _, o := range got {
		checkAdmissible(t, w, o)
		k := o.Key()
		if seen[k] {
			t.Fatalf("duplicate ordering key %q", k)
		}
		seen[k] = true
		kinds[o.Kind]++
	}
	if kinds["empty"] != 1 || kinds["complete"] != 1 {
		t.Errorf("boundary orderings missing: kinds = %v", kinds)
	}
	// All three categories appear, so each contributes -only/-dropped.
	for _, c := range []string{"data", "mac", "counter"} {
		if kinds["heur:"+c+"-only"] == 0 {
			t.Errorf("missing heuristic ordering heur:%s-only (kinds %v)", c, kinds)
		}
	}
	if kinds["sampled"] == 0 {
		t.Errorf("no sampled orderings generated: %v", kinds)
	}
}

func TestOrderingsDeterministic(t *testing.T) {
	w := bigEpoch(64)
	a := Orderings(w, Options{Seed: 99, MaxOrderings: 120})
	b := Orderings(w, Options{Seed: 99, MaxOrderings: 120})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different ordering sets")
	}
	c := Orderings(w, Options{Seed: 100, MaxOrderings: 120})
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical sampled sets (suspicious)")
	}
}

func TestSampleOrderingAdmissible(t *testing.T) {
	w := bigEpoch(23)
	for seed := uint64(0); seed < 200; seed++ {
		o := SampleOrdering(w, seed)
		checkAdmissible(t, w, o)
		if len(o.Applied) < 1 || len(o.Applied) > len(w) {
			t.Fatalf("seed %d: cut size %d out of range", seed, len(o.Applied))
		}
	}
	if o := SampleOrdering(nil, 7); len(o.Applied) != 0 {
		t.Fatalf("empty epoch sample returned writes")
	}
}

func TestMinimize(t *testing.T) {
	// Failure iff index 3 is applied; addr of 3 repeats at index 5.
	w := mkWrites(
		spec(0, mem.CatData), spec(64, mem.CatData), spec(128, mem.CatData),
		spec(192, mem.CatMAC), spec(256, mem.CatData), spec(192, mem.CatMAC),
	)
	applied := []int{0, 1, 2, 3, 4, 5}
	min := Minimize(w, applied, func(cand []int) bool {
		for _, i := range cand {
			if i == 3 {
				return true
			}
		}
		return false
	})
	if !reflect.DeepEqual(min, []int{3}) {
		t.Fatalf("Minimize = %v, want [3]", min)
	}
	// Dropping 3 must also drop 5 (same address, later) — verify the
	// minimizer preserved admissibility along the way by re-checking.
	checkAdmissible(t, w, Ordering{Kind: "min", Applied: min})
}

func TestCorruptModels(t *testing.T) {
	var cur, old mem.Block
	for i := range cur {
		cur[i] = byte(i * 7)
		old[i] = byte(i * 3)
	}
	for _, m := range AllModels() {
		got := Corrupt(m, cur, old, 42)
		switch m {
		case Rollback, RollbackGroup:
			if got != old {
				t.Errorf("%v: want pre-drain content back", m)
			}
		default:
			if got == cur {
				t.Errorf("%v: corruption left block unchanged", m)
			}
		}
		// Deterministic in the seed.
		if again := Corrupt(m, cur, old, 42); again != got {
			t.Errorf("%v: not deterministic", m)
		}
	}
	// SingleBit differs in exactly one bit.
	diff := 0
	got := Corrupt(SingleBit, cur, old, 7)
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^cur[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Errorf("SingleBit flipped %d bits, want 1", diff)
	}
}

func TestParseModels(t *testing.T) {
	all, err := ParseModels("all")
	if err != nil || len(all) != len(AllModels()) {
		t.Fatalf("ParseModels(all) = %v, %v", all, err)
	}
	none, err := ParseModels("none")
	if err != nil || none != nil {
		t.Fatalf("ParseModels(none) = %v, %v", none, err)
	}
	// Round-trip every name.
	for _, m := range AllModels() {
		got, err := ParseModel(m.String())
		if err != nil || got != m {
			t.Errorf("ParseModel(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseModels("single-bit, rollback"); err != nil {
		t.Errorf("comma list with space rejected: %v", err)
	}
	if _, err := ParseModels("bogus"); err == nil {
		t.Errorf("bogus model accepted")
	}
}
