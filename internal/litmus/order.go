package litmus

import (
	"fmt"
	"sort"
	"strings"
)

// Ordering is one admissible crash state of an epoch: the subset of the
// epoch's writes that became durable, listed in landing order. Admissibility
// means the subset is prefix-closed per address (a write landed only if
// every earlier program-order write to the same address landed). Because
// same-address writes land in program order, the durable memory state is a
// function of the applied set alone; Applied's order is kept for traces.
type Ordering struct {
	// Kind records how the ordering was produced: "exhaustive", "sampled",
	// "empty", "complete", "heur:<class>-only", "heur:<class>-dropped".
	Kind string
	// Applied holds epoch-relative write indices in landing order.
	Applied []int
}

// Complete reports whether every write of an n-write epoch landed.
func (o Ordering) Complete(n int) bool { return len(o.Applied) == n }

// Key returns the canonical identity of the ordering's durable state: the
// applied set in ascending order. Two orderings with equal keys materialise
// identical memory images.
func (o Ordering) Key() string {
	s := append([]int(nil), o.Applied...)
	sort.Ints(s)
	var b strings.Builder
	for _, v := range s {
		fmt.Fprintf(&b, "%x,", v)
	}
	return b.String()
}

// Options bounds ordering generation for one epoch.
type Options struct {
	// Seed drives the permutation sampling; the generated set is a pure
	// function of (writes, Options), independent of any parallelism.
	Seed uint64
	// MaxOrderings is the target number of distinct orderings for sampled
	// epochs (0 = 128). Generation stops once reached (or once the sampler
	// has made 4x that many attempts, for epochs whose distinct-state space
	// is smaller than the target).
	MaxOrderings int
	// ExhaustiveWrites is the largest epoch enumerated exhaustively
	// (0 = 5, clamped to 12): every admissible subset of such an epoch is
	// produced, so small tail epochs (CHV tail, vault parity) get complete
	// coverage.
	ExhaustiveWrites int
	// Classify, when set, labels each write with an adversarial-heuristic
	// class (typically the metadata region: mac, counter, tree, ...); for
	// every class present the generator emits the "only this class landed"
	// and "only this class missing" orderings — the MAC-before-data and
	// counter-before-ciphertext shapes. Nil uses the access category.
	Classify func(w Write) string
}

func (o Options) maxOrderings() int {
	if o.MaxOrderings <= 0 {
		return 128
	}
	return o.MaxOrderings
}

func (o Options) exhaustiveWrites() int {
	n := o.ExhaustiveWrites
	if n <= 0 {
		n = 5
	}
	if n > 12 {
		n = 12
	}
	return n
}

func (o Options) classify(w Write) string {
	if o.Classify != nil {
		return o.Classify(w)
	}
	return string(w.Cat)
}

// rng is a splitmix64 stream: the standard cheap deterministic generator
// used across the repo's fault and sampling paths.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// addrGroups maps each address to the ascending epoch-relative indices of
// its writes — the per-address program order admissibility preserves.
func addrGroups(writes []Write) map[uint64][]int {
	g := make(map[uint64][]int)
	for i, w := range writes {
		g[w.Addr] = append(g[w.Addr], i)
	}
	return g
}

// closure returns the smallest admissible superset of set (as a member
// bitmap): for every address, if the k-th write to it is in, so are writes
// 0..k-1 to it.
func closure(in []bool, groups map[uint64][]int) []bool {
	out := append([]bool(nil), in...)
	for _, g := range groups {
		last := -1
		for p, idx := range g {
			if out[idx] {
				last = p
			}
		}
		for p := 0; p <= last; p++ {
			out[g[p]] = true
		}
	}
	return out
}

func admissible(in []bool, groups map[uint64][]int) bool {
	for _, g := range groups {
		seen := true
		for _, idx := range g {
			if in[idx] && !seen {
				return false
			}
			seen = in[idx]
		}
	}
	return true
}

func setToApplied(in []bool) []int {
	var out []int
	for i, ok := range in {
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// Orderings generates the distinct admissible orderings to explore for one
// epoch. Epochs of at most Options.ExhaustiveWrites writes are enumerated
// exhaustively (every admissible subset); larger epochs get the boundary
// orderings (nothing landed, everything landed), the per-class adversarial
// heuristics, and deterministic splitmix64-sampled permutation prefixes up
// to Options.MaxOrderings distinct states. The result is a pure function of
// (writes, opt): byte-identical on every call, at any parallelism.
func Orderings(writes []Write, opt Options) []Ordering {
	n := len(writes)
	if n == 0 {
		return nil
	}
	groups := addrGroups(writes)

	var out []Ordering
	seen := make(map[string]bool)
	add := func(o Ordering) bool {
		k := o.Key()
		if seen[k] {
			return false
		}
		seen[k] = true
		out = append(out, o)
		return true
	}

	if n <= opt.exhaustiveWrites() {
		for mask := 0; mask < 1<<n; mask++ {
			in := make([]bool, n)
			for i := 0; i < n; i++ {
				in[i] = mask&(1<<i) != 0
			}
			if !admissible(in, groups) {
				continue
			}
			add(Ordering{Kind: "exhaustive", Applied: setToApplied(in)})
		}
		return out
	}

	// Boundary states: the barrier passed but nothing landed; everything
	// landed (for the final epoch this is the completed drain).
	add(Ordering{Kind: "empty"})
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	add(Ordering{Kind: "complete", Applied: all})

	// Adversarial heuristics: for every write class present, the state
	// where only that class landed (MAC-before-data, counter-before-
	// ciphertext, vault-leaf-before-root) and the state where only that
	// class is missing (e.g. every data block landed but no MAC).
	classes := make(map[string][]bool)
	var classOrder []string
	for i, w := range writes {
		c := opt.classify(w)
		if classes[c] == nil {
			classes[c] = make([]bool, n)
			classOrder = append(classOrder, c)
		}
		classes[c][i] = true
	}
	sort.Strings(classOrder)
	for _, c := range classOrder {
		in := classes[c]
		count := 0
		for _, ok := range in {
			if ok {
				count++
			}
		}
		if count == 0 || count == n {
			continue
		}
		add(Ordering{Kind: "heur:" + c + "-only", Applied: setToApplied(closure(in, groups))})
		comp := make([]bool, n)
		for i := range comp {
			comp[i] = !in[i]
		}
		add(Ordering{Kind: "heur:" + c + "-dropped", Applied: setToApplied(closure(comp, groups))})
	}

	// Sampled permutation prefixes fill the rest of the budget.
	target := opt.maxOrderings()
	r := &rng{state: opt.Seed}
	for attempts := 0; len(out) < target && attempts < 4*target; attempts++ {
		add(sampleOne(writes, groups, r))
	}
	return out
}

// SampleOrdering draws one admissible permutation prefix of the epoch from
// the seed — the primitive behind the sampled mode, exported so the fuzzer
// can drive arbitrary seeds through the same path.
func SampleOrdering(writes []Write, seed uint64) Ordering {
	if len(writes) == 0 {
		return Ordering{Kind: "sampled"}
	}
	return sampleOne(writes, addrGroups(writes), &rng{state: seed})
}

func sampleOne(writes []Write, groups map[uint64][]int, r *rng) Ordering {
	n := len(writes)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(r.next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	// Coherence fix-up: within each address group, reassign the group's
	// permutation slots so its writes appear in program order.
	pos := make(map[uint64][]int)
	for p, idx := range perm {
		a := writes[idx].Addr
		pos[a] = append(pos[a], p)
	}
	for a, ps := range pos {
		sort.Ints(ps)
		for k, p := range ps {
			perm[p] = groups[a][k]
		}
	}
	cut := n
	if n > 1 {
		cut = 1 + int(r.next()%uint64(n-1))
	}
	return Ordering{Kind: "sampled", Applied: append([]int(nil), perm[:cut]...)}
}

// Minimize shrinks a failing ordering: it greedily removes writes (together
// with the later same-address writes admissibility drags along) while the
// predicate still holds, returning a locally minimal applied set. still is
// called with candidate applied sets (ascending index order) and must report
// whether the failure persists; calls are capped so minimisation of an
// expensive predicate stays bounded.
func Minimize(writes []Write, applied []int, still func([]int) bool) []int {
	groups := addrGroups(writes)
	cur := append([]int(nil), applied...)
	sort.Ints(cur)
	budget := 256
	for i := len(cur) - 1; i >= 0 && budget > 0; i-- {
		if i >= len(cur) {
			continue
		}
		// Removing cur[i] forces removing every later same-address write.
		drop := map[int]bool{cur[i]: true}
		for _, g := range groups[writes[cur[i]].Addr] {
			if g > cur[i] {
				drop[g] = true
			}
		}
		var cand []int
		for _, v := range cur {
			if !drop[v] {
				cand = append(cand, v)
			}
		}
		if len(cand) == len(cur) {
			continue
		}
		budget--
		if still(cand) {
			cur = cand
		}
	}
	return cur
}
