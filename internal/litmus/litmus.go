// Package litmus implements persistency-model litmus testing for the drain
// pipeline (ROADMAP item 5, modelled on "Lost in Interpretation"): it
// records the NVM writes of one drain episode segmented into epochs at the
// persist-ordering barriers (the mem.MarkStage labels), then enumerates the
// crash states a legal reordering of writes within an epoch could leave
// behind.
//
// Epoch model: a persist barrier orders everything before it against
// everything after it, so writes of different epochs never reorder. Within
// an epoch the memory system may persist writes in any order, except that
// two writes to the same address persist in program order (cache
// coherence). A crash at epoch e's closing barrier therefore leaves
// durable: every write of epochs < e, plus an arbitrary prefix of an
// admissible permutation of epoch e — equivalently, any subset of epoch e
// that is prefix-closed per address (a later write to an address landed
// only if every earlier write to that address landed).
//
// The package is pure bookkeeping and combinatorics; materialising an
// ordering into a persistent state and running recovery against it is the
// root package's litmus driver.
package litmus

import "repro/internal/mem"

// Write is one recorded NVM write of a drain episode.
type Write struct {
	// Step is the global write index within the episode (program order).
	Step int
	// Addr is the NVM block address.
	Addr uint64
	// Cat is the access category the controller charged the write to.
	Cat mem.Category
	// Data is the committed block content.
	Data mem.Block
}

// Epoch is a maximal run of writes between two persist barriers.
type Epoch struct {
	// Index is the epoch's position in barrier order.
	Index int
	// Stage is the MarkStage label that opened the epoch (e.g.
	// "drain:chv-stream", "meta:vault-payload").
	Stage string
	// Lo and Hi delimit the epoch's writes as a half-open range of global
	// write indices [Lo, Hi). Epochs with no writes are not recorded.
	Lo, Hi int
}

// Size returns the number of writes in the epoch.
func (e Epoch) Size() int { return e.Hi - e.Lo }

// Recorder captures a drain episode's write stream and its epoch structure.
// It implements mem.FaultInjector (injecting nothing) plus mem.WriteRecorder
// (capturing committed content), so installing it via SetFaultInjector
// records a fault-free episode byte-for-byte.
//
// Not safe for concurrent use; record one episode per Recorder.
type Recorder struct {
	writes []Write
	epochs []Epoch
	stage  string

	// OnEpochClose, if set, is invoked each time a non-empty epoch closes
	// (a new stage mark arrives, or Finish is called). The litmus driver
	// uses it to snapshot the drainer's persistent registers at the
	// barrier — the register file a crash at that barrier would leave.
	OnEpochClose func(e Epoch)
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// OnWrite implements mem.FaultInjector; the recorder never injects faults.
func (r *Recorder) OnWrite(addr uint64, cat mem.Category) mem.Fault { return mem.Fault{} }

// OnWriteCommitted implements mem.WriteRecorder: append the committed write.
func (r *Recorder) OnWriteCommitted(addr uint64, cat mem.Category, b mem.Block) {
	r.writes = append(r.writes, Write{Step: len(r.writes), Addr: addr, Cat: cat, Data: b})
}

// OnStage implements mem.FaultInjector: a stage mark is a persist barrier,
// closing the epoch in progress and opening one labelled with the new stage.
func (r *Recorder) OnStage(stage string) {
	r.closeEpoch()
	r.stage = stage
}

// Finish closes the trailing epoch after the episode's last write. Call it
// once when the drain returns.
func (r *Recorder) Finish() { r.closeEpoch() }

func (r *Recorder) closeEpoch() {
	lo := 0
	if n := len(r.epochs); n > 0 {
		lo = r.epochs[n-1].Hi
	}
	if hi := len(r.writes); hi > lo {
		e := Epoch{Index: len(r.epochs), Stage: r.stage, Lo: lo, Hi: hi}
		r.epochs = append(r.epochs, e)
		if r.OnEpochClose != nil {
			r.OnEpochClose(e)
		}
	}
}

// Writes returns the recorded write stream in program order.
func (r *Recorder) Writes() []Write { return r.writes }

// Epochs returns the recorded (non-empty) epochs in barrier order.
func (r *Recorder) Epochs() []Epoch { return r.epochs }

// EpochWrites returns the slice of the write stream belonging to e.
func (r *Recorder) EpochWrites(e Epoch) []Write { return r.writes[e.Lo:e.Hi] }
