// Package perfbench is a statistical benchmark harness for the simulator's
// hot paths. Unlike testing.B it measures whole episodes (a full drain, a
// sweep, a torture matrix) a fixed number of times and reports robust order
// statistics — median, p10, p90 of wall time plus per-episode allocation
// counts — so a committed baseline can catch regressions without the noise
// sensitivity of a single-shot ns/op figure.
//
// Wall-clock on shared CI hardware jitters by 10%+; allocation counts are
// deterministic. The comparison logic therefore treats time medians with
// wide thresholds (warn/fail ratios) while allocation regressions of the
// same magnitude are flagged from a single run.
package perfbench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"time"
)

// Schema identifies the report file format.
const Schema = "horus-perfbench/v1"

// Benchmark is one registered episode. Fn runs a single complete episode
// (e.g. one full drain); the harness times it and measures its allocations.
type Benchmark struct {
	Name string
	Fn   func() error
}

// Suite is an ordered registry of benchmarks.
type Suite struct {
	benches []Benchmark
}

// Register adds a benchmark. Names must be unique; duplicates panic so a
// bad registration fails loudly at startup rather than silently shadowing.
func (s *Suite) Register(name string, fn func() error) {
	for _, b := range s.benches {
		if b.Name == name {
			panic("perfbench: duplicate benchmark " + name)
		}
	}
	s.benches = append(s.benches, Benchmark{Name: name, Fn: fn})
}

// Names lists the registered benchmark names in registration order.
func (s *Suite) Names() []string {
	out := make([]string, len(s.benches))
	for i, b := range s.benches {
		out[i] = b.Name
	}
	return out
}

// Result holds the statistics of one benchmark over all repetitions.
type Result struct {
	Name string `json:"name"`
	Reps int    `json:"reps"`
	// Wall-time order statistics over the measured repetitions, in
	// nanoseconds per episode.
	MedianNs float64 `json:"median_ns"`
	P10Ns    float64 `json:"p10_ns"`
	P90Ns    float64 `json:"p90_ns"`
	// Median heap allocation count and bytes per episode (deterministic
	// for the simulator's single-threaded episodes, so the median of the
	// repetitions equals every repetition up to background-runtime noise).
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
	// SamplesNs are the raw per-repetition wall times, in repetition
	// order, for offline re-analysis.
	SamplesNs []float64 `json:"samples_ns"`
}

// Report is the serialized output of a suite run.
type Report struct {
	Schema    string   `json:"schema"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Reps      int      `json:"reps"`
	Results   []Result `json:"results"`
}

// Options configures a suite run.
type Options struct {
	// Reps is the number of measured repetitions per benchmark
	// (default 7). One additional untimed warmup repetition always runs
	// first so first-touch costs (page faults, lazily built tables) do
	// not land in the first sample.
	Reps int
	// Filter, when non-nil, restricts the run to matching names.
	Filter *regexp.Regexp
	// Log, when non-nil, receives one progress line per benchmark.
	Log io.Writer
	// OnProgress, when non-nil, is called after each benchmark completes
	// with the finished count, the total matching count, and the
	// benchmark's name. It feeds the -progress line and the -serve SSE
	// stream of horus-perfbench.
	OnProgress func(done, total int, name string)
}

// DefaultReps is the repetition count when Options.Reps is zero.
const DefaultReps = 7

// Run executes every (matching) benchmark Reps times and returns the
// aggregated report. Results are sorted by name so the emitted JSON is
// stable across registration-order changes.
func (s *Suite) Run(opts Options) (*Report, error) {
	reps := opts.Reps
	if reps <= 0 {
		reps = DefaultReps
	}
	rep := &Report{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Reps:      reps,
	}
	var matching []Benchmark
	for _, b := range s.benches {
		if opts.Filter != nil && !opts.Filter.MatchString(b.Name) {
			continue
		}
		matching = append(matching, b)
	}
	for i, b := range matching {
		r, err := measure(b, reps)
		if err != nil {
			return nil, fmt.Errorf("perfbench: %s: %w", b.Name, err)
		}
		rep.Results = append(rep.Results, r)
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "%-40s reps=%d median=%s p10=%s p90=%s allocs/op=%d\n",
				r.Name, r.Reps, fmtNs(r.MedianNs), fmtNs(r.P10Ns), fmtNs(r.P90Ns), r.AllocsPerOp)
		}
		if opts.OnProgress != nil {
			opts.OnProgress(i+1, len(matching), b.Name)
		}
	}
	sort.Slice(rep.Results, func(i, j int) bool { return rep.Results[i].Name < rep.Results[j].Name })
	return rep, nil
}

// measure runs one benchmark: a warmup pass, then reps measured passes.
func measure(b Benchmark, reps int) (Result, error) {
	if err := b.Fn(); err != nil { // warmup
		return Result{}, err
	}
	ns := make([]float64, reps)
	allocs := make([]uint64, reps)
	bytes := make([]uint64, reps)
	var m0, m1 runtime.MemStats
	for i := 0; i < reps; i++ {
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		if err := b.Fn(); err != nil {
			return Result{}, err
		}
		ns[i] = float64(time.Since(start).Nanoseconds())
		runtime.ReadMemStats(&m1)
		allocs[i] = m1.Mallocs - m0.Mallocs
		bytes[i] = m1.TotalAlloc - m0.TotalAlloc
	}
	sortedNs := append([]float64(nil), ns...)
	sort.Float64s(sortedNs)
	return Result{
		Name:        b.Name,
		Reps:        reps,
		MedianNs:    quantile(sortedNs, 0.5),
		P10Ns:       quantile(sortedNs, 0.1),
		P90Ns:       quantile(sortedNs, 0.9),
		AllocsPerOp: medianU64(allocs),
		BytesPerOp:  medianU64(bytes),
		SamplesNs:   ns,
	}, nil
}

// quantile linearly interpolates the q-quantile of sorted samples.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

func medianU64(v []uint64) uint64 {
	s := append([]uint64(nil), v...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

func fmtNs(ns float64) string {
	return time.Duration(int64(ns)).Round(10 * time.Microsecond).String()
}

// WriteJSON writes the report to path, indented, with a trailing newline.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadJSON loads a report written by WriteJSON.
func ReadJSON(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perfbench: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("perfbench: %s: unknown schema %q", path, r.Schema)
	}
	return &r, nil
}

// result lookup by name.
func (r *Report) find(name string) *Result {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// Delta statuses, ordered by severity.
const (
	StatusOK      = "ok"      // within the warn threshold
	StatusNew     = "new"     // present now, absent from the baseline
	StatusMissing = "missing" // present in the baseline, absent now
	StatusWarn    = "warn"    // median regressed past the warn threshold
	StatusFail    = "fail"    // median regressed past the fail threshold
)

// Delta compares one benchmark between a baseline and a current report.
type Delta struct {
	Name         string  `json:"name"`
	Status       string  `json:"status"`
	BaseMedianNs float64 `json:"base_median_ns"`
	CurMedianNs  float64 `json:"cur_median_ns"`
	// TimeRatio is current/baseline median wall time (1.0 = unchanged).
	TimeRatio  float64 `json:"time_ratio"`
	BaseAllocs uint64  `json:"base_allocs_per_op"`
	CurAllocs  uint64  `json:"cur_allocs_per_op"`
}

// Compare evaluates cur against base: a benchmark regresses when its median
// wall time grows by more than warn (fraction, e.g. 0.10) or fail (e.g.
// 0.30). Allocation growth is held to the same ratios; because allocation
// counts are deterministic, an alloc regression at the warn ratio is already
// scored as a failure. Benchmarks present on only one side are reported as
// new/missing and never fail the comparison.
func Compare(base, cur *Report, warn, fail float64) []Delta {
	var out []Delta
	for i := range cur.Results {
		c := &cur.Results[i]
		b := base.find(c.Name)
		d := Delta{Name: c.Name, CurMedianNs: c.MedianNs, CurAllocs: c.AllocsPerOp}
		if b == nil {
			d.Status = StatusNew
			out = append(out, d)
			continue
		}
		d.BaseMedianNs = b.MedianNs
		d.BaseAllocs = b.AllocsPerOp
		if b.MedianNs > 0 {
			d.TimeRatio = c.MedianNs / b.MedianNs
		}
		d.Status = StatusOK
		switch {
		case d.TimeRatio > 1+fail:
			d.Status = StatusFail
		case allocRatio(c.AllocsPerOp, b.AllocsPerOp) > 1+warn:
			d.Status = StatusFail // deterministic metric: no noise excuse
		case d.TimeRatio > 1+warn:
			d.Status = StatusWarn
		}
		out = append(out, d)
	}
	for i := range base.Results {
		if cur.find(base.Results[i].Name) == nil {
			out = append(out, Delta{
				Name: base.Results[i].Name, Status: StatusMissing,
				BaseMedianNs: base.Results[i].MedianNs, BaseAllocs: base.Results[i].AllocsPerOp,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func allocRatio(cur, base uint64) float64 {
	if base == 0 {
		if cur == 0 {
			return 1
		}
		return 2 // from zero to something: treat as a failure-grade jump
	}
	return float64(cur) / float64(base)
}

// AnyFail reports whether any delta has fail status.
func AnyFail(deltas []Delta) bool {
	for _, d := range deltas {
		if d.Status == StatusFail {
			return true
		}
	}
	return false
}

// FormatDeltas renders the comparison as an aligned text table.
func FormatDeltas(w io.Writer, deltas []Delta) {
	fmt.Fprintf(w, "%-40s %-8s %12s %12s %8s %12s %12s\n",
		"benchmark", "status", "base-median", "cur-median", "time-x", "base-allocs", "cur-allocs")
	for _, d := range deltas {
		ratio := "-"
		if d.TimeRatio > 0 {
			ratio = fmt.Sprintf("%.3f", d.TimeRatio)
		}
		fmt.Fprintf(w, "%-40s %-8s %12s %12s %8s %12d %12d\n",
			d.Name, d.Status, fmtNs(d.BaseMedianNs), fmtNs(d.CurMedianNs), ratio, d.BaseAllocs, d.CurAllocs)
	}
}
