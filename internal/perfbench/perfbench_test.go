package perfbench

import (
	"bytes"
	"errors"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestRunStatisticsAndOrdering(t *testing.T) {
	var s Suite
	calls := 0
	s.Register("b-second", func() error {
		// Deterministic allocation signature: 100 heap objects per episode.
		for i := 0; i < 100; i++ {
			sink = append(sink, new(int64))
		}
		sink = sink[:0]
		return nil
	})
	s.Register("a-first", func() error { calls++; return nil })

	rep, err := s.Run(Options{Reps: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Warmup + 5 measured repetitions.
	if calls != 6 {
		t.Fatalf("benchmark ran %d times, want 6 (1 warmup + 5 reps)", calls)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(rep.Results))
	}
	// Results are sorted by name regardless of registration order.
	if rep.Results[0].Name != "a-first" || rep.Results[1].Name != "b-second" {
		t.Fatalf("results not sorted: %q, %q", rep.Results[0].Name, rep.Results[1].Name)
	}
	r := rep.Results[1]
	if r.Reps != 5 || len(r.SamplesNs) != 5 {
		t.Fatalf("reps=%d samples=%d, want 5/5", r.Reps, len(r.SamplesNs))
	}
	if r.P10Ns > r.MedianNs || r.MedianNs > r.P90Ns {
		t.Fatalf("quantiles out of order: p10=%v median=%v p90=%v", r.P10Ns, r.MedianNs, r.P90Ns)
	}
	if r.AllocsPerOp < 100 {
		t.Fatalf("allocs/op = %d, want >= 100 (the loop allocates 100 objects)", r.AllocsPerOp)
	}
}

var sink []*int64

func TestRunFilterAndError(t *testing.T) {
	var s Suite
	s.Register("keep/me", func() error { return nil })
	s.Register("drop/me", func() error { return errors.New("boom") })

	rep, err := s.Run(Options{Reps: 1, Filter: regexp.MustCompile(`^keep/`)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Name != "keep/me" {
		t.Fatalf("filter not applied: %+v", rep.Results)
	}
	if _, err := s.Run(Options{Reps: 1}); err == nil || !strings.Contains(err.Error(), "drop/me") {
		t.Fatalf("benchmark error not surfaced: %v", err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	var s Suite
	s.Register("x", func() error { return nil })
	s.Register("x", func() error { return nil })
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		q, want float64
	}{
		{0, 10}, {0.5, 30}, {1, 50}, {0.25, 20}, {0.1, 14},
	}
	for _, c := range cases {
		if got := quantile(sorted, c.q); got != c.want {
			t.Errorf("quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("quantile(empty) = %v, want 0", got)
	}
	if got := quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("quantile(single) = %v, want 7", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var s Suite
	s.Register("episode", func() error { return nil })
	rep, err := s.Run(Options{Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || len(back.Results) != 1 || back.Results[0].Name != "episode" {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if back.Results[0].MedianNs != rep.Results[0].MedianNs {
		t.Fatalf("median changed across round trip: %v != %v",
			back.Results[0].MedianNs, rep.Results[0].MedianNs)
	}
}

func mkReport(results ...Result) *Report {
	return &Report{Schema: Schema, Reps: 7, Results: results}
}

func TestCompareStatuses(t *testing.T) {
	base := mkReport(
		Result{Name: "same", MedianNs: 1000, AllocsPerOp: 50},
		Result{Name: "warn", MedianNs: 1000, AllocsPerOp: 50},
		Result{Name: "fail", MedianNs: 1000, AllocsPerOp: 50},
		Result{Name: "alloc-regress", MedianNs: 1000, AllocsPerOp: 50},
		Result{Name: "gone", MedianNs: 1000, AllocsPerOp: 50},
	)
	cur := mkReport(
		Result{Name: "same", MedianNs: 1050, AllocsPerOp: 50},
		Result{Name: "warn", MedianNs: 1200, AllocsPerOp: 50},
		Result{Name: "fail", MedianNs: 1400, AllocsPerOp: 50},
		// Time fine, but the deterministic alloc count grew past warn.
		Result{Name: "alloc-regress", MedianNs: 1000, AllocsPerOp: 60},
		Result{Name: "fresh", MedianNs: 1, AllocsPerOp: 1},
	)
	deltas := Compare(base, cur, 0.10, 0.30)
	want := map[string]string{
		"same":          StatusOK,
		"warn":          StatusWarn,
		"fail":          StatusFail,
		"alloc-regress": StatusFail,
		"fresh":         StatusNew,
		"gone":          StatusMissing,
	}
	if len(deltas) != len(want) {
		t.Fatalf("got %d deltas, want %d: %+v", len(deltas), len(want), deltas)
	}
	for _, d := range deltas {
		if d.Status != want[d.Name] {
			t.Errorf("%s: status %q, want %q", d.Name, d.Status, want[d.Name])
		}
	}
	if !AnyFail(deltas) {
		t.Error("AnyFail = false with failing deltas present")
	}
	var buf bytes.Buffer
	FormatDeltas(&buf, deltas)
	if !strings.Contains(buf.String(), "alloc-regress") {
		t.Errorf("formatted table missing a row:\n%s", buf.String())
	}

	okOnly := Compare(base, base, 0.10, 0.30)
	if AnyFail(okOnly) {
		t.Error("self-comparison reported a failure")
	}
}

// TestCompareOneSidedNeverFails pins the promise the status values exist
// for: a benchmark present on only one side — newly added, or retired —
// is reported (StatusNew / StatusMissing) but can never fail the gate, so
// adding or removing benchmarks does not require regenerating the baseline
// in the same change.
func TestCompareOneSidedNeverFails(t *testing.T) {
	base := mkReport(Result{Name: "retired", MedianNs: 1000, AllocsPerOp: 10})
	cur := mkReport(Result{Name: "added", MedianNs: 999_999, AllocsPerOp: 99})
	deltas := Compare(base, cur, 0.10, 0.30)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2: %+v", len(deltas), deltas)
	}
	for _, d := range deltas {
		if d.Status != StatusNew && d.Status != StatusMissing {
			t.Errorf("%s: status %q, want one-sided", d.Name, d.Status)
		}
	}
	if AnyFail(deltas) {
		t.Error("one-sided rows failed the comparison")
	}
}
