// Package shard provides the fan-out primitives of the sharded drain
// pipeline: a bounded worker pool and deterministic index partitioning.
//
// The pipeline's determinism argument does not rest on this package — every
// value a worker produces is slot-addressed (written to a caller-owned index
// of a pre-sized slice), so results are identical no matter which worker
// computes them or in what order workers finish. Run only bounds concurrency
// and joins.
package shard

import "sync"

// Run executes fn(w) for every w in [0, workers) and returns when all calls
// have finished. Worker 0 runs on the calling goroutine, so Run(1, fn) is an
// inline call with no goroutine or synchronisation cost.
func Run(workers int, fn func(worker int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	fn(0)
	wg.Wait()
}

// Cut returns worker w's half-open index range [lo, hi) of an n-item work
// list split as evenly as possible across workers (the first n%workers
// ranges are one longer). Ranges tile [0, n) exactly and depend only on
// (n, workers, w).
func Cut(n, workers, w int) (lo, hi int) {
	if workers <= 1 {
		return 0, n
	}
	size, rem := n/workers, n%workers
	lo = w*size + min(w, rem)
	hi = lo + size
	if w < rem {
		hi++
	}
	return lo, hi
}

// CutAligned is Cut with every boundary (except the final hi = n) rounded
// down to a multiple of align, so units of align items are never split
// across workers. Callers whose work has intra-group dependencies (e.g. the
// DLM second-level MAC over each group of eight first-level MACs) use this
// to keep whole groups inside one worker's range.
func CutAligned(n, workers, w, align int) (lo, hi int) {
	if workers <= 1 || align <= 1 {
		return Cut(n, workers, w)
	}
	groups := (n + align - 1) / align
	glo, ghi := Cut(groups, workers, w)
	lo, hi = min(glo*align, n), min(ghi*align, n)
	return lo, hi
}
