package shard

import (
	"sync/atomic"
	"testing"
)

// TestCutTilesExactly pins that Cut partitions [0, n) into disjoint ranges
// that cover every index exactly once, for awkward n/worker combinations.
func TestCutTilesExactly(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 63, 64, 65, 1000} {
		for _, workers := range []int{1, 2, 3, 8, 16, 100} {
			seen := make([]int, n)
			prevHi := 0
			for w := 0; w < workers; w++ {
				lo, hi := Cut(n, workers, w)
				if lo != prevHi {
					t.Fatalf("n=%d workers=%d w=%d: lo=%d, want contiguous %d", n, workers, w, lo, prevHi)
				}
				for i := lo; i < hi; i++ {
					seen[i]++
				}
				prevHi = hi
			}
			if prevHi != n {
				t.Fatalf("n=%d workers=%d: ranges end at %d, want %d", n, workers, prevHi, n)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d covered %d times", n, workers, i, c)
				}
			}
		}
	}
}

// TestCutAlignedBoundaries pins the alignment guarantee: no boundary except
// the final one splits an align-sized group.
func TestCutAlignedBoundaries(t *testing.T) {
	for _, n := range []int{0, 1, 8, 57, 64, 257, 1000} {
		for _, workers := range []int{1, 2, 3, 8, 16} {
			prevHi := 0
			for w := 0; w < workers; w++ {
				lo, hi := CutAligned(n, workers, w, 8)
				if lo != prevHi {
					t.Fatalf("n=%d workers=%d w=%d: lo=%d, want %d", n, workers, w, lo, prevHi)
				}
				if lo%8 != 0 && lo != n {
					t.Fatalf("n=%d workers=%d w=%d: lo=%d not 8-aligned", n, workers, w, lo)
				}
				if hi%8 != 0 && hi != n {
					t.Fatalf("n=%d workers=%d w=%d: hi=%d neither 8-aligned nor n", n, workers, w, hi)
				}
				prevHi = hi
			}
			if prevHi != n {
				t.Fatalf("n=%d workers=%d: ranges end at %d, want %d", n, workers, prevHi, n)
			}
		}
	}
}

// TestCutAlignedDegenerate pins the n == 0 and n < align boundaries: the
// whole (partial) group goes to worker 0 and every other worker is empty.
func TestCutAlignedDegenerate(t *testing.T) {
	for w := 0; w < 4; w++ {
		if lo, hi := CutAligned(0, 4, w, 8); lo != 0 || hi != 0 {
			t.Fatalf("n=0 w=%d: [%d,%d), want empty", w, lo, hi)
		}
	}
	for w := 0; w < 4; w++ {
		lo, hi := CutAligned(3, 4, w, 8)
		if w == 0 && (lo != 0 || hi != 3) {
			t.Fatalf("n<align w=0: [%d,%d), want [0,3)", lo, hi)
		}
		if w > 0 && lo != hi {
			t.Fatalf("n<align w=%d: [%d,%d), want empty", w, lo, hi)
		}
		if lo == hi && w > 0 && lo != 3 {
			t.Fatalf("n<align w=%d: empty range at %d, want pinned to n", w, lo)
		}
	}
}

// TestRunCoversAllWorkers pins that Run invokes every worker exactly once
// and joins before returning.
func TestRunCoversAllWorkers(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var calls int64
		hit := make([]int64, workers)
		Run(workers, func(w int) {
			atomic.AddInt64(&calls, 1)
			atomic.AddInt64(&hit[w], 1)
		})
		if calls != int64(workers) {
			t.Fatalf("workers=%d: %d calls", workers, calls)
		}
		for w, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: worker %d called %d times", workers, w, h)
			}
		}
	}
}
