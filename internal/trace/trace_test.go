package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/mem"
)

func TestRecorderCapturesAccesses(t *testing.T) {
	c := mem.NewController(mem.DefaultConfig())
	r := NewRecorder(0)
	c.AddObserver(r)
	c.Write(0, 0x1000, mem.Block{}, mem.CatData)
	c.Read(0, 0x1000, mem.CatCounter)
	if r.Len() != 2 {
		t.Fatalf("recorded %d events, want 2", r.Len())
	}
	ev := r.Events()
	if ev[0].Kind != KindWrite || ev[0].Addr != 0x1000 || ev[0].Category != "data" {
		t.Errorf("first event wrong: %+v", ev[0])
	}
	if ev[1].Kind != KindRead || ev[1].Category != "counter" {
		t.Errorf("second event wrong: %+v", ev[1])
	}
	if ev[0].Seq >= ev[1].Seq {
		t.Error("sequence not monotonic")
	}
	if ev[0].Time <= 0 {
		t.Error("completion time missing")
	}
}

func TestRecorderLimitAndDropCount(t *testing.T) {
	c := mem.NewController(mem.DefaultConfig())
	r := NewRecorder(3)
	c.AddObserver(r)
	for i := 0; i < 10; i++ {
		c.Write(0, uint64(i)*64, mem.Block{}, mem.CatData)
	}
	if r.Len() != 3 {
		t.Errorf("retained %d, want 3", r.Len())
	}
	if r.Dropped() != 7 {
		t.Errorf("dropped %d, want 7", r.Dropped())
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder(0)
	r.OnAccess("write", 505000, 0x40, "chv-data")
	r.OnAccess("read", 660000, 0x80, "recovery")
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d, want 4 (header + 2 + summary)", len(lines))
	}
	if lines[0] != "seq,time_ps,kind,addr,category" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "write") || !strings.Contains(lines[1], "0x40") || !strings.Contains(lines[1], "chv-data") {
		t.Errorf("row = %q", lines[1])
	}
	if lines[3] != "# events=2 dropped=0" {
		t.Errorf("summary row = %q, want \"# events=2 dropped=0\"", lines[3])
	}
}

func TestWriteCSVSummaryRecordsDropped(t *testing.T) {
	r := NewRecorder(1)
	r.OnAccess("write", 1, 0, "data")
	r.OnAccess("write", 2, 64, "data")
	r.OnAccess("write", 3, 128, "data")
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(strings.TrimSpace(b.String()), "# events=1 dropped=2") {
		t.Errorf("missing drop count in summary: %q", b.String())
	}
}

func TestWriteJSONL(t *testing.T) {
	r := NewRecorder(2)
	r.OnAccess("write", 505000, 0x40, "chv-data")
	r.OnAccess("read", 660000, 0x80, "recovery")
	r.OnAccess("read", 700000, 0xC0, "recovery") // dropped
	var b strings.Builder
	if err := r.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("jsonl lines = %d, want 3 (2 events + summary)", len(lines))
	}
	var ev struct {
		Seq      int64  `json:"seq"`
		TimePs   int64  `json:"time_ps"`
		Kind     string `json:"kind"`
		Addr     string `json:"addr"`
		Category string `json:"category"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not valid JSON: %v", err)
	}
	if ev.Seq != 1 || ev.TimePs != 505000 || ev.Kind != "write" || ev.Addr != "0x40" || ev.Category != "chv-data" {
		t.Errorf("first event = %+v", ev)
	}
	var sum struct {
		Summary bool  `json:"summary"`
		Events  int   `json:"events"`
		Dropped int64 `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(lines[2]), &sum); err != nil {
		t.Fatalf("summary not valid JSON: %v", err)
	}
	if !sum.Summary || sum.Events != 2 || sum.Dropped != 1 {
		t.Errorf("summary = %+v, want {true 2 1}", sum)
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder(1)
	r.OnAccess("write", 1, 0, "data")
	r.OnAccess("write", 2, 0, "data")
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Error("Reset incomplete")
	}
	r.OnAccess("read", 3, 0, "data")
	if r.Events()[0].Seq != 1 {
		t.Error("sequence not restarted")
	}
}

func TestObserverClearable(t *testing.T) {
	c := mem.NewController(mem.DefaultConfig())
	r := NewRecorder(0)
	c.AddObserver(r)
	c.Write(0, 0, mem.Block{}, mem.CatData)
	c.RemoveObserver(r)
	c.Write(0, 64, mem.Block{}, mem.CatData)
	if r.Len() != 1 {
		t.Error("observer kept recording after removal")
	}
}
