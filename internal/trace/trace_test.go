package trace

import (
	"strings"
	"testing"

	"repro/internal/mem"
)

func TestRecorderCapturesAccesses(t *testing.T) {
	c := mem.NewController(mem.DefaultConfig())
	r := NewRecorder(0)
	c.SetObserver(r)
	c.Write(0, 0x1000, mem.Block{}, mem.CatData)
	c.Read(0, 0x1000, mem.CatCounter)
	if r.Len() != 2 {
		t.Fatalf("recorded %d events, want 2", r.Len())
	}
	ev := r.Events()
	if ev[0].Kind != KindWrite || ev[0].Addr != 0x1000 || ev[0].Category != "data" {
		t.Errorf("first event wrong: %+v", ev[0])
	}
	if ev[1].Kind != KindRead || ev[1].Category != "counter" {
		t.Errorf("second event wrong: %+v", ev[1])
	}
	if ev[0].Seq >= ev[1].Seq {
		t.Error("sequence not monotonic")
	}
	if ev[0].Time <= 0 {
		t.Error("completion time missing")
	}
}

func TestRecorderLimitAndDropCount(t *testing.T) {
	c := mem.NewController(mem.DefaultConfig())
	r := NewRecorder(3)
	c.SetObserver(r)
	for i := 0; i < 10; i++ {
		c.Write(0, uint64(i)*64, mem.Block{}, mem.CatData)
	}
	if r.Len() != 3 {
		t.Errorf("retained %d, want 3", r.Len())
	}
	if r.Dropped() != 7 {
		t.Errorf("dropped %d, want 7", r.Dropped())
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder(0)
	r.OnAccess("write", 505000, 0x40, "chv-data")
	r.OnAccess("read", 660000, 0x80, "recovery")
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3 (header + 2)", len(lines))
	}
	if lines[0] != "seq,time_ps,kind,addr,category" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "write") || !strings.Contains(lines[1], "0x40") || !strings.Contains(lines[1], "chv-data") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder(1)
	r.OnAccess("write", 1, 0, "data")
	r.OnAccess("write", 2, 0, "data")
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Error("Reset incomplete")
	}
	r.OnAccess("read", 3, 0, "data")
	if r.Events()[0].Seq != 1 {
		t.Error("sequence not restarted")
	}
}

func TestObserverClearable(t *testing.T) {
	c := mem.NewController(mem.DefaultConfig())
	r := NewRecorder(0)
	c.SetObserver(r)
	c.Write(0, 0, mem.Block{}, mem.CatData)
	c.SetObserver(nil)
	c.Write(0, 64, mem.Block{}, mem.CatData)
	if r.Len() != 1 {
		t.Error("observer kept recording after removal")
	}
}
