// Package trace records the memory-access stream of a simulation as
// structured events and exports it as CSV, for debugging drain behaviour
// and for offline analysis (e.g. plotting the paper's figures from raw
// events instead of aggregated counters).
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/sim"
)

// Kind is the event type.
type Kind string

// Event kinds.
const (
	KindRead  Kind = "read"
	KindWrite Kind = "write"
)

// Event is one recorded memory access.
type Event struct {
	Seq      int64    // issue order
	Time     sim.Time // completion time
	Kind     Kind
	Addr     uint64
	Category string // the Fig. 6/12 access category
}

// Recorder accumulates events up to a limit (0 = unlimited). It implements
// mem.Observer.
type Recorder struct {
	limit   int
	dropped int64
	events  []Event
	seq     int64
}

// NewRecorder returns a recorder keeping at most limit events
// (0 = unlimited).
func NewRecorder(limit int) *Recorder {
	return &Recorder{limit: limit}
}

// OnAccess records one access; extra events past the limit are counted as
// dropped rather than silently ignored.
func (r *Recorder) OnAccess(kind string, done sim.Time, addr uint64, category string) {
	r.seq++
	if r.limit > 0 && len(r.events) >= r.limit {
		r.dropped++
		return
	}
	r.events = append(r.events, Event{
		Seq:      r.seq,
		Time:     done,
		Kind:     Kind(kind),
		Addr:     addr,
		Category: category,
	})
}

// Events returns the recorded events in issue order.
func (r *Recorder) Events() []Event { return r.events }

// Dropped returns how many events were discarded due to the limit.
func (r *Recorder) Dropped() int64 { return r.dropped }

// Len returns the number of retained events.
func (r *Recorder) Len() int { return len(r.events) }

// Reset clears the recorder.
func (r *Recorder) Reset() {
	r.events = nil
	r.seq = 0
	r.dropped = 0
}

// WriteCSV writes "seq,time_ps,kind,addr,category" rows with a header.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seq", "time_ps", "kind", "addr", "category"}); err != nil {
		return err
	}
	for _, e := range r.events {
		rec := []string{
			strconv.FormatInt(e.Seq, 10),
			strconv.FormatInt(int64(e.Time), 10),
			string(e.Kind),
			fmt.Sprintf("0x%x", e.Addr),
			e.Category,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
