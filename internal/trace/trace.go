// Package trace records the memory-access stream of a simulation as
// structured events and exports it as CSV, for debugging drain behaviour
// and for offline analysis (e.g. plotting the paper's figures from raw
// events instead of aggregated counters).
package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/sim"
)

// Kind is the event type.
type Kind string

// Event kinds.
const (
	KindRead  Kind = "read"
	KindWrite Kind = "write"
)

// Event is one recorded memory access.
type Event struct {
	Seq      int64    // issue order
	Time     sim.Time // completion time
	Kind     Kind
	Addr     uint64
	Category string // the Fig. 6/12 access category
}

// Recorder accumulates events up to a limit (0 = unlimited). It implements
// mem.Observer.
type Recorder struct {
	limit   int
	dropped int64
	events  []Event
	seq     int64
}

// NewRecorder returns a recorder keeping at most limit events
// (0 = unlimited).
func NewRecorder(limit int) *Recorder {
	return &Recorder{limit: limit}
}

// OnAccess records one access; extra events past the limit are counted as
// dropped rather than silently ignored.
func (r *Recorder) OnAccess(kind string, done sim.Time, addr uint64, category string) {
	r.seq++
	if r.limit > 0 && len(r.events) >= r.limit {
		r.dropped++
		return
	}
	r.events = append(r.events, Event{
		Seq:      r.seq,
		Time:     done,
		Kind:     Kind(kind),
		Addr:     addr,
		Category: category,
	})
}

// Events returns the recorded events in issue order.
func (r *Recorder) Events() []Event { return r.events }

// Dropped returns how many events were discarded due to the limit.
func (r *Recorder) Dropped() int64 { return r.dropped }

// Len returns the number of retained events.
func (r *Recorder) Len() int { return len(r.events) }

// Reset clears the recorder.
func (r *Recorder) Reset() {
	r.events = nil
	r.seq = 0
	r.dropped = 0
}

// WriteCSV writes "seq,time_ps,kind,addr,category" rows with a header,
// followed by a trailing comment row recording how many events were
// retained and how many the limit dropped, so a truncated trace is
// distinguishable from a complete one.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seq", "time_ps", "kind", "addr", "category"}); err != nil {
		return err
	}
	for _, e := range r.events {
		rec := []string{
			strconv.FormatInt(e.Seq, 10),
			strconv.FormatInt(int64(e.Time), 10),
			string(e.Kind),
			fmt.Sprintf("0x%x", e.Addr),
			e.Category,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "# events=%d dropped=%d\n", len(r.events), r.dropped)
	return err
}

// jsonlEvent is the JSONL wire form of an Event.
type jsonlEvent struct {
	Seq      int64  `json:"seq"`
	TimePs   int64  `json:"time_ps"`
	Kind     string `json:"kind"`
	Addr     string `json:"addr"`
	Category string `json:"category"`
}

// jsonlSummary is the final line of a JSONL trace.
type jsonlSummary struct {
	Summary bool  `json:"summary"`
	Events  int   `json:"events"`
	Dropped int64 `json:"dropped"`
}

// WriteJSONL writes one JSON object per event, terminated by a summary
// object ({"summary":true,...}) carrying the retained and dropped counts.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range r.events {
		je := jsonlEvent{
			Seq:      e.Seq,
			TimePs:   int64(e.Time),
			Kind:     string(e.Kind),
			Addr:     fmt.Sprintf("0x%x", e.Addr),
			Category: e.Category,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	if err := enc.Encode(jsonlSummary{Summary: true, Events: len(r.events), Dropped: r.dropped}); err != nil {
		return err
	}
	return bw.Flush()
}
