package secmem

import "fmt"

// ErrorKind classifies an integrity failure.
type ErrorKind int

// Error kinds.
const (
	// KindTamper: stored content does not match its MAC / parent entry.
	KindTamper ErrorKind = iota
	// KindReplay: content verifies against a stale counter or stale entry,
	// detected as a mismatch under the current freshness state.
	KindReplay
	// KindSplice: content moved between addresses/slots.
	KindSplice
)

var kindNames = map[ErrorKind]string{
	KindTamper: "tamper", KindReplay: "replay", KindSplice: "splice",
}

// String names the kind.
func (k ErrorKind) String() string { return kindNames[k] }

// IntegrityError reports a failed verification. All three attack classes
// surface as MAC mismatches; Kind records the checker's best classification
// for diagnostics.
type IntegrityError struct {
	Kind   ErrorKind
	Addr   uint64
	Level  int
	Index  uint64
	Detail string
}

// Error implements the error interface.
func (e *IntegrityError) Error() string {
	return fmt.Sprintf("secmem: integrity violation (%s) at %#x (level %d, index %d): %s",
		e.Kind, e.Addr, e.Level, e.Index, e.Detail)
}
