package secmem

import (
	"repro/internal/cme"
	"repro/internal/hierarchy"
	"repro/internal/mem"
	"repro/internal/shard"
)

// Drain hints: the baseline drains' half of the sharded pipeline
// (DESIGN.md §13).
//
// The baseline secure drain pushes every dirty line through WriteBlock,
// whose crypto depends on the block's post-increment counter — state the
// write path itself computes. To fan that crypto out ahead of the serial
// replay, PrecomputeDrainHints speculates each counter with a cheap serial
// pre-pass over the *logical* metadata state (the same state WriteBlock
// reads: dirty-line table first, NVM content otherwise), tracking pending
// increments per counter block so the i-th drained write sees the counter
// it will actually produce. The shard engines then seal every block —
// OTP + encrypt + data MAC — in parallel.
//
// Consumption is verified: WriteBlock takes the next hint only when its
// address matches the write and its speculated counter equals the counter
// the timed path just computed. A mis-speculation (possible in principle if
// an injected fault corrupts a persisted counter block that is later
// re-fetched mid-drain) therefore costs one wasted hint and an inline
// recompute — it can never change a byte of output. The timed operations
// (engine issue slots, bank reservations) are identical with or without a
// hint, so timing, counters and traces are byte-identical at any shard
// count.

// DrainHint is the precomputed seal of one anticipated baseline drain
// write: the speculated post-increment counter and the ciphertext and data
// MAC derived from it.
type DrainHint struct {
	Addr    uint64
	Counter uint64
	CT      mem.Block
	MAC     cme.MAC
}

// PrecomputeDrainHints speculates the post-increment counter of every block
// in drain order and seals the blocks across the given shard-owned engines.
// The returned slice is positional: hint i belongs to the i-th WriteBlock
// of the drain.
func (c *Controller) PrecomputeDrainHints(blocks []hierarchy.DirtyBlock, engines []*cme.Engine) []DrainHint {
	hints := make([]DrainHint, len(blocks))
	pending := make(map[uint64]*cme.CounterBlock)
	for i := range blocks {
		addr := blocks[i].Addr
		ctrAddr := c.lay.CounterBlockAddr(addr)
		cb := pending[ctrAddr]
		if cb == nil {
			decoded := cme.DecodeCounterBlock(c.logicalRead(ctrAddr))
			cb = &decoded
			pending[ctrAddr] = cb
		}
		// Mirror WriteBlock's increment exactly, overflow re-basing
		// included: the pending copy evolves the way the dirty-line table
		// will once the replay reaches this write.
		slot := cme.CounterIndex(addr)
		cb.Increment(slot)
		hints[i] = DrainHint{Addr: addr, Counter: cb.Counter(slot)}
	}
	workers := len(engines)
	shard.Run(workers, func(w int) {
		lo, hi := shard.Cut(len(blocks), workers, w)
		eng := engines[w]
		for i := lo; i < hi; i++ {
			h := &hints[i]
			h.CT = eng.Encrypt(h.Addr, h.Counter, blocks[i].Data)
			h.MAC = eng.DataMAC(h.Addr, h.Counter, h.CT)
		}
	})
	return hints
}

// SetDrainHints installs a positional hint stream for the drain about to
// replay; the cursor starts at the first hint and the consumption stats
// reset.
func (c *Controller) SetDrainHints(hints []DrainHint) {
	c.drainHints = hints
	c.drainHintNext = 0
	c.drainHintsUsed = 0
	c.drainHintsRejected = 0
}

// ClearDrainHints removes any installed hint stream (run-time writes after
// the drain must never consume drain hints).
func (c *Controller) ClearDrainHints() {
	c.drainHints = nil
	c.drainHintNext = 0
}

// takeDrainHint returns the next hint if it matches this write's address
// and actually-computed counter. An address mismatch leaves the cursor in
// place (the stream is out of sync; stop consuming); a counter mismatch
// consumes the hint but rejects it, forcing the inline recompute.
func (c *Controller) takeDrainHint(addr, counter uint64) *DrainHint {
	if c.drainHintNext >= len(c.drainHints) {
		return nil
	}
	h := &c.drainHints[c.drainHintNext]
	if h.Addr != addr {
		return nil
	}
	c.drainHintNext++
	if h.Counter != counter {
		c.drainHintsRejected++
		return nil
	}
	c.drainHintsUsed++
	return h
}

// DrainHintStats reports how the last installed hint stream fared: hints
// whose speculated counter matched the replay (used) and hints consumed but
// rejected by the counter check. used+rejected < len(hints) means the
// stream desynchronised and consumption stopped early.
func (c *Controller) DrainHintStats() (used, rejected int64) {
	return c.drainHintsUsed, c.drainHintsRejected
}
