package secmem

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/bmt"
	"repro/internal/cme"
	"repro/internal/mem"
	"repro/internal/shard"
	"repro/internal/sim"
)

// VaultLine is one metadata-cache line captured in the vault.
type VaultLine struct {
	Addr    uint64
	Content mem.Block
}

// VaultRecord is the persistent-register state left by a lazy metadata
// flush: the number of vaulted lines and the root MAC of the small tree
// protecting them. It survives the crash on-chip and anchors recovery.
type VaultRecord struct {
	Count int
	Root  cme.MAC
	// Parity records that the flush appended leaf-MAC and XOR-parity
	// blocks (Soteria-style resilience, cited §I/[38]): recovery can then
	// repair a single corrupted vault block per 8-block group instead of
	// refusing.
	Parity bool
}

// vaultPayloadBlocks returns how many payload blocks (lines + packed
// address blocks) a vault with count lines occupies.
func vaultPayloadBlocks(count int) int { return count + (count+7)/8 }

// VaultLayout describes where the optional resilience blocks sit: payload
// first, then ceil(T/8) leaf-MAC blocks, then ceil(T/8) parity blocks.
func vaultParityLayout(count int) (payload, groups int) {
	payload = vaultPayloadBlocks(count)
	groups = (payload + 7) / 8
	return payload, groups
}

// FlushMetadataCaches drains the security-metadata caches at the end of an
// EPD drain (§IV-B).
//
// Under the eager scheme the tree root register is always current, so dirty
// lines are simply written back to their home locations.
//
// Under the lazy scheme, in-place write-back would require propagating
// every update to the root; instead the dirty lines are written to a
// reserved vault region together with their addresses, protected by a small
// eagerly-built integrity tree whose root stays in a persistent on-chip
// register (the Anubis approach the paper adopts).
func (c *Controller) FlushMetadataCaches(now sim.Time) (VaultRecord, sim.Time) {
	if c.cfg.Scheme == EagerUpdate {
		return VaultRecord{}, c.flushInPlace(now)
	}
	return c.flushToVault(now)
}

// flushInPlace writes every dirty metadata line to its home address.
func (c *Controller) flushInPlace(now sim.Time) sim.Time {
	c.nvm.MarkStage("meta:in-place")
	t := now
	for _, line := range c.dirtyLinesOrdered() {
		done := c.nvm.Write(now, line.Addr, line.Content, mem.CatMetaFlush)
		t = sim.MaxTime(t, done)
		c.cleanLine(line.Addr)
	}
	return t
}

// flushToVault writes dirty lines and their addresses to the vault region
// and computes the protecting small-tree root. With Config.VaultParity it
// also appends per-block leaf MACs and XOR parity so recovery can repair a
// single corrupted block per group.
func (c *Controller) flushToVault(now sim.Time) (VaultRecord, sim.Time) {
	lines := c.dirtyLinesOrdered()
	need := uint64(vaultPayloadBlocks(len(lines)))
	if c.cfg.VaultParity {
		_, groups := vaultParityLayout(len(lines))
		need += 2 * uint64(groups)
	}
	if need > c.lay.VaultBlocks {
		panic(fmt.Sprintf("secmem: vault capacity %d too small for %d blocks", c.lay.VaultBlocks, need))
	}
	// The payload is a pure function of the dirty lines, so it — and, under
	// the sharded pipeline, the leaf MACs over it — can be built before any
	// timed write is issued.
	vaultContent := vaultPayload(lines)
	leaves := c.precomputeVaultLeaves(vaultContent)
	c.nvm.MarkStage("meta:vault-payload")
	t := now
	// Content blocks first, then packed address blocks. Note the cached
	// lines are NOT cleaned: their newest value is persistent in the vault,
	// not at their home address, so the volatile dirty state must stand
	// until power is lost (recovery re-installs it from the vault).
	for i, blk := range vaultContent {
		done := c.nvm.Write(now, c.lay.VaultAddr(uint64(i)), blk, mem.CatMetaFlush)
		t = sim.MaxTime(t, done)
	}
	var tMac sim.Time = t
	root := computeVaultRootPre(c.eng, vaultContent, leaves, func() {
		tMac = c.issueMAC(tMac, MACMetaProtect)
	})
	t = sim.MaxTime(t, tMac)

	rec := VaultRecord{Count: len(lines), Root: root}
	if c.cfg.VaultParity {
		c.nvm.MarkStage("meta:vault-parity")
		payload, groups := vaultParityLayout(len(lines))
		// Leaf-MAC blocks: 8 per block, positions payload..payload+groups.
		for g := 0; g < groups; g++ {
			var macs []cme.MAC
			for i := g * 8; i < (g+1)*8 && i < payload; i++ {
				tMac = c.issueMAC(tMac, MACMetaProtect)
				if leaves != nil {
					macs = append(macs, leaves[i])
				} else {
					macs = append(macs, c.eng.NodeMAC(1<<20, uint64(i), vaultContent[i]))
				}
			}
			done := c.nvm.Write(now, c.lay.VaultAddr(uint64(payload+g)), cme.PackMACs(macs), mem.CatMetaFlush)
			t = sim.MaxTime(t, sim.MaxTime(done, tMac))
		}
		// Parity blocks: XOR of each group, positions payload+groups.. .
		for g := 0; g < groups; g++ {
			var p mem.Block
			for i := g * 8; i < (g+1)*8 && i < payload; i++ {
				for k := range p {
					p[k] ^= vaultContent[i][k]
				}
			}
			done := c.nvm.Write(now, c.lay.VaultAddr(uint64(payload+groups+g)), p, mem.CatMetaFlush)
			t = sim.MaxTime(t, done)
		}
		rec.Parity = true
	}
	return rec, t
}

// dirtyLinesOrdered snapshots every dirty metadata line across the three
// caches in a deterministic order (by address).
func (c *Controller) dirtyLinesOrdered() []VaultLine {
	var out []VaultLine
	for addr, content := range c.dirtyLine {
		out = append(out, VaultLine{Addr: addr, Content: content})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// cleanLine clears the dirty state of a metadata line after it has been
// made persistent (in place or in the vault).
func (c *Controller) cleanLine(addr uint64) {
	delete(c.dirtyLine, addr)
	level, _, isNode := c.lay.Coord(addr)
	switch {
	case isNode:
		c.cacheFor(level).Clean(addr)
	case c.lay.RegionOf(addr) == bmt.RegionMAC:
		c.macCache.Clean(addr)
	default:
		panic(fmt.Sprintf("secmem: cleaning unexpected address %#x", addr))
	}
}

// ReinstallMetadata restores vaulted lines into the metadata caches as
// dirty content, recreating the pre-crash logical state. It is the
// recovery-side counterpart of flushToVault; verification of the vault
// content happens in the recovery package before this is called.
func (c *Controller) ReinstallMetadata(lines []VaultLine) {
	for _, line := range lines {
		level, _, isNode := c.lay.Coord(line.Addr)
		var ca = c.macCache
		if isNode {
			ca = c.cacheFor(level)
		} else if c.lay.RegionOf(line.Addr) != bmt.RegionMAC {
			panic(fmt.Sprintf("secmem: reinstalling unexpected address %#x", line.Addr))
		}
		if ca.Contains(line.Addr) {
			c.markDirty(ca, line.Addr, line.Content)
			continue
		}
		c.insertLine(0, ca, line.Addr, true, line.Content)
	}
}

// vaultPayload builds the serial vault payload of a lazy metadata flush:
// the dirty lines' content followed by their addresses packed eight per
// block. Pure: depends only on the ordered line snapshot.
func vaultPayload(lines []VaultLine) []mem.Block {
	addrBlocks := (len(lines) + 7) / 8
	out := make([]mem.Block, 0, len(lines)+addrBlocks)
	for _, line := range lines {
		out = append(out, line.Content)
	}
	for bi := 0; bi < addrBlocks; bi++ {
		var blk mem.Block
		for s := 0; s < 8 && bi*8+s < len(lines); s++ {
			binary.LittleEndian.PutUint64(blk[s*8:(s+1)*8], lines[bi*8+s].Addr)
		}
		out = append(out, blk)
	}
	return out
}

// VaultPayloadBlocks returns the serial vault payload a lazy metadata flush
// would write right now — the work list the per-shard partition property
// tests compare against.
func (c *Controller) VaultPayloadBlocks() []mem.Block {
	return vaultPayload(c.dirtyLinesOrdered())
}

// ShardVaultWork partitions the vault payload slots [0, payload) into
// per-shard work lists by bank ownership: slot s belongs to the shard that
// owns its vault address's bank, mem.BankOf(lay.VaultAddr(s), shards). The
// lists are deterministic (slots ascend within each list), disjoint, and
// their union is exactly the serial payload slot sequence — the property
// TestShardVaultWorkPartition pins across all five schemes.
func ShardVaultWork(lay *bmt.Layout, payload, shards int) [][]uint64 {
	lists := make([][]uint64, shards)
	for s := 0; s < payload; s++ {
		b := mem.BankOf(lay.VaultAddr(uint64(s)), shards)
		lists[b] = append(lists[b], uint64(s))
	}
	return lists
}

// vaultShardMinBlocks is the fan-out threshold of the vault leaf MACs;
// below it the pool setup outweighs the hashing.
const vaultShardMinBlocks = 32

// precomputeVaultLeaves computes the vault payload's leaf MACs across the
// drain pipeline's shard engines, each shard walking its per-bank work
// list. Returns nil (inline computation) without shard engines or for
// small vaults; the computed bytes are identical either way.
func (c *Controller) precomputeVaultLeaves(content []mem.Block) []cme.MAC {
	workers := len(c.shardEngines)
	if workers <= 1 || len(content) < vaultShardMinBlocks {
		return nil
	}
	leaves := make([]cme.MAC, len(content))
	work := ShardVaultWork(c.lay, len(content), workers)
	shard.Run(workers, func(w int) {
		eng := c.shardEngines[w]
		for _, slot := range work[w] {
			leaves[slot] = eng.NodeMAC(1<<20, slot, content[slot])
		}
	})
	return leaves
}

// ComputeVaultRoot builds the small eager integrity tree over the vault
// blocks (8-ary, as Table I's "Merkle Tree over secure cache") and returns
// its root MAC. onMAC is invoked once per MAC computation so callers can
// charge engines/counters.
func ComputeVaultRoot(eng *cme.Engine, blocks []mem.Block, onMAC func()) cme.MAC {
	return computeVaultRootPre(eng, blocks, nil, onMAC)
}

// computeVaultRootPre is ComputeVaultRoot with optionally precomputed leaf
// MACs (leaves[i] for block i, computed on the shard engines); onMAC is
// still charged once per leaf so timing and counters never depend on the
// shard count.
func computeVaultRootPre(eng *cme.Engine, blocks []mem.Block, leaves []cme.MAC, onMAC func()) cme.MAC {
	if len(blocks) == 0 {
		return cme.MAC{}
	}
	// Leaf level: one MAC per vault block, bound to its position.
	level := make([]cme.MAC, len(blocks))
	for i, b := range blocks {
		onMAC()
		if leaves != nil {
			level[i] = leaves[i]
		} else {
			level[i] = eng.NodeMAC(1<<20, uint64(i), b)
		}
	}
	tag := uint64(1)
	for len(level) > 1 {
		next := make([]cme.MAC, 0, (len(level)+7)/8)
		for i := 0; i < len(level); i += 8 {
			end := i + 8
			if end > len(level) {
				end = len(level)
			}
			onMAC()
			next = append(next, eng.MACOverMACs(tag<<32|uint64(i/8), level[i:end]))
		}
		level = next
		tag++
	}
	return level[0]
}
