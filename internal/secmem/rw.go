package secmem

import (
	"repro/internal/cme"
	"repro/internal/mem"
	"repro/internal/sim"
)

// WriteBlock performs a secure write of one plaintext block to its home
// address: fetch + verify the counter block, advance the counter (handling
// minor-counter overflow with a region re-encryption), update the tree
// (eagerly or lazily), update the data MAC, encrypt and write the
// ciphertext. This is the run-time write path and also the per-line path
// the baseline secure EPD drains use (Fig. 8 part B).
func (c *Controller) WriteBlock(now sim.Time, addr uint64, plain mem.Block) (sim.Time, error) {
	ctrAddr := c.lay.CounterBlockAddr(addr)
	ctrIndex := c.lay.CounterBlockIndex(addr)
	raw, t, err := c.ensureNode(now, 0, ctrIndex)
	if err != nil {
		return t, err
	}
	cb := cme.DecodeCounterBlock(raw)
	old := cb
	slot := cme.CounterIndex(addr)
	overflowed := cb.Increment(slot)
	newRaw := cb.Encode()
	c.markDirty(c.ctrCache, ctrAddr, newRaw)

	if n := c.cfg.OsirisStopLoss; n > 0 && (overflowed || cb.Counter(slot)%uint64(n) == 0) {
		// Osiris stop-loss: persist the counter block so the NVM copy
		// never lags the truth by more than n increments (overflows always
		// persist, since they re-base every counter in the region). The
		// line stays dirty-tracked so the lazy tree-update invariant
		// (parent entry matches persisted child at eviction time) is
		// preserved; the extra write is the price of vault-free
		// recoverability.
		t = c.nvm.Write(t, ctrAddr, newRaw, mem.CatCounter)
		c.osirisPersists++
	}

	if overflowed {
		if t, err = c.reencryptRegion(t, addr, &old, &cb); err != nil {
			return t, err
		}
	}

	if c.cfg.Scheme == EagerUpdate {
		if t, err = c.propagateEager(t, 0, ctrIndex, newRaw); err != nil {
			return t, err
		}
	}

	// Encrypt: the OTP depends on the (new) counter. A verified drain hint
	// (drainhints.go) carries the same bytes precomputed on a shard engine;
	// the engine issue slots are charged identically either way.
	counter := cb.Counter(slot)
	hint := c.takeDrainHint(addr, counter)
	tAES := c.issueAES(t)
	var ct mem.Block
	if hint != nil {
		ct = hint.CT
	} else {
		ct = c.eng.Encrypt(addr, counter, plain)
	}

	// Data MAC over (address, counter, ciphertext), stored in its MAC block.
	macBlockAddr := c.lay.MACBlockAddr(addr)
	macBlk, t2 := c.ensureMACBlock(t, macBlockAddr)
	tMAC := c.issueMAC(sim.MaxTime(tAES, t2), MACData)
	var m cme.MAC
	if hint != nil {
		m = hint.MAC
	} else {
		m = c.eng.DataMAC(addr, counter, ct)
	}
	setEntry(&macBlk, cme.MACSlot(addr), m)
	c.markDirty(c.macCache, macBlockAddr, macBlk)

	if c.cfg.OsirisStopLoss > 0 {
		// Osiris co-locates the MAC with the data (ECC bits), so the MAC
		// is durable with every data write; model that as a write-through
		// of the MAC block.
		c.nvm.Write(tMAC, macBlockAddr, macBlk, mem.CatMAC)
	}

	done := c.nvm.Write(sim.MaxTime(tAES, tMAC), addr, ct, mem.CatData)
	return done, nil
}

// ReadBlock performs a secure read: fetch + verify the counter, fetch the
// MAC block, read and decrypt the ciphertext, and verify the data MAC.
func (c *Controller) ReadBlock(now sim.Time, addr uint64) (mem.Block, sim.Time, error) {
	ctrIndex := c.lay.CounterBlockIndex(addr)
	raw, t, err := c.ensureNode(now, 0, ctrIndex)
	if err != nil {
		return mem.Block{}, t, err
	}
	cb := cme.DecodeCounterBlock(raw)
	slot := cme.CounterIndex(addr)
	counter := cb.Counter(slot)

	macBlockAddr := c.lay.MACBlockAddr(addr)
	macBlk, t := c.ensureMACBlock(t, macBlockAddr)
	stored := entryOf(macBlk, cme.MACSlot(addr))

	ct, t := c.nvm.Read(t, addr, mem.CatData)

	if counter == 0 && stored == zeroMAC && ct.IsZero() {
		// Never-written block: defined to read as zero plaintext.
		return mem.Block{}, t, nil
	}

	tAES := c.issueAES(t)
	t = c.issueMAC(t, MACVerify)
	if c.eng.DataMAC(addr, counter, ct) != stored {
		return mem.Block{}, t, &IntegrityError{
			Kind: KindTamper, Addr: addr,
			Detail: "data MAC mismatch",
		}
	}
	plain := c.eng.Decrypt(addr, counter, ct)
	return plain, sim.MaxTime(t, tAES), nil
}

// reencryptRegion handles a minor-counter overflow: every block sharing the
// major counter is read, decrypted with its old counter, re-encrypted with
// its new counter, its MAC recomputed, and written back (§II-B). The
// triggering block itself is skipped — its new ciphertext is written by the
// caller.
func (c *Controller) reencryptRegion(now sim.Time, triggerAddr uint64, old, upd *cme.CounterBlock) (sim.Time, error) {
	base := triggerAddr - triggerAddr%cme.CounterRegionBytes
	trigger := cme.CounterIndex(triggerAddr)
	t := now
	for i := 0; i < cme.BlocksPerCounter; i++ {
		if i == trigger {
			continue
		}
		oldCtr := old.Counter(i)
		if oldCtr == 0 {
			continue // never written; nothing to re-encrypt
		}
		blockAddr := base + uint64(i)*mem.BlockSize
		ct, tt := c.nvm.Read(t, blockAddr, mem.CatData)
		tt = c.issueAES(tt)
		plain := c.eng.Decrypt(blockAddr, oldCtr, ct)
		newCtr := upd.Counter(i)
		tt = c.issueAES(tt)
		nct := c.eng.Encrypt(blockAddr, newCtr, plain)
		// Refresh the data MAC for the new counter.
		macBlockAddr := c.lay.MACBlockAddr(blockAddr)
		macBlk, tt := c.ensureMACBlock(tt, macBlockAddr)
		tt = c.issueMAC(tt, MACData)
		setEntry(&macBlk, cme.MACSlot(blockAddr), c.eng.DataMAC(blockAddr, newCtr, nct))
		c.markDirty(c.macCache, macBlockAddr, macBlk)
		if c.cfg.OsirisStopLoss > 0 {
			c.nvm.Write(tt, macBlockAddr, macBlk, mem.CatMAC)
		}
		t = c.nvm.Write(tt, blockAddr, nct, mem.CatData)
	}
	return t, nil
}
