package secmem

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// TestNoSilentCorruption is the umbrella security property: after arbitrary
// NVM corruption — any populated block, any byte, any bit — a read of any
// written address either returns the correct plaintext or fails with an
// integrity error. It must never silently return wrong data.
//
// (Corruption under a dirty-cached copy is invisible until eviction; reads
// then still return the correct cached value, which satisfies the
// property.)
func TestNoSilentCorruption(t *testing.T) {
	for _, scheme := range []UpdateScheme{LazyUpdate, EagerUpdate} {
		t.Run(scheme.String(), func(t *testing.T) {
			for trial := 0; trial < 25; trial++ {
				c, nvm, _ := testSystem(t, scheme)
				rng := rand.New(rand.NewSource(int64(1000 + trial)))
				golden := make(map[uint64]mem.Block)
				var now sim.Time
				for i := 0; i < 150; i++ {
					addr := uint64(rng.Intn(1<<12)) * 4096
					b := mem.Block{0: byte(i + 1), 7: byte(trial)}
					done, err := c.WriteBlock(now, addr, b)
					if err != nil {
						t.Fatal(err)
					}
					now = done
					golden[addr] = b
				}
				// Eager: flush in place sometimes, to vary how much state
				// is persistent when the corruption lands.
				if scheme == EagerUpdate && trial%2 == 0 {
					c.FlushMetadataCaches(now)
				}

				// Corrupt one random populated NVM block.
				addrs := nvm.Store().AddressesInRange(0, ^uint64(0)>>1)
				if len(addrs) == 0 {
					continue
				}
				victim := addrs[rng.Intn(len(addrs))]
				nvm.Store().CorruptByte(victim, rng.Intn(64), byte(1<<rng.Intn(8)))

				for addr, want := range golden {
					got, done, err := c.ReadBlock(now, addr)
					now = done
					if err != nil {
						continue // detected: acceptable
					}
					if got != want {
						t.Fatalf("trial %d: SILENT CORRUPTION at %#x after corrupting %#x",
							trial, addr, victim)
					}
				}
			}
		})
	}
}

// The same property across a crash: corrupt NVM while power is out, then
// recover via the vault and read everything.
func TestNoSilentCorruptionAcrossCrash(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		c, nvm, _ := testSystem(t, LazyUpdate)
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		golden := make(map[uint64]mem.Block)
		var now sim.Time
		for i := 0; i < 120; i++ {
			addr := uint64(rng.Intn(1<<12)) * 4096
			b := mem.Block{0: byte(i + 1)}
			done, err := c.WriteBlock(now, addr, b)
			if err != nil {
				t.Fatal(err)
			}
			now = done
			golden[addr] = b
		}
		rec, _ := c.FlushMetadataCaches(now)
		lines := readVaultForTest(c, rec)

		// Power out: corrupt a random populated block.
		addrs := nvm.Store().AddressesInRange(0, ^uint64(0)>>1)
		victim := addrs[rng.Intn(len(addrs))]
		nvm.Store().CorruptByte(victim, rng.Intn(64), byte(1<<rng.Intn(8)))

		c.Crash()
		// Recovery: the vault itself may be the corrupted region, in which
		// case reinstallation must be refused upstream; here we model the
		// reinstall-and-read flow and only require no silent corruption.
		vaultBlocks := make([]mem.Block, 0, rec.Count+(rec.Count+7)/8)
		for i := 0; i < rec.Count+(rec.Count+7)/8; i++ {
			vaultBlocks = append(vaultBlocks, nvm.PeekRead(c.Layout().VaultAddr(uint64(i))))
		}
		if ComputeVaultRoot(c.eng, vaultBlocks, func() {}) != rec.Root {
			continue // vault corruption detected before reinstall: fine
		}
		c.ReinstallMetadata(lines)

		for addr, want := range golden {
			got, done, err := c.ReadBlock(now, addr)
			now = done
			if err != nil {
				continue // detected
			}
			if got != want {
				t.Fatalf("trial %d: SILENT CORRUPTION at %#x after corrupting %#x post-crash",
					trial, addr, victim)
			}
		}
	}
}
