package secmem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Property: any interleaving of secure writes and reads behaves like a
// plain map from address to last-written value, under both update schemes,
// despite cache churn, eviction cascades and counter increments.
func TestSecureMemoryLinearizesProperty(t *testing.T) {
	for _, scheme := range []UpdateScheme{LazyUpdate, EagerUpdate} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			f := func(seed int64, opsRaw []uint32) bool {
				c, _, _ := testSystem(t, scheme)
				rng := rand.New(rand.NewSource(seed))
				golden := make(map[uint64]mem.Block)
				var now sim.Time
				for _, op := range opsRaw {
					addr := (uint64(op) % (1 << 12)) * 4096 // sparse: own counter region
					if op&1 == 0 || golden[addr] == (mem.Block{}) {
						var b mem.Block
						b[0] = byte(rng.Uint32()) | 1
						done, err := c.WriteBlock(now, addr, b)
						if err != nil {
							t.Logf("write: %v", err)
							return false
						}
						now = done
						golden[addr] = b
					} else {
						got, done, err := c.ReadBlock(now, addr)
						if err != nil {
							t.Logf("read: %v", err)
							return false
						}
						now = done
						if got != golden[addr] {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Error(err)
			}
		})
	}
}

// Property: after any write burst, a vault flush + crash + reinstall
// round-trips every written block (lazy scheme end-to-end consistency).
func TestVaultRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		c, _, _ := testSystem(t, LazyUpdate)
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%200 + 1
		golden := make(map[uint64]mem.Block)
		var now sim.Time
		for i := 0; i < n; i++ {
			addr := uint64(rng.Intn(1<<12)) * 4096
			var b mem.Block
			b[5] = byte(i + 1)
			done, err := c.WriteBlock(now, addr, b)
			if err != nil {
				return false
			}
			now = done
			golden[addr] = b
		}
		rec, _ := c.FlushMetadataCaches(now)
		lines := readVaultForTest(c, rec)
		c.Crash()
		c.ReinstallMetadata(lines)
		for addr, want := range golden {
			got, done, err := c.ReadBlock(now, addr)
			if err != nil || got != want {
				return false
			}
			now = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Repeated overflow churn: hammer a handful of regions past several minor
// overflows while interleaving neighbours, then verify everything.
func TestRepeatedOverflowChurn(t *testing.T) {
	c, _, _ := testSystem(t, LazyUpdate)
	golden := make(map[uint64]mem.Block)
	var now sim.Time
	write := func(addr uint64, tag byte) {
		b := mem.Block{0: tag, 1: byte(addr >> 6)}
		done, err := c.WriteBlock(now, addr, b)
		if err != nil {
			t.Fatalf("write %#x: %v", addr, err)
		}
		now = done
		golden[addr] = b
	}
	for i := 0; i < 300; i++ {
		write(0, byte(i))        // hot slot: overflows at 128 and 256
		write(64, byte(i+1))     // neighbour in the same region
		write(4096*7, byte(i+2)) // separate region
	}
	for addr, want := range golden {
		got, done, err := c.ReadBlock(now, addr)
		if err != nil {
			t.Fatalf("read %#x: %v", addr, err)
		}
		now = done
		if got != want {
			t.Fatalf("mismatch at %#x", addr)
		}
	}
	// Overflow must have happened (2 region re-encryptions for the hot
	// region: at write counts crossing 128 and 256).
	if c.MACCalcs().Get(MACData) <= 900 {
		t.Error("expected extra data MACs from region re-encryption")
	}
}

func TestLazyCrashWithoutFlushBreaksVerification(t *testing.T) {
	// The motivation for the metadata-cache vault (§II-C, §IV-B): under the
	// lazy scheme, upper tree levels live dirty in the volatile cache, so a
	// crash WITHOUT a metadata flush leaves the in-NVM tree inconsistent
	// with itself and with the root register — post-crash verification must
	// fail rather than silently accept an unverifiable image.
	c, _, _ := testSystem(t, LazyUpdate)
	var now sim.Time
	if _, err := c.WriteBlock(now, 0, mem.Block{0: 0xAA}); err != nil {
		t.Fatal(err)
	}
	// Flood so block 0's counter and low tree levels are evicted to NVM
	// while upper levels stay dirty-cached.
	for i := 1; i <= 4096; i++ {
		done, err := c.WriteBlock(now, uint64(i)*4096, mem.Block{0: byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	c.Crash() // no FlushMetadataCaches: the vault step is skipped
	_, _, err := c.ReadBlock(now, 0)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("post-crash read without vault flush returned %v; want verification failure (this is why the vault exists)", err)
	}
}
