// Package secmem implements the secure memory controller: counter-mode
// encryption with split counters, per-block data MACs, and a Bonsai Merkle
// Tree over the counters, with lazy or eager tree-update schemes and the
// three on-chip security-metadata caches of Table I.
//
// The controller is both functional and timed. Functionally it maintains
// bit-exact ciphertext, counters, MACs and tree nodes over the simulated
// NVM, so tests can verify round trips and attack detection. Temporally,
// every metadata fetch, verification walk, tree update, eviction write-back
// and AES/MAC operation is charged to the shared memory banks and crypto
// engines, producing the access counts and occupancy that determine the
// paper's draining time.
//
// Invariant maintained by both update schemes: a tree node or counter block
// *persisted in NVM* always matches the entry its parent holds for it at
// the same persistence level; any newer value lives in a metadata cache
// (logically, in the controller's dirty-line table). Verification therefore
// always checks a fetched node against its nearest cached ancestor, falling
// back to the on-chip root register.
package secmem

import (
	"repro/internal/bmt"
	"repro/internal/cache"
	"repro/internal/cme"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/timeline"
)

// UpdateScheme selects how Merkle-tree updates propagate (§II-C).
type UpdateScheme int

// Update schemes.
const (
	// LazyUpdate defers parent updates until a dirty child is evicted from
	// the metadata cache. Faster at run time; the in-memory root is stale,
	// so crash consistency needs the metadata-cache vault (Anubis-style).
	LazyUpdate UpdateScheme = iota
	// EagerUpdate propagates every leaf update to the root immediately
	// (Triad-NVM style). The root register is always current.
	EagerUpdate
)

// String names the scheme.
func (s UpdateScheme) String() string {
	if s == EagerUpdate {
		return "eager"
	}
	return "lazy"
}

// MAC-calculation categories (Fig. 13 breakdown).
const (
	MACVerify      = "verify"       // verifying fetched counters/tree nodes
	MACTreeUpdate  = "tree-update"  // recomputing parent entries
	MACData        = "data-mac"     // protecting written data blocks
	MACMetaProtect = "meta-protect" // small tree over the metadata-cache vault
)

// Config holds the controller parameters (Table I defaults via
// DefaultConfig).
type Config struct {
	Scheme UpdateScheme

	CounterCacheBytes int
	MACCacheBytes     int
	TreeCacheBytes    int
	CacheWays         int

	ClockHz    int64 // core clock for cycle-specified latencies
	AESCycles  int64 // AES latency in cycles (Table I: 40)
	AESIICycle int64 // AES initiation interval
	MACCycles  int64 // hash latency in cycles (Table I: 160)
	MACIICycle int64 // hash initiation interval

	// VaultParity appends per-block leaf MACs and XOR parity to the
	// metadata-cache vault (Soteria-style resilience): recovery can repair
	// a single corrupted vault block per 8-block group.
	VaultParity bool

	// PreferCleanVictims makes the metadata caches evict the LRU clean
	// line when one exists, trading clean re-fetches for fewer dirty
	// write-backs (and, under the lazy scheme, fewer eviction cascades).
	PreferCleanVictims bool

	// OsirisStopLoss, when positive, enables Osiris-style counter
	// persistence (Ye et al., MICRO'18, cited §II-C): a counter block is
	// additionally written through to NVM whenever one of its counters
	// crosses a multiple of the stop-loss limit, bounding how far the
	// persisted counter can lag the true one. Crash recovery can then
	// reconstruct counters without a metadata vault (package osiris).
	OsirisStopLoss int
}

// DefaultConfig returns the Table I secure-memory parameters.
func DefaultConfig() Config {
	return Config{
		Scheme:            LazyUpdate,
		CounterCacheBytes: 256 << 10,
		MACCacheBytes:     512 << 10,
		TreeCacheBytes:    256 << 10,
		CacheWays:         8,
		ClockHz:           4_000_000_000,
		AESCycles:         40,
		AESIICycle:        4,
		MACCycles:         160,
		MACIICycle:        82,
	}
}

// Controller is the secure memory controller.
type Controller struct {
	cfg Config
	lay *bmt.Layout
	eng *cme.Engine
	nvm *mem.Controller

	ctrCache  *cache.Cache
	macCache  *cache.Cache
	treeCache *cache.Cache

	// dirtyLine holds the logical content of every dirty metadata line;
	// clean cached lines equal the NVM content.
	dirtyLine map[uint64]mem.Block

	// evicting marks lines sitting in the write-back buffer: chosen as a
	// victim, not yet persisted. Their content stays readable (and
	// updatable) through dirtyLine while the eviction cascade runs.
	evicting map[uint64]bool

	// root is the on-chip persistent root register: the content of the
	// single top tree node (eight MACs of the topmost stored level).
	root mem.Block

	aes *sim.Engine
	mac *sim.Engine

	macCalcs *sim.CounterSet
	aesOps   int64

	// levelFetches profiles verification-walk depth: how many NVM fetches
	// each metadata level needed ("L0" = counter blocks). The shape of
	// this profile is what blows up the baselines in Fig. 6: sparse
	// flushes miss at the low levels on almost every access.
	levelFetches *sim.CounterSet

	// osirisPersists counts stop-loss counter write-throughs.
	osirisPersists int64

	evictionDepth int

	// Sharded drain pipeline state (drainhints.go, flush.go): the
	// positional hint stream of the baseline drain in progress and the
	// shard-owned engine clones the vault flush fans leaf MACs over.
	drainHints         []DrainHint
	drainHintNext      int
	drainHintsUsed     int64
	drainHintsRejected int64
	shardEngines       []*cme.Engine

	m  *engineMetrics     // optional crypto-engine instrumentation
	tl *timeline.Recorder // optional event-timeline recorder
}

// engineMetrics caches metric handles for the issueAES/issueMAC hot paths.
type engineMetrics struct {
	reg    *obs.Registry
	labels []string

	aesCtr *obs.Counter
	macCtr map[string]*obs.Counter
}

// SetMetrics attaches the controller to a metrics registry (nil detaches).
// The extra labels (alternating key, value) are applied to every series.
func (c *Controller) SetMetrics(reg *obs.Registry, labels ...string) {
	if reg == nil {
		c.m = nil
		return
	}
	reg.SetHelp("horus_sec_aes_ops_total", "AES (OTP) operations issued to the shared crypto engine.")
	reg.SetHelp("horus_sec_mac_ops_total", "MAC computations by category (verify, tree-update, data-mac, meta-protect).")
	c.m = &engineMetrics{
		reg:    reg,
		labels: labels,
		aesCtr: reg.Counter("horus_sec_aes_ops_total", labels...),
		macCtr: make(map[string]*obs.Counter),
	}
}

// SetTimeline attaches an event-timeline recorder to the AES and MAC
// engines (nil detaches); every crypto issue is then recorded as one
// interval stamped with the operation category.
func (c *Controller) SetTimeline(rec *timeline.Recorder) {
	c.tl = rec
	var tr sim.Tracer
	if rec != nil {
		tr = rec
	}
	c.aes.SetTracer("aes", tr)
	c.mac.SetTracer("mac", tr)
}

// PublishMetrics snapshots crypto-engine occupancy into the attached
// registry as gauges labelled with the given phase. window is the phase
// duration used for utilisation; if zero or negative, EnginesLastDone() is
// used. No-op when no registry is attached.
func (c *Controller) PublishMetrics(phase string, window sim.Time) {
	if c.m == nil {
		return
	}
	if window <= 0 {
		window = c.EnginesLastDone()
	}
	reg := c.m.reg
	reg.SetHelp("horus_sec_engine_busy_ps", "Crypto-engine issue-slot occupancy within the phase, picoseconds.")
	reg.SetHelp("horus_sec_engine_utilization", "Crypto-engine occupied fraction of the phase window.")
	reg.SetHelp("horus_sec_engine_wait_ps", "Cumulative structural-hazard delay at the crypto engine within the phase, picoseconds.")
	reg.SetHelp("horus_sec_engine_ops", "Operations issued to the crypto engine within the phase.")
	for _, e := range []*sim.Engine{c.aes, c.mac} {
		lbl := append([]string{"engine", e.Name(), "phase", phase}, c.m.labels...)
		reg.Gauge("horus_sec_engine_busy_ps", lbl...).Set(float64(e.BusyTime()))
		reg.Gauge("horus_sec_engine_wait_ps", lbl...).Set(float64(e.WaitTime()))
		reg.Gauge("horus_sec_engine_ops", lbl...).Set(float64(e.Ops()))
		if window > 0 {
			reg.Gauge("horus_sec_engine_utilization", lbl...).Set(float64(e.BusyTime()) / float64(window))
		}
	}
}

// OsirisPersists returns how many stop-loss counter write-throughs have
// occurred (zero unless OsirisStopLoss is enabled).
func (c *Controller) OsirisPersists() int64 { return c.osirisPersists }

// LevelFetches returns the per-level NVM fetch profile of the verification
// walks ("L0" = counter blocks, "L1".. = tree levels).
func (c *Controller) LevelFetches() *sim.CounterSet { return c.levelFetches }

// New returns a controller over the given layout, key engine and NVM.
func New(cfg Config, lay *bmt.Layout, eng *cme.Engine, nvm *mem.Controller) *Controller {
	clk := sim.NewClock(cfg.ClockHz)
	c := &Controller{
		cfg:          cfg,
		lay:          lay,
		eng:          eng,
		nvm:          nvm,
		ctrCache:     cache.New("counter$", cfg.CounterCacheBytes, cfg.CacheWays, mem.BlockSize),
		macCache:     cache.New("mac$", cfg.MACCacheBytes, cfg.CacheWays, mem.BlockSize),
		treeCache:    cache.New("tree$", cfg.TreeCacheBytes, cfg.CacheWays, mem.BlockSize),
		dirtyLine:    make(map[uint64]mem.Block),
		evicting:     make(map[uint64]bool),
		levelFetches: sim.NewCounterSet(),
		aes:          sim.NewEngine("aes", clk.Cycles(cfg.AESCycles), clk.Cycles(cfg.AESIICycle)),
		mac:          sim.NewEngine("mac", clk.Cycles(cfg.MACCycles), clk.Cycles(cfg.MACIICycle)),
		macCalcs:     sim.NewCounterSet(),
	}
	if cfg.PreferCleanVictims {
		c.ctrCache.SetPreferCleanVictims(true)
		c.macCache.SetPreferCleanVictims(true)
		c.treeCache.SetPreferCleanVictims(true)
	}
	return c
}

// Layout returns the metadata layout.
func (c *Controller) Layout() *bmt.Layout { return c.lay }

// Scheme returns the configured update scheme.
func (c *Controller) Scheme() UpdateScheme { return c.cfg.Scheme }

// MACCalcs returns the per-category MAC-operation counters.
func (c *Controller) MACCalcs() *sim.CounterSet { return c.macCalcs }

// AESOps returns the number of AES (OTP) operations issued.
func (c *Controller) AESOps() int64 { return c.aesOps }

// EnginesLastDone returns the latest completion time across the crypto
// engines (combined with the NVM's LastDone to bound draining time).
func (c *Controller) EnginesLastDone() sim.Time {
	return sim.MaxTime(c.aes.LastDone(), c.mac.LastDone())
}

// RootRegister returns the on-chip persistent root register content.
func (c *Controller) RootRegister() mem.Block { return c.root }

// RestoreRoot overwrites the root register. Osiris-style recovery rebuilds
// the integrity tree from recovered counters and re-anchors the root; see
// package osiris for the freshness caveat this implies.
func (c *Controller) RestoreRoot(root mem.Block) { c.root = root }

// CacheStats returns (counter, mac, tree) cache statistics.
func (c *Controller) CacheStats() (ctr, mac, tree cache.Stats) {
	return c.ctrCache.Stats(), c.macCache.Stats(), c.treeCache.Stats()
}

// DirtyMetadataLines returns how many metadata lines are dirty across the
// three caches.
func (c *Controller) DirtyMetadataLines() int {
	return c.ctrCache.CountDirty() + c.macCache.CountDirty() + c.treeCache.CountDirty()
}

// Crash discards all volatile state: the metadata caches and the logical
// dirty-line table. The root register, like the drain counters, lives in a
// persistent on-chip register and survives (§IV-C1).
func (c *Controller) Crash() {
	c.ctrCache.InvalidateAll()
	c.macCache.InvalidateAll()
	c.treeCache.InvalidateAll()
	c.dirtyLine = make(map[uint64]mem.Block)
	c.evicting = make(map[uint64]bool)
}

// ResetStats clears engine timing and MAC counters (the NVM's stats are
// reset separately); cache stats are preserved.
func (c *Controller) ResetStats() {
	c.aes.Reset()
	c.mac.Reset()
	c.macCalcs = sim.NewCounterSet()
	c.levelFetches = sim.NewCounterSet()
	c.aesOps = 0
}

// cacheFor returns the metadata cache responsible for a metadata address.
func (c *Controller) cacheFor(level int) *cache.Cache {
	if level == 0 {
		return c.ctrCache
	}
	return c.treeCache
}

// logicalRead returns the current logical content of a metadata line that
// is present in a cache: the dirty table if dirty, otherwise NVM content.
func (c *Controller) logicalRead(addr uint64) mem.Block {
	if b, ok := c.dirtyLine[addr]; ok {
		return b
	}
	return c.nvm.PeekRead(addr)
}

// SetShardEngines hands the controller the drain pipeline's shard-owned
// crypto contexts (nil disables fan-out). The metadata flush uses them to
// precompute the vault's leaf MACs over per-bank work lists.
func (c *Controller) SetShardEngines(engines []*cme.Engine) { c.shardEngines = engines }

// IssueAES exposes the shared AES engine to the drain path: Horus reuses
// the run-time crypto engines during draining (§IV-D).
func (c *Controller) IssueAES(ready sim.Time) sim.Time { return c.issueAES(ready) }

// IssueMAC exposes the shared MAC engine to the drain path, charging the
// operation to the given Fig. 13 category.
func (c *Controller) IssueMAC(ready sim.Time, category string) sim.Time {
	return c.issueMAC(ready, category)
}

// issueMAC charges one MAC computation of the given category.
func (c *Controller) issueMAC(ready sim.Time, category string) sim.Time {
	c.macCalcs.Add(category, 1)
	if c.tl != nil {
		c.tl.SetOp("mac", category)
	}
	if c.m != nil {
		ctr, ok := c.m.macCtr[category]
		if !ok {
			ctr = c.m.reg.Counter("horus_sec_mac_ops_total", append([]string{"category", category}, c.m.labels...)...)
			c.m.macCtr[category] = ctr
		}
		ctr.Add(1)
	}
	return c.mac.Issue(ready)
}

// issueAES charges one AES (OTP) computation.
func (c *Controller) issueAES(ready sim.Time) sim.Time {
	c.aesOps++
	if c.tl != nil {
		c.tl.SetOp("aes", "otp")
	}
	if c.m != nil {
		c.m.aesCtr.Add(1)
	}
	return c.aes.Issue(ready)
}

// memCategoryFor maps a metadata level to the Fig. 6/12 access category.
func memCategoryFor(level int) mem.Category {
	if level == 0 {
		return mem.CatCounter
	}
	return mem.CatTree
}

// markDirty records new logical content for a cached metadata line and sets
// its dirty bit.
func (c *Controller) markDirty(ca *cache.Cache, addr uint64, content mem.Block) {
	c.dirtyLine[addr] = content
	ca.Touch(addr, true)
}
