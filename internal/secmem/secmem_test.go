package secmem

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bmt"
	"repro/internal/cme"
	"repro/internal/mem"
	"repro/internal/sim"
)

// testSystem builds a small controller: 64 MB data region so tests run fast
// but the tree still has several levels.
func testSystem(t testing.TB, scheme UpdateScheme) (*Controller, *mem.Controller, *bmt.Layout) {
	t.Helper()
	lay := bmt.NewLayout(bmt.Config{
		DataSize:    64 << 20,
		CHVCapacity: 4096,
		VaultBlocks: 20000,
	})
	nvm := mem.NewController(mem.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	// Small caches force evictions so the lazy-update path is exercised.
	cfg.CounterCacheBytes = 8 << 10
	cfg.MACCacheBytes = 8 << 10
	cfg.TreeCacheBytes = 8 << 10
	eng := cme.NewEngine(99)
	return New(cfg, lay, eng, nvm), nvm, lay
}

func block(seed byte) mem.Block {
	var b mem.Block
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, scheme := range []UpdateScheme{LazyUpdate, EagerUpdate} {
		t.Run(scheme.String(), func(t *testing.T) {
			c, _, _ := testSystem(t, scheme)
			want := block(7)
			done, err := c.WriteBlock(0, 0x4000, want)
			if err != nil {
				t.Fatalf("write: %v", err)
			}
			got, _, err := c.ReadBlock(done, 0x4000)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if got != want {
				t.Fatal("round trip mismatch")
			}
		})
	}
}

func TestCiphertextInMemoryDiffersFromPlaintext(t *testing.T) {
	c, nvm, _ := testSystem(t, LazyUpdate)
	want := block(3)
	if _, err := c.WriteBlock(0, 0, want); err != nil {
		t.Fatal(err)
	}
	if nvm.PeekRead(0) == want {
		t.Fatal("memory holds plaintext; encryption is not happening")
	}
}

func TestUnwrittenBlockReadsZero(t *testing.T) {
	c, _, _ := testSystem(t, LazyUpdate)
	got, _, err := c.ReadBlock(0, 0x10000)
	if err != nil {
		t.Fatalf("read of unwritten block: %v", err)
	}
	if !got.IsZero() {
		t.Fatal("unwritten block must read as zero")
	}
}

func TestManyBlocksRoundTripAcrossEvictions(t *testing.T) {
	for _, scheme := range []UpdateScheme{LazyUpdate, EagerUpdate} {
		t.Run(scheme.String(), func(t *testing.T) {
			c, _, _ := testSystem(t, scheme)
			rng := rand.New(rand.NewSource(5))
			golden := make(map[uint64]mem.Block)
			var now sim.Time
			// Sparse strided addresses force counter/tree cache churn.
			for i := 0; i < 600; i++ {
				addr := uint64(rng.Intn(1<<14)) * 4096
				b := block(byte(i))
				golden[addr] = b
				done, err := c.WriteBlock(now, addr, b)
				if err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
				now = done
			}
			for addr, want := range golden {
				got, done, err := c.ReadBlock(now, addr)
				if err != nil {
					t.Fatalf("read %#x: %v", addr, err)
				}
				now = done
				if got != want {
					t.Fatalf("mismatch at %#x", addr)
				}
			}
			ctr, _, tree := c.CacheStats()
			if ctr.DirtyEvictions == 0 {
				t.Error("test did not exercise counter-cache dirty evictions")
			}
			if scheme == LazyUpdate && tree.Misses == 0 {
				t.Error("test did not exercise tree-cache misses")
			}
		})
	}
}

func TestOverwriteAdvancesCounterAndCiphertext(t *testing.T) {
	c, nvm, _ := testSystem(t, LazyUpdate)
	b := block(1)
	if _, err := c.WriteBlock(0, 0, b); err != nil {
		t.Fatal(err)
	}
	ct1 := nvm.PeekRead(0)
	if _, err := c.WriteBlock(0, 0, b); err != nil {
		t.Fatal(err)
	}
	ct2 := nvm.PeekRead(0)
	if ct1 == ct2 {
		t.Fatal("same plaintext re-written produced identical ciphertext (pad reuse)")
	}
	got, _, err := c.ReadBlock(0, 0)
	if err != nil || got != b {
		t.Fatalf("read after overwrite: %v", err)
	}
}

func TestMinorCounterOverflowReencryptsRegion(t *testing.T) {
	c, _, _ := testSystem(t, LazyUpdate)
	// Write a neighbour in the same 4KB region, then overflow another slot.
	neighbour := uint64(64)
	nb := block(9)
	if _, err := c.WriteBlock(0, neighbour, nb); err != nil {
		t.Fatal(err)
	}
	hot := uint64(0)
	hb := block(2)
	var now sim.Time
	for i := 0; i < cme.MinorLimit; i++ { // 128 writes overflow the 7-bit minor
		done, err := c.WriteBlock(now, hot, hb)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		now = done
	}
	// The neighbour must still decrypt and verify after re-encryption.
	got, _, err := c.ReadBlock(now, neighbour)
	if err != nil {
		t.Fatalf("neighbour read after overflow: %v", err)
	}
	if got != nb {
		t.Fatal("neighbour corrupted by region re-encryption")
	}
	got, _, err = c.ReadBlock(now, hot)
	if err != nil || got != hb {
		t.Fatalf("hot block read after overflow: %v", err)
	}
}

func TestTamperDataDetected(t *testing.T) {
	c, nvm, _ := testSystem(t, LazyUpdate)
	if _, err := c.WriteBlock(0, 0, block(1)); err != nil {
		t.Fatal(err)
	}
	nvm.Store().CorruptByte(0, 5, 0x80)
	_, _, err := c.ReadBlock(0, 0)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("tampered data read returned %v, want IntegrityError", err)
	}
}

// TestTamperCounterDetectedLazy corrupts a counter block that was evicted
// to memory under the lazy scheme and checks the verification walk catches
// it once the cached copy is gone.
func TestTamperCounterDetectedLazy(t *testing.T) {
	c, nvm, lay := testSystem(t, LazyUpdate)
	addr := uint64(0x8000)
	if _, err := c.WriteBlock(0, addr, block(1)); err != nil {
		t.Fatal(err)
	}
	// Evict the dirty counter by flooding the counter cache with writes to
	// many other regions (lazy eviction writes it back and updates its
	// parent in the tree cache).
	var now sim.Time
	for i := 1; i < 4096; i++ {
		done, err := c.WriteBlock(now, addr+uint64(i)*4096, block(byte(i)))
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	ctrAddr := lay.CounterBlockAddr(addr)
	if c.cacheOf(0).Contains(ctrAddr) {
		t.Skip("counter line unexpectedly still cached; flood too small")
	}
	nvm.Store().CorruptByte(ctrAddr, 0, 0x01)
	_, _, err := c.ReadBlock(now, addr)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("tampered evicted counter read returned %v, want IntegrityError", err)
	}
}

func TestTamperCounterDetectedEager(t *testing.T) {
	c, nvm, lay := testSystem(t, EagerUpdate)
	addr := uint64(0x8000)
	if _, err := c.WriteBlock(0, addr, block(1)); err != nil {
		t.Fatal(err)
	}
	c.FlushMetadataCaches(0) // eager: dirty metadata written in place
	c.Crash()                // drop caches; root register survives
	nvm.Store().CorruptByte(lay.CounterBlockAddr(addr), 0, 0x01)
	_, _, err := c.ReadBlock(0, addr)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("tampered counter read returned %v, want IntegrityError", err)
	}
}

func TestReplayCounterDetectedEager(t *testing.T) {
	c, nvm, lay := testSystem(t, EagerUpdate)
	addr := uint64(0x8000)
	if _, err := c.WriteBlock(0, addr, block(1)); err != nil {
		t.Fatal(err)
	}
	c.FlushMetadataCaches(0)
	oldCtr := nvm.PeekRead(lay.CounterBlockAddr(addr))
	oldData := nvm.PeekRead(addr)
	// Second write advances the counter.
	if _, err := c.WriteBlock(0, addr, block(2)); err != nil {
		t.Fatal(err)
	}
	c.FlushMetadataCaches(0)
	c.Crash()
	// Replay the old counter block and old ciphertext together.
	nvm.Store().WriteBlock(lay.CounterBlockAddr(addr), oldCtr)
	nvm.Store().WriteBlock(addr, oldData)
	_, _, err := c.ReadBlock(0, addr)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("replayed counter+data read returned %v, want IntegrityError", err)
	}
}

func TestSpliceDataDetected(t *testing.T) {
	c, nvm, _ := testSystem(t, LazyUpdate)
	a, b := uint64(0), uint64(64)
	if _, err := c.WriteBlock(0, a, block(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteBlock(0, b, block(2)); err != nil {
		t.Fatal(err)
	}
	// Swap the two ciphertexts in memory.
	ba, bb := nvm.PeekRead(a), nvm.PeekRead(b)
	nvm.Store().WriteBlock(a, bb)
	nvm.Store().WriteBlock(b, ba)
	if _, _, err := c.ReadBlock(0, a); err == nil {
		t.Fatal("spliced block at a verified")
	}
	if _, _, err := c.ReadBlock(0, b); err == nil {
		t.Fatal("spliced block at b verified")
	}
}

func TestEagerRootAlwaysCurrentLazyRootStale(t *testing.T) {
	cE, _, _ := testSystem(t, EagerUpdate)
	rootBefore := cE.RootRegister()
	if _, err := cE.WriteBlock(0, 0, block(1)); err != nil {
		t.Fatal(err)
	}
	if cE.RootRegister() == rootBefore {
		t.Error("eager: root register did not change on a write")
	}

	cL, _, _ := testSystem(t, LazyUpdate)
	rootBefore = cL.RootRegister()
	if _, err := cL.WriteBlock(0, 0, block(1)); err != nil {
		t.Fatal(err)
	}
	if cL.RootRegister() != rootBefore {
		t.Error("lazy: root register changed on a single cached write")
	}
}

func TestMACCategoriesAccounted(t *testing.T) {
	cE, _, _ := testSystem(t, EagerUpdate)
	if _, err := cE.WriteBlock(0, 0, block(1)); err != nil {
		t.Fatal(err)
	}
	m := cE.MACCalcs()
	if m.Get(MACData) != 1 {
		t.Errorf("data MACs = %d, want 1", m.Get(MACData))
	}
	// Eager: one tree-update MAC per level from counters to root.
	lay := cE.Layout()
	if got, want := m.Get(MACTreeUpdate), int64(lay.RootLevel()); got != want {
		t.Errorf("eager tree-update MACs = %d, want %d", got, want)
	}
	if cE.AESOps() != 1 {
		t.Errorf("AES ops = %d, want 1", cE.AESOps())
	}
}

func TestVaultFlushAndReinstall(t *testing.T) {
	c, _, _ := testSystem(t, LazyUpdate)
	golden := make(map[uint64]mem.Block)
	var now sim.Time
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		addr := uint64(rng.Intn(1<<13)) * 4096
		b := block(byte(i))
		golden[addr] = b
		done, err := c.WriteBlock(now, addr, b)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	dirtyBefore := c.DirtyMetadataLines()
	if dirtyBefore == 0 {
		t.Fatal("no dirty metadata to flush")
	}
	rec, done := c.FlushMetadataCaches(now)
	if rec.Count != dirtyBefore {
		t.Errorf("vault count = %d, want %d", rec.Count, dirtyBefore)
	}
	if rec.Root == (cme.MAC{}) {
		t.Error("vault root is zero")
	}
	if done < now {
		t.Error("flush completed before it started")
	}
	// The vault flush must not clean the volatile lines: their latest value
	// is in the vault, not at their home addresses.
	if c.DirtyMetadataLines() != dirtyBefore {
		t.Error("vault flush changed volatile dirty state")
	}
	if c.MACCalcs().Get(MACMetaProtect) == 0 {
		t.Error("vault protection MACs not counted")
	}

	// Crash, then reinstall the vaulted lines (as recovery would after
	// verifying them) and check every data block still reads correctly.
	vaulted := readVaultForTest(c, rec)
	c.Crash()
	c.ReinstallMetadata(vaulted)
	for addr, want := range golden {
		got, d, err := c.ReadBlock(now, addr)
		if err != nil {
			t.Fatalf("post-recovery read %#x: %v", addr, err)
		}
		now = d
		if got != want {
			t.Fatalf("post-recovery mismatch at %#x", addr)
		}
	}
}

// readVaultForTest reads back the vault functionally (the recovery package
// owns the timed, verified version).
func readVaultForTest(c *Controller, rec VaultRecord) []VaultLine {
	lay := c.Layout()
	lines := make([]VaultLine, rec.Count)
	for i := 0; i < rec.Count; i++ {
		lines[i].Content = c.nvm.PeekRead(lay.VaultAddr(uint64(i)))
	}
	addrBlocks := (rec.Count + 7) / 8
	for bi := 0; bi < addrBlocks; bi++ {
		blk := c.nvm.PeekRead(lay.VaultAddr(uint64(rec.Count + bi)))
		for s := 0; s < 8 && bi*8+s < rec.Count; s++ {
			var a uint64
			for k := 0; k < 8; k++ {
				a |= uint64(blk[s*8+k]) << (8 * k)
			}
			lines[bi*8+s].Addr = a
		}
	}
	return lines
}

func TestVaultRootDetectsTamper(t *testing.T) {
	c, nvm, lay := testSystem(t, LazyUpdate)
	if _, err := c.WriteBlock(0, 0, block(1)); err != nil {
		t.Fatal(err)
	}
	rec, _ := c.FlushMetadataCaches(0)
	nvm.Store().CorruptByte(lay.VaultAddr(0), 3, 0x10)
	var blocks []mem.Block
	total := rec.Count + (rec.Count+7)/8
	for i := 0; i < total; i++ {
		blocks = append(blocks, nvm.PeekRead(lay.VaultAddr(uint64(i))))
	}
	if ComputeVaultRoot(cme.NewEngine(99), blocks, func() {}) == rec.Root {
		t.Fatal("tampered vault still matches root")
	}
}

func TestComputeVaultRootEmpty(t *testing.T) {
	if ComputeVaultRoot(cme.NewEngine(1), nil, func() {}) != (cme.MAC{}) {
		t.Error("empty vault root must be zero")
	}
}

func TestEagerFlushInPlaceMakesMemorySelfConsistent(t *testing.T) {
	c, _, _ := testSystem(t, EagerUpdate)
	golden := make(map[uint64]mem.Block)
	var now sim.Time
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		addr := uint64(rng.Intn(1<<13)) * 4096
		b := block(byte(i))
		golden[addr] = b
		done, err := c.WriteBlock(now, addr, b)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	rec, _ := c.FlushMetadataCaches(now)
	if rec.Count != 0 {
		t.Error("eager flush must not produce a vault record")
	}
	c.Crash()
	// With eager + in-place flush, memory verifies against the persistent
	// root register with no reinstallation at all.
	for addr, want := range golden {
		got, d, err := c.ReadBlock(now, addr)
		if err != nil {
			t.Fatalf("post-crash read %#x: %v", addr, err)
		}
		now = d
		if got != want {
			t.Fatalf("post-crash mismatch at %#x", addr)
		}
	}
}

func TestLevelFetchProfileDecreasesUpTheTree(t *testing.T) {
	c, _, _ := testSystem(t, LazyUpdate)
	rng := rand.New(rand.NewSource(77))
	var now sim.Time
	for i := 0; i < 1500; i++ {
		addr := uint64(rng.Intn(1<<14)) * 4096 // sparse: misses low levels
		done, err := c.WriteBlock(now, addr, block(byte(i)))
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	lf := c.LevelFetches()
	if lf.Get("L0") == 0 || lf.Get("L1") == 0 {
		t.Fatalf("no low-level fetches recorded: %v", lf)
	}
	// Higher levels cover exponentially more data, so they are fetched
	// less. With the deliberately starved test caches L1/L2 can jitter a
	// few percent (eviction chains re-fetch L2), so allow 20% slack — but
	// the profile must collapse by the upper levels, which stay cached.
	prev := lf.Get("L1")
	for l := 2; l <= 5; l++ {
		cur := lf.Get(fmt.Sprintf("L%d", l))
		if cur > prev+prev/5 {
			t.Errorf("L%d fetches (%d) far exceed L%d (%d)", l, cur, l-1, prev)
		}
		prev = cur
	}
	if top := lf.Get("L4") + lf.Get("L5"); top*10 > lf.Get("L1") {
		t.Errorf("upper levels fetched too often (%d vs L1 %d): caching broken", top, lf.Get("L1"))
	}
}

func TestSchemeString(t *testing.T) {
	if LazyUpdate.String() != "lazy" || EagerUpdate.String() != "eager" {
		t.Error("scheme names wrong")
	}
}

func TestIntegrityErrorMessage(t *testing.T) {
	e := &IntegrityError{Kind: KindReplay, Addr: 0x40, Detail: "x"}
	if e.Error() == "" || KindSplice.String() != "splice" || KindTamper.String() != "tamper" {
		t.Error("error formatting broken")
	}
}

func TestTimingAdvances(t *testing.T) {
	c, nvm, _ := testSystem(t, LazyUpdate)
	done, err := c.WriteBlock(0, 0, block(1))
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Error("write completion time must be positive")
	}
	if nvm.LastDone() <= 0 {
		t.Error("memory timing did not advance")
	}
	if c.EnginesLastDone() <= 0 {
		t.Error("crypto engine timing did not advance")
	}
}
