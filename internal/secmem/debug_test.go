package secmem

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// checkInvariant verifies that every persisted (non-dirty-cached) tree and
// counter node matches its parent's logical entry. It walks all NVM blocks
// the test has touched via the golden address list.
func (c *Controller) checkInvariant(t *testing.T, step int) {
	t.Helper()
	lay := c.lay
	for level := 0; level < lay.RootLevel(); level++ {
		for index := uint64(0); index < lay.LevelCount[level]; index++ {
			addr := lay.NodeAddr(level, index)
			var content mem.Block
			if c.cacheFor(level).Contains(addr) {
				content = c.logicalRead(addr)
			} else {
				content = c.nvm.PeekRead(addr)
			}
			if content.IsZero() {
				continue
			}
			// Parent logical entry.
			pLevel, pIndex, slot := lay.Parent(level, index)
			var parent mem.Block
			if pLevel == lay.RootLevel() {
				parent = c.root
			} else if c.cacheFor(pLevel).Contains(lay.NodeAddr(pLevel, pIndex)) {
				parent = c.logicalRead(lay.NodeAddr(pLevel, pIndex))
			} else {
				parent = c.nvm.PeekRead(lay.NodeAddr(pLevel, pIndex))
			}
			expected := entryOf(parent, slot)
			if c.cacheFor(level).IsDirty(addr) {
				continue // dirty lines may be newer than the parent entry
			}
			if expected == zeroMAC {
				t.Fatalf("step %d: node (%d,%d) nonzero but parent entry zero (node dirty=%v, parent cached=%v)",
					step, level, index,
					c.cacheFor(level).IsDirty(addr),
					pLevel != lay.RootLevel() && c.cacheFor(pLevel).Contains(lay.NodeAddr(pLevel, pIndex)))
			}
			if c.eng.NodeMAC(level, index, content) != expected {
				t.Fatalf("step %d: node (%d,%d) MAC mismatch vs parent entry", step, level, index)
			}
		}
	}
}

func TestInvariantUnderChurn(t *testing.T) {
	c, _, _ := testSystem(t, LazyUpdate)
	rng := rand.New(rand.NewSource(5))
	var now sim.Time
	for i := 0; i < 600; i++ {
		addr := uint64(rng.Intn(1<<14)) * 4096
		done, err := c.WriteBlock(now, addr, block(byte(i)))
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		now = done
		if i%25 == 0 {
			c.checkInvariant(t, i)
		}
	}
	c.checkInvariant(t, 600)
}
