package secmem

import (
	"testing"

	"repro/internal/bmt"
	"repro/internal/cme"
	"repro/internal/mem"
)

func TestControllerAccessors(t *testing.T) {
	c, _, _ := testSystem(t, EagerUpdate)
	if c.Scheme() != EagerUpdate {
		t.Error("Scheme accessor wrong")
	}
	if c.OsirisPersists() != 0 {
		t.Error("fresh controller reports osiris persists")
	}
	// The drain path drives the crypto engines through the exported hooks.
	d1 := c.IssueAES(0)
	d2 := c.IssueMAC(d1, "chv-data-mac")
	if d2 <= d1 || c.AESOps() != 1 || c.MACCalcs().Get("chv-data-mac") != 1 {
		t.Error("exported engine hooks not accounted")
	}
	c.ResetStats()
	if c.AESOps() != 0 || c.MACCalcs().Total() != 0 || c.EnginesLastDone() != 0 {
		t.Error("ResetStats incomplete")
	}
	if c.LevelFetches().Total() != 0 {
		t.Error("level fetches survived reset")
	}
}

func TestRestoreRoot(t *testing.T) {
	c, _, _ := testSystem(t, LazyUpdate)
	want := mem.Block{0: 0xAB, 63: 0xCD}
	c.RestoreRoot(want)
	if c.RootRegister() != want {
		t.Error("RestoreRoot did not take effect")
	}
}

func TestVaultParityLayoutMath(t *testing.T) {
	if vaultPayloadBlocks(0) != 0 {
		t.Error("empty vault payload")
	}
	if vaultPayloadBlocks(8) != 9 { // 8 lines + 1 address block
		t.Errorf("payload(8) = %d", vaultPayloadBlocks(8))
	}
	p, g := vaultParityLayout(16) // 16+2 = 18 payload -> 3 groups
	if p != 18 || g != 3 {
		t.Errorf("layout(16) = (%d,%d), want (18,3)", p, g)
	}
}

func TestParityFlushWritesExtraBlocks(t *testing.T) {
	lay, nvm := newLayoutAndNVM()
	cfg := DefaultConfig()
	cfg.Scheme = LazyUpdate
	cfg.CounterCacheBytes = 8 << 10
	cfg.MACCacheBytes = 8 << 10
	cfg.TreeCacheBytes = 8 << 10
	cfg.VaultParity = true
	c := New(cfg, lay, newEngine(), nvm)
	if _, err := c.WriteBlock(0, 0, mem.Block{0: 1}); err != nil {
		t.Fatal(err)
	}
	rec, _ := c.FlushMetadataCaches(0)
	if !rec.Parity {
		t.Fatal("parity flag missing")
	}
	payload, groups := vaultParityLayout(rec.Count)
	// Leaf-MAC and parity blocks must be present past the payload.
	macBlk := nvm.PeekRead(lay.VaultAddr(uint64(payload)))
	if macBlk.IsZero() {
		t.Error("leaf-MAC block missing")
	}
	parityBlk := nvm.PeekRead(lay.VaultAddr(uint64(payload + groups)))
	if parityBlk.IsZero() {
		t.Error("parity block missing")
	}
	// Parity of group 0 must equal the XOR of its payload blocks.
	var want mem.Block
	for i := 0; i < 8 && i < payload; i++ {
		b := nvm.PeekRead(lay.VaultAddr(uint64(i)))
		for k := range want {
			want[k] ^= b[k]
		}
	}
	if parityBlk != want {
		t.Error("parity block is not the group XOR")
	}
}

// Helpers shared by the misc tests.
func newLayoutAndNVM() (*bmt.Layout, *mem.Controller) {
	lay := bmt.NewLayout(bmt.Config{DataSize: 64 << 20, CHVCapacity: 1024, VaultBlocks: 20000})
	return lay, mem.NewController(mem.DefaultConfig())
}

func newEngine() *cme.Engine { return cme.NewEngine(99) }
