package secmem

import (
	"fmt"

	"repro/internal/bmt"
	"repro/internal/cache"
	"repro/internal/cme"
	"repro/internal/mem"
	"repro/internal/sim"
)

// maxEvictionDepth bounds the cascade of eviction -> parent fetch ->
// eviction chains. Real chains are bounded by the tree height; blowing this
// limit indicates a simulator bug, so we fail loudly.
const maxEvictionDepth = 128

// zeroMAC is the parent entry of a never-written child.
var zeroMAC cme.MAC

// levelLabels caches the per-level counter keys: formatting "L%d" on every
// verification-walk fetch was a measurable share of drain allocations. Tree
// heights stay well under 32 levels for any simulated capacity.
var levelLabels = func() [32]string {
	var ls [32]string
	for i := range ls {
		ls[i] = fmt.Sprintf("L%d", i)
	}
	return ls
}()

func levelLabel(level int) string {
	if level >= 0 && level < len(levelLabels) {
		return levelLabels[level]
	}
	return fmt.Sprintf("L%d", level)
}

// entryOf extracts the 8-byte entry for a child slot from a parent node.
func entryOf(parent mem.Block, slot int) cme.MAC {
	var m cme.MAC
	copy(m[:], parent[slot*cme.MACSize:(slot+1)*cme.MACSize])
	return m
}

// setEntry stores an 8-byte entry into a parent node content.
func setEntry(parent *mem.Block, slot int, m cme.MAC) {
	copy(parent[slot*cme.MACSize:(slot+1)*cme.MACSize], m[:])
}

// ensureNode returns the current logical content of metadata node (level,
// index), fetching it from NVM — with a full verification walk to the
// nearest cached ancestor — if it is not cached. The returned time is when
// the verified content is available.
func (c *Controller) ensureNode(ready sim.Time, level int, index uint64) (mem.Block, sim.Time, error) {
	if level == c.lay.RootLevel() {
		return c.root, ready, nil
	}
	addr := c.lay.NodeAddr(level, index)
	ca := c.cacheFor(level)
	if ca.Lookup(addr) {
		return c.logicalRead(addr), ready, nil
	}
	if c.evicting[addr] {
		// Write-back buffer hit: the line is mid-eviction; its current
		// content lives in the dirty table until the write-back completes.
		return c.dirtyLine[addr], ready, nil
	}
	// Miss: fetch from NVM and verify against the parent, which is fetched
	// (and verified) recursively until a cached ancestor or the root.
	c.levelFetches.Add(levelLabel(level), 1)
	raw, t := c.nvm.Read(ready, addr, memCategoryFor(level))
	pLevel, pIndex, slot := c.lay.Parent(level, index)
	parent, t, err := c.ensureNode(t, pLevel, pIndex)
	if err != nil {
		return mem.Block{}, t, err
	}
	expected := entryOf(parent, slot)
	t = c.issueMAC(t, MACVerify)
	if expected == zeroMAC {
		// Sparse-tree default: a zero parent entry asserts the child was
		// never persisted, so its NVM content must still be zero.
		if !raw.IsZero() {
			return mem.Block{}, t, &IntegrityError{
				Kind: KindTamper, Addr: addr, Level: level, Index: index,
				Detail: "nonzero content under a zero parent entry",
			}
		}
	} else if c.eng.NodeMAC(level, index, raw) != expected {
		return mem.Block{}, t, &IntegrityError{
			Kind: KindTamper, Addr: addr, Level: level, Index: index,
			Detail: "node MAC mismatch against parent entry",
		}
	}
	// The parent fetch may have cascaded into evictions whose handling
	// fetched (or is currently writing back) this very node; in that case
	// its current logical content supersedes the copy read above.
	if ca.Contains(addr) {
		return c.logicalRead(addr), t, nil
	}
	if c.evicting[addr] {
		return c.dirtyLine[addr], t, nil
	}
	c.insertLine(t, ca, addr, false, raw)
	return raw, t, nil
}

// ensureMACBlock returns the logical content of the data-MAC block at addr,
// fetching it on a miss. Data MAC blocks are not covered by the tree
// (Bonsai: the per-block MAC itself provides integrity and freshness once
// the counter is verified), so no verification walk is needed.
func (c *Controller) ensureMACBlock(ready sim.Time, addr uint64) (mem.Block, sim.Time) {
	if c.macCache.Lookup(addr) {
		return c.logicalRead(addr), ready
	}
	raw, t := c.nvm.Read(ready, addr, mem.CatMAC)
	c.insertLine(t, c.macCache, addr, false, raw)
	return raw, t
}

// insertLine allocates a line and handles the displaced victim: dirty
// victims are written back to NVM and, for counter/tree lines, their parent
// entry is recomputed and marked dirty (the lazy-update propagation step;
// under the eager scheme parents are already current, so only the
// write-back happens).
func (c *Controller) insertLine(ready sim.Time, ca *cache.Cache, addr uint64, dirty bool, content mem.Block) {
	if dirty {
		c.dirtyLine[addr] = content
	}
	ev, evicted := ca.Insert(addr, dirty)
	if !evicted || !ev.Dirty {
		return
	}
	c.evictionDepth++
	if c.evictionDepth > maxEvictionDepth {
		panic("secmem: runaway eviction cascade")
	}
	defer func() { c.evictionDepth-- }()

	level, index, isNode := c.lay.Coord(ev.Addr)
	var cat mem.Category
	switch {
	case isNode:
		cat = memCategoryFor(level)
	case c.lay.RegionOf(ev.Addr) == bmt.RegionMAC:
		cat = mem.CatMAC
	default:
		panic(fmt.Sprintf("secmem: dirty eviction of unexpected address %#x", ev.Addr))
	}
	if !isNode || c.cfg.Scheme == EagerUpdate {
		// Data-MAC blocks have no parent entry; under the eager scheme
		// parents were already updated at write time. No cascade can touch
		// the victim, so write it back directly.
		c.nvm.Write(ready, ev.Addr, c.dirtyLine[ev.Addr], cat)
		delete(c.dirtyLine, ev.Addr)
		return
	}
	// Lazy: recompute the parent entry before persisting the new content,
	// so nested fetches never observe (new content, old entry) in NVM.
	// While the parent update cascades, the victim sits in a write-back
	// buffer (the evicting set): nested cascades may re-read it — or even
	// update one of its own child entries — through that buffer, in which
	// case the parent entry is recomputed for the final content.
	c.evicting[ev.Addr] = true
	t := ready
	for attempt := 0; ; attempt++ {
		if attempt > 16 {
			panic("secmem: victim thrashing during eviction")
		}
		content := c.dirtyLine[ev.Addr]
		t = c.issueMAC(t, MACTreeUpdate)
		macVal := c.eng.NodeMAC(level, index, content)
		if err := c.storeParentEntry(t, level, index, macVal); err != nil {
			// A verification failure during eviction handling means the
			// NVM was tampered with mid-operation; surface it loudly.
			panic(fmt.Sprintf("secmem: integrity failure during eviction: %v", err))
		}
		if c.dirtyLine[ev.Addr] != content {
			continue // a nested cascade updated the victim; redo the entry
		}
		c.nvm.Write(t, ev.Addr, content, cat)
		delete(c.dirtyLine, ev.Addr)
		delete(c.evicting, ev.Addr)
		return
	}
}

// storeParentEntry writes the MAC entry for child (level, index) into its
// parent, fetching the parent if needed and marking it dirty (or updating
// the on-chip root register when the parent is the root).
func (c *Controller) storeParentEntry(ready sim.Time, level int, index uint64, macVal cme.MAC) error {
	pLevel, pIndex, slot := c.lay.Parent(level, index)
	if pLevel == c.lay.RootLevel() {
		setEntry(&c.root, slot, macVal)
		return nil
	}
	_, _, err := c.updateNodeEntry(ready, pLevel, pIndex, slot, macVal)
	return err
}

// updateNodeEntry sets one child entry in the stored tree node (level,
// index), fetching the node if absent, and returns the node's updated
// logical content. It re-reads the node's current logical content at update
// time: fetching it may trigger eviction cascades that update the very same
// node for a sibling child, and applying a stale copy would silently drop
// that sibling's entry. If a cascade evicts the node between the fetch and
// the update (consistently — the eviction wrote it back and updated its
// parent), the fetch is retried.
func (c *Controller) updateNodeEntry(ready sim.Time, level int, index uint64, slot int, macVal cme.MAC) (mem.Block, sim.Time, error) {
	addr := c.lay.NodeAddr(level, index)
	ca := c.cacheFor(level)
	t := ready
	for attempt := 0; ; attempt++ {
		if attempt > 16 {
			panic("secmem: node thrashing while updating a parent entry")
		}
		var err error
		if _, t, err = c.ensureNode(t, level, index); err != nil {
			return mem.Block{}, t, err
		}
		if ca.Contains(addr) {
			content := c.logicalRead(addr)
			setEntry(&content, slot, macVal)
			c.markDirty(ca, addr, content)
			return content, t, nil
		}
		if c.evicting[addr] {
			// The node is mid-eviction: update it in the write-back buffer;
			// the eviction loop recomputes its parent entry afterwards.
			content := c.dirtyLine[addr]
			setEntry(&content, slot, macVal)
			c.dirtyLine[addr] = content
			return content, t, nil
		}
		// Evicted by a cascade during the fetch; refetch.
	}
}

// propagateEager pushes a leaf update through every tree level to the root
// register (the eager scheme). Each level costs one MAC computation; levels
// are fetched (with verification) if absent.
func (c *Controller) propagateEager(ready sim.Time, level int, index uint64, content mem.Block) (sim.Time, error) {
	t := ready
	lv, idx, cur := level, index, content
	for lv < c.lay.RootLevel() {
		t = c.issueMAC(t, MACTreeUpdate)
		macVal := c.eng.NodeMAC(lv, idx, cur)
		pLevel, pIndex, slot := c.lay.Parent(lv, idx)
		if pLevel == c.lay.RootLevel() {
			setEntry(&c.root, slot, macVal)
			return t, nil
		}
		var err error
		cur, t, err = c.updateNodeEntry(t, pLevel, pIndex, slot, macVal)
		if err != nil {
			return t, err
		}
		lv, idx = pLevel, pIndex
	}
	return t, nil
}

// cacheOf exposes internal caches to tests in this package.
func (c *Controller) cacheOf(level int) *cache.Cache { return c.cacheFor(level) }
