// Package cache implements a generic set-associative, write-back cache with
// LRU replacement. It models both the cache hierarchy levels (L1/L2/LLC) and
// the three security-metadata caches of the paper (counter cache, MAC cache,
// Merkle-tree cache; Table I).
//
// The cache tracks presence and dirtiness only; functional content for dirty
// lines is held by the owning component (the secure memory controller keeps
// the logical values of dirty metadata lines). This split mirrors hardware:
// the array stores bits, the controller decides what they mean.
package cache

import "fmt"

// line is one cache way.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // higher = more recently used
}

// Stats counts cache events.
type Stats struct {
	Hits           int64
	Misses         int64
	Evictions      int64
	DirtyEvictions int64
}

// Cache is a set-associative write-back cache. Not safe for concurrent use;
// the simulator is single-threaded by design (deterministic schedules).
type Cache struct {
	name      string
	blockSize uint64
	numSets   uint64
	ways      int
	sets      [][]line
	tick      uint64
	stats     Stats

	preferClean bool
}

// SetPreferCleanVictims switches the replacement policy to evict the LRU
// *clean* line when one exists, falling back to LRU overall. For the
// security-metadata caches this trades extra re-fetches of clean nodes for
// fewer dirty write-backs (each of which cascades into a tree-parent
// update under the lazy scheme).
func (c *Cache) SetPreferCleanVictims(on bool) { c.preferClean = on }

// New returns a cache of sizeBytes organised as ways-associative with the
// given block size. sizeBytes must be an exact multiple of ways*blockSize.
func New(name string, sizeBytes, ways, blockSize int) *Cache {
	if sizeBytes <= 0 || ways <= 0 || blockSize <= 0 {
		panic("cache: size, ways and block size must be positive")
	}
	if sizeBytes%(ways*blockSize) != 0 {
		panic(fmt.Sprintf("cache %s: size %d not divisible by ways*blockSize %d", name, sizeBytes, ways*blockSize))
	}
	numSets := sizeBytes / (ways * blockSize)
	c := &Cache{
		name:      name,
		blockSize: uint64(blockSize),
		numSets:   uint64(numSets),
		ways:      ways,
		sets:      make([][]line, numSets),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, ways)
	}
	return c
}

// Name returns the diagnostic name.
func (c *Cache) Name() string { return c.name }

// Lines returns the total line capacity.
func (c *Cache) Lines() int { return int(c.numSets) * c.ways }

// SizeBytes returns the capacity in bytes.
func (c *Cache) SizeBytes() int { return c.Lines() * int(c.blockSize) }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	bn := addr / c.blockSize
	return bn % c.numSets, bn / c.numSets
}

func (c *Cache) addrOf(set, tag uint64) uint64 {
	return (tag*c.numSets + set) * c.blockSize
}

// Lookup probes for addr. On a hit it updates LRU state and returns true.
// On a miss it returns false and counts a miss; it does not allocate.
func (c *Cache) Lookup(addr uint64) bool {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			c.tick++
			l.lru = c.tick
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Contains probes for addr without touching LRU state or statistics.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// IsDirty reports whether addr is present and dirty (no LRU update).
func (c *Cache) IsDirty(addr uint64) bool {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			return l.dirty
		}
	}
	return false
}

// Eviction describes a line displaced by Insert.
type Eviction struct {
	Addr  uint64
	Dirty bool
}

// Insert allocates addr (which must not be present), choosing the LRU victim
// if the set is full. It returns the eviction, if any. The dirty flag sets
// the initial dirtiness of the new line.
func (c *Cache) Insert(addr uint64, dirty bool) (ev Eviction, evicted bool) {
	set, tag := c.index(addr)
	victim := -1
	cleanVictim := -1
	var oldest uint64 = ^uint64(0)
	var oldestClean uint64 = ^uint64(0)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			panic(fmt.Sprintf("cache %s: Insert of already-present address %#x", c.name, addr))
		}
		if !l.valid {
			victim = i
			oldest = 0
			break
		}
		if l.lru < oldest {
			oldest = l.lru
			victim = i
		}
		if !l.dirty && l.lru < oldestClean {
			oldestClean = l.lru
			cleanVictim = i
		}
	}
	if c.preferClean && oldest != 0 && cleanVictim >= 0 {
		victim = cleanVictim
	}
	v := &c.sets[set][victim]
	if v.valid {
		ev = Eviction{Addr: c.addrOf(set, v.tag), Dirty: v.dirty}
		evicted = true
		c.stats.Evictions++
		if v.dirty {
			c.stats.DirtyEvictions++
		}
	}
	c.tick++
	*v = line{tag: tag, valid: true, dirty: dirty, lru: c.tick}
	return ev, evicted
}

// Touch marks addr (which must be present) as most recently used and
// optionally dirty.
func (c *Cache) Touch(addr uint64, makeDirty bool) {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			c.tick++
			l.lru = c.tick
			if makeDirty {
				l.dirty = true
			}
			return
		}
	}
	panic(fmt.Sprintf("cache %s: Touch of absent address %#x", c.name, addr))
}

// Clean clears the dirty bit of addr if present.
func (c *Cache) Clean(addr uint64) {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			l.dirty = false
			return
		}
	}
}

// Invalidate removes addr if present, returning whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (wasDirty, wasPresent bool) {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			wasDirty = l.dirty
			l.valid = false
			l.dirty = false
			return wasDirty, true
		}
	}
	return false, false
}

// ValidLines returns the addresses of all valid lines, sets in order and
// ways in physical order (a deterministic hardware-scan order).
func (c *Cache) ValidLines() []uint64 {
	var out []uint64
	for set := uint64(0); set < c.numSets; set++ {
		for i := range c.sets[set] {
			l := &c.sets[set][i]
			if l.valid {
				out = append(out, c.addrOf(set, l.tag))
			}
		}
	}
	return out
}

// DirtyLines returns the addresses of all valid dirty lines in scan order.
func (c *Cache) DirtyLines() []uint64 {
	var out []uint64
	for set := uint64(0); set < c.numSets; set++ {
		for i := range c.sets[set] {
			l := &c.sets[set][i]
			if l.valid && l.dirty {
				out = append(out, c.addrOf(set, l.tag))
			}
		}
	}
	return out
}

// CountValid returns the number of valid lines.
func (c *Cache) CountValid() int {
	n := 0
	for set := range c.sets {
		for i := range c.sets[set] {
			if c.sets[set][i].valid {
				n++
			}
		}
	}
	return n
}

// CountDirty returns the number of valid dirty lines.
func (c *Cache) CountDirty() int {
	n := 0
	for set := range c.sets {
		for i := range c.sets[set] {
			if c.sets[set][i].valid && c.sets[set][i].dirty {
				n++
			}
		}
	}
	return n
}

// InvalidateAll clears the cache (models loss of volatile state at a crash).
func (c *Cache) InvalidateAll() {
	for set := range c.sets {
		for i := range c.sets[set] {
			c.sets[set][i] = line{}
		}
	}
}
