package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	// Table I LLC: 16MB, 16-way, 64B blocks.
	c := New("llc", 16<<20, 16, 64)
	if c.Lines() != 262144 {
		t.Errorf("16MB/64B lines = %d, want 262144", c.Lines())
	}
	if c.SizeBytes() != 16<<20 {
		t.Errorf("SizeBytes = %d", c.SizeBytes())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []struct{ size, ways, bs int }{
		{0, 1, 64}, {64, 0, 64}, {64, 1, 0}, {100, 1, 64},
	}
	for _, cse := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", cse)
				}
			}()
			New("bad", cse.size, cse.ways, cse.bs)
		}()
	}
}

func TestMissThenHit(t *testing.T) {
	c := New("t", 4*64, 2, 64)
	if c.Lookup(0) {
		t.Fatal("empty cache hit")
	}
	c.Insert(0, false)
	if !c.Lookup(0) {
		t.Fatal("inserted line missed")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// 1 set, 2 ways, 64B blocks: addresses 0, 64, 128 map to the same set.
	c := New("t", 2*64, 2, 64)
	c.Insert(0, false)
	c.Insert(64, true)
	c.Lookup(0) // make 0 MRU; victim should be 64
	ev, evicted := c.Insert(128, false)
	if !evicted {
		t.Fatal("full set insert must evict")
	}
	if ev.Addr != 64 || !ev.Dirty {
		t.Errorf("evicted %+v, want addr=64 dirty=true", ev)
	}
	if !c.Contains(0) || !c.Contains(128) || c.Contains(64) {
		t.Error("post-eviction contents wrong")
	}
	if c.Stats().DirtyEvictions != 1 {
		t.Error("dirty eviction not counted")
	}
}

func TestPreferCleanVictims(t *testing.T) {
	// 1 set, 2 ways: one dirty (LRU) and one clean (MRU) line.
	c := New("t", 2*64, 2, 64)
	c.SetPreferCleanVictims(true)
	c.Insert(0, true)   // dirty, will become LRU
	c.Insert(64, false) // clean, MRU
	ev, evicted := c.Insert(128, false)
	if !evicted {
		t.Fatal("no eviction")
	}
	// Plain LRU would evict the dirty line at 0; clean preference must
	// pick the clean line at 64 even though it is more recently used.
	if ev.Addr != 64 || ev.Dirty {
		t.Errorf("evicted %+v, want clean line 64", ev)
	}
	// With only dirty lines, fall back to LRU.
	c2 := New("t2", 2*64, 2, 64)
	c2.SetPreferCleanVictims(true)
	c2.Insert(0, true)
	c2.Insert(64, true)
	ev, _ = c2.Insert(128, false)
	if ev.Addr != 0 || !ev.Dirty {
		t.Errorf("all-dirty fallback evicted %+v, want LRU dirty line 0", ev)
	}
	// Invalid ways are always preferred over any eviction.
	c3 := New("t3", 2*64, 2, 64)
	c3.SetPreferCleanVictims(true)
	c3.Insert(0, true)
	if _, evicted := c3.Insert(64, false); evicted {
		t.Error("evicted despite a free way")
	}
}

func TestInsertPresentPanics(t *testing.T) {
	c := New("t", 2*64, 2, 64)
	c.Insert(0, false)
	defer func() {
		if recover() == nil {
			t.Error("double insert did not panic")
		}
	}()
	c.Insert(0, false)
}

func TestTouchDirty(t *testing.T) {
	c := New("t", 2*64, 2, 64)
	c.Insert(0, false)
	if c.IsDirty(0) {
		t.Fatal("clean insert reported dirty")
	}
	c.Touch(0, true)
	if !c.IsDirty(0) {
		t.Fatal("Touch(dirty) did not set dirty bit")
	}
	c.Clean(0)
	if c.IsDirty(0) {
		t.Fatal("Clean did not clear dirty bit")
	}
}

func TestTouchAbsentPanics(t *testing.T) {
	c := New("t", 2*64, 2, 64)
	defer func() {
		if recover() == nil {
			t.Error("Touch of absent line did not panic")
		}
	}()
	c.Touch(0, true)
}

func TestInvalidate(t *testing.T) {
	c := New("t", 2*64, 2, 64)
	c.Insert(0, true)
	dirty, present := c.Invalidate(0)
	if !dirty || !present {
		t.Error("Invalidate of dirty line returned wrong flags")
	}
	if c.Contains(0) {
		t.Error("line still present after Invalidate")
	}
	if _, present := c.Invalidate(0); present {
		t.Error("second Invalidate reported present")
	}
}

func TestDirtyAndValidLines(t *testing.T) {
	c := New("t", 8*64, 2, 64)
	c.Insert(0, true)
	c.Insert(64, false)
	c.Insert(128, true)
	if got := len(c.ValidLines()); got != 3 {
		t.Errorf("ValidLines = %d, want 3", got)
	}
	dirty := c.DirtyLines()
	if len(dirty) != 2 {
		t.Fatalf("DirtyLines = %v, want 2 lines", dirty)
	}
	if c.CountValid() != 3 || c.CountDirty() != 2 {
		t.Error("counts wrong")
	}
	c.InvalidateAll()
	if c.CountValid() != 0 {
		t.Error("InvalidateAll left valid lines")
	}
}

func TestAddressReconstruction(t *testing.T) {
	// Lines reported by ValidLines must be the exact addresses inserted.
	c := New("t", 1<<12, 4, 64)
	addrs := []uint64{0, 64, 4096, 1 << 20, 3 << 21}
	for _, a := range addrs {
		c.Insert(a, false)
	}
	got := make(map[uint64]bool)
	for _, a := range c.ValidLines() {
		got[a] = true
	}
	for _, a := range addrs {
		if !got[a] {
			t.Errorf("address %#x lost in reconstruction", a)
		}
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	c := New("t", 16*64, 4, 64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := uint64(rng.Intn(256)) * 64
		if !c.Lookup(a) {
			c.Insert(a, rng.Intn(2) == 0)
		}
		if c.CountValid() > c.Lines() {
			t.Fatal("valid lines exceed capacity")
		}
	}
}

// Property: after any insert/lookup sequence, every line address reported by
// ValidLines maps back to a set/tag that round-trips (self-consistency), and
// dirty lines are a subset of valid lines.
func TestConsistencyProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New("p", 8*64, 2, 64)
		present := make(map[uint64]bool)
		for _, op := range ops {
			a := uint64(op%64) * 64
			if c.Contains(a) {
				c.Touch(a, op&0x100 != 0)
			} else {
				ev, evicted := c.Insert(a, op&0x100 != 0)
				if evicted {
					delete(present, ev.Addr)
				}
				present[a] = true
			}
		}
		valid := c.ValidLines()
		if len(valid) != len(present) {
			return false
		}
		for _, a := range valid {
			if !present[a] {
				return false
			}
		}
		validSet := make(map[uint64]bool)
		for _, a := range valid {
			validSet[a] = true
		}
		for _, a := range c.DirtyLines() {
			if !validSet[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: an eviction victim always comes from the same set as the
// inserted address.
func TestEvictionSameSetProperty(t *testing.T) {
	f := func(ops []uint32) bool {
		const numSets = 4
		c := New("p", numSets*2*64, 2, 64)
		for _, op := range ops {
			a := uint64(op%1024) * 64
			if c.Contains(a) {
				continue
			}
			ev, evicted := c.Insert(a, false)
			if evicted && (ev.Addr/64)%numSets != (a/64)%numSets {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
