// Package hierarchy models the contents of the processor cache hierarchy at
// the moment a crash is detected: the set of dirty cache blocks that the EPD
// (extended persistence domain) machinery must drain to the NVM.
//
// EPD platform requirements are defined by the worst case (§III), so the
// package provides the paper's worst-case fill — every line of every level
// dirty, with pairwise physical distance of at least 16 KB so that security-
// metadata locality is minimal (§V-A) — along with denser patterns used by
// the sensitivity ablations.
//
// The hierarchy is modelled as its *contents* (an ordered set of dirty
// blocks with data), not as an insertion-time simulator: the paper's
// draining study depends only on which blocks are dirty when the crash
// hits, and platform sizing assumes all of them are.
package hierarchy

import (
	"fmt"
	"math/rand"

	"repro/internal/mem"
)

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name         string
	SizeBytes    int
	Ways         int
	LatencyCycle int // access latency in core cycles (Table I); informational
}

// Lines returns the level's line capacity.
func (lc LevelConfig) Lines() int { return lc.SizeBytes / mem.BlockSize }

// Config describes the hierarchy.
type Config struct {
	Levels []LevelConfig
}

// TableI returns the paper's hierarchy: L1 64 KB 2-way (2 cycles),
// L2 2 MB 8-way (20 cycles), inclusive LLC 16 MB 16-way (32 cycles).
func TableI() Config { return TableIWithLLC(16 << 20) }

// TableIWithLLC returns the Table I hierarchy with a different LLC capacity,
// used by the paper's LLC-size sensitivity studies (Figs. 14-16).
func TableIWithLLC(llcBytes int) Config {
	return Config{Levels: []LevelConfig{
		{Name: "L1", SizeBytes: 64 << 10, Ways: 2, LatencyCycle: 2},
		{Name: "L2", SizeBytes: 2 << 20, Ways: 8, LatencyCycle: 20},
		{Name: "LLC", SizeBytes: llcBytes, Ways: 16, LatencyCycle: 32},
	}}
}

// TotalLines returns the total line capacity across all levels; the paper's
// worst case assumes all of them dirty with distinct addresses.
func (c Config) TotalLines() int {
	n := 0
	for _, l := range c.Levels {
		n += l.Lines()
	}
	return n
}

// DirtyBlock is one block awaiting drain: its original physical address and
// its plaintext content.
type DirtyBlock struct {
	Addr uint64
	Data mem.Block
}

// Hierarchy holds the dirty contents of the cache hierarchy.
type Hierarchy struct {
	cfg   Config
	data  map[uint64]mem.Block
	order []uint64 // insertion order, for deterministic iteration
}

// New returns an empty hierarchy.
func New(cfg Config) *Hierarchy {
	if len(cfg.Levels) == 0 {
		panic("hierarchy: config needs at least one level")
	}
	return &Hierarchy{cfg: cfg, data: make(map[uint64]mem.Block)}
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Write inserts or updates a dirty block. Addresses must be 64-byte aligned.
func (h *Hierarchy) Write(addr uint64, data mem.Block) {
	if addr%mem.BlockSize != 0 {
		panic(fmt.Sprintf("hierarchy: unaligned address %#x", addr))
	}
	if _, ok := h.data[addr]; !ok {
		if len(h.data) >= h.cfg.TotalLines() {
			panic("hierarchy: dirty blocks exceed total line capacity")
		}
		h.order = append(h.order, addr)
	}
	h.data[addr] = data
}

// Read returns the content of a dirty block, if present.
func (h *Hierarchy) Read(addr uint64) (mem.Block, bool) {
	b, ok := h.data[addr]
	return b, ok
}

// DirtyCount returns the number of dirty blocks.
func (h *Hierarchy) DirtyCount() int { return len(h.data) }

// Clear models the loss of the (volatile) cache arrays, e.g. after draining
// completes and power is lost.
func (h *Hierarchy) Clear() {
	h.data = make(map[uint64]mem.Block)
	h.order = nil
}

// DirtyBlocks returns the dirty blocks in insertion order.
func (h *Hierarchy) DirtyBlocks() []DirtyBlock {
	out := make([]DirtyBlock, 0, len(h.order))
	for _, a := range h.order {
		out = append(out, DirtyBlock{Addr: a, Data: h.data[a]})
	}
	return out
}

// DirtyBlocksShuffled returns the dirty blocks in a pseudo-random flush
// order. The worst-case drain flushes lines with no useful ordering
// (§V-A: "randomly filled with sparse contents").
func (h *Hierarchy) DirtyBlocksShuffled(rng *rand.Rand) []DirtyBlock {
	out := h.DirtyBlocks()
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Golden returns a copy of the dirty contents keyed by address, used by
// end-to-end tests to check recovery.
func (h *Hierarchy) Golden() map[uint64]mem.Block {
	out := make(map[uint64]mem.Block, len(h.data))
	for a, b := range h.data {
		out[a] = b
	}
	return out
}

// FillPattern selects how FillAllDirty chooses addresses.
type FillPattern int

// Fill patterns.
const (
	// PatternWorstCaseSparse places blocks on distinct pseudo-random 16 KB
	// slots, the paper's worst case: every block in its own counter region
	// and MAC region, minimal metadata-cache locality.
	PatternWorstCaseSparse FillPattern = iota
	// PatternDense places blocks contiguously from address 0 (best case for
	// the baselines' metadata locality).
	PatternDense
	// PatternStride places block i at i*Stride (Stride from FillOptions).
	PatternStride
)

// FillOptions parameterises FillAllDirty.
type FillOptions struct {
	Pattern  FillPattern
	DataSize uint64 // size of the protected data region
	Stride   uint64 // used by PatternStride; bytes, 64B multiple
	Seed     int64  // rng seed for slot selection and data generation
}

// SparseSlotBytes is the minimum physical distance of the paper's
// worst-case fill.
const SparseSlotBytes = 16 << 10

// FillAllDirty fills every line of every level with a dirty block of
// pseudo-random data and returns the number of blocks placed. The total
// equals Config.TotalLines (295 936 for the Table I hierarchy, the count in
// the paper's Fig. 6).
func (h *Hierarchy) FillAllDirty(opt FillOptions) int {
	n := h.cfg.TotalLines()
	if len(h.data) != 0 {
		panic("hierarchy: FillAllDirty on a non-empty hierarchy")
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	addrs := make([]uint64, 0, n)
	switch opt.Pattern {
	case PatternWorstCaseSparse:
		slots := opt.DataSize / SparseSlotBytes
		if uint64(n) > slots {
			panic(fmt.Sprintf("hierarchy: %d blocks need %d 16KB slots but data region has %d", n, n, slots))
		}
		// Choose n distinct slots via a partial Fisher-Yates over the slot
		// index space, sparse-map based so 32 GB regions stay cheap.
		swap := make(map[uint64]uint64)
		for i := 0; i < n; i++ {
			j := uint64(i) + uint64(rng.Int63n(int64(slots-uint64(i))))
			vi, vj := valueAt(swap, uint64(i)), valueAt(swap, j)
			swap[uint64(i)], swap[j] = vj, vi
			addrs = append(addrs, vj*SparseSlotBytes)
		}
	case PatternDense:
		if uint64(n)*mem.BlockSize > opt.DataSize {
			panic("hierarchy: dense fill exceeds data region")
		}
		for i := 0; i < n; i++ {
			addrs = append(addrs, uint64(i)*mem.BlockSize)
		}
	case PatternStride:
		if opt.Stride == 0 || opt.Stride%mem.BlockSize != 0 {
			panic("hierarchy: stride must be a positive 64B multiple")
		}
		if uint64(n)*opt.Stride > opt.DataSize {
			panic("hierarchy: strided fill exceeds data region")
		}
		for i := 0; i < n; i++ {
			addrs = append(addrs, uint64(i)*opt.Stride)
		}
	default:
		panic("hierarchy: unknown fill pattern")
	}
	for _, a := range addrs {
		h.Write(a, randomBlock(rng))
	}
	return n
}

func valueAt(swap map[uint64]uint64, i uint64) uint64 {
	if v, ok := swap[i]; ok {
		return v
	}
	return i
}

func randomBlock(rng *rand.Rand) mem.Block {
	var b mem.Block
	for i := 0; i < mem.BlockSize; i += 8 {
		v := rng.Uint64()
		for k := 0; k < 8; k++ {
			b[i+k] = byte(v >> (8 * k))
		}
	}
	return b
}
