package hierarchy

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

func TestTableIGeometry(t *testing.T) {
	cfg := TableI()
	if got := cfg.TotalLines(); got != 295936 {
		t.Fatalf("Table I total lines = %d, want 295936 (paper Fig. 6)", got)
	}
	if len(cfg.Levels) != 3 {
		t.Fatal("Table I must have three levels")
	}
	if cfg.Levels[2].SizeBytes != 16<<20 || cfg.Levels[2].Ways != 16 {
		t.Error("LLC config wrong")
	}
}

func TestTableIWithLLCSweep(t *testing.T) {
	// Figs. 14-16 sweep the LLC size.
	for _, c := range []struct {
		llc  int
		want int
	}{
		{8 << 20, 131072 + 32768 + 1024},
		{16 << 20, 295936},
		{32 << 20, 524288 + 32768 + 1024},
		{128 << 20, 2097152 + 32768 + 1024},
	} {
		if got := TableIWithLLC(c.llc).TotalLines(); got != c.want {
			t.Errorf("LLC %dMB lines = %d, want %d", c.llc>>20, got, c.want)
		}
	}
}

func TestWriteReadAndCount(t *testing.T) {
	h := New(TableI())
	var b mem.Block
	b[0] = 0xAA
	h.Write(0x4000, b)
	got, ok := h.Read(0x4000)
	if !ok || got != b {
		t.Fatal("read-back failed")
	}
	if h.DirtyCount() != 1 {
		t.Error("dirty count wrong")
	}
	// Overwriting the same address must not grow the count.
	h.Write(0x4000, mem.Block{})
	if h.DirtyCount() != 1 {
		t.Error("duplicate write grew dirty count")
	}
}

func TestWriteUnalignedPanics(t *testing.T) {
	h := New(TableI())
	defer func() {
		if recover() == nil {
			t.Error("unaligned write did not panic")
		}
	}()
	h.Write(3, mem.Block{})
}

func TestCapacityEnforced(t *testing.T) {
	cfg := Config{Levels: []LevelConfig{{Name: "tiny", SizeBytes: 2 * 64, Ways: 1}}}
	h := New(cfg)
	h.Write(0, mem.Block{})
	h.Write(64, mem.Block{})
	defer func() {
		if recover() == nil {
			t.Error("over-capacity write did not panic")
		}
	}()
	h.Write(128, mem.Block{})
}

func TestFillWorstCaseSparse(t *testing.T) {
	cfg := TableIWithLLC(1 << 20) // small for test speed: 16384+32768+1024
	h := New(cfg)
	n := h.FillAllDirty(FillOptions{Pattern: PatternWorstCaseSparse, DataSize: 32 << 30, Seed: 1})
	if n != cfg.TotalLines() {
		t.Fatalf("filled %d, want %d", n, cfg.TotalLines())
	}
	if h.DirtyCount() != n {
		t.Fatalf("dirty count %d, want %d", h.DirtyCount(), n)
	}
	// Every address must be 16KB-slot aligned and distinct, guaranteeing
	// pairwise distance >= 16KB (the paper's worst case).
	seen := make(map[uint64]bool)
	for _, db := range h.DirtyBlocks() {
		if db.Addr%SparseSlotBytes != 0 {
			t.Fatalf("address %#x not on a 16KB slot", db.Addr)
		}
		if seen[db.Addr] {
			t.Fatalf("duplicate address %#x", db.Addr)
		}
		if db.Addr >= 32<<30 {
			t.Fatalf("address %#x outside data region", db.Addr)
		}
		seen[db.Addr] = true
	}
}

func TestFillDense(t *testing.T) {
	cfg := Config{Levels: []LevelConfig{{Name: "c", SizeBytes: 64 * 64, Ways: 1}}}
	h := New(cfg)
	h.FillAllDirty(FillOptions{Pattern: PatternDense, DataSize: 1 << 20, Seed: 1})
	blocks := h.DirtyBlocks()
	for i, db := range blocks {
		if db.Addr != uint64(i)*mem.BlockSize {
			t.Fatalf("dense block %d at %#x", i, db.Addr)
		}
	}
}

func TestFillStride(t *testing.T) {
	cfg := Config{Levels: []LevelConfig{{Name: "c", SizeBytes: 16 * 64, Ways: 1}}}
	h := New(cfg)
	h.FillAllDirty(FillOptions{Pattern: PatternStride, Stride: 4096, DataSize: 1 << 20, Seed: 1})
	for i, db := range h.DirtyBlocks() {
		if db.Addr != uint64(i)*4096 {
			t.Fatalf("strided block %d at %#x", i, db.Addr)
		}
	}
}

func TestFillDeterministicBySeed(t *testing.T) {
	mk := func(seed int64) []DirtyBlock {
		h := New(TableIWithLLC(1 << 20))
		h.FillAllDirty(FillOptions{Pattern: PatternWorstCaseSparse, DataSize: 32 << 30, Seed: seed})
		return h.DirtyBlocks()
	}
	a, b := mk(7), mk(7)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Addr != b[i].Addr || a[i].Data != b[i].Data {
			t.Fatal("same seed produced different fills")
		}
	}
	c := mk(8)
	same := true
	for i := range a {
		if a[i].Addr != c[i].Addr {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical address sequences")
	}
}

func TestFillPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"non-empty": func() {
			h := New(TableI())
			h.Write(0, mem.Block{})
			h.FillAllDirty(FillOptions{Pattern: PatternDense, DataSize: 32 << 30})
		},
		"sparse too small": func() {
			h := New(TableI())
			h.FillAllDirty(FillOptions{Pattern: PatternWorstCaseSparse, DataSize: 1 << 20})
		},
		"bad stride": func() {
			h := New(TableIWithLLC(1 << 20))
			h.FillAllDirty(FillOptions{Pattern: PatternStride, Stride: 7, DataSize: 32 << 30})
		},
		"unknown pattern": func() {
			h := New(TableIWithLLC(1 << 20))
			h.FillAllDirty(FillOptions{Pattern: FillPattern(99), DataSize: 32 << 30})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestShuffledOrderIsPermutation(t *testing.T) {
	h := New(TableIWithLLC(1 << 20))
	h.FillAllDirty(FillOptions{Pattern: PatternWorstCaseSparse, DataSize: 32 << 30, Seed: 3})
	orig := h.DirtyBlocks()
	shuf := h.DirtyBlocksShuffled(rand.New(rand.NewSource(9)))
	if len(shuf) != len(orig) {
		t.Fatal("shuffle changed length")
	}
	addrs := make(map[uint64]bool)
	for _, db := range orig {
		addrs[db.Addr] = true
	}
	moved := false
	for i, db := range shuf {
		if !addrs[db.Addr] {
			t.Fatal("shuffle invented an address")
		}
		if db.Addr != orig[i].Addr {
			moved = true
		}
	}
	if !moved {
		t.Error("shuffle left order unchanged (astronomically unlikely)")
	}
}

func TestGoldenSnapshot(t *testing.T) {
	h := New(TableI())
	h.Write(0, mem.Block{0: 1})
	g := h.Golden()
	h.Write(0, mem.Block{0: 2})
	if g[0][0] != 1 {
		t.Error("golden snapshot mutated by later write")
	}
	h.Clear()
	if h.DirtyCount() != 0 {
		t.Error("Clear left dirty blocks")
	}
}

func TestNewEmptyConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty config did not panic")
		}
	}()
	New(Config{})
}
