// Package core implements the paper's primary contribution: draining the
// cache hierarchy of an extended-persistence-domain (EPD) system to
// non-volatile memory when a power outage is detected, under four schemes:
//
//   - NonSecure: the reference EPD without memory security — each dirty
//     line is written in place, nothing else (Fig. 8 part A).
//   - BaseLU / BaseEU: the baseline secure EPD — each dirty line goes
//     through the full run-time secure write path (counter fetch + verify,
//     tree update lazy or eager, data MAC), then the security-metadata
//     caches are flushed (Fig. 8 part B, §IV-B).
//   - HorusSLM / HorusDLM: Horus — lines are encrypted with the on-chip
//     drain counter and written sequentially to the cache hierarchy vault
//     (CHV) with coalesced address and MAC blocks, touching no run-time
//     security metadata at all (Fig. 8 part C, Fig. 9); DLM additionally
//     coalesces MACs hierarchically through two on-chip registers
//     (Fig. 10).
//
// The package produces both the functional outcome (bytes in the simulated
// NVM plus the persistent-register state recovery needs) and the metrics
// the paper's evaluation reports: draining time, per-category memory
// accesses, and per-category MAC calculations.
package core

import (
	"fmt"

	"repro/internal/bmt"
	"repro/internal/cme"
	"repro/internal/energy"
	"repro/internal/hierarchy"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/obs/evlog"
	"repro/internal/obs/timeseries"
	"repro/internal/secmem"
	"repro/internal/sim"
	"repro/internal/timeline"
)

// Scheme selects a draining design: a handle into the registry of
// DrainScheme implementations (see registry.go). Handles are small dense
// ints assigned in registration order, so the built-in designs keep their
// historical constant values.
type Scheme int

// Draining schemes compared in the paper's evaluation (§V-A). Their
// behavior lives in registered DrainScheme implementations; registration
// order in registry.go pins these handles.
const (
	NonSecure Scheme = iota
	BaseLU
	BaseEU
	HorusSLM
	HorusDLM
)

// String returns the registered name for the scheme.
func (s Scheme) String() string {
	if impl, ok := implOf(s); ok {
		return impl.Name()
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Secure reports whether the scheme provides memory security. Unregistered
// handles report true (fail safe: an unknown design is assumed to need the
// secure controller).
func (s Scheme) Secure() bool {
	if impl, ok := implOf(s); ok {
		return impl.Secure()
	}
	return s != NonSecure
}

// UsesCHV reports whether the scheme drains into the cache hierarchy vault.
func (s Scheme) UsesCHV() bool {
	if impl, ok := implOf(s); ok {
		return impl.UsesCHV()
	}
	return false
}

// RuntimeScheme returns the integrity-tree update scheme the design runs at
// run time (and, for the baselines, during draining).
func (s Scheme) RuntimeScheme() secmem.UpdateScheme {
	if impl, ok := implOf(s); ok {
		return impl.RuntimeScheme()
	}
	return secmem.LazyUpdate
}

// AllSchemes lists every scheme in the paper's presentation order.
func AllSchemes() []Scheme {
	return []Scheme{NonSecure, BaseLU, BaseEU, HorusSLM, HorusDLM}
}

// MAC-calculation categories produced by the Horus drain path, extending
// the secmem categories for Fig. 13's breakdown.
const (
	MACCHVData = "chv-data-mac" // MAC protecting a drained block (+its address and drain counter)
	MACCHVL2   = "chv-l2-mac"   // second-level MAC of the DLM scheme
)

// PersistentState is the on-chip persistent register file that survives a
// crash: the drain counters (§IV-C1), the CHV episode bookkeeping, the
// integrity-tree root, and the metadata-cache vault record.
type PersistentState struct {
	// DC is the drain counter: monotonically increasing across all flush
	// operations ever performed, guaranteeing unique pads.
	DC uint64
	// EDC is the ephemeral drain counter: the number of blocks drained in
	// the most recent episode (cleared after each recovery).
	EDC uint64
	// Episode counts completed draining episodes over the machine's life.
	Episode uint64
	// CHVRegion is the rotation region the last episode drained into
	// (wear levelling across Layout.CHVRegions regions).
	CHVRegion uint64
	// Root is the integrity-tree root register content.
	Root mem.Block
	// Vault is the metadata-cache vault record of the last drain.
	Vault secmem.VaultRecord
	// Scheme records which design produced this state.
	Scheme Scheme
}

// Result reports one draining episode.
type Result struct {
	Scheme Scheme

	// DrainTime is the simulated wall-clock time from outage detection to
	// the last durable write, the paper's power-hold-up proxy (Fig. 11).
	DrainTime sim.Time

	// BlocksDrained is the number of dirty cache lines flushed.
	BlocksDrained int

	// MemReads / MemWrites are per-category access counts (Figs. 6 and 12).
	MemReads  *sim.CounterSet
	MemWrites *sim.CounterSet

	// MACCalcs is the per-category MAC-computation count (Fig. 13).
	MACCalcs *sim.CounterSet

	// AESOps counts one-time-pad generations.
	AESOps int64

	// Persist is the persistent-register state recovery starts from.
	Persist PersistentState
}

// TotalMemAccesses returns reads + writes (the Fig. 6 metric).
func (r Result) TotalMemAccesses() int64 {
	return r.MemReads.Total() + r.MemWrites.Total()
}

// TotalMACs returns the total MAC calculations.
func (r Result) TotalMACs() int64 { return r.MACCalcs.Total() }

// System bundles the components a drain operates on.
type System struct {
	Layout *bmt.Layout
	Enc    *cme.Engine
	NVM    *mem.Controller
	Sec    *secmem.Controller // run-time secure controller (baselines + metadata flush)

	// Metrics, when non-nil, receives lifecycle spans and drain-level
	// counters; the NVM and secure controller attach to the same registry
	// via their own SetMetrics. All instrumentation is nil-safe.
	Metrics *obs.Registry

	// Timeline, when non-nil, records the per-resource event timeline of the
	// drain. The NVM and secure controller attach to the same recorder via
	// their own SetTimeline; the drainer brackets each episode so the
	// recording covers exactly the measured drain window.
	Timeline *timeline.Recorder

	// Timeseries, when non-nil, receives windowed sim-time series during
	// the drain: blocks flushed per window, the cumulative energy
	// drawdown (and its fraction of BatteryJoules), and the final drain
	// time. The NVM attaches to the same sampler via SetTimeseries for
	// per-bank queue depth. All sampling is nil-safe and read-only with
	// respect to simulated state.
	Timeseries *timeseries.Sampler

	// Evlog, when non-nil, is the detection-forensics flight recorder the
	// recovery paths feed: one structured record per recovery decision
	// (check evaluated, region touched, expected-vs-got identity), captured
	// into any typed recovery error as its provenance chain. Nil-safe.
	Evlog *evlog.Log

	// Energy holds the energy-model constants the drawdown series uses;
	// zero params record a zero-energy series (callers that want the
	// paper's numbers pass energy.DefaultParams()).
	Energy energy.Params

	// BatteryJoules, when positive, is the hold-up energy budget the
	// drain races against (Table III volume × technology density). It
	// enables the horus_ts_energy_budget_frac series the drain-deadline
	// SLO evaluates.
	BatteryJoules float64

	// Shards is the drain pipeline's crypto fan-out width: the number of
	// shard-owned engine clones that precompute OTPs and MACs while the
	// timed state machine replays serially (DESIGN.md §13). Zero or
	// negative selects GOMAXPROCS; 1 is the fully inline serial path.
	// Outputs are byte-identical at any value.
	Shards int
}

// Drainer executes one draining episode for a given scheme.
type Drainer struct {
	scheme Scheme
	impl   DrainScheme
	sys    *System

	// Horus on-chip resources (Fig. 9, Fig. 10, §IV-D).
	dc       uint64 // drain counter register (persistent)
	edc      uint64 // ephemeral drain counter register (persistent)
	episodes uint64 // completed draining episodes (persistent)
	region   uint64 // CHV rotation region of the episode in progress
	startDC  uint64 // dc value at entry of the episode in progress

	// tsb caches the episode's time-series handles; nil when sampling is
	// off, making sampleBlock a single pointer check on the per-block
	// drain hot path.
	tsb *drainSampling

	// Sharded drain pipeline (shardpipe.go): effective shard count and the
	// lazily built shard-owned crypto contexts.
	shards  int
	engines []*cme.Engine
}

// drainSampling is the per-episode time-series state of one drain.
type drainSampling struct {
	blocks    *timeseries.Series // counter: blocks flushed per window
	energyJ   *timeseries.Series // gauge: cumulative drain energy, joules
	budget    *timeseries.Series // gauge: energyJ / BatteryJoules (nil without a budget)
	drainTime *timeseries.Series // gauge: final drain time, picoseconds
	params    energy.Params
	budgetJ   float64
}

// startSampling builds the episode's series handles (no-op when the system
// has no sampler).
func (d *Drainer) startSampling() {
	if d.sys.Timeseries == nil {
		d.tsb = nil
		return
	}
	ts := d.sys.Timeseries
	scheme := d.scheme.String()
	s := &drainSampling{
		blocks:    ts.Counter("horus_ts_blocks_drained", "scheme", scheme),
		energyJ:   ts.Gauge("horus_ts_energy_j", "scheme", scheme),
		drainTime: ts.Gauge("horus_ts_drain_time_ps", "scheme", scheme),
		params:    d.sys.Energy,
		budgetJ:   d.sys.BatteryJoules,
	}
	if s.budgetJ > 0 {
		s.budget = ts.Gauge("horus_ts_energy_budget_frac", "scheme", scheme)
	}
	d.tsb = s
}

// sampleBlock records one flushed block at running drain time t: the block
// count and the energy model evaluated over the accesses issued so far.
// One pointer check when sampling is off.
func (d *Drainer) sampleBlock(t sim.Time) {
	s := d.tsb
	if s == nil {
		return
	}
	s.blocks.Record(int64(t), 1)
	s.sampleEnergy(t, d.sys)
}

func (s *drainSampling) sampleEnergy(t sim.Time, sys *System) {
	e := energy.Estimate(s.params, t, sys.NVM.TotalWrites(), sys.NVM.TotalReads()).Total()
	s.energyJ.Record(int64(t), e)
	if s.budget != nil {
		s.budget.Record(int64(t), e/s.budgetJ)
	}
}

// NewDrainer returns a drainer for the scheme over the system. The initial
// drain-counter value persists from previous episodes (pass 0 for a fresh
// machine). The scheme must be registered (the five built-ins always are).
func NewDrainer(scheme Scheme, sys *System, initialDC uint64) *Drainer {
	if sys.Layout == nil || sys.Enc == nil || sys.NVM == nil {
		panic("core: incomplete system")
	}
	impl, ok := newImpl(scheme)
	if !ok {
		panic("core: unknown scheme " + scheme.String())
	}
	if impl.Secure() && sys.Sec == nil {
		panic("core: secure schemes need a secmem controller")
	}
	return &Drainer{scheme: scheme, impl: impl, sys: sys, dc: initialDC,
		shards: resolveShards(sys.Shards)}
}

// Drain flushes every dirty block of the hierarchy (in the given flush
// order) and then the security-metadata caches, returning the episode's
// metrics and persistent state. Statistics of the underlying NVM and
// secure controller are reset at entry so the result covers exactly the
// draining window, as the paper measures it.
func (d *Drainer) Drain(blocks []hierarchy.DirtyBlock) (Result, error) {
	d.sys.NVM.ResetStats()
	if d.sys.Sec != nil {
		d.sys.Sec.ResetStats()
	}

	// Wear levelling: rotate the CHV target region per episode.
	d.region = d.episodes % d.sys.Layout.CHVRegions
	d.startDC = d.dc
	d.startSampling()

	reg := d.sys.Metrics
	drainSpan := reg.StartSpan("drain", 0)
	blocksSpan := reg.StartSpan("flush-blocks", 0)
	d.sys.Timeline.BeginEpisode(d.scheme.String())

	d.sys.NVM.MarkStage("drain:blocks")
	t, err := d.impl.Drain(d, blocks)
	if err != nil {
		drainSpan.EndAt(int64(t))
		return Result{}, err
	}
	blocksSpan.EndAt(int64(t))

	// Flush the security-metadata caches (negligible for all schemes per
	// Fig. 12, but required for crash consistency).
	var vault secmem.VaultRecord
	if d.impl.Secure() {
		if d.shards > 1 {
			// Hand the shard-owned crypto contexts to the metadata flush so
			// the vault's leaf MACs fan out over the per-bank work lists.
			d.sys.Sec.SetShardEngines(d.shardEngines())
		}
		d.sys.NVM.MarkStage("drain:meta-flush")
		metaSpan := reg.StartSpan("flush-metadata", int64(t))
		var done sim.Time
		vault, done = d.sys.Sec.FlushMetadataCaches(t)
		t = sim.MaxTime(t, done)
		metaSpan.EndAt(int64(t))
	}

	t = sim.MaxTime(t, d.sys.NVM.LastDone())
	if d.sys.Sec != nil {
		t = sim.MaxTime(t, d.sys.Sec.EnginesLastDone())
	}
	drainSpan.EndAt(int64(t))
	d.sys.Timeline.EndEpisode(t)

	// Final samples at the drain's end instant, over the episode's final
	// access totals: the energy series' last point is exactly the Table II
	// number EnergyOf computes from the Result.
	if d.tsb != nil {
		d.tsb.sampleEnergy(t, d.sys)
		d.tsb.drainTime.Record(int64(t), float64(t))
	}

	d.edc = uint64(len(blocks))
	d.episodes++
	res := Result{
		Scheme:        d.scheme,
		DrainTime:     t,
		BlocksDrained: len(blocks),
		MemReads:      d.sys.NVM.Reads().Clone(),
		MemWrites:     d.sys.NVM.Writes().Clone(),
		MACCalcs:      sim.NewCounterSet(),
		Persist: PersistentState{
			DC:        d.dc,
			EDC:       d.edc,
			Episode:   d.episodes,
			CHVRegion: d.region,
			Vault:     vault,
			Scheme:    d.scheme,
		},
	}
	if d.sys.Sec != nil {
		res.MACCalcs = d.sys.Sec.MACCalcs().Clone()
		res.AESOps = d.sys.Sec.AESOps()
		res.Persist.Root = d.sys.Sec.RootRegister()
	}

	scheme := d.scheme.String()
	reg.SetHelp("horus_drain_time_ps", "Simulated draining time of the most recent episode, picoseconds (Fig. 11).")
	reg.SetHelp("horus_drain_blocks_total", "Dirty cache blocks flushed across draining episodes.")
	reg.SetHelp("horus_drain_episodes_total", "Completed draining episodes per scheme.")
	reg.Gauge("horus_drain_time_ps", "scheme", scheme).Set(float64(t))
	reg.Counter("horus_drain_blocks_total", "scheme", scheme).Add(int64(len(blocks)))
	reg.Counter("horus_drain_episodes_total", "scheme", scheme).Add(1)
	d.sys.NVM.PublishMetrics("drain", t)
	if d.sys.Sec != nil {
		d.sys.Sec.PublishMetrics("drain", t)
	}
	return res, nil
}

// PersistSnapshot returns the persistent-register state as it stands right
// now, mid-episode: what a crash at this instant would leave for recovery.
// DC is the current drain-counter register; EDC counts the flush operations
// issued so far in the episode in progress (for CHV schemes the register
// increments at flush-issue, so a crash mid-write legitimately leaves EDC
// one past the durable frontier — recovery detects the torn tail via MAC
// verification). The metadata-cache vault record is zero: the snapshot
// predates (or interrupts) the end-of-drain metadata flush, so no complete
// vault exists. The fault-injection torture harness captures this from an
// injector's OnCut callback.
func (d *Drainer) PersistSnapshot() PersistentState {
	ps := PersistentState{
		DC:        d.dc,
		EDC:       d.dc - d.startDC,
		Episode:   d.episodes,
		CHVRegion: d.region,
		Scheme:    d.scheme,
	}
	if d.sys.Sec != nil {
		ps.Root = d.sys.Sec.RootRegister()
	}
	return ps
}

// DrainInPlace writes every dirty line in place with no protection
// (Fig. 8 part A) — the NonSecure drain primitive, exported for registered
// scheme variants to compose.
func (d *Drainer) DrainInPlace(blocks []hierarchy.DirtyBlock) sim.Time {
	var t sim.Time
	for _, b := range blocks {
		done := d.sys.NVM.Write(0, b.Addr, b.Data, mem.CatData)
		t = sim.MaxTime(t, done)
		d.sampleBlock(t)
	}
	return t
}

// DrainBaseline pushes every dirty line through the run-time secure write
// path: counter fetch and verification walk, counter increment, tree update
// (lazy or eager), data-MAC update, encrypt, write in place (Fig. 8 part B).
// The update scheme (lazy/eager) is the secure controller's configured one.
func (d *Drainer) DrainBaseline(blocks []hierarchy.DirtyBlock) (sim.Time, error) {
	if d.shards > 1 && len(blocks) >= shardMinBlocks {
		// Sharded pipeline: a serial pre-pass speculates each block's
		// post-increment counter from the logical metadata state, the shard
		// engines seal (encrypt + MAC) every block in parallel, and the
		// timed serial replay below consumes a hint only when the counter
		// it actually computed matches the speculation — so evictions,
		// overflows and injected faults can at worst waste a hint, never
		// change a byte (DESIGN.md §13).
		d.sys.Sec.SetDrainHints(d.sys.Sec.PrecomputeDrainHints(blocks, d.shardEngines()))
		defer d.sys.Sec.ClearDrainHints()
	}
	var t sim.Time
	for _, b := range blocks {
		done, err := d.sys.Sec.WriteBlock(0, b.Addr, b.Data)
		if err != nil {
			return t, fmt.Errorf("core: baseline drain of %#x: %w", b.Addr, err)
		}
		t = sim.MaxTime(t, done)
		d.sampleBlock(t)
	}
	return t, nil
}
