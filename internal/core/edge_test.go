package core

import (
	"testing"
	"testing/quick"

	"repro/internal/hierarchy"
	"repro/internal/mem"
)

func TestHorusDrainEmpty(t *testing.T) {
	sys, _ := buildSystem(t, HorusSLM)
	d := NewDrainer(HorusSLM, sys, 0)
	res, err := d.Drain(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksDrained != 0 {
		t.Error("empty drain drained blocks")
	}
	if res.MemWrites.Get(string(mem.CatCHVData)) != 0 {
		t.Error("empty drain wrote CHV data")
	}
	if res.Persist.DC != 0 || res.Persist.EDC != 0 {
		t.Error("empty drain advanced counters")
	}
}

func TestHorusDrainExactGroupSizes(t *testing.T) {
	// Exactly 8 and exactly 64 blocks: no partial-register tails.
	for _, n := range []int{8, 64} {
		for _, scheme := range []Scheme{HorusSLM, HorusDLM} {
			sys, _ := buildSystem(t, scheme)
			var blocks []hierarchy.DirtyBlock
			for i := 0; i < n; i++ {
				blocks = append(blocks, hierarchy.DirtyBlock{Addr: uint64(i) * 16384, Data: mem.Block{0: byte(i)}})
			}
			d := NewDrainer(scheme, sys, 0)
			res, err := d.Drain(blocks)
			if err != nil {
				t.Fatal(err)
			}
			wantAddr := int64((n + 7) / 8)
			if got := res.MemWrites.Get(string(mem.CatCHVAddr)); got != wantAddr {
				t.Errorf("%v n=%d: addr blocks = %d, want %d", scheme, n, got, wantAddr)
			}
			wantMAC := wantAddr
			if scheme == HorusDLM {
				wantMAC = int64((n + 63) / 64)
			}
			if got := res.MemWrites.Get(string(mem.CatCHVMAC)); got != wantMAC {
				t.Errorf("%v n=%d: mac blocks = %d, want %d", scheme, n, got, wantMAC)
			}
		}
	}
}

func TestDrainCounterContinuesAcrossEpisodes(t *testing.T) {
	sys, _ := buildSystem(t, HorusSLM)
	d := NewDrainer(HorusSLM, sys, 100) // persisted DC from earlier life
	blocks := []hierarchy.DirtyBlock{{Addr: 16384}, {Addr: 32768}}
	res1, err := d.Drain(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Persist.DC != 102 {
		t.Errorf("DC after episode 1 = %d, want 102", res1.Persist.DC)
	}
	res2, err := d.Drain(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Persist.DC != 104 || res2.Persist.EDC != 2 {
		t.Errorf("episode 2 persist = %+v", res2.Persist)
	}
}

// Property: the CHV ciphertext of a block never repeats across episodes,
// even for identical content at identical slots (unique drain counters).
func TestCHVCiphertextUniquenessProperty(t *testing.T) {
	sys, _ := buildSystem(t, HorusSLM)
	d := NewDrainer(HorusSLM, sys, 0)
	f := func(content [8]byte, episodes uint8) bool {
		var data mem.Block
		copy(data[:], content[:])
		blk := []hierarchy.DirtyBlock{{Addr: 16384, Data: data}}
		seen := make(map[mem.Block]bool)
		n := int(episodes)%5 + 2
		for e := 0; e < n; e++ {
			if _, err := d.Drain(blk); err != nil {
				return false
			}
			ct := sys.NVM.PeekRead(sys.Layout.CHVDataAddr(0))
			if seen[ct] {
				return false
			}
			seen[ct] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBaselineDrainTwice(t *testing.T) {
	// Draining the same addresses twice through the run-time path must
	// advance counters and keep everything verifiable.
	sys, h := buildSystem(t, BaseLU)
	blocks := fillWorstCase(h, 30)[:500]
	d := NewDrainer(BaseLU, sys, 0)
	if _, err := d.Drain(blocks); err != nil {
		t.Fatal(err)
	}
	res2, err := d.Drain(blocks)
	if err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if res2.BlocksDrained != 500 {
		t.Error("second drain incomplete")
	}
	got, _, err := sys.Sec.ReadBlock(res2.DrainTime, blocks[0].Addr)
	if err != nil {
		t.Fatal(err)
	}
	if got != blocks[0].Data {
		t.Error("content wrong after double drain")
	}
}

func TestHorusObliviousToFillPattern(t *testing.T) {
	// The paper: Horus's drain cost is independent of the spatial
	// characteristics of the pre-crash contents (§V-A). Access counts must
	// be identical for dense and sparse fills of the same size.
	counts := make([]int64, 0, 2)
	for _, pattern := range []hierarchy.FillPattern{hierarchy.PatternDense, hierarchy.PatternWorstCaseSparse} {
		sys, h := buildSystem(t, HorusSLM)
		h.FillAllDirty(hierarchy.FillOptions{Pattern: pattern, DataSize: 256 << 20, Seed: 3})
		d := NewDrainer(HorusSLM, sys, 0)
		res, err := d.Drain(h.DirtyBlocks())
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, res.TotalMemAccesses())
	}
	if counts[0] != counts[1] {
		t.Errorf("Horus drain cost depends on fill pattern: %v", counts)
	}
}

func TestBaselineSensitiveToFillPattern(t *testing.T) {
	// Conversely the baseline must be cheaper on a dense fill.
	var dense, sparse int64
	for i, pattern := range []hierarchy.FillPattern{hierarchy.PatternDense, hierarchy.PatternWorstCaseSparse} {
		sys, h := buildSystem(t, BaseLU)
		h.FillAllDirty(hierarchy.FillOptions{Pattern: pattern, DataSize: 256 << 20, Seed: 3})
		d := NewDrainer(BaseLU, sys, 0)
		res, err := d.Drain(h.DirtyBlocks())
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			dense = res.TotalMemAccesses()
		} else {
			sparse = res.TotalMemAccesses()
		}
	}
	if sparse <= 2*dense {
		t.Errorf("baseline not pattern-sensitive: dense=%d sparse=%d", dense, sparse)
	}
}
