package core

import (
	"strings"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/secmem"
	"repro/internal/sim"
)

// TestSchemeRegistryRoundTrip checks register → lookup → property parity
// with the historical enum behavior for every built-in design.
func TestSchemeRegistryRoundTrip(t *testing.T) {
	want := []struct {
		s       Scheme
		name    string
		secure  bool
		usesCHV bool
		update  secmem.UpdateScheme
	}{
		{NonSecure, "NonSecure", false, false, secmem.LazyUpdate},
		{BaseLU, "Base-LU", true, false, secmem.LazyUpdate},
		{BaseEU, "Base-EU", true, false, secmem.EagerUpdate},
		{HorusSLM, "Horus-SLM", true, true, secmem.LazyUpdate},
		{HorusDLM, "Horus-DLM", true, true, secmem.LazyUpdate},
	}
	for _, w := range want {
		got, err := Lookup(w.name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", w.name, err)
		}
		if got != w.s {
			t.Errorf("Lookup(%q) = %d, want %d", w.name, got, w.s)
		}
		if w.s.String() != w.name {
			t.Errorf("%d.String() = %q, want %q", w.s, w.s.String(), w.name)
		}
		if w.s.Secure() != w.secure {
			t.Errorf("%v.Secure() = %v, want %v", w.s, w.s.Secure(), w.secure)
		}
		if w.s.UsesCHV() != w.usesCHV {
			t.Errorf("%v.UsesCHV() = %v, want %v", w.s, w.s.UsesCHV(), w.usesCHV)
		}
		if w.s.RuntimeScheme() != w.update {
			t.Errorf("%v.RuntimeScheme() = %v, want %v", w.s, w.s.RuntimeScheme(), w.update)
		}
	}
}

func TestSchemeRegistryUnknownName(t *testing.T) {
	_, err := Lookup("Horus-TLM")
	if err == nil {
		t.Fatal("Lookup of unregistered scheme must fail")
	}
	if !strings.Contains(err.Error(), "Horus-TLM") || !strings.Contains(err.Error(), "Horus-SLM") {
		t.Errorf("error should name the miss and the registered schemes: %v", err)
	}
}

func TestSchemeNamesOrder(t *testing.T) {
	names := SchemeNames()
	if len(names) < 5 {
		t.Fatalf("SchemeNames() = %v, want at least the 5 built-ins", names)
	}
	for i, want := range []string{"NonSecure", "Base-LU", "Base-EU", "Horus-SLM", "Horus-DLM"} {
		if names[i] != want {
			t.Errorf("SchemeNames()[%d] = %q, want %q", i, names[i], want)
		}
	}
}

// trivialScheme is a registered custom design used to prove extensibility:
// it drains in place (like NonSecure) but reports itself secure=false.
type trivialScheme struct{ drained int }

func (trivialScheme) Name() string                       { return "Trivial-Test" }
func (trivialScheme) Secure() bool                       { return false }
func (trivialScheme) UsesCHV() bool                      { return false }
func (trivialScheme) RuntimeScheme() secmem.UpdateScheme { return secmem.LazyUpdate }
func (s *trivialScheme) Drain(d *Drainer, blocks []hierarchy.DirtyBlock) (sim.Time, error) {
	s.drained += len(blocks)
	return d.DrainInPlace(blocks), nil
}

func TestRegisterCustomScheme(t *testing.T) {
	s := Register("Trivial-Test", func() DrainScheme { return &trivialScheme{} })
	got, err := Lookup("Trivial-Test")
	if err != nil || got != s {
		t.Fatalf("Lookup after Register = (%v, %v), want (%v, nil)", got, err, s)
	}
	if s.String() != "Trivial-Test" || s.Secure() || s.UsesCHV() {
		t.Error("custom scheme properties not served from the registry")
	}

	sys, h := buildSystem(t, s)
	blocks := fillWorstCase(h, 3)[:16]
	d := NewDrainer(s, sys, 0)
	res, err := d.Drain(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksDrained != 16 || res.Scheme != s {
		t.Errorf("custom drain result wrong: %+v", res)
	}
	// Same primitive as NonSecure → same traffic shape.
	if res.MemWrites.Get("data") != 16 {
		t.Errorf("in-place writes = %d, want 16", res.MemWrites.Get("data"))
	}

	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	Register("Trivial-Test", func() DrainScheme { return &trivialScheme{} })
}
