package core

import (
	"math/rand"
	"testing"

	"repro/internal/bmt"
	"repro/internal/cme"
	"repro/internal/hierarchy"
	"repro/internal/mem"
	"repro/internal/secmem"
)

// testHierarchyConfig is a miniature three-level hierarchy (16KB/64KB/256KB
// = 5376 lines) so tests run fast while still exercising every path.
func testHierarchyConfig() hierarchy.Config {
	return hierarchy.Config{Levels: []hierarchy.LevelConfig{
		{Name: "L1", SizeBytes: 16 << 10, Ways: 2},
		{Name: "L2", SizeBytes: 64 << 10, Ways: 8},
		{Name: "LLC", SizeBytes: 256 << 10, Ways: 16},
	}}
}

// buildSystem returns a system sized for the test hierarchy.
func buildSystem(t testing.TB, scheme Scheme) (*System, *hierarchy.Hierarchy) {
	t.Helper()
	hcfg := testHierarchyConfig()
	h := hierarchy.New(hcfg)
	lay := bmt.NewLayout(bmt.Config{
		DataSize:    256 << 20, // 16KB slots x 5376 lines fit easily
		CHVCapacity: uint64(hcfg.TotalLines()) + 64,
		VaultBlocks: 40000,
	})
	nvm := mem.NewController(mem.DefaultConfig())
	enc := cme.NewEngine(7)
	scfg := secmem.DefaultConfig()
	scfg.Scheme = scheme.RuntimeScheme()
	// Scaled-down metadata caches (1/32 of Table I) to match the scaled
	// hierarchy.
	scfg.CounterCacheBytes = 8 << 10
	scfg.MACCacheBytes = 16 << 10
	scfg.TreeCacheBytes = 8 << 10
	sec := secmem.New(scfg, lay, enc, nvm)
	return &System{Layout: lay, Enc: enc, NVM: nvm, Sec: sec}, h
}

func fillWorstCase(h *hierarchy.Hierarchy, seed int64) []hierarchy.DirtyBlock {
	h.FillAllDirty(hierarchy.FillOptions{
		Pattern:  hierarchy.PatternWorstCaseSparse,
		DataSize: 256 << 20,
		Seed:     seed,
	})
	return h.DirtyBlocksShuffled(rand.New(rand.NewSource(seed + 1)))
}

func TestSchemeProperties(t *testing.T) {
	if NonSecure.Secure() || !BaseLU.Secure() || !HorusDLM.Secure() {
		t.Error("Secure() wrong")
	}
	if BaseLU.UsesCHV() || !HorusSLM.UsesCHV() || !HorusDLM.UsesCHV() {
		t.Error("UsesCHV() wrong")
	}
	if BaseEU.RuntimeScheme() != secmem.EagerUpdate || BaseLU.RuntimeScheme() != secmem.LazyUpdate {
		t.Error("RuntimeScheme() wrong")
	}
	if BaseLU.String() != "Base-LU" || HorusDLM.String() != "Horus-DLM" {
		t.Error("names wrong")
	}
	if Scheme(99).String() == "" {
		t.Error("unknown scheme must still format")
	}
	if len(AllSchemes()) != 5 {
		t.Error("AllSchemes must list the paper's five designs")
	}
}

func TestNonSecureDrainCounts(t *testing.T) {
	sys, h := buildSystem(t, NonSecure)
	blocks := fillWorstCase(h, 1)
	d := NewDrainer(NonSecure, sys, 0)
	res, err := d.Drain(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksDrained != len(blocks) {
		t.Errorf("drained %d, want %d", res.BlocksDrained, len(blocks))
	}
	if got := res.MemWrites.Get(string(mem.CatData)); got != int64(len(blocks)) {
		t.Errorf("data writes = %d, want %d", got, len(blocks))
	}
	if res.MemReads.Total() != 0 {
		t.Error("non-secure drain must not read memory")
	}
	if res.TotalMACs() != 0 || res.AESOps != 0 {
		t.Error("non-secure drain must not use crypto")
	}
	if res.DrainTime <= 0 {
		t.Error("drain time must be positive")
	}
	// Functional: every block must be in memory, in plaintext, in place.
	for _, b := range blocks {
		if sys.NVM.PeekRead(b.Addr) != b.Data {
			t.Fatalf("block %#x not drained in place", b.Addr)
		}
	}
}

func TestHorusSLMDrainCountsExact(t *testing.T) {
	sys, h := buildSystem(t, HorusSLM)
	blocks := fillWorstCase(h, 2)
	n := int64(len(blocks))
	d := NewDrainer(HorusSLM, sys, 0)
	res, err := d.Drain(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MemWrites.Get(string(mem.CatCHVData)); got != n {
		t.Errorf("chv-data writes = %d, want %d", got, n)
	}
	wantAddr := (n + 7) / 8
	if got := res.MemWrites.Get(string(mem.CatCHVAddr)); got != wantAddr {
		t.Errorf("chv-addr writes = %d, want %d", got, wantAddr)
	}
	if got := res.MemWrites.Get(string(mem.CatCHVMAC)); got != wantAddr {
		t.Errorf("SLM chv-mac writes = %d, want %d", got, wantAddr)
	}
	if got := res.MemWrites.Get(string(mem.CatData)); got != 0 {
		t.Error("Horus must not write data in place")
	}
	// Horus reads nothing during draining (Fig. 8 part C).
	if res.MemReads.Total() != 0 {
		t.Errorf("Horus drain read memory %d times", res.MemReads.Total())
	}
	// Exactly one MAC per drained block, no tree or verify MACs.
	if got := res.MACCalcs.Get(MACCHVData); got != n {
		t.Errorf("chv data MACs = %d, want %d", got, n)
	}
	if res.MACCalcs.Get(secmem.MACVerify) != 0 || res.MACCalcs.Get(secmem.MACTreeUpdate) != 0 {
		t.Error("Horus drain must not touch the run-time integrity tree")
	}
	if res.AESOps != n {
		t.Errorf("AES ops = %d, want %d", res.AESOps, n)
	}
	// Persistent state: DC advanced by n, EDC records the episode.
	if res.Persist.DC != uint64(n) || res.Persist.EDC != uint64(n) {
		t.Errorf("persist DC/EDC = %d/%d, want %d/%d", res.Persist.DC, res.Persist.EDC, n, n)
	}
}

func TestHorusDLMMACCoalescing(t *testing.T) {
	sys, h := buildSystem(t, HorusDLM)
	blocks := fillWorstCase(h, 3)
	n := int64(len(blocks))
	d := NewDrainer(HorusDLM, sys, 0)
	res, err := d.Drain(blocks)
	if err != nil {
		t.Fatal(err)
	}
	// DLM writes one MAC block per 64 drained blocks (8x fewer than SLM,
	// Fig. 12) but computes one extra L2 MAC per 8 blocks (1.125x, Fig. 13).
	wantMACBlocks := (n + 63) / 64
	if got := res.MemWrites.Get(string(mem.CatCHVMAC)); got != wantMACBlocks {
		t.Errorf("DLM chv-mac writes = %d, want %d", got, wantMACBlocks)
	}
	wantL2 := (n + 7) / 8
	if got := res.MACCalcs.Get(MACCHVL2); got != wantL2 {
		t.Errorf("DLM L2 MACs = %d, want %d", got, wantL2)
	}
	if got := res.MACCalcs.Get(MACCHVData); got != n {
		t.Errorf("DLM L1 MACs = %d, want %d", got, n)
	}
}

func TestHorusTailHandling(t *testing.T) {
	// A drain whose size is not a multiple of 8 or 64 must still persist
	// every address and MAC (partial register flush).
	sys, _ := buildSystem(t, HorusSLM)
	var blocks []hierarchy.DirtyBlock
	for i := 0; i < 13; i++ {
		blocks = append(blocks, hierarchy.DirtyBlock{
			Addr: uint64(i) * 16384,
			Data: mem.Block{0: byte(i + 1)},
		})
	}
	d := NewDrainer(HorusSLM, sys, 0)
	res, err := d.Drain(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MemWrites.Get(string(mem.CatCHVAddr)); got != 2 {
		t.Errorf("addr blocks = %d, want 2 (8+5)", got)
	}
	if got := res.MemWrites.Get(string(mem.CatCHVMAC)); got != 2 {
		t.Errorf("mac blocks = %d, want 2", got)
	}
	// The 13th address must be recorded in the second address block.
	a, _ := sys.Layout.CHVAddrBlockAddr(12)
	addrs := UnpackAddrs(sys.NVM.PeekRead(a))
	if addrs[4] != 12*16384 {
		t.Errorf("tail address lost: %#x", addrs[4])
	}
}

func TestHorusCiphertextNotPlaintextAndUniqueAcrossEpisodes(t *testing.T) {
	sys, _ := buildSystem(t, HorusSLM)
	blk := hierarchy.DirtyBlock{Addr: 16384, Data: mem.Block{0: 0xEE}}
	d := NewDrainer(HorusSLM, sys, 0)
	if _, err := d.Drain([]hierarchy.DirtyBlock{blk}); err != nil {
		t.Fatal(err)
	}
	ct1 := sys.NVM.PeekRead(sys.Layout.CHVDataAddr(0))
	if ct1 == blk.Data {
		t.Fatal("CHV holds plaintext")
	}
	// Second episode with the same block: DC persisted, so the pad differs
	// and the ciphertext must differ (no temporal leakage across episodes,
	// §IV-C4).
	if _, err := d.Drain([]hierarchy.DirtyBlock{blk}); err != nil {
		t.Fatal(err)
	}
	ct2 := sys.NVM.PeekRead(sys.Layout.CHVDataAddr(0))
	if ct1 == ct2 {
		t.Fatal("same content at same slot encrypted identically across episodes")
	}
}

func TestBaselineDrainUsesTreeAndVerifies(t *testing.T) {
	for _, scheme := range []Scheme{BaseLU, BaseEU} {
		t.Run(scheme.String(), func(t *testing.T) {
			sys, h := buildSystem(t, scheme)
			blocks := fillWorstCase(h, 4)
			d := NewDrainer(scheme, sys, 0)
			res, err := d.Drain(blocks)
			if err != nil {
				t.Fatal(err)
			}
			n := int64(len(blocks))
			if got := res.MemWrites.Get(string(mem.CatData)); got != n {
				t.Errorf("in-place data writes = %d, want %d", got, n)
			}
			// The baselines must incur substantial metadata traffic on the
			// worst-case fill (the paper's 9.5x-10.3x observation).
			if res.TotalMemAccesses() < 4*n {
				t.Errorf("baseline %v accesses = %d, want >= 4x blocks (%d)",
					scheme, res.TotalMemAccesses(), 4*n)
			}
			if res.MACCalcs.Get(secmem.MACVerify) == 0 {
				t.Error("baseline drain did no verification MACs")
			}
			if scheme == BaseEU && res.MACCalcs.Get(secmem.MACTreeUpdate) < n {
				t.Error("eager baseline must update the tree per write")
			}
			// Functional: every block readable and correct afterwards.
			golden := h.Golden()
			var now = res.DrainTime
			count := 0
			for addr, want := range golden {
				got, done, err := sys.Sec.ReadBlock(now, addr)
				if err != nil {
					t.Fatalf("read %#x after drain: %v", addr, err)
				}
				now = done
				if got != want {
					t.Fatalf("mismatch at %#x", addr)
				}
				count++
				if count >= 200 {
					break // spot check; full check is in recovery tests
				}
			}
		})
	}
}

func TestHorusFarCheaperThanBaseline(t *testing.T) {
	results := map[Scheme]Result{}
	for _, scheme := range AllSchemes() {
		sys, h := buildSystem(t, scheme)
		blocks := fillWorstCase(h, 5)
		d := NewDrainer(scheme, sys, 0)
		res, err := d.Drain(blocks)
		if err != nil {
			t.Fatal(err)
		}
		results[scheme] = res
	}
	ns := results[NonSecure]
	lu := results[BaseLU]
	slm := results[HorusSLM]
	dlm := results[HorusDLM]

	// The paper's headline shape: baselines blow up the access count;
	// Horus stays within ~1.3x of non-secure.
	if ratio := float64(lu.TotalMemAccesses()) / float64(ns.TotalMemAccesses()); ratio < 4 {
		t.Errorf("Base-LU access blow-up = %.1fx, want >= 4x", ratio)
	}
	if ratio := float64(slm.TotalMemAccesses()) / float64(ns.TotalMemAccesses()); ratio > 1.5 {
		t.Errorf("Horus-SLM access ratio = %.2fx, want <= 1.5x", ratio)
	}
	if slm.TotalMemAccesses() >= lu.TotalMemAccesses()/3 {
		t.Error("Horus-SLM must reduce accesses by a large factor vs Base-LU")
	}
	if dlm.TotalMemAccesses() >= slm.TotalMemAccesses() {
		t.Error("DLM must write fewer blocks than SLM")
	}
	if dlm.TotalMACs() <= slm.TotalMACs() {
		t.Error("DLM must compute more MACs than SLM (the 1.125x trade-off)")
	}
	if slm.DrainTime >= lu.DrainTime {
		t.Error("Horus must drain faster than Base-LU")
	}
	if ns.DrainTime >= slm.DrainTime {
		// sanity: security cannot be free
		t.Error("non-secure drain should be the fastest")
	}
}

func TestDrainerPanics(t *testing.T) {
	sys, _ := buildSystem(t, HorusSLM)
	for name, fn := range map[string]func(){
		"incomplete system": func() { NewDrainer(NonSecure, &System{}, 0) },
		"secure needs sec": func() {
			NewDrainer(BaseLU, &System{Layout: sys.Layout, Enc: sys.Enc, NVM: sys.NVM}, 0)
		},
		"chv overflow": func() {
			d := NewDrainer(HorusSLM, sys, 0)
			many := make([]hierarchy.DirtyBlock, sys.Layout.CHVCapacity+1)
			for i := range many {
				many[i].Addr = uint64(i) * 64
			}
			_, _ = d.Drain(many)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPackUnpackAddrs(t *testing.T) {
	addrs := []uint64{0, 64, 1 << 40, 0xDEADBEEF00}
	blk := packAddrs(addrs)
	out := unpackAddrs(blk)
	for i, a := range addrs {
		if out[i] != a {
			t.Errorf("slot %d: got %#x want %#x", i, out[i], a)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("packing 9 addresses did not panic")
		}
	}()
	packAddrs(make([]uint64, 9))
}
