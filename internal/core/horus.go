package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cme"
	"repro/internal/hierarchy"
	"repro/internal/mem"
	"repro/internal/sim"
)

// DrainPadDomain is OR-ed into the address fed to the OTP/MAC engines for
// CHV traffic. Run-time counter-mode pads are generated from (address,
// split-counter value) and Horus pads from (address, drain counter); the
// domain bit guarantees the two families can never collide for the same
// address, preserving pad uniqueness across run time and draining.
const DrainPadDomain = uint64(1) << 63

// DrainCHV drains the hierarchy into the CHV (Fig. 9) — the Horus drain
// primitive, exported for registered scheme variants to compose. dlm
// selects the double-level MAC coalescing of Horus-DLM (Fig. 10):
//
//  1. each flushed block is encrypted with the drain counter (DC) as the
//     counter-mode IV, DC incrementing per flush;
//  2. original addresses coalesce eight-at-a-time in an on-chip register
//     and are written as address blocks;
//  3. a MAC over (address, drain counter, ciphertext) is computed per
//     block; SLM coalesces eight MACs per MAC block, DLM hashes each
//     group of eight into a second-level MAC and writes one MAC block per
//     64 drained blocks (Fig. 10);
//  4. ciphertext, address and MAC blocks are written sequentially to the
//     CHV — no run-time security metadata is read, verified or updated.
func (d *Drainer) DrainCHV(blocks []hierarchy.DirtyBlock, dlm bool) sim.Time {
	lay := d.sys.Layout
	if uint64(len(blocks)) > lay.CHVCapacity {
		panic(fmt.Sprintf("core: %d blocks exceed CHV capacity %d", len(blocks), lay.CHVCapacity))
	}
	sec := d.sys.Sec
	nvm := d.sys.NVM
	nvm.MarkStage("drain:chv-stream")

	// Sharded pipeline: precompute the stream's functional crypto across the
	// shard-owned engines (nil at -shards=1 or for small drains). The timed
	// loop below is unchanged either way — it issues the same engine slots
	// and writes the same bytes, merely skipping the inline byte computation
	// when a precomputed slot exists (DESIGN.md §13).
	pre := d.precomputeCHV(blocks, dlm)

	var t sim.Time
	var addrReg [8]uint64 // address-coalescing register (§IV-D)
	var macReg1 []cme.MAC // first-level MAC register
	var macReg2 []cme.MAC // second-level MAC register (DLM only)
	var macReady sim.Time // completion time of the MACs buffered so far
	var l2Ready sim.Time  // completion time of buffered L2 MACs
	flushAddrReg := func(upto int, lastSlot uint64) {
		blk := packAddrs(addrReg[:upto])
		a, _ := lay.CHVAddrBlockAddrR(d.region, lastSlot)
		done := nvm.Write(0, a, blk, mem.CatCHVAddr)
		t = sim.MaxTime(t, done)
	}
	flushMACReg1SLM := func(lastSlot uint64) {
		a, _ := lay.CHVMACBlockAddrR(d.region, lastSlot)
		done := nvm.Write(macReady, a, mem.Block(cme.PackMACs(macReg1)), mem.CatCHVMAC)
		t = sim.MaxTime(t, done)
		macReg1 = macReg1[:0]
	}
	foldMACReg1DLM := func(group uint64) {
		// One second-level MAC per full (or final partial) group of eight.
		var l2 cme.MAC
		if pre != nil {
			l2 = pre.l2[group]
		} else {
			l2 = d.sys.Enc.MACOverMACs(DrainPadDomain|group, macReg1)
		}
		tm := sec.IssueMAC(macReady, MACCHVL2)
		l2Ready = sim.MaxTime(l2Ready, tm)
		macReg2 = append(macReg2, l2)
		macReg1 = macReg1[:0]
	}
	flushMACReg2DLM := func(lastSlot uint64) {
		a, _ := lay.CHVMACBlockAddrDLMR(d.region, lastSlot)
		done := nvm.Write(l2Ready, a, mem.Block(cme.PackMACs(macReg2)), mem.CatCHVMAC)
		t = sim.MaxTime(t, done)
		macReg2 = macReg2[:0]
	}

	for i, b := range blocks {
		slot := uint64(i)
		ctr := d.dc
		d.dc++

		// Encrypt with the drain counter as IV (Step 1, Fig. 9).
		tAES := sec.IssueAES(0)
		var ct mem.Block
		if pre != nil {
			ct = pre.ct[i]
		} else {
			ct = d.sys.Enc.Encrypt(b.Addr|DrainPadDomain, ctr, b.Data)
		}

		// MAC over (address, drain counter, ciphertext) (Step 3).
		tMAC := sec.IssueMAC(tAES, MACCHVData)
		macReady = sim.MaxTime(macReady, tMAC)
		var m cme.MAC
		if pre != nil {
			m = pre.mac[i]
		} else {
			m = d.sys.Enc.DataMAC(b.Addr|DrainPadDomain, ctr, ct)
		}

		// Write the ciphertext to its CHV slot (Step 4).
		done := nvm.Write(tAES, lay.CHVDataAddrR(d.region, slot), ct, mem.CatCHVData)
		t = sim.MaxTime(t, done)
		d.sampleBlock(t)

		// Coalesce the address (Step 2).
		addrReg[i%8] = b.Addr
		if i%8 == 7 {
			flushAddrReg(8, slot)
		}

		// Coalesce the MAC.
		macReg1 = append(macReg1, m)
		if len(macReg1) == 8 {
			if dlm {
				foldMACReg1DLM(slot / 8)
			} else {
				flushMACReg1SLM(slot)
			}
		}
		if dlm && len(macReg2) == 8 {
			flushMACReg2DLM(slot)
		}
	}

	// Tail: flush partially filled registers.
	nvm.MarkStage("drain:chv-tail")
	n := len(blocks)
	if n > 0 {
		last := uint64(n - 1)
		if n%8 != 0 {
			flushAddrReg(n%8, last)
		}
		if len(macReg1) > 0 {
			if dlm {
				foldMACReg1DLM(last / 8)
			} else {
				flushMACReg1SLM(last)
			}
		}
		if dlm && len(macReg2) > 0 {
			flushMACReg2DLM(last)
		}
	}
	return t
}

// packAddrs packs up to eight 64-bit addresses into one block.
func packAddrs(addrs []uint64) mem.Block {
	if len(addrs) > 8 {
		panic("core: at most 8 addresses per address block")
	}
	var b mem.Block
	for i, a := range addrs {
		binary.LittleEndian.PutUint64(b[i*8:(i+1)*8], a)
	}
	return b
}

// unpackAddrs splits an address block into its eight slots.
func unpackAddrs(b mem.Block) [8]uint64 {
	var out [8]uint64
	for i := 0; i < 8; i++ {
		out[i] = binary.LittleEndian.Uint64(b[i*8 : (i+1)*8])
	}
	return out
}

// UnpackAddrs is the exported form used by the recovery package.
func UnpackAddrs(b mem.Block) [8]uint64 { return unpackAddrs(b) }
