package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/hierarchy"
	"repro/internal/secmem"
	"repro/internal/sim"
)

// DrainScheme is the pluggable behavior of one draining design: its
// identity, its security properties, and the drain algorithm itself. The
// paper's five designs are registered implementations (see init below);
// ablation variants register additional ones instead of growing a switch.
//
// Drain receives the Drainer executing the episode and may use its exported
// primitives (DrainInPlace, DrainBaseline, DrainCHV) or drive the System
// directly for novel designs.
type DrainScheme interface {
	// Name is the design's presentation name (e.g. "Horus-SLM"); it is the
	// registry key and must be unique.
	Name() string
	// Secure reports whether the design provides memory security.
	Secure() bool
	// UsesCHV reports whether the design drains into the cache hierarchy
	// vault (and therefore recovers by reading it back).
	UsesCHV() bool
	// RuntimeScheme is the integrity-tree update scheme the design runs at
	// run time (and, for the baselines, during draining).
	RuntimeScheme() secmem.UpdateScheme
	// Drain flushes the dirty blocks and returns the completion time of the
	// last data write (metadata flush and accounting are the Drainer's job).
	Drain(d *Drainer, blocks []hierarchy.DirtyBlock) (sim.Time, error)
}

// The registry maps Scheme handles (small dense ints, stable within a
// process) to registered implementations and back from names.
var (
	regMu        sync.RWMutex
	regFactories []func() DrainScheme // index = Scheme handle
	regProto     []DrainScheme        // one instance per scheme for property queries
	regByName    = make(map[string]Scheme)
)

// Register adds a draining design under its factory's Name and returns the
// Scheme handle that selects it. The factory is invoked once per Drainer so
// implementations may keep per-episode state. Registering a duplicate name
// panics: scheme identity is a program invariant, not a runtime input.
func Register(name string, factory func() DrainScheme) Scheme {
	proto := factory()
	if proto == nil {
		panic("core: Register called with a factory returning nil")
	}
	if proto.Name() != name {
		panic(fmt.Sprintf("core: Register name %q does not match implementation name %q", name, proto.Name()))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regByName[name]; dup {
		panic("core: duplicate scheme registration: " + name)
	}
	s := Scheme(len(regFactories))
	regFactories = append(regFactories, factory)
	regProto = append(regProto, proto)
	regByName[name] = s
	return s
}

// Lookup resolves a registered scheme by name.
func Lookup(name string) (Scheme, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	if s, ok := regByName[name]; ok {
		return s, nil
	}
	names := make([]string, 0, len(regByName))
	for n := range regByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return 0, fmt.Errorf("core: unknown scheme %q (registered: %v)", name, names)
}

// SchemeNames lists every registered scheme name in registration order.
func SchemeNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, len(regProto))
	for i, p := range regProto {
		names[i] = p.Name()
	}
	return names
}

// implOf returns the registered prototype for property queries.
func implOf(s Scheme) (DrainScheme, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	if s < 0 || int(s) >= len(regProto) {
		return nil, false
	}
	return regProto[s], true
}

// newImpl instantiates a fresh implementation for a Drainer.
func newImpl(s Scheme) (DrainScheme, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	if s < 0 || int(s) >= len(regFactories) {
		return nil, false
	}
	return regFactories[s](), true
}

// ---------------------------------------------------------------------------
// Built-in designs (the paper's five), registered so their Scheme handles
// equal the package constants.

type nonSecureScheme struct{}

func (nonSecureScheme) Name() string                       { return "NonSecure" }
func (nonSecureScheme) Secure() bool                       { return false }
func (nonSecureScheme) UsesCHV() bool                      { return false }
func (nonSecureScheme) RuntimeScheme() secmem.UpdateScheme { return secmem.LazyUpdate }
func (nonSecureScheme) Drain(d *Drainer, blocks []hierarchy.DirtyBlock) (sim.Time, error) {
	return d.DrainInPlace(blocks), nil
}

type baselineScheme struct {
	name   string
	update secmem.UpdateScheme
}

func (b baselineScheme) Name() string                       { return b.name }
func (baselineScheme) Secure() bool                         { return true }
func (baselineScheme) UsesCHV() bool                        { return false }
func (b baselineScheme) RuntimeScheme() secmem.UpdateScheme { return b.update }
func (baselineScheme) Drain(d *Drainer, blocks []hierarchy.DirtyBlock) (sim.Time, error) {
	return d.DrainBaseline(blocks)
}

type horusScheme struct {
	name string
	dlm  bool
}

func (h horusScheme) Name() string                     { return h.name }
func (horusScheme) Secure() bool                       { return true }
func (horusScheme) UsesCHV() bool                      { return true }
func (horusScheme) RuntimeScheme() secmem.UpdateScheme { return secmem.LazyUpdate }
func (h horusScheme) Drain(d *Drainer, blocks []hierarchy.DirtyBlock) (sim.Time, error) {
	return d.DrainCHV(blocks, h.dlm), nil
}

func init() {
	// Registration order fixes the handles; they must equal the exported
	// constants (NonSecure = 0 ... HorusDLM = 4).
	for _, reg := range []struct {
		want    Scheme
		name    string
		factory func() DrainScheme
	}{
		{NonSecure, "NonSecure", func() DrainScheme { return nonSecureScheme{} }},
		{BaseLU, "Base-LU", func() DrainScheme { return baselineScheme{"Base-LU", secmem.LazyUpdate} }},
		{BaseEU, "Base-EU", func() DrainScheme { return baselineScheme{"Base-EU", secmem.EagerUpdate} }},
		{HorusSLM, "Horus-SLM", func() DrainScheme { return horusScheme{"Horus-SLM", false} }},
		{HorusDLM, "Horus-DLM", func() DrainScheme { return horusScheme{"Horus-DLM", true} }},
	} {
		if got := Register(reg.name, reg.factory); got != reg.want {
			panic(fmt.Sprintf("core: built-in scheme %s registered as %d, want %d", reg.name, got, reg.want))
		}
	}
}
