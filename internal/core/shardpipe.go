package core

import (
	"runtime"

	"repro/internal/cme"
	"repro/internal/hierarchy"
	"repro/internal/mem"
	"repro/internal/shard"
)

// The sharded drain pipeline (DESIGN.md §13).
//
// The drain's timed state machine — drain-counter advance, engine issue
// slots, bank reservations, register coalescing, sampling — stays strictly
// serial and is byte-for-byte the code that runs at -shards=1. What fans out
// across shard-owned crypto contexts is only the *functional* crypto: OTP
// generation, data-MAC and second-level-MAC byte computation. Those values
// are pure functions of (address, counter, content); every worker writes its
// results into pre-assigned slots of pre-sized slices, so the bytes are
// identical no matter how many shards compute them or in what order workers
// finish. The serial replay then consumes the slots in drain order, issuing
// the exact same timed operations it always did.
//
// Consequence: drain results — ciphertext, MACs, Result counters, -trace
// timelines, /timeseries.json — are bit-identical at any shard count, which
// TestShardedDrainDeterminism pins per scheme.

// shardMinBlocks is the fan-out threshold: below it the per-drain setup
// (clone pool, hint slices, goroutine join) costs more than it saves, so
// small drains always take the inline path. Outputs are identical either
// way; the threshold is purely a performance knob.
const shardMinBlocks = 64

// ShardCount returns the effective shard count of the drain pipeline.
func (d *Drainer) ShardCount() int { return d.shards }

// resolveShards maps the configured shard count to the effective one:
// zero or negative means GOMAXPROCS (the -shards flag default).
func resolveShards(configured int) int {
	if configured > 0 {
		return configured
	}
	return runtime.GOMAXPROCS(0)
}

// shardEngines returns the drainer's shard-owned crypto contexts, building
// them on first use: engines[w] is worker w's private clone of the system
// key engine (shared cipher schedule and MAC key, private scratch — see
// cme.Engine's ownership contract).
func (d *Drainer) shardEngines() []*cme.Engine {
	if len(d.engines) != d.shards {
		d.engines = make([]*cme.Engine, d.shards)
		for w := range d.engines {
			d.engines[w] = d.sys.Enc.Clone()
		}
	}
	return d.engines
}

// chvPre holds the precomputed functional crypto of one CHV drain: per-block
// ciphertext and first-level MAC, plus (DLM only) the second-level MAC of
// every group of eight. Slot i corresponds to drain slot i, counter value
// startDC+i — exactly the values the serial loop computes inline.
type chvPre struct {
	ct  []mem.Block
	mac []cme.MAC
	l2  []cme.MAC // one per 8-block group; DLM only
}

// precomputeCHV fans the CHV stream's crypto out across the shard engines.
// Worker ranges are 8-aligned so each MAC group (the unit the DLM
// second-level MAC folds over) lives entirely inside one worker's range.
func (d *Drainer) precomputeCHV(blocks []hierarchy.DirtyBlock, dlm bool) *chvPre {
	if d.shards <= 1 || len(blocks) < shardMinBlocks {
		return nil
	}
	n := len(blocks)
	pre := &chvPre{ct: make([]mem.Block, n), mac: make([]cme.MAC, n)}
	if dlm {
		pre.l2 = make([]cme.MAC, (n+7)/8)
	}
	engines := d.shardEngines()
	dc0 := d.dc // counter for drain slot i is dc0+i (the serial loop's d.dc++)
	shard.Run(d.shards, func(w int) {
		lo, hi := shard.CutAligned(n, d.shards, w, 8)
		eng := engines[w]
		for i := lo; i < hi; i++ {
			a := blocks[i].Addr | DrainPadDomain
			ctr := dc0 + uint64(i)
			ct := eng.Encrypt(a, ctr, blocks[i].Data)
			pre.ct[i] = ct
			pre.mac[i] = eng.DataMAC(a, ctr, ct)
		}
		if dlm {
			for g := lo / 8; g*8 < hi; g++ {
				end := min(g*8+8, n)
				pre.l2[g] = eng.MACOverMACs(DrainPadDomain|uint64(g), pre.mac[g*8:end])
			}
		}
	})
	return pre
}
