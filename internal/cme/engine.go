package cme

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
)

// MACSize is the size in bytes of a truncated MAC (8 bytes, as in the
// paper's per-block MAC layout: eight MACs coalesce into one 64-byte block).
const MACSize = 8

// MAC is a truncated keyed MAC value.
type MAC [MACSize]byte

// Engine holds the on-chip secret keys and performs functional encryption
// and MAC computation. One engine corresponds to one processor's secure
// memory unit; keys never leave the trusted compute base.
//
// An Engine is a shard-owned context: OTP reuses per-engine scratch buffers
// (see below), so one Engine must only ever be driven from one goroutine at
// a time. Concurrency uses Clone — same keys, fresh scratch — one clone per
// shard; the sharded drain pipeline (core.Drainer) and the -race hammer test
// in shard_test.go enforce this contract rather than prose alone.
type Engine struct {
	block  cipher.Block
	macKey [32]byte

	// otpPad and otpPT are reusable scratch for OTP. Stack-local buffers
	// would escape to the heap through the cipher.Block interface call
	// (the compiler cannot prove Encrypt does not retain its slices),
	// costing two allocations per encrypted block on the drain hot path.
	otpPad [64]byte
	otpPT  [16]byte
}

// NewEngine derives the AES and MAC keys deterministically from a seed so
// that simulations are reproducible. A real system would use fused or
// hardware-generated keys.
func NewEngine(seed uint64) *Engine {
	var material [8]byte
	binary.LittleEndian.PutUint64(material[:], seed)
	aesKey := sha256.Sum256(append([]byte("horus-aes-key"), material[:]...))
	macKey := sha256.Sum256(append([]byte("horus-mac-key"), material[:]...))
	blk, err := aes.NewCipher(aesKey[:16])
	if err != nil {
		panic("cme: aes.NewCipher failed: " + err.Error())
	}
	return &Engine{block: blk, macKey: macKey}
}

// OTP generates the 64-byte one-time pad for (addr, counter): four AES
// blocks of E_K(addr || counter || i). Temporal uniqueness comes from the
// counter, spatial uniqueness from the address (§II-B, Fig. 2).
func (e *Engine) OTP(addr, counter uint64) [64]byte {
	binary.LittleEndian.PutUint64(e.otpPT[0:8], addr)
	for i := 0; i < 4; i++ {
		binary.LittleEndian.PutUint64(e.otpPT[8:16], counter<<2|uint64(i))
		e.block.Encrypt(e.otpPad[i*16:(i+1)*16], e.otpPT[:])
	}
	return e.otpPad
}

// Encrypt XORs the plaintext block with the OTP for (addr, counter).
// Decryption is the same operation.
func (e *Engine) Encrypt(addr, counter uint64, plain [64]byte) [64]byte {
	pad := e.OTP(addr, counter)
	var ct [64]byte
	for i := range plain {
		ct[i] = plain[i] ^ pad[i]
	}
	return ct
}

// Decrypt recovers the plaintext from a ciphertext block (XOR with the same
// pad).
func (e *Engine) Decrypt(addr, counter uint64, ct [64]byte) [64]byte {
	return e.Encrypt(addr, counter, ct)
}

// DataMAC computes the MAC protecting one memory block: keyed hash over the
// address, the encryption counter, and the ciphertext (§II-B: "MACs
// calculated over the ciphertext, counter and address").
//
// The message key || addr || counter || ct is assembled in a stack buffer
// and hashed with one-shot sha256.Sum256: the digest is identical to the
// streaming construction but the hot drain path allocates nothing.
func (e *Engine) DataMAC(addr, counter uint64, ct [64]byte) MAC {
	var buf [112]byte // 32 key + 16 header + 64 content
	copy(buf[0:32], e.macKey[:])
	binary.LittleEndian.PutUint64(buf[32:40], addr)
	binary.LittleEndian.PutUint64(buf[40:48], counter)
	copy(buf[48:112], ct[:])
	sum := sha256.Sum256(buf[:])
	var m MAC
	copy(m[:], sum[:MACSize])
	return m
}

// NodeMAC computes the MAC of an integrity-tree child node: keyed hash over
// the tree level, the node index within the level, and the node content.
// Binding (level, index) prevents splicing initialised nodes across
// positions in the tree.
func (e *Engine) NodeMAC(level int, index uint64, content [64]byte) MAC {
	var buf [112]byte // 32 key + 16 header + 64 content
	copy(buf[0:32], e.macKey[:])
	binary.LittleEndian.PutUint64(buf[32:40], uint64(level))
	binary.LittleEndian.PutUint64(buf[40:48], index)
	copy(buf[48:112], content[:])
	sum := sha256.Sum256(buf[:])
	var m MAC
	copy(m[:], sum[:MACSize])
	return m
}

// MACOverMACs computes a second-level MAC over a group of MACs, used by the
// Horus Double-Level MAC scheme (Fig. 10) and by the small tree protecting
// the metadata-cache vault.
func (e *Engine) MACOverMACs(tag uint64, macs []MAC) MAC {
	if len(macs) <= 8 {
		// Common case (one MAC block's worth): assemble on the stack.
		var buf [104]byte // 32 key + 8 tag + 8*8 MACs
		copy(buf[0:32], e.macKey[:])
		binary.LittleEndian.PutUint64(buf[32:40], tag)
		n := 40
		for i := range macs {
			copy(buf[n:n+MACSize], macs[i][:])
			n += MACSize
		}
		sum := sha256.Sum256(buf[:n])
		var out MAC
		copy(out[:], sum[:MACSize])
		return out
	}
	h := sha256.New()
	h.Write(e.macKey[:])
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], tag)
	h.Write(hdr[:])
	for i := range macs {
		h.Write(macs[i][:])
	}
	var out MAC
	copy(out[:], h.Sum(nil)[:MACSize])
	return out
}

// PackMACs packs up to 8 MACs into one 64-byte memory block.
func PackMACs(macs []MAC) [64]byte {
	if len(macs) > 8 {
		panic("cme: at most 8 MACs fit in a block")
	}
	var b [64]byte
	for i, m := range macs {
		copy(b[i*MACSize:(i+1)*MACSize], m[:])
	}
	return b
}

// UnpackMACs splits a 64-byte block into its 8 MAC slots.
func UnpackMACs(b [64]byte) [8]MAC {
	var out [8]MAC
	for i := 0; i < 8; i++ {
		copy(out[i][:], b[i*MACSize:(i+1)*MACSize])
	}
	return out
}

// MACSlot returns the MAC-block slot (0..7) of the data block at addr,
// given eight 8-byte MACs per 64-byte MAC block.
func MACSlot(dataAddr uint64) int {
	return int((dataAddr / 64) % 8)
}
