package cme

import (
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"math/rand"
	"testing"
)

// refPad computes the 64-byte one-time pad using the standard library's CTR
// mode as an independent oracle for E_K. A CTR stream seeded with IV
// produces E_K(IV) as its first 16 keystream bytes, so encrypting 16 zero
// bytes with a fresh stream per chunk yields exactly the AES-ECB value OTP
// computes. (A single chained CTR stream would NOT match: crypto/cipher
// increments the IV as a big-endian integer, while OTP's counter word at
// bytes 8:16 is little-endian, so each chunk gets its own stream.)
func refPad(block cipher.Block, addr, counter uint64) [64]byte {
	var pad [64]byte
	for i := 0; i < 4; i++ {
		var iv [16]byte
		binary.LittleEndian.PutUint64(iv[0:8], addr)
		binary.LittleEndian.PutUint64(iv[8:16], counter<<2|uint64(i))
		ctr := cipher.NewCTR(block, iv[:])
		ctr.XORKeyStream(pad[i*16:(i+1)*16], pad[i*16:(i+1)*16])
	}
	return pad
}

func TestOTPDifferentialVsCTR(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 64; trial++ {
		e := NewEngine(rng.Uint64())
		for i := 0; i < 32; i++ {
			addr := rng.Uint64() &^ 63 // aligned block address
			counter := rng.Uint64()
			if i%4 == 0 {
				counter = uint64(rng.Intn(8)) // small counters too
			}
			want := refPad(e.block, addr, counter)
			got := e.OTP(addr, counter)
			if got != want {
				t.Fatalf("seeded engine %d: OTP(%#x, %d) diverges from CTR reference\n got %x\nwant %x",
					trial, addr, counter, got, want)
			}
		}
	}
}

func TestEncryptDecryptDifferentialVsCTR(t *testing.T) {
	rng := rand.New(rand.NewSource(1729))
	e := NewEngine(7)
	for i := 0; i < 256; i++ {
		addr := rng.Uint64() &^ 63
		counter := rng.Uint64()
		var pt [64]byte
		rng.Read(pt[:])

		// Reference ciphertext: plaintext XOR the CTR-derived pad.
		pad := refPad(e.block, addr, counter)
		var want [64]byte
		for j := range pt {
			want[j] = pt[j] ^ pad[j]
		}

		ct := e.Encrypt(addr, counter, pt)
		if ct != want {
			t.Fatalf("Encrypt(%#x, %d) diverges from CTR reference", addr, counter)
		}
		if back := e.Decrypt(addr, counter, ct); back != pt {
			t.Fatalf("Decrypt(Encrypt(pt)) != pt at (%#x, %d)", addr, counter)
		}
		// Temporal/spatial uniqueness: a different counter or address must
		// change the pad (the security argument of counter-mode).
		if e.OTP(addr, counter+1) == pad {
			t.Fatalf("OTP pad identical across counters at %#x", addr)
		}
		if e.OTP(addr^64, counter) == pad {
			t.Fatalf("OTP pad identical across addresses at counter %d", counter)
		}
	}
}

// TestOTPReturnIsACopy pins the value semantics of OTP: the engine reuses
// internal scratch (an escape-analysis workaround), so the returned array
// must be a copy that later calls cannot clobber.
func TestOTPReturnIsACopy(t *testing.T) {
	e := NewEngine(1)
	first := e.OTP(0, 1)
	snapshot := first
	_ = e.OTP(64, 2)
	if first != snapshot {
		t.Fatal("OTP return value aliased engine scratch: a later call changed it")
	}
}

// refKeyedHash is an independent streaming-SHA256 construction of the keyed
// truncated MAC used by DataMAC/NodeMAC/MACOverMACs: H(key || 8-byte LE
// words || content), truncated to MACSize.
func refKeyedHash(key [32]byte, words []uint64, content []byte) MAC {
	h := sha256.New()
	h.Write(key[:])
	var w [8]byte
	for _, v := range words {
		binary.LittleEndian.PutUint64(w[:], v)
		h.Write(w[:])
	}
	h.Write(content)
	var m MAC
	copy(m[:], h.Sum(nil)[:MACSize])
	return m
}

func TestMACsDifferentialVsStreamingSHA256(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 32; trial++ {
		e := NewEngine(rng.Uint64())
		addr, counter := rng.Uint64()&^63, rng.Uint64()
		var blk [64]byte
		rng.Read(blk[:])

		if got, want := e.DataMAC(addr, counter, blk), refKeyedHash(e.macKey, []uint64{addr, counter}, blk[:]); got != want {
			t.Fatalf("DataMAC diverges from streaming reference at (%#x, %d)", addr, counter)
		}
		level, index := rng.Intn(16), rng.Uint64()
		if got, want := e.NodeMAC(level, index, blk), refKeyedHash(e.macKey, []uint64{uint64(level), index}, blk[:]); got != want {
			t.Fatalf("NodeMAC diverges from streaming reference at (L%d, %d)", level, index)
		}

		// MACOverMACs: both the stack fast path (<= 8 MACs) and the
		// streaming fallback must match the reference construction.
		for _, n := range []int{0, 1, 8, 9, 23} {
			tag := rng.Uint64()
			macs := make([]MAC, n)
			flat := make([]byte, 0, n*MACSize)
			for i := range macs {
				rng.Read(macs[i][:])
				flat = append(flat, macs[i][:]...)
			}
			if got, want := e.MACOverMACs(tag, macs), refKeyedHash(e.macKey, []uint64{tag}, flat); got != want {
				t.Fatalf("MACOverMACs(%d MACs) diverges from streaming reference", n)
			}
		}
	}
}
