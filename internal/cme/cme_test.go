package cme

import (
	"testing"
	"testing/quick"
)

func TestCounterBlockEncodeDecodeRoundTrip(t *testing.T) {
	var cb CounterBlock
	cb.Major = 0xDEADBEEF12345678
	for i := range cb.Minors {
		cb.Minors[i] = byte((i * 13) % MinorLimit)
	}
	got := DecodeCounterBlock(cb.Encode())
	if got.Major != cb.Major {
		t.Errorf("major = %#x, want %#x", got.Major, cb.Major)
	}
	if got.Minors != cb.Minors {
		t.Errorf("minors mismatch: got %v want %v", got.Minors, cb.Minors)
	}
}

// Property: encode/decode round-trips for arbitrary major and 7-bit minors.
func TestCounterBlockRoundTripProperty(t *testing.T) {
	f := func(major uint64, minors [BlocksPerCounter]byte) bool {
		var cb CounterBlock
		cb.Major = major
		for i, m := range minors {
			cb.Minors[i] = m & 0x7F
		}
		got := DecodeCounterBlock(cb.Encode())
		return got.Major == cb.Major && got.Minors == cb.Minors
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCounterValueAndIncrement(t *testing.T) {
	var cb CounterBlock
	if cb.Counter(0) != 0 {
		t.Fatal("fresh counter not zero")
	}
	if cb.Increment(5) {
		t.Fatal("first increment must not overflow")
	}
	if cb.Counter(5) != 1 {
		t.Errorf("counter(5) = %d, want 1", cb.Counter(5))
	}
	if cb.Counter(6) != 0 {
		t.Error("increment leaked into a neighbouring slot")
	}
}

func TestMinorCounterOverflow(t *testing.T) {
	var cb CounterBlock
	cb.Minors[3] = MinorLimit - 1
	cb.Minors[7] = 42
	overflowed := cb.Increment(3)
	if !overflowed {
		t.Fatal("expected overflow")
	}
	if cb.Major != 1 {
		t.Errorf("major = %d, want 1", cb.Major)
	}
	if cb.Minors[7] != 0 {
		t.Error("overflow must reset all minors (region re-encryption)")
	}
	if cb.Minors[3] != 1 {
		t.Errorf("overflowing slot minor = %d, want 1", cb.Minors[3])
	}
	// Counter values must still be strictly increasing across the overflow.
	if cb.Counter(3) != 1*MinorLimit+1 {
		t.Errorf("counter after overflow = %d", cb.Counter(3))
	}
}

// Property: the effective counter of a slot strictly increases over any
// number of increments (never reuses a pad).
func TestCounterMonotoneProperty(t *testing.T) {
	f := func(slot uint8, steps uint16) bool {
		i := int(slot) % BlocksPerCounter
		var cb CounterBlock
		prev := cb.Counter(i)
		for s := 0; s < int(steps)%500+1; s++ {
			cb.Increment(i)
			cur := cb.Counter(i)
			if cur <= prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCounterIndex(t *testing.T) {
	if CounterIndex(0) != 0 || CounterIndex(64) != 1 || CounterIndex(63*64) != 63 {
		t.Error("CounterIndex wrong within region")
	}
	if CounterIndex(64*64) != 0 {
		t.Error("CounterIndex must wrap at the 4KB region boundary")
	}
}

func TestCounterOutOfRangePanics(t *testing.T) {
	var cb CounterBlock
	for _, fn := range []func(){
		func() { cb.Counter(-1) },
		func() { cb.Counter(BlocksPerCounter) },
		func() { cb.Increment(BlocksPerCounter) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range index did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	e := NewEngine(1)
	var plain [64]byte
	for i := range plain {
		plain[i] = byte(i)
	}
	ct := e.Encrypt(0x4000, 7, plain)
	if ct == plain {
		t.Fatal("ciphertext equals plaintext")
	}
	if got := e.Decrypt(0x4000, 7, ct); got != plain {
		t.Fatal("decrypt did not recover plaintext")
	}
}

func TestEncryptionSpatialAndTemporalUniqueness(t *testing.T) {
	e := NewEngine(1)
	var plain [64]byte // same plaintext everywhere
	ctA := e.Encrypt(0x1000, 1, plain)
	ctB := e.Encrypt(0x2000, 1, plain)
	ctA2 := e.Encrypt(0x1000, 2, plain)
	if ctA == ctB {
		t.Error("same plaintext at different addresses produced identical ciphertext (spatial leak)")
	}
	if ctA == ctA2 {
		t.Error("same plaintext with different counters produced identical ciphertext (temporal leak)")
	}
}

func TestDifferentKeysDiffer(t *testing.T) {
	a, b := NewEngine(1), NewEngine(2)
	var plain [64]byte
	if a.Encrypt(0, 0, plain) == b.Encrypt(0, 0, plain) {
		t.Error("different seeds produced identical ciphertext")
	}
	if a.DataMAC(0, 0, [64]byte{}) == b.DataMAC(0, 0, [64]byte{}) {
		t.Error("different seeds produced identical MACs")
	}
}

// Property: decrypt(encrypt(p)) == p for arbitrary plaintext/addr/counter.
func TestEncryptRoundTripProperty(t *testing.T) {
	e := NewEngine(42)
	f := func(addr, ctr uint64, plain [64]byte) bool {
		return e.Decrypt(addr, ctr, e.Encrypt(addr, ctr, plain)) == plain
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDataMACBindsAllInputs(t *testing.T) {
	e := NewEngine(1)
	var ct [64]byte
	ct[0] = 0xAA
	base := e.DataMAC(0x1000, 5, ct)
	if e.DataMAC(0x1040, 5, ct) == base {
		t.Error("MAC does not bind address (splice attack possible)")
	}
	if e.DataMAC(0x1000, 6, ct) == base {
		t.Error("MAC does not bind counter (replay attack possible)")
	}
	ct[0] ^= 1
	if e.DataMAC(0x1000, 5, ct) == base {
		t.Error("MAC does not bind ciphertext (tamper attack possible)")
	}
}

func TestNodeMACBindsPosition(t *testing.T) {
	e := NewEngine(1)
	var n [64]byte
	n[5] = 9
	base := e.NodeMAC(2, 100, n)
	if e.NodeMAC(3, 100, n) == base {
		t.Error("NodeMAC does not bind level")
	}
	if e.NodeMAC(2, 101, n) == base {
		t.Error("NodeMAC does not bind index")
	}
}

func TestMACOverMACs(t *testing.T) {
	e := NewEngine(1)
	macs := []MAC{{1}, {2}, {3}}
	a := e.MACOverMACs(0, macs)
	macs[1] = MAC{9}
	b := e.MACOverMACs(0, macs)
	if a == b {
		t.Error("MACOverMACs does not bind member MACs")
	}
	if e.MACOverMACs(1, macs) == b {
		t.Error("MACOverMACs does not bind tag")
	}
}

func TestPackUnpackMACs(t *testing.T) {
	macs := make([]MAC, 8)
	for i := range macs {
		macs[i] = MAC{byte(i + 1)}
	}
	blk := PackMACs(macs)
	out := UnpackMACs(blk)
	for i := range macs {
		if out[i] != macs[i] {
			t.Errorf("slot %d mismatch", i)
		}
	}
	// Partial packs leave later slots zero.
	blk2 := PackMACs(macs[:3])
	out2 := UnpackMACs(blk2)
	if out2[3] != (MAC{}) {
		t.Error("partial pack left garbage in unused slot")
	}
}

func TestPackTooManyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("packing 9 MACs did not panic")
		}
	}()
	PackMACs(make([]MAC, 9))
}

func TestMACSlot(t *testing.T) {
	if MACSlot(0) != 0 || MACSlot(64) != 1 || MACSlot(7*64) != 7 || MACSlot(8*64) != 0 {
		t.Error("MACSlot mapping wrong")
	}
}

func TestOTPDeterministic(t *testing.T) {
	e := NewEngine(3)
	if e.OTP(100*64, 5) != e.OTP(100*64, 5) {
		t.Error("OTP not deterministic")
	}
}
