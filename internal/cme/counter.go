// Package cme implements the cryptographic substrate of the secure memory
// controller: split-counter counter-mode encryption (CME) and truncated
// keyed MACs, exactly as the paper's background section describes (§II-B).
//
// A 64-byte counter block holds one 64-bit major counter shared by 64 data
// blocks plus a 7-bit minor counter per block, covering a 4 KB region. The
// effective per-block counter is major*128 + minor; a minor-counter overflow
// increments the major counter and forces re-encryption of the whole region.
//
// Functional encryption uses AES-128 one-time pads (OTPs) generated from
// (address, counter) so that tests can verify bit-exact round trips and
// cryptographic attack detection; the *timing* of AES and MAC operations is
// modelled separately by the simulator's engines.
package cme

import (
	"encoding/binary"
	"fmt"
)

// BlocksPerCounter is the number of data blocks sharing one major counter
// (one 64-byte counter block covers 64 blocks = 4 KB).
const BlocksPerCounter = 64

// CounterRegionBytes is the data region covered by one counter block.
const CounterRegionBytes = BlocksPerCounter * 64

// MinorLimit is the exclusive upper bound of a 7-bit minor counter.
const MinorLimit = 128

// CounterBlock is the decoded form of a 64-byte split-counter block.
type CounterBlock struct {
	Major  uint64
	Minors [BlocksPerCounter]byte // 7-bit values
}

// DecodeCounterBlock parses a 64-byte counter block. Layout: bytes 0..7 are
// the little-endian major counter; bytes 8..63 pack 64 seven-bit minor
// counters (bit i*7 .. i*7+6 of the 56-byte minor area).
func DecodeCounterBlock(raw [64]byte) CounterBlock {
	var cb CounterBlock
	cb.Major = binary.LittleEndian.Uint64(raw[0:8])
	for i := 0; i < BlocksPerCounter; i++ {
		cb.Minors[i] = extract7(raw[8:], i)
	}
	return cb
}

// Encode serialises the counter block to its 64-byte memory layout.
func (cb *CounterBlock) Encode() [64]byte {
	var raw [64]byte
	binary.LittleEndian.PutUint64(raw[0:8], cb.Major)
	for i := 0; i < BlocksPerCounter; i++ {
		insert7(raw[8:], i, cb.Minors[i]&0x7F)
	}
	return raw
}

// extract7 reads the i-th 7-bit field from the packed minor area.
func extract7(area []byte, i int) byte {
	bit := i * 7
	byteIdx := bit / 8
	shift := uint(bit % 8)
	v := uint16(area[byteIdx])
	if byteIdx+1 < len(area) {
		v |= uint16(area[byteIdx+1]) << 8
	}
	return byte((v >> shift) & 0x7F)
}

// insert7 writes the i-th 7-bit field in the packed minor area.
func insert7(area []byte, i int, val byte) {
	bit := i * 7
	byteIdx := bit / 8
	shift := uint(bit % 8)
	mask := uint16(0x7F) << shift
	v := uint16(area[byteIdx])
	if byteIdx+1 < len(area) {
		v |= uint16(area[byteIdx+1]) << 8
	}
	v = (v &^ mask) | (uint16(val) << shift)
	area[byteIdx] = byte(v)
	if byteIdx+1 < len(area) {
		area[byteIdx+1] = byte(v >> 8)
	}
}

// Counter returns the effective encryption counter for block index i
// (major concatenated with the 7-bit minor).
func (cb *CounterBlock) Counter(i int) uint64 {
	if i < 0 || i >= BlocksPerCounter {
		panic(fmt.Sprintf("cme: counter index %d out of range", i))
	}
	return cb.Major*MinorLimit + uint64(cb.Minors[i])
}

// Increment advances the minor counter for block index i. If the minor
// counter overflows, the major counter is incremented, every minor counter
// is reset to zero, and overflowed is true: the caller must re-encrypt all
// 64 blocks of the region with their new counters (§II-B).
func (cb *CounterBlock) Increment(i int) (overflowed bool) {
	if i < 0 || i >= BlocksPerCounter {
		panic(fmt.Sprintf("cme: counter index %d out of range", i))
	}
	cb.Minors[i]++
	if cb.Minors[i] >= MinorLimit {
		cb.Major++
		cb.Minors = [BlocksPerCounter]byte{}
		// Convention: after a region re-encryption every block uses the new
		// major with minor zero, and the written block's minor advances to 1
		// so its pad differs from the freshly re-encrypted neighbours.
		cb.Minors[i] = 1
		return true
	}
	return false
}

// CounterIndex returns which of the 64 slots in a counter block protects the
// data block at the given 64-byte-aligned address.
func CounterIndex(dataAddr uint64) int {
	return int((dataAddr / 64) % BlocksPerCounter)
}
