package cme

import "testing"

// Fuzzing targets: run as seed-corpus regression tests under `go test`,
// and as real fuzzers with `go test -fuzz`.

func FuzzCounterBlockDecodeEncode(f *testing.F) {
	f.Add(make([]byte, 64))
	seed := make([]byte, 64)
	for i := range seed {
		seed[i] = byte(i*37 + 1)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 64 {
			return
		}
		var blk [64]byte
		copy(blk[:], raw)
		// Decode/encode/decode must be a fixed point: whatever bit pattern
		// arrives, the second decode equals the first (the codec never
		// loses or invents counter state).
		cb := DecodeCounterBlock(blk)
		enc := cb.Encode()
		cb2 := DecodeCounterBlock(enc)
		if cb.Major != cb2.Major || cb.Minors != cb2.Minors {
			t.Fatalf("decode/encode not idempotent: %+v vs %+v", cb, cb2)
		}
		// And every minor stays within 7 bits.
		for i, m := range cb.Minors {
			if m >= MinorLimit {
				t.Fatalf("minor %d = %d exceeds 7 bits", i, m)
			}
		}
	})
}

func FuzzEncryptDecryptRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0), make([]byte, 64))
	f.Add(uint64(0x4000), uint64(7), make([]byte, 64))
	f.Fuzz(func(t *testing.T, addr, ctr uint64, plain []byte) {
		if len(plain) < 64 {
			return
		}
		var p [64]byte
		copy(p[:], plain)
		e := NewEngine(1)
		ct := e.Encrypt(addr, ctr, p)
		if e.Decrypt(addr, ctr, ct) != p {
			t.Fatal("round trip failed")
		}
		// Decrypting under the wrong counter must not yield the plaintext
		// (pads are unique per counter).
		if e.Decrypt(addr, ctr+1, ct) == p && !allZero(p[:]) {
			t.Fatal("wrong counter decrypted successfully")
		}
	})
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
