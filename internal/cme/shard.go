package cme

// Shard-owned engine contexts.
//
// The simulator's timed state machine stays on one goroutine, but the drain
// pipeline fans the *functional* crypto — OTP generation and MAC hashing,
// whose outputs are position-addressed and order-free — out over several
// engine contexts. The contract is ownership, not locking: every goroutine
// computes through its own clone, and the clones share only the immutable
// key material. cmd/ drains build one clone per shard (core.Drainer), and
// the -race hammer test in shard_test.go enforces the contract.

// Clone returns a shard-owned copy of the engine: same AES and MAC keys,
// fresh scratch buffers. The underlying cipher.Block is stateless after key
// expansion, so clones may encrypt concurrently; the per-engine OTP scratch
// (otpPad/otpPT) is what makes a single Engine single-goroutine, and each
// clone carries its own.
func (e *Engine) Clone() *Engine {
	return &Engine{block: e.block, macKey: e.macKey}
}

// SealRun encrypts and MACs a run of blocks in one batched call: for each i,
// cts[i] = Encrypt(addrs[i], ctrs[i], plains[i]) and macs[i] =
// DataMAC(addrs[i], ctrs[i], cts[i]). A nil macs skips the MAC pass. The
// outputs are byte-identical to per-block Encrypt/DataMAC calls; batching
// exists so a shard amortises call overhead over its whole block run.
func (e *Engine) SealRun(addrs, ctrs []uint64, plains, cts [][64]byte, macs []MAC) {
	if len(ctrs) != len(addrs) || len(plains) != len(addrs) || len(cts) != len(addrs) {
		panic("cme: SealRun slice lengths differ")
	}
	if macs != nil && len(macs) != len(addrs) {
		panic("cme: SealRun mac slice length differs")
	}
	for i := range addrs {
		cts[i] = e.Encrypt(addrs[i], ctrs[i], plains[i])
		if macs != nil {
			macs[i] = e.DataMAC(addrs[i], ctrs[i], cts[i])
		}
	}
}

// NodeMACRun computes the NodeMACs of a run of same-level tree nodes with
// consecutive indices start, start+1, ...: out[i] = NodeMAC(level, start+i,
// content[i]). Used to fan the metadata-vault leaf MACs out across shards.
func (e *Engine) NodeMACRun(level int, start uint64, content [][64]byte, out []MAC) {
	if len(out) != len(content) {
		panic("cme: NodeMACRun slice lengths differ")
	}
	for i := range content {
		out[i] = e.NodeMAC(level, start+uint64(i), content[i])
	}
}
