package cme

import (
	"math/rand"
	"sync"
	"testing"
)

// TestCloneMatchesParent pins that a clone is the same cryptographic engine:
// identical pads and MACs for identical inputs, against both the parent and
// the independent CTR/streaming-SHA256 references.
func TestCloneMatchesParent(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 16; trial++ {
		parent := NewEngine(rng.Uint64())
		clone := parent.Clone()
		for i := 0; i < 32; i++ {
			addr, counter := rng.Uint64()&^63, rng.Uint64()
			var pt [64]byte
			rng.Read(pt[:])
			if clone.OTP(addr, counter) != refPad(parent.block, addr, counter) {
				t.Fatalf("clone OTP diverges from CTR reference at (%#x, %d)", addr, counter)
			}
			ct := parent.Encrypt(addr, counter, pt)
			if clone.Encrypt(addr, counter, pt) != ct {
				t.Fatalf("clone Encrypt diverges from parent at (%#x, %d)", addr, counter)
			}
			if clone.DataMAC(addr, counter, ct) != refKeyedHash(parent.macKey, []uint64{addr, counter}, ct[:]) {
				t.Fatalf("clone DataMAC diverges from streaming reference at (%#x, %d)", addr, counter)
			}
		}
	}
}

// TestCloneScratchIsIndependent pins the point of Clone: interleaving calls
// on the parent must not clobber a clone's in-flight results (they would if
// the OTP scratch were shared).
func TestCloneScratchIsIndependent(t *testing.T) {
	parent := NewEngine(7)
	clone := parent.Clone()
	want := parent.OTP(64, 3)
	got := clone.OTP(64, 3)
	_ = parent.OTP(128, 9) // clobber parent scratch
	if got != want {
		t.Fatal("clone OTP result changed after a parent call: scratch is shared")
	}
}

// TestSealRunMatchesSerial verifies the batched shard API against per-block
// Encrypt/DataMAC calls (which are themselves pinned to the CTR and
// streaming-SHA256 oracles by the differential tests).
func TestSealRunMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	e := NewEngine(11)
	for _, n := range []int{0, 1, 7, 64, 257} {
		addrs := make([]uint64, n)
		ctrs := make([]uint64, n)
		plains := make([][64]byte, n)
		cts := make([][64]byte, n)
		macs := make([]MAC, n)
		for i := 0; i < n; i++ {
			addrs[i] = rng.Uint64() &^ 63
			ctrs[i] = rng.Uint64()
			rng.Read(plains[i][:])
		}
		e.SealRun(addrs, ctrs, plains, cts, macs)
		for i := 0; i < n; i++ {
			wantCT := e.Encrypt(addrs[i], ctrs[i], plains[i])
			if cts[i] != wantCT {
				t.Fatalf("n=%d: SealRun ct[%d] diverges from Encrypt", n, i)
			}
			if macs[i] != e.DataMAC(addrs[i], ctrs[i], wantCT) {
				t.Fatalf("n=%d: SealRun mac[%d] diverges from DataMAC", n, i)
			}
		}
		// macs == nil skips the MAC pass but must produce the same ciphertext.
		cts2 := make([][64]byte, n)
		e.SealRun(addrs, ctrs, plains, cts2, nil)
		for i := 0; i < n; i++ {
			if cts2[i] != cts[i] {
				t.Fatalf("n=%d: SealRun without MACs changed ct[%d]", n, i)
			}
		}
	}
}

// TestNodeMACRunMatchesSerial verifies the batched leaf-MAC API against
// per-node NodeMAC calls.
func TestNodeMACRunMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4096))
	e := NewEngine(13)
	content := make([][64]byte, 33)
	for i := range content {
		rng.Read(content[i][:])
	}
	out := make([]MAC, len(content))
	const level, start = 20, uint64(1) << 20
	e.NodeMACRun(level, start, content, out)
	for i := range content {
		if out[i] != e.NodeMAC(level, start+uint64(i), content[i]) {
			t.Fatalf("NodeMACRun out[%d] diverges from NodeMAC", i)
		}
	}
}

// TestShardEngineHammerRace is the enforced concurrency contract of the
// shard-owned engine (run under -race in CI): N clones of one engine seal
// the same block run concurrently — repeatedly, to interleave their scratch
// usage — and every shard's ciphertexts and MACs must be byte-identical to
// the serial parent path. A shared scratch buffer or any hidden mutable
// state would fail the race detector and the byte comparison.
func TestShardEngineHammerRace(t *testing.T) {
	const shards = 8
	const blocks = 512
	const rounds = 16

	parent := NewEngine(99)
	rng := rand.New(rand.NewSource(99))
	addrs := make([]uint64, blocks)
	ctrs := make([]uint64, blocks)
	plains := make([][64]byte, blocks)
	for i := 0; i < blocks; i++ {
		addrs[i] = uint64(i) * 64
		ctrs[i] = rng.Uint64() % 1024
		rng.Read(plains[i][:])
	}

	// Serial oracle through the parent engine.
	wantCT := make([][64]byte, blocks)
	wantMAC := make([]MAC, blocks)
	parent.SealRun(addrs, ctrs, plains, wantCT, wantMAC)

	var wg sync.WaitGroup
	errs := make(chan string, shards)
	for s := 0; s < shards; s++ {
		eng := parent.Clone()
		wg.Add(1)
		go func(s int, eng *Engine) {
			defer wg.Done()
			cts := make([][64]byte, blocks)
			macs := make([]MAC, blocks)
			for r := 0; r < rounds; r++ {
				eng.SealRun(addrs, ctrs, plains, cts, macs)
				for i := 0; i < blocks; i++ {
					if cts[i] != wantCT[i] || macs[i] != wantMAC[i] {
						errs <- "shard output diverges from serial path"
						return
					}
				}
			}
		}(s, eng)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
