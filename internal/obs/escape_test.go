package obs

import (
	"math"
	"strings"
	"testing"
)

// Prometheus text exposition requires backslash, double-quote and newline
// escaped inside label values, and backslash and newline escaped in HELP
// text. A value that slips through unescaped corrupts every later line of
// the exposition.
func TestWritePrometheusEscapesLabelValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("horus_test_total", "path", `C:\tmp`+"\n", "msg", `say "hi"`).Add(1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	want := `horus_test_total{msg="say \"hi\"",path="C:\\tmp\n"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("missing %q in output:\n%s", want, out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.Count(line, "\n") > 0 {
			t.Errorf("raw newline survived in line %q", line)
		}
	}
}

func TestWritePrometheusEscapesHelp(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("horus_test_total", "line one\nline two with a \\ backslash")
	r.Counter("horus_test_total").Add(1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	want := `# HELP horus_test_total line one\nline two with a \\ backslash`
	if !strings.Contains(out, want) {
		t.Errorf("missing %q in output:\n%s", want, out)
	}
}

// Quantile on a histogram that has buckets but no observations must return
// 0 (not NaN, not a bucket bound), matching the nil-histogram behavior.
func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram([]float64{10, 100, 1000})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%g) = %g, want 0", q, got)
		}
	}
	if !math.IsNaN(h.Quantile(2)) {
		t.Error("out-of-range quantile on empty histogram should still be NaN")
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram Quantile = %g, want 0", got)
	}
}
