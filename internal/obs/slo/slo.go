// Package slo evaluates declarative service-level objectives over the
// windowed time series a drain or torture run records. The paper's core
// claim is an SLO — "the drain persists everything before the hold-up
// energy budget is exhausted" (Tables II/III) — and this package turns it,
// plus the torture suite's "silent corruption is never acceptable", into
// machine-checkable rules: a CLI evaluates them after (or during) a run,
// prints a report table naming every violating series, and exits non-zero
// on violation.
package slo

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs/timeseries"
	"repro/internal/report"
)

// Op is the predicate a rule applies to one series.
type Op int

const (
	// FinalAtMost: the newest point's value must be <= Threshold.
	// Use for cumulative curves (total drain energy vs. budget, drain
	// time vs. deadline).
	FinalAtMost Op = iota
	// MaxAtMost: every point must be <= Threshold (peak bound).
	MaxAtMost
	// AlwaysZero: every point must be exactly zero (silent-corruption
	// counters). Threshold is ignored.
	AlwaysZero
)

func (o Op) String() string {
	switch o {
	case FinalAtMost:
		return "final<="
	case MaxAtMost:
		return "max<="
	case AlwaysZero:
		return "always==0"
	}
	return "op?"
}

// Rule is one declarative objective over every series with a given name.
type Rule struct {
	// Name identifies the rule in reports, e.g. "drain-energy-budget".
	Name string
	// Series is the time-series name the rule ranges over; the rule is
	// evaluated once per matching (label set) series.
	Series string
	// Op and Threshold form the predicate.
	Op        Op
	Threshold float64
	// RequireData, when true, makes a rule with no matching series a
	// violation instead of a silent pass (an SLO that never measured
	// anything has not been met).
	RequireData bool
	// Description explains the objective in the report.
	Description string
}

// Verdict is the outcome of one rule on one series.
type Verdict struct {
	Rule   Rule
	Labels map[string]string // the violating/checked series' labels
	// Value is the measured quantity the predicate judged (final or max
	// value; for AlwaysZero the first non-zero value). NaN when no data.
	Value float64
	// TimePs is the sim time of the judged point (-1 when no data).
	TimePs int64
	OK     bool
	// Detail is a human-readable explanation ("no matching series", ...).
	Detail string
}

// Report aggregates every verdict of an evaluation.
type Report struct {
	Verdicts []Verdict
}

// Ok reports whether every verdict passed.
func (r *Report) Ok() bool {
	for _, v := range r.Verdicts {
		if !v.OK {
			return false
		}
	}
	return true
}

// Violations returns the failing verdicts, in evaluation order.
func (r *Report) Violations() []Verdict {
	var out []Verdict
	for _, v := range r.Verdicts {
		if !v.OK {
			out = append(out, v)
		}
	}
	return out
}

// Evaluate applies each rule to every matching series of the snapshot, in
// rule order then snapshot series order, so reports are deterministic.
func Evaluate(rules []Rule, snap timeseries.Snapshot) *Report {
	rep := &Report{}
	for _, rule := range rules {
		matched := snap.Find(rule.Series)
		if len(matched) == 0 {
			if rule.RequireData {
				rep.Verdicts = append(rep.Verdicts, Verdict{
					Rule: rule, Value: nan(), TimePs: -1, OK: false,
					Detail: "no matching series recorded",
				})
			}
			continue
		}
		for _, sr := range matched {
			rep.Verdicts = append(rep.Verdicts, judge(rule, sr))
		}
	}
	return rep
}

func judge(rule Rule, sr timeseries.SeriesSnapshot) Verdict {
	v := Verdict{Rule: rule, Labels: sr.Labels}
	switch rule.Op {
	case FinalAtMost:
		p, ok := sr.Final()
		if !ok {
			return noData(v, rule)
		}
		v.Value, v.TimePs = p.V, p.T
		v.OK = p.V <= rule.Threshold
	case MaxAtMost:
		p, ok := sr.Max()
		if !ok {
			return noData(v, rule)
		}
		v.Value, v.TimePs = p.V, p.T
		v.OK = p.V <= rule.Threshold
	case AlwaysZero:
		v.OK = true
		v.TimePs = -1
		for _, p := range sr.Points {
			if p.V != 0 {
				v.Value, v.TimePs = p.V, p.T
				v.OK = false
				break
			}
		}
	default:
		v.Detail = "unknown op"
	}
	return v
}

func noData(v Verdict, rule Rule) Verdict {
	v.Value, v.TimePs = nan(), -1
	v.OK = !rule.RequireData
	v.Detail = "series has no points"
	return v
}

func nan() float64 {
	var zero float64
	return zero / zero
}

// Table renders the report as a report.Table: one row per verdict, the
// violating (scheme, point) label cells spelled out.
func (r *Report) Table() *report.Table {
	t := &report.Table{
		Title:  "SLO verdicts",
		Header: []string{"rule", "series", "labels", "op", "threshold", "value", "at", "verdict"},
	}
	for _, v := range r.Verdicts {
		verdict := "ok"
		if !v.OK {
			verdict = "VIOLATED"
			if v.Detail != "" {
				verdict += " (" + v.Detail + ")"
			}
		}
		at := "-"
		if v.TimePs >= 0 {
			at = fmt.Sprintf("%d ps", v.TimePs)
		}
		t.Rows = append(t.Rows, []string{
			v.Rule.Name,
			v.Rule.Series,
			labelCell(v.Labels),
			v.Rule.Op.String(),
			fmt.Sprintf("%g", v.Rule.Threshold),
			fmt.Sprintf("%g", v.Value),
			at,
			verdict,
		})
	}
	if len(r.Verdicts) == 0 {
		t.Notes = append(t.Notes, "no rules evaluated")
	}
	for _, v := range r.Violations() {
		t.Notes = append(t.Notes, fmt.Sprintf("VIOLATION: %s on %s — %s",
			v.Rule.Name, labelCell(v.Labels), v.Rule.Description))
	}
	return t
}

func labelCell(labels map[string]string) string {
	if len(labels) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+labels[k])
	}
	return strings.Join(parts, ",")
}
