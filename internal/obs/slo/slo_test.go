package slo

import (
	"math"
	"strings"
	"testing"

	"repro/internal/obs/timeseries"
)

func sampler() *timeseries.Sampler {
	s := timeseries.New(100, 0)
	e1 := s.Gauge("energy_j", "scheme", "Horus-SLM")
	e1.Record(0, 1)
	e1.Record(1000, 9)
	e2 := s.Gauge("energy_j", "scheme", "Base-EU")
	e2.Record(0, 2)
	e2.Record(1000, 21)
	d := s.Gauge("depth", "bank", "0")
	d.Record(0, 3)
	d.Record(500, 17)
	d.Record(1000, 4)
	c := s.Counter("silent_total", "scheme", "Horus-DLM")
	c.Record(0, 0)
	c.Record(900, 2)
	return s
}

func TestFinalAtMost(t *testing.T) {
	rep := Evaluate([]Rule{{
		Name: "budget", Series: "energy_j", Op: FinalAtMost, Threshold: 10, RequireData: true,
	}}, sampler().Snapshot())
	if rep.Ok() {
		t.Fatal("expected violation: Base-EU final is 21 > 10")
	}
	viols := rep.Violations()
	if len(viols) != 1 {
		t.Fatalf("violations = %d, want 1", len(viols))
	}
	v := viols[0]
	if v.Labels["scheme"] != "Base-EU" || v.Value != 21 || v.TimePs != 1000 {
		t.Fatalf("violation = %+v", v)
	}
	// The passing scheme still gets a verdict row.
	if len(rep.Verdicts) != 2 {
		t.Fatalf("verdicts = %d, want 2", len(rep.Verdicts))
	}
}

func TestMaxAtMost(t *testing.T) {
	rep := Evaluate([]Rule{{
		Name: "peak-depth", Series: "depth", Op: MaxAtMost, Threshold: 10,
	}}, sampler().Snapshot())
	if rep.Ok() {
		t.Fatal("expected violation: peak depth 17 > 10")
	}
	if v := rep.Violations()[0]; v.Value != 17 || v.TimePs != 500 {
		t.Fatalf("violation = %+v", v)
	}
}

func TestAlwaysZero(t *testing.T) {
	rep := Evaluate([]Rule{{
		Name: "no-silent-corruption", Series: "silent_total", Op: AlwaysZero,
	}}, sampler().Snapshot())
	if rep.Ok() {
		t.Fatal("expected violation: silent_total reaches 2")
	}
	v := rep.Violations()[0]
	if v.Value != 2 || v.TimePs != 900 || v.Labels["scheme"] != "Horus-DLM" {
		t.Fatalf("violation = %+v", v)
	}
}

func TestRequireData(t *testing.T) {
	snap := timeseries.New(0, 0).Snapshot()
	strict := Evaluate([]Rule{{Name: "r", Series: "missing", Op: FinalAtMost, RequireData: true}}, snap)
	if strict.Ok() {
		t.Fatal("RequireData rule with no series must violate")
	}
	if !math.IsNaN(strict.Violations()[0].Value) {
		t.Fatalf("no-data value = %v, want NaN", strict.Violations()[0].Value)
	}
	lax := Evaluate([]Rule{{Name: "r", Series: "missing", Op: FinalAtMost}}, snap)
	if !lax.Ok() {
		t.Fatal("optional rule with no series must pass")
	}
}

func TestTableNamesViolatingCells(t *testing.T) {
	rep := Evaluate([]Rule{
		{Name: "budget", Series: "energy_j", Op: FinalAtMost, Threshold: 10,
			Description: "drain energy must fit the battery budget"},
		{Name: "no-silent", Series: "silent_total", Op: AlwaysZero,
			Description: "torture must never accept corrupted data"},
	}, sampler().Snapshot())
	out := rep.Table().String()
	for _, want := range []string{
		"scheme=Base-EU", "VIOLATED", "scheme=Horus-DLM",
		"VIOLATION: budget on scheme=Base-EU",
		"drain energy must fit the battery budget",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "ok") {
		t.Fatalf("table missing passing verdicts:\n%s", out)
	}
}
