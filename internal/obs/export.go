package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one TYPE comment per metric name, counters and
// gauges as plain series, histograms as cumulative _bucket/_sum/_count
// series, and the span tree aggregated by path into two series,
// horus_span_duration_ps_total and horus_span_count. A nil registry writes
// nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	keys := append([]string(nil), r.order...)
	entries := make([]*metricEntry, 0, len(keys))
	for _, k := range keys {
		entries = append(entries, r.metrics[k])
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	var b strings.Builder
	typed := map[string]bool{}
	header := func(name string, kind Kind) {
		if typed[name] {
			return
		}
		typed[name] = true
		if h, ok := help[name]; ok {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(h))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind)
	}

	// Group series of the same name behind one TYPE header, preserving
	// first-registration order of names.
	byName := map[string][]*metricEntry{}
	var nameOrder []string
	for _, e := range entries {
		if _, ok := byName[e.name]; !ok {
			nameOrder = append(nameOrder, e.name)
		}
		byName[e.name] = append(byName[e.name], e)
	}
	for _, name := range nameOrder {
		for _, e := range byName[name] {
			header(e.name, e.kind)
			switch e.kind {
			case KindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", e.name, labelString(e.labels, nil), e.counter.Value())
			case KindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", e.name, labelString(e.labels, nil), formatFloat(e.gauge.Value()))
			case KindHistogram:
				writePromHistogram(&b, e)
			}
		}
	}
	writePromSpans(&b, r, typed)
	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram renders one histogram series set.
func writePromHistogram(b *strings.Builder, e *metricEntry) {
	bounds := e.hist.Bounds()
	counts := e.hist.Counts()
	var cum int64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(bounds) {
			le = formatFloat(bounds[i])
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", e.name, labelString(e.labels, []Label{{"le", le}}), cum)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", e.name, labelString(e.labels, nil), formatFloat(e.hist.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", e.name, labelString(e.labels, nil), e.hist.Count())
}

// writePromSpans aggregates the span tree by path into duration/count
// series so repeated phases (e.g. one drain per scheme) sum naturally.
func writePromSpans(b *strings.Builder, r *Registry, typed map[string]bool) {
	durations := map[string]int64{}
	counts := map[string]int64{}
	var order []string
	r.WalkSpans(func(path string, s *Span) {
		if _, ok := counts[path]; !ok {
			order = append(order, path)
		}
		durations[path] += s.Duration()
		counts[path]++
	})
	if len(order) == 0 {
		return
	}
	if !typed["horus_span_duration_ps_total"] {
		fmt.Fprintf(b, "# HELP horus_span_duration_ps_total Cumulative simulated time spent in each lifecycle phase, by span path.\n")
		fmt.Fprintf(b, "# TYPE horus_span_duration_ps_total counter\n")
	}
	for _, p := range order {
		fmt.Fprintf(b, "horus_span_duration_ps_total%s %d\n", labelString(nil, []Label{{"path", p}}), durations[p])
	}
	if !typed["horus_span_count"] {
		fmt.Fprintf(b, "# TYPE horus_span_count counter\n")
	}
	for _, p := range order {
		fmt.Fprintf(b, "horus_span_count%s %d\n", labelString(nil, []Label{{"path", p}}), counts[p])
	}
}

// labelString renders {k="v",...} for the union of labels and extra (extra
// appended last, e.g. the "le" bound).
func labelString(labels, extra []Label) string {
	if len(labels)+len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, l := range append(append([]Label(nil), labels...), extra...) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trip representation).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot is the JSON-exportable state of a registry.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []SpanSnapshot      `json:"spans,omitempty"`
}

// CounterSnapshot is one counter series.
type CounterSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// GaugeSnapshot is one gauge series.
type GaugeSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// HistogramSnapshot is one histogram series with derived quantiles.
type HistogramSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Bounds []float64         `json:"bounds"`
	Counts []int64           `json:"counts"` // last entry is the +Inf bucket
	Count  int64             `json:"count"`
	Sum    float64           `json:"sum"`
	Min    float64           `json:"min"`
	Max    float64           `json:"max"`
	P50    float64           `json:"p50"`
	P90    float64           `json:"p90"`
	P99    float64           `json:"p99"`
}

// SpanSnapshot is one span subtree.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	StartPs    int64          `json:"start_ps"`
	EndPs      int64          `json:"end_ps"`
	DurationPs int64          `json:"duration_ps"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot captures the registry state (empty snapshot on nil).
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	keys := append([]string(nil), r.order...)
	entries := make([]*metricEntry, 0, len(keys))
	for _, k := range keys {
		entries = append(entries, r.metrics[k])
	}
	r.mu.Unlock()

	for _, e := range entries {
		labels := labelMap(e.labels)
		switch e.kind {
		case KindCounter:
			snap.Counters = append(snap.Counters, CounterSnapshot{e.name, labels, e.counter.Value()})
		case KindGauge:
			snap.Gauges = append(snap.Gauges, GaugeSnapshot{e.name, labels, e.gauge.Value()})
		case KindHistogram:
			h := e.hist
			snap.Histograms = append(snap.Histograms, HistogramSnapshot{
				Name: e.name, Labels: labels,
				Bounds: h.Bounds(), Counts: h.Counts(),
				Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
				P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
			})
		}
	}
	for _, root := range r.Spans() {
		snap.Spans = append(snap.Spans, snapshotSpan(root))
	}
	return snap
}

func snapshotSpan(s *Span) SpanSnapshot {
	out := SpanSnapshot{Name: s.Name, StartPs: s.Start, EndPs: s.End, DurationPs: s.Duration()}
	for _, c := range s.Children {
		out.Children = append(out.Children, snapshotSpan(c))
	}
	return out
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// WriteJSON writes an indented JSON snapshot. A nil registry writes an
// empty object.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// SortedSeriesNames returns every registered metric name, sorted, for
// tests and docs tooling.
func (r *Registry) SortedSeriesNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := map[string]bool{}
	var out []string
	for _, k := range r.order {
		n := r.metrics[k].name
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
