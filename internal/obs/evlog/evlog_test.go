package evlog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	if l.Enabled() {
		t.Fatal("nil log reports enabled")
	}
	l.BeginEpisode("x")
	l.SetStage("s")
	l.Append(Record{Check: "c"})
	l.EndEpisode(100)
	if l.Len() != 0 || l.Limit() != 0 || l.TotalPs() != 0 || l.Overwritten() != 0 {
		t.Fatal("nil log reports state")
	}
	if l.Records() != nil || l.Chain(4) != nil {
		t.Fatal("nil log returns records")
	}
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil log wrote %q err=%v", buf.String(), err)
	}
}

func TestRingKeepsNewestAndCountsOverwrites(t *testing.T) {
	l := New(3)
	l.BeginEpisode("ep")
	for i := 0; i < 5; i++ {
		l.Append(Record{Check: "c", Addr: uint64(i)})
	}
	recs := l.Records()
	if len(recs) != 3 {
		t.Fatalf("len = %d, want 3", len(recs))
	}
	for i, r := range recs {
		if want := uint64(i + 2); r.Addr != want {
			t.Fatalf("recs[%d].Addr = %d, want %d", i, r.Addr, want)
		}
		if want := int64(i + 2); r.Seq != want {
			t.Fatalf("recs[%d].Seq = %d, want %d", i, r.Seq, want)
		}
		if r.Episode != "ep" {
			t.Fatalf("recs[%d].Episode = %q", i, r.Episode)
		}
	}
	if l.Overwritten() != 2 {
		t.Fatalf("Overwritten = %d, want 2", l.Overwritten())
	}
}

func TestBeginEpisodeResets(t *testing.T) {
	l := New(4)
	l.BeginEpisode("a")
	l.SetStage("stage-a")
	l.Append(Record{Check: "one"})
	l.EndEpisode(50)
	l.BeginEpisode("b")
	l.Append(Record{Check: "two"})
	recs := l.Records()
	if len(recs) != 1 || recs[0].Check != "two" || recs[0].Seq != 0 {
		t.Fatalf("recs = %+v", recs)
	}
	if recs[0].Episode != "b" || recs[0].Stage != "" {
		t.Fatalf("episode/stage not reset: %+v", recs[0])
	}
	if l.TotalPs() != 0 {
		t.Fatalf("TotalPs = %d after reset", l.TotalPs())
	}
}

func TestChainTruncatesFromFront(t *testing.T) {
	l := New(10)
	l.BeginEpisode("ep")
	for i := 0; i < 6; i++ {
		l.Append(Record{Addr: uint64(i)})
	}
	c := l.Chain(2)
	if len(c) != 2 || c[0].Addr != 4 || c[1].Addr != 5 {
		t.Fatalf("Chain(2) = %+v", c)
	}
	if got := l.Chain(0); len(got) != 6 {
		t.Fatalf("Chain(0) len = %d", len(got))
	}
}

func TestWriteJSONLRoundTrip(t *testing.T) {
	l := New(8)
	l.BeginEpisode("recover-chv:Horus-SLM")
	l.SetStage("recover:chv-stream")
	l.Append(Record{TPs: 10, Check: "chv-data-mac", Region: "chv-data", Addr: 0x40, Blocks: 1, Outcome: "ok"})
	l.Append(Record{TPs: 20, Check: "chv-data-mac", Region: "chv-data", Addr: 0x80, Blocks: 2,
		Outcome: "fail", Expected: "0a0b", Got: "ffee", Detail: "MAC mismatch"})
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var back []Record
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		back = append(back, r)
	}
	if len(back) != 2 {
		t.Fatalf("round-tripped %d records", len(back))
	}
	if back[1].Expected != "0a0b" || back[1].Got != "ffee" || back[1].Stage != "recover:chv-stream" {
		t.Fatalf("back[1] = %+v", back[1])
	}
	if back[0].Expected != "" || back[0].Detail != "" {
		t.Fatalf("ok record carries failure fields: %+v", back[0])
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Seq: 3, TPs: 120, Outcome: "fail", Check: "vault-root", Region: "vault",
		Addr: 0x1000, Blocks: 7, Expected: "aa", Got: "bb", Detail: "root mismatch"}
	s := r.String()
	for _, want := range []string{"#3", "t=120ps", "fail", "vault-root", "addr=0x1000", "blocks=7", "expected=aa", "got=bb", "root mismatch"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

// BenchmarkEvlogDisabledOverhead pins the disabled fast path: recovery code
// calls Append on a nil *Log, which must be one pointer check and zero
// allocations.
func BenchmarkEvlogDisabledOverhead(b *testing.B) {
	var l *Log
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Append(Record{Check: "chv-data-mac", Addr: uint64(i), Blocks: int64(i), Outcome: "ok"})
	}
	if n := testing.AllocsPerRun(100, func() {
		l.Append(Record{Check: "chv-data-mac", Outcome: "ok"})
	}); n != 0 {
		b.Fatalf("disabled Append allocates %v per op", n)
	}
}
