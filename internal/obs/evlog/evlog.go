// Package evlog is the detection-forensics flight recorder: a bounded,
// episode-bracketed structured event log that records the causal provenance
// of every recovery decision — which check ran, which layout region and
// address it touched, the expected-vs-got identity of a MAC or counter
// comparison, and how many blocks had been scanned when it fired.
//
// Like a flight recorder, the log is a ring: once the bound is reached the
// oldest records are overwritten, so after a failure the log holds the
// events leading up to it. The recovery paths capture the ring into the
// typed error they return (see recovery.Error.Chain), which is how a
// torture-matrix or litmus cell can print a forensic report for a detection
// that happened on a private per-cell system.
//
// The package mirrors the obs.Registry nil-safety contract: every method is
// a no-op on a nil *Log, so a detached recovery path pays exactly one
// pointer check per decision and allocates nothing
// (BenchmarkEvlogDisabledOverhead pins this).
package evlog

import (
	"encoding/json"
	"fmt"
	"io"
)

// DefaultLimit bounds a log built with New(0): enough to hold the whole
// decision trail of a small recovery episode and the tail of a large one.
const DefaultLimit = 256

// DefaultChainLimit is the ring bound harnesses attach to per-cell systems:
// large enough to show the blocks scanned immediately before a detection,
// small enough that thousands of cells can each carry a chain.
const DefaultChainLimit = 32

// Record is one recovery decision.
type Record struct {
	// Seq numbers records within the episode, including overwritten ones,
	// so a gap at the front of a captured chain is visible.
	Seq int64 `json:"seq"`
	// TPs is the phase-local simulated time of the decision, picoseconds.
	TPs int64 `json:"t_ps"`
	// Episode names the recovery path episode ("recover-chv:Horus-SLM").
	Episode string `json:"episode,omitempty"`
	// Stage is the recovery stage in flight ("recover:chv-stream").
	Stage string `json:"stage,omitempty"`
	// Check names the verification evaluated ("chv-data-mac", "vault-root").
	Check string `json:"check"`
	// Region is the layout region the decision touched ("chv-data", "vault").
	Region string `json:"region,omitempty"`
	// Addr/Slot locate the block under the check, when one is known.
	Addr uint64 `json:"addr"`
	Slot uint64 `json:"slot,omitempty"`
	// Expected/Got are the identity comparison, hex, filled on mismatch.
	Expected string `json:"expected,omitempty"`
	Got      string `json:"got,omitempty"`
	// Blocks is how many blocks the path had verified when the check ran —
	// the detection-latency numerator.
	Blocks int64 `json:"blocks_scanned"`
	// Outcome is "ok", "fail" or "info".
	Outcome string `json:"outcome"`
	// Detail is the human-readable failure description, empty on "ok".
	Detail string `json:"detail,omitempty"`
}

// String renders the record as one forensic-report line.
func (r Record) String() string {
	s := fmt.Sprintf("#%d t=%dps %s %s %s addr=%#x blocks=%d", r.Seq, r.TPs, r.Outcome, r.Check, r.Region, r.Addr, r.Blocks)
	if r.Expected != "" || r.Got != "" {
		s += fmt.Sprintf(" expected=%s got=%s", r.Expected, r.Got)
	}
	if r.Detail != "" {
		s += " — " + r.Detail
	}
	return s
}

// Log is the bounded ring of records for one recovery episode. It is
// single-threaded, like the recovery path that feeds it: parallel harness
// cells each attach their own log.
type Log struct {
	limit   int
	ring    []Record
	next    int  // ring cursor (index of the oldest record once full)
	full    bool // ring has wrapped
	seq     int64
	episode string
	stage   string
	totalPs int64
}

// New returns a log retaining at most limit records (0 selects
// DefaultLimit; negative values select DefaultChainLimit's floor of 1).
func New(limit int) *Log {
	if limit == 0 {
		limit = DefaultLimit
	}
	if limit < 1 {
		limit = 1
	}
	return &Log{limit: limit}
}

// Enabled reports whether the log records anything.
func (l *Log) Enabled() bool { return l != nil }

// Limit returns the configured ring bound.
func (l *Log) Limit() int {
	if l == nil {
		return 0
	}
	return l.limit
}

// BeginEpisode clears the ring and names the episode; each recovery path
// brackets itself so the log covers exactly one path at a time.
func (l *Log) BeginEpisode(label string) {
	if l == nil {
		return
	}
	l.ring = l.ring[:0]
	l.next = 0
	l.full = false
	l.seq = 0
	l.episode = label
	l.stage = ""
	l.totalPs = 0
}

// EndEpisode records the episode's final phase-local time.
func (l *Log) EndEpisode(totalPs int64) {
	if l == nil {
		return
	}
	l.totalPs = totalPs
}

// TotalPs returns the episode span recorded by EndEpisode.
func (l *Log) TotalPs() int64 {
	if l == nil {
		return 0
	}
	return l.totalPs
}

// SetStage stamps the recovery stage onto subsequent records.
func (l *Log) SetStage(stage string) {
	if l == nil {
		return
	}
	l.stage = stage
}

// Append stamps the record with the running sequence number, episode and
// stage and adds it to the ring, overwriting the oldest record when full.
func (l *Log) Append(r Record) {
	if l == nil {
		return
	}
	r.Seq = l.seq
	l.seq++
	r.Episode = l.episode
	r.Stage = l.stage
	if len(l.ring) < l.limit {
		l.ring = append(l.ring, r)
		l.next = len(l.ring) % l.limit
		l.full = len(l.ring) == l.limit && l.next == 0
		return
	}
	l.ring[l.next] = r
	l.next = (l.next + 1) % l.limit
	l.full = true
}

// Len returns the number of retained records.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.ring)
}

// Overwritten returns how many records the ring has discarded.
func (l *Log) Overwritten() int64 {
	if l == nil {
		return 0
	}
	return l.seq - int64(len(l.ring))
}

// Records returns the retained records oldest-first.
func (l *Log) Records() []Record {
	if l == nil || len(l.ring) == 0 {
		return nil
	}
	out := make([]Record, 0, len(l.ring))
	if l.full {
		out = append(out, l.ring[l.next:]...)
	}
	out = append(out, l.ring[:l.next]...)
	if !l.full {
		out = append(out[:0], l.ring...)
	}
	return out
}

// Chain returns the newest n retained records oldest-first (n <= 0 returns
// every retained record) — the provenance chain a typed recovery error
// carries.
func (l *Log) Chain(n int) []Record {
	recs := l.Records()
	if n > 0 && len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	return recs
}

// WriteJSONL writes the retained records oldest-first, one JSON object per
// line. A nil log writes nothing.
func WriteJSONL(w io.Writer, recs ...Record) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL writes the log's retained records as JSON lines.
func (l *Log) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	return WriteJSONL(w, l.Records()...)
}

// Forensic is the portable summary of one detection: what fired, where,
// after how much scanning, with the trailing provenance chain. The recovery
// packages fill the check/identity fields from their typed errors; the
// torture/litmus harnesses fill the cell-level labels (Label, Scheme,
// Model) before reporting.
type Forensic struct {
	// Label names the harness cell ("Horus-SLM/bit-flip@12"), when any.
	Label string `json:"label,omitempty"`
	// Scheme is the drain design under test.
	Scheme string `json:"scheme,omitempty"`
	// Model is the corruption model / fault flavor that provoked the
	// detection ("bit-flip", "rollback", "reorder").
	Model string `json:"model,omitempty"`
	// Phase is the recovery phase that detected it ("CHV recovery",
	// "metadata vault", "post-recovery read").
	Phase string `json:"phase,omitempty"`
	// Check names the verification that fired.
	Check string `json:"check,omitempty"`
	// Region is the layout region of the failing address.
	Region string `json:"region,omitempty"`
	// Addr/Slot locate the failure.
	Addr uint64 `json:"addr"`
	Slot uint64 `json:"slot,omitempty"`
	// Expected/Got are the failing identity comparison, hex.
	Expected string `json:"expected,omitempty"`
	Got      string `json:"got,omitempty"`
	// BlocksScanned is how many blocks recovery verified before detection.
	BlocksScanned int64 `json:"blocks_scanned"`
	// DetectLatencyPs is the phase-local simulated time of the detection.
	DetectLatencyPs int64 `json:"detect_latency_ps"`
	// Detail is the typed error's description.
	Detail string `json:"detail,omitempty"`
	// Chain is the trailing provenance (empty when recording was disabled).
	Chain []Record `json:"chain,omitempty"`
}
