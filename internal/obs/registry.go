// Package obs is the zero-dependency observability layer of the simulator:
// a registry of named counters, gauges and fixed-bucket histograms, plus
// phase-scoped spans that nest into a lifecycle tree (run / crash / drain /
// recover / verify), with exporters for the Prometheus text exposition
// format and a JSON snapshot.
//
// Instrumentation is designed to be free when disabled: every method is
// safe on a nil *Registry (and on the nil metric handles a nil registry
// returns), so instrumented code holds plain pointers and pays one nil
// check per event. Hot paths cache metric handles once instead of looking
// them up per event.
//
// Values are untyped on purpose: simulated durations are recorded in
// picoseconds (the sim.Time unit) as int64/float64 so this package needs no
// import of the timing model and can be merged across bank-parallel
// recovery chains or whole registries.
package obs

import (
	"sort"
	"strings"
	"sync"
)

// Kind classifies a metric for exporters.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind in Prometheus TYPE terms.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one metric dimension.
type Label struct {
	Key, Value string
}

// Registry holds named metrics and the span tree of one simulation
// lifecycle. The zero value is not used directly; NewRegistry returns a
// ready registry and a nil *Registry is a valid, always-no-op registry.
type Registry struct {
	mu      sync.Mutex
	order   []string // metric keys in registration order
	metrics map[string]*metricEntry
	help    map[string]string

	roots []*Span
	open  []*Span // current span stack
}

// metricEntry is one registered (name, labels) series.
type metricEntry struct {
	name   string
	labels []Label
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics: make(map[string]*metricEntry),
		help:    make(map[string]string),
	}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// SetHelp attaches a HELP string to a metric name (shown by the Prometheus
// exporter).
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = help
}

// Help returns the HELP string attached to a metric name, or "" when none
// was registered — the help-string lint walks every exported series name
// through this.
func (r *Registry) Help(name string) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.help[name]
}

// seriesKey canonicalises (name, labels) into a map key. Labels must
// already be sorted by key.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// parseLabels turns alternating key/value strings into a sorted label set.
// An odd trailing key is dropped rather than panicking: instrumentation
// must never take the simulator down.
func parseLabels(kv []string) []Label {
	n := len(kv) / 2
	if n == 0 {
		return nil
	}
	labels := make([]Label, 0, n)
	for i := 0; i+1 < len(kv); i += 2 {
		labels = append(labels, Label{Key: kv[i], Value: kv[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	return labels
}

// lookup returns the entry for (name, labels), creating it with mk when
// absent. Returns nil when an existing entry has a different kind.
func (r *Registry) lookup(name string, kv []string, kind Kind, mk func(e *metricEntry)) *metricEntry {
	labels := parseLabels(kv)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[key]; ok {
		if e.kind != kind {
			return nil
		}
		return e
	}
	e := &metricEntry{name: name, labels: labels, kind: kind}
	mk(e)
	r.metrics[key] = e
	r.order = append(r.order, key)
	return e
}

// Counter returns (creating if needed) the counter for name and the given
// alternating label key/value pairs. Nil registries return a nil counter,
// whose methods are no-ops.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	e := r.lookup(name, kv, KindCounter, func(e *metricEntry) { e.counter = &Counter{} })
	if e == nil {
		return nil
	}
	return e.counter
}

// Gauge returns (creating if needed) the gauge for name and labels.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	e := r.lookup(name, kv, KindGauge, func(e *metricEntry) { e.gauge = &Gauge{} })
	if e == nil {
		return nil
	}
	return e.gauge
}

// Histogram returns (creating if needed) the histogram for name and labels
// with the given bucket upper bounds (sorted ascending; an implicit +Inf
// bucket is appended). An existing histogram keeps its original bounds.
func (r *Registry) Histogram(name string, bounds []float64, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	e := r.lookup(name, kv, KindHistogram, func(e *metricEntry) { e.hist = NewHistogram(bounds) })
	if e == nil {
		return nil
	}
	return e.hist
}

// Merge folds every metric of other into r: counters add, histograms merge
// bucket-wise (matching bounds required), gauges take other's latest value,
// and help strings carry over (r's own, when already set, win). Spans of
// other are appended as additional roots. Intended for combining per-chain
// registries of bank-parallel recovery into one report. A nil receiver or
// nil other is a no-op.
func (r *Registry) Merge(other *Registry) {
	if r == nil || other == nil {
		return
	}
	other.mu.Lock()
	keys := append([]string(nil), other.order...)
	entries := make([]*metricEntry, 0, len(keys))
	for _, k := range keys {
		entries = append(entries, other.metrics[k])
	}
	help := make(map[string]string, len(other.help))
	for name, h := range other.help {
		help[name] = h
	}
	// Deep-copy the span tree: sharing live *Span pointers across
	// registries would let a late EndAt on other race a scrape of r.
	spans := make([]*Span, len(other.roots))
	for i, s := range other.roots {
		spans[i] = cloneSpan(s, r)
	}
	other.mu.Unlock()

	for _, e := range entries {
		kv := make([]string, 0, 2*len(e.labels))
		for _, l := range e.labels {
			kv = append(kv, l.Key, l.Value)
		}
		switch e.kind {
		case KindCounter:
			r.Counter(e.name, kv...).Add(e.counter.Value())
		case KindGauge:
			r.Gauge(e.name, kv...).Set(e.gauge.Value())
		case KindHistogram:
			h := r.Histogram(e.name, e.hist.Bounds(), kv...)
			h.Merge(e.hist) // ignore bound mismatch: nothing safe to do
		}
	}
	r.mu.Lock()
	for name, h := range help {
		if r.help[name] == "" {
			r.help[name] = h
		}
	}
	r.roots = append(r.roots, spans...)
	r.mu.Unlock()
}

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	mu sync.Mutex
	v  int64
}

// Add increments the counter. No-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.v += n
	c.mu.Unlock()
}

// Value returns the current count (zero on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add shifts the gauge value. No-op on nil.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += v
	g.mu.Unlock()
}

// Value returns the current value (zero on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}
