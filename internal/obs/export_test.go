package obs

import (
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	r := NewRegistry()
	life := r.StartSpan("lifecycle", 0)
	run := r.StartSpan("run", 0)
	run.EndAt(100)
	drain := r.StartSpan("drain", 100)
	blocks := r.StartSpan("flush-blocks", 100)
	blocks.EndAt(180)
	meta := r.StartSpan("flush-metadata", 180)
	meta.EndAt(200)
	drain.EndAt(200)
	life.EndAt(200)

	roots := r.Spans()
	if len(roots) != 1 || roots[0].Name != "lifecycle" {
		t.Fatalf("roots = %+v", roots)
	}
	if len(roots[0].Children) != 2 {
		t.Fatalf("lifecycle children = %d, want 2 (run, drain)", len(roots[0].Children))
	}
	d := roots[0].Children[1]
	if d.Name != "drain" || len(d.Children) != 2 || d.Duration() != 100 {
		t.Fatalf("drain span = %+v", d)
	}
	var paths []string
	r.WalkSpans(func(p string, s *Span) { paths = append(paths, p) })
	want := "lifecycle lifecycle/run lifecycle/drain lifecycle/drain/flush-blocks lifecycle/drain/flush-metadata"
	if got := strings.Join(paths, " "); got != want {
		t.Fatalf("paths = %q, want %q", got, want)
	}
}

func TestSpanParentEndClosesChildren(t *testing.T) {
	r := NewRegistry()
	parent := r.StartSpan("recover", 0)
	child := r.StartSpan("verify", 10)
	parent.EndAt(50) // child left open: must be closed at 50 too
	if child.Duration() != 40 {
		t.Fatalf("abandoned child duration = %d, want 40", child.Duration())
	}
	// Ending the already-popped child later must not corrupt the stack.
	child.EndAt(90)
	if child.End != 50 {
		t.Fatalf("closed child re-opened: end = %d", child.End)
	}
	next := r.StartSpan("next", 60)
	next.EndAt(70)
	if len(r.Spans()) != 2 {
		t.Fatalf("roots = %d, want 2", len(r.Spans()))
	}
}

func TestSpanEndBeforeStartClamped(t *testing.T) {
	r := NewRegistry()
	s := r.StartSpan("x", 100)
	s.EndAt(40)
	if s.Duration() != 0 {
		t.Fatalf("negative-duration span = %d, want clamp to 0", s.Duration())
	}
}

// promLine matches a valid sample line of the text exposition format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [^ ]+$`)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("horus_mem_reads_total", "Reads by category.")
	r.Counter("horus_mem_reads_total", "category", "data").Add(4)
	r.Counter("horus_mem_reads_total", "category", "tree").Add(2)
	r.Gauge("horus_drain_time_ps", "scheme", "Horus-SLM").Set(1.5e9)
	h := r.Histogram("horus_mem_bank_wait_ps", []float64{100, 1000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(5000)
	life := r.StartSpan("drain", 0)
	life.EndAt(2000)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP horus_mem_reads_total Reads by category.",
		"# TYPE horus_mem_reads_total counter",
		`horus_mem_reads_total{category="data"} 4`,
		`horus_mem_reads_total{category="tree"} 2`,
		"# TYPE horus_drain_time_ps gauge",
		`horus_drain_time_ps{scheme="Horus-SLM"} 1.5e+09`,
		"# TYPE horus_mem_bank_wait_ps histogram",
		`horus_mem_bank_wait_ps_bucket{le="100"} 1`,
		`horus_mem_bank_wait_ps_bucket{le="1000"} 2`,
		`horus_mem_bank_wait_ps_bucket{le="+Inf"} 3`,
		`horus_mem_bank_wait_ps_sum 5550`,
		`horus_mem_bank_wait_ps_count 3`,
		"# TYPE horus_span_duration_ps_total counter",
		`horus_span_duration_ps_total{path="drain"} 2000`,
		`horus_span_count{path="drain"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// One TYPE header per name, every sample line well-formed.
	typeCount := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			typeCount[strings.Fields(line)[2]]++
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	for name, n := range typeCount {
		if n != 1 {
			t.Errorf("metric %s has %d TYPE headers", name, n)
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "k", "v").Add(9)
	r.Gauge("g").Set(2.5)
	h := r.Histogram("h", []float64{10})
	h.Observe(4)
	h.Observe(40)
	root := r.StartSpan("drain", 0)
	r.RecordSpan("flush-blocks", 0, 30)
	root.EndAt(50)

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 9 || snap.Counters[0].Labels["k"] != "v" {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != 2.5 {
		t.Fatalf("gauges = %+v", snap.Gauges)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != 2 || snap.Histograms[0].Sum != 44 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].DurationPs != 50 ||
		len(snap.Spans[0].Children) != 1 || snap.Spans[0].Children[0].DurationPs != 30 {
		t.Fatalf("spans = %+v", snap.Spans)
	}
	// An empty (nil) registry still yields valid JSON.
	var nilReg *Registry
	b.Reset()
	if err := nilReg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatalf("nil registry JSON invalid: %v", err)
	}
}
