package timeseries

import (
	"bytes"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestNilSamplerIsNoOp(t *testing.T) {
	var s *Sampler
	sr := s.Gauge("x", "k", "v")
	if sr != nil {
		t.Fatalf("nil sampler returned non-nil series")
	}
	sr.Record(10, 1) // must not panic
	s.Merge(New(0, 0))
	New(0, 0).Merge(s)
	snap := s.Snapshot()
	if len(snap.Series) != 0 {
		t.Fatalf("nil snapshot has %d series", len(snap.Series))
	}
	if s.WindowPs() != DefaultWindowPs || s.Capacity() != DefaultCapacity {
		t.Fatalf("nil sampler defaults wrong: %d/%d", s.WindowPs(), s.Capacity())
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"series": []`) {
		t.Fatalf("nil WriteJSON = %q", buf.String())
	}
}

func TestNilRecordDoesNotAllocate(t *testing.T) {
	var sr *Series
	allocs := testing.AllocsPerRun(100, func() { sr.Record(123456, 1.5) })
	if allocs != 0 {
		t.Fatalf("nil Series.Record allocates %v per op", allocs)
	}
}

func TestGaugeWindowKeepsLastValue(t *testing.T) {
	s := New(100, 0)
	g := s.Gauge("depth")
	g.Record(10, 1)
	g.Record(50, 2)  // same window: overwrites
	g.Record(150, 7) // next window
	pts := s.Snapshot().Series[0].Points
	want := []Point{{T: 0, V: 2}, {T: 100, V: 7}}
	if len(pts) != len(want) {
		t.Fatalf("got %v want %v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("point %d: got %v want %v", i, pts[i], want[i])
		}
	}
}

func TestCounterWindowSums(t *testing.T) {
	s := New(100, 0)
	c := s.Counter("blocks")
	c.Record(10, 1)
	c.Record(50, 1)
	c.Record(199, 3)
	pts := s.Snapshot().Series[0].Points
	want := []Point{{T: 0, V: 2}, {T: 100, V: 3}}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("point %d: got %v want %v", i, pts[i], want[i])
		}
	}
}

func TestOutOfOrderFoldsIntoNewestBucket(t *testing.T) {
	s := New(100, 0)
	c := s.Counter("evt")
	c.Record(250, 1)
	c.Record(120, 1) // earlier than newest bucket start: folds into it
	pts := s.Snapshot().Series[0].Points
	if len(pts) != 1 || pts[0] != (Point{T: 200, V: 2}) {
		t.Fatalf("got %v", pts)
	}
}

func TestCoarsenKeepsRangeAndTotals(t *testing.T) {
	s := New(1, 8)
	c := s.Counter("evt")
	g := s.Gauge("level")
	const n = 1000
	for i := 0; i < n; i++ {
		c.Record(int64(i), 1)
		g.Record(int64(i), float64(i))
	}
	snap := s.Snapshot()
	for _, sr := range snap.Series {
		if len(sr.Points) > 8 {
			t.Fatalf("%s: %d points exceeds cap", sr.Name, len(sr.Points))
		}
		if sr.WindowPs <= 1 {
			t.Fatalf("%s: window did not coarsen: %d", sr.Name, sr.WindowPs)
		}
		if sr.Points[0].T != 0 {
			t.Fatalf("%s: lost the start of the range: %v", sr.Name, sr.Points[0])
		}
	}
	var total float64
	for _, p := range snap.Find("evt")[0].Points {
		total += p.V
	}
	if total != n {
		t.Fatalf("counter total after coarsening = %v, want %d", total, n)
	}
	if final, _ := snap.Find("level")[0].Final(); final.V != n-1 {
		t.Fatalf("gauge final after coarsening = %v, want %d", final.V, n-1)
	}
}

func TestLabelsSortedAndBaseApplied(t *testing.T) {
	s := New(0, 0, "point", "p0")
	s.Gauge("m", "scheme", "Horus-SLM", "bank", "3")
	ss := s.Snapshot().Series[0]
	if ss.Labels["point"] != "p0" || ss.Labels["scheme"] != "Horus-SLM" || ss.Labels["bank"] != "3" {
		t.Fatalf("labels = %v", ss.Labels)
	}
	// Same labels in a different order must resolve to the same series.
	a := s.Gauge("m", "bank", "3", "scheme", "Horus-SLM")
	b := s.Gauge("m", "scheme", "Horus-SLM", "bank", "3")
	if a != b {
		t.Fatalf("label order changed series identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on kind mismatch")
		}
	}()
	s := New(0, 0)
	s.Gauge("m")
	s.Counter("m")
}

func TestMergeDeterministicAcrossOrder(t *testing.T) {
	build := func(point string, seed int64) *Sampler {
		sm := New(100, 64, "point", point)
		rng := rand.New(rand.NewSource(seed))
		c := sm.Counter("blocks")
		g := sm.Gauge("energy")
		for i := 0; i < 500; i++ {
			t := int64(i * 37)
			c.Record(t, 1)
			g.Record(t, rng.Float64())
		}
		return sm
	}
	episodes := []*Sampler{build("a", 1), build("b", 2), build("c", 3)}

	// Merge in index order regardless of completion order: output must
	// be byte-identical.
	var runs [][]byte
	for trial := 0; trial < 2; trial++ {
		sink := New(100, 64)
		for _, ep := range episodes {
			sink.Merge(ep)
		}
		var buf bytes.Buffer
		if err := sink.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		runs = append(runs, buf.Bytes())
	}
	if !bytes.Equal(runs[0], runs[1]) {
		t.Fatalf("merge output not deterministic")
	}
	sink := New(100, 64)
	for _, ep := range episodes {
		sink.Merge(ep)
	}
	snap := sink.Snapshot()
	if got := len(snap.Find("blocks")); got != 3 {
		t.Fatalf("want 3 blocks series (one per episode), got %d", got)
	}
}

func TestMergeSharedKeyAppends(t *testing.T) {
	a := New(100, 0)
	a.Counter("evt").Record(50, 2)
	b := New(100, 0)
	b.Counter("evt").Record(250, 3)
	a.Merge(b)
	pts := a.Snapshot().Series[0].Points
	want := []Point{{T: 0, V: 2}, {T: 200, V: 3}}
	if len(pts) != 2 || pts[0] != want[0] || pts[1] != want[1] {
		t.Fatalf("got %v want %v", pts, want)
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	s := New(10, 128)
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			sr := s.Counter("evt", "w", string(rune('a'+w)))
			for i := 0; i < 2000; i++ {
				sr.Record(int64(i), 1)
			}
		}(w)
	}
	// Scrape concurrently with the writers, like the live /timeseries.json
	// endpoint does, until they finish.
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Snapshot()
			var buf bytes.Buffer
			_ = s.WriteJSON(&buf)
			s.Merge(New(10, 128))
		}
	}()
	writers.Wait()
	close(stop)
	scraper.Wait()
	total := 0.0
	for _, sr := range s.Snapshot().Series {
		for _, p := range sr.Points {
			total += p.V
		}
	}
	if total != 4*2000 {
		t.Fatalf("lost samples under concurrency: total=%v", total)
	}
}
