// Package timeseries is the live-telemetry companion to the obs registry:
// windowed time series over the *simulated* clock (picoseconds), recorded
// while an episode runs rather than dumped after it ends. A Sampler holds
// named series keyed exactly like registry metrics (name plus sorted
// key=value labels); each Series is a bounded bucket list over sim time
// that coarsens itself (window doubling) instead of dropping data, so a
// multi-millisecond drain and a microsecond unit test both fit the same
// fixed footprint with the full time range intact.
//
// Determinism contract (mirrors internal/sweep): samplers are per-episode,
// never shared across workers, and merged post-hoc in episode index order.
// Recording depends only on the episode's own sim-time stream, and Merge is
// pure data movement, so a sweep with one worker and with N workers yields
// byte-identical Snapshot/WriteJSON output.
//
// The disabled path is free: a nil *Sampler returns nil series handles and
// a nil *Series ignores Record, so instrumented hot loops pay one pointer
// compare when telemetry is off (guarded by
// BenchmarkTimeseriesDisabledOverhead at the repo root).
package timeseries

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Defaults for New when the caller passes zero values.
const (
	// DefaultWindowPs is the initial bucket width: 1 ns of sim time.
	// Series coarsen automatically, so a fine initial window costs only
	// a few doubling passes on long episodes.
	DefaultWindowPs = 1_000
	// DefaultCapacity bounds the bucket count per series. 512 points of
	// 16 bytes keeps a fully instrumented episode (a few dozen series)
	// well under a megabyte.
	DefaultCapacity = 512
)

// Kind tells a series how to fold samples that land in the same window.
type Kind int

const (
	// Gauge keeps the last sample per window (instantaneous values:
	// queue depth, cumulative energy, budget fraction).
	Gauge Kind = iota
	// Counter sums the samples per window (event rates: blocks drained,
	// ops retired).
	Counter
)

func (k Kind) String() string {
	if k == Counter {
		return "counter"
	}
	return "gauge"
}

// Label is one key=value series label.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Point is one windowed sample: T is the window's start on the simulated
// clock in picoseconds, V the folded value of that window.
type Point struct {
	T int64   `json:"t_ps"`
	V float64 `json:"v"`
}

// Series is one named, labelled time series. Safe for concurrent use; the
// zero-cost disabled form is the nil pointer.
type Series struct {
	mu     sync.Mutex
	name   string
	labels []Label
	kind   Kind
	window int64 // current bucket width, ps; grows by doubling
	cap    int
	points []Point // bucket starts, strictly increasing
}

// Record folds one sample at sim time t (picoseconds) into the series.
// A nil receiver ignores the call, which is the entire disabled path.
// Samples at or before the newest bucket fold into it (bank-level
// completion times can finish out of order even though episode time only
// moves forward), so recorded bucket starts stay strictly increasing.
func (s *Series) Record(t int64, v float64) {
	if s == nil {
		return
	}
	if t < 0 {
		t = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	w := t - t%s.window
	if n := len(s.points); n > 0 && w <= s.points[n-1].T {
		s.fold(&s.points[n-1], v)
		return
	}
	s.points = append(s.points, Point{T: w, V: v})
	for len(s.points) > s.cap {
		s.coarsen()
	}
}

func (s *Series) fold(p *Point, v float64) {
	if s.kind == Counter {
		p.V += v
	} else {
		p.V = v
	}
}

// coarsen doubles the window and re-buckets in place, halving (or better)
// the point count while keeping the full time range. Counters sum across
// merged buckets; gauges keep the later value.
func (s *Series) coarsen() {
	s.window *= 2
	out := s.points[:0]
	for _, p := range s.points {
		w := p.T - p.T%s.window
		if n := len(out); n > 0 && out[n-1].T == w {
			if s.kind == Counter {
				out[n-1].V += p.V
			} else {
				out[n-1].V = p.V
			}
			continue
		}
		out = append(out, Point{T: w, V: p.V})
	}
	s.points = out
}

// Sampler is a set of series sharing a window/capacity budget and a base
// label set. The zero-cost disabled form is the nil pointer.
type Sampler struct {
	mu     sync.Mutex
	window int64
	cap    int
	base   []Label
	order  []string
	series map[string]*Series
}

// New returns a sampler whose series start at windowPs-wide buckets
// (DefaultWindowPs when <= 0) and coarsen past capacity points
// (DefaultCapacity when <= 0). kv is an alternating key/value list of
// base labels stamped on every series — the sweep engine uses it to tag
// each per-episode sampler with its grid point so merged series never
// collide across episodes.
func New(windowPs int64, capacity int, kv ...string) *Sampler {
	if windowPs <= 0 {
		windowPs = DefaultWindowPs
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Sampler{
		window: windowPs,
		cap:    capacity,
		base:   parseLabels(kv),
		series: make(map[string]*Series),
	}
}

// WindowPs returns the initial bucket width, for deriving per-episode
// samplers with the same resolution. Nil-safe.
func (s *Sampler) WindowPs() int64 {
	if s == nil {
		return DefaultWindowPs
	}
	return s.window
}

// Capacity returns the per-series point bound. Nil-safe.
func (s *Sampler) Capacity() int {
	if s == nil {
		return DefaultCapacity
	}
	return s.cap
}

// Gauge returns (creating on first use) the last-value-per-window series
// under name and labels. A nil sampler returns a nil (no-op) series.
func (s *Sampler) Gauge(name string, kv ...string) *Series {
	return s.lookup(name, Gauge, kv)
}

// Counter returns (creating on first use) the sum-per-window series under
// name and labels. A nil sampler returns a nil (no-op) series.
func (s *Sampler) Counter(name string, kv ...string) *Series {
	return s.lookup(name, Counter, kv)
}

func (s *Sampler) lookup(name string, kind Kind, kv []string) *Series {
	if s == nil {
		return nil
	}
	labels := mergeLabels(s.base, parseLabels(kv))
	key := seriesKey(name, labels)
	s.mu.Lock()
	defer s.mu.Unlock()
	if sr, ok := s.series[key]; ok {
		if sr.kind != kind {
			panic(fmt.Sprintf("timeseries: %s redeclared as %v (was %v)", key, kind, sr.kind))
		}
		return sr
	}
	sr := &Series{name: name, labels: labels, kind: kind, window: s.window, cap: s.cap}
	s.series[key] = sr
	s.order = append(s.order, key)
	return sr
}

// Merge folds every series of other into s, preserving other's
// registration order. Disjoint keys (the common case: per-episode series
// carry a distinguishing base label) deep-copy; shared keys append with
// same-window folding. Call in episode index order for deterministic
// output. Nil receiver or argument is a no-op.
func (s *Sampler) Merge(other *Sampler) {
	if s == nil || other == nil {
		return
	}
	other.mu.Lock()
	type frozen struct {
		key    string
		name   string
		labels []Label
		kind   Kind
		window int64
		cap    int
		points []Point
	}
	src := make([]frozen, 0, len(other.order))
	for _, key := range other.order {
		sr := other.series[key]
		sr.mu.Lock()
		src = append(src, frozen{
			key:    key,
			name:   sr.name,
			labels: append([]Label(nil), sr.labels...),
			kind:   sr.kind,
			window: sr.window,
			cap:    sr.cap,
			points: append([]Point(nil), sr.points...),
		})
		sr.mu.Unlock()
	}
	other.mu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range src {
		dst, ok := s.series[f.key]
		if !ok {
			dst = &Series{name: f.name, labels: f.labels, kind: f.kind, window: f.window, cap: f.cap}
			dst.points = f.points
			s.series[f.key] = dst
			s.order = append(s.order, f.key)
			continue
		}
		dst.mu.Lock()
		for _, p := range f.points {
			if n := len(dst.points); n > 0 && p.T <= dst.points[n-1].T {
				dst.fold(&dst.points[n-1], p.V)
				continue
			}
			dst.points = append(dst.points, p)
		}
		for len(dst.points) > dst.cap {
			dst.coarsen()
		}
		dst.mu.Unlock()
	}
}

// SeriesSnapshot is the exported state of one series.
type SeriesSnapshot struct {
	Name     string            `json:"name"`
	Labels   map[string]string `json:"labels,omitempty"`
	Kind     string            `json:"kind"`
	WindowPs int64             `json:"window_ps"`
	Points   []Point           `json:"points"`
}

// Final returns the newest point, if any.
func (s SeriesSnapshot) Final() (Point, bool) {
	if len(s.Points) == 0 {
		return Point{}, false
	}
	return s.Points[len(s.Points)-1], true
}

// Max returns the maximum value over the series, if any.
func (s SeriesSnapshot) Max() (Point, bool) {
	if len(s.Points) == 0 {
		return Point{}, false
	}
	best := s.Points[0]
	for _, p := range s.Points[1:] {
		if p.V > best.V || math.IsNaN(best.V) {
			best = p
		}
	}
	return best, true
}

// Values returns the point values in time order (for sparklines).
func (s SeriesSnapshot) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Snapshot is the exported state of a whole sampler, in series
// registration order (merge order for a merged sampler, hence episode
// index order after a sweep).
type Snapshot struct {
	Series []SeriesSnapshot `json:"series"`
}

// Find returns every series named name, in order.
func (s Snapshot) Find(name string) []SeriesSnapshot {
	var out []SeriesSnapshot
	for _, sr := range s.Series {
		if sr.Name == name {
			out = append(out, sr)
		}
	}
	return out
}

// Snapshot deep-copies the sampler's state. Safe to call while episodes
// are still recording (the live /timeseries.json endpoint does). A nil
// sampler yields an empty snapshot.
func (s *Sampler) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{Series: []SeriesSnapshot{}}
	}
	s.mu.Lock()
	order := append([]string(nil), s.order...)
	list := make([]*Series, len(order))
	for i, key := range order {
		list[i] = s.series[key]
	}
	s.mu.Unlock()

	snap := Snapshot{Series: make([]SeriesSnapshot, 0, len(list))}
	for _, sr := range list {
		sr.mu.Lock()
		ss := SeriesSnapshot{
			Name:     sr.name,
			Kind:     sr.kind.String(),
			WindowPs: sr.window,
			Points:   append([]Point(nil), sr.points...),
		}
		if len(sr.labels) > 0 {
			ss.Labels = make(map[string]string, len(sr.labels))
			for _, l := range sr.labels {
				ss.Labels[l.Key] = l.Value
			}
		}
		sr.mu.Unlock()
		snap.Series = append(snap.Series, ss)
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON with a trailing newline.
// Output is deterministic: series in registration/merge order, points in
// time order, label maps marshalled with sorted keys (encoding/json's
// map behaviour).
func (s *Sampler) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// parseLabels converts an alternating key/value list into labels.
func parseLabels(kv []string) []Label {
	if len(kv)%2 != 0 {
		panic("timeseries: odd label key/value list")
	}
	labels := make([]Label, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		labels = append(labels, Label{Key: kv[i], Value: kv[i+1]})
	}
	return labels
}

// mergeLabels joins base and extra labels, sorted by key (later values
// win on duplicate keys so per-series labels can override sampler base
// labels).
func mergeLabels(base, extra []Label) []Label {
	merged := make([]Label, 0, len(base)+len(extra))
	merged = append(merged, base...)
	for _, e := range extra {
		replaced := false
		for i := range merged {
			if merged[i].Key == e.Key {
				merged[i].Value = e.Value
				replaced = true
				break
			}
		}
		if !replaced {
			merged = append(merged, e)
		}
	}
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Key < merged[j].Key })
	return merged
}

// seriesKey builds the canonical map key: name{k1=v1,k2=v2} with labels
// already sorted by mergeLabels.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}
