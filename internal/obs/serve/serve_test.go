package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/timeseries"
)

func testServer() (*Server, *obs.Registry, *timeseries.Sampler) {
	reg := obs.NewRegistry()
	reg.Counter("horus_drain_blocks_total", "scheme", "Horus-SLM").Add(42)
	reg.Gauge("horus_sweep_done").Set(3)
	ts := timeseries.New(100, 0)
	ts.Gauge("horus_ts_energy_j", "scheme", "Horus-SLM").Record(1000, 13.7)
	return New(reg, ts), reg, ts
}

func TestHealthz(t *testing.T) {
	s, _, _ := testServer()
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != http.StatusOK || rr.Body.String() != "ok\n" {
		t.Fatalf("healthz = %d %q", rr.Code, rr.Body.String())
	}
}

func TestMetricsExposition(t *testing.T) {
	s, _, _ := testServer()
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body := rr.Body.String()
	for _, want := range []string{
		"# TYPE horus_drain_blocks_total counter",
		`horus_drain_blocks_total{scheme="Horus-SLM"} 42`,
		"horus_sweep_done 3",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestTimeseriesJSON(t *testing.T) {
	s, _, _ := testServer()
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/timeseries.json", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var snap timeseries.Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	series := snap.Find("horus_ts_energy_j")
	if len(series) != 1 || len(series[0].Points) != 1 || series[0].Points[0].V != 13.7 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestNilSourcesServeEmptyDocuments(t *testing.T) {
	s := New(nil, nil)
	for path, wantBody := range map[string]string{
		"/metrics":         "",
		"/timeseries.json": `"series": []`,
	} {
		rr := httptest.NewRecorder()
		s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("%s status = %d", path, rr.Code)
		}
		if wantBody != "" && !strings.Contains(rr.Body.String(), wantBody) {
			t.Fatalf("%s body = %q", path, rr.Body.String())
		}
	}
}

// TestProgressSSE covers the CI smoke contract: a subscriber receives a
// streamed event, and a *late* subscriber still receives the retained one.
func TestProgressSSE(t *testing.T) {
	s, _, _ := testServer()
	addr, err := s.Start("localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Subscribe first, then publish.
	resp, err := http.Get("http://" + addr + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	go func() {
		// Give the subscriber a beat to register, then publish.
		time.Sleep(50 * time.Millisecond)
		s.Progress(ProgressEvent{Done: 7, Total: 15, Label: "llc=8MB/Horus-SLM", EpsPerSec: 1.5})
	}()
	ev, err := readSSEEvent(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Done != 7 || ev.Total != 15 || ev.Label != "llc=8MB/Horus-SLM" {
		t.Fatalf("event = %+v", ev)
	}

	// Late subscriber: the event already happened; replay must deliver it.
	resp2, err := http.Get("http://" + addr + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	ev2, err := readSSEEvent(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ev2.Done != 7 {
		t.Fatalf("late event = %+v", ev2)
	}
}

// readSSEEvent scans the stream for the first data: line and decodes it.
func readSSEEvent(r io.Reader) (ProgressEvent, error) {
	var ev ProgressEvent
	sc := bufio.NewScanner(r)
	deadline := time.Now().Add(5 * time.Second)
	for sc.Scan() {
		if time.Now().After(deadline) {
			break
		}
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") {
			return ev, json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev)
		}
	}
	if err := sc.Err(); err != nil {
		return ev, err
	}
	return ev, io.ErrUnexpectedEOF
}

func TestIndexAndNotFound(t *testing.T) {
	s, _, _ := testServer()
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), "/metrics") {
		t.Fatalf("index = %d %q", rr.Code, rr.Body.String())
	}
	rr = httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/nope", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("unknown path status = %d", rr.Code)
	}
}
