// Package serve is the live monitoring endpoint of the simulator: a tiny
// stdlib-only HTTP server that exposes the obs registry as a Prometheus
// scrape target (/metrics), the windowed sim-time series as JSON
// (/timeseries.json), sweep progress as a Server-Sent-Events stream
// (/progress), and a /healthz liveness probe. Every CLI mounts it behind
// the shared -serve flag.
//
// The server only reads: registry and sampler snapshots are deep copies
// taken under their own locks, so scraping during a live sweep cannot
// perturb simulated results (the determinism suites pin this).
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/timeseries"
)

// ProgressEvent is the wire form of one sweep progress update (mirrors
// sweep.ProgressEvent without importing it, so serve stays a leaf of the
// obs layer).
type ProgressEvent struct {
	Done      int     `json:"done"`
	Total     int     `json:"total"`
	Index     int     `json:"index"`
	Label     string  `json:"label"`
	Error     string  `json:"error,omitempty"`
	ElapsedMs float64 `json:"elapsed_ms"`
	EpsPerSec float64 `json:"eps_per_sec"`
	EtaMs     float64 `json:"eta_ms"`
}

// Server is the monitoring HTTP server. The zero value is not used;
// construct with New.
type Server struct {
	reg *obs.Registry
	ts  *timeseries.Sampler
	hub *hub

	mux *http.ServeMux
	srv *http.Server

	mu sync.Mutex
	ln net.Listener
}

// New returns a server over the given (possibly nil) registry and
// sampler. Nil sources serve empty-but-well-formed documents.
func New(reg *obs.Registry, ts *timeseries.Sampler) *Server {
	s := &Server{reg: reg, ts: ts, hub: newHub()}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/timeseries.json", s.handleTimeseries)
	mux.HandleFunc("/progress", s.handleProgress)
	s.mux = mux
	return s
}

// Handler exposes the route table (httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (e.g. "localhost:0", ":9137") and serves in a
// background goroutine. It returns the bound address, which is the way to
// learn the port when addr requested :0.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	s.mu.Unlock()
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener and disconnects any /progress subscribers.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.mu.Unlock()
	s.hub.close()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// Progress publishes one progress event to every /progress subscriber
// (and retains it for late subscribers). Safe from any goroutine.
func (s *Server) Progress(ev ProgressEvent) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	s.hub.publish(data)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, `horus monitoring server
  /metrics          Prometheus text exposition of the live registry
  /timeseries.json  windowed sim-time series (energy, queue depth, drain rate)
  /progress         Server-Sent-Events stream of sweep progress
  /healthz          liveness probe
`)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w) // nil registry writes nothing: empty exposition is valid
}

func (s *Server) handleTimeseries(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.ts.WriteJSON(w)
}

// handleProgress streams SSE. The retained last event is replayed on
// subscribe so a scraper that connects after the sweep finished still
// observes one event.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	ch, last, cancel := s.hub.subscribe()
	defer cancel()
	if last != nil {
		writeSSE(w, last)
		fl.Flush()
	} else {
		// Nothing has happened yet: emit a comment so the client sees
		// bytes immediately (curl-friendliness, proxy keep-alive).
		io.WriteString(w, ": waiting for progress\n\n")
		fl.Flush()
	}
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			io.WriteString(w, ": heartbeat\n\n")
			fl.Flush()
		case data, ok := <-ch:
			if !ok {
				return
			}
			writeSSE(w, data)
			fl.Flush()
		}
	}
}

func writeSSE(w io.Writer, data []byte) {
	fmt.Fprintf(w, "event: progress\ndata: %s\n\n", data)
}

// hub fans progress events out to SSE subscribers, retaining the newest
// event for replay to late subscribers.
type hub struct {
	mu     sync.Mutex
	last   []byte
	subs   map[chan []byte]struct{}
	closed bool
}

func newHub() *hub {
	return &hub{subs: make(map[chan []byte]struct{})}
}

func (h *hub) publish(data []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.last = data
	for ch := range h.subs {
		select {
		case ch <- data:
		default:
			// Slow subscriber: drop this event rather than block the
			// sweep's progress callback.
		}
	}
}

func (h *hub) subscribe() (<-chan []byte, []byte, func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch := make(chan []byte, 16)
	last := h.last
	if h.closed {
		close(ch)
		return ch, last, func() {}
	}
	h.subs[ch] = struct{}{}
	cancel := func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
		}
	}
	return ch, last, cancel
}

func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}
