package obs

import (
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestConcurrentScrapeWhileWriting hammers every mutation path of a
// registry (counters, gauges, histograms, spans, whole-registry merges)
// against concurrent Prometheus exports and JSON snapshots, the exact
// interleaving the live -serve /metrics endpoint produces during a sweep.
// Run under -race this is the regression test for the span-tree and merge
// data races.
func TestConcurrentScrapeWhileWriting(t *testing.T) {
	r := NewRegistry()
	const (
		writers = 4
		iters   = 400
	)
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := fmt.Sprintf("w%d", w)
			c := r.Counter("hammer_events_total", "worker", lbl)
			g := r.Gauge("hammer_depth", "worker", lbl)
			h := r.Histogram("hammer_latency_ps", LatencyBuckets, "worker", lbl)
			for i := 0; i < iters; i++ {
				c.Add(1)
				g.Set(float64(i))
				h.Observe(float64(i * 100))
				sp := r.StartSpan("phase", int64(i))
				child := r.StartSpan("inner", int64(i))
				child.EndAt(int64(i + 1))
				sp.EndAt(int64(i + 2))

				// Merge a small episode registry in, like the sweep
				// engine does when an episode completes.
				ep := NewRegistry()
				ep.Counter("hammer_merged_total", "worker", lbl).Add(1)
				eps := ep.StartSpan("episode", 0)
				eps.EndAt(10)
				r.Merge(ep)
			}
		}(w)
	}

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				r.Snapshot()
				r.WalkSpans(func(string, *Span) {})
			}
		}()
	}

	wg.Wait()
	close(stop)
	scrapers.Wait()

	if got := r.Counter("hammer_merged_total", "worker", "w0").Value(); got != iters {
		t.Fatalf("merged counter = %d, want %d", got, iters)
	}
	// Every span must have survived with consistent timestamps.
	count := 0
	r.WalkSpans(func(path string, s *Span) {
		count++
		if s.End < s.Start {
			t.Fatalf("span %s ends before it starts: %d < %d", path, s.End, s.Start)
		}
	})
	if want := writers * iters * 3; count != want {
		t.Fatalf("span count = %d, want %d", count, want)
	}
}

// TestEndAtAfterScrapeCloneIsInert: spans returned by Spans are detached
// copies; ending them must not touch the registry.
func TestEndAtAfterScrapeCloneIsInert(t *testing.T) {
	r := NewRegistry()
	live := r.StartSpan("phase", 0)
	clone := r.Spans()[0]
	clone.EndAt(99) // must not panic or close the live span
	live.EndAt(5)
	if got := r.Spans()[0].End; got != 5 {
		t.Fatalf("live span end = %d, want 5", got)
	}
}
