package obs

import (
	"strings"
	"testing"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	// Every method must be callable on nil without panicking.
	r.SetHelp("x", "y")
	r.Counter("c").Add(1)
	if got := r.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	r.Gauge("g").Set(3)
	r.Gauge("g").Add(1)
	if got := r.Gauge("g").Value(); got != 0 {
		t.Fatalf("nil gauge value = %g", got)
	}
	h := r.Histogram("h", LatencyBuckets)
	h.Observe(5)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram recorded something")
	}
	sp := r.StartSpan("run", 0)
	sp.EndAt(10)
	if d := sp.Duration(); d != 0 {
		t.Fatalf("nil span duration = %d", d)
	}
	if spans := r.Spans(); spans != nil {
		t.Fatalf("nil registry spans = %v", spans)
	}
	r.Merge(NewRegistry())
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil WritePrometheus = %q, %v", sb.String(), err)
	}
}

func TestCounterAndGaugeSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("reads", "category", "data").Add(3)
	r.Counter("reads", "category", "data").Add(2)
	r.Counter("reads", "category", "tree").Add(7)
	if got := r.Counter("reads", "category", "data").Value(); got != 5 {
		t.Fatalf("data counter = %d, want 5", got)
	}
	if got := r.Counter("reads", "category", "tree").Value(); got != 7 {
		t.Fatalf("tree counter = %d, want 7", got)
	}
	// Label order must not matter for series identity.
	r.Counter("multi", "a", "1", "b", "2").Add(1)
	r.Counter("multi", "b", "2", "a", "1").Add(1)
	if got := r.Counter("multi", "a", "1", "b", "2").Value(); got != 2 {
		t.Fatalf("label order changed identity: %d, want 2", got)
	}
	g := r.Gauge("util")
	g.Set(0.5)
	g.Add(0.25)
	if got := g.Value(); got != 0.75 {
		t.Fatalf("gauge = %g, want 0.75", got)
	}
}

func TestKindMismatchReturnsNil(t *testing.T) {
	r := NewRegistry()
	r.Counter("m").Add(1)
	if g := r.Gauge("m"); g != nil {
		t.Fatal("gauge over existing counter name should be nil")
	}
	if h := r.Histogram("m", nil); h != nil {
		t.Fatal("histogram over existing counter name should be nil")
	}
	// And the nil results must be safe to use.
	r.Gauge("m").Set(1)
	r.Histogram("m", nil).Observe(1)
}

func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("c").Add(2)
	b.Counter("c").Add(3)
	b.Counter("only-b").Add(1)
	a.Gauge("g").Set(1)
	b.Gauge("g").Set(9)
	ha := a.Histogram("h", []float64{1, 2})
	hb := b.Histogram("h", []float64{1, 2})
	ha.Observe(0.5)
	hb.Observe(1.5)
	b.RecordSpan("drain", 0, 42)

	a.Merge(b)
	if got := a.Counter("c").Value(); got != 5 {
		t.Fatalf("merged counter = %d, want 5", got)
	}
	if got := a.Counter("only-b").Value(); got != 1 {
		t.Fatalf("merged new counter = %d, want 1", got)
	}
	if got := a.Gauge("g").Value(); got != 9 {
		t.Fatalf("merged gauge = %g, want 9 (other wins)", got)
	}
	if got := a.Histogram("h", nil).Count(); got != 2 {
		t.Fatalf("merged histogram count = %d, want 2", got)
	}
	spans := a.Spans()
	if len(spans) != 1 || spans[0].Name != "drain" || spans[0].Duration() != 42 {
		t.Fatalf("merged spans = %+v", spans)
	}
}
