package obs

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	// Bounds are inclusive upper bounds; above the last bound goes to +Inf.
	for _, c := range []struct {
		v      float64
		bucket int
	}{
		{5, 0}, {10, 0}, // at the bound -> the bound's bucket
		{10.1, 1}, {20, 1},
		{25, 2}, {30, 2},
		{31, 3}, {1e9, 3}, // overflow bucket
	} {
		h2 := NewHistogram([]float64{10, 20, 30})
		h2.Observe(c.v)
		counts := h2.Counts()
		if counts[c.bucket] != 1 {
			t.Fatalf("Observe(%g): counts = %v, want bucket %d", c.v, counts, c.bucket)
		}
	}
	h.Observe(5)
	h.Observe(15)
	h.Observe(100)
	if got := h.Count(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	if got := h.Sum(); got != 120 {
		t.Fatalf("sum = %g, want 120", got)
	}
	if h.Min() != 5 || h.Max() != 100 {
		t.Fatalf("min/max = %g/%g, want 5/100", h.Min(), h.Max())
	}
}

func TestHistogramAscendingBoundsEnforced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(LinearBuckets(10, 10, 10)) // 10, 20, ... 100
	for v := 1.0; v <= 100; v++ {
		h.Observe(v)
	}
	// With a uniform 1..100 population the quantile estimate should land
	// within one bucket width of the exact value.
	for _, c := range []struct{ q, want float64 }{
		{0.0, 1}, {0.5, 50}, {0.9, 90}, {1.0, 100},
	} {
		got := h.Quantile(c.q)
		if math.Abs(got-c.want) > 10 {
			t.Errorf("Quantile(%g) = %g, want %g +- 10", c.q, got, c.want)
		}
	}
	// Clamped to observed extremes, never bucket edges beyond them.
	if got := h.Quantile(1); got > h.Max() {
		t.Errorf("Quantile(1) = %g > max %g", got, h.Max())
	}
	if got := h.Quantile(0); got < h.Min() {
		t.Errorf("Quantile(0) = %g < min %g", got, h.Min())
	}
	if !math.IsNaN(h.Quantile(1.5)) || !math.IsNaN(h.Quantile(-0.1)) {
		t.Error("out-of-range quantile should be NaN")
	}
	empty := NewHistogram(nil)
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	// All mass in the +Inf bucket: quantiles must interpolate min..max,
	// never return infinity.
	h := NewHistogram([]float64{1})
	h.Observe(50)
	h.Observe(150)
	for _, q := range []float64{0, 0.5, 1} {
		got := h.Quantile(q)
		if math.IsInf(got, 0) || got < 50 || got > 150 {
			t.Fatalf("Quantile(%g) = %g, want within [50, 150]", q, got)
		}
	}
}

func TestHistogramMergeBoundsMismatch(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 3})
	if err := a.Merge(b); err == nil {
		t.Fatal("merge with different bounds should error")
	}
	c := NewHistogram([]float64{1})
	if err := a.Merge(c); err == nil {
		t.Fatal("merge with different bound count should error")
	}
	if a.Merge(a) == nil {
		t.Fatal("self-merge should error")
	}
}

// obsSample is a quick-checkable batch of observations.
type obsSample []uint16

func histOf(s obsSample) *Histogram {
	h := NewHistogram(ExpBuckets(1, 4, 8))
	for _, v := range s {
		h.Observe(float64(v))
	}
	return h
}

func histEqual(a, b *Histogram) bool {
	ac, bc := a.Counts(), b.Counts()
	if len(ac) != len(bc) {
		return false
	}
	for i := range ac {
		if ac[i] != bc[i] {
			return false
		}
	}
	return a.Count() == b.Count() && a.Sum() == b.Sum() &&
		a.Min() == b.Min() && a.Max() == b.Max()
}

// TestHistogramMergeAssociativeAndCommutative property-checks the algebra
// bank-parallel recovery relies on: merging per-chain histograms must give
// the same result regardless of merge order or grouping.
func TestHistogramMergeAssociativeAndCommutative(t *testing.T) {
	assoc := func(x, y, z obsSample) bool {
		// (x+y)+z
		l := histOf(x)
		ly := histOf(y)
		if err := l.Merge(ly); err != nil {
			return false
		}
		if err := l.Merge(histOf(z)); err != nil {
			return false
		}
		// x+(y+z)
		r1 := histOf(y)
		if err := r1.Merge(histOf(z)); err != nil {
			return false
		}
		r := histOf(x)
		if err := r.Merge(r1); err != nil {
			return false
		}
		return histEqual(l, r)
	}
	if err := quick.Check(assoc, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("merge not associative: %v", err)
	}
	comm := func(x, y obsSample) bool {
		a := histOf(x)
		if err := a.Merge(histOf(y)); err != nil {
			return false
		}
		b := histOf(y)
		if err := b.Merge(histOf(x)); err != nil {
			return false
		}
		return histEqual(a, b)
	}
	if err := quick.Check(comm, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("merge not commutative: %v", err)
	}
	identity := func(x obsSample) bool {
		a := histOf(x)
		if err := a.Merge(histOf(nil)); err != nil {
			return false
		}
		return histEqual(a, histOf(x))
	}
	if err := quick.Check(identity, &quick.Config{MaxCount: 100}); err != nil {
		t.Errorf("empty histogram is not a merge identity: %v", err)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if len(lin) != 3 || lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExpBuckets(2, 3, 3)
	if len(exp) != 3 || exp[0] != 2 || exp[1] != 6 || exp[2] != 18 {
		t.Fatalf("ExpBuckets = %v", exp)
	}
	// The shared default bucket sets must be valid histogram bounds.
	NewHistogram(LatencyBuckets)
	NewHistogram(UtilizationBuckets)
	NewHistogram(DepthBuckets)
}
