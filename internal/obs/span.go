package obs

// Span is one phase of the simulated lifecycle (run, crash, drain, recover,
// verify, ...) with simulated start and end timestamps in picoseconds.
// Spans nest: a span started while another is open becomes its child, so a
// full episode renders as a tree. Each phase runs on its own sim clock
// (statistics are reset at phase entry), so timestamps are phase-local and
// the tree is primarily a duration breakdown, not a global timeline.
type Span struct {
	Name     string
	Start    int64 // phase-local sim time, ps
	End      int64 // phase-local sim time, ps
	Children []*Span

	reg  *Registry
	open bool
}

// StartSpan opens a span at the given simulated time. It nests under the
// innermost open span, or becomes a new root. A nil registry returns a nil
// span whose methods are no-ops.
func (r *Registry) StartSpan(name string, at int64) *Span {
	if r == nil {
		return nil
	}
	s := &Span{Name: name, Start: at, End: at, reg: r, open: true}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.open); n > 0 {
		parent := r.open[n-1]
		parent.Children = append(parent.Children, s)
	} else {
		r.roots = append(r.roots, s)
	}
	r.open = append(r.open, s)
	return s
}

// RecordSpan records an already-finished span (start and end known), nested
// under the innermost open span. Useful for zero-length markers ("crash")
// and for phases timed externally.
func (r *Registry) RecordSpan(name string, start, end int64) *Span {
	s := r.StartSpan(name, start)
	s.EndAt(end)
	return s
}

// EndAt closes the span at the given simulated time. Any children still
// open are closed at the same instant (spans may not outlive their parent).
// No-op on a nil or already-closed span.
func (s *Span) EndAt(at int64) {
	if s == nil || s.reg == nil {
		return
	}
	r := s.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	if !s.open {
		return
	}
	idx := -1
	for i := len(r.open) - 1; i >= 0; i-- {
		if r.open[i] == s {
			idx = i
			break
		}
	}
	if idx < 0 {
		// Not on the stack (already popped by a parent's EndAt).
		s.closeAt(at)
		return
	}
	// Pop the stack down to (and including) s, closing abandoned children.
	for i := len(r.open) - 1; i >= idx; i-- {
		r.open[i].closeAt(at)
	}
	r.open = r.open[:idx]
}

// closeAt marks the span finished; callers hold the registry lock.
func (s *Span) closeAt(at int64) {
	if !s.open {
		return
	}
	s.open = false
	if at > s.End {
		s.End = at
	}
	if s.End < s.Start {
		s.End = s.Start
	}
}

// Duration returns End-Start in picoseconds (zero on nil).
func (s *Span) Duration() int64 {
	if s == nil {
		return 0
	}
	return s.End - s.Start
}

// Spans returns a deep copy of the root spans recorded so far (nil on a
// nil registry). Open spans are included with their latest state. The copy
// makes concurrent exporting safe: a live /metrics scrape can walk the
// tree while an episode is still opening and closing spans.
func (r *Registry) Spans() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.roots) == 0 {
		return nil
	}
	out := make([]*Span, len(r.roots))
	for i, s := range r.roots {
		out[i] = cloneSpan(s, nil)
	}
	return out
}

// cloneSpan deep-copies a subtree; callers hold the source registry lock.
// Clones are detached (no registry, closed), so span methods on them are
// inert reads.
func cloneSpan(s *Span, reg *Registry) *Span {
	c := &Span{Name: s.Name, Start: s.Start, End: s.End, reg: reg}
	if len(s.Children) > 0 {
		c.Children = make([]*Span, len(s.Children))
		for i, ch := range s.Children {
			c.Children[i] = cloneSpan(ch, reg)
		}
	}
	return c
}

// WalkSpans visits every span depth-first with its slash-joined path
// (e.g. "drain/flush-blocks"). No-op on nil.
func (r *Registry) WalkSpans(visit func(path string, s *Span)) {
	for _, root := range r.Spans() {
		walkSpan(root.Name, root, visit)
	}
}

func walkSpan(path string, s *Span, visit func(string, *Span)) {
	visit(path, s)
	for _, c := range s.Children {
		walkSpan(path+"/"+c.Name, c, visit)
	}
}
