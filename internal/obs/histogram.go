package obs

import (
	"fmt"
	"math"
	"sync"
)

// Histogram is a fixed-bucket histogram over float64 observations with an
// implicit +Inf overflow bucket, tracking sum, count, min and max for
// quantile estimation. Observations are typically simulated durations in
// picoseconds, utilisation fractions, or queue depths.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds (inclusive), sorted ascending
	counts []int64   // len(bounds)+1; last is the +Inf bucket
	count  int64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram returns a histogram with the given bucket upper bounds
// (sorted ascending; a copy is taken). Nil or empty bounds yield a
// single +Inf bucket, which still tracks count/sum/min/max.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly ascending at %d (%g <= %g)", i, b[i], b[i-1]))
		}
	}
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counts[h.bucketOf(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// bucketOf returns the index of the bucket v falls into (bounds are
// inclusive upper bounds; the last index is +Inf).
func (h *Histogram) bucketOf(v float64) int {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the number of observations (zero on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations (zero on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean (zero with no observations).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation (zero with no observations).
func (h *Histogram) Min() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation (zero with no observations).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Bounds returns a copy of the bucket upper bounds (nil on nil).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.bounds...)
}

// Counts returns a copy of the per-bucket counts, the last entry being the
// +Inf bucket (nil on nil).
func (h *Histogram) Counts() []int64 {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]int64(nil), h.counts...)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the bucket holding the target rank, clamped to the observed
// [min, max] range so the +Inf bucket never yields infinity. Returns zero
// with no observations, or NaN for q outside [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next < rank {
			cum = next
			continue
		}
		// The target rank lands in bucket i: interpolate across it.
		lo := h.min
		if i > 0 {
			lo = math.Max(h.min, h.bounds[i-1])
		}
		hi := h.max
		if i < len(h.bounds) {
			hi = math.Min(h.max, h.bounds[i])
		}
		if hi < lo {
			hi = lo
		}
		frac := (rank - cum) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.max
}

// Merge adds other's observations into h. The bucket bounds must match
// exactly; otherwise an error is returned and h is unchanged. Merge is
// commutative and associative over histograms with equal bounds, which is
// what lets bank-parallel recovery chains each record into a private
// histogram and fold the results. Nil receiver or nil other are no-ops.
func (h *Histogram) Merge(other *Histogram) error {
	if h == nil || other == nil {
		return nil
	}
	if h == other {
		return fmt.Errorf("obs: histogram cannot merge with itself")
	}
	other.mu.Lock()
	ob := append([]float64(nil), other.bounds...)
	oc := append([]int64(nil), other.counts...)
	ocount, osum, omin, omax := other.count, other.sum, other.min, other.max
	other.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	if len(ob) != len(h.bounds) {
		return fmt.Errorf("obs: histogram bound count mismatch (%d vs %d)", len(h.bounds), len(ob))
	}
	for i := range ob {
		if ob[i] != h.bounds[i] {
			return fmt.Errorf("obs: histogram bound %d mismatch (%g vs %g)", i, h.bounds[i], ob[i])
		}
	}
	if ocount == 0 {
		return nil
	}
	for i := range oc {
		h.counts[i] += oc[i]
	}
	if h.count == 0 || omin < h.min {
		h.min = omin
	}
	if h.count == 0 || omax > h.max {
		h.max = omax
	}
	h.count += ocount
	h.sum += osum
	return nil
}

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n <= 0 || width <= 0 {
		panic("obs: LinearBuckets needs n > 0 and width > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n upper bounds start, start*factor, start*factor^2...
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic("obs: ExpBuckets needs n > 0, start > 0 and factor > 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Default bucket sets for the simulator's three histogram families.
var (
	// LatencyBuckets covers simulated durations in picoseconds from 1 ns
	// to ~1 s in powers of four (wait times, access latencies).
	LatencyBuckets = ExpBuckets(1e3, 4, 16)
	// UtilizationBuckets covers busy fractions 0..1 in 5% steps.
	UtilizationBuckets = LinearBuckets(0.05, 0.05, 19)
	// DepthBuckets covers queue depths in powers of two.
	DepthBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}
	// CountBuckets covers event counts (blocks scanned before a detection
	// fired, trials run) from 1 to 32768 in powers of two.
	CountBuckets = ExpBuckets(1, 2, 16)
)
