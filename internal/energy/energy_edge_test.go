package energy

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// TestTechByNameAliasesAndFolding pins the full alias surface: every
// accepted spelling of both technologies, case-folded both ways, and the
// rejections (wrong length, non-letter mismatch, empty).
func TestTechByNameAliasesAndFolding(t *testing.T) {
	accept := map[string]string{
		"supercap": SuperCap.Name, "SUPERCAP": SuperCap.Name, "SuPeRcAp": SuperCap.Name,
		"li-thin": LiThin.Name, "LI-THIN": LiThin.Name,
		"lithin": LiThin.Name, "LiThin": LiThin.Name,
		"li": LiThin.Name, "LI": LiThin.Name,
	}
	for name, want := range accept {
		if tech, ok := TechByName(name); !ok || tech.Name != want {
			t.Errorf("TechByName(%q) = (%v, %v), want %s", name, tech.Name, ok, want)
		}
	}
	for _, name := range []string{"", "super", "supercapacitor", "li_thin", "l1-thin", "plutonium"} {
		if _, ok := TechByName(name); ok {
			t.Errorf("TechByName(%q) accepted", name)
		}
	}
}

// TestEqualFold exercises the fold branches directly: the public entry
// points only ever pass lowercase reference strings, so the second
// argument's uppercase branch is reachable only here.
func TestEqualFold(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"", "", true},
		{"abc", "ABC", true},
		{"ABC", "abc", true},
		{"a-b", "A-B", true},
		{"abc", "abd", false},
		{"abc", "ab", false},
		{"a-b", "a_b", false},
	}
	for _, tc := range cases {
		if got := equalFold(tc.a, tc.b); got != tc.want {
			t.Errorf("equalFold(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestVolumeBudgetRoundTrip checks Volume and BudgetJoules are exact
// inverses for both technologies across magnitudes.
func TestVolumeBudgetRoundTrip(t *testing.T) {
	for _, tech := range []Tech{SuperCap, LiThin} {
		for _, joules := range []float64{1e-9, 1e-3, 1, 250, 1e6} {
			got := BudgetJoules(Volume(joules, tech), tech)
			if math.Abs(got-joules) > joules*1e-12 {
				t.Errorf("%s: BudgetJoules(Volume(%g)) = %g", tech.Name, joules, got)
			}
		}
	}
}

// TestDrainDeadlineEdges pins the degenerate inputs: non-positive budget
// or power affords no drain time at all.
func TestDrainDeadlineEdges(t *testing.T) {
	p := DefaultParams()
	if d := DrainDeadline(p, 0); d != 0 {
		t.Errorf("zero budget: deadline %v, want 0", d)
	}
	if d := DrainDeadline(p, -1); d != 0 {
		t.Errorf("negative budget: deadline %v, want 0", d)
	}
	if d := DrainDeadline(Params{}, 1); d != 0 {
		t.Errorf("zero power: deadline %v, want 0", d)
	}
	// 1 J at 100 W affords exactly 10 ms.
	if d, want := DrainDeadline(p, 1), sim.Time(10*sim.Millisecond); d != want {
		t.Errorf("1 J at 100 W: deadline %v, want %v", d, want)
	}
}

// TestEstimateZero pins the empty episode: no time, no accesses, no energy.
func TestEstimateZero(t *testing.T) {
	if got := Estimate(DefaultParams(), 0, 0, 0).Total(); got != 0 {
		t.Errorf("empty episode estimated %g J, want 0", got)
	}
}
