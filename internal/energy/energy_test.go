package energy

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEstimateComposition(t *testing.T) {
	p := Params{ProcessorPowerWatts: 100, NVMWriteJoules: 500e-9, NVMReadJoules: 5e-9}
	b := Estimate(p, 100*sim.Millisecond, 1_000_000, 2_000_000)
	if !approx(b.ProcessorJ, 10, 1e-9) {
		t.Errorf("processor J = %v, want 10", b.ProcessorJ)
	}
	if !approx(b.NVMWriteJ, 0.5, 1e-9) {
		t.Errorf("write J = %v, want 0.5", b.NVMWriteJ)
	}
	if !approx(b.NVMReadJ, 0.01, 1e-9) {
		t.Errorf("read J = %v, want 0.01", b.NVMReadJ)
	}
	if !approx(b.Total(), 10.51, 1e-9) {
		t.Errorf("total = %v, want 10.51", b.Total())
	}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.NVMWriteJoules != 531.8e-9 || p.NVMReadJoules != 5.5e-9 {
		t.Error("NVM energies must match the paper (§V-G)")
	}
}

// Table III sanity: the paper's Base-LU total of 11.07 J must size to
// ~30.7 cm^3 of SuperCap and ~0.31 cm^3 of Li-thin.
func TestVolumeReproducesTableIII(t *testing.T) {
	if v := Volume(11.07, SuperCap); !approx(v, 30.75, 0.1) {
		t.Errorf("SuperCap volume for 11.07J = %.2f, want ~30.7 (Table III)", v)
	}
	if v := Volume(11.07, LiThin); !approx(v, 0.3075, 0.001) {
		t.Errorf("Li-thin volume for 11.07J = %.3f, want ~0.31 (Table III)", v)
	}
	if v := Volume(2.45, SuperCap); !approx(v, 6.8, 0.1) {
		t.Errorf("SuperCap volume for 2.45J = %.2f, want ~6.8 (Table III)", v)
	}
}

func TestVolumeScalesLinearly(t *testing.T) {
	if Volume(2, SuperCap) != 2*Volume(1, SuperCap) {
		t.Error("volume must scale linearly with energy")
	}
	if Volume(1, LiThin) >= Volume(1, SuperCap) {
		t.Error("denser technology must need less volume")
	}
}

func TestBudgetJoulesInvertsVolume(t *testing.T) {
	for _, tech := range []Tech{SuperCap, LiThin} {
		for _, j := range []float64{0.5, 13.7, 1000} {
			vol := Volume(j, tech)
			got := BudgetJoules(vol, tech)
			if diff := got - j; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%s: BudgetJoules(Volume(%v)) = %v", tech.Name, j, got)
			}
		}
	}
}

func TestTechByName(t *testing.T) {
	if tech, ok := TechByName("SuperCap"); !ok || tech.Name != SuperCap.Name {
		t.Fatalf("SuperCap lookup failed: %v %v", tech, ok)
	}
	if tech, ok := TechByName("li-thin"); !ok || tech.Name != LiThin.Name {
		t.Fatalf("li-thin lookup failed: %v %v", tech, ok)
	}
	if _, ok := TechByName("plutonium"); ok {
		t.Fatal("unknown tech resolved")
	}
}

func TestDrainDeadline(t *testing.T) {
	p := DefaultParams() // 100 W
	// 1 J at 100 W is 10 ms of processor draw.
	if got, want := DrainDeadline(p, 1.0), 10*sim.Millisecond; got != want {
		t.Fatalf("deadline = %v, want %v", got, want)
	}
	if got := DrainDeadline(p, 0); got != 0 {
		t.Fatalf("zero budget deadline = %v", got)
	}
	if got := DrainDeadline(Params{}, 1); got != 0 {
		t.Fatalf("zero power deadline = %v", got)
	}
}
