// Package energy estimates the draining-time energy cost and the back-up
// power-source volume of an EPD system (paper §V-G, Tables II and III).
//
// The model follows the paper: draining energy is the sum of processor
// energy (power × draining time; the paper uses McPAT, we use a calibrated
// constant draining-mode power), NVM write energy and NVM read energy.
// Secure-operation energy is negligible and excluded, as in the paper.
// Battery volume divides total energy by the volumetric energy density of
// the storage technology.
package energy

import "repro/internal/sim"

// Params holds the energy-model constants.
type Params struct {
	// ProcessorPowerWatts is the processor package power while executing
	// the draining firmware. The paper's McPAT-derived numbers imply
	// roughly 100 W for the simulated core and uncore (Table II energy /
	// Fig. 11 draining time); it is exposed for calibration.
	ProcessorPowerWatts float64
	// NVMWriteJoules is the energy of one NVM write (531.8 nJ, §V-G).
	NVMWriteJoules float64
	// NVMReadJoules is the energy of one NVM read (5.5 nJ, §V-G).
	NVMReadJoules float64
}

// DefaultParams returns the paper's constants.
func DefaultParams() Params {
	return Params{
		ProcessorPowerWatts: 100,
		NVMWriteJoules:      531.8e-9,
		NVMReadJoules:       5.5e-9,
	}
}

// Breakdown is one row of Table II.
type Breakdown struct {
	ProcessorJ float64
	NVMWriteJ  float64
	NVMReadJ   float64
}

// Total returns the summed draining energy.
func (b Breakdown) Total() float64 { return b.ProcessorJ + b.NVMWriteJ + b.NVMReadJ }

// Estimate computes the draining energy for an episode.
func Estimate(p Params, drainTime sim.Time, writes, reads int64) Breakdown {
	return Breakdown{
		ProcessorJ: p.ProcessorPowerWatts * drainTime.Seconds(),
		NVMWriteJ:  p.NVMWriteJoules * float64(writes),
		NVMReadJ:   p.NVMReadJoules * float64(reads),
	}
}

// Tech is a back-up energy-storage technology.
type Tech struct {
	Name string
	// DensityWhPerCm3 is the volumetric energy density in Wh/cm^3.
	DensityWhPerCm3 float64
}

// The two technologies the paper sizes (§V-G, following BBB).
var (
	SuperCap = Tech{Name: "SuperCap", DensityWhPerCm3: 1e-4}
	LiThin   = Tech{Name: "Li-thin", DensityWhPerCm3: 1e-2}
)

// Volume returns the storage volume in cm^3 needed to hold energyJ joules.
func Volume(energyJ float64, t Tech) float64 {
	const joulesPerWh = 3600
	return energyJ / joulesPerWh / t.DensityWhPerCm3
}
