// Package energy estimates the draining-time energy cost and the back-up
// power-source volume of an EPD system (paper §V-G, Tables II and III).
//
// The model follows the paper: draining energy is the sum of processor
// energy (power × draining time; the paper uses McPAT, we use a calibrated
// constant draining-mode power), NVM write energy and NVM read energy.
// Secure-operation energy is negligible and excluded, as in the paper.
// Battery volume divides total energy by the volumetric energy density of
// the storage technology.
package energy

import "repro/internal/sim"

// Params holds the energy-model constants.
type Params struct {
	// ProcessorPowerWatts is the processor package power while executing
	// the draining firmware. The paper's McPAT-derived numbers imply
	// roughly 100 W for the simulated core and uncore (Table II energy /
	// Fig. 11 draining time); it is exposed for calibration.
	ProcessorPowerWatts float64
	// NVMWriteJoules is the energy of one NVM write (531.8 nJ, §V-G).
	NVMWriteJoules float64
	// NVMReadJoules is the energy of one NVM read (5.5 nJ, §V-G).
	NVMReadJoules float64
}

// DefaultParams returns the paper's constants.
func DefaultParams() Params {
	return Params{
		ProcessorPowerWatts: 100,
		NVMWriteJoules:      531.8e-9,
		NVMReadJoules:       5.5e-9,
	}
}

// Breakdown is one row of Table II.
type Breakdown struct {
	ProcessorJ float64
	NVMWriteJ  float64
	NVMReadJ   float64
}

// Total returns the summed draining energy.
func (b Breakdown) Total() float64 { return b.ProcessorJ + b.NVMWriteJ + b.NVMReadJ }

// Estimate computes the draining energy for an episode.
func Estimate(p Params, drainTime sim.Time, writes, reads int64) Breakdown {
	return Breakdown{
		ProcessorJ: p.ProcessorPowerWatts * drainTime.Seconds(),
		NVMWriteJ:  p.NVMWriteJoules * float64(writes),
		NVMReadJ:   p.NVMReadJoules * float64(reads),
	}
}

// Tech is a back-up energy-storage technology.
type Tech struct {
	Name string
	// DensityWhPerCm3 is the volumetric energy density in Wh/cm^3.
	DensityWhPerCm3 float64
}

// The two technologies the paper sizes (§V-G, following BBB).
var (
	SuperCap = Tech{Name: "SuperCap", DensityWhPerCm3: 1e-4}
	LiThin   = Tech{Name: "Li-thin", DensityWhPerCm3: 1e-2}
)

// Volume returns the storage volume in cm^3 needed to hold energyJ joules.
func Volume(energyJ float64, t Tech) float64 {
	const joulesPerWh = 3600
	return energyJ / joulesPerWh / t.DensityWhPerCm3
}

// BudgetJoules is the inverse of Volume: the hold-up energy budget of a
// back-up source of volCm3 cubic centimetres. SLO rules use it to turn a
// provisioned battery volume (Table III) into the joule budget the drain
// races against.
func BudgetJoules(volCm3 float64, t Tech) float64 {
	const joulesPerWh = 3600
	return volCm3 * joulesPerWh * t.DensityWhPerCm3
}

// TechByName resolves a technology by its (case-insensitive) name.
// Recognised: "supercap", "li-thin" (also "lithin"/"li"). Returns false
// for anything else.
func TechByName(name string) (Tech, bool) {
	switch {
	case equalFold(name, "supercap"):
		return SuperCap, true
	case equalFold(name, "li-thin"), equalFold(name, "lithin"), equalFold(name, "li"):
		return LiThin, true
	}
	return Tech{}, false
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// DrainDeadline bounds the drain time affordable within budgetJ: the
// instant at which processor draw alone (ignoring NVM access energy, which
// only tightens the bound) exhausts the budget. Zero when the budget or
// power is non-positive.
func DrainDeadline(p Params, budgetJ float64) sim.Time {
	if budgetJ <= 0 || p.ProcessorPowerWatts <= 0 {
		return 0
	}
	return sim.Time(budgetJ / p.ProcessorPowerWatts * float64(sim.Second))
}
