package mem

import "testing"

func TestWearAccounting(t *testing.T) {
	c := NewController(DefaultConfig())
	c.Write(0, 0, Block{}, CatData)
	c.Write(0, 0, Block{}, CatData)
	c.Write(0, 64, Block{}, CatData)
	if c.WearOf(0) != 2 || c.WearOf(64) != 1 || c.WearOf(128) != 0 {
		t.Errorf("per-block wear wrong: %d %d %d", c.WearOf(0), c.WearOf(64), c.WearOf(128))
	}
	ws := c.WearStats()
	if ws.MaxWrites != 2 || ws.HotAddr != 0 || ws.TotalWrites != 3 || ws.UniqueBlocks != 2 {
		t.Errorf("WearStats = %+v", ws)
	}
}

func TestWearSurvivesResetStats(t *testing.T) {
	c := NewController(DefaultConfig())
	c.Write(0, 0, Block{}, CatData)
	c.ResetStats()
	if c.WearOf(0) != 1 {
		t.Error("ResetStats cleared wear (cell wear is permanent)")
	}
}

func TestWearInRange(t *testing.T) {
	c := NewController(DefaultConfig())
	c.Write(0, 0, Block{}, CatData)
	c.Write(0, 64, Block{}, CatData)
	c.Write(0, 64, Block{}, CatData)
	c.Write(0, 4096, Block{}, CatData)
	max, total := c.WearInRange(0, 128)
	if max != 2 || total != 3 {
		t.Errorf("WearInRange(0,128) = (%d,%d), want (2,3)", max, total)
	}
	max, total = c.WearInRange(4096, 8192)
	if max != 1 || total != 1 {
		t.Errorf("WearInRange(4096,8192) = (%d,%d), want (1,1)", max, total)
	}
}

func TestReadsDoNotWear(t *testing.T) {
	c := NewController(DefaultConfig())
	c.Write(0, 0, Block{}, CatData)
	c.Read(0, 0, CatData)
	c.Read(0, 0, CatData)
	if c.WearOf(0) != 1 {
		t.Error("reads must not count as wear")
	}
}

func TestAddressesInRange(t *testing.T) {
	s := NewStore()
	s.WriteBlock(128, Block{1})
	s.WriteBlock(0, Block{1})
	s.WriteBlock(4096, Block{1})
	got := s.AddressesInRange(0, 4096)
	if len(got) != 2 || got[0] != 0 || got[1] != 128 {
		t.Errorf("AddressesInRange = %v", got)
	}
	if len(s.AddressesInRange(8192, 1<<20)) != 0 {
		t.Error("empty range not empty")
	}
}
