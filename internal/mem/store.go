// Package mem models the non-volatile main memory of the simulated system:
// a functional, sparse, 64-byte-block store plus a banked timing and energy
// model matching the paper's DDR-based PCM parameters (Table I: 150 ns read,
// 500 ns write; §V-G: 5.5 nJ per read, 531.8 nJ per write).
package mem

import (
	"fmt"
	"sort"
)

// BlockSize is the memory access granularity in bytes (one cache line).
const BlockSize = 64

// Block is a 64-byte memory block.
type Block [BlockSize]byte

// IsZero reports whether every byte of the block is zero.
func (b *Block) IsZero() bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// Store is a sparse functional memory: unwritten blocks read as zero.
// Addresses are byte addresses and must be 64-byte aligned. Blocks live in
// an open-addressed table (addrmap.go) rather than a Go map: every timed
// access funnels through ReadBlock/WriteBlock, so the probe cost and the
// map's per-bucket overhead are on the simulator's hottest path.
type Store struct {
	blocks addrMap[Block]
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{}
}

func checkAligned(addr uint64) {
	if addr%BlockSize != 0 {
		panic(fmt.Sprintf("mem: unaligned block address %#x", addr))
	}
}

// ReadBlock returns the content of the block at addr (zero if never written).
func (s *Store) ReadBlock(addr uint64) Block {
	checkAligned(addr)
	b, _ := s.blocks.get(addr)
	return b
}

// WriteBlock stores b at addr.
func (s *Store) WriteBlock(addr uint64, b Block) {
	checkAligned(addr)
	*s.blocks.ref(addr) = b
}

// Populated returns the number of blocks that have been written.
func (s *Store) Populated() int { return s.blocks.len() }

// Reserve pre-sizes the store for at least n populated blocks, so the
// drain's write burst doesn't pay repeated table-growth rehashes. It never
// shrinks and is safe at any time.
func (s *Store) Reserve(n int) { s.blocks.reserve(n) }

// Snapshot returns a deep copy of the store, used by tests to compare
// pre-crash and post-recovery memory images.
func (s *Store) Snapshot() *Store {
	return &Store{blocks: s.blocks.clone()}
}

// AddressesInRange returns the sorted addresses of populated blocks within
// [lo, hi). Recovery scans use it to enumerate memory without materialising
// the full (sparse) address space.
func (s *Store) AddressesInRange(lo, hi uint64) []uint64 {
	var out []uint64
	s.blocks.each(func(a uint64, _ Block) {
		if a >= lo && a < hi {
			out = append(out, a)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CorruptByte flips the bit at bitIndex of the byte at byteOffset within the
// block at addr. It is used by attack-injection tests and returns the
// previous block content.
func (s *Store) CorruptByte(addr uint64, byteOffset int, bitMask byte) Block {
	checkAligned(addr)
	p := s.blocks.ref(addr)
	old := *p
	p[byteOffset] ^= bitMask
	return old
}
