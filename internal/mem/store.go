// Package mem models the non-volatile main memory of the simulated system:
// a functional, sparse, 64-byte-block store plus a banked timing and energy
// model matching the paper's DDR-based PCM parameters (Table I: 150 ns read,
// 500 ns write; §V-G: 5.5 nJ per read, 531.8 nJ per write).
package mem

import (
	"fmt"
	"sort"
)

// BlockSize is the memory access granularity in bytes (one cache line).
const BlockSize = 64

// Block is a 64-byte memory block.
type Block [BlockSize]byte

// IsZero reports whether every byte of the block is zero.
func (b *Block) IsZero() bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// storeEntry is one populated block's state: its content plus its lifetime
// write (wear) count. Fusing the two means the controller's per-write hot
// path probes one table once instead of a block table and a wear table.
type storeEntry struct {
	b    Block
	wear int64
}

// Store is a sparse functional memory: unwritten blocks read as zero.
// Addresses are byte addresses and must be 64-byte aligned.
//
// Blocks live in open-addressed tables (addrmap.go) rather than Go maps:
// every timed access funnels through ReadBlock/WriteBlock, so the probe cost
// and the map's per-bucket overhead are on the simulator's hottest path.
// The table is partitioned into per-bank shards using the controller's bank
// interleaving (BankOf), so a sharded drain can give each worker exclusive
// ownership of whole banks with no cross-shard writes; a single-shard store
// (NewStore) behaves identically.
type Store struct {
	shards []addrMap[storeEntry]
}

// NewStore returns an empty single-shard store.
func NewStore() *Store { return NewShardedStore(1) }

// NewShardedStore returns an empty store partitioned into the given number
// of per-bank shards. Shard assignment follows BankOf with the same count,
// so a controller with n banks over an n-shard store keeps each bank's
// blocks in exactly one shard.
func NewShardedStore(shards int) *Store {
	if shards <= 0 {
		shards = 1
	}
	return &Store{shards: make([]addrMap[storeEntry], shards)}
}

// Shards returns the number of per-bank shards.
func (s *Store) Shards() int { return len(s.shards) }

func checkAligned(addr uint64) {
	if addr%BlockSize != 0 {
		panic(fmt.Sprintf("mem: unaligned block address %#x", addr))
	}
}

// shard returns the shard owning addr.
func (s *Store) shard(addr uint64) *addrMap[storeEntry] {
	if len(s.shards) == 1 {
		return &s.shards[0]
	}
	return &s.shards[BankOf(addr, len(s.shards))]
}

// ReadBlock returns the content of the block at addr (zero if never written).
func (s *Store) ReadBlock(addr uint64) Block {
	checkAligned(addr)
	e, _ := s.shard(addr).get(addr)
	return e.b
}

// WriteBlock stores b at addr without touching the wear count (functional
// writes from tests and recovery are not medium writes).
func (s *Store) WriteBlock(addr uint64, b Block) {
	checkAligned(addr)
	s.shard(addr).ref(addr).b = b
}

// entry returns a pointer to the block's fused content+wear entry, inserting
// a zero entry if absent. The pointer is invalidated by the next insertion
// into the same shard (table growth); the controller uses it strictly within
// one access.
func (s *Store) entry(addr uint64) *storeEntry {
	checkAligned(addr)
	return s.shard(addr).ref(addr)
}

// wearOf returns the lifetime write count of one block.
func (s *Store) wearOf(addr uint64) int64 {
	e, _ := s.shard(addr).get(addr)
	return e.wear
}

// eachWear calls fn for every block with a non-zero wear count, in
// unspecified order. Blocks only ever written functionally (wear zero) are
// skipped, preserving the semantics of the former separate wear table.
func (s *Store) eachWear(fn func(addr uint64, wear int64)) {
	for i := range s.shards {
		s.shards[i].each(func(a uint64, e storeEntry) {
			if e.wear != 0 {
				fn(a, e.wear)
			}
		})
	}
}

// Populated returns the number of blocks that have been written.
func (s *Store) Populated() int {
	n := 0
	for i := range s.shards {
		n += s.shards[i].len()
	}
	return n
}

// Reserve pre-sizes the store for at least n populated blocks, so the
// drain's write burst doesn't pay repeated table-growth rehashes. It never
// shrinks and is safe at any time. The reservation assumes blocks spread
// roughly evenly across shards (they do: BankOf interleaves), with slack so
// moderate imbalance still avoids rehashing.
func (s *Store) Reserve(n int) {
	per := n
	if len(s.shards) > 1 {
		per = n/len(s.shards) + n/(4*len(s.shards)) + 16
	}
	for i := range s.shards {
		s.shards[i].reserve(per)
	}
}

// Snapshot returns a deep copy of the store, used by tests to compare
// pre-crash and post-recovery memory images.
func (s *Store) Snapshot() *Store {
	out := &Store{shards: make([]addrMap[storeEntry], len(s.shards))}
	for i := range s.shards {
		out.shards[i] = s.shards[i].clone()
	}
	return out
}

// Each calls fn for every populated block, in unspecified order. The litmus
// harness uses it to copy a snapshotted image into a fresh system's store;
// callers needing a deterministic order should collect and sort.
func (s *Store) Each(fn func(addr uint64, b Block)) {
	for i := range s.shards {
		s.shards[i].each(func(a uint64, e storeEntry) { fn(a, e.b) })
	}
}

// AddressesInRange returns the sorted addresses of populated blocks within
// [lo, hi). Recovery scans use it to enumerate memory without materialising
// the full (sparse) address space.
func (s *Store) AddressesInRange(lo, hi uint64) []uint64 {
	var out []uint64
	for i := range s.shards {
		s.shards[i].each(func(a uint64, _ storeEntry) {
			if a >= lo && a < hi {
				out = append(out, a)
			}
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CorruptByte flips the bit at bitIndex of the byte at byteOffset within the
// block at addr. It is used by attack-injection tests and returns the
// previous block content.
func (s *Store) CorruptByte(addr uint64, byteOffset int, bitMask byte) Block {
	checkAligned(addr)
	p := s.shard(addr).ref(addr)
	old := p.b
	p.b[byteOffset] ^= bitMask
	return old
}
