// Package mem models the non-volatile main memory of the simulated system:
// a functional, sparse, 64-byte-block store plus a banked timing and energy
// model matching the paper's DDR-based PCM parameters (Table I: 150 ns read,
// 500 ns write; §V-G: 5.5 nJ per read, 531.8 nJ per write).
package mem

import (
	"fmt"
	"sort"
)

// BlockSize is the memory access granularity in bytes (one cache line).
const BlockSize = 64

// Block is a 64-byte memory block.
type Block [BlockSize]byte

// IsZero reports whether every byte of the block is zero.
func (b *Block) IsZero() bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// Store is a sparse functional memory: unwritten blocks read as zero.
// Addresses are byte addresses and must be 64-byte aligned.
type Store struct {
	blocks map[uint64]Block
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{blocks: make(map[uint64]Block)}
}

func checkAligned(addr uint64) {
	if addr%BlockSize != 0 {
		panic(fmt.Sprintf("mem: unaligned block address %#x", addr))
	}
}

// ReadBlock returns the content of the block at addr (zero if never written).
func (s *Store) ReadBlock(addr uint64) Block {
	checkAligned(addr)
	return s.blocks[addr]
}

// WriteBlock stores b at addr.
func (s *Store) WriteBlock(addr uint64, b Block) {
	checkAligned(addr)
	s.blocks[addr] = b
}

// Populated returns the number of blocks that have been written.
func (s *Store) Populated() int { return len(s.blocks) }

// Snapshot returns a deep copy of the store, used by tests to compare
// pre-crash and post-recovery memory images.
func (s *Store) Snapshot() *Store {
	out := NewStore()
	for a, b := range s.blocks {
		out.blocks[a] = b
	}
	return out
}

// AddressesInRange returns the sorted addresses of populated blocks within
// [lo, hi). Recovery scans use it to enumerate memory without materialising
// the full (sparse) address space.
func (s *Store) AddressesInRange(lo, hi uint64) []uint64 {
	var out []uint64
	for a := range s.blocks {
		if a >= lo && a < hi {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CorruptByte flips the bit at bitIndex of the byte at byteOffset within the
// block at addr. It is used by attack-injection tests and returns the
// previous block content.
func (s *Store) CorruptByte(addr uint64, byteOffset int, bitMask byte) Block {
	checkAligned(addr)
	old := s.blocks[addr]
	nb := old
	nb[byteOffset] ^= bitMask
	s.blocks[addr] = nb
	return old
}
