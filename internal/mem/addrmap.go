package mem

// addrMap is an open-addressed hash table keyed by 64-byte-aligned block
// addresses. It replaces Go maps on the simulator's per-access hot path
// (the sparse block store and the wear counters): linear probing over a
// power-of-two slot array keeps a lookup to one multiply, one mask and a
// short scan, with no per-entry allocation and no iteration-order
// randomisation to pay for.
//
// Keys are stored tagged (addr|1) so the zero slot value means "empty";
// address zero is a legal block address and stays representable because
// aligned addresses have their low six bits clear. The table never deletes
// (the simulator only accumulates blocks and wear), which keeps probing
// tombstone-free.
type addrMap[V any] struct {
	keys []uint64 // addr|1 when occupied, 0 when empty
	vals []V
	n    int
}

// addrMapMinSlots is the initial slot count of a lazily grown table.
const addrMapMinSlots = 256

// hashAddr spreads a block address over the slot space: the address is
// reduced to its block number (low six bits are alignment zeros) and mixed
// with a 64-bit Fibonacci multiplier.
func hashAddr(addr uint64) uint64 {
	return (addr >> 6) * 0x9E3779B97F4A7C15
}

// get returns the value for addr and whether it is present.
func (m *addrMap[V]) get(addr uint64) (V, bool) {
	if m.n == 0 {
		var zero V
		return zero, false
	}
	mask := uint64(len(m.keys) - 1)
	tagged := addr | 1
	for i := hashAddr(addr) & mask; ; i = (i + 1) & mask {
		k := m.keys[i]
		if k == tagged {
			return m.vals[i], true
		}
		if k == 0 {
			var zero V
			return zero, false
		}
	}
}

// ref returns a pointer to the value slot for addr, inserting a zero value
// if absent. The pointer is only valid until the next ref call (growth
// rehashes into new arrays).
func (m *addrMap[V]) ref(addr uint64) *V {
	if len(m.keys) == 0 {
		m.keys = make([]uint64, addrMapMinSlots)
		m.vals = make([]V, addrMapMinSlots)
	} else if m.n*4 >= len(m.keys)*3 {
		m.grow()
	}
	mask := uint64(len(m.keys) - 1)
	tagged := addr | 1
	for i := hashAddr(addr) & mask; ; i = (i + 1) & mask {
		k := m.keys[i]
		if k == tagged {
			return &m.vals[i]
		}
		if k == 0 {
			m.keys[i] = tagged
			m.n++
			return &m.vals[i]
		}
	}
}

// reserve sizes the table for at least n entries at the target load factor,
// avoiding repeated doubling-rehash cycles (each copies the full 64-byte
// value array) when the eventual footprint is known up front.
func (m *addrMap[V]) reserve(n int) {
	slots := addrMapMinSlots
	for slots*3 < n*4 {
		slots *= 2
	}
	if slots <= len(m.keys) {
		return
	}
	if m.n == 0 {
		m.keys = make([]uint64, slots)
		m.vals = make([]V, slots)
		return
	}
	oldKeys, oldVals := m.keys, m.vals
	m.keys = make([]uint64, slots)
	m.vals = make([]V, slots)
	m.rehash(oldKeys, oldVals)
}

// grow doubles the slot array and rehashes every occupied slot.
func (m *addrMap[V]) grow() {
	oldKeys, oldVals := m.keys, m.vals
	m.keys = make([]uint64, 2*len(oldKeys))
	m.vals = make([]V, 2*len(oldVals))
	m.rehash(oldKeys, oldVals)
}

// rehash reinserts every occupied slot of the old arrays.
func (m *addrMap[V]) rehash(oldKeys []uint64, oldVals []V) {
	mask := uint64(len(m.keys) - 1)
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		for j := hashAddr(k &^ 1) & mask; ; j = (j + 1) & mask {
			if m.keys[j] == 0 {
				m.keys[j] = k
				m.vals[j] = oldVals[i]
				break
			}
		}
	}
}

// len returns the number of entries.
func (m *addrMap[V]) len() int { return m.n }

// each calls fn for every (addr, value) entry in unspecified order. Callers
// needing determinism sort the results (AddressesInRange does).
func (m *addrMap[V]) each(fn func(addr uint64, v V)) {
	for i, k := range m.keys {
		if k != 0 {
			fn(k&^1, m.vals[i])
		}
	}
}

// clone returns a deep copy of the table.
func (m *addrMap[V]) clone() addrMap[V] {
	out := addrMap[V]{n: m.n}
	if m.keys != nil {
		out.keys = append([]uint64(nil), m.keys...)
		out.vals = append([]V(nil), m.vals...)
	}
	return out
}
