package mem

import (
	"math/rand"
	"testing"
)

// TestAddrMapDifferentialVsMap drives the open-addressed table and a plain
// Go map through the same randomized workload and requires identical
// contents at every step boundary. This is the correctness oracle for
// replacing the store/wear maps on the hot path.
func TestAddrMapDifferentialVsMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var m addrMap[int64]
	ref := map[uint64]int64{}

	// Address pool mixing dense, strided and high-bit (DrainPadDomain-style)
	// addresses, including address zero.
	pool := make([]uint64, 0, 512)
	for i := 0; i < 256; i++ {
		pool = append(pool, uint64(i)*BlockSize)
	}
	for i := 0; i < 128; i++ {
		pool = append(pool, uint64(i)*16384)
	}
	for i := 0; i < 128; i++ {
		pool = append(pool, 1<<63|uint64(i)*BlockSize)
	}

	for step := 0; step < 20000; step++ {
		addr := pool[rng.Intn(len(pool))]
		switch rng.Intn(3) {
		case 0: // insert/overwrite
			v := rng.Int63()
			*m.ref(addr) = v
			ref[addr] = v
		case 1: // increment through ref
			*m.ref(addr)++
			ref[addr]++
		case 2: // lookup
			got, ok := m.get(addr)
			want, refOK := ref[addr]
			if ok != refOK || got != want {
				t.Fatalf("step %d: get(%#x) = (%d, %v), want (%d, %v)", step, addr, got, ok, want, refOK)
			}
		}
		if m.len() != len(ref) {
			t.Fatalf("step %d: len = %d, want %d", step, m.len(), len(ref))
		}
	}

	// Full sweep: every reference entry present with the right value, and
	// each() enumerates exactly the reference set.
	for addr, want := range ref {
		if got, ok := m.get(addr); !ok || got != want {
			t.Fatalf("final get(%#x) = (%d, %v), want (%d, true)", addr, got, ok, want)
		}
	}
	seen := map[uint64]int64{}
	m.each(func(addr uint64, v int64) {
		if _, dup := seen[addr]; dup {
			t.Fatalf("each() visited %#x twice", addr)
		}
		seen[addr] = v
	})
	if len(seen) != len(ref) {
		t.Fatalf("each() visited %d entries, want %d", len(seen), len(ref))
	}
	for addr, v := range ref {
		if seen[addr] != v {
			t.Fatalf("each() gave %#x -> %d, want %d", addr, seen[addr], v)
		}
	}

	// clone() is deep: mutating the clone leaves the original untouched.
	cl := m.clone()
	probe := pool[0]
	before, _ := m.get(probe)
	*cl.ref(probe) = before + 1000
	if after, _ := m.get(probe); after != before {
		t.Fatalf("clone mutation leaked into original: %d -> %d", before, after)
	}
	if got, _ := cl.get(probe); got != before+1000 {
		t.Fatalf("clone value = %d, want %d", got, before+1000)
	}
}

// TestStoreDifferentialVsMap exercises the public Store API against a map
// reference, including Snapshot isolation and AddressesInRange ordering.
func TestStoreDifferentialVsMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewStore()
	ref := map[uint64]Block{}

	addrs := make([]uint64, 0, 300)
	for i := 0; i < 300; i++ {
		addrs = append(addrs, uint64(rng.Intn(1<<20))*BlockSize)
	}

	for step := 0; step < 10000; step++ {
		addr := addrs[rng.Intn(len(addrs))]
		switch rng.Intn(4) {
		case 0, 1:
			var b Block
			rng.Read(b[:])
			s.WriteBlock(addr, b)
			ref[addr] = b
		case 2:
			if got, want := s.ReadBlock(addr), ref[addr]; got != want {
				t.Fatalf("step %d: ReadBlock(%#x) mismatch", step, addr)
			}
		case 3:
			old := s.CorruptByte(addr, int(addr/BlockSize)%BlockSize, 0x40)
			if old != ref[addr] {
				t.Fatalf("step %d: CorruptByte old content mismatch", step)
			}
			nb := ref[addr]
			nb[int(addr/BlockSize)%BlockSize] ^= 0x40
			ref[addr] = nb
		}
	}
	if s.Populated() != len(ref) {
		t.Fatalf("Populated = %d, want %d", s.Populated(), len(ref))
	}

	// AddressesInRange must be sorted and complete.
	lo, hi := uint64(1<<10)*BlockSize, uint64(1<<19)*BlockSize
	got := s.AddressesInRange(lo, hi)
	want := 0
	for a := range ref {
		if a >= lo && a < hi {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("AddressesInRange returned %d addrs, want %d", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("AddressesInRange not strictly sorted at %d", i)
		}
	}
	for _, a := range got {
		if s.ReadBlock(a) != ref[a] {
			t.Fatalf("content mismatch at %#x", a)
		}
	}

	// Snapshot isolation.
	snap := s.Snapshot()
	probe := got[0]
	var b Block
	rng.Read(b[:])
	s.WriteBlock(probe, b)
	if snap.ReadBlock(probe) != ref[probe] {
		t.Fatal("Snapshot changed when the original store was written")
	}
}
