package mem

import (
	"repro/internal/sim"
)

// Category labels a memory access for the breakdowns in the paper's figures
// (Fig. 6 memory-request breakdown, Fig. 12 memory-write breakdown).
type Category string

// Access categories used across the simulator. Packages may define more;
// these are the ones the paper's figures report.
const (
	CatData      Category = "data"       // in-place data block (baselines, non-secure)
	CatCounter   Category = "counter"    // encryption counter block
	CatTree      Category = "tree"       // integrity (Bonsai Merkle) tree node
	CatMAC       Category = "mac"        // data MAC block
	CatCHVData   Category = "chv-data"   // drained cache block in the CHV
	CatCHVAddr   Category = "chv-addr"   // coalesced address block in the CHV
	CatCHVMAC    Category = "chv-mac"    // coalesced MAC block in the CHV
	CatMetaFlush Category = "meta-flush" // end-of-drain security-metadata-cache flush
	CatRecovery  Category = "recovery"   // recovery-time read-back
)

// Config holds the timing and organisation parameters of the NVM.
type Config struct {
	Banks        int      // independent banks (interleaved by block address)
	ReadLatency  sim.Time // bank occupancy of a read
	WriteLatency sim.Time // bank occupancy of a write
	BusSlot      sim.Time // command/data-bus occupancy per access
}

// DefaultConfig matches Table I of the paper (DDR-based PCM) with a
// 16-bank organisation.
func DefaultConfig() Config {
	return Config{
		Banks:        16,
		ReadLatency:  150 * sim.Nanosecond,
		WriteLatency: 500 * sim.Nanosecond,
		BusSlot:      5 * sim.Nanosecond,
	}
}

// Observer receives every timed access; used by the trace package.
// kind is "read" or "write"; done is the access completion time.
type Observer interface {
	OnAccess(kind string, done sim.Time, addr uint64, category string)
}

// Controller couples the functional store with the banked timing model and
// per-category access accounting.
type Controller struct {
	cfg   Config
	store *Store
	banks []*sim.Resource
	bus   *sim.Resource

	reads  *sim.CounterSet
	writes *sim.CounterSet

	// wear counts lifetime writes per block for endurance analysis; unlike
	// the traffic counters it is never reset (cell wear is permanent).
	wear map[uint64]int64

	obs Observer // optional access tracer
}

// SetObserver installs (or clears, with nil) an access observer.
func (c *Controller) SetObserver(o Observer) { c.obs = o }

// NewController returns a controller over a fresh store.
func NewController(cfg Config) *Controller {
	if cfg.Banks <= 0 {
		panic("mem: bank count must be positive")
	}
	c := &Controller{
		cfg:    cfg,
		store:  NewStore(),
		bus:    sim.NewResource("membus"),
		reads:  sim.NewCounterSet(),
		writes: sim.NewCounterSet(),
		wear:   make(map[uint64]int64),
	}
	for i := 0; i < cfg.Banks; i++ {
		c.banks = append(c.banks, sim.NewResource("bank"))
	}
	return c
}

// Store exposes the functional backing store (for tests and recovery).
func (c *Controller) Store() *Store { return c.store }

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// bankOf interleaves blocks across banks, folding higher address bits so
// that large power-of-two strides still spread across banks (the paper's
// worst-case fill uses a 16 KB stride).
func (c *Controller) bankOf(addr uint64) int {
	bn := addr / BlockSize
	h := bn ^ (bn >> 4) ^ (bn >> 9) ^ (bn >> 15) ^ (bn >> 22)
	return int(h % uint64(len(c.banks)))
}

// Read performs a timed, counted read of the block at addr. The access
// begins no earlier than ready; the returned time is when data is available.
func (c *Controller) Read(ready sim.Time, addr uint64, cat Category) (Block, sim.Time) {
	c.reads.Add(string(cat), 1)
	_, busDone := c.bus.Acquire(ready, c.cfg.BusSlot)
	_, done := c.banks[c.bankOf(addr)].Acquire(busDone, c.cfg.ReadLatency)
	if c.obs != nil {
		c.obs.OnAccess("read", done, addr, string(cat))
	}
	return c.store.ReadBlock(addr), done
}

// Write performs a timed, counted write of b to addr. The returned time is
// when the write is durable in the NVM.
func (c *Controller) Write(ready sim.Time, addr uint64, b Block, cat Category) sim.Time {
	c.writes.Add(string(cat), 1)
	c.wear[addr]++
	_, busDone := c.bus.Acquire(ready, c.cfg.BusSlot)
	_, done := c.banks[c.bankOf(addr)].Acquire(busDone, c.cfg.WriteLatency)
	if c.obs != nil {
		c.obs.OnAccess("write", done, addr, string(cat))
	}
	c.store.WriteBlock(addr, b)
	return done
}

// WearStats summarises per-cell write endurance exposure.
type WearStats struct {
	// MaxWrites is the lifetime write count of the most-written block.
	MaxWrites int64
	// HotAddr is that block's address.
	HotAddr uint64
	// TotalWrites is the lifetime write count across all blocks.
	TotalWrites int64
	// UniqueBlocks is how many distinct blocks have ever been written.
	UniqueBlocks int
}

// WearStats computes endurance exposure over the memory's lifetime (wear
// is never reset by ResetStats — cell wear is permanent).
func (c *Controller) WearStats() WearStats {
	var ws WearStats
	for addr, n := range c.wear {
		ws.TotalWrites += n
		if n > ws.MaxWrites {
			ws.MaxWrites, ws.HotAddr = n, addr
		}
	}
	ws.UniqueBlocks = len(c.wear)
	return ws
}

// WearOf returns the lifetime write count of one block.
func (c *Controller) WearOf(addr uint64) int64 { return c.wear[addr] }

// WearInRange returns the maximum and total lifetime writes within
// [lo, hi), e.g. over the CHV region.
func (c *Controller) WearInRange(lo, hi uint64) (max, total int64) {
	for addr, n := range c.wear {
		if addr >= lo && addr < hi {
			total += n
			if n > max {
				max = n
			}
		}
	}
	return max, total
}

// PeekRead reads functionally without timing or counting. Recovery-time
// integrity checks and tests use it to inspect memory.
func (c *Controller) PeekRead(addr uint64) Block { return c.store.ReadBlock(addr) }

// Reads returns the per-category read counters.
func (c *Controller) Reads() *sim.CounterSet { return c.reads }

// Writes returns the per-category write counters.
func (c *Controller) Writes() *sim.CounterSet { return c.writes }

// TotalReads returns the total number of read accesses.
func (c *Controller) TotalReads() int64 { return c.reads.Total() }

// TotalWrites returns the total number of write accesses.
func (c *Controller) TotalWrites() int64 { return c.writes.Total() }

// TotalAccesses returns reads plus writes.
func (c *Controller) TotalAccesses() int64 { return c.TotalReads() + c.TotalWrites() }

// LastDone returns the latest completion time across all banks, i.e. when
// the memory system has fully drained its accepted requests.
func (c *Controller) LastDone() sim.Time {
	var t sim.Time
	for _, b := range c.banks {
		t = sim.MaxTime(t, b.FreeAt())
	}
	return sim.MaxTime(t, c.bus.FreeAt())
}

// ResetStats clears timing state and counters but preserves memory content.
// It separates the run-time warm-up phase from the measured draining phase.
func (c *Controller) ResetStats() {
	for _, b := range c.banks {
		b.Reset()
	}
	c.bus.Reset()
	c.reads = sim.NewCounterSet()
	c.writes = sim.NewCounterSet()
}
