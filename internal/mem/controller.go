package mem

import (
	"fmt"
	"strconv"

	"repro/internal/obs"
	"repro/internal/obs/timeseries"
	"repro/internal/sim"
	"repro/internal/timeline"
)

// Category labels a memory access for the breakdowns in the paper's figures
// (Fig. 6 memory-request breakdown, Fig. 12 memory-write breakdown).
type Category string

// Access categories used across the simulator. Packages may define more;
// these are the ones the paper's figures report.
const (
	CatData      Category = "data"       // in-place data block (baselines, non-secure)
	CatCounter   Category = "counter"    // encryption counter block
	CatTree      Category = "tree"       // integrity (Bonsai Merkle) tree node
	CatMAC       Category = "mac"        // data MAC block
	CatCHVData   Category = "chv-data"   // drained cache block in the CHV
	CatCHVAddr   Category = "chv-addr"   // coalesced address block in the CHV
	CatCHVMAC    Category = "chv-mac"    // coalesced MAC block in the CHV
	CatMetaFlush Category = "meta-flush" // end-of-drain security-metadata-cache flush
	CatRecovery  Category = "recovery"   // recovery-time read-back
)

// Config holds the timing and organisation parameters of the NVM.
type Config struct {
	Banks        int      // independent banks (interleaved by block address)
	ReadLatency  sim.Time // bank occupancy of a read
	WriteLatency sim.Time // bank occupancy of a write
	BusSlot      sim.Time // command/data-bus occupancy per access
}

// DefaultConfig matches Table I of the paper (DDR-based PCM) with a
// 16-bank organisation.
func DefaultConfig() Config {
	return Config{
		Banks:        16,
		ReadLatency:  150 * sim.Nanosecond,
		WriteLatency: 500 * sim.Nanosecond,
		BusSlot:      5 * sim.Nanosecond,
	}
}

// Observer receives every timed access; used by the trace package.
// kind is "read" or "write"; done is the access completion time.
type Observer interface {
	OnAccess(kind string, done sim.Time, addr uint64, category string)
}

// Controller couples the functional store with the banked timing model and
// per-category access accounting.
type Controller struct {
	cfg   Config
	store *Store
	banks []*sim.Resource
	bus   *sim.Resource

	reads  *sim.CounterSet
	writes *sim.CounterSet

	observers []Observer         // access tracers, notified in registration order
	m         *accessMetrics     // optional per-access instrumentation
	ts        *tsSeries          // optional windowed time-series sampling
	fault     FaultInjector      // optional write-fault injection (torture harness)
	recorder  WriteRecorder      // optional committed-write observer (litmus recorder)
	tl        *timeline.Recorder // optional event-timeline recorder
}

// AddObserver appends an access observer. Observers are notified of every
// timed access in the order they were added; a nil observer is ignored.
func (c *Controller) AddObserver(o Observer) {
	if o != nil {
		c.observers = append(c.observers, o)
	}
}

// RemoveObserver detaches a previously added observer (compared by
// identity). Unknown observers are ignored.
func (c *Controller) RemoveObserver(o Observer) {
	for i, cur := range c.observers {
		if cur == o {
			c.observers = append(c.observers[:i], c.observers[i+1:]...)
			return
		}
	}
}

// accessMetrics caches metric handles so the per-access hot path does no
// registry lookups. Per-category counters are filled lazily (the simulator
// is single-threaded per controller).
type accessMetrics struct {
	reg    *obs.Registry
	labels []string

	bankWait   *obs.Histogram
	busWait    *obs.Histogram
	queueDepth *obs.Histogram
	readCtr    map[Category]*obs.Counter
	writeCtr   map[Category]*obs.Counter
}

func (m *accessMetrics) counter(set map[Category]*obs.Counter, name string, cat Category) *obs.Counter {
	ctr, ok := set[cat]
	if !ok {
		ctr = m.reg.Counter(name, append([]string{"category", string(cat)}, m.labels...)...)
		set[cat] = ctr
	}
	return ctr
}

// SetMetrics attaches the controller to a metrics registry (nil detaches).
// The extra labels (alternating key, value — e.g. "scheme", "Horus-SLM")
// are applied to every series the controller emits.
func (c *Controller) SetMetrics(reg *obs.Registry, labels ...string) {
	if reg == nil {
		c.m = nil
		return
	}
	reg.SetHelp("horus_mem_reads_total", "NVM read accesses by category.")
	reg.SetHelp("horus_mem_writes_total", "NVM write accesses by category.")
	reg.SetHelp("horus_mem_bank_wait_ps", "Per-access bank queueing delay in picoseconds.")
	reg.SetHelp("horus_mem_bus_wait_ps", "Per-access command/data-bus queueing delay in picoseconds.")
	reg.SetHelp("horus_mem_bank_queue_depth", "Approximate bank queue depth (wait divided by service latency) at access issue.")
	c.m = &accessMetrics{
		reg:        reg,
		labels:     labels,
		bankWait:   reg.Histogram("horus_mem_bank_wait_ps", obs.LatencyBuckets, labels...),
		busWait:    reg.Histogram("horus_mem_bus_wait_ps", obs.LatencyBuckets, labels...),
		queueDepth: reg.Histogram("horus_mem_bank_queue_depth", obs.DepthBuckets, labels...),
		readCtr:    make(map[Category]*obs.Counter),
		writeCtr:   make(map[Category]*obs.Counter),
	}
}

// tsSeries caches per-bank time-series handles so the per-access hot path
// does no sampler lookups: when sampling is off the whole cost is one nil
// check on c.ts.
type tsSeries struct {
	depth []*timeseries.Series // queue depth per bank, indexed by bank
}

// SetTimeseries attaches a windowed time-series sampler (nil detaches).
// Every access then records its bank's instantaneous queue depth (wait
// divided by service latency, the same proxy the depth histogram uses) at
// the sim time the access reached the bank, giving the live per-bank
// queue-depth view of a drain. The extra labels are applied to every
// series.
func (c *Controller) SetTimeseries(ts *timeseries.Sampler, labels ...string) {
	if ts == nil {
		c.ts = nil
		return
	}
	s := &tsSeries{depth: make([]*timeseries.Series, len(c.banks))}
	for i := range c.banks {
		s.depth[i] = ts.Gauge("horus_ts_bank_queue_depth",
			append([]string{"bank", strconv.Itoa(i)}, labels...)...)
	}
	c.ts = s
}

// NewController returns a controller over a fresh store.
func NewController(cfg Config) *Controller {
	if cfg.Banks <= 0 {
		panic("mem: bank count must be positive")
	}
	c := &Controller{
		cfg:    cfg,
		store:  NewShardedStore(cfg.Banks),
		bus:    sim.NewResource("membus"),
		reads:  sim.NewCounterSet(),
		writes: sim.NewCounterSet(),
	}
	for i := 0; i < cfg.Banks; i++ {
		c.banks = append(c.banks, sim.NewResource(fmt.Sprintf("bank%02d", i)))
	}
	return c
}

// SetTimeline attaches an event-timeline recorder to the bus and every bank
// (nil detaches). Each reservation the controller places is then recorded as
// one interval, stamped with the access op and category.
func (c *Controller) SetTimeline(rec *timeline.Recorder) {
	c.tl = rec
	var tr sim.Tracer
	if rec != nil {
		tr = rec
	}
	c.bus.SetTracer("bus", tr)
	for _, b := range c.banks {
		b.SetTracer("bank", tr)
	}
}

// Store exposes the functional backing store (for tests and recovery).
func (c *Controller) Store() *Store { return c.store }

// Reserve pre-sizes the backing store (fused block content + wear entries)
// for an expected footprint of n populated blocks (see Store.Reserve).
func (c *Controller) Reserve(n int) {
	c.store.Reserve(n)
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// BankOf interleaves blocks across banks, folding higher address bits so
// that large power-of-two strides still spread across banks (the paper's
// worst-case fill uses a 16 KB stride). It is exported because the sharded
// drain pipeline partitions work lists by bank with the same fold: a shard
// that owns bank i owns exactly the blocks BankOf maps to i.
func BankOf(addr uint64, banks int) int {
	bn := addr / BlockSize
	h := bn ^ (bn >> 4) ^ (bn >> 9) ^ (bn >> 15) ^ (bn >> 22)
	return int(h % uint64(banks))
}

// bankOf applies BankOf with the controller's bank count.
func (c *Controller) bankOf(addr uint64) int {
	return BankOf(addr, len(c.banks))
}

// BankOf exposes the controller's bank interleaving for work partitioning.
func (c *Controller) BankOf(addr uint64) int { return c.bankOf(addr) }

// Banks returns the number of independent banks.
func (c *Controller) Banks() int { return len(c.banks) }

// Read performs a timed, counted read of the block at addr. The access
// begins no earlier than ready; the returned time is when data is available.
func (c *Controller) Read(ready sim.Time, addr uint64, cat Category) (Block, sim.Time) {
	c.reads.Add(string(cat), 1)
	if c.tl != nil {
		c.tl.SetOp("read", string(cat))
	}
	bank := c.bankOf(addr)
	busStart, busDone := c.bus.Acquire(ready, c.cfg.BusSlot)
	bankStart, done := c.banks[bank].Acquire(busDone, c.cfg.ReadLatency)
	if c.m != nil {
		c.m.counter(c.m.readCtr, "horus_mem_reads_total", cat).Add(1)
		c.m.busWait.Observe(float64(busStart - ready))
		c.m.bankWait.Observe(float64(bankStart - busDone))
		c.m.queueDepth.Observe(float64(bankStart-busDone) / float64(c.cfg.ReadLatency))
	}
	if c.ts != nil {
		c.ts.depth[bank].Record(int64(bankStart), float64(bankStart-busDone)/float64(c.cfg.ReadLatency))
	}
	for _, o := range c.observers {
		o.OnAccess("read", done, addr, string(cat))
	}
	return c.store.ReadBlock(addr), done
}

// Write performs a timed, counted write of b to addr. The returned time is
// when the write is durable in the NVM. With a fault injector installed, the
// issued access is still timed, counted and observed (the command went out on
// the bus), but the content that lands on the medium is the injector's
// faulted view — possibly torn, bit-flipped, or not committed at all.
func (c *Controller) Write(ready sim.Time, addr uint64, b Block, cat Category) sim.Time {
	c.writes.Add(string(cat), 1)
	// One probe serves the whole access: the fused entry carries the wear
	// count and the content slot. Nothing below inserts into the store (the
	// observers and metrics only read), so the pointer stays valid.
	e := c.store.entry(addr)
	e.wear++
	if c.tl != nil {
		c.tl.SetOp("write", string(cat))
	}
	bank := c.bankOf(addr)
	busStart, busDone := c.bus.Acquire(ready, c.cfg.BusSlot)
	bankStart, done := c.banks[bank].Acquire(busDone, c.cfg.WriteLatency)
	if c.m != nil {
		c.m.counter(c.m.writeCtr, "horus_mem_writes_total", cat).Add(1)
		c.m.busWait.Observe(float64(busStart - ready))
		c.m.bankWait.Observe(float64(bankStart - busDone))
		c.m.queueDepth.Observe(float64(bankStart-busDone) / float64(c.cfg.WriteLatency))
	}
	if c.ts != nil {
		c.ts.depth[bank].Record(int64(bankStart), float64(bankStart-busDone)/float64(c.cfg.WriteLatency))
	}
	for _, o := range c.observers {
		o.OnAccess("write", done, addr, string(cat))
	}
	if c.fault != nil {
		if f := c.fault.OnWrite(addr, cat); f.Kind != FaultNone {
			nb, commit := applyFault(f, e.b, b)
			if commit {
				e.b = nb
				if c.recorder != nil {
					c.recorder.OnWriteCommitted(addr, cat, nb)
				}
			}
			return done
		}
	}
	e.b = b
	if c.recorder != nil {
		c.recorder.OnWriteCommitted(addr, cat, b)
	}
	return done
}

// WearStats summarises per-cell write endurance exposure.
type WearStats struct {
	// MaxWrites is the lifetime write count of the most-written block.
	MaxWrites int64
	// HotAddr is that block's address.
	HotAddr uint64
	// TotalWrites is the lifetime write count across all blocks.
	TotalWrites int64
	// UniqueBlocks is how many distinct blocks have ever been written.
	UniqueBlocks int
}

// WearStats computes endurance exposure over the memory's lifetime (wear
// is never reset by ResetStats — cell wear is permanent).
func (c *Controller) WearStats() WearStats {
	var ws WearStats
	c.store.eachWear(func(addr uint64, n int64) {
		if n > ws.MaxWrites || (n == ws.MaxWrites && addr < ws.HotAddr) {
			ws.MaxWrites, ws.HotAddr = n, addr
		}
		ws.TotalWrites += n
		ws.UniqueBlocks++
	})
	return ws
}

// WearOf returns the lifetime write count of one block.
func (c *Controller) WearOf(addr uint64) int64 {
	return c.store.wearOf(addr)
}

// WearInRange returns the maximum and total lifetime writes within
// [lo, hi), e.g. over the CHV region.
func (c *Controller) WearInRange(lo, hi uint64) (max, total int64) {
	c.store.eachWear(func(addr uint64, n int64) {
		if addr >= lo && addr < hi {
			total += n
			if n > max {
				max = n
			}
		}
	})
	return max, total
}

// PeekRead reads functionally without timing or counting. Recovery-time
// integrity checks and tests use it to inspect memory.
func (c *Controller) PeekRead(addr uint64) Block { return c.store.ReadBlock(addr) }

// Reads returns the per-category read counters.
func (c *Controller) Reads() *sim.CounterSet { return c.reads }

// Writes returns the per-category write counters.
func (c *Controller) Writes() *sim.CounterSet { return c.writes }

// TotalReads returns the total number of read accesses.
func (c *Controller) TotalReads() int64 { return c.reads.Total() }

// TotalWrites returns the total number of write accesses.
func (c *Controller) TotalWrites() int64 { return c.writes.Total() }

// TotalAccesses returns reads plus writes.
func (c *Controller) TotalAccesses() int64 { return c.TotalReads() + c.TotalWrites() }

// LastDone returns the latest completion time across all banks, i.e. when
// the memory system has fully drained its accepted requests.
func (c *Controller) LastDone() sim.Time {
	var t sim.Time
	for _, b := range c.banks {
		t = sim.MaxTime(t, b.FreeAt())
	}
	return sim.MaxTime(t, c.bus.FreeAt())
}

// PublishMetrics snapshots per-bank and bus occupancy into the attached
// registry as gauges labelled with the given phase ("run", "drain",
// "recover", ...). window is the phase duration used for utilisation; if
// zero or negative, LastDone() is used. Because timing statistics are reset
// at phase boundaries, each publish describes exactly one phase. No-op when
// no registry is attached.
func (c *Controller) PublishMetrics(phase string, window sim.Time) {
	if c.m == nil {
		return
	}
	if window <= 0 {
		window = c.LastDone()
	}
	reg := c.m.reg
	reg.SetHelp("horus_mem_bank_busy_ps", "Bank occupied time within the phase, picoseconds.")
	reg.SetHelp("horus_mem_bank_utilization", "Bank occupied fraction of the phase window.")
	reg.SetHelp("horus_mem_bank_ops", "Operations served by the bank within the phase.")
	reg.SetHelp("horus_mem_bus_utilization", "Command/data-bus occupied fraction of the phase window.")
	for i, b := range c.banks {
		lbl := append([]string{"bank", strconv.Itoa(i), "phase", phase}, c.m.labels...)
		reg.Gauge("horus_mem_bank_busy_ps", lbl...).Set(float64(b.BusyTime()))
		reg.Gauge("horus_mem_bank_ops", lbl...).Set(float64(b.Ops()))
		if window > 0 {
			reg.Gauge("horus_mem_bank_utilization", lbl...).Set(float64(b.BusyTime()) / float64(window))
		}
	}
	if window > 0 {
		lbl := append([]string{"phase", phase}, c.m.labels...)
		reg.Gauge("horus_mem_bus_utilization", lbl...).Set(float64(c.bus.BusyTime()) / float64(window))
	}
}

// ResetStats clears timing state and counters but preserves memory content.
// It separates the run-time warm-up phase from the measured draining phase.
func (c *Controller) ResetStats() {
	for _, b := range c.banks {
		b.Reset()
	}
	c.bus.Reset()
	c.reads = sim.NewCounterSet()
	c.writes = sim.NewCounterSet()
}
