package mem

// FaultKind selects how a fault corrupts (or suppresses) one NVM write.
type FaultKind int

const (
	// FaultNone leaves the write untouched.
	FaultNone FaultKind = iota
	// FaultDrop silently discards the write: the medium keeps its old
	// content and the controller reports the write as durable. Models a
	// final metadata flush that never reached the NVM.
	FaultDrop
	// FaultTear commits only the first TornBytes bytes of the new block;
	// the rest keeps the old content. Models a torn 64 B write where the
	// persistence domain cut power mid-transfer.
	FaultTear
	// FaultFlip commits the write with one bit flipped (Byte, Mask).
	// Models media corruption of a flushed block/MAC/vault word.
	FaultFlip
	// FaultCut commits nothing — this write and every later write are
	// suppressed, modelling a clean power cut at this persist boundary.
	// The caller's injector is responsible for suppressing the later
	// writes (it keeps returning FaultCut once fired).
	FaultCut
)

// String names the fault kind for reports.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultTear:
		return "tear"
	case FaultFlip:
		return "flip"
	case FaultCut:
		return "cut"
	}
	return "unknown"
}

// Fault describes the corruption to apply to a single write.
type Fault struct {
	Kind      FaultKind
	Byte      int   // FaultFlip: byte offset within the block (mod BlockSize)
	Mask      byte  // FaultFlip: XOR mask; zero masks are promoted to 1
	TornBytes int   // FaultTear: bytes of the new data that land (clamped to [1, BlockSize))
}

// FaultInjector is consulted by the controller on every durable write and at
// every named persist-ordering boundary. Implementations decide, typically by
// counting writes, when and how to corrupt the stream. A nil injector means
// fault-free operation.
//
// The injector lives in this package (rather than in internal/faultinject)
// so that mem has no upward dependencies; faultinject provides the concrete
// crash-plan implementation.
type FaultInjector interface {
	// OnWrite is called once per Write, before the data is committed to
	// the store, with the target address and access category. The
	// returned Fault is applied to this write.
	OnWrite(addr uint64, cat Category) Fault
	// OnStage is called at named persist-ordering boundaries (e.g.
	// "drain:blocks", "drain:meta-flush") so injectors can attribute
	// write steps to pipeline stages.
	OnStage(stage string)
}

// WriteRecorder is an optional extension a FaultInjector may implement to
// observe the content of every write that actually commits to the medium.
// OnWrite fires before the store is touched and never sees data; recorders
// (the litmus epoch recorder) need the committed bytes to replay orderings.
// It is called once per committed write with the post-fault content — for a
// dropped or cut write it is not called at all.
type WriteRecorder interface {
	OnWriteCommitted(addr uint64, cat Category, b Block)
}

// SetFaultInjector installs (or, with nil, removes) the fault injector
// consulted on every subsequent write. If the injector also implements
// WriteRecorder, the controller reports every committed write's content to
// it (the type assertion is cached here, off the per-write hot path).
func (c *Controller) SetFaultInjector(f FaultInjector) {
	c.fault = f
	c.recorder, _ = f.(WriteRecorder)
}

// MarkStage forwards a persist-ordering boundary label to the installed
// fault injector. Drain schemes and the metadata-flush path call it so that
// injected crash points can be attributed to pipeline stages. No-op without
// an injector.
func (c *Controller) MarkStage(stage string) {
	if c.fault != nil {
		c.fault.OnStage(stage)
	}
	if c.tl != nil {
		c.tl.SetStage(stage)
	}
}

// applyFault merges the faulted view of a write into the store. It returns
// false when the store must not be touched at all (drop/cut), and otherwise
// the possibly-corrupted block to commit.
func applyFault(f Fault, old, b Block) (Block, bool) {
	switch f.Kind {
	case FaultDrop, FaultCut:
		return Block{}, false
	case FaultTear:
		n := f.TornBytes
		if n < 1 {
			n = 1
		}
		if n >= BlockSize {
			n = BlockSize - 1
		}
		nb := old
		copy(nb[:n], b[:n])
		return nb, true
	case FaultFlip:
		mask := f.Mask
		if mask == 0 {
			mask = 1
		}
		nb := b
		nb[f.Byte%BlockSize] ^= mask
		return nb, true
	}
	return b, true
}
