package mem

import (
	"math/rand"
	"testing"
)

// TestShardedStoreMatchesSingleShard drives identical random traffic into a
// single-shard store and stores with several shard counts and asserts every
// observable (content, population, ranges, wear bookkeeping via entry) is
// identical — sharding is a layout choice, never a semantics choice.
func TestShardedStoreMatchesSingleShard(t *testing.T) {
	for _, shards := range []int{2, 3, 8, 16} {
		rng := rand.New(rand.NewSource(int64(shards)))
		ref := NewStore()
		s := NewShardedStore(shards)
		if s.Shards() != shards {
			t.Fatalf("Shards() = %d, want %d", s.Shards(), shards)
		}
		addrs := make([]uint64, 0, 512)
		for i := 0; i < 512; i++ {
			addr := uint64(rng.Intn(1<<14)) * BlockSize
			var b Block
			rng.Read(b[:])
			ref.WriteBlock(addr, b)
			s.WriteBlock(addr, b)
			addrs = append(addrs, addr)
			if i%7 == 0 {
				e := s.entry(addr)
				e.wear++
				ref.entry(addr).wear++
			}
		}
		if s.Populated() != ref.Populated() {
			t.Fatalf("shards=%d: Populated %d != %d", shards, s.Populated(), ref.Populated())
		}
		for _, a := range addrs {
			if s.ReadBlock(a) != ref.ReadBlock(a) {
				t.Fatalf("shards=%d: content mismatch at %#x", shards, a)
			}
			if s.wearOf(a) != ref.wearOf(a) {
				t.Fatalf("shards=%d: wear mismatch at %#x", shards, a)
			}
		}
		got := s.AddressesInRange(0, 1<<21)
		want := ref.AddressesInRange(0, 1<<21)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: AddressesInRange count %d != %d", shards, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: AddressesInRange[%d] = %#x, want %#x", shards, i, got[i], want[i])
			}
		}
	}
}

// TestShardPartitionFollowsBankOf pins the ownership rule of the sharded
// store: the shard holding an address is exactly BankOf(addr, shards), so a
// drain worker owning bank i touches no other worker's shard.
func TestShardPartitionFollowsBankOf(t *testing.T) {
	const shards = 16
	s := NewShardedStore(shards)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2048; i++ {
		addr := uint64(rng.Intn(1<<16)) * BlockSize
		var b Block
		rng.Read(b[:])
		s.WriteBlock(addr, b)
	}
	for i := range s.shards {
		s.shards[i].each(func(a uint64, _ storeEntry) {
			if BankOf(a, shards) != i {
				t.Fatalf("address %#x stored in shard %d, owned by bank %d", a, i, BankOf(a, shards))
			}
		})
	}
}

// TestControllerWearThroughFusedEntries pins that the fused store entry
// reproduces the former separate wear table: timed writes wear, functional
// writes do not, resets preserve wear, and the stats filter zero-wear
// entries out of UniqueBlocks.
func TestControllerWearThroughFusedEntries(t *testing.T) {
	c := NewController(DefaultConfig())
	var b Block
	b[0] = 0xAB
	c.Write(0, 0, b, CatData)
	c.Write(0, 0, b, CatData)
	c.Write(0, 64, b, CatData)
	c.Store().WriteBlock(128, b) // functional write: populated but no wear

	if got := c.WearOf(0); got != 2 {
		t.Fatalf("WearOf(0) = %d, want 2", got)
	}
	ws := c.WearStats()
	if ws.UniqueBlocks != 2 {
		t.Fatalf("UniqueBlocks = %d, want 2 (functional writes must not count)", ws.UniqueBlocks)
	}
	if ws.TotalWrites != 3 || ws.MaxWrites != 2 || ws.HotAddr != 0 {
		t.Fatalf("WearStats = %+v, want total 3, max 2 at 0", ws)
	}
	c.ResetStats()
	if got := c.WearOf(0); got != 2 {
		t.Fatalf("wear reset by ResetStats: WearOf(0) = %d, want 2", got)
	}
	if c.Store().Populated() != 3 {
		t.Fatalf("Populated = %d, want 3", c.Store().Populated())
	}
}

// TestBankOfExportedMatchesController pins that the exported partitioning
// fold and the controller's internal bank routing agree — the property the
// per-bank work-list partition relies on.
func TestBankOfExportedMatchesController(t *testing.T) {
	c := NewController(DefaultConfig())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4096; i++ {
		addr := uint64(rng.Intn(1<<20)) * BlockSize
		if c.BankOf(addr) != BankOf(addr, c.Banks()) {
			t.Fatalf("Controller.BankOf(%#x) != BankOf(addr, %d)", addr, c.Banks())
		}
	}
}
