package mem

import (
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/obs"
	"repro/internal/sim"
)

func TestStoreZeroDefault(t *testing.T) {
	s := NewStore()
	b := s.ReadBlock(0x1000)
	if !b.IsZero() {
		t.Error("unwritten block should read as zero")
	}
	if s.Populated() != 0 {
		t.Error("read must not populate the store")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s := NewStore()
	var b Block
	for i := range b {
		b[i] = byte(i * 3)
	}
	s.WriteBlock(0x40, b)
	if got := s.ReadBlock(0x40); got != b {
		t.Error("round trip mismatch")
	}
	if s.Populated() != 1 {
		t.Errorf("Populated = %d, want 1", s.Populated())
	}
}

func TestStoreUnalignedPanics(t *testing.T) {
	s := NewStore()
	defer func() {
		if recover() == nil {
			t.Error("unaligned access did not panic")
		}
	}()
	s.ReadBlock(0x41)
}

func TestStoreSnapshotIndependence(t *testing.T) {
	s := NewStore()
	s.WriteBlock(0, Block{1})
	snap := s.Snapshot()
	s.WriteBlock(0, Block{2})
	if snap.ReadBlock(0)[0] != 1 {
		t.Error("snapshot was mutated by a later write")
	}
}

func TestStoreCorruptByte(t *testing.T) {
	s := NewStore()
	s.WriteBlock(0, Block{0: 0xF0})
	old := s.CorruptByte(0, 0, 0x01)
	if old[0] != 0xF0 {
		t.Errorf("CorruptByte returned %#x, want old value 0xF0", old[0])
	}
	if got := s.ReadBlock(0)[0]; got != 0xF1 {
		t.Errorf("corrupted byte = %#x, want 0xF1", got)
	}
}

func TestBlockIsZero(t *testing.T) {
	var b Block
	if !b.IsZero() {
		t.Error("zero block not recognised")
	}
	b[63] = 1
	if b.IsZero() {
		t.Error("nonzero block reported zero")
	}
}

func TestControllerFunctionalRoundTrip(t *testing.T) {
	c := NewController(DefaultConfig())
	var b Block
	b[0] = 0xAB
	done := c.Write(0, 0x1000, b, CatData)
	if done <= 0 {
		t.Fatal("write completion time must be positive")
	}
	got, _ := c.Read(done, 0x1000, CatData)
	if got != b {
		t.Error("controller read returned wrong data")
	}
}

func TestControllerTiming(t *testing.T) {
	cfg := Config{Banks: 1, ReadLatency: 150 * sim.Nanosecond, WriteLatency: 500 * sim.Nanosecond, BusSlot: 5 * sim.Nanosecond}
	c := NewController(cfg)
	// Single bank: two writes serialise on the bank.
	d1 := c.Write(0, 0, Block{}, CatData)
	if d1 != 505*sim.Nanosecond {
		t.Fatalf("first write done = %v, want 505ns", d1)
	}
	d2 := c.Write(0, 64, Block{}, CatData)
	if d2 != 1005*sim.Nanosecond {
		t.Fatalf("second write done = %v, want 1005ns (bank conflict)", d2)
	}
}

func TestControllerBankParallelism(t *testing.T) {
	cfg := DefaultConfig()
	c := NewController(cfg)
	// Issue as many writes as banks to distinct banks: they should overlap,
	// so total drain time is far below the serialised sum.
	n := cfg.Banks
	seen := make(map[int]bool)
	addr := uint64(0)
	issued := 0
	for issued < n && addr < 1<<30 {
		bk := c.bankOf(addr)
		if !seen[bk] {
			seen[bk] = true
			c.Write(0, addr, Block{}, CatData)
			issued++
		}
		addr += BlockSize
	}
	if issued != n {
		t.Fatalf("could not find %d distinct banks", n)
	}
	serialised := sim.Time(n) * cfg.WriteLatency
	if c.LastDone() >= serialised {
		t.Errorf("LastDone = %v, want < serialised %v (banks must overlap)", c.LastDone(), serialised)
	}
}

func TestControllerStridedAccessesSpreadAcrossBanks(t *testing.T) {
	// The paper's worst-case fill uses a 16 KB stride; the bank hash must
	// still spread such accesses over many banks.
	c := NewController(DefaultConfig())
	banks := make(map[int]int)
	const stride = 16 * 1024
	for i := 0; i < 1024; i++ {
		banks[c.bankOf(uint64(i)*stride)]++
	}
	if len(banks) < c.cfg.Banks/2 {
		t.Errorf("16KB-strided accesses hit only %d/%d banks", len(banks), c.cfg.Banks)
	}
}

func TestControllerCounting(t *testing.T) {
	c := NewController(DefaultConfig())
	c.Write(0, 0, Block{}, CatData)
	c.Write(0, 64, Block{}, CatCounter)
	c.Write(0, 128, Block{}, CatData)
	c.Read(0, 0, CatTree)
	if c.Writes().Get(string(CatData)) != 2 {
		t.Errorf("data writes = %d, want 2", c.Writes().Get(string(CatData)))
	}
	if c.Writes().Get(string(CatCounter)) != 1 {
		t.Error("counter writes wrong")
	}
	if c.TotalReads() != 1 || c.TotalWrites() != 3 || c.TotalAccesses() != 4 {
		t.Error("totals wrong")
	}
}

func TestControllerResetStatsPreservesContent(t *testing.T) {
	c := NewController(DefaultConfig())
	c.Write(0, 0, Block{0: 7}, CatData)
	c.ResetStats()
	if c.TotalAccesses() != 0 {
		t.Error("ResetStats did not clear counters")
	}
	if c.LastDone() != 0 {
		t.Error("ResetStats did not clear timing")
	}
	if c.PeekRead(0)[0] != 7 {
		t.Error("ResetStats lost memory content")
	}
}

func TestControllerZeroBanksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero banks did not panic")
		}
	}()
	NewController(Config{Banks: 0})
}

// orderObserver records the order it was called in, shared across observers.
type orderObserver struct {
	id  int
	log *[]int
}

func (o *orderObserver) OnAccess(kind string, done sim.Time, addr uint64, category string) {
	*o.log = append(*o.log, o.id)
}

func TestObserverFanOutOrdering(t *testing.T) {
	c := NewController(DefaultConfig())
	var log []int
	c.AddObserver(&orderObserver{1, &log})
	c.AddObserver(&orderObserver{2, &log})
	c.AddObserver(&orderObserver{3, &log})
	c.AddObserver(nil) // ignored
	c.Write(0, 0, Block{}, CatData)
	c.Read(0, 0, CatData)
	want := []int{1, 2, 3, 1, 2, 3}
	if len(log) != len(want) {
		t.Fatalf("fan-out calls = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("fan-out order = %v, want registration order %v", log, want)
		}
	}
}

// scriptInjector returns a fixed fault for one write index and records the
// stages it saw.
type scriptInjector struct {
	n      int
	at     int
	fault  Fault
	stages []string
}

func (s *scriptInjector) OnWrite(addr uint64, cat Category) Fault {
	idx := s.n
	s.n++
	if idx == s.at {
		return s.fault
	}
	if s.fault.Kind == FaultCut && idx > s.at {
		return s.fault // a cut suppresses everything after it, too
	}
	return Fault{}
}

func (s *scriptInjector) OnStage(stage string) { s.stages = append(s.stages, stage) }

func TestFaultInjectorApplication(t *testing.T) {
	pat := func(v byte) Block {
		var b Block
		for i := range b {
			b[i] = v
		}
		return b
	}
	old, new1, new2 := pat(0xAA), pat(0x11), pat(0x22)

	t.Run("drop keeps old content", func(t *testing.T) {
		c := NewController(DefaultConfig())
		c.Write(0, 0, old, CatData)
		c.SetFaultInjector(&scriptInjector{at: 0, fault: Fault{Kind: FaultDrop}})
		c.Write(0, 0, new1, CatData)
		if got := c.PeekRead(0); got != old {
			t.Fatalf("dropped write changed content: got %x", got[0])
		}
		if c.TotalWrites() != 2 {
			t.Fatalf("writes = %d, want 2 (the dropped write is still issued)", c.TotalWrites())
		}
	})

	t.Run("tear mixes new prefix with old suffix", func(t *testing.T) {
		c := NewController(DefaultConfig())
		c.Write(0, 0, old, CatData)
		c.SetFaultInjector(&scriptInjector{at: 0, fault: Fault{Kind: FaultTear, TornBytes: 8}})
		c.Write(0, 0, new1, CatData)
		got := c.PeekRead(0)
		for i := 0; i < 8; i++ {
			if got[i] != new1[i] {
				t.Fatalf("byte %d = %x, want new %x", i, got[i], new1[i])
			}
		}
		for i := 8; i < BlockSize; i++ {
			if got[i] != old[i] {
				t.Fatalf("byte %d = %x, want old %x", i, got[i], old[i])
			}
		}
	})

	t.Run("flip toggles exactly one bit", func(t *testing.T) {
		c := NewController(DefaultConfig())
		c.SetFaultInjector(&scriptInjector{at: 0, fault: Fault{Kind: FaultFlip, Byte: 5, Mask: 0x40}})
		c.Write(0, 0, new1, CatData)
		got := c.PeekRead(0)
		want := new1
		want[5] ^= 0x40
		if got != want {
			t.Fatalf("flip result = %x, want %x", got, want)
		}
	})

	t.Run("cut suppresses this and all later writes", func(t *testing.T) {
		c := NewController(DefaultConfig())
		c.Write(0, 0, old, CatData)
		c.Write(0, 64, old, CatData)
		c.SetFaultInjector(&scriptInjector{at: 0, fault: Fault{Kind: FaultCut}})
		c.Write(0, 0, new1, CatData)
		c.Write(0, 64, new2, CatData)
		if got := c.PeekRead(0); got != old {
			t.Fatalf("cut write 0 landed: got %x", got[0])
		}
		if got := c.PeekRead(64); got != old {
			t.Fatalf("post-cut write landed: got %x", got[0])
		}
	})

	t.Run("nil injector and FaultNone are transparent", func(t *testing.T) {
		c := NewController(DefaultConfig())
		c.Write(0, 0, old, CatData)
		inj := &scriptInjector{at: 99} // never fires
		c.SetFaultInjector(inj)
		c.Write(0, 0, new1, CatData)
		c.SetFaultInjector(nil)
		c.Write(0, 64, new2, CatData)
		if c.PeekRead(0) != new1 || c.PeekRead(64) != new2 {
			t.Fatal("fault-free writes did not commit")
		}
	})
}

func TestMarkStageForwarding(t *testing.T) {
	c := NewController(DefaultConfig())
	c.MarkStage("ignored-without-injector") // no-op, must not panic
	inj := &scriptInjector{at: 99}
	c.SetFaultInjector(inj)
	c.MarkStage("drain:blocks")
	c.MarkStage("drain:meta-flush")
	if len(inj.stages) != 2 || inj.stages[0] != "drain:blocks" || inj.stages[1] != "drain:meta-flush" {
		t.Fatalf("stages = %v", inj.stages)
	}
}

func TestControllerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewController(DefaultConfig())
	c.SetMetrics(reg, "scheme", "test")
	c.Write(0, 0, Block{}, CatData)
	c.Write(0, 64, Block{}, CatCounter)
	c.Read(0, 0, CatData)
	if got := reg.Counter("horus_mem_writes_total", "category", "data", "scheme", "test").Value(); got != 1 {
		t.Errorf("data write counter = %d, want 1", got)
	}
	if got := reg.Counter("horus_mem_reads_total", "category", "data", "scheme", "test").Value(); got != 1 {
		t.Errorf("data read counter = %d, want 1", got)
	}
	if got := reg.Histogram("horus_mem_bank_wait_ps", nil, "scheme", "test").Count(); got != 3 {
		t.Errorf("bank wait observations = %d, want 3", got)
	}
	c.PublishMetrics("drain", c.LastDone())
	found := false
	for i := 0; i < c.Config().Banks; i++ {
		g := reg.Gauge("horus_mem_bank_utilization", "bank", strconv.Itoa(i), "phase", "drain", "scheme", "test")
		if g.Value() > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no bank reported positive utilization after PublishMetrics")
	}
	// Detaching stops recording without touching prior series.
	c.SetMetrics(nil)
	c.Write(0, 128, Block{}, CatData)
	if got := reg.Counter("horus_mem_writes_total", "category", "data", "scheme", "test").Value(); got != 1 {
		t.Errorf("detached controller still recorded: %d", got)
	}
}

// Property: any sequence of writes followed by reads at the same addresses
// returns the last written values (functional memory consistency).
func TestControllerWriteReadProperty(t *testing.T) {
	f := func(addrs []uint16, vals []byte) bool {
		c := NewController(Config{Banks: 4, ReadLatency: 1, WriteLatency: 1, BusSlot: 1})
		want := make(map[uint64]byte)
		n := len(addrs)
		if len(vals) < n {
			n = len(vals)
		}
		var now sim.Time
		for i := 0; i < n; i++ {
			a := uint64(addrs[i]) * BlockSize
			now = c.Write(now, a, Block{0: vals[i]}, CatData)
			want[a] = vals[i]
		}
		for a, v := range want {
			got, done := c.Read(now, a, CatData)
			now = done
			if got[0] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
