// Package bmt defines the physical layout of the secure-memory metadata:
// the encryption-counter region, the data-MAC region, the Bonsai Merkle
// Tree (BMT) levels protecting the counters, the cache-hierarchy vault
// (CHV) Horus drains into, and the metadata-cache vault used for
// Anubis-style metadata flushing.
//
// The package is pure address arithmetic: given a 64-byte-aligned data
// address it locates the counter block, MAC block and tree nodes that
// protect it, and maps metadata addresses back to their (level, index)
// coordinates so eviction handlers can find parents. All memory traffic and
// verification logic lives in package secmem.
//
// Tree shape: level 0 is the counter blocks (one per 4 KB of data). Each
// level above groups 8 children per 64-byte node holding eight 8-byte MACs.
// The topmost single node is the root, held in an on-chip persistent
// register and never stored in memory. For the paper's 32 GB memory this
// yields 8 Mi counter blocks and a root 9 levels up, matching Table I's
// "10-level 8-ary Merkle Tree over NVM" (counting the counter level).
package bmt

import "fmt"

const (
	// BlockSize is the metadata block granularity (one cache line).
	BlockSize = 64
	// Arity is the fan-out of the integrity tree.
	Arity = 8
	// CounterCoverage is the data bytes covered by one counter block.
	CounterCoverage = 4096
	// MACCoverage is the data bytes covered by one MAC block
	// (8 data blocks x 8-byte MACs per 64-byte MAC block).
	MACCoverage = 512
)

// Region identifies which part of the physical address space an address
// falls in.
type Region int

// Region values.
const (
	RegionData Region = iota
	RegionCounter
	RegionMAC
	RegionTree
	RegionCHVData
	RegionCHVAddr
	RegionCHVMAC
	RegionVault
	RegionUnknown
)

var regionNames = map[Region]string{
	RegionData: "data", RegionCounter: "counter", RegionMAC: "mac",
	RegionTree: "tree", RegionCHVData: "chv-data", RegionCHVAddr: "chv-addr",
	RegionCHVMAC: "chv-mac", RegionVault: "vault", RegionUnknown: "unknown",
}

// String returns the region name.
func (r Region) String() string { return regionNames[r] }

// Layout is the computed address map. All bases are 64-byte aligned.
type Layout struct {
	DataSize uint64 // protected data region is [0, DataSize)

	NumCounterBlocks uint64
	CounterBase      uint64
	MACBase          uint64
	MACBytes         uint64

	// LevelCount[l] is the number of nodes at level l; LevelCount[0] is the
	// counter-block count. The last level has exactly one node (the root).
	LevelCount []uint64
	// LevelBase[l] is the memory base of level l's nodes for 1 <= l <
	// RootLevel. LevelBase[0] aliases CounterBase. The root has no memory
	// address.
	LevelBase []uint64

	// CHV: the cache hierarchy vault. Data, address and MAC areas sized for
	// CHVCapacity drained blocks per region, times CHVRegions rotation
	// regions (wear levelling: successive draining episodes can rotate
	// across regions so CHV cells wear CHVRegions times slower).
	CHVCapacity uint64
	CHVRegions  uint64
	CHVDataBase uint64
	CHVAddrBase uint64
	CHVMACBase  uint64

	// Vault: reserved region for the metadata-cache flush (Anubis-style).
	VaultBase   uint64
	VaultBlocks uint64

	End uint64 // first address past all regions
}

// Config parameterises a layout.
type Config struct {
	DataSize    uint64 // bytes of protected data; multiple of CounterCoverage
	CHVCapacity uint64 // worst-case number of drained cache blocks
	CHVRegions  uint64 // CHV rotation regions for wear levelling (0 = 1)
	VaultBlocks uint64 // capacity of the metadata-cache vault in blocks
}

// NewLayout computes the address map for the given configuration.
func NewLayout(cfg Config) *Layout {
	if cfg.DataSize == 0 || cfg.DataSize%CounterCoverage != 0 {
		panic(fmt.Sprintf("bmt: data size %d must be a positive multiple of %d", cfg.DataSize, CounterCoverage))
	}
	l := &Layout{
		DataSize:    cfg.DataSize,
		CHVCapacity: cfg.CHVCapacity,
		VaultBlocks: cfg.VaultBlocks,
	}
	l.NumCounterBlocks = cfg.DataSize / CounterCoverage

	next := cfg.DataSize // metadata regions start right after the data
	l.CounterBase = next
	next += l.NumCounterBlocks * BlockSize

	l.MACBase = next
	l.MACBytes = cfg.DataSize / MACCoverage * BlockSize
	next += l.MACBytes

	// Tree levels.
	l.LevelCount = []uint64{l.NumCounterBlocks}
	l.LevelBase = []uint64{l.CounterBase}
	n := l.NumCounterBlocks
	for n > 1 {
		n = (n + Arity - 1) / Arity
		l.LevelCount = append(l.LevelCount, n)
		if n > 1 {
			l.LevelBase = append(l.LevelBase, next)
			next += n * BlockSize
		} else {
			l.LevelBase = append(l.LevelBase, 0) // root: on-chip, no address
		}
	}

	// CHV areas.
	l.CHVRegions = cfg.CHVRegions
	if l.CHVRegions == 0 {
		l.CHVRegions = 1
	}
	l.CHVDataBase = next
	next += cfg.CHVCapacity * BlockSize * l.CHVRegions
	l.CHVAddrBase = next
	next += ceilDiv(cfg.CHVCapacity, 8) * BlockSize * l.CHVRegions
	l.CHVMACBase = next
	next += ceilDiv(cfg.CHVCapacity, 8) * BlockSize * l.CHVRegions // SLM worst case; DLM uses less

	l.VaultBase = next
	next += cfg.VaultBlocks * BlockSize

	l.End = next
	return l
}

func ceilDiv(a, b uint64) uint64 { return (a + b - 1) / b }

// RootLevel returns the level number of the on-chip root.
func (l *Layout) RootLevel() int { return len(l.LevelCount) - 1 }

// Levels returns the total number of levels including counters and root.
func (l *Layout) Levels() int { return len(l.LevelCount) }

// CounterBlockIndex returns the level-0 index of the counter block covering
// dataAddr.
func (l *Layout) CounterBlockIndex(dataAddr uint64) uint64 {
	l.checkData(dataAddr)
	return dataAddr / CounterCoverage
}

// CounterBlockAddr returns the memory address of the counter block covering
// dataAddr.
func (l *Layout) CounterBlockAddr(dataAddr uint64) uint64 {
	return l.CounterBase + l.CounterBlockIndex(dataAddr)*BlockSize
}

// MACBlockAddr returns the memory address of the MAC block covering dataAddr.
func (l *Layout) MACBlockAddr(dataAddr uint64) uint64 {
	l.checkData(dataAddr)
	return l.MACBase + dataAddr/MACCoverage*BlockSize
}

// NodeAddr returns the memory address of tree node (level, index). The root
// level has no memory address; asking for it panics.
func (l *Layout) NodeAddr(level int, index uint64) uint64 {
	if level < 0 || level >= l.RootLevel() {
		panic(fmt.Sprintf("bmt: NodeAddr level %d out of stored range [0,%d)", level, l.RootLevel()))
	}
	if index >= l.LevelCount[level] {
		panic(fmt.Sprintf("bmt: node index %d out of range at level %d", index, level))
	}
	return l.LevelBase[level] + index*BlockSize
}

// Parent returns the (level, index) of the parent of node (level, index) and
// the child's slot (0..7) within the parent.
func (l *Layout) Parent(level int, index uint64) (pLevel int, pIndex uint64, slot int) {
	if level >= l.RootLevel() {
		panic("bmt: the root has no parent")
	}
	return level + 1, index / Arity, int(index % Arity)
}

// Coord maps a metadata memory address back to its (level, index), where
// level 0 means a counter block. ok is false if addr is not a stored tree or
// counter address.
func (l *Layout) Coord(addr uint64) (level int, index uint64, ok bool) {
	for lv := 0; lv < l.RootLevel(); lv++ {
		base := l.LevelBase[lv]
		size := l.LevelCount[lv] * BlockSize
		if addr >= base && addr < base+size {
			return lv, (addr - base) / BlockSize, true
		}
	}
	return 0, 0, false
}

// CHVDataAddr returns the address of the i-th drained block's data slot in
// rotation region 0.
func (l *Layout) CHVDataAddr(i uint64) uint64 { return l.CHVDataAddrR(0, i) }

// CHVDataAddrR returns the address of the i-th drained block's data slot in
// the given rotation region.
func (l *Layout) CHVDataAddrR(region, i uint64) uint64 {
	l.checkCHV(region, i)
	return l.CHVDataBase + region*l.CHVCapacity*BlockSize + i*BlockSize
}

// CHVAddrBlockAddr returns the address of the address block holding slot i's
// original address (8 addresses per 64-byte block) and the slot within it,
// in rotation region 0.
func (l *Layout) CHVAddrBlockAddr(i uint64) (addr uint64, slot int) {
	return l.CHVAddrBlockAddrR(0, i)
}

// CHVAddrBlockAddrR is the rotation-region-aware form of CHVAddrBlockAddr.
func (l *Layout) CHVAddrBlockAddrR(region, i uint64) (addr uint64, slot int) {
	l.checkCHV(region, i)
	area := ceilDiv(l.CHVCapacity, 8) * BlockSize
	return l.CHVAddrBase + region*area + (i/8)*BlockSize, int(i % 8)
}

// CHVMACBlockAddr returns the address of the MAC block for slot i under the
// single-level MAC scheme (one 8-byte MAC per drained block, 8 per block),
// in rotation region 0.
func (l *Layout) CHVMACBlockAddr(i uint64) (addr uint64, slot int) {
	return l.CHVMACBlockAddrR(0, i)
}

// CHVMACBlockAddrR is the rotation-region-aware form of CHVMACBlockAddr.
func (l *Layout) CHVMACBlockAddrR(region, i uint64) (addr uint64, slot int) {
	l.checkCHV(region, i)
	area := ceilDiv(l.CHVCapacity, 8) * BlockSize
	return l.CHVMACBase + region*area + (i/8)*BlockSize, int(i % 8)
}

// CHVMACBlockAddrDLM returns the MAC-block address for slot i under the
// double-level MAC scheme (one 8-byte second-level MAC per 8 drained blocks,
// so one 64-byte MAC block per 64 drained blocks), in rotation region 0.
func (l *Layout) CHVMACBlockAddrDLM(i uint64) (addr uint64, slot int) {
	return l.CHVMACBlockAddrDLMR(0, i)
}

// CHVMACBlockAddrDLMR is the rotation-region-aware form of
// CHVMACBlockAddrDLM.
func (l *Layout) CHVMACBlockAddrDLMR(region, i uint64) (addr uint64, slot int) {
	l.checkCHV(region, i)
	area := ceilDiv(l.CHVCapacity, 8) * BlockSize
	return l.CHVMACBase + region*area + (i/64)*BlockSize, int((i / 8) % 8)
}

// VaultAddr returns the address of the i-th block in the metadata-cache
// vault.
func (l *Layout) VaultAddr(i uint64) uint64 {
	if i >= l.VaultBlocks {
		panic(fmt.Sprintf("bmt: vault index %d out of range %d", i, l.VaultBlocks))
	}
	return l.VaultBase + i*BlockSize
}

// RegionOf classifies an address.
func (l *Layout) RegionOf(addr uint64) Region {
	switch {
	case addr < l.DataSize:
		return RegionData
	case addr >= l.CounterBase && addr < l.CounterBase+l.NumCounterBlocks*BlockSize:
		return RegionCounter
	case addr >= l.MACBase && addr < l.MACBase+l.MACBytes:
		return RegionMAC
	case addr >= l.CHVDataBase && addr < l.CHVAddrBase:
		return RegionCHVData
	case addr >= l.CHVAddrBase && addr < l.CHVMACBase:
		return RegionCHVAddr
	case addr >= l.CHVMACBase && addr < l.VaultBase:
		return RegionCHVMAC
	case addr >= l.VaultBase && addr < l.End:
		return RegionVault
	}
	if _, _, ok := l.Coord(addr); ok {
		return RegionTree
	}
	return RegionUnknown
}

func (l *Layout) checkData(addr uint64) {
	if addr >= l.DataSize {
		panic(fmt.Sprintf("bmt: address %#x outside data region [0,%#x)", addr, l.DataSize))
	}
}

func (l *Layout) checkCHV(region, i uint64) {
	if i >= l.CHVCapacity {
		panic(fmt.Sprintf("bmt: CHV slot %d out of capacity %d", i, l.CHVCapacity))
	}
	if region >= l.CHVRegions {
		panic(fmt.Sprintf("bmt: CHV region %d out of %d rotation regions", region, l.CHVRegions))
	}
}
