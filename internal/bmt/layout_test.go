package bmt

import (
	"testing"
	"testing/quick"
)

func paperLayout() *Layout {
	return NewLayout(Config{
		DataSize:    32 << 30, // 32 GB (Table I)
		CHVCapacity: 400000,
		VaultBlocks: 32768,
	})
}

func TestPaperTreeShape(t *testing.T) {
	l := paperLayout()
	if l.NumCounterBlocks != 8<<20 {
		t.Fatalf("counter blocks = %d, want 8Mi", l.NumCounterBlocks)
	}
	// 8Mi leaves -> 1Mi -> 128Ki -> 16Ki -> 2Ki -> 256 -> 32 -> 4 -> 1:
	// 9 levels counting the counter level, root at level 8.
	if l.Levels() != 9 {
		t.Errorf("levels = %d, want 9", l.Levels())
	}
	if l.RootLevel() != 8 {
		t.Errorf("root level = %d, want 8", l.RootLevel())
	}
	if l.LevelCount[l.RootLevel()] != 1 {
		t.Error("root level must have exactly one node")
	}
	want := []uint64{8 << 20, 1 << 20, 128 << 10, 16 << 10, 2 << 10, 256, 32, 4, 1}
	for i, w := range want {
		if l.LevelCount[i] != w {
			t.Errorf("level %d count = %d, want %d", i, l.LevelCount[i], w)
		}
	}
}

func TestNonPowerOfEightTree(t *testing.T) {
	// 10 counter blocks: 10 -> 2 -> 1.
	l := NewLayout(Config{DataSize: 10 * CounterCoverage, CHVCapacity: 16, VaultBlocks: 8})
	if got := l.LevelCount; len(got) != 3 || got[0] != 10 || got[1] != 2 || got[2] != 1 {
		t.Errorf("level counts = %v, want [10 2 1]", got)
	}
}

func TestCounterAndMACAddressing(t *testing.T) {
	l := paperLayout()
	if l.CounterBlockIndex(0) != 0 || l.CounterBlockIndex(4095) != 0 || l.CounterBlockIndex(4096) != 1 {
		t.Error("CounterBlockIndex mapping wrong")
	}
	if l.CounterBlockAddr(0) != l.CounterBase {
		t.Error("first counter block must sit at CounterBase")
	}
	if l.CounterBlockAddr(4096) != l.CounterBase+64 {
		t.Error("counter blocks must be 64B apart")
	}
	if l.MACBlockAddr(0) != l.MACBase || l.MACBlockAddr(512) != l.MACBase+64 {
		t.Error("MAC block addressing wrong")
	}
	// Two data blocks in the same 512B region share a MAC block.
	if l.MACBlockAddr(64) != l.MACBlockAddr(0) {
		t.Error("adjacent data blocks must share a MAC block")
	}
}

func TestRegionsDisjointAndClassified(t *testing.T) {
	l := paperLayout()
	// Bases must be strictly increasing and aligned.
	bases := []uint64{l.CounterBase, l.MACBase, l.CHVDataBase, l.CHVAddrBase, l.CHVMACBase, l.VaultBase, l.End}
	for i := 1; i < len(bases); i++ {
		if bases[i] <= bases[i-1] {
			t.Fatalf("region bases not increasing: %v", bases)
		}
	}
	for _, b := range bases {
		if b%64 != 0 {
			t.Errorf("base %#x not 64B aligned", b)
		}
	}
	cases := []struct {
		addr uint64
		want Region
	}{
		{0, RegionData},
		{l.DataSize - 64, RegionData},
		{l.CounterBase, RegionCounter},
		{l.MACBase, RegionMAC},
		{l.NodeAddr(1, 0), RegionTree},
		{l.CHVDataBase, RegionCHVData},
		{l.CHVAddrBase, RegionCHVAddr},
		{l.CHVMACBase, RegionCHVMAC},
		{l.VaultBase, RegionVault},
		{l.End, RegionUnknown},
	}
	for _, c := range cases {
		if got := l.RegionOf(c.addr); got != c.want {
			t.Errorf("RegionOf(%#x) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestParentChildMath(t *testing.T) {
	l := paperLayout()
	pl, pi, slot := l.Parent(0, 17)
	if pl != 1 || pi != 2 || slot != 1 {
		t.Errorf("Parent(0,17) = (%d,%d,%d), want (1,2,1)", pl, pi, slot)
	}
	// Walking up from any leaf reaches the root in RootLevel steps.
	level, idx := 0, uint64(l.NumCounterBlocks-1)
	steps := 0
	for level < l.RootLevel() {
		level, idx, _ = l.Parent(level, idx)
		steps++
	}
	if idx != 0 || steps != l.RootLevel() {
		t.Errorf("walk reached (%d,%d) in %d steps", level, idx, steps)
	}
}

func TestCoordRoundTrip(t *testing.T) {
	l := paperLayout()
	for _, c := range []struct {
		level int
		index uint64
	}{{0, 0}, {0, 12345}, {1, 7}, {3, 1000}, {7, 3}} {
		addr := l.NodeAddr(c.level, c.index)
		lv, idx, ok := l.Coord(addr)
		if !ok || lv != c.level || idx != c.index {
			t.Errorf("Coord(NodeAddr(%d,%d)) = (%d,%d,%v)", c.level, c.index, lv, idx, ok)
		}
	}
	if _, _, ok := l.Coord(0); ok {
		t.Error("Coord of a data address must fail")
	}
	if _, _, ok := l.Coord(l.CHVDataBase); ok {
		t.Error("Coord of a CHV address must fail")
	}
}

// Property: Coord is the inverse of NodeAddr for all stored levels.
func TestCoordInverseProperty(t *testing.T) {
	l := NewLayout(Config{DataSize: 1 << 24, CHVCapacity: 64, VaultBlocks: 8})
	f := func(lvRaw uint8, idxRaw uint32) bool {
		lv := int(lvRaw) % l.RootLevel()
		idx := uint64(idxRaw) % l.LevelCount[lv]
		gl, gi, ok := l.Coord(l.NodeAddr(lv, idx))
		return ok && gl == lv && gi == idx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCHVAddressing(t *testing.T) {
	l := paperLayout()
	if l.CHVDataAddr(0) != l.CHVDataBase || l.CHVDataAddr(1) != l.CHVDataBase+64 {
		t.Error("CHV data slots must be contiguous blocks")
	}
	a0, s0 := l.CHVAddrBlockAddr(0)
	a7, s7 := l.CHVAddrBlockAddr(7)
	a8, s8 := l.CHVAddrBlockAddr(8)
	if a0 != a7 || s0 != 0 || s7 != 7 {
		t.Error("first 8 CHV slots must share one address block")
	}
	if a8 != a0+64 || s8 != 0 {
		t.Error("slot 8 must start the next address block")
	}
	m0, ms0 := l.CHVMACBlockAddr(0)
	m8, _ := l.CHVMACBlockAddr(8)
	if m0 == m8 || ms0 != 0 {
		t.Error("SLM: 8 slots per MAC block")
	}
	// DLM: 64 slots per MAC block, slot index advances every 8 blocks.
	d0, dls0 := l.CHVMACBlockAddrDLM(0)
	d63, dls63 := l.CHVMACBlockAddrDLM(63)
	d64, _ := l.CHVMACBlockAddrDLM(64)
	if d0 != d63 || dls0 != 0 || dls63 != 7 {
		t.Error("DLM: 64 slots must share one MAC block")
	}
	if d64 != d0+64 {
		t.Error("DLM: slot 64 must start the next MAC block")
	}
}

func TestCHVRotationRegions(t *testing.T) {
	l := NewLayout(Config{
		DataSize:    1 << 24,
		CHVCapacity: 100,
		CHVRegions:  3,
		VaultBlocks: 8,
	})
	if l.CHVRegions != 3 {
		t.Fatalf("regions = %d", l.CHVRegions)
	}
	// Regions are contiguous, disjoint, capacity apart within each area.
	if l.CHVDataAddrR(1, 0) != l.CHVDataAddrR(0, 0)+100*BlockSize {
		t.Error("data regions not capacity-spaced")
	}
	if l.CHVDataAddrR(2, 99) >= l.CHVAddrBase {
		t.Error("data region 2 overflows into the address area")
	}
	a0, _ := l.CHVAddrBlockAddrR(0, 0)
	a1, _ := l.CHVAddrBlockAddrR(1, 0)
	if a1 != a0+13*BlockSize { // ceil(100/8)=13 blocks per region
		t.Errorf("addr regions spaced %d blocks apart, want 13", (a1-a0)/BlockSize)
	}
	m2, _ := l.CHVMACBlockAddrR(2, 99)
	if m2 >= l.VaultBase {
		t.Error("MAC region 2 overflows into the vault")
	}
	// DLM addressing stays inside its region too.
	d2, _ := l.CHVMACBlockAddrDLMR(2, 99)
	if d2 < l.CHVMACBase || d2 >= l.VaultBase {
		t.Error("DLM MAC address outside the MAC area")
	}
	// Region-0 convenience wrappers agree with the R forms.
	if l.CHVDataAddr(5) != l.CHVDataAddrR(0, 5) {
		t.Error("wrapper mismatch")
	}
	// All region classification still works.
	if l.RegionOf(l.CHVDataAddrR(2, 0)) != RegionCHVData {
		t.Error("rotated data slot misclassified")
	}
	if l.RegionOf(a1) != RegionCHVAddr {
		t.Error("rotated addr block misclassified")
	}
}

func TestCHVRegionOutOfRangePanics(t *testing.T) {
	l := NewLayout(Config{DataSize: 1 << 24, CHVCapacity: 16, CHVRegions: 2, VaultBlocks: 8})
	defer func() {
		if recover() == nil {
			t.Error("region out of range did not panic")
		}
	}()
	l.CHVDataAddrR(2, 0)
}

func TestDefaultSingleRegion(t *testing.T) {
	l := NewLayout(Config{DataSize: 1 << 24, CHVCapacity: 16, VaultBlocks: 8})
	if l.CHVRegions != 1 {
		t.Errorf("default regions = %d, want 1", l.CHVRegions)
	}
}

func TestVaultAddr(t *testing.T) {
	l := paperLayout()
	if l.VaultAddr(0) != l.VaultBase || l.VaultAddr(5) != l.VaultBase+5*64 {
		t.Error("vault addressing wrong")
	}
}

func TestPanics(t *testing.T) {
	l := paperLayout()
	for name, fn := range map[string]func(){
		"bad data size":       func() { NewLayout(Config{DataSize: 100}) },
		"zero data size":      func() { NewLayout(Config{}) },
		"root NodeAddr":       func() { l.NodeAddr(l.RootLevel(), 0) },
		"node index range":    func() { l.NodeAddr(1, l.LevelCount[1]) },
		"parent of root":      func() { l.Parent(l.RootLevel(), 0) },
		"data region check":   func() { l.CounterBlockAddr(l.DataSize) },
		"chv capacity":        func() { l.CHVDataAddr(l.CHVCapacity) },
		"vault range":         func() { l.VaultAddr(l.VaultBlocks) },
		"negative node level": func() { l.NodeAddr(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRegionString(t *testing.T) {
	if RegionCHVData.String() != "chv-data" || RegionUnknown.String() != "unknown" {
		t.Error("region names wrong")
	}
}
