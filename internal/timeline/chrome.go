package timeline

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WriteChromeTrace exports one or more recordings as a Chrome trace-event
// JSON object (the format chrome://tracing and Perfetto load). Each
// recording becomes one process (pid) named after its episode; each
// resource track becomes one named thread, with a synthetic
// "critical-path" thread (tid 0) carrying the attribution steps so the
// binding resource is visible at a glance. Timestamps are microseconds, as
// the format requires; the exact picosecond bounds ride along in each
// event's args.
func WriteChromeTrace(w io.Writer, recs ...*Recording) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString("\n")
		bw.WriteString(s)
	}

	pid := 0
	for _, rec := range recs {
		if rec == nil {
			continue
		}
		pid++
		name := rec.Episode
		if name == "" {
			name = fmt.Sprintf("episode %d", pid)
		}
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`,
			pid, strconv.Quote(name)))

		tracks := rec.Tracks()
		tid := map[string]int{}
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":0,"name":"thread_name","args":{"name":"critical-path"}}`, pid))
		for i, tr := range tracks {
			tid[tr] = i + 1
			emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
				pid, i+1, strconv.Quote(tr)))
		}

		for _, s := range Analyze(rec).Steps {
			label := s.Resource
			if s.Phase != "service" {
				label += " " + s.Phase
			}
			emit(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":0,"ts":%s,"dur":%s,"name":%s,"cat":"critical-path","args":{"from_ps":%d,"to_ps":%d,"track":%s,"op":%s}}`,
				pid, usec(int64(s.From)), usec(int64(s.To-s.From)),
				strconv.Quote(label), int64(s.From), int64(s.To),
				strconv.Quote(s.Track), strconv.Quote(opLabel(s.Op, s.Label))))
		}

		for _, e := range rec.Events {
			// The visible slice is the reservation [Start, End): disjoint
			// per track by construction. Engine in-flight tails (Done past
			// the issue slot) ride along in args.
			emit(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%s,"cat":%s,"args":{"ready_ps":%d,"start_ps":%d,"end_ps":%d,"done_ps":%d,"stage":%s}}`,
				pid, tid[e.Track], usec(int64(e.Start)), usec(int64(e.End-e.Start)),
				strconv.Quote(opLabel(e.Op, e.Label)), strconv.Quote(e.Kind),
				int64(e.Ready), int64(e.Start), int64(e.End), int64(e.Done),
				strconv.Quote(e.Stage)))
		}
	}
	fmt.Fprint(bw, "\n]}\n")
	return bw.Flush()
}

// opLabel joins an op with its refining label ("write chv-data").
func opLabel(op, label string) string {
	switch {
	case op == "":
		return label
	case label == "":
		return op
	}
	return op + " " + label
}

// usec renders picoseconds as decimal microseconds without float rounding.
func usec(ps int64) string {
	neg := ""
	if ps < 0 {
		neg, ps = "-", -ps
	}
	return fmt.Sprintf("%s%d.%06d", neg, ps/1_000_000, ps%1_000_000)
}
