package timeline

import (
	"testing"

	"repro/internal/sim"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.OnReserve("bank00", "bank", 0, 0, 10, 10)
	r.SetOp("read", "data")
	r.SetStage("drain:blocks")
	r.BeginEpisode("x")
	r.EndEpisode(100)
	if r.Len() != 0 || r.Dropped() != 0 || r.Limit() != 0 {
		t.Error("nil recorder reported non-zero state")
	}
	if rec := r.Recording(); rec != nil {
		t.Error("nil recorder produced a recording")
	}
}

func TestRecorderStampsOpAndStage(t *testing.T) {
	r := NewRecorder(0)
	r.BeginEpisode("ep")
	r.SetStage("drain:blocks")
	r.SetOp("write", "chv-data")
	r.OnReserve("membus", "bus", 0, 0, 5, 5)
	r.SetOp("mac", "chv-data-mac")
	r.OnReserve("mac", "mac", 5, 5, 87, 165)
	r.EndEpisode(200)

	rec := r.Recording()
	if rec.Episode != "ep" || rec.Total != 200 {
		t.Fatalf("recording = %q/%d, want ep/200", rec.Episode, rec.Total)
	}
	if len(rec.Events) != 2 {
		t.Fatalf("got %d events, want 2", len(rec.Events))
	}
	e := rec.Events[0]
	if e.Op != "write" || e.Label != "chv-data" || e.Stage != "drain:blocks" || e.Kind != "bus" {
		t.Errorf("event 0 stamped %q/%q/%q/%q", e.Op, e.Label, e.Stage, e.Kind)
	}
	e = rec.Events[1]
	if e.Op != "mac" || e.Label != "chv-data-mac" || e.Done != 165 {
		t.Errorf("event 1 stamped %q/%q done %d", e.Op, e.Label, e.Done)
	}
}

func TestRecorderLimitCountsDropped(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.OnReserve("bank00", "bank", 0, sim.Time(i*10), sim.Time(i*10+10), sim.Time(i*10+10))
	}
	if r.Len() != 2 || r.Dropped() != 3 {
		t.Errorf("len/dropped = %d/%d, want 2/3", r.Len(), r.Dropped())
	}
	if rec := r.Recording(); rec.Dropped != 3 {
		t.Errorf("recording dropped = %d, want 3", rec.Dropped)
	}
}

func TestBeginEpisodeResets(t *testing.T) {
	r := NewRecorder(2)
	r.SetStage("run")
	for i := 0; i < 5; i++ {
		r.OnReserve("bank00", "bank", 0, 0, 10, 10)
	}
	r.BeginEpisode("drain")
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Errorf("after BeginEpisode len/dropped = %d/%d, want 0/0", r.Len(), r.Dropped())
	}
	r.OnReserve("bank00", "bank", 0, 0, 10, 10)
	if rec := r.Recording(); rec.Events[0].Stage != "" {
		t.Errorf("stage %q survived BeginEpisode", rec.Events[0].Stage)
	}
}

func TestRecordingTotalFallsBackToLatestDone(t *testing.T) {
	r := NewRecorder(0)
	r.OnReserve("bank00", "bank", 0, 0, 10, 10)
	r.OnReserve("mac", "mac", 0, 0, 20, 90)
	rec := r.Recording() // no EndEpisode: run-phase-only trace
	if rec.Total != 90 {
		t.Errorf("fallback total = %d, want 90", rec.Total)
	}
}

func TestTracksOrderedByKind(t *testing.T) {
	r := NewRecorder(0)
	r.OnReserve("mac", "mac", 0, 0, 1, 1)
	r.OnReserve("bank01", "bank", 0, 0, 1, 1)
	r.OnReserve("aes", "aes", 0, 0, 1, 1)
	r.OnReserve("membus", "bus", 0, 0, 1, 1)
	r.OnReserve("bank00", "bank", 0, 0, 1, 1)
	got := r.Recording().Tracks()
	want := []string{"bank00", "bank01", "membus", "aes", "mac"}
	if len(got) != len(want) {
		t.Fatalf("tracks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tracks = %v, want %v", got, want)
		}
	}
}

// Attaching a nil *Recorder through the sim.Tracer interface must behave
// like no tracer at all (methods are nil-safe on the nil receiver).
func TestNilRecorderThroughInterface(t *testing.T) {
	var rec *Recorder
	r := sim.NewResource("bank00")
	var tr sim.Tracer = rec
	r.SetTracer("bank", tr)
	r.Acquire(0, 10) // must not panic
}
