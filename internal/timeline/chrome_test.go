package timeline

import (
	"encoding/json"
	"sort"
	"strings"
	"testing"
)

// chromeEvent mirrors the trace-event fields the tests inspect.
type chromeEvent struct {
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Args map[string]any `json:"args"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

func TestWriteChromeTraceParsesAndNonOverlapping(t *testing.T) {
	r := NewRecorder(0)
	r.BeginEpisode("Horus-SLM")
	r.SetOp("write", "chv-data")
	r.OnReserve("membus", "bus", 0, 0, 5, 5)
	r.OnReserve("bank00", "bank", 5, 5, 505, 505)
	r.OnReserve("membus", "bus", 0, 5, 10, 10)
	r.OnReserve("bank01", "bank", 10, 10, 510, 510)
	r.SetOp("mac", "chv-data-mac")
	r.OnReserve("mac", "mac", 0, 0, 82, 160)
	r.EndEpisode(510)

	var b strings.Builder
	if err := WriteChromeTrace(&b, r.Recording()); err != nil {
		t.Fatal(err)
	}

	var tr chromeTrace
	if err := json.Unmarshal([]byte(b.String()), &tr); err != nil {
		t.Fatalf("trace does not parse as JSON: %v\noutput:\n%s", err, b.String())
	}

	var procName string
	threads := map[int]string{}
	type ival struct{ start, end int64 }
	perThread := map[int][]ival{}
	critical := 0
	for _, e := range tr.TraceEvents {
		switch e.Ph {
		case "M":
			name, _ := e.Args["name"].(string)
			if e.Name == "process_name" {
				procName = name
			} else if e.Name == "thread_name" {
				threads[e.Tid] = name
			}
		case "X":
			if e.Cat == "critical-path" {
				critical++
				continue
			}
			s := int64(e.Args["start_ps"].(float64))
			d := int64(e.Args["end_ps"].(float64))
			perThread[e.Tid] = append(perThread[e.Tid], ival{s, d})
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if procName != "Horus-SLM" {
		t.Errorf("process name %q, want Horus-SLM", procName)
	}
	if threads[0] != "critical-path" {
		t.Errorf("tid 0 named %q, want critical-path", threads[0])
	}
	if critical == 0 {
		t.Error("no critical-path slices emitted")
	}
	for tid, ivs := range perThread {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].start < ivs[i-1].end {
				t.Errorf("thread %d (%s): [%d,%d) overlaps [%d,%d)", tid, threads[tid],
					ivs[i].start, ivs[i].end, ivs[i-1].start, ivs[i-1].end)
			}
		}
	}
}

func TestWriteChromeTraceMultipleRecordings(t *testing.T) {
	mk := func(ep string) *Recording {
		r := NewRecorder(0)
		r.BeginEpisode(ep)
		r.OnReserve("bank00", "bank", 0, 0, 10, 10)
		r.EndEpisode(10)
		return r.Recording()
	}
	var b strings.Builder
	if err := WriteChromeTrace(&b, mk("a"), nil, mk("b")); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal([]byte(b.String()), &tr); err != nil {
		t.Fatal(err)
	}
	pids := map[int]string{}
	for _, e := range tr.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			pids[e.Pid], _ = e.Args["name"].(string)
		}
	}
	if len(pids) != 2 || pids[1] != "a" || pids[2] != "b" {
		t.Errorf("pids = %v, want {1:a, 2:b}", pids)
	}
}

func TestUsec(t *testing.T) {
	for _, c := range []struct {
		ps   int64
		want string
	}{
		{0, "0.000000"},
		{1, "0.000001"},
		{1_000_000, "1.000000"},
		{222_765_432_100, "222765.432100"},
		{-5, "-0.000005"},
	} {
		if got := usec(c.ps); got != c.want {
			t.Errorf("usec(%d) = %q, want %q", c.ps, got, c.want)
		}
	}
}
