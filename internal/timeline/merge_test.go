package timeline

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// syntheticEpisode drives a recorder through a plausible multi-resource
// episode: a few tracks with gap-filled, dependency-chained reservations.
// It returns the serial recording plus the same episode split across
// per-shard recorders by track ownership (track i belongs to shard i%n).
func syntheticEpisode(t *testing.T, shards int) (*Recording, []*Recording) {
	t.Helper()
	tracks := []struct{ name, kind string }{
		{"bank00", "bank"}, {"bank01", "bank"}, {"bank02", "bank"},
		{"membus", "bus"}, {"aes", "aes"}, {"mac", "mac"},
	}
	serial := NewRecorder(0)
	serial.BeginEpisode("synthetic")
	owned := make([]*Recorder, shards)
	for i := range owned {
		owned[i] = NewRecorder(0)
		owned[i].BeginEpisode("synthetic")
	}

	rng := rand.New(rand.NewSource(41))
	free := make([]sim.Time, len(tracks))
	var total sim.Time
	for op := 0; op < 400; op++ {
		ti := rng.Intn(len(tracks))
		tr := tracks[ti]
		ready := sim.Time(rng.Intn(2000))
		dur := sim.Time(1 + rng.Intn(300))
		start := sim.MaxTime(ready, free[ti])
		done := start + dur
		free[ti] = done
		if done > total {
			total = done
		}
		serial.SetOp("write", "data")
		serial.OnReserve(tr.name, tr.kind, ready, start, done, done)
		shard := owned[ti%shards]
		shard.SetOp("write", "data")
		shard.OnReserve(tr.name, tr.kind, ready, start, done, done)
	}
	serial.EndEpisode(total)
	recs := make([]*Recording, shards)
	for i := range owned {
		owned[i].EndEpisode(total)
		recs[i] = owned[i].Recording()
	}
	return serial.Recording(), recs
}

// TestMergePreservesAttribution pins the merge-order determinism argument:
// attribution of the merged per-shard recordings is identical — steps,
// shares, total — to the serial recording's, at several shard counts.
func TestMergePreservesAttribution(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 6} {
		serial, recs := syntheticEpisode(t, shards)
		merged := MergeRecordings(recs...)
		if merged.Episode != serial.Episode || merged.Total != serial.Total {
			t.Fatalf("shards=%d: merged episode metadata %q/%d, want %q/%d",
				shards, merged.Episode, merged.Total, serial.Episode, serial.Total)
		}
		if len(merged.Events) != len(serial.Events) {
			t.Fatalf("shards=%d: merged %d events, serial %d", shards, len(merged.Events), len(serial.Events))
		}
		want := Analyze(serial)
		got := Analyze(merged)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: merged attribution diverges from serial\n got %+v\nwant %+v", shards, got, want)
		}
	}
}

// TestMergePreservesExactTiling pins the exact-tiling invariant on merged
// recordings: the shares (including idle) sum to the episode total.
func TestMergePreservesExactTiling(t *testing.T) {
	_, recs := syntheticEpisode(t, 3)
	merged := MergeRecordings(recs...)
	att := Analyze(merged)
	if att.AttributedTotal() != att.Total {
		t.Fatalf("merged attribution tiles %d of %d", att.AttributedTotal(), att.Total)
	}
	if att.Total != merged.Total {
		t.Fatalf("attribution total %d != recording total %d", att.Total, merged.Total)
	}
}

// TestMergeMetadata pins the edge rules: nil inputs are skipped, Dropped
// sums, Total is the max, merging nothing yields nil.
func TestMergeMetadata(t *testing.T) {
	if MergeRecordings() != nil || MergeRecordings(nil, nil) != nil {
		t.Fatal("merging no recordings must return nil")
	}
	a := &Recording{Episode: "e", Total: 10, Dropped: 2, Events: []Event{{Track: "bank00", Kind: "bank", Done: 10}}}
	b := &Recording{Episode: "e", Total: 25, Dropped: 3, Events: []Event{{Track: "bank01", Kind: "bank", Done: 25}}}
	m := MergeRecordings(nil, a, nil, b)
	if m.Episode != "e" || m.Total != 25 || m.Dropped != 5 || len(m.Events) != 2 {
		t.Fatalf("merge metadata wrong: %+v", m)
	}
	// Track ownership keeps per-track record order: events arrive in input
	// order (a's first).
	if m.Events[0].Track != "bank00" || m.Events[1].Track != "bank01" {
		t.Fatalf("merge order not input-ordered: %+v", m.Events)
	}
}
