package timeline

import (
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// kindPriority orders the attribution classes the way the paper discusses
// them: memory banks, command bus, then the crypto engines. Unknown kinds
// (custom schemes may add resources) sort after the known ones, by name.
func kindPriority(kind string) int {
	switch kind {
	case "bank":
		return 0
	case "bus":
		return 1
	case "aes":
		return 2
	case "mac":
		return 3
	}
	return 4
}

// sortTracks orders track names by kind priority, then kind, then name.
func sortTracks(names []string, kindOf map[string]string) {
	sort.Slice(names, func(i, j int) bool {
		ki, kj := kindOf[names[i]], kindOf[names[j]]
		if p, q := kindPriority(ki), kindPriority(kj); p != q {
			return p < q
		}
		if ki != kj {
			return ki < kj
		}
		return names[i] < names[j]
	})
}

// ResourceShare is the critical-path time bound by one resource class.
type ResourceShare struct {
	// Resource is the attribution class: "bank", "bus", "aes", "mac", or
	// "idle" for spans where no recorded operation was in flight.
	Resource string
	// Service is critical-path time the binding operation spent occupying
	// (or in flight on) the resource.
	Service sim.Time
	// Wait is critical-path time the binding operation spent queued for the
	// resource (contention / structural hazard).
	Wait sim.Time
}

// Total returns service plus wait.
func (s ResourceShare) Total() sim.Time { return s.Service + s.Wait }

// PathStep is one interval of the critical path, in forward time order.
type PathStep struct {
	// From/To bound the attributed interval [From, To).
	From, To sim.Time
	// Resource is the attribution class ("idle" for gaps).
	Resource string
	// Phase is "service", "wait" or "idle".
	Phase string
	// Track/Op/Label/Stage describe the binding event (empty for idle).
	Track, Op, Label, Stage string
}

// Attribution is the critical-path decomposition of one episode: the steps
// tile [0, Total) exactly, so the shares (including idle) always sum to the
// episode's measured drain time.
type Attribution struct {
	Episode string
	Total   sim.Time
	// Dropped is carried over from the recording: a non-zero value means
	// events were lost to the recorder limit and the attribution is a lower
	// bound on resource-bound time (the gaps surface as idle).
	Dropped int64
	Shares  []ResourceShare
	Steps   []PathStep
}

// AttributedTotal sums the shares; by construction it equals Total.
func (a Attribution) AttributedTotal() sim.Time {
	var t sim.Time
	for _, s := range a.Shares {
		t += s.Total()
	}
	return t
}

// Share returns the share of one resource class (zero if absent).
func (a Attribution) Share(resource string) ResourceShare {
	for _, s := range a.Shares {
		if s.Resource == resource {
			return s
		}
	}
	return ResourceShare{Resource: resource}
}

// Analyze walks the recording's interval set backwards from the episode end
// and attributes each picosecond to its binding resource.
//
// The walk exploits the structure of reservation-list scheduling: the drain
// code threads each operation's predecessor completion time through as the
// next operation's ready time, so an event's [Ready, Done) span covers both
// its wait for the resource and its service, and its Ready points at the
// dependency that bound it before that. Starting from the episode end, the
// analyzer repeatedly picks the latest-completing event at or before the
// cursor: the interval down to the event's completion (if any) is idle, the
// event's [Start, Done) is service on its resource, [Ready, Start) is wait
// for it, and the cursor continues from Ready. Every interval of [0, Total)
// is attributed exactly once, which is what guarantees the per-scheme
// attribution totals equal the measured drain time.
//
// Ties (several events completing at the same instant) break
// deterministically — smallest Ready first, then kind priority, track and
// start — so the attribution is byte-identical regardless of episode
// scheduling (the -parallel determinism contract).
func Analyze(rec *Recording) Attribution {
	att := Attribution{}
	if rec == nil {
		return att
	}
	att.Episode = rec.Episode
	att.Total = rec.Total
	att.Dropped = rec.Dropped
	if rec.Total <= 0 {
		return att
	}

	// Zero-progress events (Done <= Ready, e.g. issues on a combinational
	// engine) can never bind the critical path and would stall the walk.
	evs := make([]Event, 0, len(rec.Events))
	for _, e := range rec.Events {
		if e.Done > e.Ready && e.Done <= rec.Total {
			evs = append(evs, e)
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Done != b.Done {
			return a.Done < b.Done
		}
		if a.Ready != b.Ready {
			return a.Ready < b.Ready
		}
		if p, q := kindPriority(a.Kind), kindPriority(b.Kind); p != q {
			return p < q
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Label < b.Label
	})

	var steps []PathStep
	add := func(s PathStep) {
		if s.To <= s.From {
			return
		}
		steps = append(steps, s)
	}

	cursor := rec.Total
	for cursor > 0 {
		// Latest event completing at or before the cursor.
		idx := sort.Search(len(evs), func(i int) bool { return evs[i].Done > cursor }) - 1
		if idx < 0 {
			add(PathStep{From: 0, To: cursor, Resource: "idle", Phase: "idle"})
			break
		}
		done := evs[idx].Done
		if done < cursor {
			add(PathStep{From: done, To: cursor, Resource: "idle", Phase: "idle"})
			cursor = done
			continue
		}
		// Among events completing exactly at the cursor, the first in sort
		// order (smallest Ready) binds: it chains the path furthest back.
		lo := idx
		for lo > 0 && evs[lo-1].Done == done {
			lo--
		}
		ev := evs[lo]
		start := ev.Start
		if start > cursor {
			start = cursor
		}
		add(PathStep{From: start, To: cursor, Resource: ev.Kind, Phase: "service",
			Track: ev.Track, Op: ev.Op, Label: ev.Label, Stage: ev.Stage})
		add(PathStep{From: ev.Ready, To: start, Resource: ev.Kind, Phase: "wait",
			Track: ev.Track, Op: ev.Op, Label: ev.Label, Stage: ev.Stage})
		cursor = ev.Ready
	}

	// The walk emitted steps in reverse time order; flip and merge
	// same-resource/phase neighbours into one step.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	merged := steps[:0]
	for _, s := range steps {
		if n := len(merged); n > 0 {
			p := &merged[n-1]
			if p.To == s.From && p.Resource == s.Resource && p.Phase == s.Phase &&
				p.Track == s.Track && p.Op == s.Op && p.Label == s.Label && p.Stage == s.Stage {
				p.To = s.To
				continue
			}
		}
		merged = append(merged, s)
	}
	att.Steps = merged

	// Aggregate shares in deterministic class order.
	byClass := map[string]*ResourceShare{}
	var classes []string
	for _, s := range att.Steps {
		sh, ok := byClass[s.Resource]
		if !ok {
			sh = &ResourceShare{Resource: s.Resource}
			byClass[s.Resource] = sh
			if s.Resource != "idle" {
				classes = append(classes, s.Resource)
			}
		}
		if s.Phase == "wait" {
			sh.Wait += s.To - s.From
		} else {
			sh.Service += s.To - s.From
		}
	}
	sort.Slice(classes, func(i, j int) bool {
		if p, q := kindPriority(classes[i]), kindPriority(classes[j]); p != q {
			return p < q
		}
		return classes[i] < classes[j]
	})
	for _, c := range classes {
		att.Shares = append(att.Shares, *byClass[c])
	}
	if idle, ok := byClass["idle"]; ok {
		att.Shares = append(att.Shares, *idle)
	}
	return att
}

// Publish emits the attribution as horus_critical_path_ps counters into the
// registry (nil-safe), labelled by resource and phase plus the given extra
// labels (alternating key, value — e.g. "scheme", "Horus-SLM").
func (a Attribution) Publish(reg *obs.Registry, labels ...string) {
	if reg == nil {
		return
	}
	reg.SetHelp("horus_critical_path_ps",
		"Drain critical-path time bound by each resource class, picoseconds (service = occupying the resource, wait = queued for it).")
	for _, s := range a.Shares {
		if s.Resource == "idle" {
			if s.Total() > 0 {
				lbl := append([]string{"resource", "idle", "phase", "idle"}, labels...)
				reg.Counter("horus_critical_path_ps", lbl...).Add(int64(s.Total()))
			}
			continue
		}
		if s.Service > 0 {
			lbl := append([]string{"resource", s.Resource, "phase", "service"}, labels...)
			reg.Counter("horus_critical_path_ps", lbl...).Add(int64(s.Service))
		}
		if s.Wait > 0 {
			lbl := append([]string{"resource", s.Resource, "phase", "wait"}, labels...)
			reg.Counter("horus_critical_path_ps", lbl...).Add(int64(s.Wait))
		}
	}
}
