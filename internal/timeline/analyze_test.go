package timeline

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// recWith builds a recording directly, bypassing the recorder.
func recWith(total sim.Time, events ...Event) *Recording {
	return &Recording{Episode: "test", Total: total, Events: events}
}

// checkTiling asserts the attribution steps tile [0, Total) exactly and the
// shares sum to Total — the invariant that makes "attribution == measured
// drain time" hold for every episode.
func checkTiling(t *testing.T, att Attribution) {
	t.Helper()
	var cursor sim.Time
	for i, s := range att.Steps {
		if s.From != cursor {
			t.Fatalf("step %d starts at %d, want %d (gap or overlap)", i, s.From, cursor)
		}
		if s.To <= s.From {
			t.Fatalf("step %d is empty or reversed: [%d,%d)", i, s.From, s.To)
		}
		cursor = s.To
	}
	if cursor != att.Total {
		t.Fatalf("steps end at %d, want total %d", cursor, att.Total)
	}
	if got := att.AttributedTotal(); got != att.Total {
		t.Fatalf("shares sum to %d, want total %d", got, att.Total)
	}
}

func TestAnalyzeSingleChain(t *testing.T) {
	// aes [0,40) -> mac [40,120) -> bank write [120,620).
	att := Analyze(recWith(620,
		Event{Track: "aes", Kind: "aes", Op: "aes", Ready: 0, Start: 0, End: 4, Done: 40},
		Event{Track: "mac", Kind: "mac", Op: "mac", Ready: 40, Start: 40, End: 122, Done: 120},
		Event{Track: "bank00", Kind: "bank", Op: "write", Ready: 120, Start: 120, End: 620, Done: 620},
	))
	checkTiling(t, att)
	if got := att.Share("bank").Service; got != 500 {
		t.Errorf("bank service = %d, want 500", got)
	}
	if got := att.Share("mac").Service; got != 80 {
		t.Errorf("mac service = %d, want 80", got)
	}
	if got := att.Share("aes").Service; got != 40 {
		t.Errorf("aes service = %d, want 40", got)
	}
	if idle := att.Share("idle").Total(); idle != 0 {
		t.Errorf("idle = %d, want 0", idle)
	}
}

func TestAnalyzeWaitAttribution(t *testing.T) {
	// Two bank ops: the second is ready at 0 but queues until 100.
	att := Analyze(recWith(200,
		Event{Track: "bank00", Kind: "bank", Ready: 0, Start: 0, End: 100, Done: 100},
		Event{Track: "bank00", Kind: "bank", Ready: 0, Start: 100, End: 200, Done: 200},
	))
	checkTiling(t, att)
	sh := att.Share("bank")
	if sh.Service != 100 || sh.Wait != 100 {
		t.Errorf("bank service/wait = %d/%d, want 100/100", sh.Service, sh.Wait)
	}
}

func TestAnalyzeIdleGap(t *testing.T) {
	// Event completes at 100; episode measured to 150 (engine tail etc.).
	att := Analyze(recWith(150,
		Event{Track: "bank00", Kind: "bank", Ready: 0, Start: 0, End: 100, Done: 100},
	))
	checkTiling(t, att)
	if idle := att.Share("idle").Total(); idle != 50 {
		t.Errorf("idle = %d, want 50", idle)
	}
	// Idle sorts last in the shares.
	if last := att.Shares[len(att.Shares)-1].Resource; last != "idle" {
		t.Errorf("last share = %q, want idle", last)
	}
}

func TestAnalyzeTieBreaksDeterministic(t *testing.T) {
	// Two events complete at 100; the one with the smaller Ready binds
	// (chains furthest back), regardless of input order.
	evs := []Event{
		{Track: "bank00", Kind: "bank", Ready: 20, Start: 20, End: 100, Done: 100},
		{Track: "bank01", Kind: "bank", Ready: 0, Start: 0, End: 100, Done: 100},
	}
	a := Analyze(recWith(100, evs[0], evs[1]))
	b := Analyze(recWith(100, evs[1], evs[0]))
	checkTiling(t, a)
	if len(a.Steps) != len(b.Steps) {
		t.Fatalf("input order changed step count: %d vs %d", len(a.Steps), len(b.Steps))
	}
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			t.Fatalf("input order changed step %d: %+v vs %+v", i, a.Steps[i], b.Steps[i])
		}
	}
	if a.Steps[0].Track != "bank01" {
		t.Errorf("binding track = %q, want bank01 (smallest ready)", a.Steps[0].Track)
	}
}

func TestAnalyzeZeroProgressEventsIgnored(t *testing.T) {
	// A combinational issue (done == ready) must not stall the walk.
	att := Analyze(recWith(100,
		Event{Track: "xor", Kind: "aes", Ready: 100, Start: 100, End: 100, Done: 100},
		Event{Track: "bank00", Kind: "bank", Ready: 0, Start: 0, End: 100, Done: 100},
	))
	checkTiling(t, att)
	if att.Share("bank").Service != 100 {
		t.Errorf("bank service = %d, want 100", att.Share("bank").Service)
	}
}

func TestAnalyzeEmptyAndNil(t *testing.T) {
	if att := Analyze(nil); len(att.Steps) != 0 || att.Total != 0 {
		t.Error("nil recording produced steps")
	}
	att := Analyze(recWith(100))
	checkTiling(t, att)
	if att.Share("idle").Total() != 100 {
		t.Error("eventless recording should be all idle")
	}
}

func TestAnalyzeEngineOverlappingTails(t *testing.T) {
	// Pipelined MAC: issue slots [0,82) and [82,164), completions at 160
	// and 242. In-flight tails overlap; the walk must still tile exactly.
	att := Analyze(recWith(242,
		Event{Track: "mac", Kind: "mac", Ready: 0, Start: 0, End: 82, Done: 160},
		Event{Track: "mac", Kind: "mac", Ready: 0, Start: 82, End: 164, Done: 242},
	))
	checkTiling(t, att)
	sh := att.Share("mac")
	if sh.Service+sh.Wait != 242 {
		t.Errorf("mac total = %d, want 242", sh.Service+sh.Wait)
	}
}

func TestPublishEmitsCriticalPathCounters(t *testing.T) {
	att := Analyze(recWith(150,
		Event{Track: "bank00", Kind: "bank", Ready: 0, Start: 50, End: 100, Done: 100},
	))
	checkTiling(t, att)
	reg := obs.NewRegistry()
	att.Publish(reg, "scheme", "Horus-SLM")
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`horus_critical_path_ps{phase="service",resource="bank",scheme="Horus-SLM"} 50`,
		`horus_critical_path_ps{phase="wait",resource="bank",scheme="Horus-SLM"} 50`,
		`horus_critical_path_ps{phase="idle",resource="idle",scheme="Horus-SLM"} 50`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
	att.Publish(nil) // nil-safe
}
