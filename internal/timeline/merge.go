package timeline

import "repro/internal/sim"

// MergeRecordings combines per-shard recordings of one episode into a single
// recording equivalent to a serial recorder having seen every reservation.
//
// Ownership rule: the sharded drain pipeline gives each shard recorder a
// disjoint set of tracks (a shard traces only the resources it owns), so
// every track's events arrive from exactly one input and keep their record
// order. The merge is a deterministic ordered concatenation — shard 0's
// events, then shard 1's, and so on — never dependent on goroutine timing.
//
// Determinism of everything downstream follows from the inputs: Analyze
// re-sorts events under a total deterministic key (so attribution is
// identical for any interleaving of the same event set — the exact-tiling
// invariant TestAttributionTotalsEqualDrainTime checks transfers to merged
// recordings), and the Chrome exporter walks tracks in sorted-name order
// with per-track record order preserved by the ownership rule.
//
// Episode metadata: the episode label comes from the first non-nil input,
// Total is the maximum input Total (every shard of one episode measures the
// same span, but a partial recorder that missed EndEpisode falls back to its
// latest event), and Dropped sums so a clipped shard still marks the merged
// attribution as a lower bound. Nil inputs are skipped; merging nothing
// returns nil.
func MergeRecordings(recs ...*Recording) *Recording {
	var out *Recording
	var events int
	for _, r := range recs {
		if r != nil {
			events += len(r.Events)
		}
	}
	for _, r := range recs {
		if r == nil {
			continue
		}
		if out == nil {
			out = &Recording{Episode: r.Episode, Events: make([]Event, 0, events)}
		}
		out.Total = sim.MaxTime(out.Total, r.Total)
		out.Dropped += r.Dropped
		out.Events = append(out.Events, r.Events...)
	}
	return out
}
