// Package timeline records the per-resource event timeline of a draining
// episode: one interval per reservation placed on the NVM banks, the
// command bus and the AES/MAC engines, labelled with the operation and the
// drain stage in flight. On top of the raw interval set it provides a
// Chrome trace-event exporter (chrome.go) so any episode can be opened in
// chrome://tracing or Perfetto, and a critical-path analyzer (analyze.go)
// that attributes every picosecond of drain time to its binding resource.
//
// The Recorder mirrors the obs.Registry nil-safety contract: every method
// is a no-op on a nil receiver, and a detached simulator pays exactly one
// pointer check per reservation (see sim.Tracer and
// BenchmarkTimelineDisabledOverhead).
package timeline

import "repro/internal/sim"

// DefaultEventLimit bounds a recorder built with NewRecorder(0). At Table I
// scale a Horus drain emits roughly five events per drained block, so the
// default comfortably holds a full paper-scale episode.
const DefaultEventLimit = 4_000_000

// Event is one reservation on a simulated resource.
type Event struct {
	// Track is the resource's diagnostic name ("bank03", "membus", "aes").
	Track string
	// Kind classifies the resource for attribution: "bank", "bus", "aes",
	// "mac".
	Kind string
	// Op is the operation that placed the reservation ("read", "write",
	// "aes", "mac").
	Op string
	// Label refines the operation: the memory-access category ("chv-data",
	// "counter", ...) or the MAC category ("verify", "chv-data-mac", ...).
	Label string
	// Stage is the drain-pipeline stage in flight ("drain:blocks",
	// "drain:chv-stream", ...), empty outside a marked stage.
	Stage string
	// Ready is when the operation could first have used the resource;
	// Start/End bound the reservation actually placed ([Start, End) never
	// overlaps another event on the same Track); Done is the operation's
	// completion. For single-server resources End == Done; for pipelined
	// engines End is the issue slot (Start + II) and Done is Start +
	// latency.
	Ready, Start, End, Done sim.Time
}

// Recorder is a bounded, allocation-light event recorder implementing
// sim.Tracer. It is single-threaded, like the simulator that feeds it:
// episodes running in parallel each get their own recorder (the sweep
// engine enforces this, mirroring its per-episode metrics registries).
type Recorder struct {
	limit   int
	events  []Event
	dropped int64

	episode string
	total   sim.Time

	// op/label/stage are the labels stamped on the next events; the
	// controllers set them immediately before issuing reservations.
	op, label, stage string
}

// NewRecorder returns a recorder retaining at most limit events (0 selects
// DefaultEventLimit; negative means unlimited). Events beyond the limit are
// counted in Dropped rather than retained.
func NewRecorder(limit int) *Recorder {
	if limit == 0 {
		limit = DefaultEventLimit
	}
	// Pre-size the event buffer so a recording episode starts with a few
	// thousand slots instead of doubling up from one; the cap stays well
	// under the limit so tiny bounded recorders don't over-allocate.
	pre := 4096
	if limit > 0 && limit < pre {
		pre = limit
	}
	return &Recorder{limit: limit, events: make([]Event, 0, pre)}
}

// OnReserve implements sim.Tracer: it appends one event stamped with the
// current op/label/stage.
func (r *Recorder) OnReserve(name, kind string, ready, start, end, done sim.Time) {
	if r == nil {
		return
	}
	if r.limit > 0 && len(r.events) >= r.limit {
		r.dropped++
		return
	}
	r.events = append(r.events, Event{
		Track: name, Kind: kind,
		Op: r.op, Label: r.label, Stage: r.stage,
		Ready: ready, Start: start, End: end, Done: done,
	})
}

// SetOp stamps the operation and its refining label onto subsequent events.
func (r *Recorder) SetOp(op, label string) {
	if r == nil {
		return
	}
	r.op, r.label = op, label
}

// SetStage stamps the drain-pipeline stage onto subsequent events.
func (r *Recorder) SetStage(stage string) {
	if r == nil {
		return
	}
	r.stage = stage
}

// BeginEpisode clears the recorded events and names the episode; the
// drainer calls it when a measured drain starts, so a recorder attached
// across warm-up and fill captures exactly the drain window.
func (r *Recorder) BeginEpisode(label string) {
	if r == nil {
		return
	}
	r.events = r.events[:0]
	r.dropped = 0
	r.episode = label
	r.total = 0
	r.stage = ""
}

// EndEpisode records the episode's measured span (the drain time); the
// analyzer attributes exactly this much time across resources.
func (r *Recorder) EndEpisode(total sim.Time) {
	if r == nil {
		return
	}
	r.total = total
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Dropped returns how many events were discarded over the limit.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Limit returns the configured event limit.
func (r *Recorder) Limit() int {
	if r == nil {
		return 0
	}
	return r.limit
}

// Recording is an immutable snapshot of one recorded episode.
type Recording struct {
	// Episode names the episode (the drain scheme, e.g. "Horus-SLM").
	Episode string
	// Total is the episode's measured span. If the recorder never saw
	// EndEpisode (e.g. a run-phase-only trace) it falls back to the latest
	// event completion, so exports and attribution still cover the events.
	Total sim.Time
	// Dropped counts events lost to the recorder limit; attribution over a
	// clipped recording is labelled rather than silently wrong.
	Dropped int64
	// Events in record order.
	Events []Event
}

// Recording snapshots the recorder's current episode.
func (r *Recorder) Recording() *Recording {
	if r == nil {
		return nil
	}
	rec := &Recording{
		Episode: r.episode,
		Total:   r.total,
		Dropped: r.dropped,
		Events:  append([]Event(nil), r.events...),
	}
	if rec.Total == 0 {
		for _, e := range rec.Events {
			rec.Total = sim.MaxTime(rec.Total, e.Done)
		}
	}
	return rec
}

// Tracks returns the distinct track names in deterministic order: known
// kinds first (bank, bus, aes, mac), names sorted within a kind.
func (rec *Recording) Tracks() []string {
	if rec == nil {
		return nil
	}
	seen := map[string]string{} // track -> kind
	for _, e := range rec.Events {
		seen[e.Track] = e.Kind
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sortTracks(names, seen)
	return names
}
