package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond ||
		Microsecond != 1000*Nanosecond || Nanosecond != 1000*Picosecond {
		t.Fatal("time unit ladder broken")
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
	if got := (500 * Nanosecond).Nanoseconds(); got != 500.0 {
		t.Errorf("Nanoseconds() = %v, want 500", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		d    Time
		want string
	}{
		{5 * Picosecond, "5ps"},
		{500 * Nanosecond, "500.00ns"},
		{3 * Microsecond, "3.00us"},
		{42 * Millisecond, "42.00ms"},
		{2 * Second, "2.000s"},
		{15 * Second, "15.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestClock(t *testing.T) {
	c := NewClock(4_000_000_000) // 4 GHz
	if c.Period() != 250*Picosecond {
		t.Fatalf("4GHz period = %v, want 250ps", c.Period())
	}
	if c.Cycles(40) != 10*Nanosecond {
		t.Errorf("40 cycles at 4GHz = %v, want 10ns", c.Cycles(40))
	}
	if c.Cycles(160) != 40*Nanosecond {
		t.Errorf("160 cycles at 4GHz = %v, want 40ns", c.Cycles(160))
	}
}

func TestClockPanicsOnBadFrequency(t *testing.T) {
	for _, hz := range []int64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewClock(%d) did not panic", hz)
				}
			}()
			NewClock(hz)
		}()
	}
}

func TestResourceSerialisation(t *testing.T) {
	r := NewResource("bank0")
	start, done := r.Acquire(0, 100)
	if start != 0 || done != 100 {
		t.Fatalf("first acquire = (%v,%v), want (0,100)", start, done)
	}
	// A request ready at t=10 must wait for the previous occupancy.
	start, done = r.Acquire(10, 50)
	if start != 100 || done != 150 {
		t.Fatalf("second acquire = (%v,%v), want (100,150)", start, done)
	}
	// A request ready after the resource is free starts immediately.
	start, done = r.Acquire(500, 25)
	if start != 500 || done != 525 {
		t.Fatalf("third acquire = (%v,%v), want (500,525)", start, done)
	}
	if r.Ops() != 3 {
		t.Errorf("Ops = %d, want 3", r.Ops())
	}
	if r.BusyTime() != 175 {
		t.Errorf("BusyTime = %v, want 175", r.BusyTime())
	}
}

func TestResourceReset(t *testing.T) {
	r := NewResource("x")
	r.Acquire(0, 100)
	r.Reset()
	if r.FreeAt() != 0 || r.Ops() != 0 || r.BusyTime() != 0 {
		t.Error("Reset did not clear state")
	}
}

// Reservations on a single-server resource must never overlap and must
// never start before their ready time, regardless of issue order (the
// gap-filling scheduler may place later requests into earlier idle slots).
func TestResourceNoOverlapProperty(t *testing.T) {
	f := func(readies []uint16, durs []uint8) bool {
		r := NewResource("p")
		type span struct{ s, e Time }
		var spans []span
		n := len(readies)
		if len(durs) < n {
			n = len(durs)
		}
		for i := 0; i < n; i++ {
			d := Time(durs[i]%50) + 1
			ready := Time(readies[i] % 2000)
			start, done := r.Acquire(ready, d)
			if start < ready || done != start+d {
				return false
			}
			for _, sp := range spans {
				if start < sp.e && sp.s < done {
					return false // overlap
				}
			}
			spans = append(spans, span{start, done})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Gap filling: a later-issued request that is ready early must be able to
// use an idle interval left before an earlier long-scheduled request.
func TestResourceGapFilling(t *testing.T) {
	r := NewResource("bank")
	// First request not ready until t=1000: creates a [0,1000) idle gap.
	start, _ := r.Acquire(1000, 100)
	if start != 1000 {
		t.Fatalf("first start = %v, want 1000", start)
	}
	// Second request ready at 0 fits in the gap.
	start, done := r.Acquire(0, 100)
	if start != 0 || done != 100 {
		t.Fatalf("gap-filled request = (%v,%v), want (0,100)", start, done)
	}
	// Utilisation accounting still adds up.
	if r.BusyTime() != 200 {
		t.Errorf("BusyTime = %v, want 200", r.BusyTime())
	}
}

func TestEnginePipelining(t *testing.T) {
	e := NewEngine("mac", 160, 40)
	// Back-to-back issues are spaced by the II but each takes full latency.
	d0 := e.Issue(0)
	d1 := e.Issue(0)
	d2 := e.Issue(0)
	if d0 != 160 || d1 != 200 || d2 != 240 {
		t.Fatalf("pipelined completions = %v,%v,%v, want 160,200,240", d0, d1, d2)
	}
	if e.Ops() != 3 {
		t.Errorf("Ops = %d, want 3", e.Ops())
	}
	if e.LastDone() != 240 {
		t.Errorf("LastDone = %v, want 240", e.LastDone())
	}
}

func TestEngineIdleIssue(t *testing.T) {
	e := NewEngine("aes", 10, 4)
	e.Issue(0)
	// After the pipeline drains, a late request issues immediately.
	if done := e.Issue(1000); done != 1010 {
		t.Errorf("idle issue done = %v, want 1010", done)
	}
}

func TestEngineZeroII(t *testing.T) {
	e := NewEngine("comb", 7, 0)
	if d := e.Issue(0); d != 7 {
		t.Errorf("done = %v, want 7", d)
	}
	if d := e.Issue(0); d != 7 {
		t.Errorf("second done = %v, want 7 (no structural hazard)", d)
	}
}

func TestEnginePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewEngine with negative latency did not panic")
		}
	}()
	NewEngine("bad", -1, 0)
}

func TestMaxTime(t *testing.T) {
	if MaxTime(1, 2) != 2 || MaxTime(5, 3) != 5 || MaxTime(4, 4) != 4 {
		t.Error("MaxTime broken")
	}
}

func TestCounterSet(t *testing.T) {
	cs := NewCounterSet()
	cs.Add("writes", 3)
	cs.Add("reads", 2)
	cs.Add("writes", 4)
	if cs.Get("writes") != 7 || cs.Get("reads") != 2 {
		t.Fatalf("counts wrong: %v", cs)
	}
	if cs.Get("absent") != 0 {
		t.Error("absent counter should read zero")
	}
	if cs.Total() != 9 {
		t.Errorf("Total = %d, want 9", cs.Total())
	}
	names := cs.Names()
	if len(names) != 2 || names[0] != "writes" || names[1] != "reads" {
		t.Errorf("Names = %v, want first-use order [writes reads]", names)
	}
	sorted := cs.SortedNames()
	if sorted[0] != "reads" || sorted[1] != "writes" {
		t.Errorf("SortedNames = %v", sorted)
	}
	if got := cs.String(); got != "writes=7 reads=2" {
		t.Errorf("String = %q", got)
	}
}

func TestCounterSetCloneAndMerge(t *testing.T) {
	a := NewCounterSet()
	a.Add("x", 1)
	b := a.Clone()
	b.Add("x", 1)
	b.Add("y", 5)
	if a.Get("x") != 1 || a.Get("y") != 0 {
		t.Error("Clone is not independent of the original")
	}
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 5 {
		t.Errorf("Merge result wrong: %v", a)
	}
}
