package sim

// Tracer observes every reservation placed on a Resource or an Engine. It
// is the hook the event-timeline recorder (internal/timeline) attaches to;
// the indirection keeps sim free of upward dependencies.
//
// name is the resource's diagnostic name ("bank03", "membus", "aes"); kind
// classifies it for attribution ("bank", "bus", "aes", "mac"). ready is the
// time the operation could first have used the resource, start/end bound
// the reservation actually placed ([start, end) never overlaps another
// reservation on the same resource), and done is the operation's completion
// time. For a Resource, end == done; for a pipelined Engine, end is the end
// of the issue slot (start + II) while done is start + latency, so
// in-flight tails of successive operations legitimately overlap.
//
// A nil tracer is the fast path: one pointer check per reservation, no
// allocation (guarded by BenchmarkTimelineDisabledOverhead).
type Tracer interface {
	OnReserve(name, kind string, ready, start, end, done Time)
}

// SetTracer attaches a tracer to the resource (nil detaches) and records
// the kind label reported with every reservation.
func (r *Resource) SetTracer(kind string, t Tracer) {
	r.kind = kind
	r.tr = t
}

// SetTracer attaches a tracer to the engine (nil detaches) and records the
// kind label reported with every issue.
func (e *Engine) SetTracer(kind string, t Tracer) {
	e.kind = kind
	e.tr = t
}
