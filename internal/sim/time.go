// Package sim provides the timing primitives used by the Horus memory-system
// simulator: a picosecond-resolution simulated clock, single-server resources
// with occupancy tracking (memory banks, buses), pipelined engines with a
// latency / initiation-interval model (AES and MAC units), and labelled
// counters for the per-category statistics the paper's figures break down.
//
// The simulator is not event-driven; it uses resource-reservation list
// scheduling. Callers thread a "ready" timestamp through a dependency chain
// and each resource returns the completion time of the operation, advancing
// its own availability. Operations from independent chains naturally overlap
// up to the capacity of the shared resources, which is the behaviour that
// determines draining time in the paper's evaluation.
package sim

import "fmt"

// Time is a simulated timestamp or duration in picoseconds. Picosecond
// resolution lets a 4 GHz clock (250 ps period) be represented exactly while
// an int64 still covers more than 100 days of simulated time.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns the duration in seconds as a float64.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds returns the duration in nanoseconds as a float64.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// String formats the duration with an auto-selected unit.
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%s", -t)
	case t < 2*Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < 2*Microsecond:
		return fmt.Sprintf("%.2fns", t.Nanoseconds())
	case t < 2*Millisecond:
		return fmt.Sprintf("%.2fus", float64(t)/float64(Microsecond))
	case t < 2*Second:
		return fmt.Sprintf("%.2fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// MaxTime returns the later of two timestamps.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Clock converts between cycles of a fixed-frequency clock and simulated time.
type Clock struct {
	period Time // duration of one cycle
}

// NewClock returns a clock running at the given frequency in hertz.
// It panics if the frequency does not divide one second into a whole number
// of picoseconds (all realistic frequencies do).
func NewClock(hz int64) Clock {
	if hz <= 0 {
		panic("sim: clock frequency must be positive")
	}
	p := int64(Second) / hz
	if p <= 0 {
		panic("sim: clock frequency too high for picosecond resolution")
	}
	return Clock{period: Time(p)}
}

// Cycles converts a cycle count to a duration.
func (c Clock) Cycles(n int64) Time { return Time(n) * c.period }

// Period returns the duration of a single cycle.
func (c Clock) Period() Time { return c.period }
