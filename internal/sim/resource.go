package sim

// Resource models a single-server resource such as a memory bank or a
// command bus: at most one operation occupies it at a time. Reservations
// are gap-filling (see timeline): an operation ready early may use an idle
// interval left by earlier-issued but later-scheduled work, as a queued
// memory controller would.
type Resource struct {
	name string
	kind string // attribution class reported to the tracer
	tl   timeline
	tr   Tracer

	ops  int64
	busy Time // total occupied time, for utilisation reporting
	wait Time // total queueing delay (start - ready) across operations
}

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Acquire reserves the resource for dur starting no earlier than ready and
// returns the start and completion times of the reservation.
func (r *Resource) Acquire(ready, dur Time) (start, done Time) {
	start = r.tl.reserve(ready, dur)
	done = start + dur
	r.ops++
	r.busy += dur
	r.wait += start - ready
	if r.tr != nil {
		r.tr.OnReserve(r.name, r.kind, ready, start, done, done)
	}
	return start, done
}

// FreeAt returns the time after the last reservation (interior idle gaps
// may still exist before it).
func (r *Resource) FreeAt() Time { return r.tl.freeAt() }

// Ops returns the number of operations served.
func (r *Resource) Ops() int64 { return r.ops }

// BusyTime returns the cumulative occupied duration.
func (r *Resource) BusyTime() Time { return r.busy }

// WaitTime returns the cumulative queueing delay (time operations spent
// between becoming ready and acquiring the resource).
func (r *Resource) WaitTime() Time { return r.wait }

// Name returns the diagnostic name.
func (r *Resource) Name() string { return r.name }

// Reset returns the resource to the idle state and clears statistics.
func (r *Resource) Reset() {
	r.tl.reset()
	r.ops = 0
	r.busy = 0
	r.wait = 0
}

// Engine models a pipelined functional unit, e.g. an AES or MAC engine.
// A new operation can be issued every initiation interval (II); each
// operation completes latency after it issues. Issue slots are gap-filling,
// like Resource.
type Engine struct {
	name    string
	kind    string // attribution class reported to the tracer
	latency Time
	ii      Time

	tl       timeline
	tr       Tracer
	ops      int64
	lastDone Time
	busy     Time // issue-slot occupancy (II per op)
	wait     Time // total structural-hazard delay (start - ready)
}

// NewEngine returns a pipelined engine with the given per-operation latency
// and initiation interval. An II of zero means fully combinational issue
// (no structural hazard); latency must be non-negative.
func NewEngine(name string, latency, ii Time) *Engine {
	if latency < 0 || ii < 0 {
		panic("sim: engine latency and II must be non-negative")
	}
	return &Engine{name: name, latency: latency, ii: ii}
}

// Issue starts one operation no earlier than ready, respecting the
// initiation interval, and returns its completion time.
func (e *Engine) Issue(ready Time) (done Time) {
	var start Time
	if e.ii == 0 {
		start = ready
	} else {
		start = e.tl.reserve(ready, e.ii)
	}
	done = start + e.latency
	e.ops++
	e.busy += e.ii
	e.wait += start - ready
	if done > e.lastDone {
		e.lastDone = done
	}
	if e.tr != nil {
		e.tr.OnReserve(e.name, e.kind, ready, start, start+e.ii, done)
	}
	return done
}

// Ops returns the number of operations issued.
func (e *Engine) Ops() int64 { return e.ops }

// LastDone returns the completion time of the latest-finishing operation.
func (e *Engine) LastDone() Time { return e.lastDone }

// BusyTime returns the cumulative issue-slot occupancy (one initiation
// interval per issued operation; zero for combinational engines).
func (e *Engine) BusyTime() Time { return e.busy }

// WaitTime returns the cumulative structural-hazard delay operations spent
// waiting for an issue slot.
func (e *Engine) WaitTime() Time { return e.wait }

// Latency returns the per-operation latency.
func (e *Engine) Latency() Time { return e.latency }

// Name returns the diagnostic name.
func (e *Engine) Name() string { return e.name }

// Reset returns the engine to the idle state and clears statistics.
func (e *Engine) Reset() {
	e.tl.reset()
	e.ops = 0
	e.lastDone = 0
	e.busy = 0
	e.wait = 0
}
