package sim

import "testing"

type captureTracer struct {
	events []struct {
		name, kind              string
		ready, start, end, done Time
	}
}

func (c *captureTracer) OnReserve(name, kind string, ready, start, end, done Time) {
	c.events = append(c.events, struct {
		name, kind              string
		ready, start, end, done Time
	}{name, kind, ready, start, end, done})
}

func TestResourceTracerSeesEveryReservation(t *testing.T) {
	r := NewResource("bank03")
	tr := &captureTracer{}
	r.SetTracer("bank", tr)

	r.Acquire(0, 100)  // [0,100)
	r.Acquire(50, 100) // queued: [100,200)

	if len(tr.events) != 2 {
		t.Fatalf("got %d events, want 2", len(tr.events))
	}
	e := tr.events[1]
	if e.name != "bank03" || e.kind != "bank" {
		t.Errorf("labels = %q/%q, want bank03/bank", e.name, e.kind)
	}
	if e.ready != 50 || e.start != 100 || e.end != 200 || e.done != 200 {
		t.Errorf("times = %d/%d/%d/%d, want 50/100/200/200", e.ready, e.start, e.end, e.done)
	}

	// Resources report end == done.
	for _, e := range tr.events {
		if e.end != e.done {
			t.Errorf("resource event end %d != done %d", e.end, e.done)
		}
	}

	r.SetTracer("bank", nil)
	r.Acquire(200, 10)
	if len(tr.events) != 2 {
		t.Error("detached tracer still received events")
	}
}

func TestEngineTracerReportsIssueSlotAndCompletion(t *testing.T) {
	e := NewEngine("mac", 40, 10) // latency 40, II 10
	tr := &captureTracer{}
	e.SetTracer("mac", tr)

	e.Issue(0) // slot [0,10), done 40
	e.Issue(0) // slot [10,20), done 50

	if len(tr.events) != 2 {
		t.Fatalf("got %d events, want 2", len(tr.events))
	}
	ev := tr.events[1]
	if ev.ready != 0 || ev.start != 10 || ev.end != 20 || ev.done != 50 {
		t.Errorf("times = %d/%d/%d/%d, want 0/10/20/50", ev.ready, ev.start, ev.end, ev.done)
	}

	// Combinational engines (II 0) report a zero-width issue slot.
	c := NewEngine("xor", 5, 0)
	ctr := &captureTracer{}
	c.SetTracer("aes", ctr)
	c.Issue(7)
	ev = ctr.events[0]
	if ev.start != 7 || ev.end != 7 || ev.done != 12 {
		t.Errorf("combinational times = %d/%d/%d, want 7/7/12", ev.start, ev.end, ev.done)
	}
}

// The nil-tracer fast path must not allocate: draining at paper scale
// places millions of reservations, and an untraced run has to stay exactly
// as cheap as before the hook existed.
func TestAcquireNoAllocsWithoutTracer(t *testing.T) {
	r := NewResource("bank")
	e := NewEngine("mac", 40, 10)
	var ready Time
	step := func() {
		_, done := r.Acquire(ready, 10)
		ready = e.Issue(done)
	}
	for i := 0; i < 1000; i++ {
		step() // warm up: let the bounded gap lists reach steady state
	}
	if avg := testing.AllocsPerRun(1000, step); avg != 0 {
		t.Errorf("Acquire+Issue allocate %.3f objects/op without a tracer, want 0", avg)
	}
}
