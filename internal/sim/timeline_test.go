package sim

import (
	"testing"
	"testing/quick"
)

func TestTimelineBasicPacking(t *testing.T) {
	var tl timeline
	if s := tl.reserve(0, 10); s != 0 {
		t.Fatalf("first start = %v", s)
	}
	if s := tl.reserve(0, 10); s != 10 {
		t.Fatalf("second start = %v, want 10 (tail append)", s)
	}
}

func TestTimelineGapSplit(t *testing.T) {
	var tl timeline
	tl.reserve(100, 10) // creates gap [0,100)
	// Middle-of-gap placement splits into two gaps.
	if s := tl.reserve(40, 10); s != 40 {
		t.Fatalf("middle placement = %v, want 40", s)
	}
	if s := tl.reserve(0, 40); s != 0 {
		t.Fatalf("front slice = %v, want 0", s)
	}
	if s := tl.reserve(0, 50); s != 50 {
		t.Fatalf("back slice = %v, want 50", s)
	}
	// Gap is fully consumed; next goes to the tail.
	if s := tl.reserve(0, 1); s != 110 {
		t.Fatalf("tail = %v, want 110", s)
	}
}

func TestTimelineReadyInsideGap(t *testing.T) {
	var tl timeline
	tl.reserve(100, 10)
	// Ready at 95: gap [0,100) has only 5 units after ready; must not fit
	// a 10-unit reservation, so it goes to the tail.
	if s := tl.reserve(95, 10); s != 110 {
		t.Fatalf("start = %v, want 110", s)
	}
}

func TestTimelineGapOverflowDropsSmallest(t *testing.T) {
	var tl timeline
	// Create maxGaps+8 gaps of increasing size.
	at := Time(0)
	for i := 0; i < maxGaps+8; i++ {
		at += Time(i + 1) // gap of size i+1
		tl.reserve(at, 1)
		at++
	}
	if len(tl.gaps) > maxGaps {
		t.Fatalf("gap list grew to %d > %d", len(tl.gaps), maxGaps)
	}
	// The timeline must still function after overflow.
	s := tl.reserve(0, 1)
	if s < 0 {
		t.Fatal("reserve failed after overflow")
	}
}

func TestTimelineNegativeDurationPanics(t *testing.T) {
	var tl timeline
	defer func() {
		if recover() == nil {
			t.Error("negative duration did not panic")
		}
	}()
	tl.reserve(0, -1)
}

// Property: reservations never overlap and never start before ready, and
// gaps stay sorted and disjoint.
func TestTimelineInvariantProperty(t *testing.T) {
	f := func(ops []uint32) bool {
		var tl timeline
		type span struct{ s, e Time }
		var spans []span
		for _, op := range ops {
			ready := Time(op % 5000)
			dur := Time(op%37) + 1
			s := tl.reserve(ready, dur)
			if s < ready {
				return false
			}
			for _, sp := range spans {
				if s < sp.e && sp.s < s+dur {
					return false
				}
			}
			spans = append(spans, span{s, s + dur})
			// Gap list invariants.
			for i := range tl.gaps {
				if tl.gaps[i].end <= tl.gaps[i].start {
					return false
				}
				if i > 0 && tl.gaps[i].start < tl.gaps[i-1].end {
					return false
				}
				if tl.gaps[i].end > tl.tail {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
