package sim

import "testing"

// TestResourceResetClearsAllStats drives a resource through a schedule with
// queueing delay, resets it, and requires the second, identical schedule to
// produce identical statistics: Reset must clear every accumulator (ops,
// busy, wait) and the occupancy timeline, or stats leak across episodes.
func TestResourceResetClearsAllStats(t *testing.T) {
	r := NewResource("bank")
	run := func() (ops, busy, wait int64, free Time) {
		// Two back-to-back ops ready at 0: the second queues behind the
		// first, accumulating wait. A third fills the gap left by a late
		// ready time.
		r.Acquire(0, 100)
		r.Acquire(0, 100) // waits 100
		r.Acquire(500, 50)
		return r.Ops(), int64(r.BusyTime()), int64(r.WaitTime()), r.FreeAt()
	}
	ops1, busy1, wait1, free1 := run()
	if wait1 == 0 {
		t.Fatal("test schedule accumulated no wait; it cannot detect a leak")
	}
	r.Reset()
	if r.Ops() != 0 || r.BusyTime() != 0 || r.WaitTime() != 0 || r.FreeAt() != 0 {
		t.Fatalf("Reset left state: ops=%d busy=%v wait=%v freeAt=%v",
			r.Ops(), r.BusyTime(), r.WaitTime(), r.FreeAt())
	}
	ops2, busy2, wait2, free2 := run()
	if ops1 != ops2 || busy1 != busy2 || wait1 != wait2 || free1 != free2 {
		t.Fatalf("reset-then-reuse diverged: (%d,%d,%d,%v) vs (%d,%d,%d,%v)",
			ops1, busy1, wait1, free1, ops2, busy2, wait2, free2)
	}
}

// TestEngineResetClearsAllStats is the same reset-then-reuse contract for
// the pipelined engine, with particular attention to the wait accumulator:
// structural-hazard delay from one episode must not leak into the next
// (Engine.Reset clears wait exactly like Resource.Reset does).
func TestEngineResetClearsAllStats(t *testing.T) {
	e := NewEngine("mac", 160, 82)
	run := func() (ops, busy, wait int64, last Time) {
		// Issue a burst at ready=0: every op after the first stalls on the
		// initiation interval, accumulating structural-hazard wait.
		for i := 0; i < 8; i++ {
			e.Issue(0)
		}
		return e.Ops(), int64(e.BusyTime()), int64(e.WaitTime()), e.LastDone()
	}
	ops1, busy1, wait1, last1 := run()
	if wait1 == 0 {
		t.Fatal("test schedule accumulated no wait; it cannot detect a leak")
	}
	e.Reset()
	if e.Ops() != 0 || e.BusyTime() != 0 || e.WaitTime() != 0 || e.LastDone() != 0 {
		t.Fatalf("Reset left state: ops=%d busy=%v wait=%v lastDone=%v",
			e.Ops(), e.BusyTime(), e.WaitTime(), e.LastDone())
	}
	ops2, busy2, wait2, last2 := run()
	if ops1 != ops2 || busy1 != busy2 || wait1 != wait2 || last1 != last2 {
		t.Fatalf("reset-then-reuse diverged: (%d,%d,%d,%v) vs (%d,%d,%d,%v)",
			ops1, busy1, wait1, last1, ops2, busy2, wait2, last2)
	}
	// A second reset after reuse must also be clean (repeated episode loops).
	e.Reset()
	if e.WaitTime() != 0 {
		t.Fatalf("second Reset leaked wait=%v", e.WaitTime())
	}
}
