package sim

import (
	"fmt"
	"sort"
	"strings"
)

// CounterSet is an ordered collection of labelled int64 counters. It is used
// for the per-category breakdowns in the paper's figures (memory writes by
// type, MAC calculations by purpose). Categories appear in the order they
// are first incremented, which keeps reports stable for a deterministic run.
type CounterSet struct {
	order  []string
	counts map[string]int64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{counts: make(map[string]int64)}
}

// Add increments the named counter by n, creating it if needed.
func (cs *CounterSet) Add(name string, n int64) {
	if _, ok := cs.counts[name]; !ok {
		cs.order = append(cs.order, name)
	}
	cs.counts[name] += n
}

// Get returns the value of the named counter (zero if absent).
func (cs *CounterSet) Get(name string) int64 { return cs.counts[name] }

// Total returns the sum of all counters.
func (cs *CounterSet) Total() int64 {
	var t int64
	for _, v := range cs.counts {
		t += v
	}
	return t
}

// Names returns the counter names in first-use order.
func (cs *CounterSet) Names() []string {
	out := make([]string, len(cs.order))
	copy(out, cs.order)
	return out
}

// SortedNames returns the counter names in lexical order.
func (cs *CounterSet) SortedNames() []string {
	out := cs.Names()
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the counter set.
func (cs *CounterSet) Clone() *CounterSet {
	out := NewCounterSet()
	for _, name := range cs.order {
		out.Add(name, cs.counts[name])
	}
	return out
}

// Merge adds every counter from other into cs.
func (cs *CounterSet) Merge(other *CounterSet) {
	for _, name := range other.order {
		cs.Add(name, other.counts[name])
	}
}

// String renders "name=value" pairs in first-use order.
func (cs *CounterSet) String() string {
	var b strings.Builder
	for i, name := range cs.order {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", name, cs.counts[name])
	}
	return b.String()
}
