package sim

import (
	"fmt"
	"sort"
	"strings"
)

// CounterSet is an ordered collection of labelled int64 counters. It is used
// for the per-category breakdowns in the paper's figures (memory writes by
// type, MAC calculations by purpose). Categories appear in the order they
// are first incremented, which keeps reports stable for a deterministic run.
//
// Add is on the simulator's per-memory-access hot path, so values live in a
// slice indexed by a name→index map rather than directly in a string-keyed
// map, and the last-hit index is cached: runs of accesses in the same
// category (the common case in a drain loop, where the name is a constant
// string compared pointer-first) skip the hash entirely.
type CounterSet struct {
	order []string
	vals  []int64
	index map[string]int
	last  string // name of the most recently added category
	lasti int    // its index in vals
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{index: make(map[string]int), lasti: -1}
}

// Add increments the named counter by n, creating it if needed.
func (cs *CounterSet) Add(name string, n int64) {
	if cs.lasti >= 0 && name == cs.last {
		cs.vals[cs.lasti] += n
		return
	}
	i, ok := cs.index[name]
	if !ok {
		i = len(cs.vals)
		cs.index[name] = i
		cs.order = append(cs.order, name)
		cs.vals = append(cs.vals, 0)
	}
	cs.vals[i] += n
	cs.last, cs.lasti = name, i
}

// Get returns the value of the named counter (zero if absent).
func (cs *CounterSet) Get(name string) int64 {
	if i, ok := cs.index[name]; ok {
		return cs.vals[i]
	}
	return 0
}

// Total returns the sum of all counters.
func (cs *CounterSet) Total() int64 {
	var t int64
	for _, v := range cs.vals {
		t += v
	}
	return t
}

// Names returns the counter names in first-use order.
func (cs *CounterSet) Names() []string {
	out := make([]string, len(cs.order))
	copy(out, cs.order)
	return out
}

// SortedNames returns the counter names in lexical order.
func (cs *CounterSet) SortedNames() []string {
	out := cs.Names()
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the counter set.
func (cs *CounterSet) Clone() *CounterSet {
	out := NewCounterSet()
	for i, name := range cs.order {
		out.Add(name, cs.vals[i])
	}
	return out
}

// Merge adds every counter from other into cs.
func (cs *CounterSet) Merge(other *CounterSet) {
	for i, name := range other.order {
		cs.Add(name, other.vals[i])
	}
}

// String renders "name=value" pairs in first-use order.
func (cs *CounterSet) String() string {
	var b strings.Builder
	for i, name := range cs.order {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", name, cs.vals[i])
	}
	return b.String()
}
