package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// ivTracer captures every reservation for invariant checking.
type ivTracer struct {
	ivs []struct{ ready, start, end, done Time }
}

func (t *ivTracer) OnReserve(_, _ string, ready, start, end, done Time) {
	t.ivs = append(t.ivs, struct{ ready, start, end, done Time }{ready, start, end, done})
}

// naiveReserve is the reference gap-filling model: given all intervals
// reserved so far, the earliest start >= ready whose [start, start+dur)
// intersects none of them. O(n^2) overall and unbounded, unlike the
// production timeline's bounded gap list.
func naiveReserve(ivs [][2]Time, ready, dur Time) Time {
	// Candidate starts: ready itself and the end of every earlier interval.
	cands := []Time{ready}
	for _, iv := range ivs {
		if iv[1] >= ready {
			cands = append(cands, iv[1])
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	for _, s := range cands {
		if s < ready {
			continue
		}
		ok := true
		for _, iv := range ivs {
			if s < iv[1] && iv[0] < s+dur {
				ok = false
				break
			}
		}
		if ok {
			return s
		}
	}
	panic("unreachable: placing after the last interval always fits")
}

// checkTiling asserts the invariants shared by every acquire sequence:
// wait >= 0 per op, reservations never overlap, and busy + idle exactly
// tile [0, FreeAt): the sum of reservation lengths plus the uncovered time
// equals the span, with every reservation inside it.
func checkTiling(t *testing.T, tr *ivTracer, busy, wait Time, freeAt Time) {
	t.Helper()
	var sumDur, sumWait Time
	for _, iv := range tr.ivs {
		if iv.start < iv.ready {
			t.Fatalf("reservation started at %v before ready %v", iv.start, iv.ready)
		}
		sumWait += iv.start - iv.ready
		sumDur += iv.end - iv.start
		if iv.end > freeAt {
			t.Fatalf("reservation [%v, %v) extends past FreeAt %v", iv.start, iv.end, freeAt)
		}
	}
	if sumWait < 0 {
		t.Fatalf("negative cumulative wait %v", sumWait)
	}
	if wait != sumWait {
		t.Fatalf("WaitTime = %v, per-op sum = %v", wait, sumWait)
	}
	if busy != sumDur {
		t.Fatalf("BusyTime = %v, reservation-length sum = %v", busy, sumDur)
	}
	// Zero-length reservations occupy no time and may share a boundary with
	// a real one; only positive-length intervals can overlap.
	sorted := make([]struct{ ready, start, end, done Time }, 0, len(tr.ivs))
	for _, iv := range tr.ivs {
		if iv.end > iv.start {
			sorted = append(sorted, iv)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].start < sorted[j].start })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].start < sorted[i-1].end {
			t.Fatalf("reservations overlap: [%v,%v) then [%v,%v)",
				sorted[i-1].start, sorted[i-1].end, sorted[i].start, sorted[i].end)
		}
	}
	idle := freeAt - sumDur
	if idle < 0 {
		t.Fatalf("busy %v exceeds span [0, %v)", sumDur, freeAt)
	}
	// Idle computed from the interval structure must agree: span minus
	// covered time, where covered time is the non-overlapping sum above.
	var covered Time
	for _, iv := range sorted {
		covered += iv.end - iv.start
	}
	if covered+idle != freeAt {
		t.Fatalf("busy (%v) + idle (%v) != FreeAt (%v)", covered, idle, freeAt)
	}
}

// TestResourceGapFillingProperties drives random acquire sequences through
// a Resource and checks (a) the shared tiling/wait invariants and (b) exact
// agreement with the naive unbounded re-simulation. Sequences are capped at
// maxGaps ops so the bounded gap list can never evict, making the naive
// model an exact oracle, not just a bound.
func TestResourceGapFillingProperties(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := NewResource("bank")
		tr := &ivTracer{}
		r.SetTracer("bank", tr)

		var naive [][2]Time
		n := 1 + rng.Intn(maxGaps)
		for op := 0; op < n; op++ {
			// Durations stay positive: the production timeline places a
			// zero-length op at the next gap/tail boundary while the naive
			// model admits it anywhere, and no simulated op is zero-length.
			ready := Time(rng.Intn(4000))
			dur := Time(1 + rng.Intn(300))
			wantStart := naiveReserve(naive, ready, dur)
			start, done := r.Acquire(ready, dur)
			if start != wantStart {
				t.Fatalf("seed %d op %d: Acquire(ready=%v, dur=%v) started at %v, naive model says %v",
					seed, op, ready, dur, start, wantStart)
			}
			if done != start+dur {
				t.Fatalf("seed %d op %d: done %v != start %v + dur %v", seed, op, done, start, dur)
			}
			naive = append(naive, [2]Time{start, start + dur})
		}
		checkTiling(t, tr, r.BusyTime(), r.WaitTime(), r.FreeAt())
		if r.Ops() != int64(n) {
			t.Fatalf("seed %d: ops = %d, want %d", seed, r.Ops(), n)
		}
	}
}

// TestResourceGapFillingLongSequences keeps the tiling/wait invariants over
// sequences long enough to overflow the bounded gap list (where dropped
// gaps may only waste time, never cause overlap or negative wait).
func TestResourceGapFillingLongSequences(t *testing.T) {
	for seed := int64(100); seed < 104; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := NewResource("bank")
		tr := &ivTracer{}
		r.SetTracer("bank", tr)
		for op := 0; op < 2000; op++ {
			ready := Time(rng.Intn(1 << 20))
			dur := Time(rng.Intn(500))
			r.Acquire(ready, dur)
		}
		checkTiling(t, tr, r.BusyTime(), r.WaitTime(), r.FreeAt())
	}
}

// TestEngineGapFillingProperties checks the pipelined engine against the
// same naive model over its issue slots: slots of II width never overlap,
// wait matches the per-op structural-hazard sum, busy is II per op, and
// LastDone is the max completion.
func TestEngineGapFillingProperties(t *testing.T) {
	const latency, ii = 160, 82
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine("mac", latency, ii)
		tr := &ivTracer{}
		e.SetTracer("mac", tr)

		var naive [][2]Time
		var wantLast Time
		n := 1 + rng.Intn(maxGaps)
		for op := 0; op < n; op++ {
			ready := Time(rng.Intn(8000))
			wantStart := naiveReserve(naive, ready, ii)
			done := e.Issue(ready)
			if done != wantStart+latency {
				t.Fatalf("seed %d op %d: Issue(ready=%v) done %v, naive model says %v",
					seed, op, ready, done, wantStart+latency)
			}
			naive = append(naive, [2]Time{wantStart, wantStart + ii})
			if done > wantLast {
				wantLast = done
			}
		}
		if e.LastDone() != wantLast {
			t.Fatalf("seed %d: LastDone %v, want %v", seed, e.LastDone(), wantLast)
		}
		if e.BusyTime() != Time(n)*ii {
			t.Fatalf("seed %d: BusyTime %v, want %v", seed, e.BusyTime(), Time(n)*ii)
		}
		// Issue slots tile like resource reservations; completion tails
		// (done > end) legitimately overlap and are excluded by using the
		// recorded end (start + II).
		checkTiling(t, tr, e.BusyTime(), e.WaitTime(), e.tl.freeAt())
	}
}

// TestEngineCombinationalIssue pins the II == 0 contract: issue is
// unconstrained, start == ready, no wait, no busy time.
func TestEngineCombinationalIssue(t *testing.T) {
	e := NewEngine("aes", 40, 0)
	for i := 0; i < 10; i++ {
		ready := Time(i * 3)
		if done := e.Issue(ready); done != ready+40 {
			t.Fatalf("combinational Issue(%v) = %v, want %v", ready, done, ready+40)
		}
	}
	if e.WaitTime() != 0 || e.BusyTime() != 0 {
		t.Fatalf("combinational engine accumulated wait %v busy %v", e.WaitTime(), e.BusyTime())
	}
}
