package sim

import "sort"

// timeline is a single-server occupancy schedule with gap filling: a
// reservation may be placed in an earlier idle interval if one fits after
// its ready time. This models an out-of-order memory controller or a
// pipelined functional unit with a request queue: independent operations
// issued later in program order can still use earlier idle slots, which is
// what keeps the simulated drain bandwidth-bound rather than artificially
// serialised by issue order.
//
// The gap list is bounded; when it overflows, the smallest gap is dropped
// (conservative: dropped capacity is never reused, slightly over-estimating
// time).
type timeline struct {
	gaps []gap // sorted by start time
	tail Time  // end of the last reservation
	// maxLen over-estimates the longest gap's length: it is exact right
	// after an eviction scan or a failed full scan and only ever lags by
	// over-estimating (gap shrinks don't lower it). When dur exceeds it no
	// gap can fit, so reserve skips the scan; the skip can only bypass a
	// scan that would have failed, leaving placement semantics untouched.
	// The invariants property suite (invariants_test.go) pins the
	// equivalence against the naive earliest-fit oracle.
	maxLen Time
}

type gap struct{ start, end Time }

// maxGaps bounds the per-timeline gap list.
const maxGaps = 64

// reserve books dur units starting no earlier than ready, preferring the
// earliest fitting idle gap, and returns the start time.
func (tl *timeline) reserve(ready, dur Time) Time {
	if dur < 0 {
		panic("sim: negative duration")
	}
	if dur <= tl.maxLen {
		// Gaps are disjoint and sorted by start, so their ends are sorted
		// too: gaps ending at or before ready — unusable for this request —
		// form a prefix. The common case (ready at or before the first
		// gap) costs one comparison; otherwise a binary search replaces the
		// linear skip over the stale prefix.
		i, n := 0, len(tl.gaps)
		full := true
		if n > 0 && tl.gaps[0].end <= ready {
			i = sort.Search(n, func(j int) bool { return tl.gaps[j].end > ready })
			full = false
		}
		for ; i < n; i++ {
			g := tl.gaps[i]
			s := MaxTime(g.start, ready)
			if s+dur > g.end {
				continue
			}
			// Split the gap around [s, s+dur).
			switch {
			case s == g.start && s+dur == g.end:
				tl.gaps = append(tl.gaps[:i], tl.gaps[i+1:]...)
			case s == g.start:
				tl.gaps[i].start = s + dur
			case s+dur == g.end:
				tl.gaps[i].end = s
			default:
				tl.gaps[i].end = s
				tl.insertGap(gap{s + dur, g.end}, i+1)
			}
			return s
		}
		if full {
			// The scan touched every gap and found no fit: refresh the
			// over-estimate to the exact maximum for free.
			var m Time
			for _, g := range tl.gaps {
				if d := g.end - g.start; d > m {
					m = d
				}
			}
			tl.maxLen = m
		}
	}
	s := MaxTime(ready, tl.tail)
	if s > tl.tail {
		tl.insertGap(gap{tl.tail, s}, len(tl.gaps))
	}
	tl.tail = s + dur
	return s
}

// insertGap inserts g at position i, evicting the smallest gap when full.
func (tl *timeline) insertGap(g gap, i int) {
	if g.end <= g.start {
		return
	}
	if tl.gaps == nil {
		// One allocation per timeline lifetime: the list is bounded by
		// maxGaps and reset keeps the backing array, so episode loops that
		// Reset between drains never re-grow it.
		tl.gaps = make([]gap, 0, maxGaps)
	}
	glen := g.end - g.start
	if len(tl.gaps) >= maxGaps {
		// Drop the smallest gap (never this one if it is larger). The scan
		// already touches every gap, so the exact longest length rides
		// along and refreshes the maxLen over-estimate.
		smallest, si := glen, -1
		var largest Time
		for j := range tl.gaps {
			d := tl.gaps[j].end - tl.gaps[j].start
			if d < smallest {
				smallest, si = d, j
			}
			if d > largest {
				largest = d
			}
		}
		if si < 0 {
			tl.maxLen = largest
			return // g itself is the smallest; drop it
		}
		if si < i {
			i--
		}
		tl.gaps = append(tl.gaps[:si], tl.gaps[si+1:]...)
		if glen > largest {
			largest = glen
		}
		tl.maxLen = largest
	} else if glen > tl.maxLen {
		tl.maxLen = glen
	}
	tl.gaps = append(tl.gaps, gap{})
	copy(tl.gaps[i+1:], tl.gaps[i:])
	tl.gaps[i] = g
}

// freeAt returns the tail free time (ignoring interior gaps).
func (tl *timeline) freeAt() Time { return tl.tail }

// reset clears the schedule, keeping the gap list's backing array.
func (tl *timeline) reset() { tl.gaps = tl.gaps[:0]; tl.tail = 0; tl.maxLen = 0 }
