package sim

// timeline is a single-server occupancy schedule with gap filling: a
// reservation may be placed in an earlier idle interval if one fits after
// its ready time. This models an out-of-order memory controller or a
// pipelined functional unit with a request queue: independent operations
// issued later in program order can still use earlier idle slots, which is
// what keeps the simulated drain bandwidth-bound rather than artificially
// serialised by issue order.
//
// The gap list is bounded; when it overflows, the smallest gap is dropped
// (conservative: dropped capacity is never reused, slightly over-estimating
// time).
type timeline struct {
	gaps []gap // sorted by start time
	tail Time  // end of the last reservation
}

type gap struct{ start, end Time }

// maxGaps bounds the per-timeline gap list.
const maxGaps = 64

// reserve books dur units starting no earlier than ready, preferring the
// earliest fitting idle gap, and returns the start time.
func (tl *timeline) reserve(ready, dur Time) Time {
	if dur < 0 {
		panic("sim: negative duration")
	}
	for i := range tl.gaps {
		g := tl.gaps[i]
		if g.end <= ready {
			continue
		}
		s := MaxTime(g.start, ready)
		if s+dur > g.end {
			continue
		}
		// Split the gap around [s, s+dur).
		switch {
		case s == g.start && s+dur == g.end:
			tl.gaps = append(tl.gaps[:i], tl.gaps[i+1:]...)
		case s == g.start:
			tl.gaps[i].start = s + dur
		case s+dur == g.end:
			tl.gaps[i].end = s
		default:
			tl.gaps[i].end = s
			tl.insertGap(gap{s + dur, g.end}, i+1)
		}
		return s
	}
	s := MaxTime(ready, tl.tail)
	if s > tl.tail {
		tl.insertGap(gap{tl.tail, s}, len(tl.gaps))
	}
	tl.tail = s + dur
	return s
}

// insertGap inserts g at position i, evicting the smallest gap when full.
func (tl *timeline) insertGap(g gap, i int) {
	if g.end <= g.start {
		return
	}
	if tl.gaps == nil {
		// One allocation per timeline lifetime: the list is bounded by
		// maxGaps and reset keeps the backing array, so episode loops that
		// Reset between drains never re-grow it.
		tl.gaps = make([]gap, 0, maxGaps)
	}
	if len(tl.gaps) >= maxGaps {
		// Drop the smallest gap (never this one if it is larger).
		smallest, si := g.end-g.start, -1
		for j := range tl.gaps {
			if d := tl.gaps[j].end - tl.gaps[j].start; d < smallest {
				smallest, si = d, j
			}
		}
		if si < 0 {
			return // g itself is the smallest; drop it
		}
		if si < i {
			i--
		}
		tl.gaps = append(tl.gaps[:si], tl.gaps[si+1:]...)
	}
	tl.gaps = append(tl.gaps, gap{})
	copy(tl.gaps[i+1:], tl.gaps[i:])
	tl.gaps[i] = g
}

// freeAt returns the tail free time (ignoring interior gaps).
func (tl *timeline) freeAt() Time { return tl.tail }

// reset clears the schedule, keeping the gap list's backing array.
func (tl *timeline) reset() { tl.gaps = tl.gaps[:0]; tl.tail = 0 }
