package sim

import "testing"

// FuzzTimelineReserve drives the gap-filling scheduler with arbitrary
// (ready, duration) sequences and checks the structural invariants:
// no reservation starts before its ready time, reservations never overlap,
// and the gap list stays sorted, positive-length and below the tail.
func FuzzTimelineReserve(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 200, 5, 0, 50})
	f.Add([]byte{255, 255, 0, 0, 128, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		var tl timeline
		type span struct{ s, e Time }
		var spans []span
		for i := 0; i+1 < len(data) && i < 200; i += 2 {
			ready := Time(data[i]) * 17
			dur := Time(data[i+1]%40) + 1
			s := tl.reserve(ready, dur)
			if s < ready {
				t.Fatalf("started %v before ready %v", s, ready)
			}
			for _, sp := range spans {
				if s < sp.e && sp.s < s+dur {
					t.Fatalf("overlap: [%v,%v) with [%v,%v)", s, s+dur, sp.s, sp.e)
				}
			}
			spans = append(spans, span{s, s + dur})
			for j := range tl.gaps {
				g := tl.gaps[j]
				if g.end <= g.start {
					t.Fatal("degenerate gap")
				}
				if g.end > tl.tail {
					t.Fatal("gap beyond tail")
				}
				if j > 0 && g.start < tl.gaps[j-1].end {
					t.Fatal("gaps out of order or overlapping")
				}
			}
		}
	})
}
