package recovery

import (
	"errors"
	"testing"

	"repro/internal/bmt"
	"repro/internal/cme"
	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/mem"
	"repro/internal/secmem"
	"repro/internal/sim"
)

// paritySystem builds a Base-LU system with Soteria-style vault parity.
func paritySystem(t *testing.T) (*core.System, *hierarchy.Hierarchy) {
	t.Helper()
	hcfg := testHierarchyConfig()
	h := hierarchy.New(hcfg)
	lay := bmt.NewLayout(bmt.Config{
		DataSize:    256 << 20,
		CHVCapacity: uint64(hcfg.TotalLines()) + 64,
		VaultBlocks: 80000,
	})
	nvm := mem.NewController(mem.DefaultConfig())
	enc := cme.NewEngine(7)
	scfg := secmem.DefaultConfig()
	scfg.Scheme = secmem.LazyUpdate
	scfg.CounterCacheBytes = 8 << 10
	scfg.MACCacheBytes = 16 << 10
	scfg.TreeCacheBytes = 8 << 10
	scfg.VaultParity = true
	sec := secmem.New(scfg, lay, enc, nvm)
	return &core.System{Layout: lay, Enc: enc, NVM: nvm, Sec: sec}, h
}

func drainParity(t *testing.T, sys *core.System, h *hierarchy.Hierarchy) (map[uint64]mem.Block, core.PersistentState) {
	t.Helper()
	h.FillAllDirty(hierarchy.FillOptions{
		Pattern:  hierarchy.PatternWorstCaseSparse,
		DataSize: 256 << 20,
		Seed:     60,
	})
	golden := h.Golden()
	d := core.NewDrainer(core.BaseLU, sys, 0)
	res, err := d.Drain(h.DirtyBlocks())
	if err != nil {
		t.Fatal(err)
	}
	h.Clear()
	sys.Sec.Crash()
	if !res.Persist.Vault.Parity {
		t.Fatal("vault record does not carry parity")
	}
	return golden, res.Persist
}

func TestVaultParityRepairsSingleCorruption(t *testing.T) {
	sys, h := paritySystem(t)
	golden, ps := drainParity(t, sys, h)

	// Corrupt ONE payload block in the vault while power is out.
	sys.NVM.Store().CorruptByte(sys.Layout.VaultAddr(5), 9, 0x10)

	res, err := RecoverBaseline(sys, ps)
	if err != nil {
		t.Fatalf("parity-backed recovery failed: %v", err)
	}
	if res.LinesRestored != ps.Vault.Count {
		t.Error("line count wrong after repair")
	}
	// Spot-check data integrity through the secure read path.
	var now sim.Time
	count := 0
	for addr, want := range golden {
		got, done, err := sys.Sec.ReadBlock(now, addr)
		if err != nil {
			t.Fatalf("post-repair read %#x: %v", addr, err)
		}
		now = done
		if got != want {
			t.Fatalf("post-repair mismatch at %#x", addr)
		}
		if count++; count >= 300 {
			break
		}
	}
}

func TestVaultParityRefusesDoubleCorruptionInGroup(t *testing.T) {
	sys, h := paritySystem(t)
	_, ps := drainParity(t, sys, h)
	// Two corrupted payload blocks in the same 8-block group.
	sys.NVM.Store().CorruptByte(sys.Layout.VaultAddr(0), 0, 0x01)
	sys.NVM.Store().CorruptByte(sys.Layout.VaultAddr(1), 0, 0x01)
	var re *Error
	if _, err := RecoverBaseline(sys, ps); !errors.As(err, &re) {
		t.Fatalf("double corruption recovered: %v", err)
	}
}

func TestVaultParityRepairsAcrossDifferentGroups(t *testing.T) {
	sys, h := paritySystem(t)
	_, ps := drainParity(t, sys, h)
	// One corruption in each of two different groups: both repairable.
	sys.NVM.Store().CorruptByte(sys.Layout.VaultAddr(2), 0, 0x04)
	sys.NVM.Store().CorruptByte(sys.Layout.VaultAddr(10), 3, 0x40)
	if _, err := RecoverBaseline(sys, ps); err != nil {
		t.Fatalf("cross-group repairs failed: %v", err)
	}
}

func TestVaultWithoutParityStillRefuses(t *testing.T) {
	// The non-parity configuration must keep the strict behaviour.
	sys, h := buildSystem(t, core.BaseLU)
	_, ps := drainAndCrash(t, sys, h, core.BaseLU, 61)
	if ps.Vault.Parity {
		t.Fatal("parity unexpectedly enabled")
	}
	sys.NVM.Store().CorruptByte(sys.Layout.VaultAddr(0), 0, 0x01)
	var re *Error
	if _, err := RecoverBaseline(sys, ps); !errors.As(err, &re) {
		t.Fatalf("corruption recovered without parity: %v", err)
	}
}
