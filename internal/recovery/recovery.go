// Package recovery implements power-restore recovery (§IV-C3).
//
// For Horus, the CHV contents are read back in reverse flush order; each
// drained block's drain-counter value is derived from its CHV position and
// the persistent drain-counter register, its MAC is verified against the
// stored (coalesced) MAC blocks, and the plaintext is re-installed in the
// cache hierarchy in dirty state. Tampering, splicing or replaying CHV
// content is detected as a MAC mismatch and reported with a typed error.
//
// For the baselines, the metadata-cache vault is read back, verified
// against the persistent vault-root register, and re-installed into the
// secure memory controller, after which in-place memory verifies normally.
//
// Timing: recovery is modelled as a single dependent read-verify-decrypt
// stream (each step threads the completion time of the previous one), the
// conservative model behind the paper's Fig. 16 estimate.
//
// Observability: each recovery path brackets its own episode on the
// system's timeline recorder (so internal/timeline.Analyze attributes the
// recovery critical path exactly as it does for drains) and on the
// detection-forensics flight recorder (internal/obs/evlog), whose trailing
// records are captured into any typed *Error as its provenance chain.
package recovery

import (
	"errors"
	"fmt"

	"repro/internal/bmt"
	"repro/internal/cme"
	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/obs/evlog"
	"repro/internal/obs/timeseries"
	"repro/internal/secmem"
	"repro/internal/sim"
	"repro/internal/timeline"
)

// MAC-calculation category charged for recovery-time verification.
const MACRecoveryVerify = "recovery-verify"

// Error reports a failed CHV or vault verification during recovery.
type Error struct {
	Slot   uint64 // CHV slot (drain index) where verification failed
	Addr   uint64 // original address recorded for the slot, if known
	Detail string

	// Forensic provenance, stamped by the instrumented recovery paths.
	Check           string         // verification that fired ("chv-data-mac")
	Region          string         // layout region it touched ("chv-data")
	Expected        string         // stored identity the check required, hex
	Got             string         // identity recomputed from the read-back, hex
	BlocksScanned   int64          // blocks the path had verified before firing
	DetectLatencyPs int64          // phase-local simulated time of the detection
	Chain           []evlog.Record // trailing flight-recorder records, oldest first
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("recovery: verification failed at CHV slot %d (addr %#x): %s",
		e.Slot, e.Addr, e.Detail)
}

// IsDetection reports whether err is (or wraps) a typed corruption-detection
// error — one this package or the secure memory controller raises when
// persistent state fails verification — as opposed to an internal or usage
// error. The torture matrix uses it to separate "the corruption was caught"
// (the contract's acceptable outcome) from "the harness or implementation
// broke" (a matrix failure).
func IsDetection(err error) bool {
	var re *Error
	if errors.As(err, &re) {
		return true
	}
	var ie *secmem.IntegrityError
	return errors.As(err, &ie)
}

// PathObs brackets one recovery path's observability: an episode on the
// system's timeline recorder, an episode on the flight recorder, and the
// horus_ts_recovery_* sim-time series. Every method is nil-safe against
// detached recorders, so an uninstrumented recovery pays pointer checks
// only. The osiris baseline reconstruction shares it.
type PathObs struct {
	sys      *core.System
	scheme   string
	path     string
	blocks   int64
	tsBlocks *timeseries.Series
	tsMACs   *timeseries.Series
}

// BeginPath opens the observability episode for one recovery path
// ("chv", "vault", "osiris") under the given scheme label.
func BeginPath(sys *core.System, path, scheme string) *PathObs {
	p := &PathObs{sys: sys, scheme: scheme, path: path}
	label := "recover-" + path + ":" + scheme
	sys.Timeline.BeginEpisode(label)
	sys.Timeline.SetStage("recover:" + path)
	sys.Evlog.BeginEpisode(label)
	sys.Evlog.SetStage("recover:" + path)
	if ts := sys.Timeseries; ts != nil {
		p.tsBlocks = ts.Counter("horus_ts_recovery_blocks", "scheme", scheme, "path", path)
		p.tsMACs = ts.Counter("horus_ts_recovery_mac_ops", "scheme", scheme, "path", path)
	}
	return p
}

// Stage stamps a sub-stage onto subsequent timeline events and records.
func (p *PathObs) Stage(s string) {
	if p == nil {
		return
	}
	p.sys.Timeline.SetStage(s)
	p.sys.Evlog.SetStage(s)
}

// Block counts one block verified at time now; the running count is the
// detection-latency numerator a failing check reports.
func (p *PathObs) Block(now sim.Time) {
	if p == nil {
		return
	}
	p.blocks++
	p.tsBlocks.Record(int64(now), 1)
}

// Blocks returns how many blocks the path has verified so far.
func (p *PathObs) Blocks() int64 {
	if p == nil {
		return 0
	}
	return p.blocks
}

// MACOp counts one verification MAC computation at time now.
func (p *PathObs) MACOp(now sim.Time) {
	if p == nil {
		return
	}
	p.tsMACs.Record(int64(now), 1)
}

// Ok records a passed check. Success records carry no identity hex so the
// hot verification loop allocates nothing per block.
func (p *PathObs) Ok(now sim.Time, check, region string, addr, slot uint64) {
	if p == nil {
		return
	}
	if l := p.sys.Evlog; l != nil {
		l.Append(evlog.Record{TPs: int64(now), Check: check, Region: region,
			Addr: addr, Slot: slot, Blocks: p.blocks, Outcome: "ok"})
	}
}

// Info records a non-verdict decision (e.g. "attempting parity repair").
func (p *PathObs) Info(now sim.Time, check, region, detail string) {
	if p == nil {
		return
	}
	if l := p.sys.Evlog; l != nil {
		l.Append(evlog.Record{TPs: int64(now), Check: check, Region: region,
			Blocks: p.blocks, Outcome: "info", Detail: detail})
	}
}

// Failure closes the path at a detection: it appends the failing record,
// ends both episodes at now, and returns the captured provenance chain
// (nil when no flight recorder is attached).
func (p *PathObs) Failure(now sim.Time, r evlog.Record) []evlog.Record {
	if p == nil {
		return nil
	}
	r.TPs = int64(now)
	r.Blocks = p.blocks
	r.Outcome = "fail"
	var chain []evlog.Record
	if l := p.sys.Evlog; l != nil {
		l.Append(r)
		l.EndEpisode(int64(now))
		chain = l.Records()
	}
	p.sys.Timeline.EndEpisode(now)
	return chain
}

// fail stamps the path's forensic state onto e, captures the provenance
// chain, closes both episodes at the detection time and returns e.
func (p *PathObs) fail(now sim.Time, e *Error) *Error {
	e.BlocksScanned = p.blocks
	e.DetectLatencyPs = int64(now)
	e.Chain = p.Failure(now, evlog.Record{Check: e.Check, Region: e.Region,
		Addr: e.Addr, Slot: e.Slot, Expected: e.Expected, Got: e.Got, Detail: e.Detail})
	return e
}

// Done closes both episodes at the path's final time and returns the
// captured timeline recording (nil when no recorder is attached).
func (p *PathObs) Done(rt sim.Time) *timeline.Recording {
	if p == nil {
		return nil
	}
	p.sys.Evlog.EndEpisode(int64(rt))
	tl := p.sys.Timeline
	tl.EndEpisode(rt)
	return tl.Recording()
}

// PublishPathMetrics emits one recovery path's metrics: the most-recent
// gauge, a histogram that merges losslessly across parallel sweep episodes
// (gauges are last-write-wins under Registry.Merge), cumulative counters,
// and the critical-path attribution of the captured recording.
func PublishPathMetrics(reg *obs.Registry, scheme, path string, rt sim.Time, blocks, macs int64, rec *timeline.Recording) {
	if reg == nil {
		return
	}
	reg.SetHelp("horus_recovery_time_ps",
		"Most recent simulated recovery time by scheme and path (chv = CHV read-back, vault = metadata-vault restore, osiris = counter reconstruction), picoseconds (Fig. 16); last-write-wins under merges — horus_recovery_time_hist_ps keeps every episode.")
	reg.Gauge("horus_recovery_time_ps", "scheme", scheme, "path", path).Set(float64(rt))
	reg.SetHelp("horus_recovery_time_hist_ps",
		"Distribution of per-episode simulated recovery times by scheme and path, picoseconds; histograms merge bucket-wise, so parallel sweeps lose nothing.")
	reg.Histogram("horus_recovery_time_hist_ps", obs.LatencyBuckets, "scheme", scheme, "path", path).Observe(float64(rt))
	reg.SetHelp("horus_recovery_blocks_total",
		"Blocks read back and verified during recovery, by scheme and path.")
	reg.Counter("horus_recovery_blocks_total", "scheme", scheme, "path", path).Add(blocks)
	reg.SetHelp("horus_recovery_mac_ops_total",
		"MAC computations issued by recovery-time verification, by scheme and path.")
	reg.Counter("horus_recovery_mac_ops_total", "scheme", scheme, "path", path).Add(macs)
	if rec != nil {
		timeline.Analyze(rec).Publish(reg, "scheme", scheme, "path", path)
	}
}

// HorusResult reports a Horus recovery episode.
type HorusResult struct {
	// RecoveryTime is the simulated time to read back, verify and decrypt
	// the whole CHV (Fig. 16).
	RecoveryTime sim.Time
	// Blocks are the recovered dirty blocks in original flush order.
	Blocks []hierarchy.DirtyBlock
	// MemReads counts read-back accesses by category.
	MemReads *sim.CounterSet
	// MACCalcs counts verification MAC computations.
	MACCalcs int64
	// Persist is the post-recovery register state (EDC cleared, §IV-C1).
	Persist core.PersistentState
	// Timeline is the path's captured episode when a recorder was attached,
	// ready for timeline.Analyze / Chrome-trace export; nil otherwise.
	Timeline *timeline.Recording
}

// Options tunes the Horus recovery path.
type Options struct {
	// BankParallel issues each 8-block group's read-verify-decrypt chain
	// independently, letting the banked NVM overlap groups. The default
	// (false) is the paper's conservative single-stream estimate
	// (Fig. 16); parallel recovery is an extension that shows how much
	// headroom the banked memory leaves.
	BankParallel bool
}

// RecoverHorus reads the CHV back and returns the recovered blocks, using
// the paper's conservative serial read-back model. ps must be the
// persistent state captured by the drain.
func RecoverHorus(sys *core.System, ps core.PersistentState) (HorusResult, error) {
	return RecoverHorusOpts(sys, ps, Options{})
}

// RecoverHorusOpts is RecoverHorus with explicit options.
func RecoverHorusOpts(sys *core.System, ps core.PersistentState, opt Options) (HorusResult, error) {
	p := BeginPath(sys, "chv", ps.Scheme.String())
	if !ps.Scheme.UsesCHV() {
		// The scheme register is persistent state like DC/EDC: a crash can
		// leave any bytes in it, so an implausible value is detected
		// corruption (typed, so IsDetection classifies it), not a usage error.
		return HorusResult{}, p.fail(0, &Error{
			Check: "scheme-register", Region: "registers",
			Detail: fmt.Sprintf("persistent state is from %v, not a Horus scheme (corrupted register state)", ps.Scheme)})
	}
	sys.NVM.ResetStats()
	sys.Sec.ResetStats()
	lay := sys.Layout
	n := ps.EDC
	// A crash can leave any bytes in the persistent registers' NVM shadow;
	// an implausible register file is detected corruption, not a license to
	// index outside the CHV (or allocate 2^60 blocks).
	if n > lay.CHVCapacity {
		return HorusResult{}, p.fail(0, &Error{Slot: n,
			Check: "edc-range", Region: "registers",
			Detail: fmt.Sprintf("persistent EDC %d exceeds CHV capacity %d (corrupted register state)", n, lay.CHVCapacity)})
	}
	if ps.DC < n {
		return HorusResult{}, p.fail(0, &Error{
			Check: "dc-range", Region: "registers",
			Detail: fmt.Sprintf("persistent DC %d smaller than EDC %d (corrupted register state)", ps.DC, n)})
	}
	if ps.CHVRegion >= lay.CHVRegions {
		return HorusResult{}, p.fail(0, &Error{
			Check: "chv-region-range", Region: "registers",
			Detail: fmt.Sprintf("persistent CHV region %d out of range [0,%d) (corrupted register state)", ps.CHVRegion, lay.CHVRegions)})
	}
	firstDC := ps.DC - n
	dlm := ps.Scheme == core.HorusDLM

	blocks := make([]hierarchy.DirtyBlock, n)
	var now sim.Time
	var macs int64
	reg := sys.Metrics
	span := reg.StartSpan("verify-chv", 0)
	// Closes the span on every return path; a successful return has already
	// closed it at the final recovery time, making this a no-op.
	defer func() { span.EndAt(int64(now)) }()

	// Group size: 8 data blocks share one address block; MAC blocks hold 8
	// first-level MACs (SLM) or 8 second-level MACs covering 64 data
	// blocks (DLM). Read back groups in reverse flush order (§IV-C3).
	// A one-block register holds the most recently read MAC block so the
	// DLM scheme reads each (64-block-coverage) MAC block only once.
	var macRegAddr uint64
	var macRegValid bool
	var macReg mem.Block
	var lastDone sim.Time
	groups := (n + 7) / 8
	for g := int64(groups) - 1; g >= 0; g-- {
		base := uint64(g) * 8
		end := base + 8
		if end > n {
			end = n
		}
		if opt.BankParallel {
			// Each group's chain starts at t=0; the banked NVM and the
			// crypto engines arbitrate overlap.
			lastDone = sim.MaxTime(lastDone, now)
			now = 0
		}

		// Address block for the group.
		addrBlkAddr, _ := lay.CHVAddrBlockAddrR(ps.CHVRegion, base)
		addrBlk, t := sys.NVM.Read(now, addrBlkAddr, mem.CatRecovery)
		now = t
		addrs := core.UnpackAddrs(addrBlk)

		// Stored MACs for the group.
		var storedL1 [8]cme.MAC
		var storedL2 cme.MAC
		if dlm {
			mAddr, slot := lay.CHVMACBlockAddrDLMR(ps.CHVRegion, base)
			if !macRegValid || macRegAddr != mAddr {
				mBlk, t := sys.NVM.Read(now, mAddr, mem.CatRecovery)
				now = t
				macReg, macRegAddr, macRegValid = mBlk, mAddr, true
			}
			storedL2 = cme.UnpackMACs(macReg)[slot]
		} else {
			mAddr, _ := lay.CHVMACBlockAddrR(ps.CHVRegion, base)
			mBlk, t := sys.NVM.Read(now, mAddr, mem.CatRecovery)
			now = t
			storedL1 = cme.UnpackMACs(mBlk)
		}

		// Data blocks: read, recompute MACs, decrypt.
		var computed []cme.MAC
		for i := base; i < end; i++ {
			ct, t := sys.NVM.Read(now, lay.CHVDataAddrR(ps.CHVRegion, i), mem.CatRecovery)
			now = t
			addr := addrs[i%8]
			// The MAC input is addr|DrainPadDomain, so the OR would absorb a
			// flipped domain bit in the stored entry and the MAC would still
			// verify — with the block reported at a bogus address. Stored
			// entries are runtime addresses and must never carry the bit.
			if addr&core.DrainPadDomain != 0 {
				return HorusResult{}, p.fail(now, &Error{Slot: i, Addr: addr,
					Check: "chv-addr-domain", Region: "chv-addr",
					Detail: "CHV address entry carries the drain-domain bit (tampered address block)"})
			}
			ctr := firstDC + i
			now = sys.Sec.IssueMAC(now, MACRecoveryVerify)
			macs++
			p.MACOp(now)
			m := sys.Enc.DataMAC(addr|core.DrainPadDomain, ctr, ct)
			computed = append(computed, m)
			if !dlm {
				if m != storedL1[i%8] {
					return HorusResult{}, p.fail(now, &Error{Slot: i, Addr: addr,
						Check: "chv-data-mac", Region: "chv-data",
						Expected: fmt.Sprintf("%x", storedL1[i%8]), Got: fmt.Sprintf("%x", m),
						Detail: "data MAC mismatch (tampered, spliced or replayed CHV content)"})
				}
				p.Ok(now, "chv-data-mac", "chv-data", addr, i)
			}
			now = sys.Sec.IssueAES(now)
			plain := sys.Enc.Decrypt(addr|core.DrainPadDomain, ctr, ct)
			blocks[i] = hierarchy.DirtyBlock{Addr: addr, Data: plain}
			p.Block(now)
		}
		if dlm {
			now = sys.Sec.IssueMAC(now, MACRecoveryVerify)
			macs++
			p.MACOp(now)
			m2 := sys.Enc.MACOverMACs(core.DrainPadDomain|uint64(g), computed)
			if m2 != storedL2 {
				return HorusResult{}, p.fail(now, &Error{Slot: base, Addr: addrs[0],
					Check: "chv-l2-mac", Region: "chv-mac",
					Expected: fmt.Sprintf("%x", storedL2), Got: fmt.Sprintf("%x", m2),
					Detail: "second-level MAC mismatch (tampered, spliced or replayed CHV group)"})
			}
			p.Ok(now, "chv-l2-mac", "chv-mac", addrs[0], base)
		}
	}

	ps.EDC = 0 // cleared after each recovery (§IV-C1)
	rt := sim.MaxTime(now, lastDone)
	span.EndAt(int64(rt))
	rec := p.Done(rt)
	PublishPathMetrics(reg, p.scheme, "chv", rt, int64(n), macs, rec)
	sys.NVM.PublishMetrics("recover", rt)
	sys.Sec.PublishMetrics("recover", rt)
	return HorusResult{
		RecoveryTime: rt,
		Blocks:       blocks,
		MemReads:     sys.NVM.Reads().Clone(),
		MACCalcs:     macs,
		Persist:      ps,
		Timeline:     rec,
	}, nil
}

// RefillHierarchy installs recovered blocks into a hierarchy as dirty lines
// (the paper's option of reading them back into the LLC in dirty state).
func RefillHierarchy(h *hierarchy.Hierarchy, blocks []hierarchy.DirtyBlock) {
	for _, b := range blocks {
		h.Write(b.Addr, b.Data)
	}
}

// BaselineResult reports a baseline (vault) recovery episode.
type BaselineResult struct {
	RecoveryTime sim.Time
	// LinesRestored is the number of metadata-cache lines re-installed.
	LinesRestored int
	MemReads      *sim.CounterSet
	MACCalcs      int64
	// Timeline is the path's captured episode when a recorder was attached.
	Timeline *timeline.Recording
}

// RecoverBaseline restores the metadata-cache contents from the vault
// written by a lazy-scheme drain, verifying them against the persistent
// vault root, and re-installs them into the secure controller. Eager-scheme
// drains flush metadata in place, so their vault is empty and nothing needs
// re-installing — memory already verifies against the root register.
func RecoverBaseline(sys *core.System, ps core.PersistentState) (BaselineResult, error) {
	if ps.Scheme.UsesCHV() || !ps.Scheme.Secure() {
		// Typed for the same reason as the Horus-side scheme check: the
		// scheme register is persistent state and can hold anything after a
		// crash, so a mismatch is detected corruption.
		return BaselineResult{}, &Error{
			Check: "scheme-register", Region: "registers",
			Detail: fmt.Sprintf("persistent state is from %v, not a baseline scheme (corrupted register state)", ps.Scheme)}
	}
	sys.NVM.ResetStats()
	sys.Sec.ResetStats()
	return RestoreMetadataVaultFor(sys, ps.Vault, ps.Scheme.String())
}

// RestoreMetadataVault reads back, verifies and re-installs the
// metadata-cache vault. Horus drains also leave a vault (the run-time
// metadata residue flushed at the end of the drain), so Horus recovery
// uses this too, before reading the CHV. The observability surfaces carry
// an "unknown" scheme label; callers that know the drain's scheme should
// prefer RestoreMetadataVaultFor.
func RestoreMetadataVault(sys *core.System, vault secmem.VaultRecord) (BaselineResult, error) {
	return RestoreMetadataVaultFor(sys, vault, "")
}

// RestoreMetadataVaultFor is RestoreMetadataVault with the scheme label
// stamped on the path's metrics, timeline episode and forensic records.
func RestoreMetadataVaultFor(sys *core.System, vault secmem.VaultRecord, scheme string) (BaselineResult, error) {
	if scheme == "" {
		scheme = "unknown"
	}
	lay := sys.Layout
	count := vault.Count
	if count == 0 {
		// Nothing vaulted: return before bracketing any episode so an
		// eager-scheme recovery leaves the drain recording untouched.
		return BaselineResult{}, nil
	}
	p := BeginPath(sys, "vault", scheme)
	// Validate the vault record before deriving any addresses from it: a
	// corrupted count (negative, or larger than the vault region can hold,
	// including the parity/leaf-MAC blocks repair would read) is detected
	// corruption, never an out-of-range panic.
	if count < 0 {
		return BaselineResult{}, p.fail(0, &Error{
			Check: "vault-count", Region: "vault",
			Detail: fmt.Sprintf("vault record count %d is negative (corrupted register state)", count)})
	}
	addrBlocks := (count + 7) / 8
	total := count + addrBlocks
	need := uint64(total)
	if vault.Parity {
		need += 2 * uint64((total+7)/8)
	}
	if need > lay.VaultBlocks {
		return BaselineResult{}, p.fail(0, &Error{
			Check: "vault-capacity", Region: "vault",
			Detail: fmt.Sprintf("vault record needs %d blocks but the vault region holds %d (corrupted register state)", need, lay.VaultBlocks)})
	}

	var now sim.Time
	var macs int64
	reg := sys.Metrics
	span := reg.StartSpan("restore-vault", 0)
	defer func() { span.EndAt(int64(now)) }()
	vaultContent := make([]mem.Block, total)
	for i := 0; i < total; i++ {
		b, t := sys.NVM.Read(now, lay.VaultAddr(uint64(i)), mem.CatRecovery)
		now = t
		vaultContent[i] = b
		p.Block(now)
	}
	root := secmem.ComputeVaultRoot(sys.Enc, vaultContent, func() {
		macs++
		now = sys.Sec.IssueMAC(now, MACRecoveryVerify)
		p.MACOp(now)
	})
	if root != vault.Root {
		if !vault.Parity {
			return BaselineResult{}, p.fail(now, &Error{
				Check: "vault-root", Region: "vault",
				Expected: fmt.Sprintf("%x", vault.Root), Got: fmt.Sprintf("%x", root),
				Detail: "metadata-cache vault root mismatch"})
		}
		// Soteria-style repair: locate corrupted payload blocks via the
		// stored leaf MACs and reconstruct them from the group parity.
		p.Info(now, "vault-root", "vault", "vault root mismatch; attempting parity repair")
		repaired, t, rMACs, err := repairVault(sys, vault, vaultContent, now, p)
		now = t
		macs += rMACs
		if err != nil {
			return BaselineResult{}, err
		}
		vaultContent = repaired
		root = secmem.ComputeVaultRoot(sys.Enc, vaultContent, func() {
			macs++
			now = sys.Sec.IssueMAC(now, MACRecoveryVerify)
			p.MACOp(now)
		})
		if root != vault.Root {
			return BaselineResult{}, p.fail(now, &Error{
				Check: "vault-root", Region: "vault",
				Expected: fmt.Sprintf("%x", vault.Root), Got: fmt.Sprintf("%x", root),
				Detail: "metadata-cache vault unrecoverable after parity repair"})
		}
	}
	p.Ok(now, "vault-root", "vault", 0, 0)

	lines := make([]secmem.VaultLine, count)
	for i := 0; i < count; i++ {
		lines[i].Content = vaultContent[i]
	}
	for bi := 0; bi < addrBlocks; bi++ {
		addrs := core.UnpackAddrs(vaultContent[count+bi])
		for s := 0; s < 8 && bi*8+s < count; s++ {
			lines[bi*8+s].Addr = addrs[s]
		}
	}
	// Only metadata addresses (tree nodes or the MAC region) may be
	// re-installed; anything else means the (root-verified!) address blocks
	// decode to garbage, which the controller would refuse with a panic.
	// Surface it as detected corruption instead.
	for _, line := range lines {
		_, _, isNode := lay.Coord(line.Addr)
		if line.Addr%bmt.BlockSize != 0 || (!isNode && lay.RegionOf(line.Addr) != bmt.RegionMAC) {
			return BaselineResult{}, p.fail(now, &Error{Addr: line.Addr,
				Check: "vault-line-addr", Region: "vault",
				Detail: "vaulted line address is not a metadata location (corrupted vault content)"})
		}
	}
	sys.Sec.ReinstallMetadata(lines)

	span.EndAt(int64(now))
	rec := p.Done(now)
	PublishPathMetrics(reg, scheme, "vault", now, int64(total), macs, rec)
	reg.SetHelp("horus_recovery_vault_lines_total",
		"Metadata-cache lines re-installed from the vault during recovery, by scheme.")
	reg.Counter("horus_recovery_vault_lines_total", "scheme", scheme).Add(int64(count))
	sys.NVM.PublishMetrics("restore-vault", now)
	sys.Sec.PublishMetrics("restore-vault", now)
	return BaselineResult{
		RecoveryTime:  now,
		LinesRestored: count,
		MemReads:      sys.NVM.Reads().Clone(),
		MACCalcs:      macs,
		Timeline:      rec,
	}, nil
}

// repairVault reconstructs corrupted vault payload blocks using the
// appended leaf-MAC and XOR-parity blocks (one repairable block per
// 8-block group).
func repairVault(sys *core.System, vault secmem.VaultRecord, payload []mem.Block, start sim.Time, p *PathObs) ([]mem.Block, sim.Time, int64, error) {
	lay := sys.Layout
	now := start
	var macs int64
	total := len(payload)
	groups := (total + 7) / 8

	leafMACs := make([]cme.MAC, 0, total)
	for g := 0; g < groups; g++ {
		blk, t := sys.NVM.Read(now, lay.VaultAddr(uint64(total+g)), mem.CatRecovery)
		now = t
		unpacked := cme.UnpackMACs(blk)
		for s := 0; s < 8 && g*8+s < total; s++ {
			leafMACs = append(leafMACs, unpacked[s])
		}
	}

	out := append([]mem.Block(nil), payload...)
	for g := 0; g < groups; g++ {
		var bad []int
		for i := g * 8; i < (g+1)*8 && i < total; i++ {
			macs++
			now = sys.Sec.IssueMAC(now, MACRecoveryVerify)
			p.MACOp(now)
			if sys.Enc.NodeMAC(1<<20, uint64(i), out[i]) != leafMACs[i] {
				bad = append(bad, i)
			}
		}
		if len(bad) == 0 {
			continue
		}
		if len(bad) > 1 {
			return nil, now, macs, p.fail(now, &Error{Slot: uint64(bad[0]),
				Check: "vault-parity-repair", Region: "vault",
				Detail: fmt.Sprintf("%d corrupted blocks in one vault parity group; only one is repairable", len(bad))})
		}
		parity, t := sys.NVM.Read(now, lay.VaultAddr(uint64(total+groups+g)), mem.CatRecovery)
		now = t
		var rebuilt mem.Block
		rebuilt = parity
		for i := g * 8; i < (g+1)*8 && i < total; i++ {
			if i == bad[0] {
				continue
			}
			for k := range rebuilt {
				rebuilt[k] ^= out[i][k]
			}
		}
		macs++
		now = sys.Sec.IssueMAC(now, MACRecoveryVerify)
		p.MACOp(now)
		if sys.Enc.NodeMAC(1<<20, uint64(bad[0]), rebuilt) != leafMACs[bad[0]] {
			return nil, now, macs, p.fail(now, &Error{Slot: uint64(bad[0]),
				Check: "vault-parity-verify", Region: "vault",
				Detail: "parity reconstruction does not verify (parity or MAC block also corrupted)"})
		}
		out[bad[0]] = rebuilt
	}
	return out, now, macs, nil
}
