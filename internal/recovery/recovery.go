// Package recovery implements power-restore recovery (§IV-C3).
//
// For Horus, the CHV contents are read back in reverse flush order; each
// drained block's drain-counter value is derived from its CHV position and
// the persistent drain-counter register, its MAC is verified against the
// stored (coalesced) MAC blocks, and the plaintext is re-installed in the
// cache hierarchy in dirty state. Tampering, splicing or replaying CHV
// content is detected as a MAC mismatch and reported with a typed error.
//
// For the baselines, the metadata-cache vault is read back, verified
// against the persistent vault-root register, and re-installed into the
// secure memory controller, after which in-place memory verifies normally.
//
// Timing: recovery is modelled as a single dependent read-verify-decrypt
// stream (each step threads the completion time of the previous one), the
// conservative model behind the paper's Fig. 16 estimate.
package recovery

import (
	"errors"
	"fmt"

	"repro/internal/bmt"
	"repro/internal/cme"
	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/mem"
	"repro/internal/secmem"
	"repro/internal/sim"
)

// MAC-calculation category charged for recovery-time verification.
const MACRecoveryVerify = "recovery-verify"

// Error reports a failed CHV or vault verification during recovery.
type Error struct {
	Slot   uint64 // CHV slot (drain index) where verification failed
	Addr   uint64 // original address recorded for the slot, if known
	Detail string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("recovery: verification failed at CHV slot %d (addr %#x): %s",
		e.Slot, e.Addr, e.Detail)
}

// IsDetection reports whether err is (or wraps) a typed corruption-detection
// error — one this package or the secure memory controller raises when
// persistent state fails verification — as opposed to an internal or usage
// error. The torture matrix uses it to separate "the corruption was caught"
// (the contract's acceptable outcome) from "the harness or implementation
// broke" (a matrix failure).
func IsDetection(err error) bool {
	var re *Error
	if errors.As(err, &re) {
		return true
	}
	var ie *secmem.IntegrityError
	return errors.As(err, &ie)
}

// HorusResult reports a Horus recovery episode.
type HorusResult struct {
	// RecoveryTime is the simulated time to read back, verify and decrypt
	// the whole CHV (Fig. 16).
	RecoveryTime sim.Time
	// Blocks are the recovered dirty blocks in original flush order.
	Blocks []hierarchy.DirtyBlock
	// MemReads counts read-back accesses by category.
	MemReads *sim.CounterSet
	// MACCalcs counts verification MAC computations.
	MACCalcs int64
	// Persist is the post-recovery register state (EDC cleared, §IV-C1).
	Persist core.PersistentState
}

// Options tunes the Horus recovery path.
type Options struct {
	// BankParallel issues each 8-block group's read-verify-decrypt chain
	// independently, letting the banked NVM overlap groups. The default
	// (false) is the paper's conservative single-stream estimate
	// (Fig. 16); parallel recovery is an extension that shows how much
	// headroom the banked memory leaves.
	BankParallel bool
}

// RecoverHorus reads the CHV back and returns the recovered blocks, using
// the paper's conservative serial read-back model. ps must be the
// persistent state captured by the drain.
func RecoverHorus(sys *core.System, ps core.PersistentState) (HorusResult, error) {
	return RecoverHorusOpts(sys, ps, Options{})
}

// RecoverHorusOpts is RecoverHorus with explicit options.
func RecoverHorusOpts(sys *core.System, ps core.PersistentState, opt Options) (HorusResult, error) {
	if !ps.Scheme.UsesCHV() {
		// The scheme register is persistent state like DC/EDC: a crash can
		// leave any bytes in it, so an implausible value is detected
		// corruption (typed, so IsDetection classifies it), not a usage error.
		return HorusResult{}, &Error{
			Detail: fmt.Sprintf("persistent state is from %v, not a Horus scheme (corrupted register state)", ps.Scheme)}
	}
	sys.NVM.ResetStats()
	sys.Sec.ResetStats()
	lay := sys.Layout
	n := ps.EDC
	// A crash can leave any bytes in the persistent registers' NVM shadow;
	// an implausible register file is detected corruption, not a license to
	// index outside the CHV (or allocate 2^60 blocks).
	if n > lay.CHVCapacity {
		return HorusResult{}, &Error{Slot: n,
			Detail: fmt.Sprintf("persistent EDC %d exceeds CHV capacity %d (corrupted register state)", n, lay.CHVCapacity)}
	}
	if ps.DC < n {
		return HorusResult{}, &Error{
			Detail: fmt.Sprintf("persistent DC %d smaller than EDC %d (corrupted register state)", ps.DC, n)}
	}
	if ps.CHVRegion >= lay.CHVRegions {
		return HorusResult{}, &Error{
			Detail: fmt.Sprintf("persistent CHV region %d out of range [0,%d) (corrupted register state)", ps.CHVRegion, lay.CHVRegions)}
	}
	firstDC := ps.DC - n
	dlm := ps.Scheme == core.HorusDLM

	blocks := make([]hierarchy.DirtyBlock, n)
	var now sim.Time
	var macs int64
	reg := sys.Metrics
	span := reg.StartSpan("verify-chv", 0)
	// Closes the span on every return path; a successful return has already
	// closed it at the final recovery time, making this a no-op.
	defer func() { span.EndAt(int64(now)) }()

	// Group size: 8 data blocks share one address block; MAC blocks hold 8
	// first-level MACs (SLM) or 8 second-level MACs covering 64 data
	// blocks (DLM). Read back groups in reverse flush order (§IV-C3).
	// A one-block register holds the most recently read MAC block so the
	// DLM scheme reads each (64-block-coverage) MAC block only once.
	var macRegAddr uint64
	var macRegValid bool
	var macReg mem.Block
	var lastDone sim.Time
	groups := (n + 7) / 8
	for g := int64(groups) - 1; g >= 0; g-- {
		base := uint64(g) * 8
		end := base + 8
		if end > n {
			end = n
		}
		if opt.BankParallel {
			// Each group's chain starts at t=0; the banked NVM and the
			// crypto engines arbitrate overlap.
			lastDone = sim.MaxTime(lastDone, now)
			now = 0
		}

		// Address block for the group.
		addrBlkAddr, _ := lay.CHVAddrBlockAddrR(ps.CHVRegion, base)
		addrBlk, t := sys.NVM.Read(now, addrBlkAddr, mem.CatRecovery)
		now = t
		addrs := core.UnpackAddrs(addrBlk)

		// Stored MACs for the group.
		var storedL1 [8]cme.MAC
		var storedL2 cme.MAC
		if dlm {
			mAddr, slot := lay.CHVMACBlockAddrDLMR(ps.CHVRegion, base)
			if !macRegValid || macRegAddr != mAddr {
				mBlk, t := sys.NVM.Read(now, mAddr, mem.CatRecovery)
				now = t
				macReg, macRegAddr, macRegValid = mBlk, mAddr, true
			}
			storedL2 = cme.UnpackMACs(macReg)[slot]
		} else {
			mAddr, _ := lay.CHVMACBlockAddrR(ps.CHVRegion, base)
			mBlk, t := sys.NVM.Read(now, mAddr, mem.CatRecovery)
			now = t
			storedL1 = cme.UnpackMACs(mBlk)
		}

		// Data blocks: read, recompute MACs, decrypt.
		var computed []cme.MAC
		for i := base; i < end; i++ {
			ct, t := sys.NVM.Read(now, lay.CHVDataAddrR(ps.CHVRegion, i), mem.CatRecovery)
			now = t
			addr := addrs[i%8]
			// The MAC input is addr|DrainPadDomain, so the OR would absorb a
			// flipped domain bit in the stored entry and the MAC would still
			// verify — with the block reported at a bogus address. Stored
			// entries are runtime addresses and must never carry the bit.
			if addr&core.DrainPadDomain != 0 {
				return HorusResult{}, &Error{Slot: i, Addr: addr,
					Detail: "CHV address entry carries the drain-domain bit (tampered address block)"}
			}
			ctr := firstDC + i
			now = sys.Sec.IssueMAC(now, MACRecoveryVerify)
			macs++
			m := sys.Enc.DataMAC(addr|core.DrainPadDomain, ctr, ct)
			computed = append(computed, m)
			if !dlm && m != storedL1[i%8] {
				return HorusResult{}, &Error{Slot: i, Addr: addr,
					Detail: "data MAC mismatch (tampered, spliced or replayed CHV content)"}
			}
			now = sys.Sec.IssueAES(now)
			plain := sys.Enc.Decrypt(addr|core.DrainPadDomain, ctr, ct)
			blocks[i] = hierarchy.DirtyBlock{Addr: addr, Data: plain}
		}
		if dlm {
			now = sys.Sec.IssueMAC(now, MACRecoveryVerify)
			macs++
			if sys.Enc.MACOverMACs(core.DrainPadDomain|uint64(g), computed) != storedL2 {
				return HorusResult{}, &Error{Slot: base, Addr: addrs[0],
					Detail: "second-level MAC mismatch (tampered, spliced or replayed CHV group)"}
			}
		}
	}

	ps.EDC = 0 // cleared after each recovery (§IV-C1)
	rt := sim.MaxTime(now, lastDone)
	span.EndAt(int64(rt))
	reg.SetHelp("horus_recovery_time_ps", "Simulated recovery time by path (chv = CHV read-back, vault = metadata-vault restore), picoseconds (Fig. 16).")
	reg.Gauge("horus_recovery_time_ps", "path", "chv").Set(float64(rt))
	reg.Counter("horus_recovery_blocks_total").Add(int64(n))
	reg.Counter("horus_recovery_mac_ops_total").Add(macs)
	sys.NVM.PublishMetrics("recover", rt)
	sys.Sec.PublishMetrics("recover", rt)
	return HorusResult{
		RecoveryTime: rt,
		Blocks:       blocks,
		MemReads:     sys.NVM.Reads().Clone(),
		MACCalcs:     macs,
		Persist:      ps,
	}, nil
}

// RefillHierarchy installs recovered blocks into a hierarchy as dirty lines
// (the paper's option of reading them back into the LLC in dirty state).
func RefillHierarchy(h *hierarchy.Hierarchy, blocks []hierarchy.DirtyBlock) {
	for _, b := range blocks {
		h.Write(b.Addr, b.Data)
	}
}

// BaselineResult reports a baseline (vault) recovery episode.
type BaselineResult struct {
	RecoveryTime sim.Time
	// LinesRestored is the number of metadata-cache lines re-installed.
	LinesRestored int
	MemReads      *sim.CounterSet
	MACCalcs      int64
}

// RecoverBaseline restores the metadata-cache contents from the vault
// written by a lazy-scheme drain, verifying them against the persistent
// vault root, and re-installs them into the secure controller. Eager-scheme
// drains flush metadata in place, so their vault is empty and nothing needs
// re-installing — memory already verifies against the root register.
func RecoverBaseline(sys *core.System, ps core.PersistentState) (BaselineResult, error) {
	if ps.Scheme.UsesCHV() || !ps.Scheme.Secure() {
		// Typed for the same reason as the Horus-side scheme check: the
		// scheme register is persistent state and can hold anything after a
		// crash, so a mismatch is detected corruption.
		return BaselineResult{}, &Error{
			Detail: fmt.Sprintf("persistent state is from %v, not a baseline scheme (corrupted register state)", ps.Scheme)}
	}
	sys.NVM.ResetStats()
	sys.Sec.ResetStats()
	return RestoreMetadataVault(sys, ps.Vault)
}

// RestoreMetadataVault reads back, verifies and re-installs the
// metadata-cache vault. Horus drains also leave a vault (the run-time
// metadata residue flushed at the end of the drain), so Horus recovery
// uses this too, before reading the CHV.
func RestoreMetadataVault(sys *core.System, vault secmem.VaultRecord) (BaselineResult, error) {
	lay := sys.Layout
	count := vault.Count
	if count == 0 {
		return BaselineResult{}, nil
	}
	// Validate the vault record before deriving any addresses from it: a
	// corrupted count (negative, or larger than the vault region can hold,
	// including the parity/leaf-MAC blocks repair would read) is detected
	// corruption, never an out-of-range panic.
	if count < 0 {
		return BaselineResult{}, &Error{
			Detail: fmt.Sprintf("vault record count %d is negative (corrupted register state)", count)}
	}
	addrBlocks := (count + 7) / 8
	total := count + addrBlocks
	need := uint64(total)
	if vault.Parity {
		need += 2 * uint64((total+7)/8)
	}
	if need > lay.VaultBlocks {
		return BaselineResult{}, &Error{
			Detail: fmt.Sprintf("vault record needs %d blocks but the vault region holds %d (corrupted register state)", need, lay.VaultBlocks)}
	}

	var now sim.Time
	var macs int64
	reg := sys.Metrics
	span := reg.StartSpan("restore-vault", 0)
	defer func() { span.EndAt(int64(now)) }()
	vaultContent := make([]mem.Block, total)
	for i := 0; i < total; i++ {
		b, t := sys.NVM.Read(now, lay.VaultAddr(uint64(i)), mem.CatRecovery)
		now = t
		vaultContent[i] = b
	}
	root := secmem.ComputeVaultRoot(sys.Enc, vaultContent, func() {
		macs++
		now = sys.Sec.IssueMAC(now, MACRecoveryVerify)
	})
	if root != vault.Root {
		if !vault.Parity {
			return BaselineResult{}, &Error{Detail: "metadata-cache vault root mismatch"}
		}
		// Soteria-style repair: locate corrupted payload blocks via the
		// stored leaf MACs and reconstruct them from the group parity.
		repaired, t, rMACs, err := repairVault(sys, vault, vaultContent, now)
		now = t
		macs += rMACs
		if err != nil {
			return BaselineResult{}, err
		}
		vaultContent = repaired
		root = secmem.ComputeVaultRoot(sys.Enc, vaultContent, func() {
			macs++
			now = sys.Sec.IssueMAC(now, MACRecoveryVerify)
		})
		if root != vault.Root {
			return BaselineResult{}, &Error{Detail: "metadata-cache vault unrecoverable after parity repair"}
		}
	}

	lines := make([]secmem.VaultLine, count)
	for i := 0; i < count; i++ {
		lines[i].Content = vaultContent[i]
	}
	for bi := 0; bi < addrBlocks; bi++ {
		addrs := core.UnpackAddrs(vaultContent[count+bi])
		for s := 0; s < 8 && bi*8+s < count; s++ {
			lines[bi*8+s].Addr = addrs[s]
		}
	}
	// Only metadata addresses (tree nodes or the MAC region) may be
	// re-installed; anything else means the (root-verified!) address blocks
	// decode to garbage, which the controller would refuse with a panic.
	// Surface it as detected corruption instead.
	for _, line := range lines {
		_, _, isNode := lay.Coord(line.Addr)
		if line.Addr%bmt.BlockSize != 0 || (!isNode && lay.RegionOf(line.Addr) != bmt.RegionMAC) {
			return BaselineResult{}, &Error{Addr: line.Addr,
				Detail: "vaulted line address is not a metadata location (corrupted vault content)"}
		}
	}
	sys.Sec.ReinstallMetadata(lines)

	span.EndAt(int64(now))
	reg.Gauge("horus_recovery_time_ps", "path", "vault").Set(float64(now))
	reg.Counter("horus_recovery_vault_lines_total").Add(int64(count))
	reg.Counter("horus_recovery_mac_ops_total").Add(macs)
	sys.NVM.PublishMetrics("restore-vault", now)
	sys.Sec.PublishMetrics("restore-vault", now)
	return BaselineResult{
		RecoveryTime:  now,
		LinesRestored: count,
		MemReads:      sys.NVM.Reads().Clone(),
		MACCalcs:      macs,
	}, nil
}

// repairVault reconstructs corrupted vault payload blocks using the
// appended leaf-MAC and XOR-parity blocks (one repairable block per
// 8-block group).
func repairVault(sys *core.System, vault secmem.VaultRecord, payload []mem.Block, start sim.Time) ([]mem.Block, sim.Time, int64, error) {
	lay := sys.Layout
	now := start
	var macs int64
	total := len(payload)
	groups := (total + 7) / 8

	leafMACs := make([]cme.MAC, 0, total)
	for g := 0; g < groups; g++ {
		blk, t := sys.NVM.Read(now, lay.VaultAddr(uint64(total+g)), mem.CatRecovery)
		now = t
		unpacked := cme.UnpackMACs(blk)
		for s := 0; s < 8 && g*8+s < total; s++ {
			leafMACs = append(leafMACs, unpacked[s])
		}
	}

	out := append([]mem.Block(nil), payload...)
	for g := 0; g < groups; g++ {
		var bad []int
		for i := g * 8; i < (g+1)*8 && i < total; i++ {
			macs++
			now = sys.Sec.IssueMAC(now, MACRecoveryVerify)
			if sys.Enc.NodeMAC(1<<20, uint64(i), out[i]) != leafMACs[i] {
				bad = append(bad, i)
			}
		}
		if len(bad) == 0 {
			continue
		}
		if len(bad) > 1 {
			return nil, now, macs, &Error{Slot: uint64(bad[0]),
				Detail: fmt.Sprintf("%d corrupted blocks in one vault parity group; only one is repairable", len(bad))}
		}
		parity, t := sys.NVM.Read(now, lay.VaultAddr(uint64(total+groups+g)), mem.CatRecovery)
		now = t
		var rebuilt mem.Block
		rebuilt = parity
		for i := g * 8; i < (g+1)*8 && i < total; i++ {
			if i == bad[0] {
				continue
			}
			for k := range rebuilt {
				rebuilt[k] ^= out[i][k]
			}
		}
		macs++
		now = sys.Sec.IssueMAC(now, MACRecoveryVerify)
		if sys.Enc.NodeMAC(1<<20, uint64(bad[0]), rebuilt) != leafMACs[bad[0]] {
			return nil, now, macs, &Error{Slot: uint64(bad[0]),
				Detail: "parity reconstruction does not verify (parity or MAC block also corrupted)"}
		}
		out[bad[0]] = rebuilt
	}
	return out, now, macs, nil
}
