package recovery

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bmt"
	"repro/internal/cme"
	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/mem"
	"repro/internal/secmem"
	"repro/internal/sim"
)

func testHierarchyConfig() hierarchy.Config {
	return hierarchy.Config{Levels: []hierarchy.LevelConfig{
		{Name: "L1", SizeBytes: 16 << 10, Ways: 2},
		{Name: "L2", SizeBytes: 64 << 10, Ways: 8},
		{Name: "LLC", SizeBytes: 256 << 10, Ways: 16},
	}}
}

func buildSystem(t testing.TB, scheme core.Scheme) (*core.System, *hierarchy.Hierarchy) {
	t.Helper()
	hcfg := testHierarchyConfig()
	h := hierarchy.New(hcfg)
	lay := bmt.NewLayout(bmt.Config{
		DataSize:    256 << 20,
		CHVCapacity: uint64(hcfg.TotalLines()) + 64,
		VaultBlocks: 40000,
	})
	nvm := mem.NewController(mem.DefaultConfig())
	enc := cme.NewEngine(7)
	scfg := secmem.DefaultConfig()
	scfg.Scheme = scheme.RuntimeScheme()
	scfg.CounterCacheBytes = 8 << 10
	scfg.MACCacheBytes = 16 << 10
	scfg.TreeCacheBytes = 8 << 10
	sec := secmem.New(scfg, lay, enc, nvm)
	return &core.System{Layout: lay, Enc: enc, NVM: nvm, Sec: sec}, h
}

// drainAndCrash fills the hierarchy, drains with the scheme, and simulates
// the power loss (volatile caches cleared, hierarchy cleared). It returns
// the golden contents and the persistent register state.
func drainAndCrash(t *testing.T, sys *core.System, h *hierarchy.Hierarchy, scheme core.Scheme, seed int64) (map[uint64]mem.Block, core.PersistentState) {
	t.Helper()
	h.FillAllDirty(hierarchy.FillOptions{
		Pattern:  hierarchy.PatternWorstCaseSparse,
		DataSize: 256 << 20,
		Seed:     seed,
	})
	golden := h.Golden()
	blocks := h.DirtyBlocksShuffled(rand.New(rand.NewSource(seed + 1)))
	d := core.NewDrainer(scheme, sys, 0)
	res, err := d.Drain(blocks)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	h.Clear()
	sys.Sec.Crash()
	return golden, res.Persist
}

func TestHorusRecoveryRoundTrip(t *testing.T) {
	for _, scheme := range []core.Scheme{core.HorusSLM, core.HorusDLM} {
		t.Run(scheme.String(), func(t *testing.T) {
			sys, h := buildSystem(t, scheme)
			golden, ps := drainAndCrash(t, sys, h, scheme, 10)

			res, err := RecoverHorus(sys, ps)
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if len(res.Blocks) != len(golden) {
				t.Fatalf("recovered %d blocks, want %d", len(res.Blocks), len(golden))
			}
			for _, b := range res.Blocks {
				want, ok := golden[b.Addr]
				if !ok {
					t.Fatalf("recovered unknown address %#x", b.Addr)
				}
				if b.Data != want {
					t.Fatalf("recovered wrong content at %#x", b.Addr)
				}
				delete(golden, b.Addr)
			}
			if len(golden) != 0 {
				t.Fatalf("%d blocks not recovered", len(golden))
			}
			if res.RecoveryTime <= 0 {
				t.Error("recovery time must be positive")
			}
			if res.Persist.EDC != 0 {
				t.Error("EDC must be cleared after recovery")
			}
			if res.MACCalcs == 0 || res.MemReads.Total() == 0 {
				t.Error("recovery must read and verify")
			}
			// Refill a fresh hierarchy with the recovered blocks.
			h2 := hierarchy.New(testHierarchyConfig())
			RefillHierarchy(h2, res.Blocks)
			if h2.DirtyCount() != len(res.Blocks) {
				t.Error("refill lost blocks")
			}
		})
	}
}

func TestHorusRecoveryReadCounts(t *testing.T) {
	sys, h := buildSystem(t, core.HorusSLM)
	_, ps := drainAndCrash(t, sys, h, core.HorusSLM, 11)
	res, err := RecoverHorus(sys, ps)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(ps.EDC)
	groups := (n + 7) / 8
	// SLM: n data reads + one addr block and one MAC block per group.
	want := n + 2*groups
	if got := res.MemReads.Get(string(mem.CatRecovery)); got != want {
		t.Errorf("recovery reads = %d, want %d", got, want)
	}
}

func TestHorusDLMRecoveryReadsFewerMACBlocks(t *testing.T) {
	readsFor := func(scheme core.Scheme) int64 {
		sys, h := buildSystem(t, scheme)
		_, ps := drainAndCrash(t, sys, h, scheme, 12)
		res, err := RecoverHorus(sys, ps)
		if err != nil {
			t.Fatal(err)
		}
		return res.MemReads.Total()
	}
	slm, dlm := readsFor(core.HorusSLM), readsFor(core.HorusDLM)
	if dlm >= slm {
		t.Errorf("DLM recovery reads (%d) must be fewer than SLM (%d)", dlm, slm)
	}
}

func TestRecoveryDetectsDataTamper(t *testing.T) {
	sys, h := buildSystem(t, core.HorusSLM)
	_, ps := drainAndCrash(t, sys, h, core.HorusSLM, 13)
	sys.NVM.Store().CorruptByte(sys.Layout.CHVDataAddr(5), 10, 0x40)
	_, err := RecoverHorus(sys, ps)
	var re *Error
	if !errors.As(err, &re) {
		t.Fatalf("tampered CHV data recovered: err=%v", err)
	}
	if re.Slot != 5 {
		t.Errorf("error slot = %d, want 5", re.Slot)
	}
}

func TestRecoveryDetectsAddressTamper(t *testing.T) {
	sys, h := buildSystem(t, core.HorusSLM)
	_, ps := drainAndCrash(t, sys, h, core.HorusSLM, 14)
	a, _ := sys.Layout.CHVAddrBlockAddr(0)
	sys.NVM.Store().CorruptByte(a, 3, 0x01) // redirect block 0's address
	var re *Error
	if _, err := RecoverHorus(sys, ps); !errors.As(err, &re) {
		t.Fatalf("tampered CHV address recovered: err=%v", err)
	}
}

// A flipped domain bit (bit 63) in a stored CHV address entry is absorbed by
// the addr|DrainPadDomain OR feeding the MAC, so the MAC alone cannot object;
// recovery must reject the non-canonical entry explicitly. Found by the
// litmus corruption-coverage sweep.
func TestRecoveryDetectsDomainBitAddressTamper(t *testing.T) {
	sys, h := buildSystem(t, core.HorusSLM)
	_, ps := drainAndCrash(t, sys, h, core.HorusSLM, 14)
	a, _ := sys.Layout.CHVAddrBlockAddr(0)
	sys.NVM.Store().CorruptByte(a, 7, 0x80) // slot 0 is little-endian: byte 7 holds bit 63
	_, err := RecoverHorus(sys, ps)
	var re *Error
	if !errors.As(err, &re) {
		t.Fatalf("domain-bit address tamper recovered: err=%v", err)
	}
	if !IsDetection(err) {
		t.Fatalf("domain-bit tamper error is not a typed detection: %v", err)
	}
}

func TestRecoveryDetectsMACTamper(t *testing.T) {
	for _, scheme := range []core.Scheme{core.HorusSLM, core.HorusDLM} {
		t.Run(scheme.String(), func(t *testing.T) {
			sys, h := buildSystem(t, scheme)
			_, ps := drainAndCrash(t, sys, h, scheme, 15)
			sys.NVM.Store().CorruptByte(sys.Layout.CHVMACBase, 0, 0x02)
			var re *Error
			if _, err := RecoverHorus(sys, ps); !errors.As(err, &re) {
				t.Fatalf("tampered CHV MAC recovered: err=%v", err)
			}
		})
	}
}

func TestRecoveryDetectsSplice(t *testing.T) {
	// Swap two ciphertext blocks within the CHV: position binding via the
	// drain counter must catch it (§IV-C4).
	sys, h := buildSystem(t, core.HorusSLM)
	_, ps := drainAndCrash(t, sys, h, core.HorusSLM, 16)
	a0, a1 := sys.Layout.CHVDataAddr(0), sys.Layout.CHVDataAddr(1)
	b0, b1 := sys.NVM.PeekRead(a0), sys.NVM.PeekRead(a1)
	sys.NVM.Store().WriteBlock(a0, b1)
	sys.NVM.Store().WriteBlock(a1, b0)
	var re *Error
	if _, err := RecoverHorus(sys, ps); !errors.As(err, &re) {
		t.Fatalf("spliced CHV content recovered: err=%v", err)
	}
}

func TestRecoveryDetectsCrossEpisodeReplay(t *testing.T) {
	// Drain episode 1, snapshot the CHV; drain episode 2 with different
	// data; replay episode 1's CHV bytes. The drain-counter values differ
	// across episodes, so every MAC must mismatch (§IV-C4).
	sys, h := buildSystem(t, core.HorusSLM)
	h.FillAllDirty(hierarchy.FillOptions{
		Pattern: hierarchy.PatternWorstCaseSparse, DataSize: 256 << 20, Seed: 17,
	})
	blocks := h.DirtyBlocks()
	d := core.NewDrainer(core.HorusSLM, sys, 0)
	if _, err := d.Drain(blocks); err != nil {
		t.Fatal(err)
	}
	// Snapshot the whole CHV region of episode 1.
	lay := sys.Layout
	type saved struct {
		addr uint64
		b    mem.Block
	}
	var snap []saved
	for i := uint64(0); i < uint64(len(blocks)); i++ {
		a := lay.CHVDataAddr(i)
		snap = append(snap, saved{a, sys.NVM.PeekRead(a)})
	}
	for i := uint64(0); i < (uint64(len(blocks))+7)/8; i++ {
		a, _ := lay.CHVAddrBlockAddr(i * 8)
		snap = append(snap, saved{a, sys.NVM.PeekRead(a)})
		m, _ := lay.CHVMACBlockAddr(i * 8)
		snap = append(snap, saved{m, sys.NVM.PeekRead(m)})
	}

	// Episode 2: different content, same drainer (DC persists).
	for i := range blocks {
		blocks[i].Data[0] ^= 0xFF
	}
	res2, err := d.Drain(blocks)
	if err != nil {
		t.Fatal(err)
	}
	// Replay episode 1.
	for _, s := range snap {
		sys.NVM.Store().WriteBlock(s.addr, s.b)
	}
	sys.Sec.Crash()
	var re *Error
	if _, err := RecoverHorus(sys, res2.Persist); !errors.As(err, &re) {
		t.Fatalf("replayed previous episode's CHV recovered: err=%v", err)
	}
}

func TestParallelRecoveryFasterAndCorrect(t *testing.T) {
	for _, scheme := range []core.Scheme{core.HorusSLM, core.HorusDLM} {
		t.Run(scheme.String(), func(t *testing.T) {
			sys, h := buildSystem(t, scheme)
			golden, ps := drainAndCrash(t, sys, h, scheme, 40)
			serial, err := RecoverHorus(sys, ps)
			if err != nil {
				t.Fatal(err)
			}
			sys.Sec.Crash()
			parallel, err := RecoverHorusOpts(sys, ps, Options{BankParallel: true})
			if err != nil {
				t.Fatal(err)
			}
			if parallel.RecoveryTime >= serial.RecoveryTime {
				t.Errorf("parallel recovery (%v) not faster than serial (%v)",
					parallel.RecoveryTime, serial.RecoveryTime)
			}
			// Same blocks either way.
			if len(parallel.Blocks) != len(golden) {
				t.Fatal("parallel recovery lost blocks")
			}
			for _, b := range parallel.Blocks {
				if golden[b.Addr] != b.Data {
					t.Fatalf("parallel recovery corrupted %#x", b.Addr)
				}
			}
		})
	}
}

func TestBaselineRecoveryRoundTrip(t *testing.T) {
	sys, h := buildSystem(t, core.BaseLU)
	golden, ps := drainAndCrash(t, sys, h, core.BaseLU, 18)
	res, err := RecoverBaseline(sys, ps)
	if err != nil {
		t.Fatalf("baseline recovery: %v", err)
	}
	if res.LinesRestored != ps.Vault.Count {
		t.Errorf("restored %d lines, want %d", res.LinesRestored, ps.Vault.Count)
	}
	// Every drained block must now read back and verify through the
	// normal secure read path.
	var now sim.Time
	for addr, want := range golden {
		got, done, err := sys.Sec.ReadBlock(now, addr)
		if err != nil {
			t.Fatalf("post-recovery read %#x: %v", addr, err)
		}
		now = done
		if got != want {
			t.Fatalf("post-recovery mismatch at %#x", addr)
		}
	}
}

func TestBaselineEagerRecoveryNeedsNoVault(t *testing.T) {
	sys, h := buildSystem(t, core.BaseEU)
	golden, ps := drainAndCrash(t, sys, h, core.BaseEU, 19)
	res, err := RecoverBaseline(sys, ps)
	if err != nil {
		t.Fatal(err)
	}
	if res.LinesRestored != 0 {
		t.Error("eager drain should leave an empty vault")
	}
	var now sim.Time
	count := 0
	for addr, want := range golden {
		got, done, err := sys.Sec.ReadBlock(now, addr)
		if err != nil {
			t.Fatalf("post-recovery read %#x: %v", addr, err)
		}
		now = done
		if got != want {
			t.Fatalf("post-recovery mismatch at %#x", addr)
		}
		if count++; count >= 500 {
			break
		}
	}
}

func TestBaselineRecoveryDetectsVaultTamper(t *testing.T) {
	sys, h := buildSystem(t, core.BaseLU)
	_, ps := drainAndCrash(t, sys, h, core.BaseLU, 20)
	if ps.Vault.Count == 0 {
		t.Fatal("expected a non-empty vault")
	}
	sys.NVM.Store().CorruptByte(sys.Layout.VaultAddr(0), 0, 0x01)
	var re *Error
	if _, err := RecoverBaseline(sys, ps); !errors.As(err, &re) {
		t.Fatalf("tampered vault recovered: err=%v", err)
	}
}

func TestSchemeMismatchErrors(t *testing.T) {
	sys, h := buildSystem(t, core.BaseLU)
	_, ps := drainAndCrash(t, sys, h, core.BaseLU, 21)
	if _, err := RecoverHorus(sys, ps); err == nil {
		t.Error("RecoverHorus accepted baseline state")
	}
	sys2, h2 := buildSystem(t, core.HorusSLM)
	_, ps2 := drainAndCrash(t, sys2, h2, core.HorusSLM, 22)
	if _, err := RecoverBaseline(sys2, ps2); err == nil {
		t.Error("RecoverBaseline accepted Horus state")
	}
}

// The scheme register is persistent state: after a crash it can hold any
// value, so a mismatch must surface as a typed detection error (classified
// by IsDetection), not an untyped usage error the torture/litmus matrices
// would count as a harness failure.
func TestSchemeMismatchIsTypedDetection(t *testing.T) {
	sys, h := buildSystem(t, core.BaseLU)
	_, ps := drainAndCrash(t, sys, h, core.BaseLU, 23)
	_, err := RecoverHorus(sys, ps)
	var re *Error
	if !errors.As(err, &re) {
		t.Fatalf("RecoverHorus scheme mismatch not a *recovery.Error: %v", err)
	}
	if !IsDetection(err) {
		t.Errorf("IsDetection(%v) = false, want true", err)
	}

	sys2, h2 := buildSystem(t, core.HorusSLM)
	_, ps2 := drainAndCrash(t, sys2, h2, core.HorusSLM, 24)
	_, err = RecoverBaseline(sys2, ps2)
	if !errors.As(err, &re) {
		t.Fatalf("RecoverBaseline scheme mismatch not a *recovery.Error: %v", err)
	}
	if !IsDetection(err) {
		t.Errorf("IsDetection(%v) = false, want true", err)
	}
	// NonSecure state is rejected by RecoverBaseline the same way.
	ps2.Scheme = core.NonSecure
	if _, err := RecoverBaseline(sys2, ps2); !IsDetection(err) {
		t.Errorf("non-secure scheme mismatch not a detection: %v", err)
	}
}

func TestErrorFormatting(t *testing.T) {
	e := &Error{Slot: 3, Addr: 0x40, Detail: "boom"}
	if e.Error() == "" {
		t.Error("empty error string")
	}
}
