package recovery

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/mem"
	"repro/internal/secmem"
)

// fuzzFixture drains once and snapshots the post-crash NVM image so each
// fuzz iteration can start from a realistic persistent state without paying
// for a full drain.
type fuzzFixture struct {
	scheme core.Scheme
	ps     core.PersistentState
	base   *mem.Store
	addrs  []uint64
}

func newFuzzFixture(f *testing.F, scheme core.Scheme) *fuzzFixture {
	f.Helper()
	sys, h := buildSystem(f, scheme)
	h.FillAllDirty(hierarchy.FillOptions{
		Pattern:  hierarchy.PatternWorstCaseSparse,
		DataSize: 256 << 20,
		Seed:     23,
	})
	blocks := h.DirtyBlocks()
	d := core.NewDrainer(scheme, sys, 0)
	res, err := d.Drain(blocks)
	if err != nil {
		f.Fatal(err)
	}
	base := sys.NVM.Store().Snapshot()
	return &fuzzFixture{
		scheme: scheme,
		ps:     res.Persist,
		base:   base,
		addrs:  base.AddressesInRange(0, sys.Layout.End),
	}
}

// freshSystem builds a system whose NVM holds a copy of the fixture's
// post-drain image. The layout and engine are rebuilt identically (the
// engine is keyed, so the same key reproduces the same MACs).
func (fx *fuzzFixture) freshSystem(t testing.TB) *core.System {
	sys, _ := buildSystem(t, fx.scheme)
	for _, a := range fx.addrs {
		sys.NVM.Store().WriteBlock(a, fx.base.ReadBlock(a))
	}
	return sys
}

// requireTyped fails the fuzz iteration if err is non-nil but not a typed
// detection error: recovery fed corrupted persistent state must either
// succeed (the mutation happened to be consistent) or detect — never fail
// with an untyped internal error, and never panic (the fuzzer catches
// panics on its own).
func requireTyped(t *testing.T, err error) {
	if err == nil {
		return
	}
	var re *Error
	var ie *secmem.IntegrityError
	if !errors.As(err, &re) && !errors.As(err, &ie) {
		t.Fatalf("recovery failed with untyped error %T: %v", err, err)
	}
	if !IsDetection(err) {
		t.Fatalf("IsDetection rejected a typed detection error: %v", err)
	}
}

// FuzzRecoverHorus mutates the persistent register file (DC, EDC, CHV
// region) and one CHV byte, then runs Horus recovery. The contract under
// fuzz: no panic, no unbounded allocation, and every failure is a typed
// *recovery.Error (or wrapped secmem.IntegrityError).
func FuzzRecoverHorus(f *testing.F) {
	fx := newFuzzFixture(f, core.HorusSLM)
	f.Add(fx.ps.DC, fx.ps.EDC, fx.ps.CHVRegion, uint64(0), uint8(0), uint8(0))       // unmutated
	f.Add(fx.ps.DC, fx.ps.EDC+1, fx.ps.CHVRegion, uint64(0), uint8(0), uint8(0))     // EDC off by one
	f.Add(fx.ps.DC, uint64(1)<<60, fx.ps.CHVRegion, uint64(0), uint8(0), uint8(0))   // absurd EDC
	f.Add(uint64(0), fx.ps.EDC, fx.ps.CHVRegion, uint64(0), uint8(0), uint8(0))      // DC < EDC
	f.Add(fx.ps.DC, fx.ps.EDC, uint64(1)<<40, uint64(0), uint8(0), uint8(0))         // region out of range
	f.Add(fx.ps.DC, fx.ps.EDC, fx.ps.CHVRegion, uint64(5), uint8(3), uint8(0x10))    // flip a CHV byte
	f.Fuzz(func(t *testing.T, dc, edc, region, corruptSlot uint64, corruptOff, corruptMask uint8) {
		sys := fx.freshSystem(t)
		if corruptMask != 0 {
			slot := corruptSlot % sys.Layout.CHVCapacity
			sys.NVM.Store().CorruptByte(sys.Layout.CHVDataAddr(slot), int(corruptOff)%mem.BlockSize, corruptMask)
		}
		ps := fx.ps
		ps.DC, ps.EDC, ps.CHVRegion = dc, edc, region
		res, err := RecoverHorus(sys, ps)
		requireTyped(t, err)
		if err == nil && uint64(len(res.Blocks)) != edc {
			t.Fatalf("recovered %d blocks for EDC %d", len(res.Blocks), edc)
		}
	})
}

// FuzzRestoreMetadataVault mutates the vault record (count, root, parity
// claim) and one vault byte, then restores the metadata vault. Same
// contract: no panic, typed errors only.
func FuzzRestoreMetadataVault(f *testing.F) {
	fx := newFuzzFixture(f, core.BaseLU)
	if fx.ps.Vault.Count == 0 {
		f.Fatal("fixture drain left an empty vault")
	}
	f.Add(int64(fx.ps.Vault.Count), uint8(0), uint8(0), false, uint64(0), uint8(0), uint8(0)) // unmutated
	f.Add(int64(-1), uint8(0), uint8(0), false, uint64(0), uint8(0), uint8(0))                // negative count
	f.Add(int64(1)<<40, uint8(0), uint8(0), false, uint64(0), uint8(0), uint8(0))             // absurd count
	f.Add(int64(fx.ps.Vault.Count), uint8(0), uint8(1), false, uint64(0), uint8(0), uint8(0)) // root bit flip
	f.Add(int64(fx.ps.Vault.Count), uint8(0), uint8(0), true, uint64(0), uint8(0), uint8(0))  // lying parity bit
	f.Add(int64(fx.ps.Vault.Count), uint8(0), uint8(0), false, uint64(2), uint8(9), uint8(4)) // vault byte flip
	f.Fuzz(func(t *testing.T, count int64, rootOff, rootMask uint8, parity bool, corruptIdx uint64, corruptOff, corruptMask uint8) {
		sys := fx.freshSystem(t)
		if corruptMask != 0 {
			idx := corruptIdx % sys.Layout.VaultBlocks
			sys.NVM.Store().CorruptByte(sys.Layout.VaultAddr(idx), int(corruptOff)%mem.BlockSize, corruptMask)
		}
		vault := fx.ps.Vault
		vault.Count = int(count)
		vault.Parity = parity
		vault.Root[int(rootOff)%len(vault.Root)] ^= rootMask
		res, err := RestoreMetadataVault(sys, vault)
		requireTyped(t, err)
		if err == nil && vault.Count > 0 && res.LinesRestored != vault.Count {
			t.Fatalf("restored %d lines for count %d", res.LinesRestored, vault.Count)
		}
	})
}
