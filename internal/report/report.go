// Package report renders the experiment results as aligned text tables and
// normalized series, matching the shape of the paper's figures and tables
// so the harness output can be compared against them directly.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
		fmt.Fprintln(w, strings.Repeat("=", len(t.Title)))
	}
	all := make([][]string, 0, len(t.Rows)+1)
	if len(t.Header) > 0 {
		all = append(all, t.Header)
	}
	all = append(all, t.Rows...)
	widths := columnWidths(all)
	if len(t.Header) > 0 {
		fmt.Fprintln(w, formatRow(t.Header, widths))
		fmt.Fprintln(w, separator(widths))
	}
	for _, r := range t.Rows {
		fmt.Fprintln(w, formatRow(r, widths))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

func columnWidths(rows [][]string) []int {
	var widths []int
	for _, r := range rows {
		for i, c := range r {
			for len(widths) <= i {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	return widths
}

func formatRow(cells []string, widths []int) string {
	parts := make([]string, len(cells))
	for i, c := range cells {
		if i == 0 {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c) // left-align label column
		} else {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
	}
	return strings.TrimRight(strings.Join(parts, "  "), " ")
}

func separator(widths []int) string {
	parts := make([]string, len(widths))
	for i, w := range widths {
		parts[i] = strings.Repeat("-", w)
	}
	return strings.TrimRight(strings.Join(parts, "  "), " ")
}

// WriteCSV writes the table as CSV (header row first, notes omitted), for
// piping into plotting tools.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.Header) > 0 {
		if err := cw.Write(t.Header); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Count formats a count with thousands separators.
func Count(n int64) string {
	s := fmt.Sprintf("%d", n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// Ratio formats a normalized value as "N.NNx".
func Ratio(v float64) string { return fmt.Sprintf("%.2fx", v) }

// Joules formats an energy value.
func Joules(v float64) string { return fmt.Sprintf("%.2f J", v) }

// Cm3 formats a volume.
func Cm3(v float64) string { return fmt.Sprintf("%.2f cm^3", v) }
