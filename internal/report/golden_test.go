package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs/evlog"
	"repro/internal/timeline"
)

// Golden-file tests pin the rendered byte output of the timeline report
// views. Regenerate after an intentional format change with:
//
//	go test ./internal/report -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with the current output")

// goldenRecording builds a small deterministic drain episode by hand: two
// banks with queued writes (wait on bank), a shared bus, a pipelined AES
// engine and a MAC unit, a stage marker, and a trailing idle gap so every
// rendering feature — density levels, wait uppercase, idle blanks, the
// per-episode total row — appears in the output.
func goldenRecording() *timeline.Recording {
	r := timeline.NewRecorder(0)
	r.BeginEpisode("golden-slm")

	r.SetStage("drain:blocks")
	r.SetOp("write", "chv-data")
	// bank00: back-to-back writes; the second is ready at 0 but waits.
	r.OnReserve("bank00", "bank", 0, 0, 500, 500)
	r.OnReserve("bank00", "bank", 0, 500, 1000, 1000)
	// bank01: one write, then idle.
	r.OnReserve("bank01", "bank", 0, 0, 500, 500)
	// bus transfers overlap the bank service.
	r.SetOp("xfer", "chv-data")
	r.OnReserve("membus", "bus", 0, 0, 120, 120)
	r.OnReserve("membus", "bus", 500, 500, 620, 620)

	r.SetStage("drain:chv-stream")
	r.SetOp("aes", "otp")
	// Pipelined engine: issue slot (End) shorter than completion (Done).
	r.OnReserve("aes", "aes", 1000, 1000, 1082, 1160)
	r.OnReserve("aes", "aes", 1082, 1082, 1164, 1242)
	r.SetOp("mac", "chv-data-mac")
	// MAC ready at 1160 but its unit is busy until 1300: wait shows up.
	r.OnReserve("mac", "mac", 1160, 1300, 1460, 1460)

	// Episode runs to 2000: [1460, 2000) has nothing in flight -> idle.
	r.EndEpisode(2000)
	return r.Recording()
}

func checkGolden(t *testing.T, name string, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s: output differs from golden file (rerun with -update if intentional)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

func TestGoldenAttributionTable(t *testing.T) {
	rec := goldenRecording()
	checkGolden(t, "attribution.golden", AttributionTable(timeline.Analyze(rec)).String())
}

// TestGoldenAttributionTableDropped covers the dropped-events warning note:
// a recorder with a tiny limit keeps the first events and counts the rest.
func TestGoldenAttributionTableDropped(t *testing.T) {
	r := timeline.NewRecorder(2)
	r.BeginEpisode("golden-dropped")
	r.SetOp("write", "chv-data")
	r.OnReserve("bank00", "bank", 0, 0, 500, 500)
	r.OnReserve("bank00", "bank", 0, 500, 1000, 1000)
	r.OnReserve("bank00", "bank", 0, 1000, 1500, 1500) // dropped
	r.EndEpisode(1500)
	checkGolden(t, "attribution_dropped.golden", AttributionTable(timeline.Analyze(r.Recording())).String())
}

func TestGoldenGantt(t *testing.T) {
	rec := goldenRecording()
	checkGolden(t, "gantt.golden", Gantt(rec).String())
}

// TestGoldenGanttEmpty pins the degenerate rendering of an empty episode.
func TestGoldenGanttEmpty(t *testing.T) {
	r := timeline.NewRecorder(0)
	r.BeginEpisode("golden-empty")
	r.EndEpisode(0)
	checkGolden(t, "gantt_empty.golden", Gantt(r.Recording()).String())
}

// goldenRecoveryRecording builds a deterministic recovery-path episode: a
// vault-restore stage followed by a CHV read-back stage, phase-local clock
// starting at zero.
func goldenRecoveryRecording() *timeline.Recording {
	r := timeline.NewRecorder(0)
	r.BeginEpisode("recover-chv:golden-slm")
	r.SetStage("recover:chv")
	r.SetOp("read", "chv-data")
	r.OnReserve("bank00", "bank", 0, 0, 400, 400)
	r.OnReserve("membus", "bus", 400, 400, 520, 520)
	r.SetOp("mac", "chv-data-mac")
	r.OnReserve("mac", "mac", 520, 520, 780, 780)
	r.SetOp("aes", "otp")
	r.OnReserve("aes", "aes", 780, 780, 862, 940)
	r.EndEpisode(940)
	return r.Recording()
}

// TestGoldenRecoveryAttributionTable pins the titled variant the recovery
// paths render: "Recovery critical path by binding resource" with a
// "(recovery time)" total row.
func TestGoldenRecoveryAttributionTable(t *testing.T) {
	rec := goldenRecoveryRecording()
	got := AttributionTableTitled("Recovery critical path by binding resource",
		"(recovery time)", timeline.Analyze(rec)).String()
	checkGolden(t, "recovery_attribution.golden", got)
}

// TestGoldenRecoveryGantt pins the recovery-timeline Gantt title.
func TestGoldenRecoveryGantt(t *testing.T) {
	rec := goldenRecoveryRecording()
	got := GanttTitled("Recovery timeline: "+rec.Episode, rec).String()
	checkGolden(t, "recovery_gantt.golden", got)
}

// goldenForensics builds two deterministic detections: a CHV data-MAC
// failure with a short provenance chain, and a post-recovery probe failure
// with no chain (no recorder attached in that cell).
func goldenForensics() []evlog.Forensic {
	return []evlog.Forensic{
		{
			Label: "Horus-SLM/step12/bit-flip", Scheme: "Horus-SLM", Model: "bit-flip",
			Phase: "CHV recovery", Check: "chv-data-mac", Region: "chv-data",
			Addr: 0x4c00, Slot: 3, Expected: "02d5d23bbe46d867", Got: "451b133b4d946e4b",
			BlocksScanned: 3, DetectLatencyPs: 1_025_000,
			Detail: "data MAC mismatch (tampered, spliced or replayed CHV content)",
			Chain: []evlog.Record{
				{Seq: 1, TPs: 205_000, Episode: "recover-chv:Horus-SLM", Stage: "recover:chv",
					Check: "chv-data-mac", Region: "chv-data", Addr: 0x4000, Slot: 0, Blocks: 1, Outcome: "ok"},
				{Seq: 2, TPs: 410_000, Episode: "recover-chv:Horus-SLM", Stage: "recover:chv",
					Check: "chv-data-mac", Region: "chv-data", Addr: 0x4400, Slot: 1, Blocks: 2, Outcome: "ok"},
				{Seq: 3, TPs: 1_025_000, Episode: "recover-chv:Horus-SLM", Stage: "recover:chv",
					Check: "chv-data-mac", Region: "chv-data", Addr: 0x4c00, Slot: 3, Blocks: 3,
					Expected: "02d5d23bbe46d867", Got: "451b133b4d946e4b", Outcome: "fail",
					Detail: "data MAC mismatch (tampered, spliced or replayed CHV content)"},
			},
		},
		{
			Label: "Base-LU/single-bit/counters", Scheme: "Base-LU", Model: "single-bit",
			Phase: "post-recovery read", Check: "secmem-tamper", Region: "runtime",
			Addr: 0x9a40, BlocksScanned: 17,
			Detail: "level 0 index 2: counter verification failed",
		},
	}
}

// TestGoldenForensicTable pins the detection-forensics rendering: per-row
// cell/check/latency columns plus expected/got, detail and chain notes.
func TestGoldenForensicTable(t *testing.T) {
	checkGolden(t, "forensic.golden", ForensicTable(goldenForensics()...).String())
}

// TestGoldenForensicTableEmpty pins the no-detections degenerate case.
func TestGoldenForensicTableEmpty(t *testing.T) {
	checkGolden(t, "forensic_empty.golden", ForensicTable().String())
}
