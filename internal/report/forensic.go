package report

import (
	"fmt"

	"repro/internal/obs/evlog"
	"repro/internal/sim"
)

// forensicChainTail bounds how many trailing flight-recorder records a
// forensic row prints; earlier records collapse into one "… N earlier"
// note so a table over many cells stays readable.
const forensicChainTail = 8

// ForensicTable renders detection forensics: one row per detection naming
// the failing check, the layout region and address it touched, how many
// blocks recovery had verified when it fired and the detection latency.
// Notes under each row carry the expected-vs-got identity comparison, the
// typed error's detail and the trailing flight-recorder provenance chain.
func ForensicTable(fs ...evlog.Forensic) *Table {
	t := &Table{
		Title:  "Detection forensics: failing check and provenance per detection",
		Header: []string{"cell", "model", "phase", "check", "region", "addr", "blocks", "latency"},
	}
	if len(fs) == 0 {
		t.AddNote("no detections to explain")
		return t
	}
	for _, f := range fs {
		cell := f.Label
		if cell == "" {
			cell = f.Scheme
		}
		if cell == "" {
			cell = "-"
		}
		t.AddRow(cell, f.Model, f.Phase, f.Check, f.Region,
			fmt.Sprintf("%#x", f.Addr), fmt.Sprintf("%d", f.BlocksScanned),
			sim.Time(f.DetectLatencyPs).String())
		if f.Expected != "" || f.Got != "" {
			t.AddNote("%s: expected %s, got %s", cell, f.Expected, f.Got)
		}
		if f.Detail != "" {
			t.AddNote("%s: %s", cell, f.Detail)
		}
		recs := f.Chain
		if len(recs) > forensicChainTail {
			t.AddNote("%s: … %d earlier flight-recorder events", cell, len(recs)-forensicChainTail)
			recs = recs[len(recs)-forensicChainTail:]
		}
		for _, r := range recs {
			t.AddNote("%s: %s", cell, r.String())
		}
	}
	t.AddNote("blocks = blocks verified before the check fired; latency = phase-local simulated detection time")
	return t
}
