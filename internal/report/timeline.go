package report

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/timeline"
)

// AttributionTable renders one or more critical-path attributions as a
// table: one row per (episode, resource class, phase) plus a per-episode
// total row, with each share's percentage of the episode's drain time. By
// construction the per-episode totals equal the measured drain times.
func AttributionTable(atts ...timeline.Attribution) *Table {
	return AttributionTableTitled("Drain critical path by binding resource", "(drain time)", atts...)
}

// AttributionTableTitled is AttributionTable with the title and the
// per-episode total-row label chosen by the caller — the recovery paths use
// "Recovery critical path by binding resource" / "(recovery time)".
func AttributionTableTitled(title, totalLabel string, atts ...timeline.Attribution) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"scheme", "resource", "service", "wait", "total", "share"},
	}
	dropped := false
	for _, a := range atts {
		for _, s := range a.Shares {
			t.AddRow(a.Episode, s.Resource,
				s.Service.String(), s.Wait.String(), s.Total().String(),
				sharePct(s.Total(), a.Total))
		}
		t.AddRow(a.Episode, totalLabel, "", "", a.AttributedTotal().String(),
			sharePct(a.AttributedTotal(), a.Total))
		if a.Dropped > 0 {
			dropped = true
		}
	}
	t.AddNote("service = critical path occupying the resource; wait = queued for it; idle = no recorded operation in flight")
	if dropped {
		t.AddNote("warning: recorder dropped events (limit reached); resource-bound time is a lower bound, the remainder shows as idle")
	}
	return t
}

// ganttWidth is the default character width of a Gantt bar.
const ganttWidth = 96

// ganttDensity maps a bucket's busy fraction to a bar character.
func ganttDensity(busy, span sim.Time) byte {
	if span <= 0 || busy <= 0 {
		return ' '
	}
	switch f := float64(busy) / float64(span); {
	case f < 0.25:
		return '.'
	case f < 0.5:
		return ':'
	case f < 0.75:
		return '='
	default:
		return '#'
	}
}

// Gantt renders a recording as an ASCII Gantt chart: one bar per resource
// track showing reservation density over the episode, plus a critical-path
// bar marking which resource class binds each interval (b=bank, u=bus,
// a=aes, m=mac, blank=idle; uppercase marks wait on that resource). Wide
// episodes compress into character buckets, so a character shows the
// bucket's busy fraction, not individual events.
func Gantt(rec *timeline.Recording) *Table {
	return GanttTitled(fmt.Sprintf("Drain timeline: %s", rec.Episode), rec)
}

// GanttTitled is Gantt with a caller-chosen title; recovery episodes render
// as "Recovery timeline: recover-chv:Horus-SLM".
func GanttTitled(title string, rec *timeline.Recording) *Table {
	t := &Table{Title: title}
	total := rec.Total
	if total <= 0 {
		t.AddNote("empty recording")
		return t
	}
	t.Header = []string{"track", fmt.Sprintf("0 .. %s (%d cols)", total, ganttWidth)}

	bucketOf := func(ts sim.Time) int {
		b := int(int64(ts) * ganttWidth / int64(total))
		if b < 0 {
			b = 0
		}
		if b >= ganttWidth {
			b = ganttWidth - 1
		}
		return b
	}
	// accumulate overlaps [lo, hi) into per-bucket busy time.
	accumulate := func(busy []sim.Time, lo, hi sim.Time) {
		if hi > total {
			hi = total
		}
		if hi <= lo {
			return
		}
		for b := bucketOf(lo); b <= bucketOf(hi-1); b++ {
			bLo := sim.Time(int64(b) * int64(total) / ganttWidth)
			bHi := sim.Time(int64(b+1) * int64(total) / ganttWidth)
			o := minTime(hi, bHi) - maxTime(lo, bLo)
			if o > 0 {
				busy[b] += o
			}
		}
	}
	span := func(b int) sim.Time {
		return sim.Time(int64(b+1)*int64(total)/ganttWidth - int64(b)*int64(total)/ganttWidth)
	}

	byTrack := map[string][]sim.Time{}
	for _, tr := range rec.Tracks() {
		byTrack[tr] = make([]sim.Time, ganttWidth)
	}
	for _, e := range rec.Events {
		accumulate(byTrack[e.Track], e.Start, e.End)
	}
	for _, tr := range rec.Tracks() {
		var bar strings.Builder
		for b := 0; b < ganttWidth; b++ {
			bar.WriteByte(ganttDensity(byTrack[tr][b], span(b)))
		}
		t.AddRow(tr, bar.String())
	}

	crit := make([]byte, ganttWidth)
	for i := range crit {
		crit[i] = ' '
	}
	for _, s := range timeline.Analyze(rec).Steps {
		ch := critChar(s)
		if ch == ' ' {
			continue
		}
		for b := bucketOf(s.From); b <= bucketOf(s.To-1); b++ {
			crit[b] = ch
		}
	}
	t.AddRow("critical", string(crit))
	t.AddNote("bars: reservation density per bucket (. < 25%%, : < 50%%, = < 75%%, # dense)")
	t.AddNote("critical: binding class per bucket — b=bank u=bus a=aes m=mac, uppercase = waiting, blank = idle")
	return t
}

// critChar maps a critical-path step to its Gantt marker.
func critChar(s timeline.PathStep) byte {
	var ch byte
	switch s.Resource {
	case "bank":
		ch = 'b'
	case "bus":
		ch = 'u'
	case "aes":
		ch = 'a'
	case "mac":
		ch = 'm'
	case "idle":
		return ' '
	default:
		ch = '?'
	}
	if s.Phase == "wait" && ch >= 'a' && ch <= 'z' {
		ch -= 'a' - 'A'
	}
	return ch
}

// sharePct formats part/whole as a percentage.
func sharePct(part, whole sim.Time) string {
	if whole <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}

func minTime(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
