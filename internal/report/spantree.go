package report

import (
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/sim"
)

// SpanTree renders a registry's lifecycle spans as an indented table: one
// row per span, children indented under their parent, with the simulated
// duration both human-readable and in raw picoseconds. Phases run on
// phase-local sim clocks, so durations are a breakdown, not a timeline.
func SpanTree(reg *obs.Registry) *Table {
	t := &Table{
		Title:  "Lifecycle spans",
		Header: []string{"phase", "duration", "ps"},
	}
	roots := reg.Spans()
	if len(roots) == 0 {
		t.AddNote("no spans recorded")
		return t
	}
	var add func(depth int, s *obs.Span)
	add = func(depth int, s *obs.Span) {
		t.AddRow(
			strings.Repeat("  ", depth)+s.Name,
			sim.Time(s.Duration()).String(),
			strconv.FormatInt(s.Duration(), 10),
		)
		for _, c := range s.Children {
			add(depth+1, c)
		}
	}
	for _, root := range roots {
		add(0, root)
	}
	return t
}
