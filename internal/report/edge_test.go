package report

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/evlog"
	"repro/internal/timeline"
)

// TestSpanTreeEmpty pins the no-spans rendering.
func TestSpanTreeEmpty(t *testing.T) {
	out := SpanTree(obs.NewRegistry()).String()
	if !strings.Contains(out, "no spans recorded") {
		t.Errorf("empty registry rendered without the note:\n%s", out)
	}
}

// TestSpanTreeNesting checks children indent under their parent and both
// the human-readable and raw-picosecond durations appear.
func TestSpanTreeNesting(t *testing.T) {
	reg := obs.NewRegistry()
	root := reg.StartSpan("episode", 0)
	reg.RecordSpan("drain", 0, 1500)
	root.EndAt(2000)
	reg.RecordSpan("recover", 0, 500)

	out := SpanTree(reg).String()
	for _, want := range []string{"episode", "  drain", "recover", "2000", "1500"} {
		if !strings.Contains(out, want) {
			t.Errorf("span tree missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "  recover") {
		t.Errorf("recover is a root span but rendered indented:\n%s", out)
	}
}

// TestSparklineNaN pins the NaN rendering: NaNs become spaces and do not
// perturb the scale of the real samples.
func TestSparklineNaN(t *testing.T) {
	nan := math.NaN()
	got := Sparkline([]float64{0, nan, 1})
	if []rune(got)[1] != ' ' {
		t.Errorf("NaN rendered %q, want a space in %q", string([]rune(got)[1]), got)
	}
	if r := []rune(got); r[0] == r[2] {
		t.Errorf("scale collapsed around the NaN: %q", got)
	}
	if got := Sparkline([]float64{nan, nan}); strings.TrimSpace(got) != "" {
		t.Errorf("all-NaN series rendered %q, want only spaces", got)
	}
}

// TestSparklineChartDefaultFormat checks the nil-format fallback and that
// wide inputs are resampled to the requested width.
func TestSparklineChartDefaultFormat(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	got := SparklineChart("ramp", vals, 10, nil)
	if !strings.Contains(got, "min=0") || !strings.Contains(got, "max=99") || !strings.Contains(got, "final=99") {
		t.Errorf("default format annotations wrong: %q", got)
	}
	if n := len([]rune(strings.Fields(got)[1])); n != 10 {
		t.Errorf("chart bar is %d runes, want 10: %q", n, got)
	}
}

// failWriter fails every write; WriteCSV must surface the error rather
// than swallow it in the csv buffer.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestWriteCSVEdges(t *testing.T) {
	headerless := &Table{Rows: [][]string{{"a", "1"}, {"b", "2"}}}
	var b strings.Builder
	if err := headerless.WriteCSV(&b); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if got := b.String(); got != "a,1\nb,2\n" {
		t.Errorf("headerless CSV = %q", got)
	}
	if err := headerless.WriteCSV(failWriter{}); err == nil {
		t.Error("WriteCSV swallowed the writer's error")
	}
}

// TestForensicTableLabelFallback pins the cell-label fallback chain:
// label, then scheme, then "-".
func TestForensicTableLabelFallback(t *testing.T) {
	out := ForensicTable(
		evlog.Forensic{Label: "cell-7", Scheme: "Horus-SLM"},
		evlog.Forensic{Scheme: "Horus-DLM"},
		evlog.Forensic{},
	).String()
	for _, want := range []string{"cell-7", "Horus-DLM", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("forensic table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Horus-SLM") {
		t.Errorf("label set but scheme used as the cell:\n%s", out)
	}
}

// TestSharePct pins the zero-whole guard.
func TestSharePct(t *testing.T) {
	if got := sharePct(1, 0); got != "-" {
		t.Errorf("sharePct(1, 0) = %q, want -", got)
	}
	if got := sharePct(1, 2); got != "50.0%" {
		t.Errorf("sharePct(1, 2) = %q", got)
	}
}

// TestCritChar pins the critical-path marker alphabet, including the
// wait-phase uppercase shift and the unknown-resource fallback.
func TestCritChar(t *testing.T) {
	cases := []struct {
		resource, phase string
		want            byte
	}{
		{"bank", "service", 'b'},
		{"bus", "service", 'u'},
		{"aes", "service", 'a'},
		{"mac", "service", 'm'},
		{"bank", "wait", 'B'},
		{"mac", "wait", 'M'},
		{"idle", "idle", ' '},
		{"warp-core", "service", '?'},
	}
	for _, tc := range cases {
		s := timeline.PathStep{Resource: tc.resource, Phase: tc.phase}
		if got := critChar(s); got != tc.want {
			t.Errorf("critChar(%s/%s) = %q, want %q", tc.resource, tc.phase, got, tc.want)
		}
	}
}

// TestMinMaxTime pins the tiny ordering helpers.
func TestMinMaxTime(t *testing.T) {
	if minTime(1, 2) != 1 || minTime(2, 1) != 1 {
		t.Error("minTime wrong")
	}
	if maxTime(1, 2) != 2 || maxTime(2, 1) != 2 {
		t.Error("maxTime wrong")
	}
}
