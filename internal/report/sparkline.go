package report

import (
	"fmt"
	"math"
	"strings"
)

// sparkRunes are the eight block-element levels of an ASCII(-art)
// sparkline, lowest to highest.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line block-character chart, scaling
// linearly between the minimum and maximum value. A flat series renders at
// the lowest level; NaNs render as spaces; an empty series renders empty.
func Sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range vals {
		switch {
		case math.IsNaN(v):
			b.WriteByte(' ')
		case hi == lo:
			b.WriteRune(sparkRunes[0])
		default:
			idx := int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
			b.WriteRune(sparkRunes[idx])
		}
	}
	return b.String()
}

// Resample reduces (or keeps) vals to at most width points by taking the
// last value of each equal-width bucket — the right fold for the
// cumulative curves (energy drawdown) sparklines are used on. Returns vals
// unchanged when already narrow enough or width is non-positive.
func Resample(vals []float64, width int) []float64 {
	if width <= 0 || len(vals) <= width {
		return vals
	}
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		// Last index of bucket i under an even split of len(vals).
		end := (i+1)*len(vals)/width - 1
		out[i] = vals[end]
	}
	return out
}

// SparklineChart renders a labelled sparkline line:
//
//	label  ▁▂▃▄▅▆▇█  min=… max=… final=…
//
// vals wider than width are resampled (last value per bucket). format
// renders the annotation numbers (e.g. Joules); nil falls back to %g.
func SparklineChart(label string, vals []float64, width int, format func(float64) string) string {
	if format == nil {
		format = func(v float64) string { return fmt.Sprintf("%g", v) }
	}
	if len(vals) == 0 {
		return fmt.Sprintf("%s  (no samples)", label)
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	final := vals[len(vals)-1]
	return fmt.Sprintf("%s  %s  min=%s max=%s final=%s",
		label, Sparkline(Resample(vals, width)), format(lo), format(hi), format(final))
}
