package report

import (
	"math"
	"strings"
	"testing"
)

func TestSparklineBasics(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
	if got := Sparkline([]float64{5, 5, 5}); got != "▁▁▁" {
		t.Fatalf("flat sparkline = %q", got)
	}
	got := Sparkline([]float64{0, 7})
	if got != "▁█" {
		t.Fatalf("two-point sparkline = %q", got)
	}
	if got := Sparkline([]float64{0, math.NaN(), 1}); got != "▁ █" {
		t.Fatalf("NaN sparkline = %q", got)
	}
}

func TestSparklineMonotone(t *testing.T) {
	vals := make([]float64, 8)
	for i := range vals {
		vals[i] = float64(i)
	}
	got := Sparkline(vals)
	if got != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp sparkline = %q", got)
	}
}

func TestResample(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if got := Resample(vals, 10); len(got) != 8 {
		t.Fatalf("narrow input resampled: %v", got)
	}
	got := Resample(vals, 4)
	want := []float64{2, 4, 6, 8} // last of each pair
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resample = %v, want %v", got, want)
		}
	}
	// Final value always survives resampling (acceptance: the final
	// energy point is the Table II number).
	if got[len(got)-1] != vals[len(vals)-1] {
		t.Fatalf("resample lost the final value")
	}
}

func TestSparklineChartNoSamples(t *testing.T) {
	got := SparklineChart("x", nil, 40, nil)
	if !strings.Contains(got, "(no samples)") {
		t.Fatalf("chart = %q", got)
	}
}

// Golden tests pin the rendered chart bytes alongside the other
// testdata/*.golden files.
func TestGoldenSparklineRamp(t *testing.T) {
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i) * float64(i) * 0.01
	}
	var b strings.Builder
	b.WriteString(SparklineChart("Horus-SLM", vals, 32, Joules) + "\n")
	b.WriteString(SparklineChart("Base-EU", []float64{1, 1, 1, 1}, 32, Joules) + "\n")
	b.WriteString(SparklineChart("empty", nil, 32, Joules) + "\n")
	checkGolden(t, "sparkline_ramp.golden", b.String())
}

func TestGoldenSparklineDrawdown(t *testing.T) {
	// A drain-shaped curve: cumulative energy rising to a plateau.
	var vals []float64
	for i := 0; i < 48; i++ {
		vals = append(vals, 13.7*(1-math.Exp(-float64(i)/12)))
	}
	checkGolden(t, "sparkline_drawdown.golden",
		SparklineChart("energy J", vals, 40, Joules)+"\n")
}
