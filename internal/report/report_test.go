package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:  "Demo",
		Header: []string{"scheme", "value"},
	}
	tbl.AddRow("Base-LU", "10")
	tbl.AddRow("Horus-SLM", "1")
	tbl.AddNote("normalized to %s", "NonSecure")
	out := tbl.String()
	for _, want := range []string{"Demo", "scheme", "Base-LU", "Horus-SLM", "note: normalized to NonSecure"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// Header separator line must be present.
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, "---") {
			found = true
		}
	}
	if !found {
		t.Error("missing header separator")
	}
}

func TestTableNoHeader(t *testing.T) {
	tbl := &Table{}
	tbl.AddRow("a", "b")
	if out := tbl.String(); !strings.Contains(out, "a  b") {
		t.Errorf("headerless table wrong: %q", out)
	}
}

func TestWriteCSV(t *testing.T) {
	tbl := &Table{Header: []string{"a", "b"}}
	tbl.AddRow("x", "1")
	tbl.AddRow("y", "2")
	tbl.AddNote("ignored in CSV")
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nx,1\ny,2\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
}

func TestCount(t *testing.T) {
	cases := map[int64]string{
		0:        "0",
		999:      "999",
		1000:     "1,000",
		295936:   "295,936",
		-1234567: "-1,234,567",
	}
	for n, want := range cases {
		if got := Count(n); got != want {
			t.Errorf("Count(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestFormatters(t *testing.T) {
	if Ratio(10.345) != "10.35x" {
		t.Error("Ratio wrong")
	}
	if Joules(11.07) != "11.07 J" {
		t.Error("Joules wrong")
	}
	if Cm3(30.7) != "30.70 cm^3" {
		t.Error("Cm3 wrong")
	}
}
