package cliutil

import (
	"flag"
	"os"

	horus "repro"
)

// ForensicFlags bundles the detection-forensics flags shared by the horus
// commands: -explain prints the forensic provenance table for every
// detection, -evlog writes the flight recorder's records as JSON lines,
// -evlog-events bounds the recorder.
type ForensicFlags struct {
	Explain bool
	Path    string
	Limit   int
}

// AddForensicFlags registers the shared forensics flags on the default flag
// set; call before flag.Parse.
func AddForensicFlags() *ForensicFlags {
	ff := &ForensicFlags{}
	flag.BoolVar(&ff.Explain, "explain", false, "print the detection-forensics table (failing check, region and flight-recorder provenance per detection)")
	flag.StringVar(&ff.Path, "evlog", "", "write the detection flight recorder as JSON lines to this file")
	flag.IntVar(&ff.Limit, "evlog-events", 0, "cap on retained flight-recorder events (0 = default limit)")
	return ff
}

// Enabled reports whether any forensic output was requested.
func (ff *ForensicFlags) Enabled() bool { return ff.Explain || ff.Path != "" }

// Log returns a fresh flight recorder when forensics were requested, else
// nil (recording disabled, one pointer check per event).
func (ff *ForensicFlags) Log() *horus.Evlog {
	if !ff.Enabled() {
		return nil
	}
	return horus.NewEvlog(ff.Limit)
}

// WriteJSONL exports the records to the configured -evlog path. No-op when
// -evlog was not given.
func (ff *ForensicFlags) WriteJSONL(recs ...horus.EvlogRecord) error {
	if ff.Path == "" {
		return nil
	}
	f, err := os.Create(ff.Path)
	if err != nil {
		return err
	}
	err = horus.WriteEvlogJSONL(f, recs...)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
