package cliutil

import (
	"flag"
	"os"

	horus "repro"
)

// TraceFlags bundles the event-timeline tracing flags shared by the horus
// commands: -trace exports the drain's resource timeline as Chrome
// trace-event JSON, -trace-attrib prints the critical-path attribution
// table, -trace-events bounds the recorder.
type TraceFlags struct {
	Path   string
	Attrib bool
	Limit  int
}

// AddTraceFlags registers the shared tracing flags on the default flag set;
// call before flag.Parse.
func AddTraceFlags() *TraceFlags {
	tf := &TraceFlags{}
	flag.StringVar(&tf.Path, "trace", "", "write the drain event timeline as Chrome trace-event JSON (chrome://tracing, Perfetto) to this file")
	flag.BoolVar(&tf.Attrib, "trace-attrib", false, "print the drain critical-path attribution table (per-resource share of the drain time)")
	flag.IntVar(&tf.Limit, "trace-events", 0, "cap on recorded timeline events (0 = default limit, negative = unlimited)")
	return tf
}

// Enabled reports whether any timeline output was requested.
func (tf *TraceFlags) Enabled() bool { return tf.Path != "" || tf.Attrib }

// Recorder returns a fresh timeline recorder when tracing was requested,
// else nil (recording disabled, one pointer check per reservation).
func (tf *TraceFlags) Recorder() *horus.TimelineRecorder {
	if !tf.Enabled() {
		return nil
	}
	return horus.NewTimelineRecorder(tf.Limit)
}

// WriteTrace exports the recordings to the configured -trace path. No-op
// when -trace was not given.
func (tf *TraceFlags) WriteTrace(recs ...*horus.TimelineRecording) error {
	if tf.Path == "" {
		return nil
	}
	f, err := os.Create(tf.Path)
	if err != nil {
		return err
	}
	err = horus.WriteChromeTrace(f, recs...)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
