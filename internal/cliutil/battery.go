package cliutil

import (
	"flag"
	"fmt"

	horus "repro"
)

// BatteryFlags bundles the hold-up battery flags shared by horus-drain
// (per-machine budget) and horus-fleet (per-rack budget): a provisioned
// volume plus technology (Table III densities), or a direct joule override.
type BatteryFlags struct {
	Cm3    float64
	Tech   string
	Joules float64
	prefix string
}

// AddBatteryFlags registers the battery flags on the default flag set;
// call before flag.Parse. prefix namespaces the flags ("" gives
// -battery-cm3/-battery-tech/-battery-j; "rack-" gives the rack-scoped
// variants). scope appears in the help text ("drain", "rack").
func AddBatteryFlags(prefix, scope string) *BatteryFlags {
	bf := &BatteryFlags{prefix: prefix}
	flag.Float64Var(&bf.Cm3, prefix+"battery-cm3", 0,
		fmt.Sprintf("provisioned %s back-up battery volume in cm^3; with -%sbattery-tech sets the hold-up energy budget", scope, prefix))
	flag.StringVar(&bf.Tech, prefix+"battery-tech", "supercap",
		"back-up battery technology: supercap | li-thin (Table III densities)")
	flag.Float64Var(&bf.Joules, prefix+"battery-j", 0,
		fmt.Sprintf("%s hold-up energy budget in joules (overrides -%sbattery-cm3/-%sbattery-tech)", scope, prefix, prefix))
	return bf
}

// BudgetJoules resolves the flags into a hold-up energy budget: the joule
// override wins, else the volume is converted through the technology's
// density. Zero when neither was given; an error names an unknown
// technology.
func (bf *BatteryFlags) BudgetJoules() (float64, error) {
	if bf.Joules > 0 {
		return bf.Joules, nil
	}
	if bf.Cm3 <= 0 {
		return 0, nil
	}
	j, ok := horus.BatteryBudgetJoules(bf.Cm3, bf.Tech)
	if !ok {
		return 0, fmt.Errorf("unknown battery tech %q (want supercap|li-thin)", bf.Tech)
	}
	return j, nil
}
