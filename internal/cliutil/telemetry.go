package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	horus "repro"
)

// TelemetryFlags bundles the live-telemetry flags shared by the horus
// commands: -serve exposes the monitoring HTTP server (/metrics, /healthz,
// /timeseries.json, SSE /progress), -ts writes the recorded sim-time series
// to a file, -ts-window / -ts-cap tune the sampler, -progress prints a live
// stderr line per finished episode, -serve-linger keeps the server up after
// the run so a scraper can collect final state.
type TelemetryFlags struct {
	ServeAddr string
	Linger    time.Duration
	TSPath    string
	WindowNs  int64
	Capacity  int
	Progress  bool

	sampler *horus.TimeseriesSampler
	server  *horus.MonitorServer

	// ProgressOut receives the -progress line; defaults to os.Stderr.
	// Tests may redirect it.
	ProgressOut io.Writer
}

// AddTelemetryFlags registers the shared telemetry flags on the default
// flag set; call before flag.Parse. withProgress additionally registers
// -progress (the sweep-shaped commands).
func AddTelemetryFlags(withProgress bool) *TelemetryFlags {
	tf := &TelemetryFlags{ProgressOut: os.Stderr}
	flag.StringVar(&tf.ServeAddr, "serve", "", "serve live telemetry over HTTP on this address (e.g. :8080 or 127.0.0.1:0): /metrics, /healthz, /timeseries.json, SSE /progress")
	flag.DurationVar(&tf.Linger, "serve-linger", 0, "keep the -serve endpoint up this long after the run completes (lets a scraper collect final state)")
	flag.StringVar(&tf.TSPath, "ts", "", "write the recorded sim-time series (the /timeseries.json document) to this file")
	flag.Int64Var(&tf.WindowNs, "ts-window", 0, "initial time-series bucket width in simulated nanoseconds (0 = 1 ns default; series coarsen automatically past -ts-cap points)")
	flag.IntVar(&tf.Capacity, "ts-cap", 0, "points retained per series before the window doubles (0 = 512 default)")
	if withProgress {
		flag.BoolVar(&tf.Progress, "progress", false, "print a live progress line to stderr: done/total, episodes/sec, ETA")
	}
	return tf
}

// TimeseriesEnabled reports whether sim-time series are being recorded:
// requested explicitly (-ts) or implied by the monitoring server (-serve).
func (tf *TelemetryFlags) TimeseriesEnabled() bool {
	return tf.TSPath != "" || tf.ServeAddr != ""
}

// Sampler returns the shared sampler when time series are enabled, else
// nil (recording disabled: one pointer check per event). The first call
// creates it; later calls return the same sampler.
func (tf *TelemetryFlags) Sampler() *horus.TimeseriesSampler {
	if !tf.TimeseriesEnabled() {
		return nil
	}
	if tf.sampler == nil {
		tf.sampler = horus.NewTimeseriesSampler(tf.WindowNs*1000, tf.Capacity)
	}
	return tf.sampler
}

// StartServer boots the monitoring server when -serve was given, exposing
// the registry and the shared sampler, and prints the bound address (which
// resolves ":0") to stderr. Call Shutdown to linger and close.
func (tf *TelemetryFlags) StartServer(reg *horus.MetricsRegistry) error {
	if tf.ServeAddr == "" {
		return nil
	}
	srv := horus.NewMonitorServer(reg, tf.Sampler())
	addr, err := srv.Start(tf.ServeAddr)
	if err != nil {
		return fmt.Errorf("-serve %s: %w", tf.ServeAddr, err)
	}
	tf.server = srv
	fmt.Fprintf(os.Stderr, "serving telemetry on http://%s/ (/metrics /healthz /timeseries.json /progress)\n", addr)
	return nil
}

// Server returns the running monitoring server, nil unless StartServer
// bound one.
func (tf *TelemetryFlags) Server() *horus.MonitorServer { return tf.server }

// EnsureRegistry returns reg unchanged unless -serve is active and reg is
// nil, in which case it creates a fresh registry so a scraper sees real
// counters on /metrics even when no -metrics file was requested.
func (tf *TelemetryFlags) EnsureRegistry(reg *horus.MetricsRegistry) *horus.MetricsRegistry {
	if reg == nil && tf.ServeAddr != "" {
		reg = horus.NewMetricsRegistry()
	}
	return reg
}

// ProgressFunc builds the sweep progress callback combining the -progress
// stderr line and the -serve SSE stream; nil when neither is active (the
// engine then skips per-episode callback work entirely).
func (tf *TelemetryFlags) ProgressFunc() func(horus.SweepProgress) {
	srv := tf.server
	if !tf.Progress && srv == nil {
		return nil
	}
	out := tf.ProgressOut
	if out == nil {
		out = os.Stderr
	}
	return func(ev horus.SweepProgress) {
		if tf.Progress {
			eol := "\r"
			if ev.Done >= ev.Total {
				eol = "\n"
			}
			fmt.Fprintf(out, "progress: %d/%d episodes (%.1f eps/sec, eta %s)   %s",
				ev.Done, ev.Total, ev.EpisodesPerSec(), ev.ETA().Round(100*time.Millisecond), eol)
		}
		if srv != nil {
			e := horus.MonitorProgressEvent{
				Done: ev.Done, Total: ev.Total, Index: ev.Index, Label: ev.Label,
				ElapsedMs: float64(ev.Elapsed) / float64(time.Millisecond),
				EpsPerSec: ev.EpisodesPerSec(),
				EtaMs:     float64(ev.ETA()) / float64(time.Millisecond),
			}
			if ev.Err != nil {
				e.Error = ev.Err.Error()
			}
			srv.Progress(e)
		}
	}
}

// WriteTimeseries exports the sampler to the -ts path. No-op unless -ts
// was given.
func (tf *TelemetryFlags) WriteTimeseries() error {
	if tf.TSPath == "" || tf.sampler == nil {
		return nil
	}
	f, err := os.Create(tf.TSPath)
	if err != nil {
		return err
	}
	err = tf.sampler.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Shutdown completes the telemetry lifecycle: honours -serve-linger, then
// closes the server. Call once, after results are computed and written (so
// a lingering scraper sees final series).
func (tf *TelemetryFlags) Shutdown() {
	if tf.server == nil {
		return
	}
	if tf.Linger > 0 {
		fmt.Fprintf(os.Stderr, "lingering %s before shutdown (-serve-linger)\n", tf.Linger)
		time.Sleep(tf.Linger)
	}
	tf.server.Close()
	tf.server = nil
}
