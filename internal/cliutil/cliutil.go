// Package cliutil holds the flag-parsing helpers shared by the horus
// command-line tools: scheme, persistence-domain and workload selection.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"strings"

	horus "repro"
)

// MetricsFlags bundles the -metrics / -metrics-format flags shared by the
// horus commands.
type MetricsFlags struct {
	Path   string
	Format string
}

// AddMetricsFlags registers the shared metrics flags on the default flag
// set; call before flag.Parse.
func AddMetricsFlags() *MetricsFlags {
	mf := &MetricsFlags{}
	flag.StringVar(&mf.Path, "metrics", "", "write a metrics snapshot (counters, utilization, lifecycle spans) to this file")
	flag.StringVar(&mf.Format, "metrics-format", "prom", "metrics file format: prom (Prometheus text exposition) | json")
	return mf
}

// Enabled reports whether metrics output was requested.
func (mf *MetricsFlags) Enabled() bool { return mf.Path != "" }

// Registry returns a fresh registry when -metrics was given, else nil
// (instrumentation disabled, zero overhead).
func (mf *MetricsFlags) Registry() *horus.MetricsRegistry {
	if !mf.Enabled() {
		return nil
	}
	return horus.NewMetricsRegistry()
}

// Write exports the registry to the configured path in the configured
// format. No-op when metrics output is disabled.
func (mf *MetricsFlags) Write(reg *horus.MetricsRegistry) error {
	if !mf.Enabled() || reg == nil {
		return nil
	}
	f, err := os.Create(mf.Path)
	if err != nil {
		return err
	}
	switch strings.ToLower(mf.Format) {
	case "", "prom", "prometheus":
		err = reg.WritePrometheus(f)
	case "json":
		err = reg.WriteJSON(f)
	default:
		err = fmt.Errorf("unknown metrics format %q (want prom|json)", mf.Format)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// AddShardsFlag registers the shared -shards flag on the default flag set;
// call before flag.Parse. The value is the drain pipeline's crypto fan-out
// width (Config.Shards): shard-owned engine clones precompute OTPs and MACs
// over per-bank work lists while the timed drain replays serially, so every
// output — results, traces, time series — is byte-identical at any value.
// Zero (the default) resolves to GOMAXPROCS at drain time; 1 forces the
// fully inline serial path.
func AddShardsFlag() *int {
	return flag.Int("shards", 0,
		"drain crypto shards: engine clones precomputing OTPs and MACs per bank (0 = GOMAXPROCS, 1 = serial inline; outputs are byte-identical at any value)")
}

// ParseScheme maps a user-facing name to a drain design. Accepted forms:
// non-secure/ns, base-lu/lu, base-eu/eu, horus-slm/slm, horus-dlm/dlm.
func ParseScheme(s string) (horus.Scheme, error) {
	switch strings.ToLower(s) {
	case "non-secure", "nonsecure", "ns":
		return horus.NonSecure, nil
	case "base-lu", "lu":
		return horus.BaseLU, nil
	case "base-eu", "eu":
		return horus.BaseEU, nil
	case "horus-slm", "slm":
		return horus.HorusSLM, nil
	case "horus-dlm", "dlm":
		return horus.HorusDLM, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q (want non-secure|base-lu|base-eu|horus-slm|horus-dlm)", s)
	}
}

// ParseDomain maps a user-facing name to a persistence domain: adr,
// wpq/adr+wpq, bbb, epd.
func ParseDomain(s string) (horus.PersistDomain, error) {
	switch strings.ToLower(s) {
	case "adr":
		return horus.DomainADR, nil
	case "wpq", "adr+wpq":
		return horus.DomainADRWPQ, nil
	case "bbb":
		return horus.DomainBBB, nil
	case "epd", "eadr":
		return horus.DomainEPD, nil
	default:
		return 0, fmt.Errorf("unknown persistence domain %q (want adr|wpq|bbb|epd)", s)
	}
}

// MakeWorkload builds a named workload stream: kv, txlog, zipf, uniform,
// sequential, graph.
func MakeWorkload(name string, cfg horus.WorkloadConfig) (*horus.Workload, error) {
	switch strings.ToLower(name) {
	case "kv":
		return horus.KVStoreWorkload(cfg, 4), nil
	case "txlog":
		return horus.TxLogWorkload(cfg, 2, 4), nil
	case "zipf":
		return horus.ZipfWorkload(cfg, 1.2), nil
	case "uniform":
		return horus.UniformWorkload(cfg), nil
	case "sequential":
		return horus.SequentialWorkload(cfg), nil
	case "graph":
		return horus.GraphWorkload(cfg, 3), nil
	default:
		return nil, fmt.Errorf("unknown workload %q (want kv|txlog|zipf|uniform|sequential|graph)", name)
	}
}

// ParseScale maps paper|test to a configuration.
func ParseScale(s string) (horus.Config, error) {
	switch strings.ToLower(s) {
	case "paper":
		return horus.DefaultConfig(), nil
	case "test":
		return horus.TestConfig(), nil
	default:
		return horus.Config{}, fmt.Errorf("unknown scale %q (want paper|test)", s)
	}
}
