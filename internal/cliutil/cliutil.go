// Package cliutil holds the flag-parsing helpers shared by the horus
// command-line tools: scheme, persistence-domain and workload selection.
package cliutil

import (
	"fmt"
	"strings"

	horus "repro"
)

// ParseScheme maps a user-facing name to a drain design. Accepted forms:
// non-secure/ns, base-lu/lu, base-eu/eu, horus-slm/slm, horus-dlm/dlm.
func ParseScheme(s string) (horus.Scheme, error) {
	switch strings.ToLower(s) {
	case "non-secure", "nonsecure", "ns":
		return horus.NonSecure, nil
	case "base-lu", "lu":
		return horus.BaseLU, nil
	case "base-eu", "eu":
		return horus.BaseEU, nil
	case "horus-slm", "slm":
		return horus.HorusSLM, nil
	case "horus-dlm", "dlm":
		return horus.HorusDLM, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q (want non-secure|base-lu|base-eu|horus-slm|horus-dlm)", s)
	}
}

// ParseDomain maps a user-facing name to a persistence domain: adr,
// wpq/adr+wpq, bbb, epd.
func ParseDomain(s string) (horus.PersistDomain, error) {
	switch strings.ToLower(s) {
	case "adr":
		return horus.DomainADR, nil
	case "wpq", "adr+wpq":
		return horus.DomainADRWPQ, nil
	case "bbb":
		return horus.DomainBBB, nil
	case "epd", "eadr":
		return horus.DomainEPD, nil
	default:
		return 0, fmt.Errorf("unknown persistence domain %q (want adr|wpq|bbb|epd)", s)
	}
}

// MakeWorkload builds a named workload stream: kv, txlog, zipf, uniform,
// sequential, graph.
func MakeWorkload(name string, cfg horus.WorkloadConfig) (*horus.Workload, error) {
	switch strings.ToLower(name) {
	case "kv":
		return horus.KVStoreWorkload(cfg, 4), nil
	case "txlog":
		return horus.TxLogWorkload(cfg, 2, 4), nil
	case "zipf":
		return horus.ZipfWorkload(cfg, 1.2), nil
	case "uniform":
		return horus.UniformWorkload(cfg), nil
	case "sequential":
		return horus.SequentialWorkload(cfg), nil
	case "graph":
		return horus.GraphWorkload(cfg, 3), nil
	default:
		return nil, fmt.Errorf("unknown workload %q (want kv|txlog|zipf|uniform|sequential|graph)", name)
	}
}

// ParseScale maps paper|test to a configuration.
func ParseScale(s string) (horus.Config, error) {
	switch strings.ToLower(s) {
	case "paper":
		return horus.DefaultConfig(), nil
	case "test":
		return horus.TestConfig(), nil
	default:
		return horus.Config{}, fmt.Errorf("unknown scale %q (want paper|test)", s)
	}
}
