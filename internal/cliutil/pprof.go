package cliutil

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// ProfileFlags bundles the shared -pprof flag: when set, the command writes
// a CPU profile (cpu.pprof) covering its whole run and a heap profile
// (heap.pprof) at exit into the given directory.
type ProfileFlags struct {
	Dir string

	cpu *os.File
}

// AddProfileFlags registers the shared profiling flag on the default flag
// set; call before flag.Parse.
func AddProfileFlags() *ProfileFlags {
	pf := &ProfileFlags{}
	flag.StringVar(&pf.Dir, "pprof", "", "write cpu.pprof and heap.pprof profiles into this directory")
	return pf
}

// Start begins CPU profiling when -pprof was given; call Stop (normally via
// defer) to finish both profiles. No-op without the flag.
func (pf *ProfileFlags) Start() error {
	if pf.Dir == "" {
		return nil
	}
	if err := os.MkdirAll(pf.Dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(pf.Dir, "cpu.pprof"))
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	pf.cpu = f
	return nil
}

// Stop finishes the CPU profile and writes the heap profile. Idempotent, so
// commands that exit early (e.g. on a detected failure) can call it both on
// the early path and via defer.
func (pf *ProfileFlags) Stop() {
	if pf.cpu == nil {
		return
	}
	pprof.StopCPUProfile()
	pf.cpu.Close()
	pf.cpu = nil
	hp := filepath.Join(pf.Dir, "heap.pprof")
	f, err := os.Create(hp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
		return
	}
	runtime.GC() // materialise reachable-heap stats before the snapshot
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
	}
	f.Close()
}
