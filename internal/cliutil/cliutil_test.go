package cliutil

import (
	"testing"

	horus "repro"
)

func TestParseScheme(t *testing.T) {
	cases := map[string]horus.Scheme{
		"ns": horus.NonSecure, "non-secure": horus.NonSecure, "NonSecure": horus.NonSecure,
		"lu": horus.BaseLU, "Base-LU": horus.BaseLU,
		"eu": horus.BaseEU, "base-eu": horus.BaseEU,
		"slm": horus.HorusSLM, "HORUS-SLM": horus.HorusSLM,
		"dlm": horus.HorusDLM, "horus-dlm": horus.HorusDLM,
	}
	for in, want := range cases {
		got, err := ParseScheme(in)
		if err != nil || got != want {
			t.Errorf("ParseScheme(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("bogus scheme accepted")
	}
}

func TestParseDomain(t *testing.T) {
	cases := map[string]horus.PersistDomain{
		"adr": horus.DomainADR, "wpq": horus.DomainADRWPQ, "adr+wpq": horus.DomainADRWPQ,
		"bbb": horus.DomainBBB, "epd": horus.DomainEPD, "eADR": horus.DomainEPD,
	}
	for in, want := range cases {
		got, err := ParseDomain(in)
		if err != nil || got != want {
			t.Errorf("ParseDomain(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseDomain("dram"); err == nil {
		t.Error("bogus domain accepted")
	}
}

func TestMakeWorkload(t *testing.T) {
	cfg := horus.WorkloadConfig{Ops: 100, WorkingSet: 64 << 10, Seed: 1}
	for _, name := range []string{"kv", "txlog", "zipf", "uniform", "sequential", "graph"} {
		wl, err := MakeWorkload(name, cfg)
		if err != nil {
			t.Errorf("MakeWorkload(%q): %v", name, err)
			continue
		}
		if len(wl.Ops) != cfg.Ops {
			t.Errorf("%s: %d ops", name, len(wl.Ops))
		}
	}
	if _, err := MakeWorkload("nope", cfg); err == nil {
		t.Error("bogus workload accepted")
	}
}

func TestParseScale(t *testing.T) {
	p, err := ParseScale("paper")
	if err != nil || p.DataSize != 32<<30 {
		t.Error("paper scale wrong")
	}
	tc, err := ParseScale("test")
	if err != nil || tc.DataSize != 1<<30 {
		t.Error("test scale wrong")
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("bogus scale accepted")
	}
}
