package osiris

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bmt"
	"repro/internal/cme"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/secmem"
	"repro/internal/sim"
)

const stopLoss = 4

func osirisSystem(t testing.TB) *core.System {
	t.Helper()
	lay := bmt.NewLayout(bmt.Config{DataSize: 64 << 20, CHVCapacity: 1024, VaultBlocks: 20000})
	nvm := mem.NewController(mem.DefaultConfig())
	scfg := secmem.DefaultConfig()
	scfg.CounterCacheBytes = 8 << 10
	scfg.MACCacheBytes = 16 << 10
	scfg.TreeCacheBytes = 8 << 10
	scfg.OsirisStopLoss = stopLoss
	enc := cme.NewEngine(31)
	sec := secmem.New(scfg, lay, enc, nvm)
	return &core.System{Layout: lay, Enc: enc, NVM: nvm, Sec: sec}
}

// write drives the run-time path.
func write(t *testing.T, sys *core.System, now sim.Time, addr uint64, b mem.Block) sim.Time {
	t.Helper()
	done, err := sys.Sec.WriteBlock(now, addr, b)
	if err != nil {
		t.Fatalf("write %#x: %v", addr, err)
	}
	return done
}

func TestStopLossBoundsCounterLag(t *testing.T) {
	sys := osirisSystem(t)
	var now sim.Time
	addr := uint64(0x4000)
	for i := 0; i < 11; i++ { // true counter = 11; last persist at 8
		now = write(t, sys, now, addr, mem.Block{0: byte(i)})
	}
	if sys.Sec.OsirisPersists() == 0 {
		t.Fatal("stop-loss never persisted the counter block")
	}
	persisted := cme.DecodeCounterBlock(sys.NVM.PeekRead(sys.Layout.CounterBlockAddr(addr)))
	lag := 11 - int(persisted.Counter(cme.CounterIndex(addr)))
	if lag < 0 || lag >= stopLoss {
		t.Fatalf("persisted counter lag = %d, want in [0,%d)", lag, stopLoss)
	}
}

func TestRecoverAfterCrash(t *testing.T) {
	sys := osirisSystem(t)
	rng := rand.New(rand.NewSource(3))
	golden := make(map[uint64]mem.Block)
	var now sim.Time
	for i := 0; i < 400; i++ {
		// Revisit a small set of addresses so counters advance past the
		// stop-loss several times.
		addr := uint64(rng.Intn(50)) * 4096
		b := mem.Block{0: byte(i), 1: byte(i >> 8)}
		now = write(t, sys, now, addr, b)
		golden[addr] = b
	}
	sys.Sec.Crash() // no vault flush: Osiris does not need one

	res, err := Recover(sys, stopLoss)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if res.DataBlocksScanned == 0 || res.CandidateTrials == 0 {
		t.Error("recovery did no work")
	}
	if res.CountersAdvanced == 0 {
		t.Error("no counter needed advancing; stop-loss path untested")
	}
	if res.TreeNodesRebuilt == 0 {
		t.Error("tree not rebuilt")
	}
	if res.RecoveryTime <= 0 {
		t.Error("no recovery time accounted")
	}

	// Every block must now verify and decrypt through the normal path.
	for addr, want := range golden {
		got, done, err := sys.Sec.ReadBlock(now, addr)
		if err != nil {
			t.Fatalf("post-recovery read %#x: %v", addr, err)
		}
		now = done
		if got != want {
			t.Fatalf("post-recovery mismatch at %#x", addr)
		}
	}
}

func TestRecoverDetectsTamperedData(t *testing.T) {
	sys := osirisSystem(t)
	var now sim.Time
	addr := uint64(0x8000)
	now = write(t, sys, now, addr, mem.Block{0: 1})
	_ = now
	sys.Sec.Crash()
	sys.NVM.Store().CorruptByte(addr, 0, 0x01)
	_, err := Recover(sys, stopLoss)
	var oe *Error
	if !errors.As(err, &oe) {
		t.Fatalf("tampered data recovered: %v", err)
	}
	if oe.Addr != addr {
		t.Errorf("error at %#x, want %#x", oe.Addr, addr)
	}
}

func TestRecoverDetectsCounterRolledPastStopLoss(t *testing.T) {
	sys := osirisSystem(t)
	var now sim.Time
	addr := uint64(0x8000)
	for i := 0; i < 9; i++ {
		now = write(t, sys, now, addr, mem.Block{0: byte(i)})
	}
	_ = now
	sys.Sec.Crash()
	// Roll the persisted counter back below the stop-loss window (attack
	// or corruption): no candidate can verify.
	ctrAddr := sys.Layout.CounterBlockAddr(addr)
	cb := cme.DecodeCounterBlock(sys.NVM.PeekRead(ctrAddr))
	cb.Minors[cme.CounterIndex(addr)] = 0
	sys.NVM.Store().WriteBlock(ctrAddr, cb.Encode())
	if _, err := Recover(sys, stopLoss); err == nil {
		t.Fatal("rolled-back counter recovered")
	}
}

func TestRecoverEmptyMemory(t *testing.T) {
	sys := osirisSystem(t)
	res, err := Recover(sys, stopLoss)
	if err != nil {
		t.Fatal(err)
	}
	if res.DataBlocksScanned != 0 {
		t.Error("scanned blocks in empty memory")
	}
}

func TestRecoverRejectsBadStopLoss(t *testing.T) {
	sys := osirisSystem(t)
	if _, err := Recover(sys, 0); err == nil {
		t.Error("stop-loss 0 accepted")
	}
}

func TestWriteThroughMACsAreDurable(t *testing.T) {
	sys := osirisSystem(t)
	var now sim.Time
	addr := uint64(0x1000)
	now = write(t, sys, now, addr, mem.Block{0: 0x42})
	_ = now
	// The MAC block must already be in NVM (co-located with data).
	macBlk := sys.NVM.PeekRead(sys.Layout.MACBlockAddr(addr))
	if macBlk.IsZero() {
		t.Fatal("MAC block not written through")
	}
}

func TestRecoverySurvivesMinorOverflow(t *testing.T) {
	sys := osirisSystem(t)
	var now sim.Time
	hot := uint64(0)
	neighbour := uint64(64)
	now = write(t, sys, now, neighbour, mem.Block{0: 0x55})
	for i := 0; i < cme.MinorLimit+5; i++ { // crosses the overflow
		now = write(t, sys, now, hot, mem.Block{0: byte(i)})
	}
	sys.Sec.Crash()
	if _, err := Recover(sys, stopLoss); err != nil {
		t.Fatalf("recovery after overflow: %v", err)
	}
	got, _, err := sys.Sec.ReadBlock(now, neighbour)
	if err != nil || got != (mem.Block{0: 0x55}) {
		t.Fatalf("neighbour wrong after overflow recovery: %v", err)
	}
	got, _, err = sys.Sec.ReadBlock(now, hot)
	if err != nil || got[0] != byte(cme.MinorLimit+4) {
		t.Fatalf("hot block wrong after overflow recovery: %v", err)
	}
}
