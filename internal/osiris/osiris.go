// Package osiris implements Osiris-style counter recovery (Ye, Hughes,
// Awad — MICRO 2018), the vault-free alternative the paper cites for
// restoring secure-memory metadata after a crash (§II-C: "we can first
// recover the secure metadata cache by using mechanisms such as Osiris and
// Anubis").
//
// Mechanism: at run time, counter blocks are written through to NVM every
// stop-loss-th increment (and MACs are co-located with data, so every data
// write persists its MAC). After a crash, the persisted counter of a block
// lags its true value by fewer than stop-loss increments; recovery tries
// each candidate counter against the block's data MAC until one verifies,
// then rebuilds the integrity tree bottom-up from the recovered counters
// and re-anchors the on-chip root.
//
// Freshness caveat (the reason Anubis and Horus exist): because the root
// is rebuilt rather than matched, an attacker who replays a *mutually
// consistent* old triple (counter block, ciphertext, MAC) within the
// stop-loss window is not detected by this path alone. The package
// faithfully reproduces the mechanism and its costs — full-memory scan,
// candidate MAC trials, whole-tree rebuild — which is exactly the
// recovery-time trade-off the paper's related work discusses.
//
// Observability mirrors the main recovery package: the scan and rebuild
// run as one "recover-osiris" timeline/flight-recorder episode (path label
// "osiris"), so the baseline counter-reconstruction cost shows up in the
// same attribution tables and forensic chains as the CHV and vault paths.
package osiris

import (
	"fmt"
	"sort"

	"repro/internal/bmt"
	"repro/internal/cme"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs/evlog"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/timeline"
)

// nodeKey identifies a tree node during the rebuild.
type nodeKey struct {
	level int
	index uint64
}

// Result reports an Osiris recovery.
type Result struct {
	// DataBlocksScanned is the number of populated data blocks visited.
	DataBlocksScanned int
	// CountersAdvanced is how many counters had to be rolled forward past
	// their persisted value.
	CountersAdvanced int
	// CandidateTrials is the number of MAC checks performed.
	CandidateTrials int64
	// TreeNodesRebuilt counts integrity-tree nodes recomputed and written.
	TreeNodesRebuilt int64
	// RecoveryTime is the simulated duration of the scan and rebuild.
	RecoveryTime sim.Time
	// Timeline is the episode captured when a recorder was attached.
	Timeline *timeline.Recording
}

// Error reports an unrecoverable block.
type Error struct {
	Addr   uint64
	Detail string

	// Forensic provenance, stamped like recovery.Error's.
	Check           string         // "osiris-counter-trial"
	Region          string         // layout region of the failing address
	Expected        string         // stored MAC no candidate reproduced, hex
	BlocksScanned   int64          // data blocks recovered before the failure
	DetectLatencyPs int64          // phase-local simulated time of the failure
	Chain           []evlog.Record // trailing flight-recorder records
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("osiris: recovery failed at %#x: %s", e.Addr, e.Detail)
}

// Recover reconstructs the counters and integrity tree of the system's
// data region after a crash, assuming the run-time controller was
// configured with the given stop-loss. It must be called on a crashed
// controller (empty metadata caches); on success, in-place data verifies
// through the normal secure read path again.
func Recover(sys *core.System, stopLoss int) (Result, error) {
	return RecoverLabeled(sys, stopLoss, "")
}

// RecoverLabeled is Recover with the scheme label stamped on the path's
// metrics, timeline episode and forensic records.
func RecoverLabeled(sys *core.System, stopLoss int, scheme string) (Result, error) {
	if stopLoss <= 0 {
		return Result{}, fmt.Errorf("osiris: stop-loss must be positive")
	}
	if scheme == "" {
		scheme = "unknown"
	}
	lay := sys.Layout
	nvm := sys.NVM
	nvm.ResetStats()
	sys.Sec.ResetStats()
	p := recovery.BeginPath(sys, "osiris", scheme)
	p.Stage("recover:osiris-scan")

	var res Result
	var now sim.Time
	var macs int64

	// Pass 1: recover counters, grouped by counter block.
	dataAddrs := nvm.Store().AddressesInRange(0, lay.DataSize)
	updatedCounters := make(map[uint64]mem.Block) // counter addr -> content
	var curCtrAddr uint64
	var curCtr cme.CounterBlock
	var curDirty bool
	var haveCur bool
	flush := func() {
		if haveCur && curDirty {
			enc := curCtr.Encode()
			updatedCounters[curCtrAddr] = enc
			now = nvm.Write(now, curCtrAddr, enc, mem.CatCounter)
		}
		haveCur = false
		curDirty = false
	}
	for _, addr := range dataAddrs {
		ctrAddr := lay.CounterBlockAddr(addr)
		if !haveCur || ctrAddr != curCtrAddr {
			flush()
			raw, t := nvm.Read(now, ctrAddr, mem.CatCounter)
			now = t
			curCtr = cme.DecodeCounterBlock(raw)
			curCtrAddr = ctrAddr
			haveCur = true
		}
		res.DataBlocksScanned++

		ct, t := nvm.Read(now, addr, mem.CatData)
		now = t
		macBlk, t := nvm.Read(now, lay.MACBlockAddr(addr), mem.CatMAC)
		now = t
		stored := cme.UnpackMACs(macBlk)[cme.MACSlot(addr)]

		slot := cme.CounterIndex(addr)
		base := curCtr.Counter(slot)
		found := false
		for d := uint64(0); d <= uint64(stopLoss); d++ {
			cand := base + d
			res.CandidateTrials++
			macs++
			now = sys.Sec.IssueMAC(now, "osiris-trial")
			p.MACOp(now)
			if sys.Enc.DataMAC(addr, cand, ct) == stored {
				if d > 0 {
					res.CountersAdvanced++
					setCounter(&curCtr, slot, cand)
					curDirty = true
				}
				found = true
				break
			}
		}
		if !found {
			if stored == (cme.MAC{}) && ct.IsZero() && base == 0 {
				continue // never-written block that happens to be populated
			}
			e := &Error{Addr: addr,
				Check: "osiris-counter-trial", Region: "data",
				Expected:        fmt.Sprintf("%x", stored),
				BlocksScanned:   int64(res.DataBlocksScanned),
				DetectLatencyPs: int64(now),
				Detail:          fmt.Sprintf("no counter candidate within stop-loss %d verifies", stopLoss)}
			e.Chain = p.Failure(now, evlog.Record{Check: e.Check, Region: e.Region,
				Addr: addr, Expected: e.Expected, Detail: e.Detail})
			return Result{}, e
		}
		p.Ok(now, "osiris-counter-trial", "data", addr, 0)
		p.Block(now)
	}
	flush()

	// Pass 2: rebuild the integrity tree bottom-up over every counter
	// block present in NVM, and re-anchor the root register.
	p.Stage("recover:osiris-rebuild")
	root, nodes, rMACs, t := rebuildTree(sys, now, p)
	now = t
	macs += rMACs
	res.TreeNodesRebuilt = nodes
	sys.Sec.RestoreRoot(root)

	res.RecoveryTime = now
	res.Timeline = p.Done(now)
	recovery.PublishPathMetrics(sys.Metrics, scheme, "osiris", now,
		int64(res.DataBlocksScanned), macs, res.Timeline)
	sys.NVM.PublishMetrics("recover-osiris", now)
	sys.Sec.PublishMetrics("recover-osiris", now)
	return res, nil
}

// setCounter writes an absolute counter value into a slot (major is shared;
// recovery only ever advances minors within the current major, since
// overflows persist the block).
func setCounter(cb *cme.CounterBlock, slot int, value uint64) {
	major := value / cme.MinorLimit
	minor := value % cme.MinorLimit
	if major != cb.Major {
		// A recovered counter crossing a major boundary means the overflow
		// persist was lost — impossible under the write-through rule.
		panic("osiris: recovered counter crosses a major-counter boundary")
	}
	cb.Minors[slot] = byte(minor)
}

// RebuildTree recomputes every populated integrity-tree path bottom-up and
// returns the new root-register content and the number of nodes written.
func RebuildTree(sys *core.System, start sim.Time) (mem.Block, int64, sim.Time) {
	root, written, _, now := rebuildTree(sys, start, nil)
	return root, written, now
}

// rebuildTree is RebuildTree with MAC-op accounting on an optional
// recovery-path observer.
func rebuildTree(sys *core.System, start sim.Time, p *recovery.PathObs) (mem.Block, int64, int64, sim.Time) {
	lay := sys.Layout
	nvm := sys.NVM
	now := start
	var macs int64

	// Level 0: every populated counter block.
	ctrBase := lay.CounterBase
	ctrEnd := ctrBase + lay.NumCounterBlocks*bmt.BlockSize
	addrs := nvm.Store().AddressesInRange(ctrBase, ctrEnd)

	// Entries to install per parent node.
	pending := make(map[nodeKey]map[int]cme.MAC)
	for _, a := range addrs {
		_, index, ok := lay.Coord(a)
		if !ok {
			continue
		}
		raw, t := nvm.Read(now, a, mem.CatCounter)
		now = t
		macs++
		now = sys.Sec.IssueMAC(now, "osiris-rebuild")
		p.MACOp(now)
		macVal := sys.Enc.NodeMAC(0, index, raw)
		pLevel, pIndex, slot := lay.Parent(0, index)
		k := nodeKey{pLevel, pIndex}
		if pending[k] == nil {
			pending[k] = make(map[int]cme.MAC)
		}
		pending[k][slot] = macVal
	}

	var written int64
	var root mem.Block
	for level := 1; level <= lay.RootLevel(); level++ {
		var keys []nodeKey
		for k := range pending {
			if k.level == level {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].index < keys[j].index })
		for _, k := range keys {
			entries := pending[k]
			delete(pending, k)
			var content mem.Block
			if level < lay.RootLevel() {
				addr := lay.NodeAddr(level, k.index)
				old, t := nvm.Read(now, addr, mem.CatTree)
				now = t
				content = old
			}
			for slot, macVal := range entries {
				copy(content[slot*cme.MACSize:(slot+1)*cme.MACSize], macVal[:])
			}
			if level == lay.RootLevel() {
				root = content
				continue
			}
			addr := lay.NodeAddr(level, k.index)
			now = nvm.Write(now, addr, content, mem.CatTree)
			written++
			macs++
			now = sys.Sec.IssueMAC(now, "osiris-rebuild")
			p.MACOp(now)
			macVal := sys.Enc.NodeMAC(level, k.index, content)
			pLevel, pIndex, slot := lay.Parent(level, k.index)
			nk := nodeKey{pLevel, pIndex}
			if pending[nk] == nil {
				pending[nk] = make(map[int]cme.MAC)
			}
			pending[nk][slot] = macVal
		}
	}
	return root, written, macs, now
}
