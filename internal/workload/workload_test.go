package workload

import (
	"testing"
	"testing/quick"
)

func base() Config {
	return Config{Ops: 2000, WorkingSet: 1 << 20, Seed: 1, PersistPercent: 25}
}

func generators() map[string]func(Config) *Stream {
	return map[string]func(Config) *Stream{
		"sequential": Sequential,
		"uniform":    Uniform,
		"zipf":       func(c Config) *Stream { return Zipf(c, 1.2) },
		"kv":         func(c Config) *Stream { return KVStore(c, 4) },
		"txlog":      func(c Config) *Stream { return TxLog(c, 2, 4) },
		"graph":      func(c Config) *Stream { return Graph(c, 3) },
	}
}

func TestGeneratorsProduceValidStreams(t *testing.T) {
	for name, gen := range generators() {
		t.Run(name, func(t *testing.T) {
			s := gen(base())
			if len(s.Ops) != base().Ops {
				t.Fatalf("ops = %d, want %d", len(s.Ops), base().Ops)
			}
			r, w, p := s.Stats()
			if r+w+p != len(s.Ops) {
				t.Error("stats do not add up")
			}
			if r == 0 && name != "kv" {
				t.Error("no reads")
			}
			if w == 0 {
				t.Error("no writes")
			}
			for _, op := range s.Ops {
				if op.Addr%64 != 0 {
					t.Fatalf("unaligned address %#x", op.Addr)
				}
				if op.Addr >= base().WorkingSet {
					t.Fatalf("address %#x outside working set", op.Addr)
				}
			}
			if s.String() == "" {
				t.Error("empty description")
			}
		})
	}
}

func TestGeneratorsDeterministicBySeed(t *testing.T) {
	for name, gen := range generators() {
		a, b := gen(base()), gen(base())
		for i := range a.Ops {
			if a.Ops[i] != b.Ops[i] {
				t.Fatalf("%s: same seed diverged at op %d", name, i)
			}
		}
		c := base()
		c.Seed = 2
		d := gen(c)
		same := true
		for i := range a.Ops {
			if a.Ops[i] != d.Ops[i] {
				same = false
				break
			}
		}
		if same && name != "sequential" { // sequential ignores the rng for addresses
			t.Errorf("%s: different seeds produced identical streams", name)
		}
	}
}

func TestPersistRatioRespected(t *testing.T) {
	cfg := base()
	cfg.PersistPercent = 0
	if _, _, p := Uniform(cfg).Stats(); p != 0 {
		t.Error("persists emitted at 0%")
	}
	cfg.PersistPercent = 100
	_, w, p := Uniform(cfg).Stats()
	if p < w*9/10 {
		t.Errorf("persists %d far below writes %d at 100%%", p, w)
	}
}

func TestPersistFollowsWriteToSameAddress(t *testing.T) {
	cfg := base()
	cfg.PersistPercent = 100
	for name, gen := range generators() {
		s := gen(cfg)
		written := make(map[uint64]bool)
		for i, op := range s.Ops {
			switch op.Kind {
			case OpWrite:
				written[op.Addr] = true
			case OpPersist:
				if !written[op.Addr] {
					t.Fatalf("%s: persist of never-written address %#x at op %d", name, op.Addr, i)
				}
			}
		}
	}
}

func TestZipfSkewsAccesses(t *testing.T) {
	cfg := base()
	cfg.Ops = 20000
	s := Zipf(cfg, 1.5)
	counts := make(map[uint64]int)
	for _, op := range s.Ops {
		counts[op.Addr]++
	}
	// The hottest block must take far more than its uniform share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniformShare := cfg.Ops / int(cfg.WorkingSet/64)
	if max < 20*uniformShare {
		t.Errorf("hottest block %d accesses, uniform share %d: not skewed", max, uniformShare)
	}
}

func TestSequentialIsSequential(t *testing.T) {
	cfg := base()
	cfg.PersistPercent = 0
	s := Sequential(cfg)
	// Reads must walk consecutive blocks.
	var lastRead uint64
	first := true
	for _, op := range s.Ops {
		if op.Kind != OpRead {
			continue
		}
		if !first && op.Addr != lastRead+64 && op.Addr != 0 {
			t.Fatalf("non-sequential read at %#x after %#x", op.Addr, lastRead)
		}
		lastRead, first = op.Addr, false
	}
}

func TestPanicsOnBadShape(t *testing.T) {
	for name, fn := range map[string]func(){
		"zipf skew":   func() { Zipf(base(), 1.0) },
		"kv value":    func() { KVStore(base(), 0) },
		"graph deg":   func() { Graph(base(), 0) },
		"tx record":   func() { TxLog(base(), 0, 1) },
		"bad persist": func() { c := base(); c.PersistPercent = 101; Uniform(c) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: every generator, under arbitrary small configs, emits exactly
// cfg.Ops aligned in-range operations.
func TestGeneratorBoundsProperty(t *testing.T) {
	f := func(opsRaw uint8, wsRaw uint8, seed int64) bool {
		cfg := Config{
			Ops:            int(opsRaw)%500 + 1,
			WorkingSet:     (uint64(wsRaw)%64 + 1) * 4096,
			Seed:           seed,
			PersistPercent: int(seed % 101 & 0x7f % 101),
		}
		if cfg.PersistPercent < 0 {
			cfg.PersistPercent = 0
		}
		for _, gen := range generators() {
			s := gen(cfg)
			if len(s.Ops) != cfg.Ops {
				return false
			}
			for _, op := range s.Ops {
				if op.Addr%64 != 0 || op.Addr >= cfg.WorkingSet {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
