// Package workload generates deterministic memory-operation streams for
// the run-time simulation: the application classes the paper's introduction
// motivates EPD systems with — key-value stores, analytical (scan-heavy)
// workloads, transactional databases with persist barriers, and graph
// algorithms — plus synthetic uniform/zipfian/sequential mixes for
// calibration.
//
// Every generator is a pure function of its seed, so run-time experiments
// are reproducible, and produces 64-byte-block-granular operations.
package workload

import (
	"fmt"
	"math/rand"
)

// OpKind is the type of one memory operation.
type OpKind int

// Operation kinds.
const (
	// OpRead loads a block.
	OpRead OpKind = iota
	// OpWrite stores a block.
	OpWrite
	// OpPersist is a durability point for the most recent write to the
	// address: under ADR the line must be flushed to the memory
	// controller; under EPD it is free (the cache is persistent).
	OpPersist
)

var kindNames = map[OpKind]string{OpRead: "read", OpWrite: "write", OpPersist: "persist"}

// String names the kind.
func (k OpKind) String() string { return kindNames[k] }

// Op is one block-granular memory operation.
type Op struct {
	Kind OpKind
	Addr uint64 // 64-byte aligned
}

// Stream is a finite, replayable operation stream.
type Stream struct {
	Name string
	Ops  []Op
}

// Stats summarises a stream's composition.
func (s *Stream) Stats() (reads, writes, persists int) {
	for _, op := range s.Ops {
		switch op.Kind {
		case OpRead:
			reads++
		case OpWrite:
			writes++
		case OpPersist:
			persists++
		}
	}
	return
}

// String describes the stream.
func (s *Stream) String() string {
	r, w, p := s.Stats()
	return fmt.Sprintf("%s: %d ops (%d reads, %d writes, %d persists)", s.Name, len(s.Ops), r, w, p)
}

const blockSize = 64

// alignDown clamps an address to block granularity inside the region.
func blockAddr(region, slots uint64, i uint64) uint64 {
	return region + (i%slots)*blockSize
}

// Config bounds a generator.
type Config struct {
	Ops            int    // number of operations to emit
	WorkingSet     uint64 // bytes of addressable data (block-rounded)
	Seed           int64
	PersistPercent int // percentage of writes followed by a persist (0-100)
}

func (c Config) slots() uint64 {
	s := c.WorkingSet / blockSize
	if s == 0 {
		s = 1
	}
	return s
}

func (c Config) validate() {
	if c.Ops < 0 || c.PersistPercent < 0 || c.PersistPercent > 100 {
		panic("workload: invalid config")
	}
}

// maybePersist appends a persist after a write according to the ratio.
func maybePersist(ops []Op, addr uint64, rng *rand.Rand, pct int) []Op {
	if pct > 0 && rng.Intn(100) < pct {
		ops = append(ops, Op{Kind: OpPersist, Addr: addr})
	}
	return ops
}

// Sequential emits a read-modify-write sweep over the working set, the
// analytical-scan shape (large in-memory analytics, §I).
func Sequential(cfg Config) *Stream {
	cfg.validate()
	rng := rand.New(rand.NewSource(cfg.Seed))
	slots := cfg.slots()
	ops := make([]Op, 0, cfg.Ops)
	for i := 0; len(ops) < cfg.Ops; i++ {
		a := blockAddr(0, slots, uint64(i))
		ops = append(ops, Op{Kind: OpRead, Addr: a})
		if len(ops) < cfg.Ops {
			ops = append(ops, Op{Kind: OpWrite, Addr: a})
			ops = maybePersist(ops, a, rng, cfg.PersistPercent)
		}
	}
	return &Stream{Name: "sequential-scan", Ops: ops[:cfg.Ops]}
}

// Uniform emits uniformly random reads/writes (50/50), the worst cache
// behaviour for a given working set.
func Uniform(cfg Config) *Stream {
	cfg.validate()
	rng := rand.New(rand.NewSource(cfg.Seed))
	slots := cfg.slots()
	ops := make([]Op, 0, cfg.Ops)
	for len(ops) < cfg.Ops {
		a := blockAddr(0, slots, uint64(rng.Int63n(int64(slots))))
		if rng.Intn(2) == 0 {
			ops = append(ops, Op{Kind: OpRead, Addr: a})
		} else {
			ops = append(ops, Op{Kind: OpWrite, Addr: a})
			ops = maybePersist(ops, a, rng, cfg.PersistPercent)
		}
	}
	return &Stream{Name: "uniform-random", Ops: ops[:cfg.Ops]}
}

// Zipf emits a zipfian-skewed read-mostly mix (80/20), the key-value-store
// shape (§I: KV store workloads).
func Zipf(cfg Config, skew float64) *Stream {
	cfg.validate()
	if skew <= 1 {
		panic("workload: zipf skew must be > 1")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	slots := cfg.slots()
	z := rand.NewZipf(rng, skew, 1, slots-1)
	ops := make([]Op, 0, cfg.Ops)
	for len(ops) < cfg.Ops {
		a := blockAddr(0, slots, z.Uint64())
		if rng.Intn(100) < 80 {
			ops = append(ops, Op{Kind: OpRead, Addr: a})
		} else {
			ops = append(ops, Op{Kind: OpWrite, Addr: a})
			ops = maybePersist(ops, a, rng, cfg.PersistPercent)
		}
	}
	return &Stream{Name: "zipf-kv", Ops: ops[:cfg.Ops]}
}

// KVStore emits put/get traffic over multi-block values with a persist
// after each completed put: a durable key-value store (§I).
func KVStore(cfg Config, valueBlocks int) *Stream {
	cfg.validate()
	if valueBlocks <= 0 {
		panic("workload: value size must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	slots := cfg.slots()
	objects := slots / uint64(valueBlocks)
	if objects == 0 {
		objects = 1
	}
	ops := make([]Op, 0, cfg.Ops)
	for len(ops) < cfg.Ops {
		obj := uint64(rng.Int63n(int64(objects)))
		base := obj * uint64(valueBlocks) * blockSize
		if rng.Intn(100) < 60 { // get
			for b := 0; b < valueBlocks && len(ops) < cfg.Ops; b++ {
				ops = append(ops, Op{Kind: OpRead, Addr: base + uint64(b)*blockSize})
			}
		} else { // put: write all blocks, then persist the object
			for b := 0; b < valueBlocks && len(ops) < cfg.Ops; b++ {
				ops = append(ops, Op{Kind: OpWrite, Addr: base + uint64(b)*blockSize})
			}
			for b := 0; b < valueBlocks && len(ops) < cfg.Ops; b++ {
				ops = append(ops, Op{Kind: OpPersist, Addr: base + uint64(b)*blockSize})
			}
		}
	}
	return &Stream{Name: "kv-store", Ops: ops[:cfg.Ops]}
}

// TxLog emits a transactional-database shape (§I): append a log record
// (sequential writes + persists), then apply random in-place updates.
func TxLog(cfg Config, recordBlocks, updatesPerTx int) *Stream {
	cfg.validate()
	if recordBlocks <= 0 || updatesPerTx < 0 {
		panic("workload: invalid transaction shape")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	slots := cfg.slots()
	logRegion := slots / 4 // first quarter is the log
	dataRegion := slots - logRegion
	var logHead uint64
	ops := make([]Op, 0, cfg.Ops)
	for len(ops) < cfg.Ops {
		// Log append + persist (write-ahead).
		for b := 0; b < recordBlocks && len(ops) < cfg.Ops; b++ {
			a := blockAddr(0, logRegion, logHead)
			logHead++
			ops = append(ops, Op{Kind: OpWrite, Addr: a})
			ops = append(ops, Op{Kind: OpPersist, Addr: a})
		}
		// In-place updates (read-modify-write), persisted at commit.
		var touched []uint64
		for u := 0; u < updatesPerTx && len(ops) < cfg.Ops; u++ {
			a := blockAddr(logRegion*blockSize, dataRegion, uint64(rng.Int63n(int64(dataRegion))))
			ops = append(ops, Op{Kind: OpRead, Addr: a})
			if len(ops) < cfg.Ops {
				ops = append(ops, Op{Kind: OpWrite, Addr: a})
				touched = append(touched, a)
			}
		}
		for _, a := range touched {
			if len(ops) >= cfg.Ops {
				break
			}
			ops = append(ops, Op{Kind: OpPersist, Addr: a})
		}
	}
	return &Stream{Name: "tx-log", Ops: ops[:cfg.Ops]}
}

// Graph emits a pointer-chase over a random adjacency structure with
// occasional rank-style updates: the graph-algorithm shape (§I).
func Graph(cfg Config, degree int) *Stream {
	cfg.validate()
	if degree <= 0 {
		panic("workload: degree must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	slots := cfg.slots()
	// Deterministic pseudo-adjacency: successor(v, e) = hash(v, e) % slots.
	succ := func(v uint64, e int) uint64 {
		h := v*0x9E3779B97F4A7C15 + uint64(e)*0xBF58476D1CE4E5B9
		h ^= h >> 31
		return h % slots
	}
	v := uint64(rng.Int63n(int64(slots)))
	ops := make([]Op, 0, cfg.Ops)
	for len(ops) < cfg.Ops {
		// Visit: read the vertex, read its neighbours, update its rank.
		ops = append(ops, Op{Kind: OpRead, Addr: blockAddr(0, slots, v)})
		next := v
		for e := 0; e < degree && len(ops) < cfg.Ops; e++ {
			n := succ(v, e)
			ops = append(ops, Op{Kind: OpRead, Addr: blockAddr(0, slots, n)})
			if e == 0 {
				next = n
			}
		}
		if len(ops) < cfg.Ops {
			a := blockAddr(0, slots, v)
			ops = append(ops, Op{Kind: OpWrite, Addr: a})
			ops = maybePersist(ops, a, rng, cfg.PersistPercent)
		}
		v = next
	}
	return &Stream{Name: "graph", Ops: ops[:cfg.Ops]}
}
